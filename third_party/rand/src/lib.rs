//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no registry access, so this local crate
//! provides the exact API surface the workspace uses — `rngs::StdRng`,
//! `SeedableRng::seed_from_u64`, and the `Rng`/`RngExt` traits with
//! `random::<T>()` and `random_range(..)` — backed by a deterministic
//! xoshiro256** generator seeded through SplitMix64. Determinism under a
//! fixed seed is the property every experiment in the workspace relies on;
//! cryptographic quality is explicitly out of scope.

/// Low-level entropy source: everything derives from `next_u64`.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly random bits (upper half of [`next_u64`]).
    #[inline]
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Marker trait mirroring `rand::Rng`; all generators implement it.
pub trait Rng: RngCore {}

impl<T: RngCore + ?Sized> Rng for T {}

/// Extension methods (`random`, `random_range`) on any generator.
pub trait RngExt: RngCore {
    /// Uniform sample of `T` over its natural domain (`[0, 1)` for floats,
    /// the full range for integers).
    #[inline]
    fn random<T: SampleStandard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Uniform sample from a range (`a..b` or `a..=b`).
    ///
    /// # Panics
    /// Panics on an empty range.
    #[inline]
    fn random_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample_from(self)
    }
}

impl<T: RngCore + ?Sized> RngExt for T {}

/// Seeding mirror of `rand::SeedableRng` (only `seed_from_u64` is used).
pub trait SeedableRng: Sized {
    /// Builds a generator whose full state is derived from `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types samplable uniformly over a standard domain by [`RngExt::random`].
pub trait SampleStandard {
    /// Draws one sample.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl SampleStandard for f64 {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl SampleStandard for f32 {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl SampleStandard for bool {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl SampleStandard for $t {
            #[inline]
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges samplable by [`RngExt::random_range`].
pub trait SampleRange<T> {
    /// Draws one sample from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty random_range");
                let width = (self.end as u128 - self.start as u128) as u64;
                self.start + (reduce_u64(rng.next_u64(), width) as $t)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty random_range");
                let width = (hi as u128 - lo as u128 + 1) as u64;
                if width == 0 {
                    // Full-domain inclusive range of a 64-bit type.
                    return rng.next_u64() as $t;
                }
                lo + (reduce_u64(rng.next_u64(), width) as $t)
            }
        }
    )*};
}

impl_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty random_range");
                let u: $t = SampleStandard::sample_standard(rng);
                self.start + (self.end - self.start) * u
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty random_range");
                let u: $t = SampleStandard::sample_standard(rng);
                lo + (hi - lo) * u
            }
        }
    )*};
}

impl_range_float!(f32, f64);

/// Lemire-style unbiased-enough range reduction: maps a uniform `u64` into
/// `[0, width)` via 128-bit multiply. Deterministic and branch-free.
#[inline]
fn reduce_u64(x: u64, width: u64) -> u64 {
    ((x as u128 * width as u128) >> 64) as u64
}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256** generator (the workspace's `StdRng`).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, the canonical xoshiro seeding routine.
            let mut sm = seed;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng { s: [next(), next(), next(), next()] }
        }
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{RngExt, SeedableRng};

    #[test]
    fn deterministic_under_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
    }

    #[test]
    fn unit_floats_in_range() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x: f64 = rng.random();
            assert!((0.0..1.0).contains(&x));
            let y: f32 = rng.random();
            assert!((0.0..1.0).contains(&y));
        }
    }

    #[test]
    fn ranges_respected() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..1000 {
            let v = rng.random_range(3usize..10);
            assert!((3..10).contains(&v));
            let w = rng.random_range(-2.0f32..=2.0);
            assert!((-2.0..=2.0).contains(&w));
            let u = rng.random_range(0u32..=0);
            assert_eq!(u, 0);
        }
    }

    #[test]
    fn range_is_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut counts = [0usize; 8];
        for _ in 0..8000 {
            counts[rng.random_range(0usize..8)] += 1;
        }
        for &c in &counts {
            assert!((700..1300).contains(&c), "bucket count {c}");
        }
    }
}
