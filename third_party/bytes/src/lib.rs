//! Offline stand-in for the `bytes` crate.
//!
//! [`Bytes`] is a cheaply-cloneable shared view over an immutable buffer
//! (`Arc<[u8]>` + window), [`BytesMut`] an append-only builder; the
//! [`Buf`]/[`BufMut`] traits carry the little-endian accessors the
//! workspace's binary graph/dataset formats use.

use std::sync::Arc;

/// Read-side cursor over a contiguous byte buffer.
pub trait Buf {
    /// Bytes left to consume.
    fn remaining(&self) -> usize;

    /// The unconsumed bytes as one contiguous slice.
    fn chunk(&self) -> &[u8];

    /// Consumes `cnt` bytes.
    ///
    /// # Panics
    /// Panics when `cnt > remaining()`.
    fn advance(&mut self, cnt: usize);

    /// Copies `dst.len()` bytes out, advancing past them.
    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(self.remaining() >= dst.len(), "buffer underflow");
        dst.copy_from_slice(&self.chunk()[..dst.len()]);
        self.advance(dst.len());
    }

    /// Reads a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_le_bytes(b)
    }

    /// Reads a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_le_bytes(b)
    }

    /// Reads a little-endian `f32`.
    fn get_f32_le(&mut self) -> f32 {
        f32::from_bits(self.get_u32_le())
    }

    /// Reads a little-endian `f64`.
    fn get_f64_le(&mut self) -> f64 {
        f64::from_bits(self.get_u64_le())
    }

    /// Reads one byte.
    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }
}

/// Write-side sink appending to a growable buffer.
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `f32`.
    fn put_f32_le(&mut self, v: f32) {
        self.put_u32_le(v.to_bits());
    }

    /// Appends a little-endian `f64`.
    fn put_f64_le(&mut self, v: f64) {
        self.put_u64_le(v.to_bits());
    }

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }
}

/// Immutable shared byte buffer; clones and `slice` views share storage.
#[derive(Clone)]
pub struct Bytes {
    data: Arc<[u8]>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// Empty buffer.
    pub fn new() -> Self {
        Bytes { data: Arc::from(Vec::new()), start: 0, end: 0 }
    }

    /// Length of the (unconsumed) view.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether the view is empty.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// A sub-view relative to the current window, sharing storage.
    ///
    /// # Panics
    /// Panics when the range exceeds `len()`.
    pub fn slice(&self, range: std::ops::Range<usize>) -> Bytes {
        assert!(range.start <= range.end && range.end <= self.len(), "slice out of range");
        Bytes {
            data: Arc::clone(&self.data),
            start: self.start + range.start,
            end: self.start + range.end,
        }
    }

    /// Copies the view into a fresh `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.chunk().to_vec()
    }

    /// Splits off the first `len` bytes as a shared view, advancing past
    /// them (no copy despite the `bytes`-compatible name).
    ///
    /// # Panics
    /// Panics when `len > remaining()`.
    pub fn copy_to_bytes(&mut self, len: usize) -> Bytes {
        let out = self.slice(0..len);
        self.advance(len);
        out
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.chunk()
    }
}

impl Default for Bytes {
    fn default() -> Self {
        Bytes::new()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        let end = v.len();
        Bytes { data: Arc::from(v), start: 0, end }
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Self {
        Bytes::from(v.to_vec())
    }
}

impl std::ops::Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.chunk()
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Bytes(len={})", self.len())
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }

    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "advance past end");
        self.start += cnt;
    }
}

/// Growable byte builder; [`freeze`](BytesMut::freeze) converts to
/// [`Bytes`] without copying.
#[derive(Clone, Default)]
pub struct BytesMut {
    buf: Vec<u8>,
}

impl BytesMut {
    /// Empty builder.
    pub fn new() -> Self {
        BytesMut { buf: Vec::new() }
    }

    /// Empty builder with reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut { buf: Vec::with_capacity(cap) }
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Converts into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.buf)
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.buf.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

impl std::fmt::Debug for BytesMut {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "BytesMut(len={})", self.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_le_values() {
        let mut b = BytesMut::with_capacity(32);
        b.put_u32_le(0xDEAD_BEEF);
        b.put_u64_le(42);
        b.put_f32_le(1.5);
        b.put_slice(b"xy");
        let mut r = b.freeze();
        assert_eq!(r.remaining(), 4 + 8 + 4 + 2);
        assert_eq!(r.get_u32_le(), 0xDEAD_BEEF);
        assert_eq!(r.get_u64_le(), 42);
        assert_eq!(r.get_f32_le(), 1.5);
        assert_eq!(r.chunk(), b"xy");
    }

    #[test]
    fn slice_is_relative_to_view() {
        let mut b = Bytes::from(vec![0, 1, 2, 3, 4, 5]);
        b.advance(2);
        let s = b.slice(1..3);
        assert_eq!(s.chunk(), &[3, 4]);
        assert_eq!(b.to_vec(), vec![2, 3, 4, 5]);
    }

    #[test]
    #[should_panic(expected = "buffer underflow")]
    fn underflow_panics() {
        let mut b = Bytes::from(vec![1u8]);
        let _ = b.get_u32_le();
    }
}
