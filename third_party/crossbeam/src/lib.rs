//! Offline stand-in for the `crossbeam` crate.
//!
//! Provides the scoped-thread API (`crossbeam::scope`, `Scope::spawn`) the
//! workspace uses, implemented over `std::thread::scope`. Matching
//! crossbeam's contract, a panic in any spawned thread is caught and
//! surfaced as the `Err` variant of the returned `Result` instead of
//! unwinding through the scope.

pub mod thread {
    //! Scoped threads.

    use std::any::Any;
    use std::panic::{catch_unwind, AssertUnwindSafe};

    /// Handle for spawning threads tied to the enclosing scope.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a scoped thread. The closure receives the scope itself so
        /// workers can spawn siblings (crossbeam's signature).
        pub fn spawn<F, T>(&self, f: F) -> std::thread::ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            self.inner.spawn(move || f(&Scope { inner }))
        }
    }

    /// Runs `f` with a scope in which borrowing spawns are allowed; joins
    /// all spawned threads before returning. A child panic is reported as
    /// `Err` with the panic payload.
    pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        catch_unwind(AssertUnwindSafe(|| {
            std::thread::scope(|s| f(&Scope { inner: s }))
        }))
    }
}

pub use thread::scope;

#[cfg(test)]
mod tests {
    #[test]
    fn scope_joins_and_returns() {
        let data = vec![1, 2, 3];
        let sum = crate::scope(|s| {
            let h = s.spawn(|_| data.iter().sum::<i32>());
            h.join().unwrap()
        })
        .unwrap();
        assert_eq!(sum, 6);
    }

    #[test]
    fn child_panic_becomes_err() {
        let r = crate::scope(|s| {
            s.spawn(|_| panic!("boom"));
        });
        assert!(r.is_err());
    }
}
