//! Offline stand-in for the `criterion` crate.
//!
//! Provides `Criterion`, `Bencher::iter`, and the `criterion_group!` /
//! `criterion_main!` macros over a simple wall-clock harness: per bench it
//! warms up for `warm_up_time`, then takes `sample_size` samples (each
//! sized to fill `measurement_time / sample_size`) and reports
//! min/median/mean nanoseconds per iteration on stdout.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Bench harness configuration and runner.
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 20,
            measurement_time: Duration::from_secs(2),
            warm_up_time: Duration::from_millis(500),
        }
    }
}

impl Criterion {
    /// Number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(2);
        self
    }

    /// Total measurement budget per benchmark.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Warm-up budget per benchmark.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    /// Runs one benchmark and prints its timing summary.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher { iters: 1, elapsed: Duration::ZERO };

        // Warm-up: also calibrates iterations per sample.
        let warm_start = Instant::now();
        let mut per_iter = Duration::from_nanos(100);
        while warm_start.elapsed() < self.warm_up_time {
            b.elapsed = Duration::ZERO;
            f(&mut b);
            per_iter = b.elapsed.max(Duration::from_nanos(1)) / b.iters as u32;
        }

        let per_sample = self.measurement_time / self.sample_size as u32;
        let iters =
            (per_sample.as_nanos() / per_iter.as_nanos().max(1)).clamp(1, u32::MAX as u128) as u64;

        let mut samples_ns: Vec<f64> = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            b.iters = iters;
            b.elapsed = Duration::ZERO;
            f(&mut b);
            samples_ns.push(b.elapsed.as_nanos() as f64 / iters as f64);
        }
        samples_ns.sort_by(|a, b| a.total_cmp(b));
        let min = samples_ns.first().copied().unwrap_or(0.0);
        let median = samples_ns[samples_ns.len() / 2];
        let mean = samples_ns.iter().sum::<f64>() / samples_ns.len() as f64;
        println!(
            "{name:<40} time: [{} {} {}]  ({} samples × {} iters)",
            fmt_ns(min),
            fmt_ns(median),
            fmt_ns(mean),
            self.sample_size,
            iters
        );
        self
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.2} s", ns / 1_000_000_000.0)
    }
}

/// Timing handle passed to each benchmark closure.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `f` over the harness-chosen iteration count.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed += start.elapsed();
    }
}

/// Declares a group of benchmarks (both criterion forms supported).
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c: $crate::Criterion = $config;
            $( $target(&mut c); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Declares the bench entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_reports() {
        let mut c = Criterion::default()
            .sample_size(3)
            .measurement_time(Duration::from_millis(30))
            .warm_up_time(Duration::from_millis(5));
        let mut calls = 0u64;
        c.bench_function("smoke", |b| {
            b.iter(|| {
                calls += 1;
                calls
            })
        });
        assert!(calls > 0);
    }
}
