//! Offline stand-in for `parking_lot`.
//!
//! Wraps `std::sync` primitives behind parking_lot's no-poison API:
//! `lock()`/`read()`/`write()` return guards directly (a poisoned std lock
//! is recovered transparently), and `Condvar::wait` takes `&mut MutexGuard`
//! instead of consuming it.

use std::fmt;
use std::ops::{Deref, DerefMut};

/// Mutual exclusion without poisoning.
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard(Some(self.0.lock().unwrap_or_else(|e| e.into_inner())))
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

/// RAII guard for [`Mutex`]. The `Option` lets [`Condvar::wait`] move the
/// underlying std guard out and back during a wait.
pub struct MutexGuard<'a, T: ?Sized>(Option<std::sync::MutexGuard<'a, T>>);

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.0.as_ref().expect("guard present outside wait")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.0.as_mut().expect("guard present outside wait")
    }
}

/// Condition variable with parking_lot's `wait(&mut guard)` signature.
#[derive(Default)]
pub struct Condvar(std::sync::Condvar);

impl Condvar {
    /// Creates a new condition variable.
    pub const fn new() -> Self {
        Condvar(std::sync::Condvar::new())
    }

    /// Atomically releases the guard's lock and waits; reacquires before
    /// returning. Spurious wakeups are possible, as with std.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let inner = guard.0.take().expect("guard present outside wait");
        guard.0 = Some(self.0.wait(inner).unwrap_or_else(|e| e.into_inner()));
    }

    /// Wakes one waiter.
    pub fn notify_one(&self) {
        self.0.notify_one();
    }

    /// Wakes all waiters.
    pub fn notify_all(&self) {
        self.0.notify_all();
    }
}

/// Reader-writer lock without poisoning.
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Creates a new reader-writer lock.
    pub const fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard(self.0.read().unwrap_or_else(|e| e.into_inner()))
    }

    /// Acquires an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard(self.0.write().unwrap_or_else(|e| e.into_inner()))
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        RwLock::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

/// Shared guard for [`RwLock`].
pub struct RwLockReadGuard<'a, T: ?Sized>(std::sync::RwLockReadGuard<'a, T>);

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

/// Exclusive guard for [`RwLock`].
pub struct RwLockWriteGuard<'a, T: ?Sized>(std::sync::RwLockWriteGuard<'a, T>);

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_and_rwlock_round_trip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        let rw = RwLock::new(vec![1, 2]);
        rw.write().push(3);
        assert_eq!(rw.read().len(), 3);
    }

    #[test]
    fn condvar_wakes_waiter() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = Arc::clone(&pair);
        let h = std::thread::spawn(move || {
            let (lock, cv) = &*p2;
            let mut guard = lock.lock();
            while !*guard {
                cv.wait(&mut guard);
            }
        });
        std::thread::sleep(std::time::Duration::from_millis(10));
        let (lock, cv) = &*pair;
        *lock.lock() = true;
        cv.notify_all();
        h.join().unwrap();
    }
}
