//! Offline stand-in for the `proptest` crate.
//!
//! Implements the subset the workspace uses: the [`proptest!`] macro,
//! `prop_assert*` macros, [`ProptestConfig`], range/tuple/vec/bool
//! strategies, and a deterministic per-case RNG. No shrinking — a failing
//! case panics with the generated inputs' debug representation, which the
//! deterministic seeding makes reproducible.

pub mod strategy {
    //! Value-generation strategies.

    use crate::test_runner::TestRng;

    /// A recipe for generating values of `Value`.
    pub trait Strategy {
        /// The generated type.
        type Value;
        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.in_range(self.start as f64, self.end as f64) as $t
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.in_range(*self.start() as f64, *self.end() as f64 + 1.0) as $t
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! impl_float_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.in_range(self.start as f64, self.end as f64) as $t
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.in_range(*self.start() as f64, *self.end() as f64) as $t
                }
            }
        )*};
    }

    impl_float_range_strategy!(f32, f64);

    /// Always produces the same value (`Just` in real proptest).
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! impl_tuple_strategy {
        ($(($($name:ident),+))*) => {$(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        )*};
    }

    impl_tuple_strategy! {
        (A)
        (A, B)
        (A, B, C)
        (A, B, C, D)
        (A, B, C, D, E)
    }
}

pub mod test_runner {
    //! Deterministic per-case RNG and run configuration.

    /// xoshiro256** seeded by SplitMix64; deterministic per `(suite, case)`.
    pub struct TestRng {
        s: [u64; 4],
    }

    impl TestRng {
        /// RNG for one test case. `salt` distinguishes test functions so
        /// sibling tests don't see identical streams.
        pub fn for_case(salt: u64, case: u64) -> Self {
            let mut sm = salt.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(case);
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            TestRng { s: [next(), next(), next(), next()] }
        }

        /// Next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }

        /// Uniform `f64` in `[0, 1)`.
        pub fn unit(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }

        /// Uniform `f64` in `[lo, hi)`; integral strategies truncate.
        pub fn in_range(&mut self, lo: f64, hi: f64) -> f64 {
            assert!(lo < hi, "empty strategy range");
            lo + (hi - lo) * self.unit()
        }

        /// Uniform bool.
        pub fn bool(&mut self) -> bool {
            self.next_u64() & 1 == 1
        }
    }

    /// Run configuration (`cases` = generated inputs per test).
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of cases to run.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Config running `cases` random cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            // Real proptest defaults to 256; 48 keeps the offline suite
            // fast while still exercising varied structures.
            ProptestConfig { cases: 48 }
        }
    }
}

pub mod bool {
    //! Boolean strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy producing uniform booleans.
    #[derive(Clone, Copy, Debug)]
    pub struct Any;

    /// Uniform boolean strategy (`proptest::bool::ANY`).
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;
        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.bool()
        }
    }
}

pub mod collection {
    //! Collection strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy for `Vec<S::Value>` with length drawn from `sizes`.
    pub struct VecStrategy<S: Strategy> {
        element: S,
        sizes: core::ops::Range<usize>,
    }

    /// Vector of values from `element`, length uniform in `sizes`.
    pub fn vec<S: Strategy>(element: S, sizes: core::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, sizes }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.sizes.clone().generate(rng);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod prelude {
    //! One-stop import mirroring `proptest::prelude`.

    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Declares deterministic property tests.
///
/// Accepts the real proptest surface used here: an optional
/// `#![proptest_config(..)]` header and test functions whose arguments are
/// `name in strategy` bindings.
#[macro_export]
macro_rules! proptest {
    ( #![proptest_config($cfg:expr)] $($rest:tt)* ) => {
        $crate::proptest!(@funcs ($cfg) $($rest)*);
    };
    (@funcs ($cfg:expr) ) => {};
    (@funcs ($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident ( $( $arg:ident in $strat:expr ),* $(,)? ) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            // Salt the RNG with the test name so sibling tests diverge.
            let salt = {
                let name = stringify!($name);
                let mut h = 0xcbf2_9ce4_8422_2325u64;
                for b in name.bytes() {
                    h = (h ^ b as u64).wrapping_mul(0x100_0000_01b3);
                }
                h
            };
            for case in 0..config.cases as u64 {
                let mut rng = $crate::test_runner::TestRng::for_case(salt, case);
                $( let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng); )*
                $body
            }
        }
        $crate::proptest!(@funcs ($cfg) $($rest)*);
    };
    ( $($rest:tt)* ) => {
        $crate::proptest!(@funcs ($crate::test_runner::ProptestConfig::default()) $($rest)*);
    };
}

/// `assert!` under a proptest-compatible name.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// `assert_eq!` under a proptest-compatible name.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// `assert_ne!` under a proptest-compatible name.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// Vec strategy respects length bounds and element ranges.
        #[test]
        fn vec_strategy_bounds(
            items in crate::collection::vec((0u32..10, 0u32..5), 1..20),
            flag in crate::bool::ANY,
        ) {
            prop_assert!(!items.is_empty() && items.len() < 20);
            for &(a, b) in &items {
                prop_assert!(a < 10 && b < 5);
            }
            let _ = flag;
        }

        /// Float ranges stay inside their bounds.
        #[test]
        fn float_ranges(x in 0.25f64..0.75, y in -1.0f32..=1.0) {
            prop_assert!((0.25..0.75).contains(&x));
            prop_assert!((-1.0..=1.0).contains(&y));
        }
    }

    #[test]
    fn deterministic_across_runs() {
        use crate::strategy::Strategy;
        let s = crate::collection::vec(0u32..100, 5..6);
        let a = s.generate(&mut crate::test_runner::TestRng::for_case(1, 2));
        let b = s.generate(&mut crate::test_runner::TestRng::for_case(1, 2));
        assert_eq!(a, b);
    }
}
