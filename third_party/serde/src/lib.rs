//! Offline placeholder for `serde`.
//!
//! The workspace manifests declare serde but no code path uses it yet; this
//! empty crate satisfies dependency resolution without registry access.
//! When serialization lands, replace this with a real vendored serde or a
//! purpose-built trait set.
