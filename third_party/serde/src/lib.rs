//! Offline stand-in for `serde` (plus a small built-in JSON emitter).
//!
//! The build environment has no registry access, so this crate implements
//! the subset of the serde API surface the workspace actually uses:
//!
//! - the [`Serialize`] / [`Serializer`] traits with the real serde shapes
//!   (`serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error>`,
//!   compound builders in [`ser`]);
//! - impls for primitives, strings, slices, `Vec`, `Option`, references,
//!   and `BTreeMap` (deliberately *not* `HashMap`: report serialization
//!   must have a stable field/key order for diffing across PRs);
//! - [`impl_serialize!`] — a declarative stand-in for
//!   `#[derive(Serialize)]` (the offline build has no proc-macro crate);
//!   fields serialize in the order they are listed, which pins the JSON
//!   field order;
//! - [`json`] — the `serde_json::to_string` equivalent (upstream this
//!   lives in a separate crate; folding it in here keeps the vendored
//!   surface to one crate).
//!
//! Deserialization is intentionally absent — nothing in the workspace
//! reads its own reports back yet.

pub mod ser;

pub use ser::{Serialize, Serializer};

pub mod json {
    //! JSON serialization (the `serde_json` stand-in).

    use crate::ser::{self, Serialize, Serializer};

    /// Error type for JSON serialization. The in-memory writer cannot
    /// fail; this exists to satisfy the `Serializer::Error` contract.
    #[derive(Debug)]
    pub struct Error;

    impl std::fmt::Display for Error {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("json serialization error")
        }
    }

    impl std::error::Error for Error {}

    /// Serializes `value` as a single-line JSON string.
    ///
    /// Non-finite floats become `null` (JSON has no NaN/Inf). Struct
    /// fields appear in declaration order ([`crate::impl_serialize!`]),
    /// map keys in `BTreeMap` order — output is byte-stable across runs.
    pub fn to_string<T: Serialize + ?Sized>(value: &T) -> String {
        let mut out = String::new();
        value
            .serialize(JsonSerializer { out: &mut out })
            .expect("in-memory JSON serialization cannot fail");
        out
    }

    struct JsonSerializer<'a> {
        out: &'a mut String,
    }

    fn escape_into(out: &mut String, s: &str) {
        out.push('"');
        for c in s.chars() {
            match c {
                '"' => out.push_str("\\\""),
                '\\' => out.push_str("\\\\"),
                '\n' => out.push_str("\\n"),
                '\r' => out.push_str("\\r"),
                '\t' => out.push_str("\\t"),
                c if (c as u32) < 0x20 => {
                    out.push_str(&format!("\\u{:04x}", c as u32));
                }
                c => out.push(c),
            }
        }
        out.push('"');
    }

    fn float_into(out: &mut String, v: f64) {
        if v.is_finite() {
            out.push_str(&format!("{v}"));
        } else {
            out.push_str("null");
        }
    }

    impl<'a> Serializer for JsonSerializer<'a> {
        type Ok = ();
        type Error = Error;
        type SerializeSeq = JsonSeq<'a>;
        type SerializeStruct = JsonStruct<'a>;
        type SerializeMap = JsonMap<'a>;

        fn serialize_bool(self, v: bool) -> Result<(), Error> {
            self.out.push_str(if v { "true" } else { "false" });
            Ok(())
        }

        fn serialize_i64(self, v: i64) -> Result<(), Error> {
            self.out.push_str(&v.to_string());
            Ok(())
        }

        fn serialize_u64(self, v: u64) -> Result<(), Error> {
            self.out.push_str(&v.to_string());
            Ok(())
        }

        fn serialize_f64(self, v: f64) -> Result<(), Error> {
            float_into(self.out, v);
            Ok(())
        }

        fn serialize_str(self, v: &str) -> Result<(), Error> {
            escape_into(self.out, v);
            Ok(())
        }

        fn serialize_unit(self) -> Result<(), Error> {
            self.out.push_str("null");
            Ok(())
        }

        fn serialize_none(self) -> Result<(), Error> {
            self.out.push_str("null");
            Ok(())
        }

        fn serialize_some<T: Serialize + ?Sized>(self, value: &T) -> Result<(), Error> {
            value.serialize(self)
        }

        fn serialize_seq(self, _len: Option<usize>) -> Result<JsonSeq<'a>, Error> {
            self.out.push('[');
            Ok(JsonSeq { out: self.out, first: true })
        }

        fn serialize_struct(
            self,
            _name: &'static str,
            _len: usize,
        ) -> Result<JsonStruct<'a>, Error> {
            self.out.push('{');
            Ok(JsonStruct { out: self.out, first: true })
        }

        fn serialize_map(self, _len: Option<usize>) -> Result<JsonMap<'a>, Error> {
            self.out.push('{');
            Ok(JsonMap { out: self.out, first: true })
        }
    }

    pub struct JsonSeq<'a> {
        out: &'a mut String,
        first: bool,
    }

    impl ser::SerializeSeq for JsonSeq<'_> {
        type Ok = ();
        type Error = Error;

        fn serialize_element<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<(), Error> {
            if !self.first {
                self.out.push(',');
            }
            self.first = false;
            value.serialize(JsonSerializer { out: self.out })
        }

        fn end(self) -> Result<(), Error> {
            self.out.push(']');
            Ok(())
        }
    }

    pub struct JsonStruct<'a> {
        out: &'a mut String,
        first: bool,
    }

    impl ser::SerializeStruct for JsonStruct<'_> {
        type Ok = ();
        type Error = Error;

        fn serialize_field<T: Serialize + ?Sized>(
            &mut self,
            key: &'static str,
            value: &T,
        ) -> Result<(), Error> {
            if !self.first {
                self.out.push(',');
            }
            self.first = false;
            escape_into(self.out, key);
            self.out.push(':');
            value.serialize(JsonSerializer { out: self.out })
        }

        fn end(self) -> Result<(), Error> {
            self.out.push('}');
            Ok(())
        }
    }

    pub struct JsonMap<'a> {
        out: &'a mut String,
        first: bool,
    }

    impl ser::SerializeMap for JsonMap<'_> {
        type Ok = ();
        type Error = Error;

        fn serialize_entry<K: Serialize + ?Sized, V: Serialize + ?Sized>(
            &mut self,
            key: &K,
            value: &V,
        ) -> Result<(), Error> {
            if !self.first {
                self.out.push(',');
            }
            self.first = false;
            key.serialize(JsonSerializer { out: self.out })?;
            self.out.push(':');
            value.serialize(JsonSerializer { out: self.out })
        }

        fn end(self) -> Result<(), Error> {
            self.out.push('}');
            Ok(())
        }
    }
}

/// Implements [`Serialize`] for a struct with named fields.
///
/// The offline stand-in for `#[derive(Serialize)]`: fields serialize in
/// the order listed, so the invocation *is* the stable field order the
/// reports guarantee.
///
/// ```
/// struct Point { x: f64, y: f64 }
/// serde::impl_serialize!(Point { x, y });
/// assert_eq!(serde::json::to_string(&Point { x: 1.0, y: 2.0 }), r#"{"x":1,"y":2}"#);
/// ```
#[macro_export]
macro_rules! impl_serialize {
    ($ty:ty { $($field:ident),+ $(,)? }) => {
        impl $crate::Serialize for $ty {
            fn serialize<S: $crate::Serializer>(
                &self,
                serializer: S,
            ) -> Result<S::Ok, S::Error> {
                use $crate::ser::SerializeStruct as _;
                let mut state = serializer.serialize_struct(
                    stringify!($ty),
                    [$(stringify!($field)),+].len(),
                )?;
                $(state.serialize_field(stringify!($field), &self.$field)?;)+
                state.end()
            }
        }
    };
}

#[cfg(test)]
mod tests {
    use super::json::to_string;

    #[test]
    fn primitives_round_trip_to_json() {
        assert_eq!(to_string(&true), "true");
        assert_eq!(to_string(&42u64), "42");
        assert_eq!(to_string(&-7i32), "-7");
        assert_eq!(to_string(&1.5f64), "1.5");
        assert_eq!(to_string("a\"b\n"), "\"a\\\"b\\n\"");
        assert_eq!(to_string(&Option::<u32>::None), "null");
        assert_eq!(to_string(&Some(3u32)), "3");
        assert_eq!(to_string(&vec![1u32, 2, 3]), "[1,2,3]");
    }

    #[test]
    fn non_finite_floats_become_null() {
        assert_eq!(to_string(&f64::NAN), "null");
        assert_eq!(to_string(&f64::INFINITY), "null");
    }

    #[test]
    fn struct_macro_preserves_field_order() {
        struct R {
            b: u32,
            a: u32,
        }
        crate::impl_serialize!(R { b, a });
        assert_eq!(to_string(&R { b: 1, a: 2 }), r#"{"b":1,"a":2}"#);
    }

    #[test]
    fn btreemap_serializes_in_key_order() {
        let mut m = std::collections::BTreeMap::new();
        m.insert("z".to_string(), 1u32);
        m.insert("a".to_string(), 2u32);
        assert_eq!(to_string(&m), r#"{"a":2,"z":1}"#);
    }
}
