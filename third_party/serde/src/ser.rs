//! Serialization traits — the `serde::ser` module surface.

/// A data structure that can be serialized.
pub trait Serialize {
    /// Serializes `self` with the given serializer.
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error>;
}

/// A data format that can serialize the workspace's data structures.
///
/// Trimmed to the methods the workspace uses; the method names and
/// by-value `self` discipline match real serde so code written against
/// this stub ports to the real crate unchanged.
pub trait Serializer: Sized {
    /// Output produced by a successful serialization.
    type Ok;
    /// Error produced by a failed serialization.
    type Error;
    /// Compound builder for sequences.
    type SerializeSeq: SerializeSeq<Ok = Self::Ok, Error = Self::Error>;
    /// Compound builder for structs.
    type SerializeStruct: SerializeStruct<Ok = Self::Ok, Error = Self::Error>;
    /// Compound builder for maps.
    type SerializeMap: SerializeMap<Ok = Self::Ok, Error = Self::Error>;

    /// Serializes a `bool`.
    fn serialize_bool(self, v: bool) -> Result<Self::Ok, Self::Error>;
    /// Serializes a signed integer (all widths funnel here).
    fn serialize_i64(self, v: i64) -> Result<Self::Ok, Self::Error>;
    /// Serializes an unsigned integer (all widths funnel here).
    fn serialize_u64(self, v: u64) -> Result<Self::Ok, Self::Error>;
    /// Serializes a float (`f32` widens losslessly).
    fn serialize_f64(self, v: f64) -> Result<Self::Ok, Self::Error>;
    /// Serializes a string slice.
    fn serialize_str(self, v: &str) -> Result<Self::Ok, Self::Error>;
    /// Serializes the unit value.
    fn serialize_unit(self) -> Result<Self::Ok, Self::Error>;
    /// Serializes `Option::None`.
    fn serialize_none(self) -> Result<Self::Ok, Self::Error>;
    /// Serializes `Option::Some(value)`.
    fn serialize_some<T: Serialize + ?Sized>(self, value: &T) -> Result<Self::Ok, Self::Error>;
    /// Begins a sequence of `len` elements (if known).
    fn serialize_seq(self, len: Option<usize>) -> Result<Self::SerializeSeq, Self::Error>;
    /// Begins a struct with `len` fields.
    fn serialize_struct(
        self,
        name: &'static str,
        len: usize,
    ) -> Result<Self::SerializeStruct, Self::Error>;
    /// Begins a map of `len` entries (if known).
    fn serialize_map(self, len: Option<usize>) -> Result<Self::SerializeMap, Self::Error>;
}

/// Builder returned by [`Serializer::serialize_seq`].
pub trait SerializeSeq {
    /// See [`Serializer::Ok`].
    type Ok;
    /// See [`Serializer::Error`].
    type Error;
    /// Serializes the next element.
    fn serialize_element<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<(), Self::Error>;
    /// Closes the sequence.
    fn end(self) -> Result<Self::Ok, Self::Error>;
}

/// Builder returned by [`Serializer::serialize_struct`].
pub trait SerializeStruct {
    /// See [`Serializer::Ok`].
    type Ok;
    /// See [`Serializer::Error`].
    type Error;
    /// Serializes one named field.
    fn serialize_field<T: Serialize + ?Sized>(
        &mut self,
        key: &'static str,
        value: &T,
    ) -> Result<(), Self::Error>;
    /// Closes the struct.
    fn end(self) -> Result<Self::Ok, Self::Error>;
}

/// Builder returned by [`Serializer::serialize_map`].
pub trait SerializeMap {
    /// See [`Serializer::Ok`].
    type Ok;
    /// See [`Serializer::Error`].
    type Error;
    /// Serializes one key/value entry.
    fn serialize_entry<K: Serialize + ?Sized, V: Serialize + ?Sized>(
        &mut self,
        key: &K,
        value: &V,
    ) -> Result<(), Self::Error>;
    /// Closes the map.
    fn end(self) -> Result<Self::Ok, Self::Error>;
}

// ---------------------------------------------------------------------------
// Blanket impls for std types
// ---------------------------------------------------------------------------

macro_rules! impl_serialize_int {
    ($($ty:ty => $method:ident as $wide:ty),+ $(,)?) => {
        $(impl Serialize for $ty {
            fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
                serializer.$method(*self as $wide)
            }
        })+
    };
}

impl_serialize_int!(
    i8 => serialize_i64 as i64,
    i16 => serialize_i64 as i64,
    i32 => serialize_i64 as i64,
    i64 => serialize_i64 as i64,
    isize => serialize_i64 as i64,
    u8 => serialize_u64 as u64,
    u16 => serialize_u64 as u64,
    u32 => serialize_u64 as u64,
    u64 => serialize_u64 as u64,
    usize => serialize_u64 as u64,
);

impl Serialize for bool {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_bool(*self)
    }
}

impl Serialize for f32 {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_f64(f64::from(*self))
    }
}

impl Serialize for f64 {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_f64(*self)
    }
}

impl Serialize for str {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_str(self)
    }
}

impl Serialize for String {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_str(self)
    }
}

impl Serialize for () {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_unit()
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        (**self).serialize(serializer)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        match self {
            Some(v) => serializer.serialize_some(v),
            None => serializer.serialize_none(),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let mut seq = serializer.serialize_seq(Some(self.len()))?;
        for item in self {
            seq.serialize_element(item)?;
        }
        seq.end()
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        self.as_slice().serialize(serializer)
    }
}

impl<K: Serialize, V: Serialize> Serialize for std::collections::BTreeMap<K, V> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let mut map = serializer.serialize_map(Some(self.len()))?;
        for (k, v) in self {
            map.serialize_entry(k, v)?;
        }
        map.end()
    }
}
