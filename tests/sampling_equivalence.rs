//! Determinism properties for the data-parallel samplers and the batch
//! prefetch pipeline (DESIGN.md §6).
//!
//! The contract: the chunk grid and per-chunk seeds are part of each
//! sampler's *definition*, so the sequential reference path
//! (`*_blocks_seq`) and the auto path (chunks on the worker pool when
//! more than one thread is configured) must produce **bitwise identical**
//! blocks — same node lists, same edge order, same weight bits — at any
//! thread count. Likewise, pipelined training must walk the exact same
//! parameter trajectory as the inline fallback.
//!
//! The auto-path proptests run at the ambient thread count, so CI's
//! `SGNN_THREADS=1` / `SGNN_THREADS=2` matrix checks both sides of the
//! dispatch; one test forces 2 threads regardless of host size.

use proptest::prelude::*;
use sgnn::core::trainer::{train_sampled, SamplerKind, TrainConfig};
use sgnn::data::sbm_dataset;
use sgnn::graph::{generate, NodeId};
use sgnn::linalg::par::set_threads;
use sgnn::sample::Block;
use std::sync::Mutex;

/// Serializes tests that depend on the global thread count (the test
/// harness runs #[test] functions concurrently and `set_threads` is
/// process-wide).
static THREADS: Mutex<()> = Mutex::new(());

fn blocks_equal(seq: &[Block], par: &[Block]) -> bool {
    seq.len() == par.len()
        && seq.iter().zip(par).all(|(a, b)| {
            a.dst == b.dst
                && a.src == b.src
                && a.indptr == b.indptr
                && a.cols == b.cols
                && a.weights.iter().map(|w| w.to_bits()).eq(b.weights.iter().map(|w| w.to_bits()))
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Node-wise: auto path ≡ sequential reference, bitwise.
    #[test]
    fn node_wise_auto_matches_seq(
        n in 300usize..1500,
        m in 1usize..5,
        t in 1usize..300,
        f1 in 1usize..8,
        f2 in 1usize..8,
        depth in 1usize..4,
        seed in 0u64..1000,
    ) {
        let _guard = THREADS.lock().unwrap_or_else(|e| e.into_inner());
        let g = generate::barabasi_albert(n, m, seed);
        let targets: Vec<NodeId> = (0..t.min(n) as NodeId).collect();
        let fanouts: Vec<usize> = [f1, f2, f1].into_iter().take(depth).collect();
        let seq = sgnn::sample::node_wise::sample_blocks_seq(&g, &targets, &fanouts, seed);
        let auto = sgnn::sample::node_wise::sample_blocks(&g, &targets, &fanouts, seed);
        prop_assert!(blocks_equal(&seq, &auto), "node-wise diverged (n={n}, t={t})");
    }

    /// LADIES: auto path ≡ sequential reference, bitwise. The shared
    /// weighted draw is one sequential RNG stream either way; only the
    /// destination-side passes are chunked.
    #[test]
    fn ladies_auto_matches_seq(
        n in 300usize..1500,
        m in 1usize..5,
        t in 1usize..300,
        s1 in 8usize..64,
        s2 in 8usize..64,
        seed in 0u64..1000,
    ) {
        let _guard = THREADS.lock().unwrap_or_else(|e| e.into_inner());
        let g = generate::barabasi_albert(n, m, seed);
        let targets: Vec<NodeId> = (0..t.min(n) as NodeId).collect();
        let sizes = [s1, s2];
        let seq = sgnn::sample::layer_wise::ladies_blocks_seq(&g, &targets, &sizes, seed);
        let auto = sgnn::sample::layer_wise::ladies_blocks(&g, &targets, &sizes, seed);
        prop_assert!(blocks_equal(&seq, &auto), "ladies diverged (n={n}, t={t})");
    }

    /// LABOR: auto path ≡ sequential reference, bitwise. The shared
    /// per-source variate is a stateless hash, so keep/drop decisions are
    /// independent of chunk visit order.
    #[test]
    fn labor_auto_matches_seq(
        n in 300usize..1500,
        m in 1usize..5,
        t in 1usize..300,
        k1 in 1usize..8,
        k2 in 1usize..8,
        seed in 0u64..1000,
    ) {
        let _guard = THREADS.lock().unwrap_or_else(|e| e.into_inner());
        let g = generate::barabasi_albert(n, m, seed);
        let targets: Vec<NodeId> = (0..t.min(n) as NodeId).collect();
        let fanouts = [k1, k2];
        let seq = sgnn::sample::labor::labor_blocks_seq(&g, &targets, &fanouts, seed);
        let auto = sgnn::sample::labor::labor_blocks(&g, &targets, &fanouts, seed);
        prop_assert!(blocks_equal(&seq, &auto), "labor diverged (n={n}, t={t})");
    }
}

/// Forces the pooled path (2 configured threads, multi-chunk target set)
/// regardless of host size — the proptests above only exercise it when
/// the ambient thread count exceeds one.
#[test]
fn all_samplers_match_seq_at_two_threads() {
    let _guard = THREADS.lock().unwrap_or_else(|e| e.into_inner());
    let g = generate::barabasi_albert(4_000, 6, 9);
    let targets: Vec<NodeId> = (0..1_000).collect();
    set_threads(2);
    let checks = [
        blocks_equal(
            &sgnn::sample::node_wise::sample_blocks_seq(&g, &targets, &[7, 7], 42),
            &sgnn::sample::node_wise::sample_blocks(&g, &targets, &[7, 7], 42),
        ),
        blocks_equal(
            &sgnn::sample::layer_wise::ladies_blocks_seq(&g, &targets, &[256, 128], 42),
            &sgnn::sample::layer_wise::ladies_blocks(&g, &targets, &[256, 128], 42),
        ),
        blocks_equal(
            &sgnn::sample::labor::labor_blocks_seq(&g, &targets, &[7, 7], 42),
            &sgnn::sample::labor::labor_blocks(&g, &targets, &[7, 7], 42),
        ),
    ];
    set_threads(0);
    assert_eq!(checks, [true; 3], "[node_wise, ladies, labor] parallel equivalence");
}

/// The pipeline's end-to-end determinism contract: with prefetch on, the
/// trainer consumes identical batches in identical order, so the whole
/// parameter trajectory — and with it the final loss bits, accuracies,
/// and epoch count of the `TrainReport` — matches the inline fallback
/// exactly.
#[test]
fn pipelined_train_sampled_matches_inline_exactly() {
    let _guard = THREADS.lock().unwrap_or_else(|e| e.into_inner());
    let ds = sbm_dataset(600, 3, 10.0, 0.9, 6, 0.8, 0, 0.5, 0.25, 1);
    set_threads(2);
    assert!(
        sgnn::core::pipeline::BatchPipeline::new(true).is_pipelined(),
        "prefetch must engage at 2 threads"
    );
    for sampler in [
        SamplerKind::NodeWise(vec![5, 5]),
        SamplerKind::LayerWise(vec![48, 32]),
        SamplerKind::Labor(vec![5, 5]),
    ] {
        let cfg = TrainConfig {
            epochs: 6,
            hidden: vec![16],
            batch_size: 128,
            prefetch: false,
            ..Default::default()
        };
        let (_, inline) = train_sampled(&ds, &sampler, &cfg).unwrap();
        let (_, piped) =
            train_sampled(&ds, &sampler, &TrainConfig { prefetch: true, ..cfg.clone() }).unwrap();
        assert_eq!(
            inline.final_loss.to_bits(),
            piped.final_loss.to_bits(),
            "{}: loss trajectory diverged",
            inline.name
        );
        assert_eq!(inline.test_acc, piped.test_acc, "{}: test accuracy diverged", inline.name);
        assert_eq!(inline.val_acc, piped.val_acc, "{}: val accuracy diverged", inline.name);
        assert_eq!(inline.epochs_run, piped.epochs_run);
    }
    set_threads(0);
}
