//! `SGNN_MEM_BUDGET` environment-variable budget (DESIGN.md §8).
//!
//! Lives in its own test binary: the variable is process-global, and the
//! budget is re-read at every `Ledger` construction, so any concurrently
//! running trainer in the same process would also be capped. Keeping this
//! file to a single test makes the mutation race-free.

use sgnn::core::error::TrainError;
use sgnn::core::trainer::{train_full_gcn, TrainConfig};
use sgnn::data::sbm_dataset;

#[test]
fn env_budget_caps_trainers_and_lifts_cleanly() {
    let ds = sbm_dataset(200, 3, 8.0, 0.85, 6, 0.8, 0, 0.5, 0.25, 31);
    let cfg = TrainConfig { epochs: 2, hidden: vec![4], ..Default::default() };

    std::env::set_var("SGNN_MEM_BUDGET", "1K");
    let err = train_full_gcn(&ds, &cfg).err().expect("1 KiB env budget must trip");
    assert!(matches!(err, TrainError::BudgetExceeded(_)), "got {err:?}");

    std::env::remove_var("SGNN_MEM_BUDGET");
    let (_, report) = train_full_gcn(&ds, &cfg).unwrap();
    assert!(report.final_loss.is_finite());
}
