//! Cross-crate property tests: invariants that must hold across module
//! boundaries, checked with proptest over randomized graphs.

use proptest::prelude::*;
use sgnn::graph::normalize::{normalized_adjacency, NormKind};
use sgnn::graph::GraphBuilder;
use sgnn::linalg::DenseMatrix;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Push-based PPR and power iteration agree within the push bound on
    /// arbitrary graphs.
    #[test]
    fn ppr_push_matches_power_everywhere(
        edges in proptest::collection::vec((0u32..40, 0u32..40), 1..250),
        source in 0u32..40,
    ) {
        let g = GraphBuilder::new(40).symmetric().drop_self_loops()
            .edges(&edges).build().unwrap();
        let eps = 1e-7;
        let alpha = 0.2;
        let exact = sgnn::prop::push::ppr_power(&g, source, alpha, 1e-13, 5000);
        let (approx, _) = sgnn::prop::forward_push(&g, source, alpha, eps);
        for v in 0..40usize {
            let err = exact[v] - approx[v];
            prop_assert!(err >= -1e-9, "underestimate violated at {}: {}", v, err);
            let bound = eps * g.degree(v as u32).max(1) as f64 + 1e-9;
            prop_assert!(err <= bound, "bound violated at {}: {} > {}", v, err, bound);
        }
    }

    /// Hub-label SPD equals BFS on arbitrary graphs (cross-crate: sim vs
    /// graph::traverse).
    #[test]
    fn hub_labels_equal_bfs(
        edges in proptest::collection::vec((0u32..25, 0u32..25), 0..100),
    ) {
        let g = GraphBuilder::new(25).symmetric().drop_self_loops()
            .edges(&edges).build().unwrap();
        let h = sgnn::sim::HubLabels::build(&g);
        for s in (0..25u32).step_by(5) {
            let d = sgnn::graph::traverse::bfs_distances(&g, s);
            for t in 0..25u32 {
                prop_assert_eq!(h.query(s, t), d[t as usize]);
            }
        }
    }

    /// Sampled-block aggregation commutes with gradient transposition:
    /// <Bx, y> == <x, Bᵀy> for every sampler.
    #[test]
    fn block_forward_backward_adjoint(
        edges in proptest::collection::vec((0u32..30, 0u32..30), 10..200),
        seed in 0u64..1000,
    ) {
        let g = GraphBuilder::new(30).symmetric().drop_self_loops()
            .edges(&edges).build().unwrap();
        let targets: Vec<u32> = (0..6).collect();
        for blocks in [
            sgnn::sample::node_wise::sample_blocks(&g, &targets, &[3], seed),
            sgnn::sample::labor::labor_blocks(&g, &targets, &[3], seed),
            vec![sgnn::sample::layer_wise::ladies_block(&g, &targets, 8, seed)],
        ] {
            let b = &blocks[0];
            let x = DenseMatrix::gaussian(b.num_src(), 3, 1.0, seed);
            let y = DenseMatrix::gaussian(b.num_dst(), 3, 1.0, seed + 1);
            let bx = b.aggregate(&x);
            let bty = b.aggregate_backward(&y);
            let lhs = sgnn::linalg::vecops::dot(bx.data(), y.data());
            let rhs = sgnn::linalg::vecops::dot(x.data(), bty.data());
            prop_assert!((lhs - rhs).abs() < 1e-3 * (1.0 + lhs.abs()),
                "adjoint mismatch: {} vs {}", lhs, rhs);
        }
    }

    /// Coarsening conserves node mass and produces valid graphs at any
    /// ratio.
    #[test]
    fn coarsening_conserves_mass(
        edges in proptest::collection::vec((0u32..35, 0u32..35), 5..150),
        ratio in 0.1f64..1.0,
    ) {
        let g = GraphBuilder::new(35).symmetric().drop_self_loops()
            .edges(&edges).build().unwrap();
        let c = sgnn::coarsen::coarsen_to_ratio(&g, ratio, 7);
        c.graph.validate().unwrap();
        prop_assert_eq!(c.node_weights.iter().sum::<u32>() as usize, 35);
        prop_assert_eq!(c.map.len(), 35);
        for &m in &c.map {
            prop_assert!((m as usize) < c.num_coarse());
        }
    }

    /// Unifews at δ=0 equals exact propagation for any graph/signal.
    #[test]
    fn unifews_zero_delta_is_exact(
        edges in proptest::collection::vec((0u32..20, 0u32..20), 1..80),
        seed in 0u64..100,
    ) {
        let g = GraphBuilder::new(20).symmetric().drop_self_loops()
            .edges(&edges).build().unwrap();
        let a = normalized_adjacency(&g, NormKind::Sym, true).unwrap();
        let x = DenseMatrix::gaussian(20, 3, 1.0, seed);
        let (h, stats) = sgnn::sparsify::unifews_propagate(&a, &x, 2, 0.0);
        let exact = sgnn::prop::power_propagate(&a, &x, 2);
        prop_assert_eq!(stats.prune_ratio(), 0.0);
        let diff = h.sub(&exact).unwrap().frobenius();
        prop_assert!(diff < 1e-4);
    }

    /// Partition quality metrics are consistent: edge-cut in [0,1],
    /// balance ≥ 1, replication ≥ 1 for every partitioner.
    #[test]
    fn partition_metrics_are_well_formed(
        edges in proptest::collection::vec((0u32..40, 0u32..40), 10..200),
        k in 2usize..6,
    ) {
        let g = GraphBuilder::new(40).symmetric().drop_self_loops()
            .edges(&edges).build().unwrap();
        for p in [
            sgnn::partition::hash_partition(40, k),
            sgnn::partition::ldg(&g, k, 1.2),
            sgnn::partition::fennel(&g, k, 1.2),
        ] {
            let q = sgnn::partition::metrics::quality(&g, &p);
            prop_assert!((0.0..=1.0).contains(&q.edge_cut));
            prop_assert!(q.balance >= 1.0 - 1e-9);
            prop_assert!(q.replication >= 1.0 - 1e-9);
        }
    }
}
