//! Differential serving suite (DESIGN.md §12).
//!
//! Pins the online-serving determinism contract:
//!
//! - the column-parallel feature push equals the sequential reference
//!   **bitwise** at any configured thread count, for `rmax = 0` (exact
//!   kernel) and `rmax > 0` alike — parallelism is over feature
//!   columns, and columns are merged in index order;
//! - for `rmax > 0` the push answer is within the documented entrywise
//!   residual bound `|p − S·x| < rmax` of the exact kernel;
//! - batched serving is bitwise-equal to one-at-a-time serving over the
//!   same request trace, including under LRU eviction pressure and
//!   confidence-gated escalation;
//! - replay counters (cache hits/misses/evictions, planner decisions)
//!   are reproducible run-to-run and across `SGNN_THREADS=1/2`;
//! - the `F32` quantization mode of the serving head is bitwise-equal
//!   to the training-time forward.
//!
//! CI runs this file under an `SGNN_THREADS=1` / `SGNN_THREADS=2`
//! matrix so the ambient-thread proptests cover both regimes.

use proptest::prelude::*;
use sgnn::graph::{generate, NodeId};
use sgnn::linalg::par::set_threads;
use sgnn::linalg::{DenseMatrix, QuantMode};
use sgnn::nn::Mlp;
use sgnn::serve::{
    smooth_column_exact, smooth_matrix, smooth_matrix_seq, PlannerConfig, PrecomputePolicy,
    ServeConfig, ServeEngine, ServeStats,
};
use std::sync::Mutex;

/// Serializes tests that depend on the global thread count (the test
/// harness runs #[test] functions concurrently and `set_threads` is
/// process-wide).
static THREADS: Mutex<()> = Mutex::new(());

fn bits(m: &DenseMatrix) -> Vec<u32> {
    m.data().iter().map(|v| v.to_bits()).collect()
}

/// A fresh engine over a deterministic BA graph, sized so a trace hits
/// store rows, cache hits, evictions, full pushes, and sampled pushes.
fn engine(n: usize, seed: u64, cache: usize, escalate: Option<f32>) -> ServeEngine {
    let g = generate::barabasi_albert(n, 3, seed);
    let x = DenseMatrix::gaussian(n, 5, 1.0, seed ^ 0xA5);
    let head = Mlp::new(&[5, 8, 4], 0.0, 17);
    let cfg = ServeConfig {
        alpha: 0.15,
        policy: PrecomputePolicy::Hot { count: n / 12, eps: 1e-6 },
        planner: PlannerConfig {
            hub_degree: 10,
            hub_frontier: 512,
            full_eps: 1e-6,
            sampled_eps: 1e-3,
            escalate_below: escalate,
        },
        cache_capacity: cache,
        quant: QuantMode::F32,
        ..Default::default()
    };
    ServeEngine::new(g, x, head, cfg)
}

/// Serves `trace` in `batch`-sized chunks, returning all logits bits
/// plus the final counters.
fn serve_trace(e: &mut ServeEngine, trace: &[NodeId], batch: usize) -> (Vec<u32>, ServeStats) {
    let mut all = Vec::new();
    for chunk in trace.chunks(batch.max(1)) {
        all.extend(bits(&e.serve_batch(chunk)));
    }
    (all, e.stats().clone())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Column-parallel push ≡ sequential reference, bitwise, for the
    /// exact kernel (`rmax = 0`) and the thresholded push alike.
    #[test]
    fn smooth_matrix_matches_seq_bitwise(
        n in 60usize..400,
        d in 1usize..7,
        m in 1usize..4,
        rmax_exp in 0usize..4, // 0 → exact kernel, else 10^-(2+k)
        seed in 0u64..1000,
    ) {
        let _guard = THREADS.lock().unwrap_or_else(|e| e.into_inner());
        let g = generate::barabasi_albert(n, m, seed);
        let x = DenseMatrix::gaussian(n, d, 1.0, seed ^ 7);
        let rmax = if rmax_exp == 0 { 0.0 } else { 10f64.powi(-(1 + rmax_exp as i32)) };
        let (seq, _) = smooth_matrix_seq(&g, &x, 0.15, rmax);
        for t in [1usize, 2] {
            set_threads(t);
            let (par, _) = smooth_matrix(&g, &x, 0.15, rmax);
            prop_assert_eq!(bits(&par), bits(&seq), "diverged at {} thread(s)", t);
        }
        set_threads(0);
    }

    /// Thresholded push is within the documented entrywise bound
    /// `|p − S·x| < rmax` of the exact kernel (DESIGN.md §12).
    #[test]
    fn push_within_rmax_of_exact(
        n in 60usize..300,
        m in 1usize..4,
        rmax_exp in 2u32..5,
        seed in 0u64..1000,
    ) {
        let g = generate::barabasi_albert(n, m, seed);
        let x = DenseMatrix::gaussian(n, 3, 1.0, seed ^ 11);
        let rmax = 10f64.powi(-(rmax_exp as i32));
        let (approx, _) = smooth_matrix_seq(&g, &x, 0.15, rmax);
        // The analytic bound is on the f64 push output; the matrix path
        // stores rows as f32, so allow that one rounding on top.
        let slack = f32::EPSILON as f64 * 8.0;
        for c in 0..x.cols() {
            let col: Vec<f64> = (0..n).map(|r| x.row(r)[c] as f64).collect();
            let (exact, _) = smooth_column_exact(&g, &col, 0.15);
            for (r, &e) in exact.iter().enumerate() {
                let err = (approx.row(r)[c] as f64 - e).abs();
                prop_assert!(
                    err < rmax + slack,
                    "entry ({}, {}): |approx − exact| = {:.3e} ≥ rmax = {:.1e}", r, c, err, rmax
                );
            }
        }
    }

    /// Batched answers ≡ one-at-a-time answers, bitwise, over random
    /// traces — under cache eviction pressure and with escalation on.
    #[test]
    fn batched_equals_one_at_a_time(
        n in 120usize..400,
        trace in proptest::collection::vec(0usize..400, 10..80),
        batch in 1usize..16,
        cache in 0usize..8,
        escalate_on in proptest::bool::ANY,
        tau in 0.3f32..0.9,
        seed in 0u64..1000,
    ) {
        let escalate = escalate_on.then_some(tau);
        let trace: Vec<NodeId> = trace.into_iter().map(|u| (u % n) as NodeId).collect();
        let mut a = engine(n, seed, cache, escalate);
        let mut b = engine(n, seed, cache, escalate);
        let (got, _) = serve_trace(&mut a, &trace, batch);
        let mut want = Vec::new();
        for &u in &trace {
            let (row, _) = b.serve_one(u);
            want.extend(row.iter().map(|v| v.to_bits()));
        }
        prop_assert_eq!(got, want, "batch={} cache={} diverged", batch, cache);
    }

    /// Replay counters are a pure function of the request trace: two
    /// fresh engines serving the same trace the same way report
    /// identical stats, at 1 and 2 configured threads.
    #[test]
    fn replay_counters_are_reproducible(
        n in 120usize..400,
        trace in proptest::collection::vec(0usize..400, 10..60),
        batch in 1usize..12,
        seed in 0u64..1000,
    ) {
        let _guard = THREADS.lock().unwrap_or_else(|e| e.into_inner());
        let trace: Vec<NodeId> = trace.into_iter().map(|u| (u % n) as NodeId).collect();
        let mut reference: Option<(Vec<u32>, ServeStats)> = None;
        for t in [1usize, 2, 2] {
            set_threads(t);
            let mut e = engine(n, seed, 4, Some(0.6));
            let run = serve_trace(&mut e, &trace, batch);
            match &reference {
                None => reference = Some(run),
                Some(want) => prop_assert_eq!(&run, want, "replay diverged at {} thread(s)", t),
            }
        }
        set_threads(0);
    }
}

/// The `F32` "quantization" mode is the identity: serving with it is
/// bitwise-equal to the training-time forward pass on the same rows.
#[test]
fn f32_quant_head_is_bitwise() {
    let n = 200;
    let g = generate::barabasi_albert(n, 3, 9);
    let x = DenseMatrix::gaussian(n, 5, 1.0, 4);
    let head = Mlp::new(&[5, 8, 4], 0.0, 17);
    let cfg = ServeConfig {
        policy: PrecomputePolicy::Full { rmax: 1e-4 },
        quant: QuantMode::F32,
        ..Default::default()
    };
    let mut e = ServeEngine::new(g.clone(), x.clone(), head.clone(), cfg);
    let trace: Vec<NodeId> = (0..64).map(|i| (i * 3 % n) as NodeId).collect();
    let got = e.serve_batch(&trace);
    let (emb, _) = smooth_matrix_seq(&g, &x, 0.15, 1e-4);
    let mut gathered = DenseMatrix::zeros(trace.len(), x.cols());
    let rows: Vec<usize> = trace.iter().map(|&u| u as usize).collect();
    emb.gather_rows_into(&rows, &mut gathered);
    let want = head.forward_inference(&gathered);
    assert_eq!(bits(&got), bits(&want));
}

/// Eviction pressure sanity: a cache smaller than the working set must
/// evict, and counters still replay exactly (pinned, not proptested, so
/// the eviction path is guaranteed covered every CI run).
#[test]
fn eviction_counters_replay_exactly() {
    // Cycle through more distinct non-hub nodes than the cache holds.
    let serve = |e: &mut ServeEngine| {
        let trace: Vec<NodeId> = (0..90u32).map(|i| 100 + (i * 7) % 80).collect();
        serve_trace(e, &trace, 8)
    };
    let (bits_a, stats_a) = serve(&mut engine(300, 5, 4, None));
    let (bits_b, stats_b) = serve(&mut engine(300, 5, 4, None));
    assert!(stats_a.cache_evictions > 0, "working set must overflow the 4-row cache");
    assert_eq!(stats_a, stats_b);
    assert_eq!(bits_a, bits_b);
}
