//! Cross-crate integration tests: full pipelines from dataset generation
//! through training to evaluation, exercising the public facade API the
//! way a downstream user would.

use sgnn::core::models::decoupled::PrecomputeMethod;
use sgnn::core::trainer::{
    train_cluster_gcn, train_coarse, train_decoupled, train_full_gcn, train_saint, train_sampled,
    SamplerKind, TrainConfig,
};
use sgnn::data::sbm_dataset;
use sgnn::spectral::Ld2Config;

fn dataset() -> sgnn::data::Dataset {
    sbm_dataset(800, 4, 10.0, 0.9, 8, 0.8, 0, 0.5, 0.25, 21)
}

fn cfg() -> TrainConfig {
    TrainConfig { epochs: 35, hidden: vec![16], dropout: 0.1, ..Default::default() }
}

#[test]
fn every_training_family_learns_the_same_dataset() {
    let ds = dataset();
    let cfg = cfg();
    let mut results: Vec<(String, f64)> = Vec::new();
    let (_, r) = train_full_gcn(&ds, &cfg).unwrap();
    results.push((r.name.clone(), r.test_acc));
    for method in [
        PrecomputeMethod::Sgc { k: 2 },
        PrecomputeMethod::Appnp { alpha: 0.15, k: 8 },
        PrecomputeMethod::Ld2(Ld2Config::default()),
    ] {
        let (_, r) = train_decoupled(&ds, &method, &cfg).unwrap();
        results.push((r.name.clone(), r.test_acc));
    }
    let cfg_s = TrainConfig { epochs: 20, batch_size: 128, ..cfg.clone() };
    let (_, r) = train_sampled(&ds, &SamplerKind::NodeWise(vec![5, 5]), &cfg_s).unwrap();
    results.push((r.name.clone(), r.test_acc));
    let (_, r) =
        train_saint(&ds, sgnn::sample::SaintSampler::RandomWalk { roots: 50, length: 5 }, 4, &cfg)
            .unwrap();
    results.push((r.name.clone(), r.test_acc));
    let (_, r) = train_cluster_gcn(&ds, 8, 2, &cfg).unwrap();
    results.push((r.name.clone(), r.test_acc));
    for (name, acc) in &results {
        assert!(*acc > 0.65, "{name} accuracy {acc} too low: {results:?}");
    }
}

#[test]
fn decoupled_peak_memory_beats_full_batch_at_scale() {
    // The E13 headline claim as an invariant: at fixed accuracy budget the
    // decoupled pipeline's peak memory is far below full-batch GCN's.
    let ds = sbm_dataset(5_000, 4, 10.0, 0.9, 16, 0.8, 0, 0.5, 0.25, 22);
    let cfg = TrainConfig { epochs: 15, hidden: vec![32], ..Default::default() };
    let (_, full) = train_full_gcn(&ds, &cfg).unwrap();
    let (_, dec) = train_decoupled(&ds, &PrecomputeMethod::Sgc { k: 2 }, &cfg).unwrap();
    assert!(
        (dec.peak_mem_bytes as f64) < 0.6 * full.peak_mem_bytes as f64,
        "decoupled {} vs full {}",
        dec.peak_mem_bytes,
        full.peak_mem_bytes
    );
    assert!(dec.test_acc > full.test_acc - 0.08);
}

#[test]
fn coarse_training_is_cheaper_and_close_in_accuracy() {
    let ds = dataset();
    let cfg = cfg();
    let (_, full) = train_full_gcn(&ds, &cfg).unwrap();
    let coarse = train_coarse(&ds, 0.3, &cfg).unwrap();
    assert!(coarse.peak_mem_bytes < full.peak_mem_bytes);
    assert!(
        coarse.test_acc > full.test_acc - 0.25,
        "coarse {} vs full {}",
        coarse.test_acc,
        full.test_acc
    );
}

#[test]
fn graph_io_round_trips_through_disk_format() {
    let ds = dataset();
    let bytes = sgnn::graph::io::to_bytes(&ds.graph);
    let g2 = sgnn::graph::io::from_bytes(bytes).unwrap();
    assert_eq!(ds.graph.indptr(), g2.indptr());
    assert_eq!(ds.graph.indices(), g2.indices());
}

#[test]
fn taxonomy_modules_reference_existing_crates() {
    // Every module path mentioned in the Figure 1 tree must name crates
    // that exist in this workspace (string-level sanity against drift).
    let known = [
        "sgnn_linalg",
        "sgnn_graph",
        "sgnn_prop",
        "sgnn_spectral",
        "sgnn_sim",
        "sgnn_sample",
        "sgnn_partition",
        "sgnn_sparsify",
        "sgnn_coarsen",
        "sgnn_nn",
        "sgnn_core",
        "sgnn_data",
    ];
    for leaf in sgnn::core::taxonomy::figure1().leaves() {
        let m = leaf.module.unwrap();
        assert!(
            known.iter().any(|k| m.contains(k)),
            "leaf {} maps to unknown module {m}",
            leaf.name
        );
    }
}
