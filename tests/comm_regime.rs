//! Differential suite for the compressed communication regime
//! (DESIGN.md §11).
//!
//! The contract being pinned: `Compressed { quant: F32, staleness: 1 }`
//! is *identity compression* — it routes every superstep through the
//! full compressed machinery (export gather, EF residual add,
//! "quantize"/dequantize, ghost build, interior/boundary overlap split)
//! and must reproduce the exact regime **bitwise** for every partitioner
//! family, shard count, and thread count. Lossy modes and staleness > 1
//! trade that for bounded divergence: the int8/f16 final loss stays
//! within the §11 bound, error-feedback residuals stay bounded over
//! arbitrarily many supersteps (no drift), and stale-hit/bytes-saved
//! accounting is exactly predictable from the plan and epoch count.
//!
//! The suite runs at the ambient thread count, so CI's `SGNN_THREADS=1`
//! / `SGNN_THREADS=2` matrix covers inline and pooled supersteps; one
//! test forces 2 threads regardless of host size.

use proptest::prelude::*;
use sgnn::core::models::gcn::Gcn;
use sgnn::core::shard::train_sharded_gcn;
use sgnn::core::trainer::{train_full_gcn, TrainConfig, TrainReport};
use sgnn::core::CommRegime;
use sgnn::data::sbm_dataset;
use sgnn::graph::CsrGraph;
use sgnn::linalg::par::set_threads;
use sgnn::linalg::quant::ef_compress_rows;
use sgnn::linalg::{DenseMatrix, QuantMode};
use sgnn::partition::multilevel::MultilevelConfig;
use sgnn::partition::{fennel, hash_partition, ldg, multilevel_partition, Partition, ShardPlan};
use std::sync::Mutex;

/// Serializes tests that touch the process-wide thread count.
static THREADS: Mutex<()> = Mutex::new(());

fn partition_by(which: usize, g: &CsrGraph, k: usize) -> Partition {
    match which {
        0 => hash_partition(g.num_nodes(), k),
        1 => ldg(g, k, 1.1),
        2 => fennel(g, k, 1.1),
        _ => multilevel_partition(g, k, &MultilevelConfig::default()),
    }
}

fn small_ds() -> sgnn::data::Dataset {
    sbm_dataset(360, 3, 8.0, 0.85, 6, 0.8, 0, 0.5, 0.25, 11)
}

fn assert_bitwise(a: &TrainReport, b: &TrainReport, tag: &str) {
    assert_eq!(a.final_loss.to_bits(), b.final_loss.to_bits(), "{tag}: loss bits diverged");
    assert_eq!(a.val_acc, b.val_acc, "{tag}: val accuracy diverged");
    assert_eq!(a.test_acc, b.test_acc, "{tag}: test accuracy diverged");
    assert_eq!(a.epochs_run, b.epochs_run, "{tag}: epoch count diverged");
}

fn weights_equal(a: &Gcn, b: &Gcn) -> bool {
    (0..a.num_layers()).all(|i| {
        let (la, lb) = (a.layer(i), b.layer(i));
        la.w.data().iter().map(|v| v.to_bits()).eq(lb.w.data().iter().map(|v| v.to_bits()))
            && la.b.data().iter().map(|v| v.to_bits()).eq(lb.b.data().iter().map(|v| v.to_bits()))
    })
}

// ---------------------------------------------------------------------------
// Identity compression (f32, staleness 1) is bitwise-exact
// ---------------------------------------------------------------------------

#[test]
fn f32_identity_compression_reproduces_exact_bitwise() {
    let ds = small_ds();
    let base = TrainConfig { epochs: 6, hidden: vec![8], ..Default::default() };
    let (ref_gcn, ref_report) = train_full_gcn(&ds, &base).unwrap();
    for which in 0..4usize {
        for k in [2usize, 4] {
            let part = partition_by(which, &ds.graph, k);
            let cfg = TrainConfig {
                comm_regime: CommRegime::Compressed { quant: QuantMode::F32, staleness: 1 },
                ..base.clone()
            };
            let (gcn, report, stats) = train_sharded_gcn(&ds, &part, &cfg).unwrap();
            let tag = format!("partitioner={which} k={k} f32,s=1");
            assert_bitwise(&ref_report, &report, &tag);
            assert!(weights_equal(&ref_gcn, &gcn), "{tag}: weight trajectory diverged");
            // Identity compression moves exactly the exact regime's
            // bytes: nothing saved, nothing stale.
            assert_eq!(stats.regime, "f32,s=1");
            assert_eq!(stats.halo_bytes_saved_per_epoch, 0, "{tag}");
            assert_eq!(stats.stale_hits, 0, "{tag}");
        }
    }
}

#[test]
fn f32_identity_compression_is_bitwise_at_two_threads() {
    let _guard = THREADS.lock().unwrap();
    let ds = small_ds();
    let base = TrainConfig { epochs: 5, hidden: vec![8], patience: Some(3), ..Default::default() };
    set_threads(1);
    let (_, ref_report) = train_full_gcn(&ds, &base).unwrap();
    let part = hash_partition(ds.num_nodes(), 3);
    let cfg = TrainConfig {
        comm_regime: CommRegime::Compressed { quant: QuantMode::F32, staleness: 1 },
        ..base.clone()
    };
    for threads in [1usize, 2] {
        set_threads(threads);
        let (_, report, _) = train_sharded_gcn(&ds, &part, &cfg).unwrap();
        assert_bitwise(&ref_report, &report, &format!("threads={threads}"));
    }
    set_threads(1);
}

// ---------------------------------------------------------------------------
// Staleness: deterministic refresh schedule, exact accounting
// ---------------------------------------------------------------------------

#[test]
fn stale_runs_are_reproducible_and_accounted_exactly() {
    let ds = small_ds();
    let epochs = 8usize;
    // No early stopping: the epoch count must be fixed for the exact
    // stale-hit arithmetic below.
    let cfg = TrainConfig {
        epochs,
        hidden: vec![8],
        comm_regime: CommRegime::Compressed { quant: QuantMode::F32, staleness: 2 },
        ..Default::default()
    };
    let part = hash_partition(ds.num_nodes(), 4);
    let plan = ShardPlan::build(&sgnn::core::models::gcn::gcn_operator(&ds.graph), &part).unwrap();
    let v = plan.halo_vectors();
    let (_, first, stats) = train_sharded_gcn(&ds, &part, &cfg).unwrap();
    // 2-layer model → one forward site visited once per epoch. With
    // s=2 visits 0,2,4,… refresh and 1,3,5,… hit the cache.
    let stale_visits = (epochs as u64) / 2;
    assert_eq!(stats.stale_hits, stale_visits * v, "stale hits are schedule-exact");
    // f32 wire bytes equal exact bytes, so everything saved comes from
    // elided stale exchanges: d_out = 8, 4 bytes/elem.
    let exact_exchange_bytes = v * 8 * 4;
    assert_eq!(
        stats.halo_bytes_saved_per_epoch,
        stale_visits * exact_exchange_bytes / epochs as u64,
        "bytes saved are schedule-exact"
    );
    // Same config, same bits — the refresh schedule is a function of
    // the visit counter, not of timing or thread interleaving.
    let (_, second, _) = train_sharded_gcn(&ds, &part, &cfg).unwrap();
    assert_eq!(first.final_loss.to_bits(), second.final_loss.to_bits());
    let _guard = THREADS.lock().unwrap();
    set_threads(2);
    let (_, third, _) = train_sharded_gcn(&ds, &part, &cfg).unwrap();
    set_threads(1);
    assert_eq!(first.final_loss.to_bits(), third.final_loss.to_bits(), "thread-count invariant");
}

// ---------------------------------------------------------------------------
// Lossy modes: bounded divergence, converging training
// ---------------------------------------------------------------------------

/// DESIGN.md §11 divergence bound for the bench/test configurations:
/// |loss_compressed − loss_exact| ≤ 0.15 for int8/f16 with s ≤ 4.
const LOSS_DIVERGENCE_BOUND: f32 = 0.15;

#[test]
fn lossy_compression_diverges_within_the_documented_bound() {
    let ds = small_ds();
    let base = TrainConfig { epochs: 10, hidden: vec![8], ..Default::default() };
    let (_, ref_report) = train_full_gcn(&ds, &base).unwrap();
    for k in [2usize, 4] {
        let part = hash_partition(ds.num_nodes(), k);
        for (quant, staleness) in
            [(QuantMode::Int8, 1), (QuantMode::Int8, 4), (QuantMode::F16, 1), (QuantMode::F16, 2)]
        {
            let cfg = TrainConfig {
                comm_regime: CommRegime::Compressed { quant, staleness },
                ..base.clone()
            };
            let (_, report, stats) = train_sharded_gcn(&ds, &part, &cfg).unwrap();
            let tag = format!("k={k} {}", stats.regime);
            let delta = (report.final_loss - ref_report.final_loss).abs();
            assert!(
                delta <= LOSS_DIVERGENCE_BOUND,
                "{tag}: |Δloss| = {delta} exceeds the §11 bound {LOSS_DIVERGENCE_BOUND}"
            );
            assert!(
                report.test_acc >= ref_report.test_acc - 0.1,
                "{tag}: accuracy collapsed ({} vs {})",
                report.test_acc,
                ref_report.test_acc
            );
            assert!(stats.halo_bytes_saved_per_epoch > 0, "{tag}: lossy mode must save bytes");
        }
    }
}

// ---------------------------------------------------------------------------
// Error feedback: residuals bounded over many supersteps (no drift)
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Feeding the same (randomly drawn) activation block through ≥ 50
    /// EF compression steps leaves the residual bounded by the one-step
    /// quantization error — error feedback re-injects, it never
    /// accumulates.
    #[test]
    fn ef_residual_stays_bounded_over_50_plus_supersteps(
        rows in 1usize..12,
        cols in 1usize..24,
        scale in 0.1f32..50.0,
        seed in 0u64..1000,
        lossy_mode in 0usize..2,
        steps in 50usize..90,
    ) {
        let mode = if lossy_mode == 0 { QuantMode::Int8 } else { QuantMode::F16 };
        let vals = DenseMatrix::gaussian(rows, cols, scale, seed);
        let max_abs = vals.data().iter().fold(0f32, |m, v| m.max(v.abs()));
        // Worst-case one-step relative quantization error q: int8 rounds
        // to 1/254 of the row max; f16 has an 11-bit significand.
        let q = match mode {
            QuantMode::Int8 => 1.0 / 254.0,
            _ => 4.9e-4,
        };
        let bound = q / (1.0 - q) * max_abs + 1e-6;
        let mut resid = DenseMatrix::zeros(rows, cols);
        for step in 0..steps {
            let _ = ef_compress_rows(&vals, &mut resid, mode);
            let worst = resid.data().iter().fold(0f32, |m, v| m.max(v.abs()));
            prop_assert!(
                worst <= bound,
                "step {step}: residual {worst} exceeds steady-state bound {bound}"
            );
        }
    }
}
