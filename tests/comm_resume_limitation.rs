//! Regression pin for compressed-resume determinism (DESIGN.md §11).
//!
//! Historically this file pinned a *limitation*: resuming a
//! `CommRegime::Compressed` run from a checkpoint was correct but not
//! bitwise, because the checkpoint carried only parameters, Adam
//! moments, and the stopper, while the compressed regime keeps two
//! extra pieces of epoch-evolving state — the error-feedback residuals
//! and the stale ghost snapshots (`staleness > 1`). A resume restarted
//! both at zero/fresh and the trajectory diverged bit-for-bit.
//!
//! The limitation is fixed: `core::ckpt` now threads a checkpoint
//! sidecar (`CkptSidecar`) through `save_epoch`/`try_restore`, and the
//! sharded trainer registers its `CommState` — residuals, ghost caches,
//! and staleness clocks ride in the same atomically-written file as the
//! parameters. This test therefore demands what
//! `tests/recovery_equivalence.rs` demands of the exact regime: a
//! killed-and-resumed compressed run reproduces the uninterrupted
//! compressed run bit-for-bit, at every kill site.

use sgnn::core::ckpt::SlotParams;
use sgnn::core::error::TrainError;
use sgnn::core::shard::train_sharded_gcn;
use sgnn::core::trainer::{train_full_gcn, TrainConfig};
use sgnn::core::CommRegime;
use sgnn::data::sbm_dataset;
use sgnn::fault::FaultPlan;
use sgnn::linalg::QuantMode;
use sgnn::partition::hash_partition;
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// Same envelope `tests/comm_regime.rs` enforces for lossy compression.
const LOSS_DIVERGENCE_BOUND: f32 = 0.15;

fn tmp_dir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("sgnn_commresume_{}_{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    std::fs::create_dir_all(&d).unwrap();
    d
}

fn maybe_ckpt(dir: &Path) -> Option<PathBuf> {
    let mut files: Vec<PathBuf> = std::fs::read_dir(dir)
        .unwrap()
        .map(|e| e.unwrap().path())
        .filter(|p| p.extension().is_some_and(|e| e == "ckpt"))
        .collect();
    assert!(files.len() <= 1, "one rolling checkpoint per trainer, found {files:?}");
    files.pop()
}

fn param_bits<M: SlotParams>(model: &mut M) -> Vec<u32> {
    let mut bits = Vec::new();
    model.visit_params_mut(&mut |p| bits.extend(p.data().iter().map(|v| v.to_bits())));
    bits
}

fn small_ds() -> sgnn::data::Dataset {
    sbm_dataset(240, 3, 8.0, 0.85, 5, 0.8, 0, 0.5, 0.25, 7)
}

/// Control: the exact regime resumes bitwise from a mid-run superstep
/// kill. Its checkpoint format is untouched by the sidecar (exact runs
/// register none), so this also pins that the fix costs the exact path
/// nothing.
#[test]
fn exact_resume_stays_bitwise() {
    let ds = small_ds();
    let base = TrainConfig { epochs: 4, hidden: vec![6], dropout: 0.1, ..Default::default() };
    let part = hash_partition(ds.num_nodes(), 2);
    let (mut reference, ref_report, _) = train_sharded_gcn(&ds, &part, &base).unwrap();
    let ref_bits = param_bits(&mut reference);
    let dir = tmp_dir("exact_s3");
    let plan = Arc::new(FaultPlan::new(5).kill_at_superstep(3));
    let cfg = TrainConfig {
        ckpt_dir: Some(dir.clone()),
        fault_plan: Some(Arc::clone(&plan)),
        ..base.clone()
    };
    match train_sharded_gcn(&ds, &part, &cfg) {
        Ok(_) => panic!("kill at superstep 3 did not fire"),
        Err(e) => {
            assert!(matches!(e, TrainError::InjectedCrash { site: "superstep", at: 3 }), "{e:?}")
        }
    }
    let resume = TrainConfig { resume_from: maybe_ckpt(&dir), ..base };
    let (mut gcn, report, _) = train_sharded_gcn(&ds, &part, &resume).unwrap();
    assert_eq!(report.final_loss.to_bits(), ref_report.final_loss.to_bits());
    assert_eq!(param_bits(&mut gcn), ref_bits, "exact regime must resume bitwise");
    let _ = std::fs::remove_dir_all(&dir);
}

/// The former limitation, now the contract: an int8 / staleness-2
/// compressed run killed mid-flight and resumed (a) lands inside the
/// §11 loss envelope against the exact reference and (b) reproduces the
/// uninterrupted compressed run bit-for-bit — EF residuals, ghost
/// caches, and staleness clocks all ride in the checkpoint sidecar.
#[test]
fn compressed_resume_is_bitwise() {
    let ds = small_ds();
    let base = TrainConfig { epochs: 4, hidden: vec![6], dropout: 0.1, ..Default::default() };
    let compressed = TrainConfig {
        comm_regime: CommRegime::Compressed { quant: QuantMode::Int8, staleness: 2 },
        ..base.clone()
    };
    let part = hash_partition(ds.num_nodes(), 2);
    let (_, exact_report) = train_full_gcn(&ds, &base).unwrap();
    let (mut uninterrupted, un_report, _) = train_sharded_gcn(&ds, &part, &compressed).unwrap();
    let uninterrupted_bits = param_bits(&mut uninterrupted);

    // Sweep several kill sites so the pin covers resumes that land both
    // mid-staleness-window (pending stale ghosts) and right after a
    // refresh (pending EF residuals only).
    let mut resumed_runs = 0usize;
    for s in [2u64, 3, 5, 7] {
        let dir = tmp_dir(&format!("int8_s{s}"));
        let plan = Arc::new(FaultPlan::new(9).kill_at_superstep(s));
        let cfg = TrainConfig {
            ckpt_dir: Some(dir.clone()),
            fault_plan: Some(Arc::clone(&plan)),
            ..compressed.clone()
        };
        match train_sharded_gcn(&ds, &part, &cfg) {
            Err(e) => {
                assert!(
                    matches!(e, TrainError::InjectedCrash { site: "superstep", at } if at == s),
                    "s={s}: unexpected error {e:?}"
                );
                let resume = TrainConfig { resume_from: maybe_ckpt(&dir), ..compressed.clone() };
                let (mut gcn, report, _) = train_sharded_gcn(&ds, &part, &resume).unwrap();
                resumed_runs += 1;
                // (a) Correctness: resumed compressed loss stays within
                // the §11 envelope of the exact reference.
                let delta = (report.final_loss - exact_report.final_loss).abs();
                assert!(
                    delta <= LOSS_DIVERGENCE_BOUND,
                    "s={s}: |Δloss| = {delta} exceeds the §11 bound {LOSS_DIVERGENCE_BOUND}"
                );
                // (b) Determinism: bitwise identity with the
                // uninterrupted compressed run.
                assert_eq!(
                    report.final_loss.to_bits(),
                    un_report.final_loss.to_bits(),
                    "s={s}: resumed loss must match the uninterrupted run bitwise"
                );
                assert_eq!(
                    param_bits(&mut gcn),
                    uninterrupted_bits,
                    "s={s}: compressed resume must be bitwise"
                );
            }
            Ok(_) => {
                // Kill site past the schedule end — nothing to resume.
                assert!(!plan.exhausted(), "s={s}: run completed after its kill fired");
            }
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
    assert!(resumed_runs >= 2, "kill sweep never interrupted the run");
}
