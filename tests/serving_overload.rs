//! Overload/degradation contract of `sgnn-serve` (DESIGN.md §13).
//!
//! Pins the three properties the overload layer is built around:
//!
//! - **Harmless when idle** — with an unbounded queue, disabled
//!   pressure thresholds, no deadline budgets, no breaker trips, and no
//!   fault plan, the pressured serving path is the PR 9 path
//!   bit-for-bit: identical logits and identical replay counters.
//! - **Replay-exact under load** — a *recorded* overload trace (per
//!   request: node, pressure, expired flag, observed deadline outcome)
//!   replays the exact same ladder decisions, shed/degrade counts, and
//!   breaker transitions run-to-run. Wall-clock only ever chooses which
//!   rung a live request lands on; given the rung, the bits are pure.
//!   CI runs this file under `SGNN_THREADS=1/2` to pin thread
//!   invariance as well.
//! - **Deterministic shutdown and chaos behavior** — the queue's
//!   documented shutdown edges hold under racing producers, and armed
//!   serving faults (latency spikes, store-row corruption) are absorbed
//!   without changing any answered bit.

use sgnn::fault::FaultPlan;
use sgnn::graph::{generate, NodeId};
use sgnn::linalg::par::set_threads;
use sgnn::linalg::DenseMatrix;
use sgnn::nn::Mlp;
use sgnn::serve::{
    run_server, AdmissionQueue, BatchConfig, BreakerConfig, OverloadConfig, PlannerConfig,
    PrecomputePolicy, Pressure, PressureConfig, PressuredRequest, ServeConfig, ServeEngine,
    ServeStats, Strategy,
};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Serializes tests that flip the global thread count (same pattern as
/// `tests/serving_equivalence.rs`).
static THREADS: Mutex<()> = Mutex::new(());

fn bits(m: &DenseMatrix) -> Vec<u32> {
    m.data().iter().map(|v| v.to_bits()).collect()
}

const N: usize = 160;

fn engine_with_cache(
    policy: PrecomputePolicy,
    breaker: Option<BreakerConfig>,
    cache_capacity: usize,
) -> ServeEngine {
    let g = generate::barabasi_albert(N, 3, 5);
    let x = DenseMatrix::gaussian(N, 5, 1.0, 2);
    let head = Mlp::new(&[5, 8, 4], 0.0, 17);
    let cfg = ServeConfig {
        policy,
        planner: PlannerConfig {
            hub_degree: 10,
            hub_frontier: 512,
            full_eps: 1e-6,
            sampled_eps: 1e-3,
            escalate_below: None,
        },
        cache_capacity,
        breaker,
        ..Default::default()
    };
    ServeEngine::new(g, x, head, cfg)
}

fn engine(policy: PrecomputePolicy, breaker: Option<BreakerConfig>) -> ServeEngine {
    engine_with_cache(policy, breaker, 8)
}

fn hot() -> PrecomputePolicy {
    PrecomputePolicy::Hot { count: N / 10, eps: 1e-6 }
}

/// Idle differential: the pressured path with everything at `Normal`
/// (and a configured-but-untripped breaker) must be bitwise the PR 9
/// path — same logits, same counters.
#[test]
fn idle_overload_layer_is_bitwise_harmless() {
    let trace: Vec<NodeId> = (0..120u32).map(|i| (i * 13) % N as u32).collect();
    let mut pressured = engine(hot(), Some(BreakerConfig::default()));
    let mut plain = engine(hot(), None);
    let mut got = Vec::new();
    let mut want = Vec::new();
    for chunk in trace.chunks(9) {
        let reqs: Vec<PressuredRequest> = chunk
            .iter()
            .map(|&node| PressuredRequest { node, pressure: Pressure::Normal, expired: false })
            .collect();
        let (logits, strategies) = pressured.serve_batch_pressured(&reqs);
        for &s in &strategies {
            pressured.note_outcome(s, false);
        }
        got.extend(bits(&logits));
        want.extend(bits(&plain.serve_batch(chunk)));
    }
    assert_eq!(got, want, "idle pressured serving must be bitwise the PR 9 path");
    assert_eq!(pressured.stats(), plain.stats(), "idle counters must match exactly");
    assert_eq!(pressured.stats().shed, 0);
    assert_eq!(pressured.stats().degraded, 0);
    assert_eq!(pressured.stats().deadline_miss, 0);
    assert_eq!(pressured.breaker_state(), 0, "breaker must stay closed when nothing misses");
}

/// The same idleness, through `run_server`: an overload config whose
/// thresholds never fire and with no deadline budget serves the same
/// strategies and counters as the PR 9 server loop.
#[test]
fn run_server_with_disabled_overload_matches_plain_serving() {
    let serve = |overload: Option<OverloadConfig>| {
        let mut e = engine(hot(), None);
        let q = AdmissionQueue::new();
        for i in 0..80u32 {
            assert!(q.push((i * 7) % N as u32));
        }
        q.close();
        let served = run_server(
            &mut e,
            &q,
            &BatchConfig { deadline: Duration::ZERO, max_batch: 16, overload },
        );
        let strategies: Vec<Strategy> = served.iter().map(|s| s.strategy).collect();
        let missed: Vec<bool> = served.iter().map(|s| s.deadline_missed).collect();
        (strategies, missed, e.stats().clone())
    };
    let disabled = OverloadConfig { pressure: PressureConfig::disabled(), request_deadline: None };
    let (s_a, m_a, stats_a) = serve(Some(disabled));
    let (s_b, m_b, stats_b) = serve(None);
    assert_eq!(s_a, s_b);
    assert!(m_a.iter().all(|&m| !m), "no budget → no deadline misses");
    assert_eq!(m_a, m_b);
    assert_eq!(stats_a, stats_b);
}

/// One recorded overload walk: a deterministic pressure/expiry schedule
/// over a skewed node trace, with recorded deadline outcomes fed back
/// to the breaker. Returns everything observable.
fn replay_walk() -> (Vec<u32>, Vec<Strategy>, ServeStats, u64) {
    // Cache 64 > the 40 distinct nodes below: stale rows admitted on a
    // Degraded visit are never evicted, so the CachedOnly revisit of the
    // same node (40 requests later, one pressure class over) serves them.
    let mut e = engine_with_cache(hot(), Some(BreakerConfig { trip_after: 2, probe_after: 3 }), 64);
    let mut all_bits = Vec::new();
    let mut all_strategies = Vec::new();
    let reqs: Vec<PressuredRequest> = (0..240u64)
        .map(|i| {
            let pressure = match (i / 8) % 4 {
                0 => Pressure::Normal,
                1 => Pressure::Degraded,
                2 => Pressure::CachedOnly,
                _ => Pressure::Shed,
            };
            PressuredRequest { node: ((i * 13) % 40) as NodeId, pressure, expired: i % 11 == 0 }
        })
        .collect();
    for (b, chunk) in reqs.chunks(9).enumerate() {
        let (logits, strategies) = e.serve_batch_pressured(chunk);
        for (j, &s) in strategies.iter().enumerate() {
            // Recorded outcome: deterministic in the request index, as a
            // replay harness would feed it from a trace file.
            let missed = (b * 9 + j) % 5 < 2;
            e.note_outcome(s, missed);
        }
        all_bits.extend(bits(&logits));
        all_strategies.extend(strategies);
    }
    let breaker_state = e.breaker_state();
    (all_bits, all_strategies, e.stats().clone(), breaker_state)
}

/// Recorded overload traces replay exactly: ladder decisions, shed and
/// degrade counts, breaker trips, and every answered bit — run-to-run
/// and across `SGNN_THREADS=1/2`.
#[test]
fn recorded_overload_trace_replays_exactly() {
    let _guard = THREADS.lock().unwrap_or_else(|e| e.into_inner());
    let mut reference: Option<(Vec<u32>, Vec<Strategy>, ServeStats, u64)> = None;
    for t in [1usize, 2, 2] {
        set_threads(t);
        let run = replay_walk();
        match &reference {
            None => {
                // The schedule must actually exercise the machinery it
                // pins, not idle through it.
                let stats = &run.2;
                assert!(stats.shed > 0, "schedule never shed");
                assert!(stats.degraded > 0, "schedule never degraded");
                assert!(stats.plan_stale > 0, "schedule never served a stale row");
                assert!(stats.breaker_trips > 0, "schedule never tripped the breaker");
                assert!(stats.deadline_miss > 0, "schedule never missed a deadline");
                reference = Some(run);
            }
            Some(want) => assert_eq!(&run, want, "overload replay diverged at {t} thread(s)"),
        }
    }
    set_threads(0);
}

/// Deadline budgets thread from enqueue to answer: a zero budget is
/// expired by serve time, so store-backed requests fall to their
/// cheapest viable tier (`Cached`) and row-less requests are shed —
/// never a push.
#[test]
fn expired_budgets_are_answered_by_cheapest_viable_tier() {
    // Full store: every expired request still has a fresh row → Cached,
    // and the answer missed its (zero) budget.
    let mut e = engine(PrecomputePolicy::Full { rmax: 1e-4 }, None);
    let q = AdmissionQueue::new();
    for i in 0..40u32 {
        assert!(q.push_with_deadline(i % N as u32, Some(Duration::ZERO)));
    }
    q.close();
    // The budget clock starts at enqueue; any elapsed time expires it.
    std::thread::sleep(Duration::from_millis(2));
    let cfg = BatchConfig {
        deadline: Duration::ZERO,
        max_batch: 8,
        overload: Some(OverloadConfig {
            pressure: PressureConfig::disabled(),
            request_deadline: None,
        }),
    };
    let served = run_server(&mut e, &q, &cfg);
    assert_eq!(served.len(), 40);
    assert!(served.iter().all(|s| s.strategy == Strategy::Cached));
    assert!(served.iter().all(|s| s.deadline_missed));
    assert_eq!(e.stats().deadline_miss, 40);
    assert_eq!(e.stats().shed, 0);

    // No store, no cache: an expired request has no viable row → shed
    // (zero logits), and sheds never count as deadline misses.
    let mut none = engine(PrecomputePolicy::None, None);
    let q = AdmissionQueue::new();
    for i in 0..20u32 {
        assert!(q.push_with_deadline(i % N as u32, Some(Duration::ZERO)));
    }
    q.close();
    std::thread::sleep(Duration::from_millis(2));
    let served = run_server(&mut none, &q, &cfg);
    assert!(served.iter().all(|s| s.strategy == Strategy::Shed));
    assert_eq!(none.stats().shed, 20);
    assert_eq!(none.stats().deadline_miss, 0, "a shed is not a deadline miss");
}

/// Shutdown edges under racing producers: every push that was accepted
/// is served, every push after close (or over capacity) is rejected,
/// and nothing deadlocks. Close-while-draining, concurrent producers,
/// and enqueue-after-close in one walk.
#[test]
fn racing_producers_and_close_lose_no_accepted_query() {
    let q = Arc::new(AdmissionQueue::bounded(64));
    let accepted: Vec<_> = (0..4)
        .map(|p| {
            let q = Arc::clone(&q);
            std::thread::spawn(move || {
                let mut ok = 0u64;
                for i in 0..150u32 {
                    if q.push((p * 150 + i) % N as u32) {
                        ok += 1;
                    }
                    if i % 32 == 0 {
                        std::thread::sleep(Duration::from_micros(200));
                    }
                }
                ok
            })
        })
        .collect();
    // Close midway through the producers' lives: pushes that acquired
    // the lock first are admitted and must be served; later ones are
    // rejected at the push site.
    std::thread::sleep(Duration::from_millis(1));
    let closer = {
        let q = Arc::clone(&q);
        std::thread::spawn(move || q.close())
    };
    let mut e = engine(hot(), None);
    let served = run_server(
        &mut e,
        &q,
        &BatchConfig { deadline: Duration::from_micros(100), max_batch: 16, overload: None },
    );
    let accepted: u64 = accepted.into_iter().map(|h| h.join().unwrap()).sum();
    closer.join().unwrap();
    assert_eq!(served.len() as u64, accepted, "accepted and served must agree exactly");
    assert_eq!(e.stats().requests, accepted);
    assert_eq!(q.depth(), 0, "run_server returns only once the queue is drained");
    assert!(!q.push(0), "the queue stays closed");
    // Capacity rejects (if the bounded queue ever filled) were counted;
    // post-close rejects were not.
    assert_eq!(q.shed_count() + accepted, q.shed_count() + served.len() as u64);
}

/// Armed serving faults in the full loop: a latency spike delays but
/// never changes an answer, and store-row corruption is caught by the
/// CRC verify and repaired in place — all accepted queries are still
/// answered at their normal tier.
#[test]
fn chaos_spike_and_store_corruption_are_absorbed() {
    let g = generate::barabasi_albert(N, 3, 5);
    let x = DenseMatrix::gaussian(N, 5, 1.0, 2);
    let head = Mlp::new(&[5, 8, 4], 0.0, 17);
    // Full store → every request reads a store row, so the corruption
    // poll at request index 3 certainly targets a present row.
    let plan = Arc::new(FaultPlan::new(23).spike_request(1, 300).corrupt_store_row_at(3, 4));
    let cfg = ServeConfig {
        policy: PrecomputePolicy::Full { rmax: 1e-4 },
        fault_plan: Some(Arc::clone(&plan)),
        ..Default::default()
    };
    let mut e = ServeEngine::new(g, x, head, cfg);
    let q = AdmissionQueue::new();
    for i in 0..30u32 {
        assert!(q.push((i * 11) % N as u32));
    }
    q.close();
    let served = run_server(
        &mut e,
        &q,
        &BatchConfig { deadline: Duration::ZERO, max_batch: 8, overload: None },
    );
    assert!(plan.exhausted(), "both serving faults must have fired");
    assert_eq!(served.len(), 30);
    assert!(served.iter().all(|s| s.strategy == Strategy::Cached));
    assert_eq!(e.stats().store_repairs, 1, "the corrupted row must be rebuilt exactly once");
}
