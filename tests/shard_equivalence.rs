//! Differential test suite for shard-parallel training (DESIGN.md §7).
//!
//! The contract: [`sgnn::core::shard::train_sharded_gcn`] reproduces
//! [`sgnn::core::trainer::train_full_gcn`] **bitwise** — identical final
//! loss bits, identical val/test accuracies, identical epoch count, and
//! an identical weight trajectory — for every partitioner family, at
//! every shard count, at every thread count. Wall-clock and peak-memory
//! fields differ by design (the sharded trainer's resident set is the
//! plan, not the global operator); everything numeric must match.
//!
//! The proptests run at the ambient thread count, so CI's
//! `SGNN_THREADS=1` / `SGNN_THREADS=2` matrix checks both the inline
//! and pooled superstep paths; one test forces 2 threads regardless of
//! host size.

use proptest::prelude::*;
use sgnn::core::models::gcn::Gcn;
use sgnn::core::shard::train_sharded_gcn;
use sgnn::core::trainer::{train_full_gcn, TrainConfig, TrainReport};
use sgnn::data::sbm_dataset;
use sgnn::graph::CsrGraph;
use sgnn::linalg::par::set_threads;
use sgnn::partition::multilevel::MultilevelConfig;
use sgnn::partition::{fennel, hash_partition, ldg, multilevel_partition, Partition};
use std::sync::Mutex;

/// Serializes tests that depend on the global thread count (the test
/// harness runs #[test] functions concurrently and `set_threads` is
/// process-wide).
static THREADS: Mutex<()> = Mutex::new(());

fn partition_by(which: usize, g: &CsrGraph, k: usize) -> Partition {
    match which {
        0 => hash_partition(g.num_nodes(), k),
        1 => ldg(g, k, 1.1),
        2 => fennel(g, k, 1.1),
        _ => multilevel_partition(g, k, &MultilevelConfig::default()),
    }
}

fn assert_reports_match(reference: &TrainReport, sharded: &TrainReport, tag: &str) {
    assert_eq!(
        sharded.final_loss.to_bits(),
        reference.final_loss.to_bits(),
        "{tag}: loss bits diverged ({} vs {})",
        sharded.final_loss,
        reference.final_loss
    );
    assert_eq!(sharded.val_acc, reference.val_acc, "{tag}: val accuracy diverged");
    assert_eq!(sharded.test_acc, reference.test_acc, "{tag}: test accuracy diverged");
    assert_eq!(sharded.epochs_run, reference.epochs_run, "{tag}: epoch count diverged");
}

fn assert_weights_match(reference: &Gcn, sharded: &Gcn, tag: &str) {
    for i in 0..reference.num_layers() {
        let (lr, ls) = (reference.layer(i), sharded.layer(i));
        assert!(
            lr.w.data().iter().map(|v| v.to_bits()).eq(ls.w.data().iter().map(|v| v.to_bits())),
            "{tag}: layer {i} weights diverged"
        );
        assert!(
            lr.b.data().iter().map(|v| v.to_bits()).eq(ls.b.data().iter().map(|v| v.to_bits())),
            "{tag}: layer {i} bias diverged"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Random dataset × random partitioner × random shard count: the
    /// sharded trainer walks the reference's exact trajectory.
    #[test]
    fn sharded_training_is_bitwise_identical(
        n in 150usize..500,
        k in 1usize..5,
        which in 0usize..4,
        hidden in 4usize..12,
        epochs in 2usize..6,
        seed in 0u64..1000,
    ) {
        let _guard = THREADS.lock().unwrap_or_else(|e| e.into_inner());
        let ds = sbm_dataset(n, 3, 8.0, 0.85, 6, 0.8, 0, 0.5, 0.25, seed);
        let cfg = TrainConfig { epochs, hidden: vec![hidden], seed, ..Default::default() };
        let (ref_gcn, ref_report) = train_full_gcn(&ds, &cfg).unwrap();
        let part = partition_by(which, &ds.graph, k);
        let (gcn, report, stats) = train_sharded_gcn(&ds, &part, &cfg).unwrap();
        let tag = format!("n={n} k={k} which={which} seed={seed}");
        assert_reports_match(&ref_report, &report, &tag);
        assert_weights_match(&ref_gcn, &gcn, &tag);
        prop_assert_eq!(stats.epochs, epochs);
    }

    /// Early stopping sees identical validation accuracies, so the
    /// sharded run stops at the identical epoch.
    #[test]
    fn early_stopping_trajectories_match(
        k in 2usize..5,
        which in 0usize..4,
        seed in 0u64..1000,
    ) {
        let _guard = THREADS.lock().unwrap_or_else(|e| e.into_inner());
        let ds = sbm_dataset(260, 3, 8.0, 0.9, 5, 0.7, 0, 0.5, 0.25, seed);
        let cfg = TrainConfig {
            epochs: 30,
            hidden: vec![8],
            patience: Some(3),
            seed,
            ..Default::default()
        };
        let (_, ref_report) = train_full_gcn(&ds, &cfg).unwrap();
        let part = partition_by(which, &ds.graph, k);
        let (_, report, _) = train_sharded_gcn(&ds, &part, &cfg).unwrap();
        assert_reports_match(&ref_report, &report, &format!("patience k={k} which={which}"));
    }
}

/// The headline grid, deterministic: one dataset, every partitioner
/// family × k ∈ {1, 2, 4}, all against a single reference run.
#[test]
fn all_partitioners_match_at_k_1_2_4() {
    let _guard = THREADS.lock().unwrap_or_else(|e| e.into_inner());
    let ds = sbm_dataset(320, 3, 9.0, 0.85, 6, 0.8, 0, 0.5, 0.25, 11);
    let cfg = TrainConfig { epochs: 4, hidden: vec![8], ..Default::default() };
    let (ref_gcn, ref_report) = train_full_gcn(&ds, &cfg).unwrap();
    for which in 0..4usize {
        for k in [1usize, 2, 4] {
            let part = partition_by(which, &ds.graph, k);
            let (gcn, report, stats) = train_sharded_gcn(&ds, &part, &cfg).unwrap();
            let tag = format!("which={which} k={k}");
            assert_reports_match(&ref_report, &report, &tag);
            assert_weights_match(&ref_gcn, &gcn, &tag);
            // Measured exchange volume is exactly the plan's ghost count
            // per exchange, (L−1) forward + (L−1) backward times per
            // epoch — the identity benchsharding leans on.
            assert_eq!(
                stats.halo_vectors_per_epoch,
                stats.halo_vectors_per_exchange * stats.exchanges_per_epoch,
                "{tag}"
            );
        }
    }
}

/// Forces the pooled superstep path (2 configured threads) regardless of
/// host size, across every partitioner family.
#[test]
fn sharded_training_matches_at_two_threads() {
    let _guard = THREADS.lock().unwrap_or_else(|e| e.into_inner());
    let ds = sbm_dataset(300, 3, 8.0, 0.85, 6, 0.8, 0, 0.5, 0.25, 5);
    let cfg = TrainConfig { epochs: 3, hidden: vec![8], ..Default::default() };
    set_threads(1);
    let (ref_gcn, ref_report) = train_full_gcn(&ds, &cfg).unwrap();
    set_threads(2);
    for which in 0..4usize {
        let part = partition_by(which, &ds.graph, 4);
        let (gcn, report, _) = train_sharded_gcn(&ds, &part, &cfg).unwrap();
        let tag = format!("2-thread which={which}");
        assert_reports_match(&ref_report, &report, &tag);
        assert_weights_match(&ref_gcn, &gcn, &tag);
    }
    set_threads(0);
}
