//! Kernel-equivalence properties for the persistent worker pool: the
//! pooled, nnz-balanced sparse kernels must produce the same numbers as
//! the single-threaded path, `spmm_into` must equal `spmm` regardless of
//! scratch contents, and the balanced partition must tile rows exactly.
//!
//! Row loops are never split inside a row, so pooled results are in fact
//! bitwise identical to single-threaded ones; the 1e-6 tolerance asserted
//! here is the documented contract, not the observed gap.

use proptest::prelude::*;
use sgnn::graph::generate;
use sgnn::graph::normalize::{normalized_adjacency, NormKind};
use sgnn::graph::spmm::{spmm, spmm_into, spmv, CsrOpF64};
use sgnn::linalg::par::{balanced_boundary, set_threads};
use sgnn::linalg::{DenseMatrix, MatVecF64};
use std::sync::Mutex;

/// Serializes tests that toggle the global thread count (the test harness
/// runs #[test] functions concurrently and `set_threads` is process-wide).
static THREADS: Mutex<()> = Mutex::new(());

/// Runs `f` twice — single-threaded, then with the pool enabled — and
/// returns both results for comparison.
fn single_vs_pooled<R>(mut f: impl FnMut() -> R) -> (R, R) {
    let _guard = THREADS.lock().unwrap_or_else(|e| e.into_inner());
    set_threads(1);
    let single = f();
    set_threads(0); // restore auto (hardware) threads
    let pooled = f();
    (single, pooled)
}

fn max_abs_diff(a: &[f32], b: &[f32]) -> f32 {
    a.iter().zip(b).map(|(x, y)| (x - y).abs()).fold(0.0, f32::max)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Pooled spmm (weighted and unweighted, all width specializations)
    /// matches the single-threaded kernel within 1e-6.
    #[test]
    fn pooled_spmm_matches_single_thread(
        n in 500usize..3000,
        m in 1usize..5,
        d in 1usize..9,
        seed in 0u64..1000,
    ) {
        let g = generate::barabasi_albert(n, m, seed);
        let a = normalized_adjacency(&g, NormKind::Sym, true).unwrap();
        let x = DenseMatrix::gaussian(n, d, 1.0, seed + 1);
        for op in [&g, &a] {
            let (y1, yp) = single_vs_pooled(|| spmm(op, &x));
            let diff = max_abs_diff(y1.data(), yp.data());
            prop_assert!(diff <= 1e-6, "spmm diverged by {diff} (d={d})");
        }
    }

    /// `spmm_into` equals `spmm` even when the output buffer holds stale
    /// garbage from a previous, larger use.
    #[test]
    fn spmm_into_equals_spmm(
        n in 50usize..500,
        m in 1usize..4,
        d in 1usize..9,
        seed in 0u64..1000,
    ) {
        let g = generate::barabasi_albert(n, m, seed);
        let a = normalized_adjacency(&g, NormKind::Sym, true).unwrap();
        let x = DenseMatrix::gaussian(n, d, 1.0, seed + 1);
        let fresh = spmm(&a, &x);
        let mut y = DenseMatrix::zeros(n, d);
        y.data_mut().fill(f32::NAN); // simulate stale scratch
        spmm_into(&a, &x, &mut y);
        let diff = max_abs_diff(fresh.data(), y.data());
        prop_assert!(diff == 0.0, "spmm_into diverged by {diff}");
    }

    /// The nnz-balanced partition tiles the row range exactly: boundaries
    /// are monotone, start at 0, end at `rows`, and every row is covered
    /// exactly once — on hub-skewed BA degree distributions and for any
    /// chunk count.
    #[test]
    fn balanced_partition_tiles_rows_exactly_once(
        n in 2usize..2000,
        m in 1usize..6,
        chunks in 1usize..64,
        seed in 0u64..1000,
    ) {
        let g = generate::barabasi_albert(n, m, seed);
        let prefix = g.indptr();
        prop_assert_eq!(balanced_boundary(prefix, chunks, 0), 0);
        prop_assert_eq!(balanced_boundary(prefix, chunks, chunks), n);
        let mut covered = 0usize;
        for j in 0..chunks {
            let s = balanced_boundary(prefix, chunks, j);
            let e = balanced_boundary(prefix, chunks, j + 1);
            prop_assert!(s <= e, "boundaries not monotone at chunk {j}");
            prop_assert_eq!(s, covered, "gap or overlap before chunk {j}");
            covered = e;
        }
        prop_assert_eq!(covered, n);
    }
}

/// Pooled spmv matches single-threaded on a graph large enough to clear
/// the parallelism work threshold (d=1 needs nnz > 2^16).
#[test]
fn pooled_spmv_matches_single_thread() {
    let g = generate::barabasi_albert(30_000, 2, 11);
    let a = normalized_adjacency(&g, NormKind::Sym, true).unwrap();
    let x: Vec<f32> = DenseMatrix::gaussian(30_000, 1, 1.0, 12).data().to_vec();
    for op in [&g, &a] {
        let (y1, yp) = single_vs_pooled(|| {
            let mut y = vec![0.0f32; 30_000];
            spmv(op, &x, &mut y);
            y
        });
        let diff = max_abs_diff(&y1, &yp);
        assert!(diff <= 1e-6, "spmv diverged by {diff}");
    }
}

/// Pooled f64 matvec (the eigensolver path) matches single-threaded on a
/// pool-engaging graph, including the affine `scale·Ax + shift·x` form.
#[test]
fn pooled_matvec_matches_single_thread() {
    let g = generate::barabasi_albert(30_000, 2, 21);
    let x: Vec<f64> =
        DenseMatrix::gaussian(30_000, 1, 1.0, 22).data().iter().map(|&v| v as f64).collect();
    for op in [CsrOpF64::new(&g), CsrOpF64::affine(&g, -0.5, 2.0)] {
        let (y1, yp) = single_vs_pooled(|| {
            let mut y = vec![0.0f64; 30_000];
            op.matvec(&x, &mut y);
            y
        });
        let diff = y1.iter().zip(&yp).map(|(a, b)| (a - b).abs()).fold(0.0, f64::max);
        assert!(diff <= 1e-6, "matvec diverged by {diff}");
    }
}
