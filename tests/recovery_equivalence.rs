//! Differential recovery suite (DESIGN.md §8): kill a training run at
//! every possible fault site, resume from the last checkpoint, and
//! assert the recovered run is **bitwise** indistinguishable from an
//! uninterrupted reference — identical final loss bits, identical
//! val/test accuracies, identical final weight bits.
//!
//! This works because all training randomness is stateless (per-element
//! dropout hashes, chunk-seeded samplers, fixed-point allreduce), so the
//! checkpointed state — parameters, Adam moments, stopper counters,
//! epoch index — is the *entire* evolving state of a run.
//!
//! Faults are injected with [`sgnn::fault::FaultPlan`]: one-shot and
//! positional, so every interrupted run is itself reproducible. Runs at
//! the ambient thread count; CI's `SGNN_THREADS=1`/`2` matrix covers the
//! inline and pooled paths.

use sgnn::core::ckpt::SlotParams;
use sgnn::core::error::{TrainError, TrainResult};
use sgnn::core::shard::train_sharded_gcn;
use sgnn::core::trainer::{
    train_cluster_gcn, train_full_gcn, train_saint, train_sampled, SamplerKind, TrainConfig,
    TrainReport,
};
use sgnn::data::sbm_dataset;
use sgnn::fault::FaultPlan;
use sgnn::partition::hash_partition;
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// Fresh per-test checkpoint directory under the system temp dir.
fn tmp_dir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("sgnn_recovery_{}_{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    std::fs::create_dir_all(&d).unwrap();
    d
}

/// The rolling checkpoint written into `dir`, if the run got far enough
/// to write one (a kill before the first epoch completes leaves none —
/// resume is then a cold start, which must also reproduce the reference).
fn maybe_ckpt(dir: &Path) -> Option<PathBuf> {
    let mut files: Vec<PathBuf> = std::fs::read_dir(dir)
        .unwrap()
        .map(|e| e.unwrap().path())
        .filter(|p| p.extension().is_some_and(|e| e == "ckpt"))
        .collect();
    assert!(files.len() <= 1, "one rolling checkpoint per trainer, found {files:?}");
    files.pop()
}

/// All parameter bits of a model, in checkpoint slot order.
fn param_bits<M: SlotParams>(model: &mut M) -> Vec<u32> {
    let mut bits = Vec::new();
    model.visit_params_mut(&mut |p| bits.extend(p.data().iter().map(|v| v.to_bits())));
    bits
}

/// Kills `run` at every epoch in `0..epochs`, resumes each interrupted
/// run from its last checkpoint, and asserts bit-equality with the
/// uninterrupted reference.
fn sweep_epoch_kills<M, F>(tag: &str, base: &TrainConfig, epochs: usize, run: F)
where
    M: SlotParams,
    F: Fn(&TrainConfig) -> TrainResult<(M, TrainReport)>,
{
    let (mut reference, ref_report) = run(base).unwrap();
    let ref_bits = param_bits(&mut reference);
    for kill in 0..epochs {
        let dir = tmp_dir(&format!("{tag}_e{kill}"));
        let plan = Arc::new(FaultPlan::new(17).kill_at_epoch(kill));
        let cfg = TrainConfig {
            ckpt_dir: Some(dir.clone()),
            fault_plan: Some(Arc::clone(&plan)),
            ..base.clone()
        };
        let err = run(&cfg).err().expect("armed kill must abort the run");
        assert!(
            matches!(err, TrainError::InjectedCrash { site: "epoch", at } if at == kill as u64),
            "{tag} kill {kill}: unexpected error {err:?}"
        );
        assert!(plan.exhausted(), "{tag}: armed kill at epoch {kill} never fired");
        let resume = TrainConfig { resume_from: maybe_ckpt(&dir), ..base.clone() };
        let (mut model, report) = run(&resume).unwrap();
        assert_eq!(
            report.final_loss.to_bits(),
            ref_report.final_loss.to_bits(),
            "{tag} kill {kill}: loss bits diverged"
        );
        assert_eq!(report.val_acc, ref_report.val_acc, "{tag} kill {kill}: val acc diverged");
        assert_eq!(report.test_acc, ref_report.test_acc, "{tag} kill {kill}: test acc diverged");
        assert_eq!(param_bits(&mut model), ref_bits, "{tag} kill {kill}: weight bits diverged");
        let _ = std::fs::remove_dir_all(&dir);
    }
}

#[test]
fn full_gcn_killed_at_every_epoch_resumes_bitwise() {
    let ds = sbm_dataset(240, 3, 8.0, 0.85, 6, 0.8, 0, 0.5, 0.25, 7);
    let base = TrainConfig { epochs: 4, hidden: vec![6], dropout: 0.1, ..Default::default() };
    sweep_epoch_kills("gcn-full", &base, 4, |cfg| train_full_gcn(&ds, cfg));
}

#[test]
fn full_gcn_with_early_stopping_replays_the_stop_decision() {
    // With patience the checkpoint also carries the stopper's (best, bad)
    // counters and the stop flag; a resume must replay the same break.
    let ds = sbm_dataset(240, 3, 8.0, 0.9, 5, 0.7, 0, 0.5, 0.25, 3);
    let base = TrainConfig { epochs: 30, hidden: vec![6], patience: Some(3), ..Default::default() };
    let (_, ref_report) = train_full_gcn(&ds, &base).unwrap();
    let stop_epoch = ref_report.epochs_run;
    assert!(stop_epoch < 30, "patience must trigger for this test to bite");
    for kill in [stop_epoch / 2, stop_epoch - 1] {
        let dir = tmp_dir(&format!("stopper_e{kill}"));
        let plan = Arc::new(FaultPlan::new(23).kill_at_epoch(kill));
        let cfg =
            TrainConfig { ckpt_dir: Some(dir.clone()), fault_plan: Some(plan), ..base.clone() };
        train_full_gcn(&ds, &cfg).err().expect("armed kill must abort the run");
        let resume = TrainConfig { resume_from: maybe_ckpt(&dir), ..base.clone() };
        let (_, report) = train_full_gcn(&ds, &resume).unwrap();
        assert_eq!(report.epochs_run, ref_report.epochs_run, "kill {kill}: stop epoch diverged");
        assert_eq!(report.final_loss.to_bits(), ref_report.final_loss.to_bits(), "kill {kill}");
        assert_eq!(report.val_acc, ref_report.val_acc, "kill {kill}");
        let _ = std::fs::remove_dir_all(&dir);
    }
}

#[test]
fn sampled_sage_killed_at_every_epoch_resumes_bitwise() {
    let ds = sbm_dataset(220, 3, 8.0, 0.85, 6, 0.8, 0, 0.5, 0.25, 11);
    let base = TrainConfig { epochs: 3, hidden: vec![6], batch_size: 64, ..Default::default() };
    sweep_epoch_kills("sage", &base, 3, |cfg| {
        train_sampled(&ds, &SamplerKind::NodeWise(vec![4, 4]), cfg)
    });
}

#[test]
fn saint_killed_at_every_epoch_resumes_bitwise() {
    let ds = sbm_dataset(220, 3, 8.0, 0.85, 6, 0.8, 0, 0.5, 0.25, 13);
    let base = TrainConfig { epochs: 3, hidden: vec![6], ..Default::default() };
    sweep_epoch_kills("saint", &base, 3, |cfg| {
        train_saint(&ds, sgnn::sample::SaintSampler::RandomWalk { roots: 30, length: 4 }, 3, cfg)
    });
}

#[test]
fn cluster_gcn_killed_at_every_epoch_resumes_bitwise() {
    let ds = sbm_dataset(220, 3, 8.0, 0.85, 6, 0.8, 0, 0.5, 0.25, 19);
    let base = TrainConfig { epochs: 3, hidden: vec![6], ..Default::default() };
    sweep_epoch_kills("cluster", &base, 3, |cfg| train_cluster_gcn(&ds, 6, 2, cfg));
}

#[test]
fn sharded_killed_at_every_superstep_resumes_bitwise() {
    // The sharded trainer's fault sites are BSP supersteps (every compute
    // and exchange barrier, cumulatively across epochs). Sweep s = 0, 1,
    // 2, … until a run completes with its kill still armed — that run
    // proves s walked past the final superstep, i.e. every barrier of the
    // whole schedule was killed exactly once.
    let ds = sbm_dataset(180, 3, 8.0, 0.85, 5, 0.8, 0, 0.5, 0.25, 3);
    let epochs = 3usize;
    let base = TrainConfig { epochs, hidden: vec![4], dropout: 0.1, ..Default::default() };
    let (mut ref_gcn, ref_report) = train_full_gcn(&ds, &base).unwrap();
    let ref_bits = param_bits(&mut ref_gcn);
    for k in [1usize, 2, 4] {
        let part = hash_partition(ds.num_nodes(), k);
        let mut s = 0u64;
        loop {
            let dir = tmp_dir(&format!("shard_k{k}_s{s}"));
            let plan = Arc::new(FaultPlan::new(5).kill_at_superstep(s));
            let cfg = TrainConfig {
                ckpt_dir: Some(dir.clone()),
                fault_plan: Some(Arc::clone(&plan)),
                ..base.clone()
            };
            match train_sharded_gcn(&ds, &part, &cfg) {
                Err(e) => {
                    assert!(
                        matches!(e, TrainError::InjectedCrash { site: "superstep", at } if at == s),
                        "k={k} s={s}: unexpected error {e:?}"
                    );
                    let resume = TrainConfig { resume_from: maybe_ckpt(&dir), ..base.clone() };
                    let (mut gcn, report, _) = train_sharded_gcn(&ds, &part, &resume).unwrap();
                    assert_eq!(
                        report.final_loss.to_bits(),
                        ref_report.final_loss.to_bits(),
                        "k={k} s={s}: loss bits diverged"
                    );
                    assert_eq!(report.val_acc, ref_report.val_acc, "k={k} s={s}");
                    assert_eq!(report.test_acc, ref_report.test_acc, "k={k} s={s}");
                    assert_eq!(param_bits(&mut gcn), ref_bits, "k={k} s={s}: weights diverged");
                    s += 1;
                }
                Ok(_) => {
                    assert!(
                        !plan.exhausted(),
                        "k={k}: run completed even though the kill at superstep {s} fired"
                    );
                    let _ = std::fs::remove_dir_all(&dir);
                    break;
                }
            }
            let _ = std::fs::remove_dir_all(&dir);
        }
        // Sanity: the sweep covered the full schedule (≥ one compute, one
        // loss, one backward barrier per epoch).
        assert!(s as usize >= 3 * epochs, "k={k}: only {s} supersteps swept");
    }
}

#[test]
fn resume_from_a_finished_run_is_a_no_op_replay() {
    // Resuming a checkpoint whose run already completed all epochs must
    // run zero additional epochs and reproduce the reference exactly.
    let ds = sbm_dataset(200, 3, 8.0, 0.85, 5, 0.8, 0, 0.5, 0.25, 29);
    let dir = tmp_dir("noop");
    let base = TrainConfig { epochs: 3, hidden: vec![5], ..Default::default() };
    let with_ckpt = TrainConfig { ckpt_dir: Some(dir.clone()), ..base.clone() };
    let (mut reference, ref_report) = train_full_gcn(&ds, &with_ckpt).unwrap();
    let resume = TrainConfig { resume_from: maybe_ckpt(&dir), ..base };
    let (mut resumed, report) = train_full_gcn(&ds, &resume).unwrap();
    assert_eq!(report.final_loss.to_bits(), ref_report.final_loss.to_bits());
    assert_eq!(report.epochs_run, ref_report.epochs_run);
    assert_eq!(report.test_acc, ref_report.test_acc);
    assert_eq!(param_bits(&mut resumed), param_bits(&mut reference));
    let _ = std::fs::remove_dir_all(&dir);
}
