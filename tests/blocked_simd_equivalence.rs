//! Equivalence properties for the cache-blocked and explicit-SIMD kernels
//! (DESIGN.md §9): `spmm_blocked_into` must be *bitwise* identical to
//! `spmm_into` for every block shape, thread count, and row order — the
//! blocked kernel only re-tiles the iteration space, it never reassociates
//! a per-column accumulation chain — and the element-wise SIMD primitives
//! must match the plain mul-then-add scalar loop bit for bit (no FMA).
//!
//! The quantized aggregation path is the one *toleranced* kernel: its
//! error versus f32 must stay inside the documented budget on
//! sym-normalized operators.
//!
//! This file exercises the facade build; under `--features simd` the same
//! assertions pin the AVX2/NEON backends to the scalar semantics.

use proptest::prelude::*;
use sgnn::graph::blocked::{spmm_blocked_into, spmm_quant_into, BlockSpec};
use sgnn::graph::generate;
use sgnn::graph::normalize::{normalized_adjacency, NormKind};
use sgnn::graph::reorder::{compute_order, relabel, Reordering};
use sgnn::graph::spmm::spmm_into;
use sgnn::linalg::par::set_threads;
use sgnn::linalg::simd;
use sgnn::linalg::{DenseMatrix, QuantMatrix};
use std::sync::Mutex;

/// Serializes tests that toggle the global thread count (the test harness
/// runs #[test] functions concurrently and `set_threads` is process-wide).
static THREADS: Mutex<()> = Mutex::new(());

fn bits(m: &DenseMatrix) -> Vec<u32> {
    m.data().iter().map(|v| v.to_bits()).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Blocked SpMM is bitwise-equal to `spmm_into` for arbitrary block
    /// shapes and feature widths (including the d ≤ 4 delegation range and
    /// widths straddling the SIMD register-tile sizes), at one thread and
    /// with the pool enabled, on raw and weighted operators — and stays so
    /// after an RCM relabel, the order the tiling is designed to compose
    /// with.
    #[test]
    fn blocked_spmm_bitwise_equals_balanced(
        n in 200usize..1500,
        m in 1usize..5,
        d in 1usize..96,
        row_block in 1usize..300,
        col_block in 1usize..96,
        seed in 0u64..1000,
    ) {
        let _guard = THREADS.lock().unwrap_or_else(|e| e.into_inner());
        let g = generate::barabasi_albert(n, m, seed);
        let a = normalized_adjacency(&g, NormKind::Sym, true).unwrap();
        let order = compute_order(&g, Reordering::Rcm);
        let (rg, _) = relabel(&g, &order);
        let x = DenseMatrix::gaussian(n, d, 1.0, seed + 1);
        let spec = BlockSpec { row_block, col_block };
        for op in [&g, &a, &rg] {
            for threads in [1usize, 0] {
                set_threads(threads);
                let mut reference = DenseMatrix::zeros(n, d);
                reference.data_mut().fill(f32::NAN);
                spmm_into(op, &x, &mut reference);
                let mut tiled = DenseMatrix::zeros(n, d);
                tiled.data_mut().fill(f32::NAN); // stale scratch must not leak
                spmm_blocked_into(op, &x, &mut tiled, spec);
                prop_assert_eq!(
                    bits(&reference),
                    bits(&tiled),
                    "blocked != balanced (d={}, spec={}x{}, threads={})",
                    d, row_block, col_block, threads
                );
            }
        }
        set_threads(0);
    }

    /// Element-wise SIMD primitives match the scalar mul-then-add loop
    /// bitwise on awkward (non-multiple-of-lane) lengths. axpy64 is the
    /// f64 eigensolver/optimizer path.
    #[test]
    fn simd_axpy_bitwise_matches_scalar_loop(
        len in 1usize..200,
        alpha in -4.0f32..4.0,
        seed in 0u64..1000,
    ) {
        let x = DenseMatrix::gaussian(1, len, 1.0, seed);
        let mut y = DenseMatrix::gaussian(1, len, 1.0, seed + 1);
        let mut expected: Vec<f32> = y.data().to_vec();
        for (e, &v) in expected.iter_mut().zip(x.data()) {
            *e += alpha * v;
        }
        simd::axpy_f32(alpha, x.data(), y.data_mut());
        prop_assert_eq!(
            y.data().iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            expected.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
        );

        let a64 = alpha as f64;
        let x64: Vec<f64> = x.data().iter().map(|&v| v as f64).collect();
        let mut y64: Vec<f64> = expected.iter().map(|&v| v as f64).collect();
        let mut exp64 = y64.clone();
        for (e, &v) in exp64.iter_mut().zip(&x64) {
            *e += a64 * v;
        }
        simd::axpy_f64(a64, &x64, &mut y64);
        prop_assert_eq!(
            y64.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            exp64.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
        );
    }

    /// The quantized aggregation path stays inside the documented error
    /// budget (DESIGN.md §9) on sym-normalized operators, where row weight
    /// sums are ≤ 1 and the per-element representation error bounds the
    /// output error directly.
    #[test]
    fn quantized_spmm_stays_inside_tolerance(
        n in 200usize..1200,
        m in 1usize..5,
        d in 5usize..64,
        seed in 0u64..1000,
    ) {
        let g = generate::barabasi_albert(n, m, seed);
        let a = normalized_adjacency(&g, NormKind::Sym, true).unwrap();
        let x = DenseMatrix::gaussian(n, d, 1.0, seed + 1);
        let spec = BlockSpec::auto(&a, d);
        let mut reference = DenseMatrix::zeros(n, d);
        spmm_into(&a, &x, &mut reference);
        let max_abs = x.data().iter().fold(0f32, |acc, v| acc.max(v.abs()));
        let mut out = DenseMatrix::zeros(n, d);
        spmm_quant_into(&a, &QuantMatrix::quantize_i8(&x), &mut out, spec);
        let err_i8 = out
            .data()
            .iter()
            .zip(reference.data())
            .fold(0f32, |acc, (q, f)| acc.max((q - f).abs()));
        // Per-element int8 error ≤ scale/2 = max_abs/254; weight sums ≤ 1
        // plus f32 accumulation slack.
        prop_assert!(
            err_i8 <= max_abs / 254.0 * 1.5 + 1e-5,
            "int8 error {} above budget (max_abs={})", err_i8, max_abs
        );
        spmm_quant_into(&a, &QuantMatrix::quantize_f16(&x), &mut out, spec);
        let err_f16 = out
            .data()
            .iter()
            .zip(reference.data())
            .fold(0f32, |acc, (q, f)| acc.max((q - f).abs()));
        // f16 relative error ≤ 2^-11 per element.
        prop_assert!(
            err_f16 <= max_abs / 2048.0 * 1.5 + 1e-5,
            "f16 error {} above budget (max_abs={})", err_f16, max_abs
        );
    }
}

/// The SIMD backend reports a coherent identity: lane width is a power of
/// two and matches the advertised backend family.
#[test]
fn simd_backend_reports_coherent_identity() {
    let backend = simd::active_backend();
    let lanes = simd::f32_lanes();
    assert!(lanes.is_power_of_two(), "lane count {lanes} not a power of two");
    match backend {
        "avx2" | "neon" => assert!(lanes > 1, "{backend} backend must report vector lanes"),
        _ => assert_eq!(lanes, 1, "scalar backend must report 1 lane"),
    }
}
