//! Finite-difference gradient checks for the manual-backprop stack.
//!
//! Every analytic backward pass in `sgnn-nn`, and the GCN's end-to-end
//! backward through SpMM propagation, is validated against central
//! finite differences: `dL/dθ ≈ (L(θ+ε) − L(θ−ε)) / 2ε`. The in-crate
//! unit tests spot-check single entries; this suite sweeps **every**
//! parameter and input entry of small instances, so a subtly wrong
//! index or transpose cannot hide in an unchecked coordinate.
//!
//! All comparisons use `close(num, analytic)` with an absolute+relative
//! band sized for f32 forward passes (the FD quotient itself carries
//! ~ε·|L|/ε ≈ 1e-3 of rounding noise).

use sgnn::core::models::gcn::{gcn_operator, Gcn, GcnConfig};
use sgnn::data::sbm_dataset;
use sgnn::linalg::DenseMatrix;
use sgnn::nn::layers::{Dropout, Linear, ReLU};
use sgnn::nn::loss::softmax_cross_entropy;

const EPS: f32 = 1e-2;

fn close(num: f32, analytic: f32) -> bool {
    (num - analytic).abs() < 1e-2 + 2e-2 * analytic.abs()
}

/// Central finite difference of `loss` under a ±EPS bump applied by
/// `bump`; restores `obj` before returning.
fn central<T>(obj: &mut T, loss: impl Fn(&T) -> f32, bump: impl Fn(&mut T, f32)) -> f32 {
    bump(obj, EPS);
    let up = loss(obj);
    bump(obj, -2.0 * EPS);
    let down = loss(obj);
    bump(obj, EPS); // restore
    (up - down) / (2.0 * EPS)
}

#[test]
fn linear_gradients_match_finite_differences_everywhere() {
    // Scalar loss L = Σ (Y ⊙ R) for a fixed random R, so dL/dY = R and
    // the analytic gradients are exactly one backward(R) call.
    let mut l = Linear::new(3, 2, 7);
    let x = DenseMatrix::gaussian(4, 3, 1.0, 8);
    let r = DenseMatrix::gaussian(4, 2, 1.0, 9);
    l.forward(&x);
    let dx = l.backward(&r);

    let loss = |l: &Linear, x: &DenseMatrix| {
        sgnn::linalg::vecops::dot(l.forward_inference(x).data(), r.data())
    };
    for i in 0..l.w.rows() {
        for j in 0..l.w.cols() {
            let mut lp = l.clone();
            let num = central(
                &mut lp,
                |lp| loss(lp, &x),
                |lp, d| {
                    let v = lp.w.get(i, j);
                    lp.w.set(i, j, v + d);
                },
            );
            assert!(close(num, l.gw.get(i, j)), "gw[{i}][{j}]: {num} vs {}", l.gw.get(i, j));
        }
    }
    for j in 0..l.b.cols() {
        let mut lp = l.clone();
        let num = central(
            &mut lp,
            |lp| loss(lp, &x),
            |lp, d| {
                let v = lp.b.get(0, j);
                lp.b.set(0, j, v + d);
            },
        );
        assert!(close(num, l.gb.get(0, j)), "gb[{j}]: {num} vs {}", l.gb.get(0, j));
    }
    for i in 0..x.rows() {
        for j in 0..x.cols() {
            let mut xp = x.clone();
            let num = central(
                &mut xp,
                |xp| loss(&l, xp),
                |xp, d| {
                    let v = xp.get(i, j);
                    xp.set(i, j, v + d);
                },
            );
            assert!(close(num, dx.get(i, j)), "dx[{i}][{j}]: {num} vs {}", dx.get(i, j));
        }
    }
}

#[test]
fn relu_gradient_matches_finite_differences_off_the_kink() {
    // Entries are sampled away from 0, where ReLU is differentiable.
    let mut x = DenseMatrix::gaussian(3, 4, 1.0, 10);
    x.map_inplace(|v| if v.abs() < 0.2 { 0.5_f32.copysign(v) } else { v });
    let r = DenseMatrix::gaussian(3, 4, 1.0, 11);
    let mut relu = ReLU::new();
    relu.forward(&x);
    let dx = relu.backward(&r);
    let loss =
        |x: &DenseMatrix| sgnn::linalg::vecops::dot(relu.forward_inference(x).data(), r.data());
    for i in 0..x.rows() {
        for j in 0..x.cols() {
            let mut xp = x.clone();
            let num = central(
                &mut xp,
                |xp| loss(xp),
                |xp, d| {
                    let v = xp.get(i, j);
                    xp.set(i, j, v + d);
                },
            );
            assert!(close(num, dx.get(i, j)), "dx[{i}][{j}]: {num} vs {}", dx.get(i, j));
        }
    }
}

#[test]
fn dropout_backward_is_the_recorded_stateless_mask() {
    // Dropout is linear in its input given the mask, so the exact
    // gradient through a fixed mask is the mask itself — and the mask is
    // a pure function of (seed, call, element), which is what the shard
    // trainer replays. Check backward against both the recorded forward
    // (y = x ⊙ m on unit input reveals m) and the stateless recomputation.
    let p = 0.35f32;
    let seed = 42u64;
    let mut d = Dropout::new(p, seed);
    let x = DenseMatrix::from_vec(2, 50, vec![1.0; 100]);
    let y = d.forward(&x); // call 1
    let dy = DenseMatrix::gaussian(2, 50, 1.0, 12);
    let dx = d.backward(&dy);
    let cs = Dropout::call_seed(seed, 1);
    for i in 0..100 {
        let m = Dropout::element_scale(cs, p, i as u64);
        assert_eq!(y.data()[i], m, "forward mask entry {i}");
        assert_eq!(dx.data()[i], dy.data()[i] * m, "backward mask entry {i}");
    }
}

#[test]
fn softmax_cross_entropy_gradient_matches_finite_differences_everywhere() {
    let logits = DenseMatrix::gaussian(4, 3, 1.0, 13);
    let targets = [2usize, 0, 1, 2];
    let weights = [1.0f32, 0.5, 2.0, 1.0];
    for w in [None, Some(&weights[..])] {
        let (_, grad) = softmax_cross_entropy(&logits, &targets, w);
        for i in 0..logits.rows() {
            for j in 0..logits.cols() {
                let mut lp = logits.clone();
                let num = central(
                    &mut lp,
                    |lp| softmax_cross_entropy(lp, &targets, w).0,
                    |lp, d| {
                        let v = lp.get(i, j);
                        lp.set(i, j, v + d);
                    },
                );
                assert!(
                    close(num, grad.get(i, j)),
                    "weighted={} ({i},{j}): {num} vs {}",
                    w.is_some(),
                    grad.get(i, j)
                );
            }
        }
    }
}

#[test]
fn gcn_end_to_end_gradients_match_finite_differences_everywhere() {
    // Dropout off so the training forward equals the inference forward
    // and the loss surface is deterministic; every weight and bias of
    // both layers is swept through the full SpMM → Linear → ReLU chain.
    let ds = sbm_dataset(40, 2, 4.0, 0.8, 4, 0.5, 0, 0.5, 0.25, 14);
    let op = gcn_operator(&ds.graph);
    let mut gcn = Gcn::new(4, 2, &GcnConfig { hidden: vec![5], dropout: 0.0, seed: 15 });
    let targets: Vec<usize> = ds.labels.clone();
    let logits = gcn.forward(&op, &ds.features);
    let (_, dl) = softmax_cross_entropy(&logits, &targets, None);
    gcn.zero_grad();
    gcn.backward(&op, &dl);

    let loss_of =
        |g: &Gcn| softmax_cross_entropy(&g.forward_inference(&op, &ds.features), &targets, None).0;
    for li in 0..gcn.num_layers() {
        let (wr, wc) = (gcn.layer(li).w.rows(), gcn.layer(li).w.cols());
        for i in 0..wr {
            for j in 0..wc {
                let analytic = gcn.layer(li).gw.get(i, j);
                let num = central(&mut gcn, loss_of, |g, d| {
                    let v = g.layer_mut(li).w.get(i, j);
                    g.layer_mut(li).w.set(i, j, v + d);
                });
                assert!(close(num, analytic), "layer {li} gw[{i}][{j}]: {num} vs {analytic}");
            }
        }
        for j in 0..gcn.layer(li).b.cols() {
            let analytic = gcn.layer(li).gb.get(0, j);
            let num = central(&mut gcn, loss_of, |g, d| {
                let v = g.layer_mut(li).b.get(0, j);
                g.layer_mut(li).b.set(0, j, v + d);
            });
            assert!(close(num, analytic), "layer {li} gb[{j}]: {num} vs {analytic}");
        }
    }
}
