//! Analytic invariants of the serving push kernels (DESIGN.md §12).
//!
//! Three families:
//!
//! - **Termination contract** — `smooth_column_push` returns with every
//!   residual strictly below `rmax`; the estimate is then within `rmax`
//!   of the exact operator entrywise (the bound the serving layer
//!   advertises).
//! - **Mass invariants** — the ACL forward push conserves probability
//!   mass (`Σp + Σr = 1`, so `Σp ≤ 1`, entrywise non-negative), and the
//!   power-iteration reference sums to 1; the exact feature kernel
//!   fixes the constant column (`S·1 = 1`).
//! - **Relabel equivariance** — the smoothing operator commutes with
//!   node relabeling (RCM / degree-sort round-trip): exact answers move
//!   with the permutation to f64 summation-order noise, and thresholded
//!   push answers stay within the `2·rmax` triangle bound even though
//!   the push *order* (and hence the exact bits) changes.

use proptest::prelude::*;
use sgnn::graph::reorder::{compute_order, relabel, Reordering};
use sgnn::graph::{generate, NodeId};
use sgnn::prop::forward_push;
use sgnn::prop::push::ppr_power;
use sgnn::serve::{smooth_column_exact, smooth_column_push};

/// Permutes a feature column alongside `relabel`'s `old → new` map.
fn permute(x: &[f64], new_of_old: &[NodeId]) -> Vec<f64> {
    let mut out = vec![0f64; x.len()];
    for (old, &v) in x.iter().enumerate() {
        out[new_of_old[old] as usize] = v;
    }
    out
}

fn column(n: usize, seed: u64) -> Vec<f64> {
    // Signed, deterministic, O(1)-magnitude feature column.
    (0..n).map(|i| (((i as u64 * 2654435761 + seed) % 1000) as f64 / 500.0) - 1.0).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Every residual is strictly below `rmax` at termination, and the
    /// estimate honors the advertised entrywise bound against the exact
    /// kernel.
    #[test]
    fn residuals_below_rmax_at_termination(
        n in 50usize..400,
        m in 1usize..5,
        rmax_exp in 2u32..6,
        seed in 0u64..1000,
    ) {
        let g = generate::barabasi_albert(n, m, seed);
        let x = column(n, seed);
        let rmax = 10f64.powi(-(rmax_exp as i32));
        let (p, r, stats) = smooth_column_push(&g, &x, 0.15, rmax);
        prop_assert!(r.iter().all(|v| v.abs() < rmax), "residual at/above rmax after termination");
        prop_assert!(stats.pushes > 0);
        let (exact, _) = smooth_column_exact(&g, &x, 0.15);
        for u in 0..n {
            prop_assert!(
                (p[u] - exact[u]).abs() < rmax,
                "node {}: |p − S·x| = {:.3e} ≥ rmax", u, (p[u] - exact[u]).abs()
            );
        }
    }

    /// ACL forward push: `0 ≤ p`, `Σp ≤ 1`, and the deficit equals the
    /// residual mass left behind (conservation); the power-iteration
    /// reference distributes to total mass 1.
    #[test]
    fn ppr_mass_is_conserved_and_sums_bounded(
        n in 50usize..400,
        m in 1usize..5,
        src in 0usize..400,
        eps_exp in 3u32..6,
        seed in 0u64..1000,
    ) {
        let g = generate::barabasi_albert(n, m, seed);
        let src = (src % n) as NodeId;
        let eps = 10f64.powi(-(eps_exp as i32));
        let (p, stats) = forward_push(&g, src, 0.15, eps);
        prop_assert!(p.iter().all(|&v| v >= 0.0));
        let sum: f64 = p.iter().sum();
        prop_assert!(sum <= 1.0 + 1e-12, "Σp = {} > 1", sum);
        prop_assert!(stats.nnz > 0);
        // Exact column sum: power iteration to convergence.
        let pi = ppr_power(&g, src, 0.15, 1e-12, 10_000);
        let pi_sum: f64 = pi.iter().sum();
        prop_assert!((pi_sum - 1.0).abs() < 1e-9, "exact PPR mass {} ≠ 1", pi_sum);
        // Push underestimates entrywise within eps·deg (ACL guarantee).
        for u in 0..n {
            let gap = pi[u] - p[u];
            prop_assert!(
                gap >= -1e-9 && gap <= eps * g.degree(u as NodeId).max(1) as f64 + 1e-9,
                "node {}: π − p = {:.3e} outside [0, eps·deg]", u, gap
            );
        }
    }

    /// Relabel equivariance: smoothing then permuting equals permuting
    /// then smoothing — exactly (to f64 noise) for the exact kernel,
    /// within `2·rmax` for the thresholded push (each side is within
    /// `rmax` of its own exact answer, and the exact answers coincide).
    #[test]
    fn push_invariant_under_relabel_round_trip(
        n in 50usize..300,
        m in 1usize..5,
        rmax_exp in 3u32..6,
        rcm in proptest::bool::ANY,
        seed in 0u64..1000,
    ) {
        let g = generate::barabasi_albert(n, m, seed);
        let x = column(n, seed ^ 3);
        let strategy = if rcm { Reordering::Rcm } else { Reordering::DegreeSort };
        let perm = compute_order(&g, strategy);
        let (g2, new_of_old) = relabel(&g, &perm);
        let x2 = permute(&x, &new_of_old);

        let (exact, _) = smooth_column_exact(&g, &x, 0.15);
        let (exact2, _) = smooth_column_exact(&g2, &x2, 0.15);
        for u in 0..n {
            let diff = (exact2[new_of_old[u] as usize] - exact[u]).abs();
            prop_assert!(diff < 1e-9, "exact kernel moved under relabel: node {} diff {:.3e}", u, diff);
        }

        let rmax = 10f64.powi(-(rmax_exp as i32));
        let (p, _, _) = smooth_column_push(&g, &x, 0.15, rmax);
        let (p2, _, _) = smooth_column_push(&g2, &x2, 0.15, rmax);
        for u in 0..n {
            let diff = (p2[new_of_old[u] as usize] - p[u]).abs();
            prop_assert!(
                diff < 2.0 * rmax,
                "push broke the 2·rmax relabel bound: node {} diff {:.3e}", u, diff
            );
        }
    }
}

/// A relabel round-trip (permute, then permute back with the inverse)
/// restores the original graph's push answers *bitwise* — the CSR the
/// builder produces is canonical (sorted adjacency), so the round-trip
/// graph is the original graph.
#[test]
fn relabel_round_trip_is_bitwise() {
    let g = generate::barabasi_albert(180, 3, 21);
    let x = column(180, 9);
    let perm = compute_order(&g, Reordering::Rcm);
    let (g2, new_of_old) = relabel(&g, &perm);
    // Inverse permutation: g2's node `new_of_old[old]` must become
    // `old` again, so position `old` of the order holds that g2 id.
    let inverse: Vec<NodeId> = (0..180u32).map(|old| new_of_old[old as usize]).collect();
    let (g3, back_map) = relabel(&g2, &inverse);
    assert_eq!(g3.num_nodes(), g.num_nodes());
    let (p, r, _) = smooth_column_push(&g, &x, 0.15, 1e-4);
    let (p3, r3, _) = smooth_column_push(&g3, &x, 0.15, 1e-4);
    assert_eq!(
        p.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
        p3.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
        "round-trip graph must reproduce push estimates bitwise"
    );
    assert_eq!(
        r.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
        r3.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
    );
    // The double relabel composes to the identity.
    for old in 0..180usize {
        assert_eq!(back_map[new_of_old[old] as usize] as usize, old);
    }
}
