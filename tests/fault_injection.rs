//! End-to-end fault-injection suite (DESIGN.md §8): each recovery policy
//! exercised through the public facade the way an operator would hit it —
//! corrupted checkpoint files rejected with offsets, a panicking batch
//! pipeline producer restarted without disturbing the batch stream, halo
//! corruption detected by checksum and repaired by bounded retry, and
//! memory exhaustion surfacing as a clean `Err` from every trainer.
//!
//! Assertions go through [`FaultPlan::fired_count`]/[`exhausted`]
//! (always live), never the `fault.injected`/`recovery.retries` obs
//! counters — those are zero-overhead-when-off and this binary runs
//! without observability.

use sgnn::core::error::TrainError;
use sgnn::core::models::decoupled::PrecomputeMethod;
use sgnn::core::shard::train_sharded_gcn;
use sgnn::core::trainer::{
    train_cluster_gcn, train_coarse, train_decoupled, train_full_gcn, train_saint, train_sampled,
    SamplerKind, TrainConfig,
};
use sgnn::data::sbm_dataset;
use sgnn::fault::{Ckpt, CkptError, FaultPlan};
use sgnn::partition::hash_partition;
use std::path::PathBuf;
use std::sync::Arc;

fn tmp_path(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("sgnn_faultinj_{}_{tag}.ckpt", std::process::id()))
}

fn small_ds() -> sgnn::data::Dataset {
    sbm_dataset(200, 3, 8.0, 0.85, 6, 0.8, 0, 0.5, 0.25, 31)
}

// ---------------------------------------------------------------------------
// Checkpoint corruption
// ---------------------------------------------------------------------------

fn sample_ckpt() -> Ckpt {
    let mut c = Ckpt::new();
    c.put_str("meta.trainer", "gcn-full");
    c.put_u64("meta.epoch_done", 5);
    c.put_f32s("param.0", &[1.0, -2.5, 3.25, 0.125, 9.0]);
    c
}

#[test]
fn truncated_checkpoint_is_rejected_with_offset() {
    let path = tmp_path("trunc");
    sample_ckpt().save(&path).unwrap();
    let full = std::fs::read(&path).unwrap();
    // Chop mid-way through the last record.
    std::fs::write(&path, &full[..full.len() - 7]).unwrap();
    match Ckpt::load(&path) {
        Err(CkptError::Truncated { offset }) => {
            assert!(offset > 0 && offset < full.len() as u64, "offset {offset} out of range");
        }
        other => panic!("expected Truncated, got {other:?}"),
    }
    let _ = std::fs::remove_file(&path);
}

#[test]
fn bit_flipped_checkpoint_is_rejected_with_record_and_offset() {
    let path = tmp_path("flip");
    sample_ckpt().save(&path).unwrap();
    let mut bytes = std::fs::read(&path).unwrap();
    // Flip one bit in the last record's payload (the f32 array), leaving
    // the framing intact so the CRC — not a length check — catches it.
    let n = bytes.len();
    bytes[n - 6] ^= 0x10;
    std::fs::write(&path, &bytes).unwrap();
    match Ckpt::load(&path) {
        Err(CkptError::CrcMismatch { record, offset, stored, computed }) => {
            assert_eq!(record, "param.0", "corruption must be pinned to its record");
            assert!(offset > 0, "offset must locate the record");
            assert_ne!(stored, computed);
        }
        other => panic!("expected CrcMismatch, got {other:?}"),
    }
    let _ = std::fs::remove_file(&path);
}

#[test]
fn resume_from_corrupt_checkpoint_fails_loud_not_silent() {
    // A trainer handed a corrupt resume file must error, not cold-start:
    // silently retraining from scratch would masquerade as recovery.
    let ds = small_ds();
    let dir = std::env::temp_dir().join(format!("sgnn_faultinj_{}_dir", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let cfg = TrainConfig {
        epochs: 2,
        hidden: vec![4],
        ckpt_dir: Some(dir.clone()),
        ..Default::default()
    };
    train_full_gcn(&ds, &cfg).unwrap();
    let ckpt = dir.join("gcn-full.ckpt");
    let mut bytes = std::fs::read(&ckpt).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x01;
    std::fs::write(&ckpt, &bytes).unwrap();
    let resume = TrainConfig { resume_from: Some(ckpt), ckpt_dir: None, ..cfg };
    match train_full_gcn(&ds, &resume) {
        Err(TrainError::Checkpoint(e)) => {
            let msg = e.to_string();
            assert!(msg.contains("offset"), "error must name the byte offset: {msg}");
        }
        Err(other) => panic!("expected TrainError::Checkpoint, got {other:?}"),
        Ok(_) => panic!("corrupt resume file must not be accepted"),
    }
    let _ = std::fs::remove_dir_all(&dir);
}

// ---------------------------------------------------------------------------
// Pipeline producer panic → bounded restart, identical stream
// ---------------------------------------------------------------------------

#[test]
fn producer_panic_is_restarted_and_training_matches_unfaulted_run() {
    let ds = small_ds();
    let base = TrainConfig { epochs: 3, hidden: vec![6], batch_size: 64, ..Default::default() };
    let sampler = SamplerKind::NodeWise(vec![4, 4]);
    let (_, ref_report) = train_sampled(&ds, &sampler, &base).unwrap();
    // Panic the producer while it prepares the second global batch. The
    // pipeline's restart budget (armed whenever a fault plan is present)
    // replays the batch; determinism makes the replay identical, so the
    // run must finish bit-for-bit equal to the unfaulted reference.
    let plan = Arc::new(FaultPlan::new(7).panic_producer(1));
    let cfg = TrainConfig { fault_plan: Some(Arc::clone(&plan)), ..base };
    let (_, report) = train_sampled(&ds, &sampler, &cfg).unwrap();
    assert!(plan.exhausted(), "armed producer panic never fired");
    assert_eq!(report.final_loss.to_bits(), ref_report.final_loss.to_bits());
    assert_eq!(report.val_acc, ref_report.val_acc);
    assert_eq!(report.test_acc, ref_report.test_acc);
}

#[test]
fn producer_panic_without_a_plan_still_propagates() {
    // The restart budget exists only under an armed fault plan; a panic
    // in a plain run must surface (no silent swallowing of real bugs).
    // Exercised at the pipeline level in crates/core/src/pipeline.rs; at
    // the trainer level a kill-style plan with no restart budget left is
    // equivalent, so here we just pin the config default.
    let cfg = TrainConfig::default();
    assert!(cfg.fault_plan.is_none());
}

// ---------------------------------------------------------------------------
// Halo corruption → checksum detect, bounded-retry repair
// ---------------------------------------------------------------------------

#[test]
fn halo_corruption_is_detected_and_repaired_bitwise() {
    let ds = small_ds();
    let base = TrainConfig { epochs: 3, hidden: vec![6], dropout: 0.1, ..Default::default() };
    let (_, ref_report) = train_full_gcn(&ds, &base).unwrap();
    for k in [2usize, 4] {
        let part = hash_partition(ds.num_nodes(), k);
        for exchange in [0u64, 1, 3] {
            let plan = Arc::new(FaultPlan::new(97).corrupt_halo(exchange, 8));
            let cfg = TrainConfig { fault_plan: Some(Arc::clone(&plan)), ..base.clone() };
            let (_, report, _) = train_sharded_gcn(&ds, &part, &cfg).unwrap();
            assert!(plan.exhausted(), "k={k}: corruption of exchange {exchange} never fired");
            assert_eq!(
                report.final_loss.to_bits(),
                ref_report.final_loss.to_bits(),
                "k={k} exchange={exchange}: repair must be bitwise"
            );
            assert_eq!(report.val_acc, ref_report.val_acc, "k={k} exchange={exchange}");
            assert_eq!(report.test_acc, ref_report.test_acc, "k={k} exchange={exchange}");
        }
    }
}

/// The checksum-verified bounded-retry policy covers *compressed* halo
/// payloads too (DESIGN.md §11): corruption injected into a quantized
/// ghost matrix is detected sender-side-CRC vs rebuilt-CRC and repaired
/// from the pristine dequantized blocks, leaving the run identical to
/// the same compressed run without the fault.
#[test]
fn compressed_halo_corruption_is_detected_and_repaired() {
    use sgnn::core::CommRegime;
    use sgnn::linalg::QuantMode;
    let ds = small_ds();
    for (quant, staleness) in [(QuantMode::Int8, 1u64), (QuantMode::F16, 2)] {
        let base = TrainConfig {
            epochs: 3,
            hidden: vec![6],
            dropout: 0.1,
            comm_regime: CommRegime::Compressed { quant, staleness },
            ..Default::default()
        };
        let part = hash_partition(ds.num_nodes(), 3);
        let (_, clean_report, _) = train_sharded_gcn(&ds, &part, &base).unwrap();
        for exchange in [0u64, 1, 3] {
            let plan = Arc::new(FaultPlan::new(97).corrupt_halo(exchange, 8));
            let cfg = TrainConfig { fault_plan: Some(Arc::clone(&plan)), ..base.clone() };
            let (_, report, _) = train_sharded_gcn(&ds, &part, &cfg).unwrap();
            assert!(
                plan.exhausted(),
                "{quant:?} s={staleness}: corruption of exchange {exchange} never fired"
            );
            assert_eq!(
                report.final_loss.to_bits(),
                clean_report.final_loss.to_bits(),
                "{quant:?} s={staleness} exchange={exchange}: repair must restore the clean run"
            );
            assert_eq!(report.val_acc, clean_report.val_acc);
            assert_eq!(report.test_acc, clean_report.test_acc);
        }
    }
}

// ---------------------------------------------------------------------------
// Memory exhaustion → graceful Err from every trainer
// ---------------------------------------------------------------------------

#[test]
fn exceeding_the_budget_errors_from_every_trainer() {
    let ds = small_ds();
    // 1 KiB is below any trainer's first resident charge.
    let cfg =
        TrainConfig { epochs: 2, hidden: vec![4], mem_budget: Some(1024), ..Default::default() };
    let budget_err = |e: TrainError| {
        assert!(matches!(e, TrainError::BudgetExceeded(_)), "expected BudgetExceeded, got {e:?}");
    };
    budget_err(train_full_gcn(&ds, &cfg).err().expect("full"));
    budget_err(
        train_decoupled(&ds, &PrecomputeMethod::Sgc { k: 2 }, &cfg).err().expect("decoupled"),
    );
    budget_err(
        train_sampled(&ds, &SamplerKind::NodeWise(vec![4, 4]), &cfg).err().expect("sampled"),
    );
    budget_err(
        train_saint(&ds, sgnn::sample::SaintSampler::RandomWalk { roots: 20, length: 4 }, 2, &cfg)
            .err()
            .expect("saint"),
    );
    budget_err(train_cluster_gcn(&ds, 4, 2, &cfg).err().expect("cluster"));
    budget_err(train_coarse(&ds, 0.5, &cfg).expect_err("coarse"));
    let part = hash_partition(ds.num_nodes(), 2);
    budget_err(train_sharded_gcn(&ds, &part, &cfg).err().expect("sharded"));
}

#[test]
fn plan_budget_and_config_budget_take_the_tighter_bound() {
    let ds = small_ds();
    // Plan says 1 KiB, config says huge: the plan's simulated exhaustion
    // must win (min of the two).
    let plan = Arc::new(FaultPlan::new(0).mem_budget(1024));
    let cfg = TrainConfig {
        epochs: 2,
        hidden: vec![4],
        mem_budget: Some(usize::MAX),
        fault_plan: Some(plan),
        ..Default::default()
    };
    let err = train_full_gcn(&ds, &cfg).err().expect("budget must trip");
    match err {
        TrainError::BudgetExceeded(b) => {
            assert_eq!(b.budget, 1024);
            assert!(b.requested > 0);
        }
        other => panic!("expected BudgetExceeded, got {other:?}"),
    }
}

#[test]
fn generous_budget_does_not_perturb_training() {
    let ds = small_ds();
    let base = TrainConfig { epochs: 2, hidden: vec![4], ..Default::default() };
    let (_, ref_report) = train_full_gcn(&ds, &base).unwrap();
    let cfg = TrainConfig { mem_budget: Some(1 << 30), ..base };
    let (_, report) = train_full_gcn(&ds, &cfg).unwrap();
    assert_eq!(report.final_loss.to_bits(), ref_report.final_loss.to_bits());
    assert_eq!(report.test_acc, ref_report.test_acc);
}
