//! Observability must be *observation only*: enabling span aggregation or
//! the JSONL trace sink must not change a single bit of numeric output,
//! and the trace it writes must be well-formed and contain the span names
//! the conventions in DESIGN.md §5 promise.

use proptest::prelude::*;
use sgnn::graph::generate;
use sgnn::graph::normalize::{normalized_adjacency, NormKind};
use sgnn::graph::spmm::spmm;
use sgnn::linalg::DenseMatrix;
use std::sync::Mutex;

/// Serializes tests that toggle the process-wide observability state (the
/// test harness runs #[test] functions concurrently).
static OBS: Mutex<()> = Mutex::new(());

fn trace_path() -> std::path::PathBuf {
    std::env::temp_dir().join(format!("sgnn_obs_test_{}.jsonl", std::process::id()))
}

/// Routes this test binary's trace sink to a temp file. The sink binds
/// its path on first event, so every tracing test calls this first (the
/// call is a no-op once the sink is open — all tests share the path).
fn route_trace_to_temp() {
    sgnn::obs::trace::set_trace_path(trace_path().to_str().unwrap());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Pooled spmm output is bitwise identical with tracing on and off:
    /// instrumentation sits outside the arithmetic.
    #[test]
    fn tracing_does_not_change_spmm_output(
        n in 500usize..3000,
        m in 1usize..5,
        d in 1usize..9,
        seed in 0u64..1000,
    ) {
        let _g = OBS.lock().unwrap_or_else(|e| e.into_inner());
        route_trace_to_temp();
        let g = generate::barabasi_albert(n, m, seed);
        let a = normalized_adjacency(&g, NormKind::Sym, true).unwrap();
        let x = DenseMatrix::gaussian(n, d, 1.0, seed + 1);
        sgnn::obs::disable();
        let y_off = spmm(&a, &x);
        sgnn::obs::enable_trace();
        let y_trace = spmm(&a, &x);
        sgnn::obs::disable();
        prop_assert_eq!(y_off.data(), y_trace.data(), "tracing changed spmm output bits");
    }
}

/// A traced mini training run writes parseable JSONL whose events include
/// the `trainer.epoch` and `linalg.spmm` spans, and the aggregated report
/// sees the same names.
#[test]
fn trace_file_is_wellformed_jsonl_with_expected_spans() {
    let _g = OBS.lock().unwrap_or_else(|e| e.into_inner());
    route_trace_to_temp();
    sgnn::obs::enable_trace();
    sgnn::obs::reset();
    let ds = sgnn::data::sbm_dataset(400, 3, 8.0, 0.85, 8, 0.6, 0, 0.5, 0.25, 5);
    let cfg = sgnn::core::trainer::TrainConfig { epochs: 3, hidden: vec![8], ..Default::default() };
    let (_, report) = sgnn::core::trainer::train_full_gcn(&ds, &cfg).unwrap();
    assert!(report.phases.total_secs() > 0.0);
    sgnn::obs::disable(); // flushes the sink
    let text = std::fs::read_to_string(trace_path()).expect("trace file exists");
    assert!(!text.is_empty());
    for line in text.lines() {
        assert!(
            line.starts_with("{\"ph\":\"") && line.ends_with('}'),
            "malformed trace line: {line}"
        );
    }
    for name in ["\"name\":\"trainer.epoch\"", "\"name\":\"linalg.spmm\""] {
        assert!(text.contains(name), "trace missing {name}");
    }
    let obs = sgnn::obs::report();
    let names: Vec<&str> = obs.spans.iter().map(|s| s.name.as_str()).collect();
    assert!(names.contains(&"trainer.epoch"), "aggregated spans: {names:?}");
}

/// The ObsReport snapshot after an instrumented run carries the kernel
/// counters the kernels promise (spmm calls/nnz), serialized with the
/// documented stable field order.
#[test]
fn obs_report_counts_kernel_work() {
    let _g = OBS.lock().unwrap_or_else(|e| e.into_inner());
    route_trace_to_temp();
    sgnn::obs::enable();
    sgnn::obs::reset();
    let g = generate::barabasi_albert(2_000, 4, 9);
    let a = normalized_adjacency(&g, NormKind::Sym, true).unwrap();
    let x = DenseMatrix::gaussian(2_000, 8, 1.0, 10);
    let _ = spmm(&a, &x);
    let obs = sgnn::obs::report();
    sgnn::obs::disable();
    let calls = obs.counters.iter().find(|c| c.name == "linalg.spmm.calls").expect("spmm counter");
    assert_eq!(calls.value, 1);
    let nnz = obs.counters.iter().find(|c| c.name == "linalg.spmm.nnz").expect("nnz counter");
    assert_eq!(nnz.value, a.num_edges() as u64);
    let json = serde::json::to_string(&obs);
    assert!(json.starts_with("{\"enabled\":true,"));
}

// ---------------------------------------------------------------------------
// Histograms, exporters, and the export-mode bitwise contract (DESIGN.md §10).
// ---------------------------------------------------------------------------

static HIST: sgnn::obs::Histogram = sgnn::obs::Histogram::new("test.obs_it.latency_ns");
static CTR: sgnn::obs::Counter = sgnn::obs::Counter::new("test.obs_it.events");
static GAUGE: sgnn::obs::Gauge = sgnn::obs::Gauge::new("test.obs_it.level");

/// `layer.op.metric` → `sgnn_layer_op_metric`, mirroring the exporter's
/// documented naming rule so the round-trip test stays self-contained.
fn prom_family(name: &str) -> String {
    let mut out = String::from("sgnn_");
    out.extend(name.chars().map(|c| if c.is_ascii_alphanumeric() { c } else { '_' }));
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Histogram quantiles agree with exact sorted-sample quantiles to
    /// within the documented bucket bound: the estimate never
    /// undershoots, and overshoots by at most 1/16 relative (values < 16
    /// are exact).
    #[test]
    fn histogram_quantiles_match_exact_sample_quantiles(
        samples in proptest::collection::vec(0u64..2_000_000_000, 1..600),
    ) {
        let _g = OBS.lock().unwrap_or_else(|e| e.into_inner());
        route_trace_to_temp();
        sgnn::obs::enable();
        sgnn::obs::reset();
        for &v in &samples {
            HIST.record(v);
        }
        let snap = HIST.snapshot();
        let mut sorted = samples.clone();
        sorted.sort_unstable();
        for q in [0.5f64, 0.9, 0.99, 0.999] {
            let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
            let exact = sorted[rank - 1];
            let est = snap.quantile(q);
            prop_assert!(est >= exact, "q{q}: estimate {est} undershoots exact {exact}");
            let bound = exact + exact / 16 + 1;
            prop_assert!(est <= bound, "q{q}: estimate {est} beyond bound {bound} (exact {exact})");
        }
        sgnn::obs::disable();
    }

    /// Every registered metric name round-trips into the Prometheus
    /// exposition as exactly one `# TYPE` family, whatever subset of
    /// metrics saw traffic. Naming is a compatibility surface — a
    /// duplicate or missing family is a scrape-breaking bug.
    #[test]
    fn prom_exposition_has_every_registered_metric_exactly_once(
        events in 0u64..50,
        level in 0u64..1000,
        lat in proptest::collection::vec(1u64..100_000, 0..32),
    ) {
        let _g = OBS.lock().unwrap_or_else(|e| e.into_inner());
        route_trace_to_temp();
        sgnn::obs::enable();
        sgnn::obs::reset();
        CTR.add(events);
        GAUGE.set(level);
        for &v in &lat {
            HIST.record(v);
        }
        let report = sgnn::obs::report();
        let text = sgnn::obs::prometheus_text();
        let names = report
            .counters
            .iter()
            .map(|c| c.name.as_str())
            .chain(report.gauges.iter().map(|g| g.name.as_str()))
            .chain(report.histograms.iter().map(|h| h.name.as_str()));
        for name in names {
            let family = format!("# TYPE {} ", prom_family(name));
            let hits = text.matches(&family).count();
            prop_assert_eq!(hits, 1, "metric {} has {} TYPE families", name, hits);
        }
        sgnn::obs::disable();
    }
}

/// The disabled path of every instrument — span, counter, gauge,
/// histogram — is one relaxed load plus a predicted branch. Budget is
/// 2 ns/call; the assert allows 10x for shared-CI noise. CI runs this
/// with and without `--features simd` (the flag must not regress the
/// fast path).
#[test]
fn disabled_instruments_cost_nanoseconds() {
    let _g = OBS.lock().unwrap_or_else(|e| e.into_inner());
    sgnn::obs::disable();
    const REPS: u64 = 2_000_000;
    let per_call = |f: &mut dyn FnMut()| {
        let t = std::time::Instant::now();
        for _ in 0..REPS {
            f();
        }
        t.elapsed().as_nanos() as f64 / REPS as f64
    };
    let span = per_call(&mut || drop(std::hint::black_box(sgnn::obs::SpanGuard::enter("x.y"))));
    let ctr = per_call(&mut || CTR.add(std::hint::black_box(1)));
    let hist = per_call(&mut || HIST.record(std::hint::black_box(42)));
    for (what, ns) in [("span", span), ("counter", ctr), ("histogram", hist)] {
        assert!(ns < 20.0, "disabled {what} record costs {ns:.1} ns/call (budget 2 ns, 10x slack)");
    }
}

/// Arming the Prometheus exporter must not change one bit of training
/// output: same dataset, same config, same seeds — identical final loss,
/// accuracies, and weight bits, with the exposition written as a side
/// effect only.
#[test]
fn prom_export_changes_no_trained_bits() {
    let _g = OBS.lock().unwrap_or_else(|e| e.into_inner());
    route_trace_to_temp();
    let prom_path = std::env::temp_dir().join(format!("sgnn_obs_test_{}.prom", std::process::id()));
    std::env::set_var("SGNN_OBS_FILE", &prom_path);
    let ds = sgnn::data::sbm_dataset(300, 3, 8.0, 0.85, 8, 0.6, 1, 0.5, 0.25, 5);
    let cfg = sgnn::core::trainer::TrainConfig { epochs: 4, hidden: vec![8], ..Default::default() };
    let weight_bits = |model: &mut sgnn::core::models::gcn::Gcn| {
        let mut bits: Vec<u32> = Vec::new();
        model.visit_params_mut(&mut |m| bits.extend(m.data().iter().map(|w| w.to_bits())));
        bits
    };

    sgnn::obs::disable();
    let (mut model_off, report_off) = sgnn::core::trainer::train_full_gcn(&ds, &cfg).unwrap();

    sgnn::obs::enable_export_prom();
    sgnn::obs::reset();
    let (mut model_prom, report_prom) = sgnn::core::trainer::train_full_gcn(&ds, &cfg).unwrap();
    sgnn::obs::disable();
    std::env::remove_var("SGNN_OBS_FILE");

    assert_eq!(
        report_off.final_loss.to_bits(),
        report_prom.final_loss.to_bits(),
        "prom export changed the final loss"
    );
    assert_eq!(report_off.test_acc.to_bits(), report_prom.test_acc.to_bits());
    assert_eq!(report_off.val_acc.to_bits(), report_prom.val_acc.to_bits());
    assert_eq!(
        weight_bits(&mut model_off),
        weight_bits(&mut model_prom),
        "prom export changed trained weight bits"
    );
    let text = std::fs::read_to_string(&prom_path).expect("trainer exit wrote the exposition");
    assert!(text.contains("# TYPE sgnn_linalg_spmm_ns summary"), "missing spmm histogram family");
    assert!(text.contains("sgnn_linalg_spmm_ns_count"), "missing summary count row");
    let _ = std::fs::remove_file(&prom_path);
}

/// Exporters on a freshly reset registry produce valid output: the
/// exposition contains only well-formed families (no partially emitted
/// rows for zeroed metrics) and the JSON snapshot keeps its stable
/// report-then-series field order.
#[test]
fn empty_report_exports_are_wellformed() {
    let _g = OBS.lock().unwrap_or_else(|e| e.into_inner());
    route_trace_to_temp();
    sgnn::obs::enable();
    sgnn::obs::reset();
    let text = sgnn::obs::prometheus_text();
    for line in text.lines() {
        assert!(
            line.starts_with("# TYPE sgnn_") || line.starts_with("sgnn_"),
            "malformed exposition line on empty registry: {line}"
        );
    }
    let json = sgnn::obs::json_snapshot();
    assert!(
        json.starts_with("{\"report\":{\"enabled\":true,"),
        "json: {}",
        &json[..60.min(json.len())]
    );
    assert!(json.ends_with('}'));
    let report_pos = json.find("\"report\":").unwrap();
    let series_pos = json.find("\"series\":").unwrap();
    assert!(report_pos < series_pos, "field order is a compatibility surface");
    sgnn::obs::disable();
}

/// Many threads emitting spans into the single shared JSONL sink
/// concurrently must not interleave bytes mid-line: every line in the
/// file stays a complete, well-formed event.
#[test]
fn concurrent_trace_writers_keep_jsonl_wellformed() {
    let _g = OBS.lock().unwrap_or_else(|e| e.into_inner());
    route_trace_to_temp();
    sgnn::obs::enable_trace();
    sgnn::obs::reset();
    let threads: Vec<_> = (0..8)
        .map(|_| {
            std::thread::spawn(|| {
                for _ in 0..50 {
                    let _s = sgnn::obs::SpanGuard::enter("test.concurrent.span");
                    std::hint::black_box(());
                }
            })
        })
        .collect();
    for t in threads {
        t.join().unwrap();
    }
    sgnn::obs::disable(); // flush
    let text = std::fs::read_to_string(trace_path()).expect("trace file exists");
    let mut ours = 0;
    for line in text.lines() {
        assert!(
            line.starts_with("{\"ph\":\"") && line.ends_with('}'),
            "interleaved/malformed trace line: {line}"
        );
        if line.contains("\"name\":\"test.concurrent.span\"") {
            ours += 1;
        }
    }
    assert!(ours >= 400, "expected 8x50 span events, saw {ours}");
}
