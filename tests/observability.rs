//! Observability must be *observation only*: enabling span aggregation or
//! the JSONL trace sink must not change a single bit of numeric output,
//! and the trace it writes must be well-formed and contain the span names
//! the conventions in DESIGN.md §5 promise.

use proptest::prelude::*;
use sgnn::graph::generate;
use sgnn::graph::normalize::{normalized_adjacency, NormKind};
use sgnn::graph::spmm::spmm;
use sgnn::linalg::DenseMatrix;
use std::sync::Mutex;

/// Serializes tests that toggle the process-wide observability state (the
/// test harness runs #[test] functions concurrently).
static OBS: Mutex<()> = Mutex::new(());

fn trace_path() -> std::path::PathBuf {
    std::env::temp_dir().join(format!("sgnn_obs_test_{}.jsonl", std::process::id()))
}

/// Routes this test binary's trace sink to a temp file. The sink binds
/// its path on first event, so every tracing test calls this first (the
/// call is a no-op once the sink is open — all tests share the path).
fn route_trace_to_temp() {
    sgnn::obs::trace::set_trace_path(trace_path().to_str().unwrap());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Pooled spmm output is bitwise identical with tracing on and off:
    /// instrumentation sits outside the arithmetic.
    #[test]
    fn tracing_does_not_change_spmm_output(
        n in 500usize..3000,
        m in 1usize..5,
        d in 1usize..9,
        seed in 0u64..1000,
    ) {
        let _g = OBS.lock().unwrap_or_else(|e| e.into_inner());
        route_trace_to_temp();
        let g = generate::barabasi_albert(n, m, seed);
        let a = normalized_adjacency(&g, NormKind::Sym, true).unwrap();
        let x = DenseMatrix::gaussian(n, d, 1.0, seed + 1);
        sgnn::obs::disable();
        let y_off = spmm(&a, &x);
        sgnn::obs::enable_trace();
        let y_trace = spmm(&a, &x);
        sgnn::obs::disable();
        prop_assert_eq!(y_off.data(), y_trace.data(), "tracing changed spmm output bits");
    }
}

/// A traced mini training run writes parseable JSONL whose events include
/// the `trainer.epoch` and `linalg.spmm` spans, and the aggregated report
/// sees the same names.
#[test]
fn trace_file_is_wellformed_jsonl_with_expected_spans() {
    let _g = OBS.lock().unwrap_or_else(|e| e.into_inner());
    route_trace_to_temp();
    sgnn::obs::enable_trace();
    sgnn::obs::reset();
    let ds = sgnn::data::sbm_dataset(400, 3, 8.0, 0.85, 8, 0.6, 0, 0.5, 0.25, 5);
    let cfg = sgnn::core::trainer::TrainConfig { epochs: 3, hidden: vec![8], ..Default::default() };
    let (_, report) = sgnn::core::trainer::train_full_gcn(&ds, &cfg).unwrap();
    assert!(report.phases.total_secs() > 0.0);
    sgnn::obs::disable(); // flushes the sink
    let text = std::fs::read_to_string(trace_path()).expect("trace file exists");
    assert!(!text.is_empty());
    for line in text.lines() {
        assert!(
            line.starts_with("{\"ph\":\"") && line.ends_with('}'),
            "malformed trace line: {line}"
        );
    }
    for name in ["\"name\":\"trainer.epoch\"", "\"name\":\"linalg.spmm\""] {
        assert!(text.contains(name), "trace missing {name}");
    }
    let obs = sgnn::obs::report();
    let names: Vec<&str> = obs.spans.iter().map(|s| s.name.as_str()).collect();
    assert!(names.contains(&"trainer.epoch"), "aggregated spans: {names:?}");
}

/// The ObsReport snapshot after an instrumented run carries the kernel
/// counters the kernels promise (spmm calls/nnz), serialized with the
/// documented stable field order.
#[test]
fn obs_report_counts_kernel_work() {
    let _g = OBS.lock().unwrap_or_else(|e| e.into_inner());
    route_trace_to_temp();
    sgnn::obs::enable();
    sgnn::obs::reset();
    let g = generate::barabasi_albert(2_000, 4, 9);
    let a = normalized_adjacency(&g, NormKind::Sym, true).unwrap();
    let x = DenseMatrix::gaussian(2_000, 8, 1.0, 10);
    let _ = spmm(&a, &x);
    let obs = sgnn::obs::report();
    sgnn::obs::disable();
    let calls = obs.counters.iter().find(|c| c.name == "linalg.spmm.calls").expect("spmm counter");
    assert_eq!(calls.value, 1);
    let nnz = obs.counters.iter().find(|c| c.name == "linalg.spmm.nnz").expect("nnz counter");
    assert_eq!(nnz.value, a.num_edges() as u64);
    let json = serde::json::to_string(&obs);
    assert!(json.starts_with("{\"enabled\":true,"));
}
