//! Quickstart: train three scalable-GNN families on one synthetic graph
//! and compare accuracy / time / peak memory.
//!
//! ```text
//! cargo run --release --example quickstart
//! SGNN_OBS=trace cargo run --release --example quickstart   # + sgnn_trace.jsonl
//! ```
//!
//! With `SGNN_OBS=trace` the run also writes a chrome://tracing-loadable
//! JSONL trace (`SGNN_OBS_FILE` overrides the path) covering every epoch,
//! phase, sampling, and kernel span.

use sgnn::core::models::decoupled::PrecomputeMethod;
use sgnn::core::trainer::{
    train_decoupled, train_full_gcn, train_sampled, SamplerKind, TrainConfig, TrainReport,
};
use sgnn::data::sbm_dataset;

fn print_row(r: &TrainReport) {
    println!(
        "{:<16} acc={:.3}  val={:.3}  precompute={:.2}s  train={:.2}s  peak={:>8} KiB",
        r.name,
        r.test_acc,
        r.val_acc,
        r.precompute_secs,
        r.train_secs,
        r.peak_mem_bytes / 1024
    );
    let p = &r.phases;
    println!(
        "{:<16} phases: sample={:.2}s forward={:.2}s backward={:.2}s step={:.2}s eval={:.2}s",
        "", p.sample_secs, p.forward_secs, p.backward_secs, p.step_secs, p.eval_secs
    );
}

fn main() {
    // A 20k-node homophilous community graph with noisy class features —
    // the small end of the survey's "realistic" regime, big enough that
    // the scalability differences already show.
    println!("generating dataset…");
    let ds = sbm_dataset(20_000, 5, 10.0, 0.85, 32, 1.0, 0, 0.5, 0.25, 7);
    println!(
        "dataset: {} nodes, {} edges, {} classes, {} features\n",
        ds.num_nodes(),
        ds.graph.num_edges() / 2,
        ds.num_classes,
        ds.feature_dim()
    );
    let cfg = TrainConfig { epochs: 30, hidden: vec![32], ..Default::default() };

    println!("1/3  full-batch GCN (the canonical baseline)…");
    let (_, gcn) = train_full_gcn(&ds, &cfg).unwrap();
    print_row(&gcn);

    println!("2/3  decoupled SGC (precompute Â²X once, then mini-batch MLP)…");
    let (_, sgc) = train_decoupled(&ds, &PrecomputeMethod::Sgc { k: 2 }, &cfg).unwrap();
    print_row(&sgc);

    println!("3/3  sampled GraphSAGE (node-wise fanout 5×5)…");
    let cfg_s = TrainConfig { epochs: 10, batch_size: 512, ..cfg.clone() };
    let (_, sage) = train_sampled(&ds, &SamplerKind::NodeWise(vec![5, 5]), &cfg_s).unwrap();
    print_row(&sage);

    println!("\nThe survey's §3.1.2 story in one table: all three reach similar");
    println!("accuracy, but the decoupled model's peak memory is batch-sized");
    println!("while the full-batch GCN holds every layer activation for the");
    println!("entire graph.");

    if sgnn::obs::tracing() {
        sgnn::obs::flush();
        let path = std::env::var("SGNN_OBS_FILE").unwrap_or_else(|_| "sgnn_trace.jsonl".into());
        println!("\ntrace written to {path} — load it at chrome://tracing or ui.perfetto.dev");
    }
}
