//! Distributed-training planning (survey §3.1.2 Graph Partition / §3.4.3):
//! pick a partitioner by measuring edge-cut, balance, and the simulated
//! communication volume of synchronous multi-worker GNN training.
//!
//! ```text
//! cargo run --release --example distributed_partition
//! ```

use sgnn::graph::generate;
use sgnn::partition::comm::simulate;
use sgnn::partition::metrics::quality;
use sgnn::partition::multilevel::{multilevel_partition, MultilevelConfig};
use sgnn::partition::streaming::{fennel, hash_partition, ldg};
use sgnn::partition::Partition;

fn main() {
    // A 100k-node community-structured graph standing in for a social
    // network shard.
    let (g, _) = generate::planted_partition(100_000, 16, 12.0, 0.9, 11);
    println!("graph: {} nodes, {} undirected edges", g.num_nodes(), g.num_edges() / 2);
    let k = 8;
    let layers = 3;
    let dim = 128;
    println!("partitioning into {k} workers; simulating {layers}-layer, {dim}-dim training\n");
    println!(
        "{:<12} {:>9} {:>9} {:>12} {:>14} {:>10}",
        "method", "edge-cut", "balance", "replication", "MB/epoch", "imbalance"
    );
    let run = |name: &str, p: Partition| {
        let q = quality(&g, &p);
        let c = simulate(&g, &p, layers, dim);
        println!(
            "{:<12} {:>8.1}% {:>9.3} {:>12.3} {:>14.1} {:>10.2}",
            name,
            q.edge_cut * 100.0,
            q.balance,
            q.replication,
            c.bytes_per_epoch as f64 / 1e6,
            c.compute_imbalance
        );
    };
    run("hash", hash_partition(g.num_nodes(), k));
    run("ldg", ldg(&g, k, 1.05));
    run("fennel", fennel(&g, k, 1.05));
    run("multilevel", multilevel_partition(&g, k, &MultilevelConfig::default()));
    println!("\nExpected shape: hash ≫ streaming ≫ multilevel on edge-cut and");
    println!("traffic; all near balance 1.0 (capacity-constrained). This is the");
    println!("survey's claim that partitioning 'optimizes computational and");
    println!("communication overhead' in distributed GNN training.");
}
