//! Prints Figure 1 of the paper — the taxonomy of graph-data-management
//! techniques for scalable GNNs — with each leaf mapped to the module in
//! this workspace that implements it.
//!
//! ```text
//! cargo run --example taxonomy
//! ```

fn main() {
    let tree = sgnn::core::taxonomy::figure1();
    println!("{}", tree.render());
    let leaves = tree.leaves();
    println!("{} taxonomy leaves, every one implemented.", leaves.len());
}
