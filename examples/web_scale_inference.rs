//! On-demand inference at scale (survey §3.2.2): answer per-node queries
//! on a million-edge graph *without* full-graph computation, using local
//! push PPR, hub-label SPD queries, and NIGCN-style sampled diffusion.
//!
//! ```text
//! cargo run --release --example web_scale_inference
//! ```

use sgnn::graph::generate;
use sgnn::graph::traverse::sp_distance;
use sgnn::linalg::DenseMatrix;
use sgnn::prop::fora::topk_ppr;
use sgnn::prop::push::forward_push;
use sgnn::sim::HubLabels;
use sgnn::sparsify::nigcn::nigcn_embed;
use std::time::Instant;

fn main() {
    println!("building a ~1M-edge power-law graph…");
    let g = generate::barabasi_albert(250_000, 4, 13);
    println!("graph: {} nodes, {} directed edges\n", g.num_nodes(), g.num_edges());
    let x = DenseMatrix::gaussian(g.num_nodes(), 16, 1.0, 14);

    // 1. Personalized PageRank for a single query node: local push touches
    //    a vanishing fraction of the graph.
    let t = Instant::now();
    let (ppr, stats) = forward_push(&g, 12_345, 0.15, 1e-5);
    let mut top: Vec<(u32, f64)> =
        ppr.iter().enumerate().map(|(v, &p)| (v as u32, p)).filter(|&(_, p)| p > 0.0).collect();
    top.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap());
    println!(
        "PPR(12345): top neighbors {:?} — {} pushes, {} nodes touched, {:?}",
        &top[..4.min(top.len())].iter().map(|&(v, _)| v).collect::<Vec<_>>(),
        stats.pushes,
        stats.nnz,
        t.elapsed()
    );
    println!(
        "  (that's {:.3}% of the graph for one on-demand query)",
        100.0 * stats.nnz as f64 / g.num_nodes() as f64
    );
    // FORA-style top-k query (push + walk refinement on the residual).
    let t = Instant::now();
    let top = topk_ppr(&g, 12_345, 8, 0.15, 1e-4, 99);
    println!(
        "  FORA top-8: {:?} in {:?}\n",
        top.iter().map(|&(v, _)| v).collect::<Vec<_>>(),
        t.elapsed()
    );

    // 2. Shortest-path-distance service: build hub labels once, answer in
    //    microseconds (the DHIL-GT SPD-bias query pattern). Index
    //    construction is the offline step, so this demo builds it on a
    //    30k-node shard; queries against it are representative.
    let g_idx = generate::barabasi_albert(30_000, 4, 17);
    let t = Instant::now();
    let labels = HubLabels::build(&g_idx);
    println!(
        "hub labels: built in {:?}, mean label size {:.1}, index {} MiB",
        t.elapsed(),
        labels.mean_label_size(),
        labels.nbytes() / (1 << 20)
    );
    let pairs: Vec<(u32, u32)> =
        (0..2000u32).map(|i| (i * 17 % 30_000, i * 101 % 30_000)).collect();
    let t = Instant::now();
    let mut acc = 0u64;
    for &(s, d) in &pairs {
        acc += labels.query(s, d) as u64;
    }
    let per_query = t.elapsed() / pairs.len() as u32;
    println!("  2000 SPD queries in {per_query:?}/query (checksum {acc})");
    let t = Instant::now();
    let mut acc2 = 0u64;
    for &(s, d) in &pairs[..50] {
        acc2 += sp_distance(&g_idx, s, d) as u64;
    }
    println!(
        "  bidirectional-BFS baseline: {:?}/query (on 50 queries, checksum {acc2})\n",
        t.elapsed() / 50
    );

    // 3. NIGCN-style sampled diffusion embeddings for a handful of target
    //    nodes — cost independent of graph size.
    let targets: Vec<u32> = vec![7, 77_777, 200_000];
    let t = Instant::now();
    let emb = nigcn_embed(&g, &x, &targets, 3, 4, 1.5, 15);
    println!(
        "NIGCN sampled diffusion for {} targets: {:?} (embedding {}×{})",
        targets.len(),
        t.elapsed(),
        emb.rows(),
        emb.cols()
    );
    println!("\nAll three services answered node-level queries without one");
    println!("full-graph pass — the §3.2.2 'querying node-level information on");
    println!("demand instead of the full-graph manner' pattern.");
}
