//! Streaming-graph maintenance (survey §3.4.2 "dynamic graphs" / GENTI
//! [55]): keep walk-based subgraph samples fresh under an edge stream by
//! resampling only the affected walks.
//!
//! ```text
//! cargo run --release --example streaming_updates
//! ```

use sgnn::graph::generate;
use sgnn::sample::dynamic::DynamicWalks;
use std::time::Instant;

fn main() {
    let g = generate::barabasi_albert(50_000, 4, 21);
    let seeds: Vec<u32> = (0..1_000).map(|i| i * 47 % 50_000).collect();
    println!("initial graph: n={} m={}", g.num_nodes(), g.num_edges());
    let t = Instant::now();
    let mut dw = DynamicWalks::new(g, seeds, 8, 6, 22);
    println!(
        "sampled {} walks in {:?}; index valid: {:?}",
        dw.num_walks(),
        t.elapsed(),
        dw.validate().is_ok()
    );
    // Stream 200 edge insertions.
    let t = Instant::now();
    let mut touched = 0usize;
    for i in 0..200u32 {
        let u = (i * 911) % 50_000;
        let v = (i * 7919 + 13) % 50_000;
        if u != v {
            touched += dw.insert_edge(u, v);
        }
    }
    println!(
        "200 edge inserts in {:?}: {} walk refreshes total ({:.1} per insert, of {} walks)",
        t.elapsed(),
        touched,
        touched as f64 / 200.0,
        dw.num_walks()
    );
    dw.validate().expect("walks stay consistent with the updated graph");
    println!("all walks remain valid samples of the *updated* graph.");
    println!("\nThe GENTI claim in one number: maintenance cost is proportional to");
    println!("the walks an edge actually touches, not to the corpus size.");
}
