//! Heterophilous-graph pipeline (survey §3.2): when neighbors are
//! *dissimilar*, plain low-pass GNNs fail; the graph-analytics toolbox —
//! multi-channel spectral embeddings (LD2), SimRank global aggregation
//! (SIMGA), similarity rewiring (DHGR) — repairs them.
//!
//! ```text
//! cargo run --release --example heterophily_pipeline
//! ```

use sgnn::core::models::decoupled::PrecomputeMethod;
use sgnn::core::trainer::{train_decoupled, train_full_gcn, TrainConfig};
use sgnn::data::sbm_dataset;
use sgnn::sim::rewire::{rewire, RewireConfig};
use sgnn::spectral::diagnostics::edge_homophily;
use sgnn::spectral::Ld2Config;

fn main() {
    // Heterophily dial at 0.15: 85% of each node's edges leave its class.
    let ds = sbm_dataset(4_000, 4, 12.0, 0.15, 16, 0.4, 0, 0.5, 0.25, 3);
    println!(
        "heterophilous dataset: {} nodes, edge homophily {:.2}\n",
        ds.num_nodes(),
        edge_homophily(&ds.graph, &ds.labels)
    );
    let cfg = TrainConfig { epochs: 40, hidden: vec![32], ..Default::default() };

    println!("baseline GCN (low-pass only) —");
    let (_, gcn) = train_full_gcn(&ds, &cfg).unwrap();
    println!("  gcn          acc={:.3}", gcn.test_acc);

    println!("graph-free MLP (ignores the misleading edges) —");
    let (_, mlp) = train_decoupled(&ds, &PrecomputeMethod::None, &cfg).unwrap();
    println!("  mlp          acc={:.3}", mlp.test_acc);

    println!("LD2 multi-channel embedding (low ⊕ high ⊕ PPR channels) —");
    let ld2 = Ld2Config { low_hops: 2, high_hops: 2, ppr_channel: true, ..Default::default() };
    let (_, ld2r) = train_decoupled(&ds, &PrecomputeMethod::Ld2(ld2), &cfg).unwrap();
    println!("  ld2          acc={:.3}", ld2r.test_acc);

    println!("DHGR-style rewiring, then GCN on the repaired graph —");
    let (rewired, report) = rewire(
        &ds.graph,
        &ds.features,
        &RewireConfig { add_per_node: 4, drop_threshold: Some(0.2), ..Default::default() },
    );
    println!(
        "  rewired: +{} −{} edges, homophily {:.2} → {:.2}",
        report.added,
        report.removed,
        edge_homophily(&ds.graph, &ds.labels),
        edge_homophily(&rewired, &ds.labels)
    );
    let mut ds2 = ds.clone();
    ds2.graph = rewired;
    let (_, gcn2) = train_full_gcn(&ds2, &cfg).unwrap();
    println!("  gcn+rewire   acc={:.3}", gcn2.test_acc);

    println!("\nExpected shape (survey §3.2): GCN < MLP < {{LD2, rewired GCN}} —");
    println!("heterophily defeats pure low-pass aggregation, and both the");
    println!("spectral multi-channel and the similarity-rewiring repair it.");
}
