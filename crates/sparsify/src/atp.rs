//! ATP-style degree-aware augmented propagation.
//!
//! ATP [20] "discovers that the propagation performance is related with
//! the node degree" and "designs an augmented propagation by
//! distinguishing nodes of high and low degrees": hub nodes mix too many
//! (often noisy) messages, so their outgoing influence is dampened, while
//! low-degree nodes propagate normally. We implement the masking as a
//! reweighted operator `w'_{uv} = w_{uv}·min(1, (τ/d_v)^β)` (dampen
//! contributions *from* high-degree sources), plus ATP's positional
//! encoding: per-node `[log-degree, PPR self-importance]` features that
//! restore the identity information masking removes.

use sgnn_graph::{CsrGraph, NodeId};
use sgnn_linalg::DenseMatrix;

/// Builds the degree-masked operator: contributions from sources with
/// degree above `tau` are scaled by `(tau/d_v)^beta`.
pub fn degree_masked_operator(op: &CsrGraph, tau: f64, beta: f64) -> CsrGraph {
    assert!(tau > 0.0 && beta >= 0.0);
    let degs: Vec<usize> = op.degrees();
    let mut weights = Vec::with_capacity(op.num_edges());
    for u in 0..op.num_nodes() {
        for e in op.indptr()[u]..op.indptr()[u + 1] {
            let v = op.indices()[e] as usize;
            let dv = degs[v].max(1) as f64;
            let scale = (tau / dv).min(1.0).powf(beta);
            weights.push(op.weight_at(e) * scale as f32);
        }
    }
    op.with_weights(weights).expect("weights parallel to edges")
}

/// ATP's identity/positional encoding: `[log(1+deg), ppr_self]` per node,
/// where `ppr_self` is the node's PPR mass on itself (a local-centrality
/// signal obtained from a cheap push).
pub fn positional_encoding(g: &CsrGraph, alpha: f64, eps: f64) -> DenseMatrix {
    let n = g.num_nodes();
    let mut out = DenseMatrix::zeros(n, 2);
    for u in 0..n {
        out.set(u, 0, ((1 + g.degree(u as NodeId)) as f32).ln());
    }
    // Self-PPR via forward push per node would be O(n·push); the self mass
    // is dominated by α plus short return walks, so a shallow push
    // suffices.
    for u in 0..n as NodeId {
        let (p, _) = sgnn_prop::push::forward_push(g, u, alpha, eps);
        out.set(u as usize, 1, p[u as usize] as f32);
    }
    out
}

/// Degree-masked `k`-hop propagation with appended positional encoding:
/// the full ATP pipeline (`masked Â^k X ∥ PE`).
pub fn atp_embed(
    g: &CsrGraph,
    op: &CsrGraph,
    x: &DenseMatrix,
    k: usize,
    tau: f64,
    beta: f64,
) -> DenseMatrix {
    let masked = degree_masked_operator(op, tau, beta);
    let h = sgnn_prop::power::power_propagate(&masked, x, k);
    let pe = positional_encoding(g, 0.15, 1e-4);
    h.concat_cols(&pe).expect("row counts equal")
}

#[cfg(test)]
mod tests {
    use super::*;
    use sgnn_graph::generate;
    use sgnn_graph::normalize::{normalized_adjacency, NormKind};

    #[test]
    fn masking_leaves_low_degree_edges_unchanged() {
        let g = generate::chain(10); // degrees ≤ 2
        let op = normalized_adjacency(&g, NormKind::Rw, false).unwrap();
        let masked = degree_masked_operator(&op, 5.0, 1.0);
        assert_eq!(op.weights(), masked.weights());
    }

    #[test]
    fn masking_dampens_hub_contributions() {
        let g = generate::star(50);
        let op = normalized_adjacency(&g, NormKind::Rw, false).unwrap();
        let masked = degree_masked_operator(&op, 5.0, 1.0);
        // Leaf 1's only in-edge comes from hub 0 (degree 49): scaled by
        // 5/49.
        let orig = op.weights_of(1).unwrap()[0];
        let new = masked.weights_of(1).unwrap()[0];
        assert!((new / orig - 5.0 / 49.0).abs() < 1e-5, "ratio {}", new / orig);
    }

    #[test]
    fn beta_zero_is_identity() {
        let g = generate::barabasi_albert(100, 3, 1);
        let op = normalized_adjacency(&g, NormKind::Sym, true).unwrap();
        let masked = degree_masked_operator(&op, 2.0, 0.0);
        assert_eq!(op.weights(), masked.weights());
    }

    #[test]
    fn positional_encoding_separates_hub_from_leaf() {
        let g = generate::star(30);
        let pe = positional_encoding(&g, 0.2, 1e-6);
        // Hub has larger log-degree; leaf has larger self-PPR? Hub returns
        // quickly to itself too — but a leaf's walk must pass the hub, so
        // hub self-mass ≥ leaf's.
        assert!(pe.get(0, 0) > pe.get(5, 0));
        assert!(pe.get(0, 1) > 0.0 && pe.get(5, 1) > 0.0);
    }

    #[test]
    fn atp_embedding_shape_and_hub_influence() {
        let g = generate::barabasi_albert(200, 4, 2);
        let op = normalized_adjacency(&g, NormKind::Rw, true).unwrap();
        let x = DenseMatrix::gaussian(200, 3, 1.0, 3);
        let emb = atp_embed(&g, &op, &x, 2, 8.0, 1.0);
        assert_eq!(emb.shape(), (200, 5));
        // Hub's influence on the embedding is reduced vs unmasked: perturb
        // the hub's features and compare output change.
        let hub = (0..200u32).max_by_key(|&u| g.degree(u)).unwrap();
        let mut x2 = x.clone();
        for c in 0..3 {
            x2.set(hub as usize, c, x.get(hub as usize, c) + 10.0);
        }
        let emb2 = atp_embed(&g, &op, &x2, 2, 8.0, 1.0);
        let masked_delta = emb2.sub(&emb).unwrap().frobenius();
        let plain = sgnn_prop::power::power_propagate(&op, &x, 2);
        let plain2 = sgnn_prop::power::power_propagate(&op, &x2, 2);
        let plain_delta = plain2.sub(&plain).unwrap().frobenius();
        assert!(
            masked_delta < plain_delta,
            "masked hub influence {masked_delta} !< plain {plain_delta}"
        );
    }
}
