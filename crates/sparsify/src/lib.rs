//! # sgnn-sparsify
//!
//! Graph sparsification — the survey's §3.3.1: remove edges (or skip
//! entry-wise work) "while preserving important properties", buying both
//! effectiveness (drop harmful connections) and efficiency (less
//! propagation work).
//!
//! - [`unifews`] — Unifews [25]-style *entry-wise* sparsification: the
//!   propagation loop itself skips edge contributions below a threshold,
//!   so pruning costs nothing extra and adapts per layer.
//! - [`prune`] — one-shot graph sparsifiers: weight threshold, per-node
//!   top-k, and a degree-based effective-resistance-proxy *spectral*
//!   sparsifier with reweighting.
//! - [`atp`] — ATP [20]-style degree-aware propagation masking: dampen
//!   high-degree hubs during propagation to fix their over-mixing.
//! - [`nigcn`] — NIGCN [14]-style node-wise diffusion: per-target sampled
//!   expansion with heat-kernel hop weights, linear in the sample budget
//!   and independent of graph size.

// Numeric kernels index several parallel flat buffers at once; iterator
// rewrites obscure them. Config-style constructors take their full
// parameter list deliberately (documented, stable).
#![allow(clippy::needless_range_loop, clippy::too_many_arguments)]

pub mod atp;
pub mod nigcn;
pub mod prune;
pub mod unifews;

pub use prune::{spectral_sparsify, threshold_prune, topk_prune};
pub use unifews::{unifews_propagate, UnifewsStats};
