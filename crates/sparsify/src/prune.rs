//! One-shot graph sparsifiers.
//!
//! Three classic schemes the surveyed systems build on:
//! - [`threshold_prune`] — drop edges with weight below a cutoff.
//! - [`topk_prune`] — keep each node's k strongest edges (fine-grained,
//!   preserves node identity as §3.3.1 requires).
//! - [`spectral_sparsify`] — importance-sample edges with probability
//!   proportional to `w_e·(1/d_u + 1/d_v)` — the standard upper bound on
//!   effective resistance — and reweight kept edges by `1/p_e` so the
//!   Laplacian quadratic form is preserved in expectation.

use rand::RngExt;
use sgnn_graph::{CsrGraph, GraphBuilder, NodeId};

/// Keeps edges with `|w| >= cutoff`. Unweighted graphs pass through
/// unchanged for `cutoff <= 1`.
pub fn threshold_prune(g: &CsrGraph, cutoff: f32) -> CsrGraph {
    let mut b = GraphBuilder::new(g.num_nodes());
    for (u, v, w) in g.edges() {
        if w.abs() >= cutoff {
            b.add_weighted_edge(u, v, w);
        }
    }
    b.build().expect("ids valid")
}

/// Keeps each node's `k` largest-weight out-edges (ties by smaller id).
pub fn topk_prune(g: &CsrGraph, k: usize) -> CsrGraph {
    let mut b = GraphBuilder::new(g.num_nodes());
    let mut row: Vec<(f32, NodeId)> = Vec::new();
    for u in 0..g.num_nodes() as NodeId {
        row.clear();
        let (lo, hi) = (g.indptr()[u as usize], g.indptr()[u as usize + 1]);
        for e in lo..hi {
            row.push((g.weight_at(e), g.indices()[e]));
        }
        row.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap().then(a.1.cmp(&b.1)));
        for &(w, v) in row.iter().take(k) {
            b.add_weighted_edge(u, v, w);
        }
    }
    b.build().expect("ids valid")
}

/// Spectral sparsification by degree-proxy importance sampling.
///
/// Samples `target_edges` undirected edges (with replacement, duplicates
/// merge) with `p_e ∝ w_e·(1/d_u + 1/d_v)`; each kept edge is reweighted
/// by `w_e/(target_edges·p_e)` (divided by the number of draws merging
/// into it happens automatically since weights sum). The result preserves
/// `x^T L x` in expectation — checked on random signals in tests.
pub fn spectral_sparsify(g: &CsrGraph, target_edges: usize, seed: u64) -> CsrGraph {
    let mut edges: Vec<(NodeId, NodeId, f32)> = Vec::new();
    let mut probs: Vec<f64> = Vec::new();
    // Weighted degrees.
    let n = g.num_nodes();
    let mut deg = vec![0f64; n];
    for (u, _, w) in g.edges() {
        deg[u as usize] += w as f64;
    }
    for (u, v, w) in g.edges() {
        if u < v {
            edges.push((u, v, w));
            let p =
                w as f64 * (1.0 / deg[u as usize].max(1e-12) + 1.0 / deg[v as usize].max(1e-12));
            probs.push(p);
        }
    }
    let total: f64 = probs.iter().sum();
    if total <= 0.0 || edges.is_empty() {
        return CsrGraph::empty(n);
    }
    for p in probs.iter_mut() {
        *p /= total;
    }
    let mut rng = sgnn_linalg::rng::seeded(seed);
    let mut b = GraphBuilder::new(n).symmetric();
    let q = target_edges as f64;
    // Cumulative table for O(log m) draws.
    let mut cum = Vec::with_capacity(probs.len());
    let mut acc = 0f64;
    for &p in &probs {
        acc += p;
        cum.push(acc);
    }
    for _ in 0..target_edges {
        let r: f64 = rng.random::<f64>() * acc;
        let i = cum.partition_point(|&c| c < r).min(edges.len() - 1);
        let (u, v, w) = edges[i];
        b.add_weighted_edge(u, v, (w as f64 / (q * probs[i])) as f32);
    }
    b.build().expect("ids valid")
}

/// Laplacian quadratic form `x^T L x = ½Σ w_uv (x_u − x_v)²` — the quantity
/// spectral sparsifiers preserve.
pub fn quadratic_form(g: &CsrGraph, x: &[f32]) -> f64 {
    let mut acc = 0f64;
    for (u, v, w) in g.edges() {
        let d = (x[u as usize] - x[v as usize]) as f64;
        acc += w as f64 * d * d;
    }
    acc / 2.0
}

#[cfg(test)]
mod tests {
    use super::*;
    use sgnn_graph::generate;

    #[test]
    fn threshold_keeps_strong_edges_only() {
        let g = sgnn_graph::GraphBuilder::new(3)
            .weighted_edges(&[(0, 1, 0.9), (1, 2, 0.1)])
            .build()
            .unwrap();
        let s = threshold_prune(&g, 0.5);
        assert!(s.has_edge(0, 1));
        assert!(!s.has_edge(1, 2));
    }

    #[test]
    fn topk_bounds_degree() {
        let g = generate::barabasi_albert(300, 6, 1);
        let w = sgnn_graph::normalize::normalized_adjacency(&g, sgnn_graph::NormKind::Sym, false)
            .unwrap();
        let s = topk_prune(&w, 4);
        assert!(s.max_degree() <= 4);
        // Kept edges are each node's strongest.
        for u in 0..300u32 {
            if g.degree(u) <= 4 {
                assert_eq!(s.degree(u), g.degree(u));
            }
        }
    }

    #[test]
    fn spectral_sparsifier_halves_edges_keeps_energy() {
        let (g, _) = generate::planted_partition(1_000, 2, 16.0, 0.7, 2);
        let m_half = g.num_edges() / 4; // undirected target = half of m/2
        let s = spectral_sparsify(&g, m_half, 3);
        assert!(s.num_edges() < g.num_edges());
        // Quadratic form preserved within a modest factor on random
        // signals (sampling ratio is aggressive, so allow slack).
        let mut rng = sgnn_linalg::rng::seeded(4);
        for trial in 0..5 {
            let mut x = vec![0f32; 1_000];
            sgnn_linalg::rng::fill_gaussian(&mut rng, &mut x, 0.0, 1.0);
            let orig = quadratic_form(&g, &x);
            let spars = quadratic_form(&s, &x);
            let ratio = spars / orig;
            assert!((0.6..1.5).contains(&ratio), "trial {trial}: energy ratio {ratio}");
        }
    }

    #[test]
    fn sparsifier_energy_is_unbiased_over_seeds() {
        let g = generate::erdos_renyi(300, 0.06, false, 5);
        let mut x = vec![0f32; 300];
        sgnn_linalg::rng::fill_gaussian(&mut sgnn_linalg::rng::seeded(6), &mut x, 0.0, 1.0);
        let orig = quadratic_form(&g, &x);
        let mut acc = 0f64;
        let reps = 60;
        for s in 0..reps {
            let sp = spectral_sparsify(&g, g.num_edges() / 4, s);
            acc += quadratic_form(&sp, &x);
        }
        let mean = acc / reps as f64;
        let rel = (mean - orig).abs() / orig;
        assert!(rel < 0.05, "relative bias {rel}");
    }

    #[test]
    fn empty_and_degenerate_inputs() {
        let g = CsrGraph::empty(5);
        let s = spectral_sparsify(&g, 10, 1);
        assert_eq!(s.num_edges(), 0);
        let t = threshold_prune(&g, 0.1);
        assert_eq!(t.num_nodes(), 5);
    }
}
