//! Unifews-style entry-wise sparsified propagation.
//!
//! Unifews [25] "formulates the layer-dependent propagation as spectral
//! sparsification with approximation bounds … the edge pruning scheme
//! provides personalized maneuver while prevents additional computation
//! overhead". The operational core: during each propagation hop, an edge
//! contribution is *skipped* when its magnitude `|w_uv|·‖x_v‖` falls below
//! a threshold `δ` — pruning decisions are made inline with the SpMM, so
//! sparsification is free, layer-adaptive (later hops have smoother,
//! smaller-entry signals → prune more), and entry-personalized.

use sgnn_graph::CsrGraph;
use sgnn_linalg::DenseMatrix;

/// Work/pruning statistics of a Unifews propagation run.
#[derive(Debug, Clone, Default)]
pub struct UnifewsStats {
    /// Edge contributions evaluated (kept) per hop.
    pub kept_per_hop: Vec<u64>,
    /// Edge contributions skipped per hop.
    pub pruned_per_hop: Vec<u64>,
}

impl UnifewsStats {
    /// Overall fraction of edge work skipped.
    pub fn prune_ratio(&self) -> f64 {
        let kept: u64 = self.kept_per_hop.iter().sum();
        let pruned: u64 = self.pruned_per_hop.iter().sum();
        let total = kept + pruned;
        if total == 0 {
            0.0
        } else {
            pruned as f64 / total as f64
        }
    }
}

/// `k`-hop propagation `Â^k X` with inline entry-wise pruning at threshold
/// `delta` (skip edge `(u,v)` when `|w_uv|·‖x_v‖₂ < delta`).
///
/// `delta = 0` reproduces exact propagation. Larger `delta` skips more
/// work; the deviation from exact `Â^k X` grows at most linearly in
/// `delta·k·√deg` (each row drops at most `deg` contributions of magnitude
/// `< delta` per hop) — the shape of Unifews' bound, checked in tests.
pub fn unifews_propagate(
    op: &CsrGraph,
    x: &DenseMatrix,
    k: usize,
    delta: f32,
) -> (DenseMatrix, UnifewsStats) {
    let n = op.num_nodes();
    assert_eq!(x.rows(), n);
    let d = x.cols();
    let mut h = x.clone();
    let mut stats = UnifewsStats::default();
    let mut row_norms = vec![0f32; n];
    for _hop in 0..k {
        // Precompute source-row norms once per hop.
        for (u, norm) in row_norms.iter_mut().enumerate() {
            *norm = sgnn_linalg::vecops::norm2(h.row(u));
        }
        let mut next = DenseMatrix::zeros(n, d);
        let mut kept = 0u64;
        let mut pruned = 0u64;
        let indptr = op.indptr();
        let indices = op.indices();
        for u in 0..n {
            let out = next.row_mut(u);
            for e in indptr[u]..indptr[u + 1] {
                let v = indices[e] as usize;
                let w = op.weight_at(e);
                if w.abs() * row_norms[v] < delta {
                    pruned += 1;
                    continue;
                }
                kept += 1;
                sgnn_linalg::vecops::axpy(w, h.row(v), out);
            }
        }
        stats.kept_per_hop.push(kept);
        stats.pruned_per_hop.push(pruned);
        h = next;
    }
    (h, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sgnn_graph::generate;
    use sgnn_graph::normalize::{normalized_adjacency, NormKind};
    use sgnn_prop::power::power_propagate;

    fn setup(n: usize, seed: u64) -> (CsrGraph, DenseMatrix) {
        let g = generate::barabasi_albert(n, 5, seed);
        let a = normalized_adjacency(&g, NormKind::Sym, true).unwrap();
        let x = DenseMatrix::gaussian(n, 8, 1.0, seed + 1);
        (a, x)
    }

    #[test]
    fn zero_threshold_is_exact() {
        let (a, x) = setup(300, 1);
        let (h, stats) = unifews_propagate(&a, &x, 3, 0.0);
        let exact = power_propagate(&a, &x, 3);
        let diff = h.sub(&exact).unwrap().frobenius();
        assert!(diff < 1e-4, "diff {diff}");
        assert_eq!(stats.prune_ratio(), 0.0);
    }

    #[test]
    fn larger_threshold_prunes_more() {
        let (a, x) = setup(500, 2);
        let (_, s1) = unifews_propagate(&a, &x, 2, 0.01);
        let (_, s2) = unifews_propagate(&a, &x, 2, 0.08);
        assert!(s2.prune_ratio() > s1.prune_ratio());
        assert!(s2.prune_ratio() > 0.0);
    }

    #[test]
    fn error_grows_slowly_with_threshold() {
        let (a, x) = setup(400, 3);
        let exact = power_propagate(&a, &x, 2);
        let rel_err = |delta: f32| {
            let (h, _) = unifews_propagate(&a, &x, 2, delta);
            h.sub(&exact).unwrap().frobenius() / exact.frobenius()
        };
        let e_small = rel_err(0.005);
        let e_big = rel_err(0.05);
        assert!(e_small < e_big);
        // Even aggressive pruning keeps the embedding in the right
        // ballpark (the Unifews claim: pruned propagation ≈ exact).
        assert!(e_big < 0.5, "relative error {e_big}");
        assert!(e_small < 0.05, "relative error {e_small}");
    }

    #[test]
    fn later_hops_prune_more_as_signal_smooths() {
        // Propagation smooths the signal; with sym normalization entry
        // magnitudes shrink, so the same δ prunes a larger share later.
        let (a, x) = setup(600, 4);
        let (_, stats) = unifews_propagate(&a, &x, 4, 0.03);
        let ratio = |i: usize| {
            stats.pruned_per_hop[i] as f64
                / (stats.pruned_per_hop[i] + stats.kept_per_hop[i]).max(1) as f64
        };
        assert!(
            ratio(3) >= ratio(0),
            "hop3 {} should prune at least as much as hop0 {}",
            ratio(3),
            ratio(0)
        );
    }

    #[test]
    fn pruned_work_reduces_measured_ops() {
        let (a, x) = setup(400, 5);
        let (_, stats) = unifews_propagate(&a, &x, 2, 0.05);
        let kept: u64 = stats.kept_per_hop.iter().sum();
        let total = 2 * a.num_edges() as u64;
        assert!(kept < total, "kept {kept} of {total}");
    }
}
