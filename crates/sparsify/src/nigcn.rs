//! NIGCN-style node-wise diffusion with neighbor sampling.
//!
//! NIGCN [14] "achieves node- and layer-dependent propagation by
//! controlling individual weight parameter during summation" and "employs
//! efficient neighbor sampling technique to approximate the decoupled
//! embedding with linear complexity". The pipeline implemented here:
//!
//! For each *target* node independently, expand a sampled diffusion tree:
//! hop `h` carries heat-kernel weight `θ_h = e^{-t} t^h/h!`, and at each
//! hop only `s` random neighbors per frontier node are expanded. The
//! estimator is unbiased for the random-walk diffusion `Σ_h θ_h (D^{-1}A)^h
//! x` and its cost is `O(targets · Σ_h s^h)` — independent of `n` and `m`,
//! which is the point: inference for a handful of nodes does not touch the
//! whole graph.

use rand::RngExt;
use sgnn_graph::{CsrGraph, NodeId};
use sgnn_linalg::DenseMatrix;

/// Per-target sampled diffusion embedding.
///
/// Returns a `targets.len() × x.cols()` matrix estimating
/// `Σ_{h=0..=hops} θ_h (D^{-1}A)^h x` at each target, where `θ` are
/// heat-kernel coefficients for diffusion time `t`.
pub fn nigcn_embed(
    g: &CsrGraph,
    x: &DenseMatrix,
    targets: &[NodeId],
    hops: usize,
    samples_per_hop: usize,
    t: f64,
    seed: u64,
) -> DenseMatrix {
    let theta = sgnn_prop::heat::heat_coefficients(t, hops);
    let d = x.cols();
    let mut out = DenseMatrix::zeros(targets.len(), d);
    let mut rng = sgnn_linalg::rng::seeded(seed);
    // Frontier as (node, multiplicity-weight) pairs; sampled walks keep the
    // estimator unbiased: at each hop, the expectation over a uniform
    // neighbor equals the row-stochastic step.
    let mut frontier: Vec<(NodeId, f32)> = Vec::new();
    let mut next: Vec<(NodeId, f32)> = Vec::new();
    for (ti, &target) in targets.iter().enumerate() {
        frontier.clear();
        frontier.push((target, 1.0));
        // Hop 0 contribution.
        let row = out.row_mut(ti);
        sgnn_linalg::vecops::axpy(theta[0] as f32, x.row(target as usize), row);
        for &th in theta.iter().skip(1) {
            next.clear();
            for &(u, w) in &frontier {
                let neigh = g.neighbors(u);
                if neigh.is_empty() {
                    // Dangling: diffusion mass stays (self absorb).
                    next.push((u, w));
                    continue;
                }
                let s = samples_per_hop.min(neigh.len());
                let picks = sgnn_linalg::rng::sample_distinct(&mut rng, neigh.len(), s);
                let share = w / s as f32;
                for i in picks {
                    next.push((neigh[i], share));
                }
            }
            let row = out.row_mut(ti);
            for &(v, w) in &next {
                sgnn_linalg::vecops::axpy(th as f32 * w, x.row(v as usize), row);
            }
            std::mem::swap(&mut frontier, &mut next);
        }
        let _ = rng.random::<u32>(); // decorrelate targets
    }
    out
}

/// Exact reference: `Σ_h θ_h (D^{-1}A)^h x` restricted to targets.
pub fn exact_diffusion(
    g: &CsrGraph,
    x: &DenseMatrix,
    targets: &[NodeId],
    hops: usize,
    t: f64,
) -> DenseMatrix {
    let op = sgnn_graph::normalize::normalized_adjacency(g, sgnn_graph::NormKind::Rw, false)
        .expect("valid graph");
    let full = sgnn_prop::heat::heat_propagate(&op, x, t, hops);
    full.gather_rows(&targets.iter().map(|&u| u as usize).collect::<Vec<_>>())
}

#[cfg(test)]
mod tests {
    use super::*;
    use sgnn_graph::generate;

    #[test]
    fn full_fanout_matches_exact_diffusion() {
        // With samples_per_hop ≥ max degree, the estimator is exact.
        let g = generate::erdos_renyi(60, 0.08, false, 1);
        let x = DenseMatrix::gaussian(60, 3, 1.0, 2);
        let targets: Vec<NodeId> = vec![0, 7, 33];
        let est = nigcn_embed(&g, &x, &targets, 3, 60, 1.5, 3);
        let exact = exact_diffusion(&g, &x, &targets, 3, 1.5);
        let rel = est.sub(&exact).unwrap().frobenius() / exact.frobenius();
        assert!(rel < 1e-4, "relative {rel}");
    }

    #[test]
    fn sampled_estimate_is_unbiased() {
        let g = generate::barabasi_albert(150, 5, 4);
        let x = DenseMatrix::gaussian(150, 1, 1.0, 5);
        let targets: Vec<NodeId> = vec![11];
        let exact = exact_diffusion(&g, &x, &targets, 3, 2.0);
        let mut acc = 0f64;
        let reps = 3000;
        for s in 0..reps {
            let est = nigcn_embed(&g, &x, &targets, 3, 2, 2.0, s);
            acc += est.get(0, 0) as f64;
        }
        let mean = acc / reps as f64;
        assert!(
            (mean - exact.get(0, 0) as f64).abs() < 0.05,
            "mean {mean} vs exact {}",
            exact.get(0, 0)
        );
    }

    #[test]
    fn work_is_independent_of_graph_size() {
        // Same targets/hops/samples on a 10x larger graph must not expand
        // more nodes: verified by timing proxy — count via small fanout
        // bound s + s² + s³.
        let small = generate::barabasi_albert(1_000, 4, 6);
        let large = generate::barabasi_albert(10_000, 4, 6);
        let xs = DenseMatrix::gaussian(1_000, 4, 1.0, 7);
        let xl = DenseMatrix::gaussian(10_000, 4, 1.0, 7);
        // Just exercise both: the API takes targets only; the expansion
        // bound is structural. Check outputs are finite and shaped.
        let ts: Vec<NodeId> = vec![1, 2, 3];
        let es = nigcn_embed(&small, &xs, &ts, 3, 3, 1.0, 8);
        let el = nigcn_embed(&large, &xl, &ts, 3, 3, 1.0, 8);
        assert_eq!(es.shape(), (3, 4));
        assert_eq!(el.shape(), (3, 4));
        assert!(el.data().iter().all(|v| v.is_finite()));
    }

    #[test]
    fn dangling_nodes_absorb_mass() {
        let g = sgnn_graph::GraphBuilder::new(2).edges(&[(0, 1)]).build().unwrap();
        let x = DenseMatrix::from_rows(&[&[0.0], &[1.0]]);
        // All diffusion mass beyond hop 1 sits at node 1.
        let est = nigcn_embed(&g, &x, &[0], 5, 4, 3.0, 9);
        let theta = sgnn_prop::heat::heat_coefficients(3.0, 5);
        let expect: f64 = theta[1..].iter().sum(); // every hop ≥1 lands on node 1
        assert!((est.get(0, 0) as f64 - expect).abs() < 1e-5);
    }
}
