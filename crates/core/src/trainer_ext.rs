//! Extension trainers: historical-embedding training (HDSGNN [21] /
//! GNNAutoScale lineage) and SEIGNN [29]-style coarse-node-augmented
//! mini-batching.
//!
//! Both answer the same §3.3.2/§3.2.3 question — *how does a mini-batch
//! see beyond its own boundary without recursive expansion?* — with the
//! two surveyed mechanisms: cached (stale) out-of-batch embeddings, and a
//! coarse summary layer every batch can reach.

use crate::error::TrainResult;
use crate::models::gcn::{gcn_operator, Gcn, GcnConfig};
use crate::trainer::{build_ledger, ensure_classes, poll_epoch_kill, TrainConfig, TrainReport};
use sgnn_data::Dataset;
use sgnn_graph::NodeId;
use sgnn_linalg::DenseMatrix;
use sgnn_nn::layers::{Linear, ReLU};
use sgnn_nn::loss::{accuracy, softmax_cross_entropy};
use sgnn_nn::optim::{Adam, Optimizer};
use sgnn_obs::{Phase, PhaseBreakdown};
use sgnn_sample::node_wise::sample_blocks;
use sgnn_sample::HistoryCache;
use std::time::Instant;

fn rows_of(nodes: &[NodeId]) -> Vec<usize> {
    nodes.iter().map(|&u| u as usize).collect()
}

/// Statistics specific to the history trainer.
#[derive(Debug, Clone, Default)]
pub struct HistoryStats {
    /// Cache hit rate over all out-of-batch fetches.
    pub hit_rate: f64,
    /// Mean staleness (iterations) of served embeddings.
    pub mean_age: f64,
}

/// Trains a 2-layer GNN where the second layer's out-of-batch inputs come
/// from a historical-embedding cache instead of recursive sampling.
///
/// The computation graph per batch is **one** sampled hop regardless of
/// depth; the price is staleness, which the returned [`HistoryStats`]
/// quantifies.
pub fn train_history(
    ds: &Dataset,
    fanout: usize,
    cfg: &TrainConfig,
) -> TrainResult<(TrainReport, HistoryStats)> {
    ensure_classes(ds)?;
    let hidden = *cfg.hidden.first().unwrap_or(&32);
    let d = ds.feature_dim();
    let n = ds.num_nodes();
    let mut ledger = build_ledger(cfg);
    ledger.try_alloc(ds.features.nbytes())?;
    let cache = HistoryCache::new(n, hidden);
    ledger.try_alloc(cache.nbytes())?;
    // Layer 1: features → hidden; layer 2: hidden → classes.
    let mut self1 = Linear::new(d, hidden, cfg.seed);
    let mut neigh1 = Linear::new(d, hidden, cfg.seed + 1);
    let mut relu1 = ReLU::new();
    let mut self2 = Linear::new(hidden, ds.num_classes, cfg.seed + 2);
    let mut neigh2 = Linear::new(hidden, ds.num_classes, cfg.seed + 3);
    let mut opt = Adam::new(cfg.lr).with_weight_decay(cfg.weight_decay);
    let mut in_train = vec![false; n];
    for &u in &ds.splits.train {
        in_train[u as usize] = true;
    }
    let mut iter = 0u64;
    let mut fetches = 0u64;
    let mut hits = 0u64;
    let mut age_sum = 0f64;
    let t1 = Instant::now();
    let mut final_loss = 0f32;
    // Aggregation scratch reused across every batch of every epoch.
    let mut agg1 = DenseMatrix::default();
    let mut agg2 = DenseMatrix::default();
    // GAS-style schedule: batches cover *every* node (so each node's
    // history refreshes once per epoch); the loss only uses train members.
    let mut schedule: Vec<NodeId> = (0..n as NodeId).collect();
    let mut phases = PhaseBreakdown::new();
    for epoch in 0..cfg.epochs {
        poll_epoch_kill(cfg, epoch)?;
        let _ep = sgnn_obs::span!("trainer.epoch");
        // Deterministic reshuffle per epoch.
        let mut rng = sgnn_linalg::rng::seeded(cfg.seed.wrapping_add(epoch as u64));
        for i in (1..schedule.len()).rev() {
            use rand::RngExt;
            let j = rng.random_range(0..=i);
            schedule.swap(i, j);
        }
        for (bi, chunk) in schedule.chunks(cfg.batch_size).enumerate() {
            iter += 1;
            let seed = cfg.seed.wrapping_add((epoch * 7919 + bi) as u64);
            let (blocks, blocks1, x_src1, x_batch) = phases.time(Phase::Sample, || {
                // One sampled hop for layer 2's neighborhood.
                let blocks = sample_blocks(&ds.graph, chunk, &[fanout], seed);
                // Fresh layer-1 activations for the *batch* nodes only.
                let blocks1 = sample_blocks(&ds.graph, chunk, &[fanout], seed ^ 0xABCD);
                let x_src1 = ds.features.gather_rows(&rows_of(&blocks1[0].src));
                let x_batch = ds.features.gather_rows(&rows_of(chunk));
                (blocks, blocks1, x_src1, x_batch)
            });
            let block = &blocks[0];
            let b1 = &blocks1[0];
            let (h1_batch, h1_src, logits) = phases.time(Phase::Forward, || {
                agg1.reshape_scratch(b1.num_dst(), x_src1.cols());
                b1.aggregate_into(&x_src1, &mut agg1);
                let mut z1 = self1.forward(&x_batch);
                let z1n = neigh1.forward(&agg1);
                z1.add_scaled(1.0, &z1n).expect("shapes fixed");
                let h1_batch = relu1.forward(&z1);
                // Layer-2 inputs: fresh h1 for the batch prefix, cached h1
                // for the out-of-batch sources (stop-gradient).
                let (cached, hit, age) = cache.fetch_batch(&block.src[chunk.len()..], iter);
                fetches += (block.src.len() - chunk.len()) as u64;
                hits += hit as u64;
                age_sum += age * hit as f64;
                let h1_src = h1_batch.concat_rows(&cached).expect("widths equal");
                agg2.reshape_scratch(block.num_dst(), h1_src.cols());
                block.aggregate_into(&h1_src, &mut agg2);
                let mut logits = self2.forward(&h1_batch);
                let l2n = neigh2.forward(&agg2);
                logits.add_scaled(1.0, &l2n).expect("shapes fixed");
                (h1_batch, h1_src, logits)
            });
            // Loss over the chunk's train members only; other rows get
            // zero gradient (their forward still refreshes the cache).
            let weights: Vec<f32> =
                chunk.iter().map(|&u| if in_train[u as usize] { 1.0 } else { 0.0 }).collect();
            if weights.iter().all(|&w| w == 0.0) {
                cache.push_batch(chunk, iter, &h1_batch);
                continue;
            }
            let (loss, dl) = phases.time(Phase::Forward, || {
                softmax_cross_entropy(&logits, &ds.labels_of(chunk), Some(&weights))
            });
            final_loss = loss;
            phases.time(Phase::Backward, || {
                for l in [&mut self1, &mut neigh1, &mut self2, &mut neigh2] {
                    l.zero_grad();
                }
                let d_h1_direct = self2.backward(&dl);
                let d_agg2 = neigh2.backward(&dl);
                let d_h1_src = block.aggregate_backward(&d_agg2);
                // Only the fresh prefix is differentiable; cached rows are
                // constants.
                let mut d_h1 = d_h1_direct;
                for r in 0..chunk.len() {
                    sgnn_linalg::vecops::axpy(1.0, d_h1_src.row(r), d_h1.row_mut(r));
                }
                let d_z1 = relu1.backward(&d_h1);
                let _ = self1.backward(&d_z1);
                let _ = neigh1.backward(&d_z1);
            });
            phases.time(Phase::Step, || {
                let mut slot = 0usize;
                for l in [&mut self1, &mut neigh1, &mut self2, &mut neigh2] {
                    l.visit_params(&mut |p, g| {
                        opt.update(slot, p, g);
                        slot += 1;
                    });
                }
                opt.step_done();
            });
            // Refresh the cache with this batch's fresh activations.
            cache.push_batch(chunk, iter, &h1_batch);
            ledger.try_transient(
                x_src1.nbytes() + h1_src.nbytes() + 2 * h1_batch.nbytes() + agg2.nbytes(),
            )?;
        }
        sgnn_obs::mark_epoch(epoch as u64);
    }
    let train_secs = t1.elapsed().as_secs_f64();
    // Inference: exact 2-hop with wide fanout (no cache).
    let eval = |nodes: &[NodeId]| -> f64 {
        let mut correct = 0usize;
        for chunk in nodes.chunks(1024) {
            let blocks = sample_blocks(&ds.graph, chunk, &[25, 25], 777);
            // Layer 1 over the inner block.
            let inner = &blocks[0];
            let x_in = ds.features.gather_rows(&rows_of(&inner.src));
            let agg1 = inner.aggregate(&x_in);
            let x_dst = ds.features.gather_rows(&rows_of(&inner.dst));
            let mut z1 = self1.forward_inference(&x_dst);
            z1.add_scaled(1.0, &neigh1.forward_inference(&agg1)).expect("shapes");
            let h1 = relu1.forward_inference(&z1);
            // Layer 2 over the outer block.
            let outer = &blocks[1];
            let agg2 = outer.aggregate(&h1);
            let h1_batch = h1.gather_rows(&(0..outer.num_dst()).collect::<Vec<_>>());
            let mut logits = self2.forward_inference(&h1_batch);
            logits.add_scaled(1.0, &neigh2.forward_inference(&agg2)).expect("shapes");
            let labels = ds.labels_of(chunk);
            correct +=
                logits.argmax_rows().iter().zip(labels.iter()).filter(|&(p, t)| p == t).count();
        }
        correct as f64 / nodes.len().max(1) as f64
    };
    let val_acc = eval(&ds.splits.val);
    let test_acc = eval(&ds.splits.test);
    let stats = HistoryStats {
        hit_rate: hits as f64 / fetches.max(1) as f64,
        mean_age: if hits > 0 { age_sum / hits as f64 } else { 0.0 },
    };
    sgnn_obs::export_now();
    let report = TrainReport {
        name: "history-cache".into(),
        test_acc,
        val_acc,
        final_loss,
        precompute_secs: 0.0,
        train_secs,
        peak_mem_bytes: ledger.peak(),
        epochs_run: cfg.epochs,
        phases,
    };
    Ok((report, stats))
}

/// SEIGNN-style training: partition into subgraphs, add linked coarse
/// nodes, and train GCN batches of (one subgraph + all coarse nodes) so
/// inter-subgraph information keeps flowing.
pub fn train_seignn(ds: &Dataset, parts: usize, cfg: &TrainConfig) -> TrainResult<TrainReport> {
    ensure_classes(ds)?;
    let mut ledger = build_ledger(cfg);
    let t0 = Instant::now();
    let p = sgnn_partition::multilevel_partition(
        &ds.graph,
        parts,
        &sgnn_partition::multilevel::MultilevelConfig { seed: cfg.seed, ..Default::default() },
    );
    let aug = sgnn_coarsen::seignn::augment(&ds.graph, &p);
    let ax = aug.augment_features(&ds.features);
    let precompute_secs = t0.elapsed().as_secs_f64();
    ledger.try_alloc(ax.nbytes())?;
    let mut gcn = Gcn::new(
        ds.feature_dim(),
        ds.num_classes,
        &GcnConfig { hidden: cfg.hidden.clone(), dropout: cfg.dropout, seed: cfg.seed },
    );
    let mut opt = Adam::new(cfg.lr).with_weight_decay(cfg.weight_decay);
    let mut in_train = vec![false; ds.num_nodes()];
    for &u in &ds.splits.train {
        in_train[u as usize] = true;
    }
    let t1 = Instant::now();
    let mut final_loss = 0f32;
    let mut max_batch = 0usize;
    let mut phases = PhaseBreakdown::new();
    for epoch in 0..cfg.epochs {
        poll_epoch_kill(cfg, epoch)?;
        let _ep = sgnn_obs::span!("trainer.epoch");
        for part in 0..parts as u32 {
            let (op, x, map, idx, labels) = phases.time(Phase::Sample, || {
                let (sub, map) = aug.batch_subgraph(part);
                let op = gcn_operator(&sub);
                let x = ax.gather_rows(&rows_of(&map));
                let mut idx = Vec::new();
                let mut labels = Vec::new();
                for (local, &g) in map.iter().enumerate() {
                    if (g as usize) < ds.num_nodes() && in_train[g as usize] {
                        idx.push(local);
                        labels.push(ds.labels[g as usize]);
                    }
                }
                (op, x, map, idx, labels)
            });
            // Batch residency: the subgraph operator and gathered features
            // are live alongside the layer activations.
            max_batch = max_batch
                .max(op.nbytes() + x.nbytes() + gcn.step_bytes(map.len(), ds.feature_dim()));
            if idx.is_empty() {
                continue;
            }
            let (loss, dl_batch) = phases.time(Phase::Forward, || {
                let logits = gcn.forward(&op, &x);
                let batch_logits = logits.gather_rows(&idx);
                softmax_cross_entropy(&batch_logits, &labels, None)
            });
            final_loss = loss;
            phases.time(Phase::Backward, || {
                let mut dl = DenseMatrix::zeros(map.len(), ds.num_classes);
                dl.scatter_rows(&idx, &dl_batch);
                gcn.zero_grad();
                gcn.backward(&op, &dl);
            });
            phases.time(Phase::Step, || gcn.step(&mut opt));
        }
        sgnn_obs::mark_epoch(epoch as u64);
    }
    ledger.try_transient(max_batch)?;
    let train_secs = t1.elapsed().as_secs_f64();
    // Evaluate on the full augmented graph; read original-node logits.
    let op = gcn_operator(&aug.graph);
    let logits = gcn.forward_inference(&op, &ax);
    let val_acc =
        accuracy(&logits.gather_rows(&rows_of(&ds.splits.val)), &ds.labels_of(&ds.splits.val));
    let test_acc =
        accuracy(&logits.gather_rows(&rows_of(&ds.splits.test)), &ds.labels_of(&ds.splits.test));
    sgnn_obs::export_now();
    Ok(TrainReport {
        name: format!("seignn-p{parts}"),
        test_acc,
        val_acc,
        final_loss,
        precompute_secs,
        train_secs,
        peak_mem_bytes: ledger.peak(),
        epochs_run: cfg.epochs,
        phases,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use sgnn_data::sbm_dataset;

    #[test]
    fn history_trainer_learns_with_warm_cache() {
        let ds = sbm_dataset(800, 3, 10.0, 0.9, 8, 0.8, 0, 0.5, 0.25, 1);
        let cfg =
            TrainConfig { epochs: 30, hidden: vec![16], batch_size: 100, ..Default::default() };
        let (report, stats) = train_history(&ds, 5, &cfg).unwrap();
        assert!(report.test_acc > 0.75, "acc {}", report.test_acc);
        // After the first epoch the cache serves most fetches.
        assert!(stats.hit_rate > 0.5, "hit rate {}", stats.hit_rate);
        assert!(stats.mean_age > 0.0);
    }

    #[test]
    fn seignn_trainer_learns_and_beats_isolated_batches() {
        let ds = sbm_dataset(900, 3, 8.0, 0.85, 6, 0.8, 0, 0.5, 0.25, 2);
        let cfg = TrainConfig { epochs: 30, hidden: vec![16], ..Default::default() };
        let r = train_seignn(&ds, 6, &cfg).unwrap();
        assert!(r.test_acc > 0.75, "seignn acc {}", r.test_acc);
    }
}
