//! Shard-parallel full-graph GCN training with halo exchange.
//!
//! The execution model every distributed-GNN system in the survey's
//! §3.1.2 lineage converges on: partition the graph, give each worker
//! its shard's rows, and between layers exchange the **halo** — boundary
//! activations that remote shards' aggregations read. Here the "workers"
//! are worker-pool tasks (one per shard) and the "network" is memory,
//! but the dataflow — and the measured communication volume — is the
//! real one, which is what lets `benchsharding` validate the analytic
//! E2 communication model against an actual execution.
//!
//! ## The determinism contract (DESIGN.md §7)
//!
//! [`train_sharded_gcn`] is **bitwise identical** to
//! [`crate::trainer::train_full_gcn`] — same final loss bits, same
//! accuracies, same weight trajectory — at any shard count, for any
//! partition, at any thread count. Three mechanisms carry the proof:
//!
//! 1. **Per-row/per-element ops shard trivially.** SpMM output rows,
//!    `X·W` rows, bias, ReLU, softmax rows, and argmax depend only on
//!    their own input row (and shared weights). The shard-local operator
//!    slice keeps neighbor order and weight bits (monotone relabeling,
//!    [`sgnn_graph::CsrGraph::relabeled_slice`]), and the halo exchange
//!    delivers bit-exact remote rows, so every owned row equals the
//!    full-graph row by induction over layers.
//! 2. **Cross-row reductions are exact integer folds.** Weight/bias
//!    gradients and the loss are accumulated as fixed-point `i128`
//!    ([`sgnn_linalg::reduce`]) by both the reference kernels and the
//!    shards; `wrapping_add` is associative, so per-shard partials
//!    combined by the fixed-order tree allreduce equal the sequential
//!    fold exactly, with one rounding at the final `f32` write-back.
//! 3. **Randomness is stateless.** Dropout masks are per-element hashes
//!    of `(layer seed, epoch, global row, column)`
//!    ([`sgnn_nn::layers::Dropout::element_scale`]), so a shard
//!    regenerates exactly the mask entries of the rows it owns.
//!
//! Identical gradients ⇒ identical Adam updates (slot-keyed, fixed visit
//! order) ⇒ identical weights every epoch; identical validation
//! accuracy ⇒ identical early-stopping decisions.
//!
//! ## Observability and accounting
//!
//! Counters (§5 naming): `comm.halo_bytes` / `comm.halo_vectors` per
//! exchange, `comm.allreduce_bytes` per gradient merge, and the
//! `shard.skew` gauge (max/mean shard nnz, permille). The ledger charges
//! the shard-local operator slices and feature buffers as resident and
//! the per-shard activations + fixed-point accumulators as transient;
//! the *global* operator is released once the plan is built — the
//! sharded trainer's resident set is the plan, not the graph.

use crate::ckpt::CkptSidecar;
use crate::error::{TrainError, TrainResult};
use crate::models::gcn::{gcn_operator, Gcn, GcnConfig};
use crate::shard_comm::CommState;
use crate::trainer::{
    apply_resume, build_ledger, ensure_classes, maybe_checkpoint, poll_epoch_kill, EarlyStopper,
    TrainConfig, TrainReport,
};
use sgnn_data::Dataset;
use sgnn_fault::crc::crc32_f32s;
use sgnn_fault::FaultPlan;
use sgnn_graph::spmm::spmm_into;
use sgnn_linalg::par::par_map_chunks;
use sgnn_linalg::quant::{ef_compress_rows, wire_bytes_per_vector};
use sgnn_linalg::reduce::{accumulate_fx, colsum_fx, grad_fx, merge_fx};
use sgnn_linalg::{vecops, DenseMatrix};
use sgnn_nn::layers::Dropout;
use sgnn_nn::loss::{loss_from_fx, xent_grad_row, xent_softmaxed_row_fx};
use sgnn_nn::optim::Adam;
use sgnn_obs::{Phase, PhaseBreakdown};
use sgnn_partition::{Partition, ShardPlan};
use std::time::Instant;

static HALO_BYTES: sgnn_obs::Counter = sgnn_obs::Counter::new("comm.halo_bytes");
static HALO_VECTORS: sgnn_obs::Counter = sgnn_obs::Counter::new("comm.halo_vectors");
static ALLREDUCE_BYTES: sgnn_obs::Counter = sgnn_obs::Counter::new("comm.allreduce_bytes");
static SKEW: sgnn_obs::Gauge = sgnn_obs::Gauge::new("shard.skew");
/// Per-superstep halo-exchange latency of *training* passes (build +
/// verify + any repair; for the compressed regime, compress + ghost
/// build + verify + assembly of a refresh).
static HALO_EXCHANGE_NS: sgnn_obs::Histogram = sgnn_obs::Histogram::new("comm.halo_exchange.ns");
/// Halo-exchange latency of evaluation passes (early-stopping + final),
/// kept out of the training histogram so training p99s stay honest.
static EVAL_HALO_EXCHANGE_NS: sgnn_obs::Histogram =
    sgnn_obs::Histogram::new("comm.eval_halo_exchange.ns");
/// Ghost bytes *not* moved by the compressed regime versus an exact f32
/// exchange (quantization savings + stale-hit elisions).
static BYTES_SAVED: sgnn_obs::Counter = sgnn_obs::Counter::new("comm.bytes_saved");
/// Ghost vectors served from a stale cache instead of the wire.
static STALE_HITS: sgnn_obs::Counter = sgnn_obs::Counter::new("comm.stale_hits");
/// Interior-aggregation nanoseconds overlapped with in-flight exchanges.
static OVERLAP_NS: sgnn_obs::Counter = sgnn_obs::Counter::new("comm.overlap_ns");
/// Effective halo compression ratio ×1000 (exact-equivalent bytes over
/// bytes actually moved; 1000 = no compression).
static COMPRESSION_RATIO: sgnn_obs::Gauge = sgnn_obs::Gauge::new("comm.compression_ratio");

/// Measured communication/skew profile of one sharded training run —
/// the execution-side numbers the E2 analytic model is checked against.
#[derive(Debug, Clone)]
pub struct ShardStats {
    /// Shard count.
    pub k: usize,
    /// Training epochs executed.
    pub epochs: usize,
    /// Ghost vectors moved per halo exchange (= `ShardPlan::halo_vectors`).
    pub halo_vectors_per_exchange: u64,
    /// Halo exchanges per training epoch: `(L−1)` forward + `(L−1)`
    /// backward for an `L`-layer model.
    pub exchanges_per_epoch: u64,
    /// Measured halo traffic per training epoch, bytes.
    pub halo_bytes_per_epoch: u64,
    /// Measured halo traffic per training epoch, vectors.
    pub halo_vectors_per_epoch: u64,
    /// Measured gradient-allreduce traffic per training epoch, bytes.
    pub allreduce_bytes_per_epoch: u64,
    /// Halo traffic of evaluation passes (early-stopping + final), bytes.
    pub eval_halo_bytes: u64,
    /// Max/mean shard-local operator nnz (1.0 = perfectly balanced).
    pub nnz_skew: f64,
    /// Total local slots `Σ_s (owned_s + halo_s)` — replication factor
    /// times `n`.
    pub replication_slots: u64,
    /// Communication regime label (`exact`, `int8,s=4`, …).
    pub regime: String,
    /// Ghost bytes per training epoch not moved versus an exact f32
    /// exchange (0 in the exact regime).
    pub halo_bytes_saved_per_epoch: u64,
    /// Ghost vectors served from a stale cache over the whole run.
    pub stale_hits: u64,
    /// Interior-aggregation nanoseconds overlapped with in-flight
    /// exchanges over the whole run.
    pub overlap_ns: u64,
}

serde::impl_serialize!(ShardStats {
    k,
    epochs,
    halo_vectors_per_exchange,
    exchanges_per_epoch,
    halo_bytes_per_epoch,
    halo_vectors_per_epoch,
    allreduce_bytes_per_epoch,
    eval_halo_bytes,
    nnz_skew,
    replication_slots,
    regime,
    halo_bytes_saved_per_epoch,
    stale_hits,
    overlap_ns
});

/// Per-shard trainer-side context: feature slice, gather indices, and
/// split membership translated to owned-rank space.
struct ShardCtx {
    /// Local row index of each owned rank (for `gather_rows`).
    owned_rows: Vec<usize>,
    /// `n_local × in_dim` feature slice (owned + halo rows) — the layer-0
    /// input, replicated once at setup like ghost features in a real
    /// distributed deployment.
    features: DenseMatrix,
    /// `(owned rank, label)` of train/val/test nodes owned by this shard.
    train: Vec<(usize, usize)>,
    val: Vec<(usize, usize)>,
    test: Vec<(usize, usize)>,
}

/// Running communication tallies (local mirror of the obs counters, kept
/// unconditionally so `ShardStats` works with observability off).
#[derive(Clone, Copy, Default)]
struct Comm {
    halo_bytes: u64,
    halo_vectors: u64,
    allreduce_bytes: u64,
}

/// Fixed-order tree allreduce over per-shard fixed-point partials:
/// stride-doubling pairwise merges (`s ← s + gap`, gap = 1, 2, 4, …),
/// the classic recursive-halving schedule. Exactness of the `i128`
/// combine means the tree shape cannot affect the result; the fixed
/// order makes the traffic pattern auditable and the byte count
/// deterministic.
fn tree_allreduce(mut parts: Vec<Vec<i128>>, bytes: &mut u64) -> Vec<i128> {
    let k = parts.len();
    let mut gap = 1;
    while gap < k {
        let mut s = 0;
        while s + gap < k {
            let src = std::mem::take(&mut parts[s + gap]);
            *bytes += (src.len() * std::mem::size_of::<i128>()) as u64;
            merge_fx(&mut parts[s], &src);
            s += 2 * gap;
        }
        gap *= 2;
    }
    parts.into_iter().next().expect("at least one shard")
}

/// Bounded-retry budget for a checksum-failed halo exchange.
const MAX_HALO_RETRIES: u32 = 3;

/// Builds shard `s`'s ghost matrix (`|halo| × d`) from the senders'
/// dequantized export blocks — the receive side of a compressed
/// exchange. `halo_pos[s][t]` locates halo slot `t`'s row inside its
/// owner's block.
fn build_ghost(
    plan: &ShardPlan,
    halo_pos: &[Vec<u32>],
    deqs: &[DenseMatrix],
    s: usize,
    d: usize,
) -> DenseMatrix {
    let shard = &plan.shards[s];
    let mut gm = DenseMatrix::zeros(shard.halo.len(), d);
    for (j, &(owner, _rank)) in shard.halo_src.iter().enumerate() {
        gm.row_mut(j).copy_from_slice(deqs[owner as usize].row(halo_pos[s][j] as usize));
    }
    gm
}

/// Shared state of one sharded run.
struct Runtime<'a> {
    plan: &'a ShardPlan,
    ctxs: &'a [ShardCtx],
    /// Layer widths `[in_dim, hidden…, classes]`.
    dims: Vec<usize>,
    p_drop: f32,
    seed: u64,
    total_w: f32,
    comm: Comm,
    /// Armed fault injector; `None` also disables the halo checksum
    /// verification below, keeping the fault machinery zero-overhead for
    /// normal runs (the repo-wide "free when off" rule).
    fault: Option<&'a FaultPlan>,
    /// Global BSP superstep counter: every compute barrier and every
    /// exchange barrier across all epochs increments it, which gives
    /// `Fault::KillAtSuperstep` a stable positional address.
    superstep: u64,
    /// Global halo-exchange counter (training and eval passes).
    exchange_idx: u64,
    /// Superstep at which an armed kill fired.
    killed: Option<u64>,
    /// `(exchange, retries)` of a halo exchange still corrupt after the
    /// retry budget.
    halo_fail: Option<(u64, u32)>,
    /// Compressed-regime state (`None` = exact regime). Training passes
    /// route through the compressed forward/backward when set; eval
    /// passes always exchange exact f32.
    comm_state: Option<CommState>,
    /// True while an evaluation pass runs, routing exchange latency to
    /// `comm.eval_halo_exchange.ns` instead of the training histogram.
    in_eval: bool,
}

impl Runtime<'_> {
    fn num_layers(&self) -> usize {
        self.dims.len() - 1
    }

    /// One BSP barrier: advances the superstep counter, polls the kill
    /// site, and reports whether the epoch should abort (either from a
    /// kill at this barrier or a fault recorded at an earlier one).
    fn poll_superstep(&mut self) -> bool {
        let s = self.superstep;
        self.superstep += 1;
        if let Some(plan) = self.fault {
            if plan.poll_kill_superstep(s) {
                self.killed = Some(s);
            }
        }
        self.faulted()
    }

    fn faulted(&self) -> bool {
        self.killed.is_some() || self.halo_fail.is_some()
    }

    /// The error for a recorded fault, if any (checked by the epoch loop
    /// after each phase so `Err` is returned instead of panicking).
    fn fault_error(&self) -> Option<TrainError> {
        if let Some((exchange, retries)) = self.halo_fail {
            return Some(TrainError::HaloCorrupt { exchange, retries });
        }
        self.killed.map(|s| TrainError::InjectedCrash { site: "superstep", at: s })
    }

    /// Halo exchange: builds each shard's full `n_local × d` buffer from
    /// the per-shard owned-row matrices `outs` — own rows scattered into
    /// place, ghost rows copied from their owners through the
    /// precomputed `halo_src` map. Double-buffered by construction: the
    /// sources (`outs`) and destinations are distinct allocations, so
    /// every shard reads a consistent snapshot regardless of task
    /// scheduling.
    ///
    /// With a fault plan armed, every built buffer is checksummed against
    /// its sender-side CRC-32 and mismatching shards are rebuilt from the
    /// (still pristine) sources, up to [`MAX_HALO_RETRIES`] times — the
    /// checksum-verified-retry recovery policy of DESIGN.md §8. Without a
    /// plan no checksums are computed at all.
    fn exchange(&mut self, outs: &[DenseMatrix], d: usize) -> Vec<DenseMatrix> {
        let t_exch = Instant::now();
        let xid = self.exchange_idx;
        self.exchange_idx += 1;
        let plan = self.plan;
        let build = |s: usize| {
            let shard = &plan.shards[s];
            let mut h = DenseMatrix::zeros(shard.n_local(), d);
            for (r, &lr) in shard.owned_local.iter().enumerate() {
                h.row_mut(lr as usize).copy_from_slice(outs[s].row(r));
            }
            for (t, &(owner, rank)) in shard.halo_src.iter().enumerate() {
                h.row_mut(shard.halo_local[t] as usize)
                    .copy_from_slice(outs[owner as usize].row(rank as usize));
            }
            h
        };
        let mut built = par_map_chunks(plan.k, build);
        let v = plan.halo_vectors();
        let b = v * d as u64 * 4;
        HALO_VECTORS.add(v);
        HALO_BYTES.add(b);
        self.comm.halo_vectors += v;
        self.comm.halo_bytes += b;
        if let Some(fp) = self.fault {
            // Sender-side checksums of the pristine buffers, then the
            // injector corrupts one buffer "in transit".
            let want: Vec<u32> = built.iter().map(|h| crc32_f32s(h.data())).collect();
            fp.corrupt_halo_buf(xid, built[xid as usize % plan.k].data_mut());
            let mut retries = 0u32;
            loop {
                let bad: Vec<usize> =
                    (0..plan.k).filter(|&s| crc32_f32s(built[s].data()) != want[s]).collect();
                if bad.is_empty() {
                    break;
                }
                if retries >= MAX_HALO_RETRIES {
                    self.halo_fail = Some((xid, retries));
                    break;
                }
                retries += 1;
                sgnn_fault::record_recovery_retry();
                // Re-exchange only the shards whose buffer failed.
                for &s in &bad {
                    built[s] = build(s);
                }
            }
        }
        self.record_exchange_ns(t_exch);
        built
    }

    /// Records an exchange's wall time into the training or eval
    /// latency histogram depending on the current pass.
    fn record_exchange_ns(&self, t0: Instant) {
        let ns = t0.elapsed().as_nanos() as u64;
        if self.in_eval {
            EVAL_HALO_EXCHANGE_NS.record(ns);
        } else {
            HALO_EXCHANGE_NS.record(ns);
        }
    }

    /// One shard's propagation: local SpMM over the shard operator, then
    /// the owned rows gathered out (halo rows of the product are never
    /// read — their local adjacency is empty).
    fn propagate_owned(&self, s: usize, input: &DenseMatrix, d: usize) -> DenseMatrix {
        let shard = &self.plan.shards[s];
        let mut scratch = DenseMatrix::zeros(shard.n_local(), d);
        spmm_into(&shard.op, input, &mut scratch);
        scratch.gather_rows(&self.ctxs[s].owned_rows)
    }

    // ---- Compressed regime (DESIGN.md §11) ----------------------------

    /// Sender-side compression superstep at `site`: each shard gathers
    /// its export block, adds its error-feedback residual, quantizes,
    /// and keeps the new residual. Returns the dequantized blocks every
    /// receiver reads — sender and receivers decode identically, so one
    /// quantization per exported row serves all its ghost copies.
    fn compress_blocks(&mut self, site: usize, outs: &[DenseMatrix]) -> Vec<DenseMatrix> {
        let k = self.plan.k;
        let state = self.comm_state.as_mut().expect("compressed regime");
        let mode = state.mode;
        let (exports, resids) = (&state.exports, &state.residuals[site]);
        let results: Vec<(DenseMatrix, DenseMatrix)> = par_map_chunks(k, |s| {
            let block = outs[s].gather_rows(&exports[s]);
            let mut r = resids[s].clone();
            let deq = ef_compress_rows(&block, &mut r, mode);
            (deq, r)
        });
        let mut deqs = Vec::with_capacity(k);
        for (s, (deq, r)) in results.into_iter().enumerate() {
            state.residuals[site][s] = r;
            deqs.push(deq);
        }
        deqs
    }

    /// The overlap superstep of a refresh: pool tasks `0..k` materialize
    /// each shard's ghost matrix from the dequantized blocks (the
    /// exchange "in flight") while tasks `k..2k` run interior
    /// aggregation `op_interior · outs` for the next propagation.
    /// Interior task time is recorded as `comm.overlap_ns` — the compute
    /// hidden behind the exchange.
    fn ghosts_with_interior(
        &mut self,
        deqs: &[DenseMatrix],
        outs: &[DenseMatrix],
        d: usize,
    ) -> (Vec<DenseMatrix>, Vec<DenseMatrix>) {
        let k = self.plan.k;
        let plan = self.plan;
        let state = self.comm_state.as_ref().expect("compressed regime");
        let (halo_pos, op_interior) = (&state.halo_pos, &state.op_interior);
        let results: Vec<(DenseMatrix, u64)> = par_map_chunks(2 * k, |t| {
            let t0 = Instant::now();
            let m = if t < k {
                build_ghost(plan, halo_pos, deqs, t, d)
            } else {
                let s = t - k;
                let mut scratch = DenseMatrix::zeros(plan.shards[s].owned.len(), d);
                spmm_into(&op_interior[s], &outs[s], &mut scratch);
                scratch
            };
            (m, t0.elapsed().as_nanos() as u64)
        });
        let mut ghosts = Vec::with_capacity(k);
        let mut interiors = Vec::with_capacity(k);
        let mut ns = 0u64;
        for (t, (m, dt)) in results.into_iter().enumerate() {
            if t < k {
                ghosts.push(m);
            } else {
                interiors.push(m);
                ns += dt;
            }
        }
        OVERLAP_NS.add(ns);
        self.comm_state.as_mut().expect("compressed regime").overlap_ns += ns;
        (ghosts, interiors)
    }

    /// CRC-verifies compressed ghost matrices under an armed fault plan:
    /// sender-side checksums of the pristine builds, one injected
    /// in-transit corruption, and bounded rebuild-from-source retries —
    /// the DESIGN.md §8 policy with the same budget as the exact path.
    fn verify_ghosts(
        &mut self,
        ghosts: &mut [DenseMatrix],
        deqs: &[DenseMatrix],
        xid: u64,
        d: usize,
    ) {
        let Some(fp) = self.fault else { return };
        let k = self.plan.k;
        let mut fail = None;
        {
            let state = self.comm_state.as_ref().expect("compressed regime");
            let want: Vec<u32> = ghosts.iter().map(|g| crc32_f32s(g.data())).collect();
            fp.corrupt_halo_buf(xid, ghosts[xid as usize % k].data_mut());
            let mut retries = 0u32;
            loop {
                let bad: Vec<usize> =
                    (0..k).filter(|&s| crc32_f32s(ghosts[s].data()) != want[s]).collect();
                if bad.is_empty() {
                    break;
                }
                if retries >= MAX_HALO_RETRIES {
                    fail = Some((xid, retries));
                    break;
                }
                retries += 1;
                sgnn_fault::record_recovery_retry();
                for &s in &bad {
                    ghosts[s] = build_ghost(self.plan, &state.halo_pos, deqs, s, d);
                }
            }
        }
        if fail.is_some() {
            self.halo_fail = fail;
        }
    }

    /// Assembles each shard's full `n_local × d` propagation input:
    /// fresh owned rows from `outs`, ghost rows from `ghosts`.
    fn assemble_full(
        &self,
        outs: &[DenseMatrix],
        ghosts: &[DenseMatrix],
        d: usize,
    ) -> Vec<DenseMatrix> {
        let plan = self.plan;
        par_map_chunks(plan.k, |s| {
            let shard = &plan.shards[s];
            let mut h = DenseMatrix::zeros(shard.n_local(), d);
            for (r, &lr) in shard.owned_local.iter().enumerate() {
                h.row_mut(lr as usize).copy_from_slice(outs[s].row(r));
            }
            for (j, &hl) in shard.halo_local.iter().enumerate() {
                h.row_mut(hl as usize).copy_from_slice(ghosts[s].row(j));
            }
            h
        })
    }

    /// Stale superstep: assemble propagation inputs from the site's
    /// ghost cache — no wire traffic at all — while interior aggregation
    /// runs alongside on the same pool.
    fn stale_assemble_with_interior(
        &mut self,
        site: usize,
        outs: &[DenseMatrix],
        d: usize,
    ) -> (Vec<DenseMatrix>, Vec<DenseMatrix>) {
        let k = self.plan.k;
        let plan = self.plan;
        let state = self.comm_state.as_ref().expect("compressed regime");
        let (cache, op_interior) = (&state.cache[site], &state.op_interior);
        let results: Vec<DenseMatrix> = par_map_chunks(2 * k, |t| {
            if t < k {
                let shard = &plan.shards[t];
                let mut h = DenseMatrix::zeros(shard.n_local(), d);
                for (r, &lr) in shard.owned_local.iter().enumerate() {
                    h.row_mut(lr as usize).copy_from_slice(outs[t].row(r));
                }
                for (j, &hl) in shard.halo_local.iter().enumerate() {
                    h.row_mut(hl as usize).copy_from_slice(cache[t].row(j));
                }
                h
            } else {
                let s = t - k;
                let mut scratch = DenseMatrix::zeros(plan.shards[s].owned.len(), d);
                spmm_into(&op_interior[s], &outs[s], &mut scratch);
                scratch
            }
        });
        let mut it = results.into_iter();
        let fulls: Vec<DenseMatrix> = it.by_ref().take(k).collect();
        let interiors: Vec<DenseMatrix> = it.collect();
        (fulls, interiors)
    }

    /// One compressed forward exchange at `site` — or a stale-hit skip.
    /// Returns the assembled propagation inputs and the interior
    /// aggregation for the next layer, and settles all byte accounting
    /// (`comm.halo_bytes` counts quantized wire bytes per (ghost,
    /// reader) pair; the delta to the exact regime's `4·d` per pair goes
    /// to `comm.bytes_saved`).
    fn exchange_compressed_fwd(
        &mut self,
        site: usize,
        outs: &[DenseMatrix],
        d: usize,
    ) -> (Vec<DenseMatrix>, Vec<DenseMatrix>) {
        let t_exch = Instant::now();
        let v = self.plan.halo_vectors();
        let exact_bytes = v * 4 * d as u64;
        let (mode, refresh) = {
            let state = self.comm_state.as_mut().expect("compressed regime");
            (state.mode, state.tick_refresh(site))
        };
        if refresh {
            let xid = self.exchange_idx;
            self.exchange_idx += 1;
            let deqs = self.compress_blocks(site, outs);
            let (mut ghosts, interiors) = self.ghosts_with_interior(&deqs, outs, d);
            self.verify_ghosts(&mut ghosts, &deqs, xid, d);
            let wire = v * wire_bytes_per_vector(mode, d);
            HALO_VECTORS.add(v);
            HALO_BYTES.add(wire);
            BYTES_SAVED.add(exact_bytes - wire);
            self.comm.halo_vectors += v;
            self.comm.halo_bytes += wire;
            let fulls = self.assemble_full(outs, &ghosts, d);
            let state = self.comm_state.as_mut().expect("compressed regime");
            state.bytes_saved += exact_bytes - wire;
            state.cache[site] = ghosts;
            self.record_exchange_ns(t_exch);
            (fulls, interiors)
        } else {
            STALE_HITS.add(v);
            BYTES_SAVED.add(exact_bytes);
            let state = self.comm_state.as_mut().expect("compressed regime");
            state.stale_hits += v;
            state.bytes_saved += exact_bytes;
            self.stale_assemble_with_interior(site, outs, d)
        }
    }

    /// Compressed backward exchange for layer `i > 0`: error-feedback
    /// compressed gradients, always fresh (staleness applies to forward
    /// activations only), overlapped with interior propagation. Returns
    /// the next `g_owned`.
    fn exchange_compressed_bwd(
        &mut self,
        l: usize,
        i: usize,
        d_ahs: &[DenseMatrix],
        d: usize,
    ) -> Vec<DenseMatrix> {
        let t_exch = Instant::now();
        let site = CommState::bwd_site(l, i);
        let v = self.plan.halo_vectors();
        let exact_bytes = v * 4 * d as u64;
        let mode = self.comm_state.as_ref().expect("compressed regime").mode;
        let xid = self.exchange_idx;
        self.exchange_idx += 1;
        let deqs = self.compress_blocks(site, d_ahs);
        let (mut ghosts, interiors) = self.ghosts_with_interior(&deqs, d_ahs, d);
        self.verify_ghosts(&mut ghosts, &deqs, xid, d);
        let wire = v * wire_bytes_per_vector(mode, d);
        HALO_VECTORS.add(v);
        HALO_BYTES.add(wire);
        BYTES_SAVED.add(exact_bytes - wire);
        self.comm.halo_vectors += v;
        self.comm.halo_bytes += wire;
        self.comm_state.as_mut().expect("compressed regime").bytes_saved += exact_bytes - wire;
        let fulls = self.assemble_full(d_ahs, &ghosts, d);
        self.record_exchange_ns(t_exch);
        self.boundary_merge(&interiors, &fulls, d)
    }

    /// Owned-row propagation from a precomputed interior part plus
    /// boundary rows recomputed over the assembled inputs — row-for-row
    /// the same kernel invocations as [`Runtime::propagate_owned`]: both
    /// sub-operators carry *complete* rows of the local operator, so
    /// every row goes through the unsplit SpMM kernel and keeps its
    /// exact bit pattern.
    fn boundary_merge(
        &self,
        interiors: &[DenseMatrix],
        fulls: &[DenseMatrix],
        d: usize,
    ) -> Vec<DenseMatrix> {
        let plan = self.plan;
        let state = self.comm_state.as_ref().expect("compressed regime");
        let op_boundary = &state.op_boundary;
        par_map_chunks(plan.k, |s| {
            let shard = &plan.shards[s];
            let mut out = interiors[s].clone();
            let mut scratch = DenseMatrix::zeros(shard.n_local(), d);
            spmm_into(&op_boundary[s], &fulls[s], &mut scratch);
            for &r in shard.boundary_rows() {
                out.row_mut(r as usize)
                    .copy_from_slice(scratch.row(shard.owned_local[r as usize] as usize));
            }
            out
        })
    }

    /// Compressed training forward (DESIGN.md §11): layer 0 aggregates
    /// from the feature slice exactly like the exact path; later layers
    /// merge the interior aggregation precomputed during the previous
    /// exchange with boundary rows recomputed over the assembled
    /// (quantized and possibly stale) inputs. The dense tail of every
    /// layer — matmul, bias, ReLU, stateless dropout — is
    /// element-for-element the exact path's code, which is why `F32`
    /// quantization with staleness ≤ 1 reproduces it bitwise.
    #[allow(clippy::type_complexity)]
    fn forward_compressed(
        &mut self,
        gcn: &Gcn,
        epoch: u64,
    ) -> (Vec<DenseMatrix>, Vec<Vec<DenseMatrix>>, Vec<Vec<Vec<bool>>>) {
        let l = self.num_layers();
        let k = self.plan.k;
        let mut x_caches: Vec<Vec<DenseMatrix>> = Vec::with_capacity(l);
        let mut relu_masks: Vec<Vec<Vec<bool>>> = Vec::with_capacity(l.saturating_sub(1));
        let mut h_locals: Vec<DenseMatrix> = Vec::new();
        let mut x_int: Vec<DenseMatrix> = Vec::new();
        let mut logits: Vec<DenseMatrix> = Vec::new();
        for i in 0..l {
            if self.poll_superstep() {
                return (logits, x_caches, relu_masks);
            }
            let layer = gcn.layer(i);
            let (w, b) = (&layer.w, &layer.b);
            let (d_in, d_out) = (self.dims[i], self.dims[i + 1]);
            let last = i + 1 == l;
            let cs = Dropout::call_seed(self.seed.wrapping_add(100 + i as u64), epoch);
            let p = self.p_drop;
            let (plan, ctxs) = (self.plan, self.ctxs);
            let op_boundary = &self.comm_state.as_ref().expect("compressed regime").op_boundary;
            let (h_ref, x_ref) = (&h_locals, &x_int);
            let results: Vec<(DenseMatrix, DenseMatrix, Vec<bool>)> = par_map_chunks(k, |s| {
                let shard = &plan.shards[s];
                let x_owned = if i == 0 {
                    let mut scratch = DenseMatrix::zeros(shard.n_local(), d_in);
                    spmm_into(&shard.op, &ctxs[s].features, &mut scratch);
                    scratch.gather_rows(&ctxs[s].owned_rows)
                } else {
                    let mut x = x_ref[s].clone();
                    let mut scratch = DenseMatrix::zeros(shard.n_local(), d_in);
                    spmm_into(&op_boundary[s], &h_ref[s], &mut scratch);
                    for &r in shard.boundary_rows() {
                        x.row_mut(r as usize)
                            .copy_from_slice(scratch.row(shard.owned_local[r as usize] as usize));
                    }
                    x
                };
                let mut z = x_owned.matmul(w).expect("linear shapes");
                for r in 0..z.rows() {
                    vecops::axpy(1.0, b.row(0), z.row_mut(r));
                }
                let mut mask = Vec::new();
                if !last {
                    mask.reserve(z.rows() * d_out);
                    for (r, &g) in shard.owned.iter().enumerate() {
                        let row = z.row_mut(r);
                        for (c, slot) in row.iter_mut().enumerate() {
                            let v = *slot;
                            mask.push(v > 0.0);
                            *slot = v.max(0.0)
                                * Dropout::element_scale(cs, p, g as u64 * d_out as u64 + c as u64);
                        }
                    }
                }
                (z, x_owned, mask)
            });
            let mut zs = Vec::with_capacity(k);
            let mut xs = Vec::with_capacity(k);
            let mut ms = Vec::with_capacity(k);
            for (z, x, m) in results {
                zs.push(z);
                xs.push(x);
                ms.push(m);
            }
            x_caches.push(xs);
            if last {
                logits = zs;
            } else {
                relu_masks.push(ms);
                if self.poll_superstep() {
                    return (logits, x_caches, relu_masks);
                }
                let (fulls, interiors) = self.exchange_compressed_fwd(i, &zs, d_out);
                h_locals = fulls;
                x_int = interiors;
            }
        }
        (logits, x_caches, relu_masks)
    }

    /// Training forward: per layer, a compute superstep (one pool task
    /// per shard) followed by a halo-exchange superstep; the
    /// `par_map_chunks` join is the BSP barrier. Returns per-shard
    /// owned-row logits plus the caches backward needs (`Â·H` inputs and
    /// ReLU masks).
    #[allow(clippy::type_complexity)]
    fn forward_train(
        &mut self,
        gcn: &Gcn,
        epoch: u64,
    ) -> (Vec<DenseMatrix>, Vec<Vec<DenseMatrix>>, Vec<Vec<Vec<bool>>>) {
        let l = self.num_layers();
        let k = self.plan.k;
        let mut x_caches: Vec<Vec<DenseMatrix>> = Vec::with_capacity(l);
        let mut relu_masks: Vec<Vec<Vec<bool>>> = Vec::with_capacity(l.saturating_sub(1));
        let mut h_locals: Vec<DenseMatrix> = Vec::new();
        let mut logits: Vec<DenseMatrix> = Vec::new();
        for i in 0..l {
            if self.poll_superstep() {
                return (logits, x_caches, relu_masks);
            }
            let layer = gcn.layer(i);
            let (w, b) = (&layer.w, &layer.b);
            let (d_in, d_out) = (self.dims[i], self.dims[i + 1]);
            let last = i + 1 == l;
            let cs = Dropout::call_seed(self.seed.wrapping_add(100 + i as u64), epoch);
            let p = self.p_drop;
            let (plan, ctxs) = (self.plan, self.ctxs);
            let h_ref = &h_locals;
            let results: Vec<(DenseMatrix, DenseMatrix, Vec<bool>)> = par_map_chunks(k, |s| {
                let shard = &plan.shards[s];
                let input = if i == 0 { &ctxs[s].features } else { &h_ref[s] };
                let mut scratch = DenseMatrix::zeros(shard.n_local(), d_in);
                spmm_into(&shard.op, input, &mut scratch);
                let x_owned = scratch.gather_rows(&ctxs[s].owned_rows);
                let mut z = x_owned.matmul(w).expect("linear shapes");
                for r in 0..z.rows() {
                    vecops::axpy(1.0, b.row(0), z.row_mut(r));
                }
                let mut mask = Vec::new();
                if !last {
                    // ReLU + stateless dropout, element-for-element the
                    // reference expressions, indexed by *global* row.
                    mask.reserve(z.rows() * d_out);
                    for (r, &g) in shard.owned.iter().enumerate() {
                        let row = z.row_mut(r);
                        for (c, slot) in row.iter_mut().enumerate() {
                            let v = *slot;
                            mask.push(v > 0.0);
                            *slot = v.max(0.0)
                                * Dropout::element_scale(cs, p, g as u64 * d_out as u64 + c as u64);
                        }
                    }
                }
                (z, x_owned, mask)
            });
            let mut zs = Vec::with_capacity(k);
            let mut xs = Vec::with_capacity(k);
            let mut ms = Vec::with_capacity(k);
            for (z, x, m) in results {
                zs.push(z);
                xs.push(x);
                ms.push(m);
            }
            x_caches.push(xs);
            if last {
                logits = zs;
            } else {
                relu_masks.push(ms);
                if self.poll_superstep() {
                    return (logits, x_caches, relu_masks);
                }
                h_locals = self.exchange(&zs, d_out);
            }
        }
        (logits, x_caches, relu_masks)
    }

    /// Loss + logits gradient over each shard's owned train rows. The
    /// scalar loss is a fixed-point partial per shard, tree-allreduced;
    /// gradient rows are per-row given the global weight total.
    fn loss_and_grad(&mut self, logits: &[DenseMatrix]) -> (f32, Vec<DenseMatrix>) {
        if self.poll_superstep() {
            return (0.0, Vec::new());
        }
        let c = self.dims[self.num_layers()];
        let (ctxs, total_w) = (self.ctxs, self.total_w);
        let parts: Vec<(i128, DenseMatrix)> = par_map_chunks(self.plan.k, |s| {
            let mut dl = DenseMatrix::zeros(logits[s].rows(), c);
            let mut acc = 0i128;
            let mut row = vec![0f32; c];
            for &(r, label) in &ctxs[s].train {
                row.copy_from_slice(logits[s].row(r));
                vecops::softmax_row(&mut row);
                acc = acc.wrapping_add(xent_softmaxed_row_fx(&row, label, 1.0));
                xent_grad_row(&mut row, label, 1.0, total_w);
                dl.row_mut(r).copy_from_slice(&row);
            }
            (acc, dl)
        });
        let mut loss_parts = Vec::with_capacity(parts.len());
        let mut dls = Vec::with_capacity(parts.len());
        for (a, d) in parts {
            loss_parts.push(vec![a]);
            dls.push(d);
        }
        let mut bytes = 0u64;
        let total = tree_allreduce(loss_parts, &mut bytes);
        ALLREDUCE_BYTES.add(bytes);
        self.comm.allreduce_bytes += bytes;
        (loss_from_fx(total[0], total_w), dls)
    }

    /// Backward: mirrored supersteps. Each layer's compute step applies
    /// dropout/ReLU backward, forms fixed-point `gW`/`gb` partials over
    /// owned rows, and computes `dY·Wᵀ`; the exchange step moves halo
    /// gradients and propagates through the local operator. Partials are
    /// tree-allreduced and written into the model's gradient buffers
    /// (one `i128 → f32` rounding, same as the reference kernel).
    fn backward(
        &mut self,
        gcn: &mut Gcn,
        mut g_owned: Vec<DenseMatrix>,
        x_caches: &[Vec<DenseMatrix>],
        relu_masks: &[Vec<Vec<bool>>],
        epoch: u64,
    ) {
        let l = self.num_layers();
        let k = self.plan.k;
        let mut gw_tot: Vec<Vec<i128>> = vec![Vec::new(); l];
        let mut gb_tot: Vec<Vec<i128>> = vec![Vec::new(); l];
        for i in (0..l).rev() {
            if self.poll_superstep() {
                return;
            }
            let (d_in, d_out) = (self.dims[i], self.dims[i + 1]);
            let last = i + 1 == l;
            let wt = gcn.layer(i).w.transpose();
            let cs = Dropout::call_seed(self.seed.wrapping_add(100 + i as u64), epoch);
            let p = self.p_drop;
            let plan = self.plan;
            let caches = &x_caches[i];
            let masks = if last { None } else { Some(&relu_masks[i]) };
            let g_ref = &g_owned;
            let results: Vec<(DenseMatrix, Vec<i128>, Vec<i128>)> = par_map_chunks(k, |s| {
                let shard = &plan.shards[s];
                let mut g = g_ref[s].clone();
                if let Some(masks) = masks {
                    // Same order as the reference: dropout mask multiply,
                    // then ReLU zeroing.
                    for (r, &gid) in shard.owned.iter().enumerate() {
                        let row = g.row_mut(r);
                        for (c, slot) in row.iter_mut().enumerate() {
                            *slot *=
                                Dropout::element_scale(cs, p, gid as u64 * d_out as u64 + c as u64);
                        }
                    }
                    for (v, &m) in g.data_mut().iter_mut().zip(&masks[s]) {
                        if !m {
                            *v = 0.0;
                        }
                    }
                }
                let mut gw = vec![0i128; d_in * d_out];
                let mut gb = vec![0i128; d_out];
                grad_fx(&caches[s], &g, &mut gw);
                colsum_fx(&g, &mut gb);
                let d_ah = g.matmul(&wt).expect("linear shapes");
                (d_ah, gw, gb)
            });
            let mut d_ahs = Vec::with_capacity(k);
            let mut gws = Vec::with_capacity(k);
            let mut gbs = Vec::with_capacity(k);
            for (d, gw, gb) in results {
                d_ahs.push(d);
                gws.push(gw);
                gbs.push(gb);
            }
            let mut bytes = 0u64;
            gw_tot[i] = tree_allreduce(gws, &mut bytes);
            gb_tot[i] = tree_allreduce(gbs, &mut bytes);
            ALLREDUCE_BYTES.add(bytes);
            self.comm.allreduce_bytes += bytes;
            if i > 0 {
                // The layer-0 propagation of the reference is computed
                // and discarded; shards skip it outright. One poll covers
                // the exchange and the propagate barrier it feeds.
                if self.poll_superstep() {
                    return;
                }
                if self.comm_state.is_some() {
                    g_owned = self.exchange_compressed_bwd(l, i, &d_ahs, d_in);
                } else {
                    let full = self.exchange(&d_ahs, d_in);
                    let this = &*self;
                    g_owned = par_map_chunks(k, |s| this.propagate_owned(s, &full[s], d_in));
                }
            }
        }
        gcn.zero_grad();
        for i in 0..l {
            accumulate_fx(gcn.layer_mut(i).gw.data_mut(), &gw_tot[i]);
            accumulate_fx(gcn.layer_mut(i).gb.data_mut(), &gb_tot[i]);
        }
    }

    /// Sharded inference forward (no dropout, no caches): per-shard
    /// owned-row logits, bitwise equal to the full-graph
    /// `forward_inference` rows.
    fn inference_logits(&mut self, gcn: &Gcn) -> Vec<DenseMatrix> {
        let l = self.num_layers();
        let k = self.plan.k;
        let mut h_locals: Vec<DenseMatrix> = Vec::new();
        for i in 0..l {
            let layer = gcn.layer(i);
            let (w, b) = (&layer.w, &layer.b);
            let (d_in, d_out) = (self.dims[i], self.dims[i + 1]);
            let last = i + 1 == l;
            let (plan, ctxs) = (self.plan, self.ctxs);
            let h_ref = &h_locals;
            let results: Vec<DenseMatrix> = par_map_chunks(k, |s| {
                let shard = &plan.shards[s];
                let input = if i == 0 { &ctxs[s].features } else { &h_ref[s] };
                let mut scratch = DenseMatrix::zeros(shard.n_local(), d_in);
                spmm_into(&shard.op, input, &mut scratch);
                let mut z = scratch.gather_rows(&ctxs[s].owned_rows).matmul(w).expect("shapes");
                for r in 0..z.rows() {
                    vecops::axpy(1.0, b.row(0), z.row_mut(r));
                }
                if !last {
                    z.map_inplace(|v| v.max(0.0));
                }
                z
            });
            if last {
                return results;
            }
            h_locals = self.exchange(&results, d_out);
        }
        unreachable!("models have at least one layer")
    }

    /// Split accuracy from per-shard logits: integer hit counts summed
    /// across shards over the global split size — the same division the
    /// reference performs.
    fn accuracy_of<F>(&self, logits: &[DenseMatrix], pick: F, total: usize) -> f64
    where
        F: Fn(&ShardCtx) -> &[(usize, usize)] + Sync,
    {
        if total == 0 {
            return 0.0;
        }
        let ctxs = self.ctxs;
        let hits: usize = par_map_chunks(self.plan.k, |s| {
            pick(&ctxs[s])
                .iter()
                .filter(|&&(r, label)| vecops::argmax(logits[s].row(r)) == label)
                .count()
        })
        .into_iter()
        .sum();
        hits as f64 / total as f64
    }
}

/// Trains a full-batch GCN shard-parallel over `part`, bitwise
/// reproducing [`crate::trainer::train_full_gcn`] (see the module docs
/// for the contract). Returns the model, the usual report, and the
/// measured communication profile.
pub fn train_sharded_gcn(
    ds: &Dataset,
    part: &Partition,
    cfg: &TrainConfig,
) -> TrainResult<(Gcn, TrainReport, ShardStats)> {
    let n = ds.num_nodes();
    assert_eq!(part.parts.len(), n, "partition must cover the dataset");
    ensure_classes(ds)?;
    let k = part.k;
    let mut ledger = build_ledger(cfg);
    let t0 = Instant::now();
    let op = gcn_operator(&ds.graph);
    let op_bytes = op.nbytes();
    ledger.try_alloc(op_bytes)?;
    let plan = ShardPlan::build(&op, part).expect("operator covered by partition");
    ledger.try_alloc(plan.nbytes())?;
    drop(op);
    ledger.free(op_bytes);

    // Owned-rank lookup for translating split membership.
    let mut rank_of = vec![0u32; n];
    for shard in &plan.shards {
        for (r, &g) in shard.owned.iter().enumerate() {
            rank_of[g as usize] = r as u32;
        }
    }
    let mut ctxs: Vec<ShardCtx> = plan
        .shards
        .iter()
        .map(|shard| {
            let rows: Vec<usize> = shard.locals.iter().map(|&g| g as usize).collect();
            ShardCtx {
                owned_rows: shard.owned_local.iter().map(|&r| r as usize).collect(),
                features: ds.features.gather_rows(&rows),
                train: Vec::new(),
                val: Vec::new(),
                test: Vec::new(),
            }
        })
        .collect();
    for (nodes, pick) in [(&ds.splits.train, 0usize), (&ds.splits.val, 1), (&ds.splits.test, 2)] {
        let labels = ds.labels_of(nodes);
        for (&u, &label) in nodes.iter().zip(&labels) {
            let ctx = &mut ctxs[part.parts[u as usize] as usize];
            let entry = (rank_of[u as usize] as usize, label);
            match pick {
                0 => ctx.train.push(entry),
                1 => ctx.val.push(entry),
                _ => ctx.test.push(entry),
            }
        }
    }
    ledger.try_alloc(ctxs.iter().map(|c| c.features.nbytes()).sum())?;
    let precompute_secs = t0.elapsed().as_secs_f64();

    let mut gcn = Gcn::new(
        ds.feature_dim(),
        ds.num_classes,
        &GcnConfig { hidden: cfg.hidden.clone(), dropout: cfg.dropout, seed: cfg.seed },
    );
    let mut dims = vec![ds.feature_dim()];
    dims.extend_from_slice(&cfg.hidden);
    dims.push(ds.num_classes);
    let l = dims.len() - 1;
    // Transient: two activations per layer per shard, the fixed-point
    // partials (k shard copies + 1 reduced), and the parameters
    // (`step_bytes(0, ·)` is the parameter-only term).
    let acts: usize = plan
        .shards
        .iter()
        .map(|s| dims.iter().map(|&d| 2 * s.n_local() * d * 4).sum::<usize>())
        .sum();
    let fx_bytes: usize =
        (0..l).map(|i| (dims[i] * dims[i + 1] + dims[i + 1]) * 16).sum::<usize>() * (k + 1);
    ledger.try_transient(acts + fx_bytes + gcn.step_bytes(0, ds.feature_dim()))?;
    SKEW.record((plan.nnz_skew() * 1000.0) as u64);

    // Compressed-regime state: export lists, interior/boundary
    // sub-operators, EF residuals, and ghost caches — charged to the
    // ledger like any other resident structure.
    let comm_state = cfg
        .comm_regime
        .compressed()
        .map(|(mode, staleness)| CommState::build(&plan, &dims, mode, staleness));
    if let Some(st) = &comm_state {
        ledger.try_alloc(st.nbytes(&plan, &dims))?;
    }

    let mut rt = Runtime {
        plan: &plan,
        ctxs: &ctxs,
        dims,
        p_drop: cfg.dropout,
        seed: cfg.seed,
        total_w: (ds.splits.train.len() as f32).max(1e-12),
        comm: Comm::default(),
        fault: cfg.fault_plan.as_deref(),
        superstep: 0,
        exchange_idx: 0,
        killed: None,
        halo_fail: None,
        comm_state,
        in_eval: false,
    };
    let mut opt = Adam::new(cfg.lr).with_weight_decay(cfg.weight_decay);
    let mut stopper = EarlyStopper::new(cfg.patience);
    let mut phases = PhaseBreakdown::new();
    let mut final_loss = 0f32;
    let mut epochs_run = 0usize;
    let trainer_name = format!("gcn-shard-k{k}");
    let start_epoch = apply_resume(
        cfg,
        &trainer_name,
        &mut opt,
        &mut gcn,
        rt.comm_state.as_mut().map(|s| s as &mut dyn CkptSidecar),
        &mut stopper,
        &mut epochs_run,
        &mut final_loss,
    )?;
    let mut eval_comm = Comm::default();
    // Epochs executed by *this* run (excluding resumed-past ones), so
    // per-epoch communication stats stay honest after a resume.
    let mut session_epochs = 0usize;
    let t1 = Instant::now();
    for epoch in start_epoch..cfg.epochs {
        poll_epoch_kill(cfg, epoch)?;
        let _ep = sgnn_obs::span!("trainer.epoch");
        epochs_run += 1;
        session_epochs += 1;
        let call = epoch as u64 + 1; // the reference model's dropout call number
        let (loss, dl_owned, x_caches, relu_masks) = phases.time(Phase::Forward, || {
            let (logits, x_caches, relu_masks) = if rt.comm_state.is_some() {
                rt.forward_compressed(&gcn, call)
            } else {
                rt.forward_train(&gcn, call)
            };
            if rt.faulted() {
                return (0.0, Vec::new(), x_caches, relu_masks);
            }
            let (loss, dl) = rt.loss_and_grad(&logits);
            (loss, dl, x_caches, relu_masks)
        });
        if let Some(e) = rt.fault_error() {
            return Err(e);
        }
        final_loss = loss;
        phases.time(Phase::Backward, || {
            rt.backward(&mut gcn, dl_owned, &x_caches, &relu_masks, call);
        });
        if let Some(e) = rt.fault_error() {
            return Err(e);
        }
        phases.time(Phase::Step, || gcn.step(&mut opt));
        let mut stop = false;
        if cfg.patience.is_some() {
            let before = rt.comm;
            let val = phases.time(Phase::Eval, || {
                rt.in_eval = true;
                let logits = rt.inference_logits(&gcn);
                rt.in_eval = false;
                rt.accuracy_of(&logits, |c| &c.val, ds.splits.val.len())
            });
            if let Some(e) = rt.fault_error() {
                return Err(e);
            }
            // Reclassify the eval pass's traffic so per-epoch training
            // volume stays a clean multiple of the plan.
            eval_comm.halo_bytes += rt.comm.halo_bytes - before.halo_bytes;
            eval_comm.halo_vectors += rt.comm.halo_vectors - before.halo_vectors;
            rt.comm = before;
            stop = stopper.should_stop(val);
        }
        maybe_checkpoint(
            cfg,
            &trainer_name,
            epoch + 1,
            final_loss,
            &stopper,
            stop,
            &opt,
            &mut gcn,
            rt.comm_state.as_ref().map(|s| s as &dyn CkptSidecar),
        )?;
        sgnn_obs::mark_epoch(epoch as u64);
        if stop {
            break;
        }
    }
    let train_secs = t1.elapsed().as_secs_f64();
    let train_comm = rt.comm;
    rt.in_eval = true;
    let logits = rt.inference_logits(&gcn);
    rt.in_eval = false;
    if let Some(e) = rt.fault_error() {
        return Err(e);
    }
    let val_acc = rt.accuracy_of(&logits, |c| &c.val, ds.splits.val.len());
    let test_acc = rt.accuracy_of(&logits, |c| &c.test, ds.splits.test.len());
    eval_comm.halo_bytes += rt.comm.halo_bytes - train_comm.halo_bytes;
    eval_comm.halo_vectors += rt.comm.halo_vectors - train_comm.halo_vectors;
    let epochs_div = session_epochs.max(1) as u64;
    let (bytes_saved, stale_hits, overlap_ns) = rt
        .comm_state
        .as_ref()
        .map(|s| (s.bytes_saved, s.stale_hits, s.overlap_ns))
        .unwrap_or((0, 0, 0));
    if rt.comm_state.is_some() {
        // Effective ratio of exact-equivalent ghost bytes to bytes moved
        // (×1000); stale hits count as moved-for-free, so s > 1 pushes
        // the ratio beyond pure quantization.
        let moved = train_comm.halo_bytes.max(1);
        COMPRESSION_RATIO.set((moved + bytes_saved).saturating_mul(1000) / moved);
    }
    let stats = ShardStats {
        k,
        epochs: epochs_run,
        halo_vectors_per_exchange: plan.halo_vectors(),
        exchanges_per_epoch: 2 * (l as u64 - 1),
        halo_bytes_per_epoch: train_comm.halo_bytes / epochs_div,
        halo_vectors_per_epoch: train_comm.halo_vectors / epochs_div,
        allreduce_bytes_per_epoch: train_comm.allreduce_bytes / epochs_div,
        eval_halo_bytes: eval_comm.halo_bytes,
        nnz_skew: plan.nnz_skew(),
        replication_slots: plan.shards.iter().map(|s| s.n_local() as u64).sum(),
        regime: cfg.comm_regime.label(),
        halo_bytes_saved_per_epoch: bytes_saved / epochs_div,
        stale_hits,
        overlap_ns,
    };
    sgnn_obs::export_now();
    let report = TrainReport {
        name: format!("gcn-shard-k{k}"),
        test_acc,
        val_acc,
        final_loss,
        precompute_secs,
        train_secs,
        peak_mem_bytes: ledger.peak(),
        epochs_run,
        phases,
    };
    Ok((gcn, report, stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trainer::train_full_gcn;
    use sgnn_data::sbm_dataset;
    use sgnn_partition::hash_partition;

    fn weights_equal(a: &Gcn, b: &Gcn) -> bool {
        (0..a.num_layers()).all(|i| {
            let (la, lb) = (a.layer(i), b.layer(i));
            la.w.data().iter().map(|v| v.to_bits()).eq(lb.w.data().iter().map(|v| v.to_bits()))
                && la.b.data().iter().map(|v| v.to_bits()).eq(lb
                    .b
                    .data()
                    .iter()
                    .map(|v| v.to_bits()))
        })
    }

    #[test]
    fn sharded_matches_single_process_bitwise_smoke() {
        let ds = sbm_dataset(300, 3, 8.0, 0.85, 6, 0.8, 0, 0.5, 0.25, 7);
        let cfg = TrainConfig { epochs: 5, hidden: vec![8], ..Default::default() };
        let (ref_gcn, ref_report) = train_full_gcn(&ds, &cfg).unwrap();
        for k in [1usize, 3] {
            let part = hash_partition(ds.num_nodes(), k);
            let (gcn, report, stats) = train_sharded_gcn(&ds, &part, &cfg).unwrap();
            assert_eq!(report.final_loss.to_bits(), ref_report.final_loss.to_bits(), "k={k}");
            assert_eq!(report.test_acc, ref_report.test_acc, "k={k}");
            assert_eq!(report.val_acc, ref_report.val_acc, "k={k}");
            assert_eq!(report.epochs_run, ref_report.epochs_run, "k={k}");
            assert!(weights_equal(&ref_gcn, &gcn), "weight trajectory diverged at k={k}");
            assert_eq!(stats.k, k);
            if k == 1 {
                assert_eq!(stats.halo_bytes_per_epoch, 0, "k=1 has no ghosts");
            } else {
                assert!(stats.halo_bytes_per_epoch > 0);
                assert_eq!(
                    stats.halo_vectors_per_epoch,
                    stats.halo_vectors_per_exchange * stats.exchanges_per_epoch
                );
            }
        }
    }

    #[test]
    fn early_stopping_decisions_match_the_reference() {
        let ds = sbm_dataset(240, 3, 8.0, 0.9, 5, 0.7, 0, 0.5, 0.25, 3);
        let cfg =
            TrainConfig { epochs: 40, hidden: vec![8], patience: Some(4), ..Default::default() };
        let (_, ref_report) = train_full_gcn(&ds, &cfg).unwrap();
        let part = hash_partition(ds.num_nodes(), 2);
        let (_, report, _) = train_sharded_gcn(&ds, &part, &cfg).unwrap();
        assert_eq!(report.epochs_run, ref_report.epochs_run);
        assert_eq!(report.val_acc, ref_report.val_acc);
        assert_eq!(report.final_loss.to_bits(), ref_report.final_loss.to_bits());
    }
}
