//! Trainer checkpoints: what gets saved, and why resume is bitwise-equal.
//!
//! The recovery determinism contract (DESIGN.md §8) rests on one
//! observation: after PR 3/4, *all* randomness in training is stateless —
//! dropout masks are per-element hashes of `(layer seed, epoch, row,
//! col)`, sampler seeds are derived from `(config seed, epoch, batch)`,
//! and cross-row reductions are exact fixed-point folds. The only state
//! that evolves across epochs is therefore:
//!
//! 1. model parameters (slot-ordered tensors),
//! 2. Adam's step counter and per-slot moment buffers,
//! 3. the early stopper's `(best, bad, stopped)`,
//! 4. the epoch counter and last training loss,
//! 5. the model's dropout call counters (each mask is a pure hash of
//!    `(layer seed, call number, element)`, but the call *number* itself
//!    advances once per training forward).
//!
//! Checkpoint exactly that — bit patterns, not decimal strings — and a
//! run resumed at epoch `e` replays epochs `e..` with inputs identical to
//! an uninterrupted run, so losses, accuracies, and final weights match
//! to the bit. The container is [`sgnn_fault::Ckpt`]: CRC-32 per record,
//! written atomically (temp + rename), so the rolling per-trainer file is
//! either the previous epoch's complete checkpoint or this epoch's —
//! never a torn mix.
//!
//! Spans: saves run under `trainer.checkpoint`, restores under
//! `trainer.recover`.

use crate::error::TrainError;
use sgnn_fault::{Ckpt, CkptError};
use sgnn_linalg::DenseMatrix;
use sgnn_nn::optim::Adam;
use std::path::{Path, PathBuf};

/// Models whose parameters are visitable in a stable slot order (the
/// same order their `step` feeds the optimizer). This is the whole
/// model-side checkpoint contract: save writes `param.{slot}` records in
/// visit order, restore copies them back in the same order.
pub trait SlotParams {
    /// Visits every parameter tensor, mutably, in slot order.
    fn visit_params_mut(&mut self, f: &mut dyn FnMut(&mut DenseMatrix));

    /// RNG-stream positions the model carries besides its parameters
    /// (dropout forward-call counters, in layer order). Stateless models
    /// return the empty default.
    fn rng_calls(&self) -> Vec<u64> {
        Vec::new()
    }

    /// Restores the counters reported by [`rng_calls`](Self::rng_calls).
    fn restore_rng_calls(&mut self, _calls: &[u64]) {}
}

/// Extra trainer-side state checkpointed alongside the model — e.g. the
/// compressed-exchange comm state (error-feedback residuals, ghost
/// caches, staleness clocks), which evolves across epochs just like
/// Adam's moments and must survive a kill for compressed resume to be
/// bitwise (DESIGN.md §11). Implementors write namespaced records in
/// [`save`](CkptSidecar::save) and must validate every record against
/// the live state before mutating anything in
/// [`restore`](CkptSidecar::restore).
pub trait CkptSidecar {
    /// Appends this state's records to the epoch checkpoint.
    fn save(&self, c: &mut Ckpt);

    /// Restores the records written by [`save`](CkptSidecar::save);
    /// errors (missing records, shape mismatches) must leave the live
    /// state untouched.
    fn restore(&mut self, c: &Ckpt) -> Result<(), CkptError>;
}

/// Trainer state recovered from a checkpoint.
#[derive(Debug, Clone)]
pub struct ResumeState {
    /// Completed epochs (training resumes at this epoch index).
    pub epoch_done: usize,
    /// Training loss of the last completed epoch.
    pub final_loss: f32,
    /// Early stopper's best validation score (bit-exact f64).
    pub stopper_best: f64,
    /// Early stopper's bad-epoch streak.
    pub stopper_bad: usize,
    /// True when training already stopped early — resume runs no more
    /// epochs (replaying the reference run's break).
    pub stopped: bool,
}

/// The rolling checkpoint file for `trainer` under `dir`.
pub fn ckpt_path(dir: &Path, trainer: &str) -> PathBuf {
    dir.join(format!("{trainer}.ckpt"))
}

/// Saves a post-epoch checkpoint atomically; returns bytes written.
pub fn save_epoch(
    path: &Path,
    trainer: &str,
    state: &ResumeState,
    opt: &Adam,
    model: &mut dyn SlotParams,
    sidecar: Option<&dyn CkptSidecar>,
) -> Result<u64, TrainError> {
    static CKPT_WRITE_NS: sgnn_obs::Histogram = sgnn_obs::Histogram::new("ckpt.write.ns");
    let _sp = sgnn_obs::span!("trainer.checkpoint");
    let _ht = CKPT_WRITE_NS.time();
    let mut c = Ckpt::new();
    c.put_str("meta.trainer", trainer);
    c.put_u64("meta.epoch_done", state.epoch_done as u64);
    c.put_u64("meta.final_loss_bits", state.final_loss.to_bits() as u64);
    c.put_f64("stopper.best", state.stopper_best);
    c.put_u64("stopper.bad", state.stopper_bad as u64);
    c.put_u64("meta.stopped", state.stopped as u64);
    let mut slots = 0u64;
    model.visit_params_mut(&mut |p| {
        c.put_f32s(&format!("param.{slots}"), p.data());
        slots += 1;
    });
    c.put_u64("meta.slots", slots);
    let rng = model.rng_calls();
    c.put_u64("rng.slots", rng.len() as u64);
    for (i, calls) in rng.iter().enumerate() {
        c.put_u64(&format!("rng.calls.{i}"), *calls);
    }
    let (t, m, v) = opt.export_state();
    c.put_u64("adam.t", t as u64);
    for (i, buf) in m.iter().enumerate() {
        c.put_f32s(&format!("adam.m.{i}"), buf);
    }
    for (i, buf) in v.iter().enumerate() {
        c.put_f32s(&format!("adam.v.{i}"), buf);
    }
    c.put_u64("adam.slots", m.len() as u64);
    if let Some(side) = sidecar {
        side.save(&mut c);
    }
    Ok(c.save(path)?)
}

/// Restores a checkpoint into `opt` and `model`.
///
/// Returns `Ok(None)` — cold start — when the file does not exist (the
/// "killed before the first checkpoint" case). Everything else is strict:
/// corruption, a different trainer's checkpoint, or a parameter shape
/// mismatch all error; nothing is partially restored on the error paths
/// that precede the copy-back.
pub fn try_restore(
    path: &Path,
    trainer: &str,
    opt: &mut Adam,
    model: &mut dyn SlotParams,
    sidecar: Option<&mut dyn CkptSidecar>,
) -> Result<Option<ResumeState>, TrainError> {
    let _sp = sgnn_obs::span!("trainer.recover");
    let c = match Ckpt::load(path) {
        Ok(c) => c,
        Err(CkptError::Io(e)) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(e.into()),
    };
    let found = c.str_("meta.trainer")?.to_string();
    if found != trainer {
        return Err(TrainError::CheckpointMismatch { expected: trainer.to_string(), found });
    }
    // Validate every parameter record against the live model before
    // touching any tensor, so a shape mismatch cannot half-restore.
    let mut shapes = Vec::new();
    model.visit_params_mut(&mut |p| shapes.push(p.data().len()));
    let slots = c.u64("meta.slots")? as usize;
    if slots != shapes.len() {
        return Err(TrainError::CheckpointMismatch {
            expected: format!("{} param slots", shapes.len()),
            found: format!("{slots} param slots"),
        });
    }
    let mut params = Vec::with_capacity(slots);
    for (i, &len) in shapes.iter().enumerate() {
        let vals = c.f32s(&format!("param.{i}"))?;
        if vals.len() != len {
            return Err(TrainError::CheckpointMismatch {
                expected: format!("param.{i} with {len} values"),
                found: format!("{} values", vals.len()),
            });
        }
        params.push(vals);
    }
    let rng_slots = c.u64("rng.slots")? as usize;
    if rng_slots != model.rng_calls().len() {
        return Err(TrainError::CheckpointMismatch {
            expected: format!("{} rng slots", model.rng_calls().len()),
            found: format!("{rng_slots} rng slots"),
        });
    }
    let mut rng = Vec::with_capacity(rng_slots);
    for i in 0..rng_slots {
        rng.push(c.u64(&format!("rng.calls.{i}"))?);
    }
    let adam_slots = c.u64("adam.slots")? as usize;
    let mut m = Vec::with_capacity(adam_slots);
    let mut v = Vec::with_capacity(adam_slots);
    for i in 0..adam_slots {
        m.push(c.f32s(&format!("adam.m.{i}"))?);
        v.push(c.f32s(&format!("adam.v.{i}"))?);
    }
    let state = ResumeState {
        epoch_done: c.u64("meta.epoch_done")? as usize,
        final_loss: f32::from_bits(c.u64("meta.final_loss_bits")? as u32),
        stopper_best: c.f64("stopper.best")?,
        stopper_bad: c.u64("stopper.bad")? as usize,
        stopped: c.u64("meta.stopped")? != 0,
    };
    let t = c.u64("adam.t")? as i32;
    // Sidecar restores before the model copy-back: its contract is
    // validate-then-copy, so a sidecar error leaves model and optimizer
    // untouched, and a sidecar success cannot be followed by a failure.
    if let Some(side) = sidecar {
        side.restore(&c)?;
    }
    // All records verified — copy back.
    let mut it = params.into_iter();
    model.visit_params_mut(&mut |p| {
        let vals = it.next().expect("slot count validated");
        p.data_mut().copy_from_slice(&vals);
    });
    model.restore_rng_calls(&rng);
    opt.restore_state(t, m, v);
    Ok(Some(state))
}

impl SlotParams for crate::models::gcn::Gcn {
    fn visit_params_mut(&mut self, f: &mut dyn FnMut(&mut DenseMatrix)) {
        crate::models::gcn::Gcn::visit_params_mut(self, f)
    }

    fn rng_calls(&self) -> Vec<u64> {
        self.dropout_calls()
    }

    fn restore_rng_calls(&mut self, calls: &[u64]) {
        self.restore_dropout_calls(calls)
    }
}

impl SlotParams for crate::models::sage::Sage {
    fn visit_params_mut(&mut self, f: &mut dyn FnMut(&mut DenseMatrix)) {
        crate::models::sage::Sage::visit_params_mut(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models::gcn::{Gcn, GcnConfig};

    fn tmp(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!("sgnn_core_ckpt_{}_{tag}.ckpt", std::process::id()))
    }

    fn bits_of(g: &mut Gcn) -> Vec<u32> {
        let mut out = Vec::new();
        g.visit_params_mut(&mut |p| out.extend(p.data().iter().map(|v| v.to_bits())));
        out
    }

    #[test]
    fn save_restore_round_trips_model_and_adam() {
        let path = tmp("roundtrip");
        let mut src = Gcn::new(5, 3, &GcnConfig { hidden: vec![4], dropout: 0.1, seed: 11 });
        let opt = Adam::new(0.01);
        // Give Adam some non-trivial state.
        src.visit_params_mut(&mut |p| {
            for (i, v) in p.data_mut().iter_mut().enumerate() {
                *v += (i as f32) * 1e-3;
            }
        });
        let state = ResumeState {
            epoch_done: 9,
            final_loss: 0.4375,
            stopper_best: 0.87,
            stopper_bad: 2,
            stopped: false,
        };
        save_epoch(&path, "gcn-full", &state, &opt, &mut src, None).unwrap();

        let mut dst = Gcn::new(5, 3, &GcnConfig { hidden: vec![4], dropout: 0.1, seed: 999 });
        let mut opt2 = Adam::new(0.01);
        let back =
            try_restore(&path, "gcn-full", &mut opt2, &mut dst, None).unwrap().expect("present");
        assert_eq!(back.epoch_done, 9);
        assert_eq!(back.final_loss.to_bits(), 0.4375f32.to_bits());
        assert_eq!(back.stopper_best.to_bits(), 0.87f64.to_bits());
        assert_eq!(back.stopper_bad, 2);
        assert!(!back.stopped);
        assert_eq!(bits_of(&mut src), bits_of(&mut dst), "weights must round-trip bit-exact");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn missing_file_is_cold_start() {
        let mut g = Gcn::new(3, 2, &GcnConfig::default());
        let mut opt = Adam::new(0.01);
        let r =
            try_restore(Path::new("/nonexistent/dir/x.ckpt"), "gcn-full", &mut opt, &mut g, None)
                .unwrap();
        assert!(r.is_none());
    }

    #[test]
    fn wrong_trainer_is_a_mismatch() {
        let path = tmp("mismatch");
        let mut g = Gcn::new(3, 2, &GcnConfig { hidden: vec![2], dropout: 0.0, seed: 1 });
        let mut opt = Adam::new(0.01);
        let st = ResumeState {
            epoch_done: 1,
            final_loss: 1.0,
            stopper_best: f64::NEG_INFINITY,
            stopper_bad: 0,
            stopped: false,
        };
        save_epoch(&path, "gcn-full", &st, &opt, &mut g, None).unwrap();
        let before = bits_of(&mut g);
        let err = try_restore(&path, "saint-rw", &mut opt, &mut g, None).unwrap_err();
        assert!(matches!(err, TrainError::CheckpointMismatch { .. }), "{err:?}");
        assert_eq!(bits_of(&mut g), before, "failed restore must not touch the model");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn shape_mismatch_does_not_half_restore() {
        let path = tmp("shape");
        let mut small = Gcn::new(3, 2, &GcnConfig { hidden: vec![2], dropout: 0.0, seed: 1 });
        let mut opt = Adam::new(0.01);
        let st = ResumeState {
            epoch_done: 3,
            final_loss: 1.0,
            stopper_best: 0.0,
            stopper_bad: 0,
            stopped: false,
        };
        save_epoch(&path, "gcn-full", &st, &opt, &mut small, None).unwrap();
        let mut big = Gcn::new(6, 4, &GcnConfig { hidden: vec![8], dropout: 0.0, seed: 2 });
        let before = bits_of(&mut big);
        let err = try_restore(&path, "gcn-full", &mut opt, &mut big, None).unwrap_err();
        assert!(matches!(err, TrainError::CheckpointMismatch { .. }), "{err:?}");
        assert_eq!(bits_of(&mut big), before);
        let _ = std::fs::remove_file(&path);
    }
}
