//! Analytic peak-memory accounting.
//!
//! Substitute for the GPU-memory axis of the survey's "Limited Memory"
//! challenge (§3.1.3): instead of timing CUDA OOMs, every trainer charges
//! the ledger for each matrix it materializes and releases what it frees.
//! The resulting peak is exact for our implementations and — because it
//! counts *what must be resident* — comparable across methods in the way
//! the survey compares them.

/// A simple high-water-mark allocator ledger.
#[derive(Debug, Clone, Default)]
pub struct Ledger {
    current: usize,
    peak: usize,
}

impl Ledger {
    /// Fresh ledger.
    pub fn new() -> Self {
        Ledger::default()
    }

    /// Charges `bytes` of resident memory.
    pub fn alloc(&mut self, bytes: usize) {
        self.current += bytes;
        self.peak = self.peak.max(self.current);
    }

    /// Releases `bytes` (saturating).
    pub fn free(&mut self, bytes: usize) {
        self.current = self.current.saturating_sub(bytes);
    }

    /// Charges a transient allocation: bumps the peak but not the steady
    /// state (alloc immediately followed by free).
    pub fn transient(&mut self, bytes: usize) {
        self.peak = self.peak.max(self.current + bytes);
    }

    /// Currently-charged bytes.
    pub fn current(&self) -> usize {
        self.current
    }

    /// Peak charged bytes.
    pub fn peak(&self) -> usize {
        self.peak
    }
}

/// Bytes of an `rows × cols` f32 matrix.
pub fn matrix_bytes(rows: usize, cols: usize) -> usize {
    rows * cols * std::mem::size_of::<f32>()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn peak_tracks_high_water_mark() {
        let mut l = Ledger::new();
        l.alloc(100);
        l.alloc(50);
        l.free(120);
        l.alloc(10);
        assert_eq!(l.current(), 40);
        assert_eq!(l.peak(), 150);
    }

    #[test]
    fn transient_bumps_peak_only() {
        let mut l = Ledger::new();
        l.alloc(100);
        l.transient(500);
        assert_eq!(l.current(), 100);
        assert_eq!(l.peak(), 600);
    }

    #[test]
    fn free_saturates() {
        let mut l = Ledger::new();
        l.alloc(10);
        l.free(100);
        assert_eq!(l.current(), 0);
    }

    #[test]
    fn matrix_bytes_formula() {
        assert_eq!(matrix_bytes(10, 8), 320);
    }
}
