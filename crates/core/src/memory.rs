//! Analytic peak-memory accounting, with an optional enforced budget.
//!
//! Substitute for the GPU-memory axis of the survey's "Limited Memory"
//! challenge (§3.1.3): instead of timing CUDA OOMs, every trainer charges
//! the ledger for each matrix it materializes and releases what it frees.
//! The resulting peak is exact for our implementations and — because it
//! counts *what must be resident* — comparable across methods in the way
//! the survey compares them.
//!
//! A ledger may additionally carry a **byte budget** (explicit via
//! [`Ledger::budgeted`], from the environment via `SGNN_MEM_BUDGET`, or
//! injected by a fault plan). The checked entry points
//! [`try_alloc`](Ledger::try_alloc) / [`try_transient`](Ledger::try_transient)
//! refuse to grow past the budget and return [`BudgetExceeded`] — which
//! trainers surface as `TrainError::BudgetExceeded` instead of aborting.
//! This is the graceful-degradation half of the "limited memory" story:
//! an overcommitted run fails *cleanly and early*, with the exact
//! requested/resident/budget numbers attached.

/// A checked charge was refused: `current + requested` would exceed the
/// budget. All numbers are bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BudgetExceeded {
    /// Bytes the refused charge asked for.
    pub requested: usize,
    /// Bytes resident at the time of the refusal.
    pub current: usize,
    /// The enforced budget.
    pub budget: usize,
}

impl std::fmt::Display for BudgetExceeded {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "memory budget exceeded: requested {} bytes with {} resident (budget {})",
            self.requested, self.current, self.budget
        )
    }
}

impl std::error::Error for BudgetExceeded {}

// Every ledger mirrors its accounting into two global gauges so memory
// shows up in metric exports without reading a `TrainReport`:
// `mem.ledger.peak_bytes` is the high-water mark across all ledgers in
// the process; `mem.ledger.current_bytes` is the latest residency
// reported by whichever ledger moved last (a level, so it can go down).
static LEDGER_PEAK: sgnn_obs::Gauge = sgnn_obs::Gauge::new("mem.ledger.peak_bytes");
static LEDGER_CURRENT: sgnn_obs::Gauge = sgnn_obs::Gauge::new("mem.ledger.current_bytes");

/// A simple high-water-mark allocator ledger, optionally budget-capped.
#[derive(Debug, Clone, Default)]
pub struct Ledger {
    current: usize,
    peak: usize,
    budget: Option<usize>,
}

impl Ledger {
    /// Fresh, unbudgeted ledger.
    pub fn new() -> Self {
        Ledger::default()
    }

    /// Ledger enforcing the tighter of `explicit` and the
    /// `SGNN_MEM_BUDGET` environment variable (see [`env_budget`]).
    /// `None`/unset means unlimited.
    pub fn budgeted(explicit: Option<usize>) -> Self {
        let budget = match (explicit, env_budget()) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        };
        Ledger { current: 0, peak: 0, budget }
    }

    /// The enforced budget, if any.
    pub fn budget(&self) -> Option<usize> {
        self.budget
    }

    /// Charges `bytes` of resident memory (unchecked — never fails, even
    /// past the budget; use [`try_alloc`](Ledger::try_alloc) on paths
    /// that must degrade gracefully).
    pub fn alloc(&mut self, bytes: usize) {
        self.current += bytes;
        self.peak = self.peak.max(self.current);
        LEDGER_CURRENT.set(self.current as u64);
        LEDGER_PEAK.record(self.peak as u64);
    }

    /// Checked [`alloc`](Ledger::alloc): refuses (without charging) if
    /// the charge would push residency past the budget.
    pub fn try_alloc(&mut self, bytes: usize) -> Result<(), BudgetExceeded> {
        self.check(bytes)?;
        self.alloc(bytes);
        Ok(())
    }

    /// Releases `bytes` (saturating).
    pub fn free(&mut self, bytes: usize) {
        self.current = self.current.saturating_sub(bytes);
        LEDGER_CURRENT.set(self.current as u64);
    }

    /// Charges a transient allocation: bumps the peak but not the steady
    /// state (alloc immediately followed by free).
    pub fn transient(&mut self, bytes: usize) {
        self.peak = self.peak.max(self.current + bytes);
        LEDGER_PEAK.record(self.peak as u64);
    }

    /// Checked [`transient`](Ledger::transient): the transient must fit
    /// under the budget *on top of* current residency.
    pub fn try_transient(&mut self, bytes: usize) -> Result<(), BudgetExceeded> {
        self.check(bytes)?;
        self.transient(bytes);
        Ok(())
    }

    fn check(&self, bytes: usize) -> Result<(), BudgetExceeded> {
        if let Some(budget) = self.budget {
            if self.current.saturating_add(bytes) > budget {
                return Err(BudgetExceeded { requested: bytes, current: self.current, budget });
            }
        }
        Ok(())
    }

    /// Currently-charged bytes.
    pub fn current(&self) -> usize {
        self.current
    }

    /// Peak charged bytes.
    pub fn peak(&self) -> usize {
        self.peak
    }
}

/// Parses `SGNN_MEM_BUDGET` into bytes. Accepts a plain integer or a
/// `K`/`M`/`G` suffix (case-insensitive, powers of 1024): `64M`,
/// `1048576`, `2g`. Unset, empty, `0`, or unparseable mean "no budget".
pub fn env_budget() -> Option<usize> {
    parse_budget(&std::env::var("SGNN_MEM_BUDGET").ok()?)
}

pub(crate) fn parse_budget(s: &str) -> Option<usize> {
    let s = s.trim();
    if s.is_empty() {
        return None;
    }
    let (digits, mult): (&str, usize) = match s.as_bytes()[s.len() - 1].to_ascii_lowercase() {
        b'k' => (&s[..s.len() - 1], 1 << 10),
        b'm' => (&s[..s.len() - 1], 1 << 20),
        b'g' => (&s[..s.len() - 1], 1 << 30),
        _ => (s, 1),
    };
    let n: usize = digits.trim().parse().ok()?;
    if n == 0 {
        return None;
    }
    n.checked_mul(mult)
}

/// Bytes of an `rows × cols` f32 matrix.
pub fn matrix_bytes(rows: usize, cols: usize) -> usize {
    rows * cols * std::mem::size_of::<f32>()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn peak_tracks_high_water_mark() {
        let mut l = Ledger::new();
        l.alloc(100);
        l.alloc(50);
        l.free(120);
        l.alloc(10);
        assert_eq!(l.current(), 40);
        assert_eq!(l.peak(), 150);
    }

    #[test]
    fn transient_bumps_peak_only() {
        let mut l = Ledger::new();
        l.alloc(100);
        l.transient(500);
        assert_eq!(l.current(), 100);
        assert_eq!(l.peak(), 600);
    }

    #[test]
    fn free_saturates() {
        let mut l = Ledger::new();
        l.alloc(10);
        l.free(100);
        assert_eq!(l.current(), 0);
    }

    #[test]
    fn matrix_bytes_formula() {
        assert_eq!(matrix_bytes(10, 8), 320);
    }

    #[test]
    fn ledger_mirrors_into_obs_gauges() {
        // Other tests in this binary may run ledgers concurrently, so
        // assert lower bounds, not exact equality, on the global gauges.
        sgnn_obs::enable();
        let mut l = Ledger::new();
        l.alloc(4096);
        l.transient(1024);
        let report = sgnn_obs::report();
        let peak = report.gauges.iter().find(|g| g.name == "mem.ledger.peak_bytes");
        assert!(peak.is_some_and(|g| g.value >= 5120), "peak gauge: {peak:?}");
        let current = report.gauges.iter().find(|g| g.name == "mem.ledger.current_bytes");
        assert!(current.is_some(), "current gauge registered");
        l.free(4096);
        sgnn_obs::disable();
    }

    #[test]
    fn try_alloc_enforces_budget_boundary() {
        let mut l = Ledger::budgeted(Some(100));
        assert_eq!(l.budget(), Some(100));
        l.try_alloc(60).unwrap();
        l.try_alloc(40).unwrap(); // exactly at the budget is allowed
        let err = l.try_alloc(1).unwrap_err();
        assert_eq!(err, BudgetExceeded { requested: 1, current: 100, budget: 100 });
        // The refused charge must not have been applied.
        assert_eq!(l.current(), 100);
        assert_eq!(l.peak(), 100);
        // Freeing makes room again.
        l.free(50);
        l.try_alloc(30).unwrap();
        assert_eq!(l.current(), 80);
    }

    #[test]
    fn try_transient_respects_residency() {
        let mut l = Ledger::budgeted(Some(100));
        l.try_alloc(70).unwrap();
        l.try_transient(30).unwrap();
        assert_eq!(l.peak(), 100);
        let err = l.try_transient(31).unwrap_err();
        assert_eq!(err.current, 70);
        assert_eq!(l.peak(), 100, "refused transient must not move the peak");
    }

    #[test]
    fn unbudgeted_try_calls_always_succeed() {
        let mut l = Ledger::new();
        l.try_alloc(usize::MAX / 2).unwrap();
        l.try_transient(usize::MAX / 4).unwrap();
    }

    #[test]
    fn budget_parsing_accepts_suffixes() {
        assert_eq!(parse_budget("1048576"), Some(1 << 20));
        assert_eq!(parse_budget("64k"), Some(64 << 10));
        assert_eq!(parse_budget("64K"), Some(64 << 10));
        assert_eq!(parse_budget(" 3M "), Some(3 << 20));
        assert_eq!(parse_budget("2g"), Some(2 << 30));
        assert_eq!(parse_budget("0"), None);
        assert_eq!(parse_budget(""), None);
        assert_eq!(parse_budget("lots"), None);
    }

    #[test]
    fn explicit_and_env_budgets_take_the_min() {
        // Explicit only (env not set in unit tests).
        let l = Ledger::budgeted(Some(123));
        assert_eq!(l.budget(), Some(123));
        let l = Ledger::budgeted(None);
        assert!(l.budget().is_none() || l.budget().is_some()); // env-dependent; no panic
    }
}
