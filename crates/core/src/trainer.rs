//! Training loops — one per scalability family, all producing a common
//! [`TrainReport`] with accuracy, wall time, and peak-memory accounting.
//!
//! | trainer | family | survey anchor |
//! |---|---|---|
//! | [`train_full_gcn`] | full-graph message passing | §3.1.1 baseline |
//! | [`train_decoupled`] | decoupled precompute + MLP | §3.1.2, APPNP/SGC/SCARA/LD2 |
//! | [`train_sampled`] | neighbor-sampled mini-batch | §3.1.2/§3.3.2, GraphSAGE/LADIES/LABOR |
//! | [`train_saint`] | subgraph sampling | §3.3.2, GraphSAINT |
//! | [`train_cluster_gcn`] | partition batches | §3.1.2, Cluster-GCN |
//! | [`train_coarse`] | coarse-graph training | §3.3.4 |

use crate::ckpt::{ckpt_path, save_epoch, try_restore, CkptSidecar, ResumeState, SlotParams};
use crate::error::{TrainError, TrainResult};
use crate::memory::{matrix_bytes, Ledger};
use crate::models::decoupled::{DecoupledModel, PrecomputeMethod};
use crate::models::gcn::{gcn_operator, Gcn, GcnConfig};
use crate::models::sage::Sage;
use crate::shard_comm::CommRegime;
use sgnn_data::Dataset;
use sgnn_fault::FaultPlan;
use sgnn_graph::NodeId;
use sgnn_linalg::DenseMatrix;
use sgnn_nn::loss::{accuracy, softmax_cross_entropy};
use sgnn_nn::optim::Adam;
use sgnn_obs::{Phase, PhaseBreakdown};
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Instant;

/// Shared hyperparameters.
#[derive(Debug, Clone)]
pub struct TrainConfig {
    /// Training epochs.
    pub epochs: usize,
    /// Adam learning rate.
    pub lr: f32,
    /// L2 weight decay.
    pub weight_decay: f32,
    /// Mini-batch size (where applicable).
    pub batch_size: usize,
    /// Hidden widths.
    pub hidden: Vec<usize>,
    /// Dropout.
    pub dropout: f32,
    /// Seed for weights/sampling.
    pub seed: u64,
    /// Early stopping: stop after this many epochs without validation
    /// improvement (`None` disables). Halts training in place — no
    /// best-weight rollback — so values below ~10 can stop inside the
    /// optimizer's warmup.
    pub patience: Option<usize>,
    /// Overlap batch sampling with compute via the
    /// [`crate::pipeline::BatchPipeline`] (mini-batch trainers only).
    /// Results are bitwise identical either way; with a single configured
    /// thread the trainers fall back to the inline path regardless.
    pub prefetch: bool,
    /// Directory for rolling post-epoch checkpoints (one
    /// `<trainer>.ckpt` file per trainer, atomically replaced each
    /// epoch). `None` disables checkpointing.
    pub ckpt_dir: Option<PathBuf>,
    /// Checkpoint file to restore before training. A missing file is a
    /// cold start (the killed-before-first-checkpoint case); a corrupt
    /// or mismatched file is an error. Resumed runs reproduce the
    /// uninterrupted run bit-for-bit (DESIGN.md §8).
    pub resume_from: Option<PathBuf>,
    /// Deterministic fault injector polled at epoch/superstep/batch
    /// boundaries (tests and chaos drills). `None` means no polls — and
    /// no checksum-verification overhead on the halo path.
    pub fault_plan: Option<Arc<FaultPlan>>,
    /// Explicit memory budget in bytes; combined (min) with
    /// `SGNN_MEM_BUDGET` and any fault-plan budget. Exceeding it makes
    /// trainers return [`TrainError::BudgetExceeded`].
    pub mem_budget: Option<usize>,
    /// Halo-exchange regime for [`crate::shard::train_sharded_gcn`]:
    /// `Exact` (default, bitwise-identical to the reference) or
    /// `Compressed` (quantized / stale-tolerant / overlapped, DESIGN.md
    /// §11). Ignored by the single-process trainers.
    pub comm_regime: CommRegime,
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig {
            epochs: 60,
            lr: 0.01,
            weight_decay: 5e-5,
            batch_size: 256,
            hidden: vec![32],
            dropout: 0.2,
            seed: 0,
            patience: None,
            prefetch: true,
            ckpt_dir: None,
            resume_from: None,
            fault_plan: None,
            mem_budget: None,
            comm_regime: CommRegime::Exact,
        }
    }
}

/// Ledger with the effective budget: the tightest of the config budget,
/// the fault plan's simulated budget, and `SGNN_MEM_BUDGET`.
pub(crate) fn build_ledger(cfg: &TrainConfig) -> Ledger {
    let plan_budget = cfg.fault_plan.as_ref().and_then(|p| p.budget()).map(|b| b as usize);
    let explicit = match (cfg.mem_budget, plan_budget) {
        (Some(a), Some(b)) => Some(a.min(b)),
        (a, b) => a.or(b),
    };
    Ledger::budgeted(explicit)
}

/// Guards the argmax paths: a dataset with zero classes would make every
/// per-row argmax undefined. Checked once at trainer entry so the inner
/// loops can assume `num_classes ≥ 1`.
pub(crate) fn ensure_classes(ds: &Dataset) -> TrainResult<()> {
    if ds.num_classes == 0 {
        return Err(TrainError::EmptyLogits);
    }
    Ok(())
}

/// Polls the fault plan's epoch-kill site.
pub(crate) fn poll_epoch_kill(cfg: &TrainConfig, epoch: usize) -> TrainResult<()> {
    if let Some(plan) = &cfg.fault_plan {
        if plan.poll_kill_epoch(epoch) {
            return Err(TrainError::InjectedCrash { site: "epoch", at: epoch as u64 });
        }
    }
    Ok(())
}

/// Loads `cfg.resume_from` (if set) into the optimizer/model and applies
/// the recovered counters. Returns the epoch to resume at.
pub(crate) fn apply_resume(
    cfg: &TrainConfig,
    trainer: &str,
    opt: &mut Adam,
    model: &mut dyn SlotParams,
    sidecar: Option<&mut dyn CkptSidecar>,
    stopper: &mut EarlyStopper,
    epochs_run: &mut usize,
    final_loss: &mut f32,
) -> TrainResult<usize> {
    let Some(path) = &cfg.resume_from else { return Ok(0) };
    let Some(st) = try_restore(path, trainer, opt, model, sidecar)? else { return Ok(0) };
    stopper.restore(st.stopper_best, st.stopper_bad);
    *epochs_run = st.epoch_done;
    *final_loss = st.final_loss;
    // A run that already stopped early replays its break: no more epochs.
    Ok(if st.stopped { usize::MAX } else { st.epoch_done })
}

/// Writes the rolling post-epoch checkpoint when `cfg.ckpt_dir` is set.
pub(crate) fn maybe_checkpoint(
    cfg: &TrainConfig,
    trainer: &str,
    epoch_done: usize,
    final_loss: f32,
    stopper: &EarlyStopper,
    stopped: bool,
    opt: &Adam,
    model: &mut dyn SlotParams,
    sidecar: Option<&dyn CkptSidecar>,
) -> TrainResult<()> {
    let Some(dir) = &cfg.ckpt_dir else { return Ok(()) };
    let (best, bad) = stopper.state();
    let state =
        ResumeState { epoch_done, final_loss, stopper_best: best, stopper_bad: bad, stopped };
    let bytes = save_epoch(&ckpt_path(dir, trainer), trainer, &state, opt, model, sidecar)?;
    sgnn_fault::record_ckpt_bytes(bytes);
    Ok(())
}

/// Validation-accuracy early stopper shared by the trainers.
pub(crate) struct EarlyStopper {
    patience: Option<usize>,
    best: f64,
    bad: usize,
}

impl EarlyStopper {
    pub(crate) fn new(patience: Option<usize>) -> Self {
        EarlyStopper { patience, best: f64::NEG_INFINITY, bad: 0 }
    }

    /// `(best, bad)` for checkpointing.
    pub(crate) fn state(&self) -> (f64, usize) {
        (self.best, self.bad)
    }

    /// Restores checkpointed `(best, bad)` — bit-exact, so a resumed run
    /// makes the same stop decisions as the uninterrupted one.
    pub(crate) fn restore(&mut self, best: f64, bad: usize) {
        self.best = best;
        self.bad = bad;
    }

    /// Records a validation score; returns `true` when training should
    /// stop.
    pub(crate) fn should_stop(&mut self, val: f64) -> bool {
        let Some(p) = self.patience else { return false };
        if val > self.best + 1e-9 {
            self.best = val;
            self.bad = 0;
            false
        } else {
            self.bad += 1;
            self.bad >= p
        }
    }
}

/// Outcome of one training run.
#[derive(Debug, Clone)]
pub struct TrainReport {
    /// Method label for tables.
    pub name: String,
    /// Final test accuracy.
    pub test_acc: f64,
    /// Final validation accuracy.
    pub val_acc: f64,
    /// Final training loss.
    pub final_loss: f32,
    /// Graph-side precompute seconds (0 for coupled models).
    pub precompute_secs: f64,
    /// Training-loop seconds.
    pub train_secs: f64,
    /// Peak resident bytes charged to the memory ledger.
    pub peak_mem_bytes: usize,
    /// Epochs executed.
    pub epochs_run: usize,
    /// Wall-clock seconds per phase, summed over the whole run.
    pub phases: PhaseBreakdown,
}

serde::impl_serialize!(TrainReport {
    name,
    test_acc,
    val_acc,
    final_loss,
    precompute_secs,
    train_secs,
    peak_mem_bytes,
    epochs_run,
    phases
});

fn rows_of(nodes: &[NodeId]) -> Vec<usize> {
    nodes.iter().map(|&u| u as usize).collect()
}

/// Trains a full-batch GCN (experiment baseline).
pub fn train_full_gcn(ds: &Dataset, cfg: &TrainConfig) -> TrainResult<(Gcn, TrainReport)> {
    ensure_classes(ds)?;
    let mut ledger = build_ledger(cfg);
    let t0 = Instant::now();
    let op = gcn_operator(&ds.graph);
    let precompute_secs = t0.elapsed().as_secs_f64();
    ledger.try_alloc(op.nbytes())?;
    ledger.try_alloc(ds.features.nbytes())?;
    let mut gcn = Gcn::new(
        ds.feature_dim(),
        ds.num_classes,
        &GcnConfig { hidden: cfg.hidden.clone(), dropout: cfg.dropout, seed: cfg.seed },
    );
    // Full-batch training keeps every layer activation resident.
    ledger.try_transient(gcn.step_bytes(ds.num_nodes(), ds.feature_dim()))?;
    let mut opt = Adam::new(cfg.lr).with_weight_decay(cfg.weight_decay);
    let train_rows = rows_of(&ds.splits.train);
    let train_labels = ds.labels_of(&ds.splits.train);
    let n = ds.num_nodes();
    let t1 = Instant::now();
    let mut final_loss = 0f32;
    let mut stopper = EarlyStopper::new(cfg.patience);
    let mut epochs_run = 0usize;
    let mut phases = PhaseBreakdown::new();
    let start_epoch = apply_resume(
        cfg,
        "gcn-full",
        &mut opt,
        &mut gcn,
        None,
        &mut stopper,
        &mut epochs_run,
        &mut final_loss,
    )?;
    for epoch in start_epoch..cfg.epochs {
        poll_epoch_kill(cfg, epoch)?;
        let _ep = sgnn_obs::span!("trainer.epoch");
        epochs_run += 1;
        let (loss, dl_batch) = phases.time(Phase::Forward, || {
            let logits = gcn.forward(&op, &ds.features);
            let batch = logits.gather_rows(&train_rows);
            softmax_cross_entropy(&batch, &train_labels, None)
        });
        final_loss = loss;
        phases.time(Phase::Backward, || {
            let mut dl = DenseMatrix::zeros(n, ds.num_classes);
            dl.scatter_rows(&train_rows, &dl_batch);
            gcn.zero_grad();
            gcn.backward(&op, &dl);
        });
        phases.time(Phase::Step, || gcn.step(&mut opt));
        let mut stop = false;
        if cfg.patience.is_some() {
            let val = phases.time(Phase::Eval, || {
                let logits = gcn.forward_inference(&op, &ds.features);
                accuracy(
                    &logits.gather_rows(&rows_of(&ds.splits.val)),
                    &ds.labels_of(&ds.splits.val),
                )
            });
            stop = stopper.should_stop(val);
        }
        maybe_checkpoint(
            cfg,
            "gcn-full",
            epoch + 1,
            final_loss,
            &stopper,
            stop,
            &opt,
            &mut gcn,
            None,
        )?;
        sgnn_obs::mark_epoch(epoch as u64);
        if stop {
            break;
        }
    }
    let train_secs = t1.elapsed().as_secs_f64();
    let logits = gcn.forward_inference(&op, &ds.features);
    let val_acc =
        accuracy(&logits.gather_rows(&rows_of(&ds.splits.val)), &ds.labels_of(&ds.splits.val));
    let test_acc =
        accuracy(&logits.gather_rows(&rows_of(&ds.splits.test)), &ds.labels_of(&ds.splits.test));
    sgnn_obs::export_now();
    let report = TrainReport {
        name: "gcn-full".into(),
        test_acc,
        val_acc,
        final_loss,
        precompute_secs,
        train_secs,
        peak_mem_bytes: ledger.peak(),
        epochs_run,
        phases,
    };
    Ok((gcn, report))
}

/// Trains a decoupled model (precompute + mini-batch MLP).
pub fn train_decoupled(
    ds: &Dataset,
    method: &PrecomputeMethod,
    cfg: &TrainConfig,
) -> TrainResult<(DecoupledModel, TrainReport)> {
    ensure_classes(ds)?;
    let mut ledger = build_ledger(cfg);
    let t0 = Instant::now();
    let mut model = DecoupledModel::new(ds, method, &cfg.hidden, cfg.dropout, cfg.seed);
    let precompute_secs = t0.elapsed().as_secs_f64();
    // The embedding is the only graph-scale resident object; training
    // touches batch-sized slices.
    ledger.try_alloc(model.embedding.nbytes())?;
    ledger.try_transient(
        matrix_bytes(cfg.batch_size, model.embedding.cols())
            + matrix_bytes(cfg.batch_size, ds.num_classes)
            + model.mlp.nbytes(),
    )?;
    let mut opt = Adam::new(cfg.lr).with_weight_decay(cfg.weight_decay);
    let t1 = Instant::now();
    let mut final_loss = 0f32;
    let mut stopper = EarlyStopper::new(cfg.patience);
    let mut epochs_run = 0usize;
    let mut phases = PhaseBreakdown::new();
    for epoch in 0..cfg.epochs {
        poll_epoch_kill(cfg, epoch)?;
        let _ep = sgnn_obs::span!("trainer.epoch");
        epochs_run += 1;
        for chunk in ds.splits.train.chunks(cfg.batch_size) {
            let x = phases.time(Phase::Sample, || {
                let rows = rows_of(chunk);
                model.embedding.gather_rows(&rows)
            });
            let (loss, dl) = phases.time(Phase::Forward, || {
                let logits = model.mlp.forward(&x);
                softmax_cross_entropy(&logits, &ds.labels_of(chunk), None)
            });
            final_loss = loss;
            phases.time(Phase::Backward, || {
                model.mlp.zero_grad();
                model.mlp.backward(&dl);
            });
            phases.time(Phase::Step, || model.mlp.step(&mut opt));
        }
        let mut stop = false;
        if cfg.patience.is_some() {
            let val = phases.time(Phase::Eval, || {
                accuracy(&model.logits_for(&ds.splits.val), &ds.labels_of(&ds.splits.val))
            });
            stop = stopper.should_stop(val);
        }
        sgnn_obs::mark_epoch(epoch as u64);
        if stop {
            break;
        }
    }
    let train_secs = t1.elapsed().as_secs_f64();
    let val_acc = accuracy(&model.logits_for(&ds.splits.val), &ds.labels_of(&ds.splits.val));
    let test_acc = accuracy(&model.logits_for(&ds.splits.test), &ds.labels_of(&ds.splits.test));
    let name = match method {
        PrecomputeMethod::None => "mlp-raw".to_string(),
        PrecomputeMethod::Sgc { k } => format!("sgc-k{k}"),
        PrecomputeMethod::Appnp { .. } => "appnp".to_string(),
        PrecomputeMethod::Scara { .. } => "scara-push".to_string(),
        PrecomputeMethod::Heat { .. } => "heat".to_string(),
        PrecomputeMethod::Ld2(_) => "ld2".to_string(),
    };
    sgnn_obs::export_now();
    let report = TrainReport {
        name,
        test_acc,
        val_acc,
        final_loss,
        precompute_secs,
        train_secs,
        peak_mem_bytes: ledger.peak(),
        epochs_run,
        phases,
    };
    Ok((model, report))
}

/// Neighbor-sampling strategy for [`train_sampled`].
#[derive(Debug, Clone)]
pub enum SamplerKind {
    /// GraphSAGE node-wise fanouts (outermost layer first).
    NodeWise(Vec<usize>),
    /// LADIES layer sizes.
    LayerWise(Vec<usize>),
    /// LABOR fanouts.
    Labor(Vec<usize>),
}

impl SamplerKind {
    fn layers(&self) -> usize {
        match self {
            SamplerKind::NodeWise(f) | SamplerKind::LayerWise(f) | SamplerKind::Labor(f) => f.len(),
        }
    }

    fn sample(
        &self,
        g: &sgnn_graph::CsrGraph,
        targets: &[NodeId],
        seed: u64,
    ) -> Vec<sgnn_sample::Block> {
        match self {
            SamplerKind::NodeWise(f) => sgnn_sample::node_wise::sample_blocks(g, targets, f, seed),
            SamplerKind::LayerWise(s) => {
                sgnn_sample::layer_wise::ladies_blocks(g, targets, s, seed)
            }
            SamplerKind::Labor(f) => sgnn_sample::labor::labor_blocks(g, targets, f, seed),
        }
    }
}

/// Trains a sampled GraphSAGE model with the given sampler.
pub fn train_sampled(
    ds: &Dataset,
    sampler: &SamplerKind,
    cfg: &TrainConfig,
) -> TrainResult<(Sage, TrainReport)> {
    ensure_classes(ds)?;
    let mut ledger = build_ledger(cfg);
    ledger.try_alloc(ds.features.nbytes())?; // feature store stays host-side resident
    let mut dims = vec![ds.feature_dim()];
    dims.extend_from_slice(&cfg.hidden);
    dims.push(ds.num_classes);
    assert_eq!(dims.len() - 1, sampler.layers(), "one fanout per layer");
    let name = match sampler {
        SamplerKind::NodeWise(_) => "sage-nodewise",
        SamplerKind::LayerWise(_) => "sage-ladies",
        SamplerKind::Labor(_) => "sage-labor",
    };
    let mut sage = Sage::new(&dims, cfg.seed);
    let mut opt = Adam::new(cfg.lr).with_weight_decay(cfg.weight_decay);
    let t1 = Instant::now();
    let mut final_loss = 0f32;
    let mut max_batch_bytes = 0usize;
    let mut phases = PhaseBreakdown::new();
    let pipe = crate::pipeline::BatchPipeline::with_restarts(
        cfg.prefetch,
        if cfg.fault_plan.is_some() { 1 } else { 0 },
    );
    let chunks: Vec<&[NodeId]> = ds.splits.train.chunks(cfg.batch_size).collect();
    let mut stopper = EarlyStopper::new(None);
    let mut epochs_run = 0usize;
    let start_epoch = apply_resume(
        cfg,
        name,
        &mut opt,
        &mut sage,
        None,
        &mut stopper,
        &mut epochs_run,
        &mut final_loss,
    )?;
    for epoch in start_epoch..cfg.epochs {
        poll_epoch_kill(cfg, epoch)?;
        let _ep = sgnn_obs::span!("trainer.epoch");
        epochs_run += 1;
        let sample_secs = pipe.run(
            chunks.len(),
            |bi| {
                if let Some(plan) = &cfg.fault_plan {
                    if plan.poll_producer_panic(epoch * chunks.len() + bi) {
                        panic!("injected: pipeline producer fault at batch {bi}");
                    }
                }
                let seed =
                    cfg.seed.wrapping_add((epoch * 10_000 + bi) as u64).wrapping_mul(0x9E37_79B9);
                let blocks = sampler.sample(&ds.graph, chunks[bi], seed);
                let src_rows = rows_of(&blocks[0].src);
                let x_in = ds.features.gather_rows(&src_rows);
                (blocks, x_in)
            },
            |bi, (blocks, x_in)| {
                // Batch-resident: input features + per-layer activations
                // (≈2× input) + block structure.
                let batch_bytes =
                    3 * x_in.nbytes() + blocks.iter().map(|b| b.nbytes()).sum::<usize>();
                max_batch_bytes = max_batch_bytes.max(batch_bytes);
                let (loss, dl) = phases.time(Phase::Forward, || {
                    let logits = sage.forward(&blocks, &x_in);
                    softmax_cross_entropy(&logits, &ds.labels_of(chunks[bi]), None)
                });
                final_loss = loss;
                phases.time(Phase::Backward, || {
                    sage.zero_grad();
                    sage.backward(&blocks, &dl);
                });
                phases.time(Phase::Step, || sage.step(&mut opt));
            },
        );
        phases.add(Phase::Sample, sample_secs);
        maybe_checkpoint(cfg, name, epoch + 1, final_loss, &stopper, false, &opt, &mut sage, None)?;
        sgnn_obs::mark_epoch(epoch as u64);
    }
    // The double buffer keeps at most one prefetched batch alive next to
    // the one being computed.
    ledger.try_transient(if pipe.is_pipelined() {
        2 * max_batch_bytes
    } else {
        max_batch_bytes
    })?;
    let train_secs = t1.elapsed().as_secs_f64();
    // Evaluate with wide fanouts for near-exact aggregation.
    let eval = |nodes: &[NodeId]| -> f64 {
        let wide = vec![25usize; sampler.layers()];
        let mut correct = 0usize;
        for chunk in nodes.chunks(1024) {
            let blocks = sgnn_sample::node_wise::sample_blocks(&ds.graph, chunk, &wide, 123_456);
            let src_rows = rows_of(&blocks[0].src);
            let x_in = ds.features.gather_rows(&src_rows);
            let logits = sage.forward_inference(&blocks, &x_in);
            let labels = ds.labels_of(chunk);
            correct +=
                logits.argmax_rows().iter().zip(labels.iter()).filter(|&(p, t)| p == t).count();
        }
        correct as f64 / nodes.len().max(1) as f64
    };
    let val_acc = eval(&ds.splits.val);
    let test_acc = eval(&ds.splits.test);
    sgnn_obs::export_now();
    let report = TrainReport {
        name: name.into(),
        test_acc,
        val_acc,
        final_loss,
        precompute_secs: 0.0,
        train_secs,
        peak_mem_bytes: ledger.peak(),
        epochs_run,
        phases,
    };
    Ok((sage, report))
}

/// Trains a GCN on GraphSAINT subgraph batches.
pub fn train_saint(
    ds: &Dataset,
    sampler: sgnn_sample::SaintSampler,
    batches_per_epoch: usize,
    cfg: &TrainConfig,
) -> TrainResult<(Gcn, TrainReport)> {
    ensure_classes(ds)?;
    let mut ledger = build_ledger(cfg);
    ledger.try_alloc(ds.features.nbytes())?;
    let t0 = Instant::now();
    let norms = sgnn_sample::saint::estimate_norms(&ds.graph, sampler, 20, cfg.seed);
    let precompute_secs = t0.elapsed().as_secs_f64();
    let sampler_name = match sampler {
        sgnn_sample::SaintSampler::Node { .. } => "node",
        sgnn_sample::SaintSampler::Edge { .. } => "edge",
        sgnn_sample::SaintSampler::RandomWalk { .. } => "rw",
    };
    let name = format!("saint-{sampler_name}");
    let mut gcn = Gcn::new(
        ds.feature_dim(),
        ds.num_classes,
        &GcnConfig { hidden: cfg.hidden.clone(), dropout: cfg.dropout, seed: cfg.seed },
    );
    let mut opt = Adam::new(cfg.lr).with_weight_decay(cfg.weight_decay);
    let mut in_train = vec![false; ds.num_nodes()];
    for &u in &ds.splits.train {
        in_train[u as usize] = true;
    }
    let t1 = Instant::now();
    let mut final_loss = 0f32;
    let mut max_batch = 0usize;
    let mut phases = PhaseBreakdown::new();
    let pipe = crate::pipeline::BatchPipeline::with_restarts(
        cfg.prefetch,
        if cfg.fault_plan.is_some() { 1 } else { 0 },
    );
    let mut stopper = EarlyStopper::new(None);
    let mut epochs_run = 0usize;
    let start_epoch = apply_resume(
        cfg,
        &name,
        &mut opt,
        &mut gcn,
        None,
        &mut stopper,
        &mut epochs_run,
        &mut final_loss,
    )?;
    for epoch in start_epoch..cfg.epochs {
        poll_epoch_kill(cfg, epoch)?;
        let _ep = sgnn_obs::span!("trainer.epoch");
        epochs_run += 1;
        let sample_secs = pipe.run(
            batches_per_epoch,
            |b| {
                if let Some(plan) = &cfg.fault_plan {
                    if plan.poll_producer_panic(epoch * batches_per_epoch + b) {
                        panic!("injected: pipeline producer fault at batch {b}");
                    }
                }
                let seed = cfg.seed.wrapping_add((epoch * 1_000 + b) as u64 + 17);
                let mut sub = sgnn_sample::saint::sample_subgraph(&ds.graph, sampler, seed);
                sgnn_sample::saint::apply_norms(&mut sub, &norms);
                let op = gcn_operator(&sub.graph);
                let rows = rows_of(&sub.nodes);
                let x = ds.features.gather_rows(&rows);
                // Only training nodes in the subgraph contribute to the loss.
                let mut idx = Vec::new();
                let mut labels = Vec::new();
                let mut weights = Vec::new();
                for (local, &g) in sub.nodes.iter().enumerate() {
                    if in_train[g as usize] {
                        idx.push(local);
                        labels.push(ds.labels[g as usize]);
                        weights.push(sub.loss_weights[local]);
                    }
                }
                (op, x, idx, labels, weights)
            },
            |_, (op, x, idx, labels, weights)| {
                // Batch residency: the subgraph operator and gathered
                // features are live alongside the layer activations.
                max_batch = max_batch
                    .max(op.nbytes() + x.nbytes() + gcn.step_bytes(x.rows(), ds.feature_dim()));
                if idx.is_empty() {
                    return;
                }
                let n_sub = x.rows();
                let (loss, dl_batch) = phases.time(Phase::Forward, || {
                    let logits = gcn.forward(&op, &x);
                    let batch_logits = logits.gather_rows(&idx);
                    softmax_cross_entropy(&batch_logits, &labels, Some(&weights))
                });
                final_loss = loss;
                phases.time(Phase::Backward, || {
                    let mut dl = DenseMatrix::zeros(n_sub, ds.num_classes);
                    dl.scatter_rows(&idx, &dl_batch);
                    gcn.zero_grad();
                    gcn.backward(&op, &dl);
                });
                phases.time(Phase::Step, || gcn.step(&mut opt));
            },
        );
        phases.add(Phase::Sample, sample_secs);
        maybe_checkpoint(cfg, &name, epoch + 1, final_loss, &stopper, false, &opt, &mut gcn, None)?;
        sgnn_obs::mark_epoch(epoch as u64);
    }
    ledger.try_transient(max_batch)?;
    let train_secs = t1.elapsed().as_secs_f64();
    // Full-graph inference for evaluation.
    let op = gcn_operator(&ds.graph);
    let logits = gcn.forward_inference(&op, &ds.features);
    let val_acc =
        accuracy(&logits.gather_rows(&rows_of(&ds.splits.val)), &ds.labels_of(&ds.splits.val));
    let test_acc =
        accuracy(&logits.gather_rows(&rows_of(&ds.splits.test)), &ds.labels_of(&ds.splits.test));
    sgnn_obs::export_now();
    let report = TrainReport {
        name,
        test_acc,
        val_acc,
        final_loss,
        precompute_secs,
        train_secs,
        peak_mem_bytes: ledger.peak(),
        epochs_run,
        phases,
    };
    Ok((gcn, report))
}

/// Trains a GCN on Cluster-GCN partition batches.
pub fn train_cluster_gcn(
    ds: &Dataset,
    num_clusters: usize,
    clusters_per_batch: usize,
    cfg: &TrainConfig,
) -> TrainResult<(Gcn, TrainReport)> {
    ensure_classes(ds)?;
    let mut ledger = build_ledger(cfg);
    ledger.try_alloc(ds.features.nbytes())?;
    let t0 = Instant::now();
    let batcher = sgnn_partition::cluster::ClusterBatcher::new(&ds.graph, num_clusters, cfg.seed);
    let precompute_secs = t0.elapsed().as_secs_f64();
    let mut gcn = Gcn::new(
        ds.feature_dim(),
        ds.num_classes,
        &GcnConfig { hidden: cfg.hidden.clone(), dropout: cfg.dropout, seed: cfg.seed },
    );
    let mut opt = Adam::new(cfg.lr).with_weight_decay(cfg.weight_decay);
    let mut in_train = vec![false; ds.num_nodes()];
    for &u in &ds.splits.train {
        in_train[u as usize] = true;
    }
    let t1 = Instant::now();
    let mut final_loss = 0f32;
    let mut max_batch = 0usize;
    let mut phases = PhaseBreakdown::new();
    let pipe = crate::pipeline::BatchPipeline::with_restarts(
        cfg.prefetch,
        if cfg.fault_plan.is_some() { 1 } else { 0 },
    );
    let mut stopper = EarlyStopper::new(None);
    let mut epochs_run = 0usize;
    let start_epoch = apply_resume(
        cfg,
        "cluster-gcn",
        &mut opt,
        &mut gcn,
        None,
        &mut stopper,
        &mut epochs_run,
        &mut final_loss,
    )?;
    for epoch in start_epoch..cfg.epochs {
        poll_epoch_kill(cfg, epoch)?;
        let _ep = sgnn_obs::span!("trainer.epoch");
        epochs_run += 1;
        // Partition assignment is one epoch-level shuffle, not per-batch
        // work — it stays inline; only per-batch operator/feature
        // construction rides the prefetch pipeline.
        let batches = phases.time(Phase::Sample, || {
            batcher.epoch_batches(&ds.graph, clusters_per_batch, cfg.seed + epoch as u64)
        });
        let sample_secs = pipe.run(
            batches.len(),
            |b| {
                if let Some(plan) = &cfg.fault_plan {
                    if plan.poll_producer_panic(epoch * batches.len() + b) {
                        panic!("injected: pipeline producer fault at batch {b}");
                    }
                }
                let batch = &batches[b];
                let op = gcn_operator(&batch.graph);
                let rows = rows_of(&batch.nodes);
                let x = ds.features.gather_rows(&rows);
                let mut idx = Vec::new();
                let mut labels = Vec::new();
                for (local, &g) in batch.nodes.iter().enumerate() {
                    if in_train[g as usize] {
                        idx.push(local);
                        labels.push(ds.labels[g as usize]);
                    }
                }
                (op, x, idx, labels)
            },
            |_, (op, x, idx, labels)| {
                // Batch residency: the partition's operator and gathered
                // features are live alongside the layer activations.
                let n_sub = x.rows();
                max_batch = max_batch
                    .max(op.nbytes() + x.nbytes() + gcn.step_bytes(n_sub, ds.feature_dim()));
                if idx.is_empty() {
                    return;
                }
                let (loss, dl_batch) = phases.time(Phase::Forward, || {
                    let logits = gcn.forward(&op, &x);
                    let batch_logits = logits.gather_rows(&idx);
                    softmax_cross_entropy(&batch_logits, &labels, None)
                });
                final_loss = loss;
                phases.time(Phase::Backward, || {
                    let mut dl = DenseMatrix::zeros(n_sub, ds.num_classes);
                    dl.scatter_rows(&idx, &dl_batch);
                    gcn.zero_grad();
                    gcn.backward(&op, &dl);
                });
                phases.time(Phase::Step, || gcn.step(&mut opt));
            },
        );
        phases.add(Phase::Sample, sample_secs);
        maybe_checkpoint(
            cfg,
            "cluster-gcn",
            epoch + 1,
            final_loss,
            &stopper,
            false,
            &opt,
            &mut gcn,
            None,
        )?;
        sgnn_obs::mark_epoch(epoch as u64);
    }
    ledger.try_transient(max_batch)?;
    let train_secs = t1.elapsed().as_secs_f64();
    let op = gcn_operator(&ds.graph);
    let logits = gcn.forward_inference(&op, &ds.features);
    let val_acc =
        accuracy(&logits.gather_rows(&rows_of(&ds.splits.val)), &ds.labels_of(&ds.splits.val));
    let test_acc =
        accuracy(&logits.gather_rows(&rows_of(&ds.splits.test)), &ds.labels_of(&ds.splits.test));
    sgnn_obs::export_now();
    let report = TrainReport {
        name: "cluster-gcn".into(),
        test_acc,
        val_acc,
        final_loss,
        precompute_secs,
        train_secs,
        peak_mem_bytes: ledger.peak(),
        epochs_run,
        phases,
    };
    Ok((gcn, report))
}

/// Trains a GCN on a coarsened graph and lifts predictions (E12).
pub fn train_coarse(ds: &Dataset, ratio: f64, cfg: &TrainConfig) -> TrainResult<TrainReport> {
    let t0 = Instant::now();
    let coarse = sgnn_coarsen::coarsen_to_ratio(&ds.graph, ratio, cfg.seed);
    let coarsen_secs = t0.elapsed().as_secs_f64();
    let mut r = train_coarse_with(ds, &coarse, cfg, &format!("coarse-r{ratio}"))?;
    r.precompute_secs += coarsen_secs;
    Ok(r)
}

/// Trains a GCN on a *given* coarsening (HEM, ConvMatch, …) and lifts
/// predictions back to the fine graph.
pub fn train_coarse_with(
    ds: &Dataset,
    coarse: &sgnn_coarsen::CoarseGraph,
    cfg: &TrainConfig,
    name: &str,
) -> TrainResult<TrainReport> {
    ensure_classes(ds)?;
    let mut ledger = build_ledger(cfg);
    let t0 = Instant::now();
    // Projection reads the fine feature matrix while the coarse one is
    // being built, so both are briefly resident together.
    ledger.try_alloc(ds.features.nbytes())?;
    let cx = coarse.project_features(&ds.features);
    let precompute_secs = t0.elapsed().as_secs_f64();
    ledger.try_alloc(cx.nbytes())?;
    ledger.free(ds.features.nbytes());
    ledger.try_alloc(coarse.graph.nbytes())?;
    // Coarse training labels: majority vote over *train-split members*
    // only, so test labels never leak into training.
    let cn = coarse.num_coarse();
    let mut votes = vec![0u32; cn * ds.num_classes];
    for &u in &ds.splits.train {
        let c = coarse.map[u as usize] as usize;
        votes[c * ds.num_classes + ds.labels[u as usize]] += 1;
    }
    let mut train_coarse_nodes = Vec::new();
    let mut coarse_labels = vec![0usize; cn];
    for c in 0..cn {
        let row = &votes[c * ds.num_classes..(c + 1) * ds.num_classes];
        let total: u32 = row.iter().sum();
        if total > 0 {
            train_coarse_nodes.push(c);
            // Non-empty by the `ensure_classes` entry guard: `row` has
            // `num_classes ≥ 1` elements.
            coarse_labels[c] = row
                .iter()
                .enumerate()
                .max_by_key(|&(i, &v)| (v, std::cmp::Reverse(i)))
                .expect("num_classes >= 1 checked at trainer entry")
                .0;
        }
    }
    let op = gcn_operator(&coarse.graph);
    let mut gcn = Gcn::new(
        ds.feature_dim(),
        ds.num_classes,
        &GcnConfig { hidden: cfg.hidden.clone(), dropout: cfg.dropout, seed: cfg.seed },
    );
    ledger.try_transient(gcn.step_bytes(cn, ds.feature_dim()))?;
    let mut opt = Adam::new(cfg.lr).with_weight_decay(cfg.weight_decay);
    let train_labels: Vec<usize> = train_coarse_nodes.iter().map(|&c| coarse_labels[c]).collect();
    let t1 = Instant::now();
    let mut final_loss = 0f32;
    let mut phases = PhaseBreakdown::new();
    for epoch in 0..cfg.epochs {
        poll_epoch_kill(cfg, epoch)?;
        let _ep = sgnn_obs::span!("trainer.epoch");
        let (loss, dl_batch) = phases.time(Phase::Forward, || {
            let logits = gcn.forward(&op, &cx);
            let batch = logits.gather_rows(&train_coarse_nodes);
            softmax_cross_entropy(&batch, &train_labels, None)
        });
        final_loss = loss;
        phases.time(Phase::Backward, || {
            let mut dl = DenseMatrix::zeros(cn, ds.num_classes);
            dl.scatter_rows(&train_coarse_nodes, &dl_batch);
            gcn.zero_grad();
            gcn.backward(&op, &dl);
        });
        phases.time(Phase::Step, || gcn.step(&mut opt));
        sgnn_obs::mark_epoch(epoch as u64);
    }
    let train_secs = t1.elapsed().as_secs_f64();
    // Lift coarse logits to fine nodes and evaluate on the real test set.
    let coarse_logits = gcn.forward_inference(&op, &cx);
    let fine_logits = coarse.lift_rows(&coarse_logits);
    let val_acc =
        accuracy(&fine_logits.gather_rows(&rows_of(&ds.splits.val)), &ds.labels_of(&ds.splits.val));
    let test_acc = accuracy(
        &fine_logits.gather_rows(&rows_of(&ds.splits.test)),
        &ds.labels_of(&ds.splits.test),
    );
    sgnn_obs::export_now();
    Ok(TrainReport {
        name: name.to_string(),
        test_acc,
        val_acc,
        final_loss,
        precompute_secs,
        train_secs,
        peak_mem_bytes: ledger.peak(),
        epochs_run: cfg.epochs,
        phases,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use sgnn_data::sbm_dataset;

    fn small_ds() -> Dataset {
        sbm_dataset(600, 3, 10.0, 0.9, 6, 0.8, 0, 0.5, 0.25, 1)
    }

    fn fast_cfg() -> TrainConfig {
        TrainConfig { epochs: 40, hidden: vec![16], dropout: 0.1, ..Default::default() }
    }

    #[test]
    fn full_gcn_report_is_complete_and_accurate() {
        let ds = small_ds();
        let (_, r) = train_full_gcn(&ds, &fast_cfg()).unwrap();
        assert!(r.test_acc > 0.8, "acc {}", r.test_acc);
        assert!(r.peak_mem_bytes > 0);
        assert!(r.train_secs > 0.0);
        // Phase totals are always measured (observability off included) and
        // must account for nearly all of the training-loop wall time.
        let phase_sum = r.phases.total_secs();
        assert!(phase_sum > 0.0);
        assert!(phase_sum <= r.train_secs * 1.01 + 1e-3, "{phase_sum} vs {}", r.train_secs);
        assert!(phase_sum >= r.train_secs * 0.5, "{phase_sum} vs {}", r.train_secs);
        let json = serde::json::to_string(&r);
        assert!(json.starts_with("{\"name\":\"gcn-full\""));
        assert!(json.contains("\"phases\":{\"sample_secs\":"));
    }

    #[test]
    fn decoupled_sgc_matches_gcn_accuracy_with_less_memory() {
        let ds = small_ds();
        let (_, gcn) = train_full_gcn(&ds, &fast_cfg()).unwrap();
        let (_, sgc) = train_decoupled(&ds, &PrecomputeMethod::Sgc { k: 2 }, &fast_cfg()).unwrap();
        assert!(sgc.test_acc > gcn.test_acc - 0.07, "sgc {} vs gcn {}", sgc.test_acc, gcn.test_acc);
        assert!(
            sgc.peak_mem_bytes < gcn.peak_mem_bytes,
            "decoupled {} !< full {}",
            sgc.peak_mem_bytes,
            gcn.peak_mem_bytes
        );
    }

    #[test]
    fn sampled_trainers_learn() {
        let ds = small_ds();
        let cfg =
            TrainConfig { epochs: 25, hidden: vec![16], batch_size: 128, ..Default::default() };
        let (_, nw) = train_sampled(&ds, &SamplerKind::NodeWise(vec![5, 5]), &cfg).unwrap();
        assert!(nw.test_acc > 0.7, "node-wise {}", nw.test_acc);
        let (_, lb) = train_sampled(&ds, &SamplerKind::Labor(vec![5, 5]), &cfg).unwrap();
        assert!(lb.test_acc > 0.7, "labor {}", lb.test_acc);
    }

    #[test]
    fn saint_and_cluster_trainers_learn() {
        let ds = small_ds();
        let cfg = TrainConfig { epochs: 25, hidden: vec![16], ..Default::default() };
        let (_, saint) = train_saint(
            &ds,
            sgnn_sample::SaintSampler::RandomWalk { roots: 40, length: 6 },
            4,
            &cfg,
        )
        .unwrap();
        assert!(saint.test_acc > 0.7, "saint {}", saint.test_acc);
        let (_, cgcn) = train_cluster_gcn(&ds, 8, 2, &cfg).unwrap();
        assert!(cgcn.test_acc > 0.7, "cluster {}", cgcn.test_acc);
    }

    #[test]
    fn early_stopping_halts_before_epoch_budget() {
        let ds = small_ds();
        let cfg = TrainConfig { epochs: 500, patience: Some(20), ..fast_cfg() };
        let (_, r) = train_full_gcn(&ds, &cfg).unwrap();
        assert!(r.epochs_run < 500, "ran all {} epochs", r.epochs_run);
        assert!(r.test_acc > 0.8, "acc {}", r.test_acc);
        let (_, rd) = train_decoupled(&ds, &PrecomputeMethod::Sgc { k: 2 }, &cfg).unwrap();
        assert!(rd.epochs_run < 500);
        assert!(rd.test_acc > 0.8);
    }

    #[test]
    fn coarse_training_trades_accuracy_for_cost() {
        let ds = small_ds();
        let cfg = fast_cfg();
        let full = train_full_gcn(&ds, &cfg).unwrap().1;
        let half = train_coarse(&ds, 0.5, &cfg).unwrap();
        assert!(half.test_acc > 0.6, "coarse acc {}", half.test_acc);
        // Coarse training uses less peak memory than full training.
        assert!(half.peak_mem_bytes < full.peak_mem_bytes);
    }
}
