//! Figure 1 of the paper as a machine-readable tree.
//!
//! Each taxonomy node carries the survey's category name, the systems the
//! paper cites there, and — for leaves — the `sgnn` module implementing a
//! representative. `examples/taxonomy.rs` renders it; tests assert every
//! leaf maps to real code.

/// One node of the Figure 1 taxonomy.
#[derive(Debug, Clone)]
pub struct TaxonomyNode {
    /// Category name as printed in Figure 1.
    pub name: &'static str,
    /// Systems the survey cites under this node.
    pub systems: &'static [&'static str],
    /// Implementing module path in this workspace (leaves only).
    pub module: Option<&'static str>,
    /// Child categories.
    pub children: Vec<TaxonomyNode>,
}

impl TaxonomyNode {
    fn leaf(name: &'static str, systems: &'static [&'static str], module: &'static str) -> Self {
        TaxonomyNode { name, systems, module: Some(module), children: Vec::new() }
    }

    fn branch(name: &'static str, children: Vec<TaxonomyNode>) -> Self {
        TaxonomyNode { name, systems: &[], module: None, children }
    }

    /// All leaves below this node.
    pub fn leaves(&self) -> Vec<&TaxonomyNode> {
        if self.children.is_empty() {
            vec![self]
        } else {
            self.children.iter().flat_map(|c| c.leaves()).collect()
        }
    }

    /// Renders the subtree as an indented listing.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out, 0);
        out
    }

    fn render_into(&self, out: &mut String, depth: usize) {
        for _ in 0..depth {
            out.push_str("  ");
        }
        out.push_str(self.name);
        if !self.systems.is_empty() {
            out.push_str("  [");
            out.push_str(&self.systems.join(", "));
            out.push(']');
        }
        if let Some(m) = self.module {
            out.push_str("  -> ");
            out.push_str(m);
        }
        out.push('\n');
        for c in &self.children {
            c.render_into(out, depth + 1);
        }
    }
}

/// Builds the full Figure 1 tree: "Data Management for Scalable GNN".
pub fn figure1() -> TaxonomyNode {
    TaxonomyNode::branch(
        "Data Management for Scalable GNN",
        vec![
            TaxonomyNode::branch(
                "Classic Methods (3.1.2)",
                vec![
                    TaxonomyNode::leaf(
                        "Graph Partition",
                        &["METIS-style", "LDG", "Fennel"],
                        "sgnn_partition::{multilevel, streaming}",
                    ),
                    TaxonomyNode::leaf(
                        "Graph Sampling",
                        &["GraphSAGE", "Cluster-GCN"],
                        "sgnn_sample::node_wise, sgnn_partition::cluster",
                    ),
                    TaxonomyNode::leaf(
                        "Decoupled Propagation",
                        &["APPNP", "SGC"],
                        "sgnn_prop::power, sgnn_core::models::decoupled",
                    ),
                ],
            ),
            TaxonomyNode::branch(
                "Graph Analytics (3.2)",
                vec![
                    TaxonomyNode::branch(
                        "Spectral Embeddings (3.2.1)",
                        vec![
                            TaxonomyNode::leaf(
                                "Combined Embeddings",
                                &["LD2"],
                                "sgnn_spectral::embedding",
                            ),
                            TaxonomyNode::leaf(
                                "Adaptive Basis",
                                &["UniFilter", "AdaptKry"],
                                "sgnn_spectral::basis",
                            ),
                        ],
                    ),
                    TaxonomyNode::branch(
                        "Node-pair Similarity (3.2.2)",
                        vec![
                            TaxonomyNode::leaf(
                                "Topology Similarity",
                                &["SIMGA", "DHGR"],
                                "sgnn_sim::{simrank, rewire}",
                            ),
                            TaxonomyNode::leaf(
                                "Hub Labeling",
                                &["CFGNN", "DHIL-GT"],
                                "sgnn_sim::hub",
                            ),
                        ],
                    ),
                    TaxonomyNode::branch(
                        "Graph Algebras (3.2.3)",
                        vec![
                            TaxonomyNode::leaf(
                                "Matrix Decomposition",
                                &["EIGNN"],
                                "sgnn_core::models::implicit (Spectral solver)",
                            ),
                            TaxonomyNode::leaf(
                                "Approximate Iteration",
                                &["MGNNI"],
                                "sgnn_core::models::implicit (FixedPoint/CG)",
                            ),
                            TaxonomyNode::leaf(
                                "Graph Simplification",
                                &["SEIGNN"],
                                "sgnn_coarsen::seignn",
                            ),
                        ],
                    ),
                ],
            ),
            TaxonomyNode::branch(
                "Graph Editing (3.3)",
                vec![
                    TaxonomyNode::branch(
                        "Graph Sparsification (3.3.1)",
                        vec![
                            TaxonomyNode::leaf(
                                "Node-level",
                                &["SCARA", "Unifews"],
                                "sgnn_prop::push, sgnn_sparsify::unifews",
                            ),
                            TaxonomyNode::leaf(
                                "Layer-level",
                                &["NIGCN", "ATP"],
                                "sgnn_sparsify::{nigcn, atp}",
                            ),
                            TaxonomyNode::leaf(
                                "Subgraph-level",
                                &["GAMLP", "NAI"],
                                "sgnn_core::models::gamlp",
                            ),
                        ],
                    ),
                    TaxonomyNode::branch(
                        "Graph Sampling (3.3.2)",
                        vec![
                            TaxonomyNode::leaf(
                                "Graph Expressiveness",
                                &["ADGNN", "PyGNN"],
                                "sgnn_sample::layer_wise",
                            ),
                            TaxonomyNode::leaf(
                                "Graph Variance",
                                &["LABOR", "HDSGNN", "LMC"],
                                "sgnn_sample::{labor, history, variance}",
                            ),
                            TaxonomyNode::leaf(
                                "Device Acceleration",
                                &["GIDS", "NeutronOrch", "DAHA"],
                                "sgnn_sample::history (cache substrate; see DESIGN.md)",
                            ),
                        ],
                    ),
                    TaxonomyNode::branch(
                        "Subgraph Extraction (3.3.3)",
                        vec![
                            TaxonomyNode::leaf(
                                "Subgraph Generation",
                                &["G3", "TIGER"],
                                "sgnn_sample::saint",
                            ),
                            TaxonomyNode::leaf(
                                "Subgraph Storage",
                                &["SUREL", "GENTI"],
                                "sgnn_sample::walks",
                            ),
                        ],
                    ),
                    TaxonomyNode::branch(
                        "Graph Coarsening (3.3.4)",
                        vec![
                            TaxonomyNode::leaf(
                                "Structure-based",
                                &["GDEM", "ConvMatch"],
                                "sgnn_coarsen::{gdem, convmatch, hem}",
                            ),
                            TaxonomyNode::leaf(
                                "Spectral-based",
                                &["GC-SNTK"],
                                "sgnn_coarsen::sntk",
                            ),
                        ],
                    ),
                ],
            ),
            TaxonomyNode::branch(
                "Future Directions (3.4)",
                vec![
                    TaxonomyNode::leaf(
                        "Large Models",
                        &["GraphRAG", "Graph Transformer"],
                        "sgnn_core::models::gt (SPD-bias attention over hub labels)",
                    ),
                    TaxonomyNode::leaf(
                        "Data Efficiency",
                        &["self-supervised", "dynamic graphs"],
                        "sgnn_sample::dynamic (incremental walk maintenance)",
                    ),
                    TaxonomyNode::leaf(
                        "Training Systems",
                        &["distributed", "device-specific"],
                        "sgnn_partition::comm",
                    ),
                ],
            ),
        ],
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tree_has_all_figure1_sections() {
        let t = figure1();
        let names: Vec<&str> = t.children.iter().map(|c| c.name).collect();
        assert_eq!(names.len(), 4);
        assert!(names.iter().any(|n| n.contains("Classic")));
        assert!(names.iter().any(|n| n.contains("Analytics")));
        assert!(names.iter().any(|n| n.contains("Editing")));
        assert!(names.iter().any(|n| n.contains("Future")));
    }

    #[test]
    fn every_leaf_names_systems_and_a_module() {
        let t = figure1();
        let leaves = t.leaves();
        assert!(leaves.len() >= 18, "found {} leaves", leaves.len());
        for l in leaves {
            assert!(!l.systems.is_empty(), "leaf {} lists no systems", l.name);
            assert!(l.module.is_some(), "leaf {} maps to no module", l.name);
        }
    }

    #[test]
    fn render_is_indented_and_complete() {
        let t = figure1();
        let s = t.render();
        assert!(s.contains("  Graph Editing"));
        assert!(s.contains("-> sgnn_sim::hub"));
        assert!(s.lines().count() > 20);
    }
}
