//! Trainer error type: every failure mode the resilience subsystem turns
//! from a panic/abort into a recoverable, matchable value.
//!
//! All trainers return `Result<_, TrainError>`. The variants map onto the
//! recovery policies of DESIGN.md §8: a budget overrun degrades
//! gracefully instead of OOM-killing the process, an injected crash is
//! the resumable kill-point of the differential recovery tests, and
//! checkpoint/halo corruption surfaces with enough detail (byte offsets,
//! exchange indices) to audit.

use crate::memory::BudgetExceeded;
use sgnn_fault::CkptError;

/// Why a trainer stopped without producing a report.
#[derive(Debug)]
pub enum TrainError {
    /// A checked ledger charge would exceed the memory budget
    /// (`SGNN_MEM_BUDGET`, `TrainConfig::mem_budget`, or a fault plan's
    /// budget).
    BudgetExceeded(BudgetExceeded),
    /// An armed [`sgnn_fault::FaultPlan`] kill fired. `site` names the
    /// poll site (`"epoch"`, `"superstep"`); `at` is its logical index.
    InjectedCrash {
        /// Poll site that fired.
        site: &'static str,
        /// Logical index (epoch or superstep number) at which it fired.
        at: u64,
    },
    /// Checkpoint load/save failed (I/O, truncation, CRC mismatch).
    Checkpoint(CkptError),
    /// A checkpoint exists and verifies, but belongs to a different
    /// trainer or model shape.
    CheckpointMismatch {
        /// What the running trainer expected.
        expected: String,
        /// What the checkpoint contains.
        found: String,
    },
    /// A halo exchange failed its checksum and the bounded retry budget
    /// did not repair it.
    HaloCorrupt {
        /// Global exchange index that stayed corrupt.
        exchange: u64,
        /// Retries consumed before giving up.
        retries: u32,
    },
    /// The dataset has zero classes — predictions would have zero
    /// columns and argmax would be undefined.
    EmptyLogits,
}

/// Trainer result alias.
pub type TrainResult<T> = Result<T, TrainError>;

impl std::fmt::Display for TrainError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TrainError::BudgetExceeded(e) => write!(f, "{e}"),
            TrainError::InjectedCrash { site, at } => write!(f, "injected crash at {site} {at}"),
            TrainError::Checkpoint(e) => write!(f, "{e}"),
            TrainError::CheckpointMismatch { expected, found } => {
                write!(f, "checkpoint mismatch: expected {expected}, found {found}")
            }
            TrainError::HaloCorrupt { exchange, retries } => {
                write!(f, "halo exchange {exchange} still corrupt after {retries} retries")
            }
            TrainError::EmptyLogits => {
                write!(f, "dataset has zero classes; predictions would be empty")
            }
        }
    }
}

impl std::error::Error for TrainError {}

impl From<BudgetExceeded> for TrainError {
    fn from(e: BudgetExceeded) -> Self {
        TrainError::BudgetExceeded(e)
    }
}

impl From<CkptError> for TrainError {
    fn from(e: CkptError) -> Self {
        TrainError::Checkpoint(e)
    }
}
