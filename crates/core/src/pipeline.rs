//! Double-buffered batch prefetch for mini-batch trainers.
//!
//! Sampling batch `i+1` is independent of computing batch `i` — the
//! sampler is a pure function of `(graph, targets, seed)` — so a trainer
//! can overlap the two on a background thread. [`BatchPipeline::run`]
//! drives a producer/consumer pair over one epoch's batches with a
//! capacity-1 hand-off slot: the producer samples at most one batch ahead
//! (bounding resident batch memory at 2×), the consumer blocks only when
//! the sampler is genuinely slower than compute.
//!
//! **Determinism**: batch `i` is prepared from a seed derived only from
//! `(config seed, epoch, i)` and consumed strictly in index order, so a
//! pipelined run is bitwise identical to the inline fallback — same
//! losses, same weights, same `TrainReport` accuracy. The fallback
//! (`prefetch` disabled or a single-thread configuration) runs `prepare`
//! inline on the calling thread.
//!
//! **Attribution** (DESIGN.md §6): prefetch work runs under the
//! `trainer.prefetch` span on the producer thread and is *not* charged to
//! the consumer's sample phase; the consumer charges only its stall — the
//! time it actually waited for a batch — to `Phase::Sample`. Counters:
//!
//! - `pipeline.stall_ns` — consumer wait time (sampler-bound epochs grow
//!   this);
//! - `pipeline.overlap_ns` — prepare time hidden behind compute
//!   (`prep − stall`, saturating);
//! - `pipeline.prefetch_hits` — batches already waiting when the consumer
//!   asked;
//! - `pipeline.producer_restarts` — producer panics absorbed by the
//!   restart budget (see below).
//!
//! **Recovery** (DESIGN.md §8): a pipeline built with
//! [`BatchPipeline::with_restarts`] absorbs up to `max_restarts` producer
//! panics per `run`. Because `prepare` is pure in the batch index, the
//! restarted producer re-prepares from the first unconsumed batch and the
//! consumer observes the exact same `(index, batch)` stream it would have
//! seen without the panic. Consumer panics are never restarted — `consume`
//! mutates trainer state and is not replayable — and a producer panic
//! beyond the budget resurfaces with its original payload.

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::{Condvar, Mutex};
use std::time::Instant;

static STALL_NS: sgnn_obs::Counter = sgnn_obs::Counter::new("pipeline.stall_ns");
/// Per-batch distribution of the consumer's wait for the next batch:
/// stall time on the pipelined path, full prepare time inline. The
/// monotonic total stays in `pipeline.stall_ns` (DESIGN.md §10).
static BATCH_STALL_NS: sgnn_obs::Histogram = sgnn_obs::Histogram::new("pipeline.batch_stall.ns");
static OVERLAP_NS: sgnn_obs::Counter = sgnn_obs::Counter::new("pipeline.overlap_ns");
static PREFETCH_HITS: sgnn_obs::Counter = sgnn_obs::Counter::new("pipeline.prefetch_hits");
static PRODUCER_RESTARTS: sgnn_obs::Counter = sgnn_obs::Counter::new("pipeline.producer_restarts");

/// Drives one epoch's batches through prepare (sampling) and consume
/// (forward/backward/step), overlapping the two when pipelining is on.
pub struct BatchPipeline {
    pipelined: bool,
    max_restarts: u32,
}

impl BatchPipeline {
    /// `enabled` is the config switch ([`crate::trainer::TrainConfig`]'s
    /// `prefetch`); pipelining additionally requires more than one
    /// configured thread — on a single thread the producer would only
    /// time-slice against the consumer, adding overhead for nothing.
    pub fn new(enabled: bool) -> Self {
        Self::with_restarts(enabled, 0)
    }

    /// Like [`new`](BatchPipeline::new), plus a per-`run` budget of
    /// producer restarts (0 = propagate the first producer panic).
    pub fn with_restarts(enabled: bool, max_restarts: u32) -> Self {
        BatchPipeline { pipelined: enabled && sgnn_linalg::par::num_threads() > 1, max_restarts }
    }

    /// True when `run` will actually overlap prepare with consume.
    pub fn is_pipelined(&self) -> bool {
        self.pipelined
    }

    /// Runs `consume(i, prepare(i))` for `i in 0..n`, in order. Returns
    /// the seconds the *calling thread* spent obtaining batches — full
    /// prepare time inline, stall time pipelined — which the caller
    /// charges to `Phase::Sample`.
    ///
    /// `prepare` must be a pure function of `i` (trainers derive the
    /// batch seed from it); a panic in either closure propagates from
    /// this call without deadlocking the other side, except that up to
    /// `max_restarts` *producer* panics are absorbed by restarting the
    /// producer at the first unconsumed batch.
    pub fn run<T, P, C>(&self, n: usize, prepare: P, mut consume: C) -> f64
    where
        T: Send,
        P: Fn(usize) -> T + Sync,
        C: FnMut(usize, T),
    {
        if !self.pipelined || n <= 1 {
            return self.run_inline(n, &prepare, &mut consume);
        }
        let mut restarts_left = self.max_restarts;
        let mut stall_secs = 0.0;
        // Next batch to hand to `consume`; persists across producer
        // restarts so the consumed stream has no gaps or repeats.
        let mut next = 0usize;
        loop {
            let slot: Slot<T> = Slot::new();
            let start = next;
            std::thread::scope(|s| {
                s.spawn(|| {
                    for i in start..n {
                        let produced = catch_unwind(AssertUnwindSafe(|| {
                            let _sp = sgnn_obs::span!("trainer.prefetch");
                            let t0 = Instant::now();
                            let item = prepare(i);
                            (item, t0.elapsed().as_nanos() as u64)
                        }));
                        match produced {
                            Ok((item, prep_ns)) => {
                                if !slot.put(i, item, prep_ns) {
                                    return; // consumer gone; stop sampling
                                }
                            }
                            Err(payload) => {
                                slot.poison(Some(payload));
                                return;
                            }
                        }
                    }
                });
                // Poison on unwind so a consumer panic can't strand the
                // producer inside `put` (scope would then never join).
                let guard = PoisonOnDrop(&slot);
                for _ in start..n {
                    let t0 = Instant::now();
                    let taken = {
                        let _sp = sgnn_obs::span!("trainer.sample");
                        slot.take()
                    };
                    let Some((i, item, prep_ns, was_ready)) = taken else {
                        break; // producer panicked; payload handled below
                    };
                    let stall = t0.elapsed();
                    stall_secs += stall.as_secs_f64();
                    let stall_ns = stall.as_nanos() as u64;
                    STALL_NS.add(stall_ns);
                    BATCH_STALL_NS.record(stall_ns);
                    OVERLAP_NS.add(prep_ns.saturating_sub(stall_ns));
                    if was_ready {
                        PREFETCH_HITS.incr();
                    }
                    consume(i, item);
                    next = i + 1;
                }
                std::mem::forget(guard);
            });
            match slot.take_panic() {
                None => return stall_secs,
                Some(payload) => {
                    if restarts_left == 0 {
                        resume_unwind(payload);
                    }
                    restarts_left -= 1;
                    PRODUCER_RESTARTS.incr();
                    sgnn_fault::record_recovery_retry();
                }
            }
        }
    }

    /// Inline fallback — same restart semantics, no producer thread.
    fn run_inline<T, P, C>(&self, n: usize, prepare: &P, consume: &mut C) -> f64
    where
        T: Send,
        P: Fn(usize) -> T + Sync,
        C: FnMut(usize, T),
    {
        let mut secs = 0.0;
        let mut restarts_left = self.max_restarts;
        let mut i = 0usize;
        while i < n {
            let produced = catch_unwind(AssertUnwindSafe(|| {
                let _sp = sgnn_obs::span!("trainer.sample");
                let t0 = Instant::now();
                let item = prepare(i);
                (item, t0.elapsed().as_secs_f64())
            }));
            match produced {
                Ok((item, s)) => {
                    secs += s;
                    BATCH_STALL_NS.record((s * 1e9) as u64);
                    consume(i, item);
                    i += 1;
                }
                Err(payload) => {
                    if restarts_left == 0 {
                        resume_unwind(payload);
                    }
                    restarts_left -= 1;
                    PRODUCER_RESTARTS.incr();
                    sgnn_fault::record_recovery_retry();
                }
            }
        }
        secs
    }
}

type PanicPayload = Box<dyn std::any::Any + Send>;

struct SlotState<T> {
    /// `(index, value, producer-side prepare nanos)`.
    item: Option<(usize, T, u64)>,
    poisoned: bool,
    panic: Option<PanicPayload>,
}

/// Capacity-1 hand-off: the double buffer. One side blocks on `ready`,
/// the other on `free`; `poisoned` unblocks both when either side dies.
struct Slot<T> {
    state: Mutex<SlotState<T>>,
    ready: Condvar,
    free: Condvar,
}

impl<T> Slot<T> {
    fn new() -> Self {
        Slot {
            state: Mutex::new(SlotState { item: None, poisoned: false, panic: None }),
            ready: Condvar::new(),
            free: Condvar::new(),
        }
    }

    /// Blocks until the slot is empty, then deposits. Returns `false` if
    /// the consumer poisoned the slot (stop producing).
    fn put(&self, i: usize, value: T, prep_ns: u64) -> bool {
        let mut st = self.state.lock().unwrap();
        while st.item.is_some() {
            if st.poisoned {
                return false;
            }
            st = self.free.wait(st).unwrap();
        }
        if st.poisoned {
            return false;
        }
        st.item = Some((i, value, prep_ns));
        drop(st);
        self.ready.notify_one();
        true
    }

    /// Blocks until an item is available; `was_ready` reports whether it
    /// was already waiting (a prefetch hit). `None` means the producer
    /// poisoned the slot.
    fn take(&self) -> Option<(usize, T, u64, bool)> {
        let mut st = self.state.lock().unwrap();
        let was_ready = st.item.is_some();
        loop {
            if let Some((i, v, ns)) = st.item.take() {
                drop(st);
                self.free.notify_one();
                return Some((i, v, ns, was_ready));
            }
            if st.poisoned {
                return None;
            }
            st = self.ready.wait(st).unwrap();
        }
    }

    fn poison(&self, payload: Option<PanicPayload>) {
        let mut st = self.state.lock().unwrap();
        st.poisoned = true;
        if st.panic.is_none() {
            st.panic = payload;
        }
        drop(st);
        self.ready.notify_all();
        self.free.notify_all();
    }

    fn take_panic(&self) -> Option<PanicPayload> {
        self.state.lock().unwrap().panic.take()
    }
}

struct PoisonOnDrop<'a, T>(&'a Slot<T>);

impl<T> Drop for PoisonOnDrop<'_, T> {
    fn drop(&mut self) {
        self.0.poison(None);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    /// Exercises the pipelined path directly, independent of thread config.
    fn forced() -> BatchPipeline {
        BatchPipeline { pipelined: true, max_restarts: 0 }
    }

    fn inline() -> BatchPipeline {
        BatchPipeline { pipelined: false, max_restarts: 0 }
    }

    #[test]
    fn inline_and_pipelined_visit_batches_in_order() {
        for pipe in [inline(), forced()] {
            let mut seen = Vec::new();
            let secs = pipe.run(7, |i| i * 10, |i, v| seen.push((i, v)));
            assert_eq!(seen, (0..7).map(|i| (i, i * 10)).collect::<Vec<_>>());
            assert!(secs >= 0.0);
        }
    }

    #[test]
    fn pipelined_overlaps_prepare_with_consume() {
        // Slow consume, fast prepare: every batch after the first should
        // be waiting when asked for, so total stall stays well under the
        // sequential sample time.
        let pipe = forced();
        let prepared = AtomicUsize::new(0);
        let stall = pipe.run(
            5,
            |i| {
                prepared.fetch_add(1, Ordering::SeqCst);
                i
            },
            |_, _| std::thread::sleep(std::time::Duration::from_millis(4)),
        );
        assert_eq!(prepared.load(Ordering::SeqCst), 5);
        assert!(stall < 0.020, "stalled {stall}s despite slack");
    }

    #[test]
    fn single_item_runs_inline() {
        let pipe = forced();
        let mut got = None;
        pipe.run(1, |i| i + 1, |_, v| got = Some(v));
        assert_eq!(got, Some(1));
    }

    #[test]
    fn producer_panic_propagates_without_deadlock() {
        let pipe = forced();
        let hit = std::panic::catch_unwind(AssertUnwindSafe(|| {
            pipe.run(
                4,
                |i| {
                    if i == 2 {
                        panic!("sampler exploded");
                    }
                    i
                },
                |_, _| {},
            );
        }));
        let payload = hit.expect_err("panic must propagate");
        let msg = payload.downcast_ref::<&str>().copied().unwrap_or_default();
        assert_eq!(msg, "sampler exploded");
    }

    #[test]
    fn consumer_panic_propagates_without_deadlock() {
        let pipe = forced();
        let hit = std::panic::catch_unwind(AssertUnwindSafe(|| {
            pipe.run(
                8,
                |i| i,
                |i, _| {
                    if i == 1 {
                        panic!("trainer exploded");
                    }
                },
            );
        }));
        assert!(hit.is_err());
    }

    #[test]
    fn restart_replays_identical_batch_stream() {
        // One producer panic mid-epoch; with a restart budget the consumer
        // must still see every (index, value) pair exactly once, in order.
        for pipe in [
            BatchPipeline { pipelined: true, max_restarts: 1 },
            BatchPipeline { pipelined: false, max_restarts: 1 },
        ] {
            let fired = std::sync::atomic::AtomicBool::new(false);
            let mut seen = Vec::new();
            pipe.run(
                6,
                |i| {
                    if i == 3 && !fired.swap(true, Ordering::SeqCst) {
                        panic!("injected producer fault");
                    }
                    i * 10
                },
                |i, v| seen.push((i, v)),
            );
            assert_eq!(seen, (0..6).map(|i| (i, i * 10)).collect::<Vec<_>>());
        }
    }

    #[test]
    fn panic_beyond_restart_budget_resurfaces_payload() {
        let pipe = BatchPipeline { pipelined: true, max_restarts: 2 };
        let hit = std::panic::catch_unwind(AssertUnwindSafe(|| {
            pipe.run(
                4,
                |i| {
                    if i == 1 {
                        panic!("always fails");
                    }
                    i
                },
                |_, _| {},
            );
        }));
        let payload = hit.expect_err("exhausted budget must propagate");
        let msg = payload.downcast_ref::<&str>().copied().unwrap_or_default();
        assert_eq!(msg, "always fails");
    }

    #[test]
    fn restarted_producer_does_not_repeat_consumed_batches() {
        // The panic fires after several batches were already consumed; the
        // restarted producer must resume from the first unconsumed index.
        let pipe = BatchPipeline { pipelined: true, max_restarts: 1 };
        let fired = std::sync::atomic::AtomicBool::new(false);
        let prepares = AtomicUsize::new(0);
        let mut seen = Vec::new();
        pipe.run(
            5,
            |i| {
                prepares.fetch_add(1, Ordering::SeqCst);
                if i == 4 && !fired.swap(true, Ordering::SeqCst) {
                    panic!("late fault");
                }
                i
            },
            |i, v| seen.push((i, v)),
        );
        assert_eq!(seen, (0..5).map(|i| (i, i)).collect::<Vec<_>>());
        // Re-preparation is bounded: at worst the in-flight batch plus the
        // faulted one are prepared twice.
        assert!(
            prepares.load(Ordering::SeqCst) <= 8,
            "{} prepares",
            prepares.load(Ordering::SeqCst)
        );
    }
}
