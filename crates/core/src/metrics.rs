//! Evaluation metrics.

use sgnn_linalg::DenseMatrix;

/// Classification accuracy (argmax of logits vs targets).
pub fn accuracy(logits: &DenseMatrix, targets: &[usize]) -> f64 {
    sgnn_nn::loss::accuracy(logits, targets)
}

/// Confusion matrix (`classes × classes`, rows = true class).
pub fn confusion(pred: &[usize], targets: &[usize], num_classes: usize) -> Vec<Vec<usize>> {
    assert_eq!(pred.len(), targets.len());
    let mut m = vec![vec![0usize; num_classes]; num_classes];
    for (&p, &t) in pred.iter().zip(targets.iter()) {
        m[t][p] += 1;
    }
    m
}

/// Macro-averaged F1 score.
///
/// Classes absent from both predictions and targets are skipped: the
/// macro average runs over *present* classes only, rather than crediting
/// absent classes with F1 = 1. With every class absent (no samples) the
/// result is 0. This matches common library behaviour closely enough for
/// trend comparisons.
pub fn macro_f1(pred: &[usize], targets: &[usize], num_classes: usize) -> f64 {
    let m = confusion(pred, targets, num_classes);
    let mut f1_sum = 0f64;
    let mut present = 0usize;
    for c in 0..num_classes {
        let tp = m[c][c];
        let fn_: usize = (0..num_classes).filter(|&j| j != c).map(|j| m[c][j]).sum();
        let fp: usize = (0..num_classes).filter(|&j| j != c).map(|j| m[j][c]).sum();
        if tp + fn_ + fp == 0 {
            continue; // class absent everywhere
        }
        present += 1;
        let precision = if tp + fp > 0 { tp as f64 / (tp + fp) as f64 } else { 0.0 };
        let recall = if tp + fn_ > 0 { tp as f64 / (tp + fn_) as f64 } else { 0.0 };
        if precision + recall > 0.0 {
            f1_sum += 2.0 * precision * recall / (precision + recall);
        }
    }
    if present == 0 {
        0.0
    } else {
        f1_sum / present as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn confusion_counts_by_true_class() {
        let m = confusion(&[0, 1, 1, 0], &[0, 1, 0, 1], 2);
        assert_eq!(m[0][0], 1);
        assert_eq!(m[0][1], 1);
        assert_eq!(m[1][0], 1);
        assert_eq!(m[1][1], 1);
    }

    #[test]
    fn perfect_predictions_give_f1_one() {
        let p = [0usize, 1, 2, 0, 1, 2];
        assert!((macro_f1(&p, &p, 3) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn macro_f1_penalizes_minority_failure_more_than_accuracy() {
        // 9 of class 0 right, 1 of class 1 wrong: accuracy 0.9 but macro F1
        // much lower.
        let targets: Vec<usize> = (0..10).map(|i| usize::from(i == 9)).collect();
        let pred = vec![0usize; 10];
        let f1 = macro_f1(&pred, &targets, 2);
        assert!(f1 < 0.5, "macro f1 {f1}");
    }

    #[test]
    fn absent_classes_are_skipped() {
        let f1 = macro_f1(&[0, 0], &[0, 0], 5);
        assert!((f1 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn all_classes_absent_gives_zero() {
        // No samples at all: every class is skipped and the average over
        // zero present classes is pinned to 0, not NaN.
        let f1 = macro_f1(&[], &[], 4);
        assert_eq!(f1, 0.0);
        assert!(!f1.is_nan());
    }

    #[test]
    fn single_class_edge_cases() {
        // One class, all correct: precision = recall = 1.
        assert!((macro_f1(&[0, 0, 0], &[0, 0, 0], 1) - 1.0).abs() < 1e-12);
        // Two classes but only one ever appears in targets; predictions
        // leak into the other. Class 0: tp=2, fp=0, fn=1 → F1 = 0.8.
        // Class 1: tp=0, fp=1, fn=0 → F1 = 0. Macro over both = 0.4.
        let f1 = macro_f1(&[0, 0, 1], &[0, 0, 0], 2);
        assert!((f1 - 0.4).abs() < 1e-12, "macro f1 {f1}");
    }
}
