//! # sgnn-core
//!
//! The unified scalable-GNN framework: every technique the survey covers,
//! wired into one training stack over the substrate crates.
//!
//! - [`models`] — the model zoo: full-batch GCN (the baseline every
//!   scalable design is measured against), sampled GraphSAGE, decoupled
//!   pipelines (SGC / APPNP / SCARA / heat / LD2 channels), GAMLP-style
//!   hop attention, and implicit GNNs with three equilibrium solvers.
//! - [`trainer`] / [`trainer_ext`] — training loops for each scalability family: full-batch,
//!   decoupled mini-batch, neighbor-sampled, subgraph-sampled
//!   (GraphSAINT / Cluster-GCN), and coarse-graph training, all producing
//!   a common [`trainer::TrainReport`] with time and peak-memory
//!   accounting.
//! - [`pipeline`] — double-buffered batch prefetch: mini-batch trainers
//!   sample batch `i+1` on a background thread while batch `i` computes,
//!   with bitwise-identical results to the inline path.
//! - [`shard`] — shard-parallel full-graph training with halo exchange
//!   and fixed-order gradient allreduce, bitwise identical to the
//!   single-process baseline at any shard/thread count (DESIGN.md §7).
//! - [`memory`] — the analytic memory ledger standing in for GPU memory
//!   (DESIGN.md substitutions): every materialized matrix is charged.
//! - [`metrics`] — accuracy / macro-F1 / confusion matrices.
//! - [`taxonomy`] — Figure 1 of the paper as a machine-readable tree, each
//!   leaf mapped to the module implementing it.

// Numeric kernels index several parallel flat buffers at once; iterator
// rewrites obscure them. Config-style constructors take their full
// parameter list deliberately (documented, stable).
#![allow(clippy::needless_range_loop, clippy::too_many_arguments)]

pub mod ckpt;
pub mod error;
pub mod memory;
pub mod metrics;
pub mod models;
pub mod pipeline;
pub mod shard;
pub mod shard_comm;
pub mod taxonomy;
pub mod trainer;
pub mod trainer_ext;

pub use error::{TrainError, TrainResult};
pub use memory::Ledger;
pub use shard_comm::CommRegime;
pub use trainer::TrainReport;
// Inference numeric mode (F32 default; int8/f16 opt-in, DESIGN.md §9).
pub use sgnn_linalg::QuantMode;
