//! Communication regimes for the sharded trainer (DESIGN.md §11).
//!
//! The exact regime of [`crate::shard::train_sharded_gcn`] moves full-f32
//! ghost activations every superstep and stalls compute on the exchange
//! barrier. The survey's distributed-training chapter names three levers
//! that relax this — payload compression, bounded-staleness historical
//! embeddings, and communication/computation overlap — and this module
//! holds the shared plumbing for all three:
//!
//! - [`CommRegime`] — the `TrainConfig` knob selecting `Exact` (default,
//!   bitwise-identical to the single-process reference) or `Compressed`
//!   (quantized + stale-tolerant + overlapped, with a documented loss
//!   bound instead of bitwise equality).
//! - [`CommState`] — the per-run mutable state of the compressed path:
//!   sender export lists, halo→export row maps, the interior/boundary
//!   sub-operators that let interior aggregation run while the exchange
//!   is in flight, per-site error-feedback residuals, and the per-site
//!   ghost caches with their deterministic refresh clocks.
//!
//! ## Why the sub-operators exist
//!
//! The shard-local SpMM kernel initializes each output row from its
//! *first neighbor* for wide rows, so splitting a row's accumulation
//! across two hand-written loops would change the floating-point
//! operation order (and `-0.0` handling) relative to the exact path.
//! Instead, the overlap path builds two derived CSR operators per shard
//! that each carry *complete* rows of the original local operator:
//!
//! - `op_interior` lives in **owned-rank space** (`n = |owned|`): row `r`
//!   is non-empty iff rank `r` is interior, and then holds rank `r`'s
//!   full adjacency with every local slot remapped to the owner rank of
//!   that (necessarily owned) slot. Its input is the shard's own
//!   owned-row activation matrix — available *before* the exchange — so
//!   interior aggregation overlaps the halo transfer.
//! - `op_boundary` lives in **local-slot space** (`n = n_local`): only
//!   the local slots of boundary ranks carry rows (their full original
//!   adjacency). Its input is the assembled post-exchange buffer.
//!
//! Both remaps are monotone, so neighbor order — and therefore every
//! row's bit pattern — matches the unsplit kernel exactly. With `F32`
//! "compression" and staleness ≤ 1 the compressed path is consequently
//! bitwise-identical to the exact path (the degenerate case the
//! differential tests pin).

use crate::ckpt::CkptSidecar;
use sgnn_fault::{Ckpt, CkptError};
use sgnn_graph::CsrGraph;
use sgnn_linalg::{DenseMatrix, QuantMode};
use sgnn_partition::ShardPlan;

/// Halo-exchange regime of the sharded trainer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CommRegime {
    /// Full-f32 synchronous exchange; bitwise-identical to
    /// [`crate::trainer::train_full_gcn`] (DESIGN.md §7).
    #[default]
    Exact,
    /// Quantized, stale-tolerant, overlapped exchange (DESIGN.md §11).
    Compressed {
        /// Ghost-payload wire format. `F32` is identity compression:
        /// with `staleness ≤ 1` it reproduces the exact path bitwise
        /// while still exercising the compressed machinery.
        quant: QuantMode,
        /// Forward ghost caches may be reused for this many supersteps
        /// before a refresh; `≤ 1` means every forward exchange is
        /// fresh. Backward gradients are always exchanged fresh.
        staleness: u64,
    },
}

impl CommRegime {
    /// Stable label for reports and bench output (`exact`, `int8,s=4`, …).
    pub fn label(self) -> String {
        match self {
            CommRegime::Exact => "exact".to_string(),
            CommRegime::Compressed { quant, staleness } => {
                format!("{},s={}", quant.label(), staleness.max(1))
            }
        }
    }

    /// Parses a CLI/CI spelling: `exact`, `<mode>`, or `<mode>,s=<n>`
    /// (mode per [`QuantMode::parse`]; bare `<mode>` means `s=1`).
    pub fn parse(s: &str) -> Option<CommRegime> {
        let t = s.trim().to_ascii_lowercase();
        if t == "exact" {
            return Some(CommRegime::Exact);
        }
        let (mode, stale) = match t.split_once(",s=") {
            Some((m, n)) => (m, n.parse::<u64>().ok()?),
            None => (t.as_str(), 1),
        };
        Some(CommRegime::Compressed { quant: QuantMode::parse(mode)?, staleness: stale })
    }

    /// `Some((mode, staleness))` for the compressed regime (staleness
    /// clamped to ≥ 1), `None` for exact.
    pub fn compressed(self) -> Option<(QuantMode, u64)> {
        match self {
            CommRegime::Exact => None,
            CommRegime::Compressed { quant, staleness } => Some((quant, staleness.max(1))),
        }
    }
}

/// Mutable per-run state of the compressed exchange path.
///
/// Sites index the distinct exchange points of an `L`-layer model:
/// forward site `i ∈ [0, L−1)` moves the layer-`i` output (width
/// `dims[i+1]`); backward site `(L−1) + (i−1)` for `i ∈ [1, L)` moves
/// the layer-`i` input gradient (width `dims[i]`). Each site keeps its
/// own error-feedback residual per shard so compression error never
/// leaks across sites; only forward sites have ghost caches and
/// staleness clocks.
pub(crate) struct CommState {
    pub mode: QuantMode,
    pub staleness: u64,
    /// Per-shard sorted owned ranks some other shard ghosts — the rows
    /// actually transmitted each refresh ([`ShardPlan::export_ranks`]).
    pub exports: Vec<Vec<usize>>,
    /// `halo_pos[s][t]`: row of shard `s`'s halo slot `t` inside its
    /// owner's export block.
    pub halo_pos: Vec<Vec<u32>>,
    /// Owned-rank-space interior aggregation operator per shard.
    pub op_interior: Vec<CsrGraph>,
    /// Local-slot-space boundary aggregation operator per shard.
    pub op_boundary: Vec<CsrGraph>,
    /// Error-feedback residuals, `[site][shard]`, shaped
    /// `|exports[shard]| × d_site`. Zero-initialized; for lossless
    /// `F32` they stay exactly zero.
    pub residuals: Vec<Vec<DenseMatrix>>,
    /// Forward ghost caches, `[forward site][shard]`, shaped
    /// `|halo[shard]| × d_site`; empty (0×0) until the first refresh.
    pub cache: Vec<Vec<DenseMatrix>>,
    /// Visit counter per forward site — the deterministic staleness
    /// clock: visit `v` refreshes iff `v % staleness == 0`, independent
    /// of thread count and wall time.
    pub visits: Vec<u64>,
    /// Ghost bytes not moved versus an exact f32 exchange (quantization
    /// savings on refreshes + whole exchanges elided by stale hits).
    pub bytes_saved: u64,
    /// Ghost vectors served from a stale cache instead of the wire.
    pub stale_hits: u64,
    /// Nanoseconds of interior aggregation overlapped with in-flight
    /// exchanges (summed across shard tasks).
    pub overlap_ns: u64,
}

impl CommState {
    /// Builds the compressed-path state for `plan` and the layer widths
    /// `dims = [in_dim, hidden…, classes]`.
    pub fn build(plan: &ShardPlan, dims: &[usize], mode: QuantMode, staleness: u64) -> CommState {
        let l = dims.len() - 1;
        let exports: Vec<Vec<usize>> = plan
            .export_ranks()
            .into_iter()
            .map(|e| e.into_iter().map(|r| r as usize).collect())
            .collect();
        let halo_pos: Vec<Vec<u32>> = plan
            .shards
            .iter()
            .map(|shard| {
                shard
                    .halo_src
                    .iter()
                    .map(|&(owner, rank)| {
                        exports[owner as usize]
                            .binary_search(&(rank as usize))
                            .expect("ghosted rank is exported") as u32
                    })
                    .collect()
            })
            .collect();
        let mut op_interior = Vec::with_capacity(plan.k);
        let mut op_boundary = Vec::with_capacity(plan.k);
        for shard in &plan.shards {
            let n_owned = shard.owned.len();
            let n_local = shard.n_local();
            // Local slot → owned rank (valid only for owned slots).
            let mut rank_of_slot = vec![u32::MAX; n_local];
            for (r, &lr) in shard.owned_local.iter().enumerate() {
                rank_of_slot[lr as usize] = r as u32;
            }
            let mut is_interior = vec![false; n_owned];
            for &r in shard.interior_rows() {
                is_interior[r as usize] = true;
            }
            let weighted = shard.op.weights().is_some();
            // Interior operator: full rows of interior ranks, columns
            // remapped local-slot → owned-rank (monotone over owned
            // slots, so strict ascending order is preserved).
            let mut indptr = vec![0usize; n_owned + 1];
            let mut indices = Vec::new();
            let mut weights = Vec::new();
            for r in 0..n_owned {
                if is_interior[r] {
                    let lr = shard.owned_local[r];
                    for (j, &lv) in shard.op.neighbors(lr).iter().enumerate() {
                        indices.push(rank_of_slot[lv as usize]);
                        if let Some(w) = shard.op.weights_of(lr) {
                            weights.push(w[j]);
                        }
                    }
                }
                indptr[r + 1] = indices.len();
            }
            op_interior.push(
                CsrGraph::from_parts(n_owned, indptr, indices, weighted.then_some(weights))
                    .expect("interior slice preserves CSR invariants"),
            );
            // Boundary operator: full rows of boundary ranks at their
            // local slots, untouched column space.
            let mut is_boundary_slot = vec![false; n_local];
            for &r in shard.boundary_rows() {
                is_boundary_slot[shard.owned_local[r as usize] as usize] = true;
            }
            let mut indptr = vec![0usize; n_local + 1];
            let mut indices = Vec::new();
            let mut weights = Vec::new();
            for lu in 0..n_local {
                if is_boundary_slot[lu] {
                    for (j, &lv) in shard.op.neighbors(lu as u32).iter().enumerate() {
                        indices.push(lv);
                        if let Some(w) = shard.op.weights_of(lu as u32) {
                            weights.push(w[j]);
                        }
                    }
                }
                indptr[lu + 1] = indices.len();
            }
            op_boundary.push(
                CsrGraph::from_parts(n_local, indptr, indices, weighted.then_some(weights))
                    .expect("boundary slice preserves CSR invariants"),
            );
        }
        let fwd_sites = l - 1;
        let total_sites = 2 * (l - 1);
        let site_dim = |site: usize| {
            if site < fwd_sites {
                dims[site + 1]
            } else {
                dims[site - fwd_sites + 1]
            }
        };
        let residuals: Vec<Vec<DenseMatrix>> = (0..total_sites)
            .map(|site| {
                exports.iter().map(|e| DenseMatrix::zeros(e.len(), site_dim(site))).collect()
            })
            .collect();
        let cache: Vec<Vec<DenseMatrix>> = (0..fwd_sites)
            .map(|_| (0..plan.k).map(|_| DenseMatrix::zeros(0, 0)).collect())
            .collect();
        CommState {
            mode,
            staleness: staleness.max(1),
            exports,
            halo_pos,
            op_interior,
            op_boundary,
            residuals,
            cache,
            visits: vec![0; fwd_sites],
            bytes_saved: 0,
            stale_hits: 0,
            overlap_ns: 0,
        }
    }

    /// Backward site index for layer `i` (`1 ≤ i < L`), given `L` layers.
    #[inline]
    pub fn bwd_site(l: usize, i: usize) -> usize {
        (l - 1) + (i - 1)
    }

    /// Advances forward site `site`'s staleness clock; true when this
    /// visit must refresh (fetch fresh ghosts over the wire).
    pub fn tick_refresh(&mut self, site: usize) -> bool {
        let v = self.visits[site];
        self.visits[site] += 1;
        v.is_multiple_of(self.staleness)
    }

    /// Resident bytes of the state (ledger accounting): sub-operators,
    /// index maps, residuals, and fully-populated ghost caches (charged
    /// up front even though caches fill lazily).
    pub fn nbytes(&self, plan: &ShardPlan, dims: &[usize]) -> usize {
        let l = dims.len() - 1;
        let ops: usize = self
            .op_interior
            .iter()
            .zip(&self.op_boundary)
            .map(|(a, b)| a.nbytes() + b.nbytes())
            .sum();
        let maps: usize = self.exports.iter().map(|e| e.len() * 8).sum::<usize>()
            + self.halo_pos.iter().map(|h| h.len() * 4).sum::<usize>();
        let resid: usize = self.residuals.iter().flatten().map(|m| m.nbytes()).sum();
        let caches: usize = (0..l.saturating_sub(1))
            .map(|i| plan.shards.iter().map(|s| s.halo.len() * dims[i + 1] * 4).sum::<usize>())
            .sum();
        ops + maps + resid + caches
    }
}

/// Checkpoints the compressed path's epoch-evolving state (DESIGN.md
/// §11): error-feedback residuals, forward ghost caches, staleness
/// clocks, and the cumulative traffic counters. Together with the model
/// and Adam records this makes `Compressed` resume bitwise — without the
/// residuals a resumed run re-quantizes from zero carry-over and every
/// subsequent exchange drifts; without the caches and clocks a resumed
/// mid-staleness-window run refetches fresh ghosts the uninterrupted run
/// served stale. `overlap_ns` is deliberately not saved: it is
/// wall-clock telemetry, not state the numerics depend on.
///
/// All records live under the `comm.` prefix. Ghost caches store their
/// row count explicitly because a cache is 0×0 until its first refresh,
/// and that emptiness must round-trip as-is.
impl CkptSidecar for CommState {
    fn save(&self, c: &mut Ckpt) {
        c.put_u64("comm.sites", self.residuals.len() as u64);
        c.put_u64("comm.shards", self.exports.len() as u64);
        c.put_u64s("comm.visits", &self.visits);
        c.put_u64("comm.bytes_saved", self.bytes_saved);
        c.put_u64("comm.stale_hits", self.stale_hits);
        for (s, per_shard) in self.residuals.iter().enumerate() {
            for (k, r) in per_shard.iter().enumerate() {
                c.put_f32s(&format!("comm.resid.{s}.{k}"), r.data());
            }
        }
        for (s, per_shard) in self.cache.iter().enumerate() {
            for (k, m) in per_shard.iter().enumerate() {
                c.put_u64(&format!("comm.cache.{s}.{k}.rows"), m.rows() as u64);
                c.put_f32s(&format!("comm.cache.{s}.{k}"), m.data());
            }
        }
    }

    fn restore(&mut self, c: &Ckpt) -> Result<(), CkptError> {
        let wrong = |field: String, expected: usize, found: usize| CkptError::WrongShape {
            field,
            expected: expected * 4,
            found: found * 4,
        };
        let sites = c.u64("comm.sites")? as usize;
        let shards = c.u64("comm.shards")? as usize;
        if sites != self.residuals.len() || shards != self.exports.len() {
            return Err(wrong("comm.sites".to_string(), self.residuals.len(), sites));
        }
        let visits = c.u64s("comm.visits")?;
        if visits.len() != self.visits.len() {
            return Err(wrong("comm.visits".to_string(), self.visits.len(), visits.len()));
        }
        let bytes_saved = c.u64("comm.bytes_saved")?;
        let stale_hits = c.u64("comm.stale_hits")?;
        // Validate every tensor record against the live shapes before
        // touching anything (the same no-half-restore rule as params).
        let mut resid = Vec::with_capacity(sites);
        for (s, per_shard) in self.residuals.iter().enumerate() {
            let mut row = Vec::with_capacity(per_shard.len());
            for (k, r) in per_shard.iter().enumerate() {
                let field = format!("comm.resid.{s}.{k}");
                let vals = c.f32s(&field)?;
                if vals.len() != r.data().len() {
                    return Err(wrong(field, r.data().len(), vals.len()));
                }
                row.push(vals);
            }
            resid.push(row);
        }
        let mut caches = Vec::with_capacity(self.cache.len());
        for s in 0..self.cache.len() {
            let mut row = Vec::with_capacity(shards);
            for k in 0..shards {
                let field = format!("comm.cache.{s}.{k}");
                let rows = c.u64(&format!("{field}.rows"))? as usize;
                let vals = c.f32s(&field)?;
                // A cache is either still unfilled (0×0) or holds one
                // ghost row per halo slot at the site's width.
                let halo = self.halo_pos[k].len();
                let cols = self.residuals[s][k].cols();
                if !(rows == 0 || rows == halo) || vals.len() != rows * cols {
                    return Err(wrong(field, halo * cols, vals.len()));
                }
                row.push((rows, cols, vals));
            }
            caches.push(row);
        }
        // All records verified — copy back.
        self.visits.copy_from_slice(&visits);
        self.bytes_saved = bytes_saved;
        self.stale_hits = stale_hits;
        for (per_shard, vals) in self.residuals.iter_mut().zip(resid) {
            for (r, v) in per_shard.iter_mut().zip(vals) {
                r.data_mut().copy_from_slice(&v);
            }
        }
        for (per_shard, vals) in self.cache.iter_mut().zip(caches) {
            for (m, (rows, cols, v)) in per_shard.iter_mut().zip(vals) {
                // Unfilled caches round-trip as the 0×0 the builder made.
                let mut fresh = DenseMatrix::zeros(rows, if rows == 0 { 0 } else { cols });
                fresh.data_mut().copy_from_slice(&v);
                *m = fresh;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sgnn_partition::{hash_partition, Partition, ShardPlan};

    #[test]
    fn regime_labels_and_parse_round_trip() {
        assert_eq!(CommRegime::Exact.label(), "exact");
        let c = CommRegime::Compressed { quant: QuantMode::Int8, staleness: 4 };
        assert_eq!(c.label(), "int8,s=4");
        assert_eq!(CommRegime::parse("exact"), Some(CommRegime::Exact));
        assert_eq!(CommRegime::parse("int8,s=4"), Some(c));
        assert_eq!(
            CommRegime::parse("f16"),
            Some(CommRegime::Compressed { quant: QuantMode::F16, staleness: 1 })
        );
        assert_eq!(CommRegime::parse("nope"), None);
        // Staleness 0 is clamped to 1 everywhere it matters.
        let z = CommRegime::Compressed { quant: QuantMode::F32, staleness: 0 };
        assert_eq!(z.compressed(), Some((QuantMode::F32, 1)));
        assert_eq!(z.label(), "f32,s=1");
        assert_eq!(CommRegime::default(), CommRegime::Exact);
    }

    /// The interior operator carries exactly the interior ranks' rows
    /// (remapped) and the boundary operator exactly the boundary slots'
    /// rows (in place); together they cover the local operator's owned
    /// rows with identical weights.
    #[test]
    fn sub_operators_tile_the_local_operator() {
        let g = sgnn_graph::generate::barabasi_albert(120, 2, 9);
        let p = hash_partition(g.num_nodes(), 3);
        let plan = ShardPlan::build(&g, &p).unwrap();
        let state = CommState::build(&plan, &[4, 8, 3], QuantMode::Int8, 2);
        for (s, shard) in plan.shards.iter().enumerate() {
            let oi = &state.op_interior[s];
            let ob = &state.op_boundary[s];
            assert_eq!(oi.num_nodes(), shard.owned.len());
            assert_eq!(ob.num_nodes(), shard.n_local());
            let mut is_interior = vec![false; shard.owned.len()];
            for &r in shard.interior_rows() {
                is_interior[r as usize] = true;
            }
            for (r, &lr) in shard.owned_local.iter().enumerate() {
                let full = shard.op.neighbors(lr);
                if is_interior[r] {
                    // Interior row: same length, slots remapped to ranks.
                    let got = oi.neighbors(r as u32);
                    assert_eq!(got.len(), full.len());
                    for (&rank, &slot) in got.iter().zip(full) {
                        assert_eq!(shard.owned_local[rank as usize], slot);
                    }
                    assert_eq!(oi.weights_of(r as u32), shard.op.weights_of(lr));
                    assert!(ob.neighbors(lr).is_empty());
                } else {
                    assert!(oi.neighbors(r as u32).is_empty());
                    assert_eq!(ob.neighbors(lr), full);
                    assert_eq!(ob.weights_of(lr), shard.op.weights_of(lr));
                }
            }
            // Halo slots carry no rows in either operator.
            for &hl in &shard.halo_local {
                assert!(ob.neighbors(hl).is_empty());
            }
        }
        // Every halo slot's export position points back at its rank.
        for (s, shard) in plan.shards.iter().enumerate() {
            for (t, &(owner, rank)) in shard.halo_src.iter().enumerate() {
                let pos = state.halo_pos[s][t] as usize;
                assert_eq!(state.exports[owner as usize][pos], rank as usize);
            }
        }
    }

    #[test]
    fn staleness_clock_is_deterministic() {
        let g = sgnn_graph::GraphBuilder::new(4)
            .symmetric()
            .edges(&[(0, 1), (1, 2), (2, 3)])
            .build()
            .unwrap();
        let p = Partition::new(vec![0, 0, 1, 1], 2);
        let plan = ShardPlan::build(&g, &p).unwrap();
        let mut st = CommState::build(&plan, &[4, 8, 8, 3], QuantMode::F16, 3);
        // Two forward sites, each on its own clock: refresh at visits
        // 0, 3, 6, … regardless of the other site's clock.
        let hits: Vec<bool> = (0..7).map(|_| st.tick_refresh(0)).collect();
        assert_eq!(hits, [true, false, false, true, false, false, true]);
        assert!(st.tick_refresh(1));
        assert!(!st.tick_refresh(1));
        // Staleness 1: every visit refreshes.
        let mut fresh = CommState::build(&plan, &[4, 8, 3], QuantMode::F32, 1);
        assert!((0..5).all(|_| fresh.tick_refresh(0)));
    }
}
