//! Graph Transformer with hub-label SPD bias (§3.4.1 future direction,
//! DHIL-GT [27]).
//!
//! Graph Transformers "learn graph topology as sequence": attention over
//! node sets, with structural information injected as an *attention bias*.
//! DHIL-GT's contribution is the data-management angle — the
//! shortest-path-distance bias is **queried on demand from a hub-label
//! index** ([`sgnn_sim::HubLabels`]) per mini-batch instead of being
//! precomputed `n×n`, which is what makes the architecture scale.
//!
//! This module implements the full loop: a single-head attention layer
//! with learnable per-distance-bucket bias (manual backprop, gradient-
//! checked in tests), batched training where each batch's SPD matrix comes
//! from microsecond label queries.

use sgnn_data::Dataset;
use sgnn_graph::NodeId;
use sgnn_linalg::DenseMatrix;
use sgnn_nn::layers::Linear;
use sgnn_nn::optim::Optimizer;
use sgnn_nn::Mlp;
use sgnn_sim::HubLabels;

/// Single-head attention with additive SPD-bucket bias.
pub struct SpdAttention {
    wq: Linear,
    wk: Linear,
    wv: Linear,
    /// Learnable additive bias per SPD bucket (`0..=max_bucket+1`; the
    /// last bucket means "unreachable").
    pub bias: Vec<f32>,
    bias_grad: Vec<f32>,
    max_bucket: u32,
    dk: usize,
    cache: Option<AttnCache>,
}

struct AttnCache {
    x: DenseMatrix,
    k: DenseMatrix,
    q: DenseMatrix,
    v: DenseMatrix,
    attn: DenseMatrix,
    buckets: Vec<u32>,
}

impl SpdAttention {
    /// New layer: `d_in` input width, `dk` attention width, `dv` value
    /// width, SPD buckets `0..=max_bucket` plus an unreachable bucket.
    pub fn new(d_in: usize, dk: usize, dv: usize, max_bucket: u32, seed: u64) -> Self {
        SpdAttention {
            wq: Linear::new(d_in, dk, seed),
            wk: Linear::new(d_in, dk, seed + 1),
            wv: Linear::new(d_in, dv, seed + 2),
            bias: vec![0.0; max_bucket as usize + 2],
            bias_grad: vec![0.0; max_bucket as usize + 2],
            max_bucket,
            dk,
            cache: None,
        }
    }

    /// Maps a raw SPD to its bucket index.
    #[inline]
    pub fn bucket_of(&self, spd: u32) -> usize {
        if spd == sgnn_graph::traverse::UNREACHABLE {
            self.max_bucket as usize + 1
        } else {
            spd.min(self.max_bucket) as usize
        }
    }

    /// Forward pass over a batch: `x` is `m×d_in`, `buckets` is the
    /// row-major `m×m` SPD bucket matrix. Returns the `m×dv` output.
    pub fn forward(&mut self, x: &DenseMatrix, buckets: &[u32]) -> DenseMatrix {
        let m = x.rows();
        assert_eq!(buckets.len(), m * m, "bucket matrix must be m×m");
        let q = self.wq.forward(x);
        let k = self.wk.forward(x);
        let v = self.wv.forward(x);
        let scale = 1.0 / (self.dk as f32).sqrt();
        let mut scores = q.matmul(&k.transpose()).expect("shapes fixed");
        scores.scale(scale);
        for i in 0..m {
            let row = scores.row_mut(i);
            for j in 0..m {
                row[j] += self.bias[buckets[i * m + j] as usize];
            }
        }
        scores.softmax_rows();
        let out = scores.matmul(&v).expect("shapes fixed");
        self.cache =
            Some(AttnCache { x: x.clone(), q, k, v, attn: scores, buckets: buckets.to_vec() });
        out
    }

    /// Inference forward (no cache).
    pub fn forward_inference(&self, x: &DenseMatrix, buckets: &[u32]) -> DenseMatrix {
        let m = x.rows();
        let q = self.wq.forward_inference(x);
        let k = self.wk.forward_inference(x);
        let v = self.wv.forward_inference(x);
        let scale = 1.0 / (self.dk as f32).sqrt();
        let mut scores = q.matmul(&k.transpose()).expect("shapes fixed");
        scores.scale(scale);
        for i in 0..m {
            let row = scores.row_mut(i);
            for j in 0..m {
                row[j] += self.bias[buckets[i * m + j] as usize];
            }
        }
        scores.softmax_rows();
        scores.matmul(&v).expect("shapes fixed")
    }

    /// Backward from `d_out`; accumulates parameter and bias gradients.
    /// Returns `dX` (attention-path contribution only).
    pub fn backward(&mut self, d_out: &DenseMatrix) -> DenseMatrix {
        let cache = self.cache.take().expect("backward before forward");
        let m = cache.x.rows();
        let scale = 1.0 / (self.dk as f32).sqrt();
        // dV = Aᵀ dO.
        let d_v = cache.attn.transpose().matmul(d_out).expect("shapes fixed");
        // dA = dO Vᵀ.
        let d_attn = d_out.matmul(&cache.v.transpose()).expect("shapes fixed");
        // Softmax Jacobian per row: dS_ij = A_ij (dA_ij − Σ_k A_ik dA_ik).
        let mut d_scores = DenseMatrix::zeros(m, m);
        for i in 0..m {
            let a = cache.attn.row(i);
            let da = d_attn.row(i);
            let dot: f32 = a.iter().zip(da.iter()).map(|(x, y)| x * y).sum();
            let out = d_scores.row_mut(i);
            for j in 0..m {
                out[j] = a[j] * (da[j] - dot);
            }
        }
        // Bias gradient: sum dS over cells sharing a bucket.
        for i in 0..m {
            for j in 0..m {
                self.bias_grad[cache.buckets[i * m + j] as usize] += d_scores.get(i, j);
            }
        }
        // dQ = dS K·scale ; dK = dSᵀ Q·scale.
        let mut d_q = d_scores.matmul(&cache.k).expect("shapes fixed");
        d_q.scale(scale);
        let mut d_k = d_scores.transpose().matmul(&cache.q).expect("shapes fixed");
        d_k.scale(scale);
        // Linear backward passes (they cached x at forward time).
        let dx_q = self.wq.backward(&d_q);
        let dx_k = self.wk.backward(&d_k);
        let dx_v = self.wv.backward(&d_v);
        let mut dx = dx_q;
        dx.add_scaled(1.0, &dx_k).expect("shapes fixed");
        dx.add_scaled(1.0, &dx_v).expect("shapes fixed");
        dx
    }

    /// Zeroes all gradients.
    pub fn zero_grad(&mut self) {
        self.wq.zero_grad();
        self.wk.zero_grad();
        self.wv.zero_grad();
        self.bias_grad.iter_mut().for_each(|g| *g = 0.0);
    }

    /// Optimizer step (uses high slot ids to avoid colliding with heads).
    pub fn step(&mut self, opt: &mut dyn Optimizer, slot_base: usize) {
        let mut slot = slot_base;
        for l in [&mut self.wq, &mut self.wk, &mut self.wv] {
            l.visit_params(&mut |p, g| {
                opt.update(slot, p, g);
                slot += 1;
            });
        }
        let mut b = DenseMatrix::from_vec(1, self.bias.len(), self.bias.clone());
        let g = DenseMatrix::from_vec(1, self.bias.len(), self.bias_grad.clone());
        opt.update(slot, &mut b, &g);
        self.bias.copy_from_slice(b.data());
    }
}

/// DHIL-GT-style model: hub-label SPD index + SPD-bias attention + MLP
/// readout on `[X ‖ attention(X)]`.
pub struct DhilGt {
    /// The SPD index (built once; queried per batch).
    pub labels: HubLabels,
    attn: SpdAttention,
    head: Mlp,
}

impl DhilGt {
    /// Builds the index and the model.
    pub fn new(ds: &Dataset, dk: usize, dv: usize, hidden: &[usize], seed: u64) -> Self {
        let labels = HubLabels::build(&ds.graph);
        let d = ds.feature_dim();
        let mut dims = vec![d + dv];
        dims.extend_from_slice(hidden);
        dims.push(ds.num_classes);
        DhilGt {
            labels,
            attn: SpdAttention::new(d, dk, dv, 4, seed),
            head: Mlp::new(&dims, 0.1, seed + 10),
        }
    }

    /// SPD bucket matrix for a batch, via on-demand label queries.
    pub fn batch_buckets(&self, nodes: &[NodeId]) -> Vec<u32> {
        let m = nodes.len();
        let mut out = vec![0u32; m * m];
        for i in 0..m {
            for j in 0..m {
                out[i * m + j] = self.attn.bucket_of(self.labels.query(nodes[i], nodes[j])) as u32;
            }
        }
        out
    }

    /// One training step on a node batch; returns the loss.
    pub fn train_step(&mut self, ds: &Dataset, nodes: &[NodeId], opt: &mut dyn Optimizer) -> f32 {
        let rows: Vec<usize> = nodes.iter().map(|&u| u as usize).collect();
        let x = ds.features.gather_rows(&rows);
        let buckets = self.batch_buckets(nodes);
        let o = self.attn.forward(&x, &buckets);
        let xin = x.concat_cols(&o).expect("row counts equal");
        let logits = self.head.forward(&xin);
        let (loss, dl) = sgnn_nn::softmax_cross_entropy(&logits, &ds.labels_of(nodes), None);
        self.attn.zero_grad();
        self.head.zero_grad();
        let dxin = self.head.backward(&dl);
        // Split the gradient: first d columns belong to raw X (ignored —
        // inputs), the rest to the attention output.
        let d = ds.feature_dim();
        let mut d_o = DenseMatrix::zeros(nodes.len(), xin.cols() - d);
        for r in 0..nodes.len() {
            d_o.row_mut(r).copy_from_slice(&dxin.row(r)[d..]);
        }
        let _ = self.attn.backward(&d_o);
        self.head.step(opt);
        self.attn.step(opt, 500);
        loss
    }

    /// Inference logits for a node batch.
    pub fn logits_for(&self, ds: &Dataset, nodes: &[NodeId]) -> DenseMatrix {
        let rows: Vec<usize> = nodes.iter().map(|&u| u as usize).collect();
        let x = ds.features.gather_rows(&rows);
        let buckets = self.batch_buckets(nodes);
        let o = self.attn.forward_inference(&x, &buckets);
        self.head.forward_inference(&x.concat_cols(&o).expect("rows equal"))
    }

    /// The learned per-bucket attention bias (inspection/tests).
    pub fn bias(&self) -> &[f32] {
        &self.attn.bias
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sgnn_data::sbm_dataset;
    use sgnn_nn::optim::Adam;

    #[test]
    fn attention_rows_are_convex_combinations() {
        let mut attn = SpdAttention::new(4, 8, 4, 3, 1);
        let x = DenseMatrix::gaussian(6, 4, 1.0, 2);
        let buckets = vec![0u32; 36];
        let out = attn.forward(&x, &buckets);
        assert_eq!(out.shape(), (6, 4));
        // Output rows lie within the convex hull of V rows: check value
        // bounds column-wise.
        let v = attn.cache.as_ref().unwrap().v.clone();
        for c in 0..4 {
            let (mut lo, mut hi) = (f32::INFINITY, f32::NEG_INFINITY);
            for r in 0..6 {
                lo = lo.min(v.get(r, c));
                hi = hi.max(v.get(r, c));
            }
            for r in 0..6 {
                assert!(out.get(r, c) >= lo - 1e-5 && out.get(r, c) <= hi + 1e-5);
            }
        }
    }

    #[test]
    fn attention_gradient_check() {
        let mut attn = SpdAttention::new(3, 4, 3, 2, 3);
        let x = DenseMatrix::gaussian(5, 3, 1.0, 4);
        // Varied buckets so the bias matters.
        let buckets: Vec<u32> = (0..25).map(|i| (i % 3) as u32).collect();
        let r = DenseMatrix::gaussian(5, 3, 1.0, 5);
        let loss_of = |a: &SpdAttention| -> f32 {
            let y = a.forward_inference(&x, &buckets);
            sgnn_linalg::vecops::dot(y.data(), r.data())
        };
        let _ = attn.forward(&x, &buckets);
        attn.zero_grad();
        let _ = attn.backward(&r);
        let eps = 1e-2f32;
        // Bias bucket 1.
        let analytic_bias = attn.bias_grad[1];
        let base = loss_of(&attn);
        attn.bias[1] += eps;
        let num = (loss_of(&attn) - base) / eps;
        attn.bias[1] -= eps;
        assert!((num - analytic_bias).abs() < 2e-2, "bias: num {num} vs analytic {analytic_bias}");
        // Wq entry.
        let analytic_wq = attn.wq.gw.get(1, 2);
        let w = attn.wq.w.get(1, 2);
        attn.wq.w.set(1, 2, w + eps);
        let num_wq = (loss_of(&attn) - base) / eps;
        attn.wq.w.set(1, 2, w);
        assert!((num_wq - analytic_wq).abs() < 2e-2, "wq: num {num_wq} vs analytic {analytic_wq}");
        // Wv entry.
        let analytic_wv = attn.wv.gw.get(0, 1);
        let wv = attn.wv.w.get(0, 1);
        attn.wv.w.set(0, 1, wv + eps);
        let num_wv = (loss_of(&attn) - base) / eps;
        attn.wv.w.set(0, 1, wv);
        assert!((num_wv - analytic_wv).abs() < 2e-2, "wv: num {num_wv} vs analytic {analytic_wv}");
    }

    #[test]
    fn dhil_gt_learns_and_uses_distance_bias() {
        // Homophilous SBM: same-class nodes are close, so attending by
        // small SPD is the winning strategy — the learned bias should
        // favor near buckets over far ones.
        let ds = sbm_dataset(400, 2, 10.0, 0.9, 6, 1.0, 0, 0.5, 0.25, 6);
        let mut model = DhilGt::new(&ds, 8, 8, &[16], 7);
        let mut opt = Adam::new(0.01);
        for epoch in 0..30u64 {
            let _ = epoch;
            for chunk in ds.splits.train.chunks(64) {
                model.train_step(&ds, chunk, &mut opt);
            }
        }
        let mut correct = 0usize;
        for chunk in ds.splits.test.chunks(64) {
            let logits = model.logits_for(&ds, chunk);
            let labels = ds.labels_of(chunk);
            correct +=
                logits.argmax_rows().iter().zip(labels.iter()).filter(|&(p, t)| p == t).count();
        }
        let acc = correct as f64 / ds.splits.test.len() as f64;
        assert!(acc > 0.8, "accuracy {acc}");
        // Bias at distance ≤1 should exceed the far bucket.
        let bias = model.bias();
        let near = bias[1];
        let far = bias[4];
        assert!(near > far, "near-bias {near} should beat far-bias {far}: {bias:?}");
    }

    #[test]
    fn batch_buckets_query_hub_labels() {
        let ds = sbm_dataset(100, 2, 6.0, 0.8, 4, 0.5, 0, 0.5, 0.25, 8);
        let model = DhilGt::new(&ds, 4, 4, &[8], 9);
        let nodes: Vec<NodeId> = vec![0, 1, 2];
        let b = model.batch_buckets(&nodes);
        assert_eq!(b.len(), 9);
        // Diagonal is distance 0.
        assert_eq!(b[0], 0);
        assert_eq!(b[4], 0);
        assert_eq!(b[8], 0);
    }
}
