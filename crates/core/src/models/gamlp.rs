//! GAMLP-style multi-scale hop attention (§3.3.1 "Subgraph-level"
//! sparsification / GAMLP [56]).
//!
//! GAMLP "establishes the attention mechanism to allocate node-wise
//! importance in multi-scale embeddings" with decoupled propagation. Our
//! rendition keeps the decoupled two-stage structure and the learnable
//! attention over hop embeddings `[X, ÂX, …, Â^K X]`, simplified from
//! node-wise to *hop-wise* attention (one learnable softmax weight per
//! hop, trained jointly with the MLP head; see DESIGN.md) — the ablation
//! experiment E12/E5 only needs the hop-mixing capability, not per-node
//! routing.

use sgnn_data::Dataset;
use sgnn_graph::normalize::{normalized_adjacency, NormKind};
use sgnn_graph::NodeId;
use sgnn_linalg::DenseMatrix;
use sgnn_nn::optim::Optimizer;
use sgnn_nn::Mlp;

/// GAMLP-style model: hop stack + attention + MLP head.
pub struct GamlpModel {
    /// Per-hop embeddings `[X, ÂX, …, Â^K X]` (row-normalized).
    pub hops: Vec<DenseMatrix>,
    /// Attention logits (length `K+1`).
    pub att_logits: Vec<f32>,
    att_grad: Vec<f32>,
    /// MLP head over the mixed embedding.
    pub mlp: Mlp,
    // Cache of (batch rows, attention weights, mixed input) for backward.
    cache: Option<(Vec<usize>, Vec<f32>)>,
}

impl GamlpModel {
    /// Precomputes `k+1` hop embeddings and builds the head.
    pub fn new(ds: &Dataset, k: usize, hidden: &[usize], dropout: f32, seed: u64) -> Self {
        let adj = normalized_adjacency(&ds.graph, NormKind::Sym, true).expect("valid graph");
        let mut hops = sgnn_prop::power::hop_embeddings(&adj, &ds.features, k);
        for h in hops.iter_mut() {
            h.normalize_rows();
        }
        let d = ds.features.cols();
        let mut dims = vec![d];
        dims.extend_from_slice(hidden);
        dims.push(ds.num_classes);
        GamlpModel {
            att_logits: vec![0.0; k + 1],
            att_grad: vec![0.0; k + 1],
            hops,
            mlp: Mlp::new(&dims, dropout, seed),
            cache: None,
        }
    }

    /// Softmax attention weights over hops.
    pub fn attention(&self) -> Vec<f32> {
        let mut a = self.att_logits.clone();
        sgnn_linalg::vecops::softmax_row(&mut a);
        a
    }

    fn mix(&self, rows: &[usize], att: &[f32]) -> DenseMatrix {
        let d = self.hops[0].cols();
        let mut x = DenseMatrix::zeros(rows.len(), d);
        for (h, &a) in self.hops.iter().zip(att.iter()) {
            let g = h.gather_rows(rows);
            x.add_scaled(a, &g).expect("shapes fixed");
        }
        x
    }

    /// Training forward on a node batch; returns logits.
    pub fn forward(&mut self, nodes: &[NodeId]) -> DenseMatrix {
        let rows: Vec<usize> = nodes.iter().map(|&u| u as usize).collect();
        let att = self.attention();
        let x = self.mix(&rows, &att);
        let out = self.mlp.forward(&x);
        self.cache = Some((rows, att));
        out
    }

    /// Inference logits for a node batch.
    pub fn forward_inference(&self, nodes: &[NodeId]) -> DenseMatrix {
        let rows: Vec<usize> = nodes.iter().map(|&u| u as usize).collect();
        let att = self.attention();
        self.mlp.forward_inference(&self.mix(&rows, &att))
    }

    /// Backward: gradient to the MLP and to the attention logits.
    pub fn backward(&mut self, dlogits: &DenseMatrix) {
        let (rows, att) = self.cache.take().expect("backward before forward");
        let dx = self.mlp.backward(dlogits);
        // d a_h = <dx, E_h[rows]>; then softmax Jacobian to logits.
        let mut da = vec![0f32; att.len()];
        for (h, slot) in self.hops.iter().zip(da.iter_mut()) {
            let g = h.gather_rows(&rows);
            *slot = sgnn_linalg::vecops::dot(dx.data(), g.data());
        }
        // dlogit_i = a_i (da_i − Σ_j a_j da_j).
        let dot: f32 = att.iter().zip(da.iter()).map(|(a, d)| a * d).sum();
        for i in 0..att.len() {
            self.att_grad[i] += att[i] * (da[i] - dot);
        }
    }

    /// Zeroes all gradients.
    pub fn zero_grad(&mut self) {
        self.mlp.zero_grad();
        self.att_grad.iter_mut().for_each(|g| *g = 0.0);
    }

    /// Optimizer step (attention logits use a plain SGD-style update with
    /// the optimizer's learning rate folded in via slot mechanics — we
    /// wrap them in a 1×(K+1) matrix so Adam state applies).
    pub fn step(&mut self, opt: &mut dyn Optimizer) {
        // Head first: slots 0..2L.
        self.mlp.step(opt);
        // Attention logits as one extra parameter tensor in a high slot.
        let k = self.att_logits.len();
        let mut p = DenseMatrix::from_vec(1, k, self.att_logits.clone());
        let g = DenseMatrix::from_vec(1, k, self.att_grad.clone());
        opt.update(1_000, &mut p, &g);
        self.att_logits.copy_from_slice(p.data());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sgnn_data::sbm_dataset;
    use sgnn_nn::loss::softmax_cross_entropy;
    use sgnn_nn::optim::Adam;

    #[test]
    fn attention_is_a_distribution() {
        let ds = sbm_dataset(100, 2, 6.0, 0.8, 4, 0.5, 0, 0.5, 0.25, 1);
        let m = GamlpModel::new(&ds, 3, &[8], 0.1, 2);
        let a = m.attention();
        assert_eq!(a.len(), 4);
        assert!((a.iter().sum::<f32>() - 1.0).abs() < 1e-5);
        assert!(a.iter().all(|&v| (v - 0.25).abs() < 1e-5)); // uniform init
    }

    #[test]
    fn gamlp_learns_and_adapts_attention() {
        let ds = sbm_dataset(500, 3, 10.0, 0.9, 6, 1.0, 0, 0.5, 0.25, 3);
        let mut m = GamlpModel::new(&ds, 3, &[16], 0.1, 4);
        let mut opt = Adam::new(0.01);
        let init_att = m.attention();
        for _ in 0..80 {
            let logits = m.forward(&ds.splits.train);
            let (_, dl) = softmax_cross_entropy(&logits, &ds.labels_of(&ds.splits.train), None);
            m.zero_grad();
            m.backward(&dl);
            m.step(&mut opt);
        }
        let logits = m.forward_inference(&ds.splits.test);
        let acc = sgnn_nn::loss::accuracy(&logits, &ds.labels_of(&ds.splits.test));
        assert!(acc > 0.8, "accuracy {acc}");
        // Attention moved away from uniform.
        let att = m.attention();
        let moved: f32 = att.iter().zip(init_att.iter()).map(|(a, b)| (a - b).abs()).sum();
        assert!(moved > 0.01, "attention did not adapt: {att:?}");
    }

    #[test]
    fn attention_gradient_matches_finite_difference() {
        let ds = sbm_dataset(60, 2, 5.0, 0.8, 4, 0.5, 0, 0.5, 0.25, 5);
        let mut m = GamlpModel::new(&ds, 2, &[], 0.0, 6);
        let nodes: Vec<NodeId> = (0..20).collect();
        let labels = ds.labels_of(&nodes);
        let logits = m.forward(&nodes);
        let (_, dl) = softmax_cross_entropy(&logits, &labels, None);
        m.zero_grad();
        m.backward(&dl);
        let analytic = m.att_grad[1];
        let eps = 1e-2f32;
        let loss_at = |m: &GamlpModel| {
            let l = m.forward_inference(&nodes);
            softmax_cross_entropy(&l, &labels, None).0
        };
        let base = loss_at(&m);
        m.att_logits[1] += eps;
        let bumped = loss_at(&m);
        let num = (bumped - base) / eps;
        assert!((num - analytic).abs() < 2e-2, "num {num} vs analytic {analytic}");
    }
}
