//! Full-batch GCN — the canonical message-passing baseline (§3.1.1).
//!
//! `H^{(l+1)} = σ(Â H^{(l)} W^{(l)})` with `Â = D̃^{-1/2}(A+I)D̃^{-1/2}`.
//! Every scalable design in this workspace is benchmarked against this
//! model: it is accurate, and it is exactly the thing that does not scale
//! (graph-sized activations per layer, `L·nnz·d` work per epoch).
//!
//! The model does **not** own its propagation operator — `forward`/
//! `backward` take it per call, so the same weights train on the full
//! graph, on GraphSAINT / Cluster-GCN subgraph batches, or on a coarse
//! graph (experiments E3/E12) without copies.

use sgnn_graph::blocked::{spmm_quant_into, BlockSpec};
use sgnn_graph::normalize::{normalized_adjacency, NormKind};
use sgnn_graph::spmm::{spmm, spmm_into};
use sgnn_graph::CsrGraph;
use sgnn_linalg::{DenseMatrix, QuantMatrix, QuantMode};
use sgnn_nn::layers::{Dropout, Linear, ReLU};
use sgnn_nn::optim::Optimizer;

/// GCN hyperparameters.
#[derive(Debug, Clone)]
pub struct GcnConfig {
    /// Hidden layer widths (e.g. `[64]` for a 2-layer GCN).
    pub hidden: Vec<usize>,
    /// Dropout probability between layers.
    pub dropout: f32,
    /// Parameter seed.
    pub seed: u64,
}

impl Default for GcnConfig {
    fn default() -> Self {
        GcnConfig { hidden: vec![64], dropout: 0.5, seed: 0 }
    }
}

/// Builds the standard GCN operator for a graph (symmetric normalization
/// with self-loops).
pub fn gcn_operator(g: &CsrGraph) -> CsrGraph {
    normalized_adjacency(g, NormKind::Sym, true).expect("valid graph")
}

/// GCN weights, reusable across propagation operators.
pub struct Gcn {
    linears: Vec<Linear>,
    relus: Vec<ReLU>,
    dropouts: Vec<Dropout>,
    /// Reused SpMM output buffer: reshaped per layer, so steady-state
    /// epochs perform zero allocations on the propagation path.
    prop_scratch: DenseMatrix,
}

impl Gcn {
    /// Builds GCN weights for the given input/output widths.
    pub fn new(in_dim: usize, num_classes: usize, cfg: &GcnConfig) -> Self {
        let mut dims = vec![in_dim];
        dims.extend_from_slice(&cfg.hidden);
        dims.push(num_classes);
        let mut linears = Vec::new();
        let mut relus = Vec::new();
        let mut dropouts = Vec::new();
        for i in 0..dims.len() - 1 {
            linears.push(Linear::new(dims[i], dims[i + 1], cfg.seed.wrapping_add(i as u64)));
            if i + 2 < dims.len() {
                relus.push(ReLU::new());
                dropouts.push(Dropout::new(cfg.dropout, cfg.seed.wrapping_add(100 + i as u64)));
            }
        }
        Gcn { linears, relus, dropouts, prop_scratch: DenseMatrix::default() }
    }

    /// Number of weight layers.
    pub fn num_layers(&self) -> usize {
        self.linears.len()
    }

    /// Total parameters.
    pub fn num_params(&self) -> usize {
        self.linears.iter().map(|l| l.num_params()).sum()
    }

    /// Direct access to a layer (tests, inspection).
    pub fn layer(&self, i: usize) -> &Linear {
        &self.linears[i]
    }

    /// Mutable access to a layer (tests).
    pub fn layer_mut(&mut self, i: usize) -> &mut Linear {
        &mut self.linears[i]
    }

    /// Training forward over the graph behind `op` (a pre-normalized
    /// operator from [`gcn_operator`]); caches activations for backward.
    pub fn forward(&mut self, op: &CsrGraph, x: &DenseMatrix) -> DenseMatrix {
        let mut h = x.clone();
        let n = self.linears.len();
        let mut scratch = std::mem::take(&mut self.prop_scratch);
        for i in 0..n {
            scratch.reshape_scratch(h.rows(), h.cols());
            spmm_into(op, &h, &mut scratch);
            h = self.linears[i].forward(&scratch);
            if i + 1 < n {
                h = self.relus[i].forward(&h);
                h = self.dropouts[i].forward(&h);
            }
        }
        self.prop_scratch = scratch;
        h
    }

    /// Inference forward (no caches, no dropout).
    pub fn forward_inference(&self, op: &CsrGraph, x: &DenseMatrix) -> DenseMatrix {
        let mut h = x.clone();
        let n = self.linears.len();
        for i in 0..n {
            let ah = spmm(op, &h);
            h = self.linears[i].forward_inference(&ah);
            if i + 1 < n {
                h = self.relus[i].forward_inference(&h);
            }
        }
        h
    }

    /// Inference forward under a numeric `mode` — the serving path.
    ///
    /// [`QuantMode::F32`] (the default) is exactly
    /// [`forward_inference`](Self::forward_inference). The quantized modes
    /// re-quantize each layer's activations per row, run the quantized
    /// SpMM (int8/f16 gathers, f32 accumulate) and the quantized GEMM, and
    /// keep ReLU/bias in f32. Training never touches this path; the error
    /// tolerance is documented in DESIGN.md §9 and pinned by tests.
    pub fn forward_inference_quant(
        &self,
        op: &CsrGraph,
        x: &DenseMatrix,
        mode: QuantMode,
    ) -> DenseMatrix {
        if !mode.is_quantized() {
            return self.forward_inference(op, x);
        }
        let mut h = x.clone();
        let n = self.linears.len();
        for i in 0..n {
            let xq = QuantMatrix::quantize(&h, mode).expect("mode is quantized");
            let mut ah = DenseMatrix::zeros(h.rows(), h.cols());
            spmm_quant_into(op, &xq, &mut ah, BlockSpec::auto(op, h.cols()));
            h = self.linears[i].forward_inference_quant(&ah, mode);
            if i + 1 < n {
                h = self.relus[i].forward_inference(&h);
            }
        }
        h
    }

    /// Backward from the logits gradient through the same operator.
    ///
    /// Uses `Âᵀ = Â` (symmetric normalization), so `op` must be symmetric
    /// in values — true for [`gcn_operator`] on undirected graphs.
    pub fn backward(&mut self, op: &CsrGraph, dlogits: &DenseMatrix) {
        let n = self.linears.len();
        let mut g = dlogits.clone();
        let mut scratch = std::mem::take(&mut self.prop_scratch);
        for i in (0..n).rev() {
            if i + 1 < n {
                g = self.dropouts[i].backward(&g);
                g = self.relus[i].backward(&g);
            }
            let d_ah = self.linears[i].backward(&g);
            // The retired gradient buffer becomes next layer's scratch.
            scratch.reshape_scratch(d_ah.rows(), d_ah.cols());
            spmm_into(op, &d_ah, &mut scratch);
            std::mem::swap(&mut g, &mut scratch);
        }
        self.prop_scratch = scratch;
    }

    /// Zeroes gradients.
    pub fn zero_grad(&mut self) {
        for l in &mut self.linears {
            l.zero_grad();
        }
    }

    /// Optimizer step over all layers.
    pub fn step(&mut self, opt: &mut dyn Optimizer) {
        let mut slot = 0usize;
        for l in &mut self.linears {
            l.visit_params(&mut |p, g| {
                opt.update(slot, p, g);
                slot += 1;
            });
        }
        opt.step_done();
    }

    /// Visits every parameter tensor in the slot order [`step`](Gcn::step)
    /// uses — the checkpoint save/restore contract.
    pub fn visit_params_mut(&mut self, f: &mut dyn FnMut(&mut DenseMatrix)) {
        for l in &mut self.linears {
            l.visit_params(&mut |p, _| f(p));
        }
    }

    /// Per-layer dropout call counters — the mask stream positions. Part
    /// of the checkpoint contract: a resumed run must continue the same
    /// call sequence the reference run would use.
    pub fn dropout_calls(&self) -> Vec<u64> {
        self.dropouts.iter().map(|d| d.calls()).collect()
    }

    /// Restores the dropout call counters (checkpoint resume).
    pub fn restore_dropout_calls(&mut self, calls: &[u64]) {
        for (d, &c) in self.dropouts.iter_mut().zip(calls) {
            d.set_calls(c);
        }
    }

    /// Peak resident bytes of one training step on an `n_nodes` graph:
    /// two graph-scale activations per layer plus parameters.
    pub fn step_bytes(&self, n_nodes: usize, in_dim: usize) -> usize {
        let mut dims = vec![in_dim];
        dims.extend(self.linears.iter().map(|l| l.out_dim()));
        let acts: usize = dims.iter().map(|&d| 2 * n_nodes * d * 4).sum();
        let params: usize = self.linears.iter().map(|l| l.nbytes()).sum();
        acts + params
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sgnn_data::sbm_dataset;
    use sgnn_nn::loss::softmax_cross_entropy;
    use sgnn_nn::optim::Adam;

    #[test]
    fn gcn_learns_homophilous_sbm() {
        let ds = sbm_dataset(400, 4, 10.0, 0.9, 8, 1.0, 0, 0.5, 0.25, 1);
        let op = gcn_operator(&ds.graph);
        let mut gcn = Gcn::new(8, 4, &GcnConfig { hidden: vec![16], dropout: 0.1, seed: 2 });
        let mut opt = Adam::new(0.01);
        let train_rows: Vec<usize> = ds.splits.train.iter().map(|&u| u as usize).collect();
        let train_labels = ds.labels_of(&ds.splits.train);
        for _ in 0..60 {
            let logits = gcn.forward(&op, &ds.features);
            let batch_logits = logits.gather_rows(&train_rows);
            let (_, dl_batch) = softmax_cross_entropy(&batch_logits, &train_labels, None);
            let mut dl = DenseMatrix::zeros(400, 4);
            dl.scatter_rows(&train_rows, &dl_batch);
            gcn.zero_grad();
            gcn.backward(&op, &dl);
            gcn.step(&mut opt);
        }
        let logits = gcn.forward_inference(&op, &ds.features);
        let test_rows: Vec<usize> = ds.splits.test.iter().map(|&u| u as usize).collect();
        let acc = sgnn_nn::loss::accuracy(
            &logits.gather_rows(&test_rows),
            &ds.labels_of(&ds.splits.test),
        );
        assert!(acc > 0.8, "accuracy {acc}");
    }

    #[test]
    fn gradient_check_through_propagation() {
        let ds = sbm_dataset(30, 2, 4.0, 0.8, 4, 0.5, 0, 0.5, 0.25, 3);
        let op = gcn_operator(&ds.graph);
        let mut gcn = Gcn::new(4, 2, &GcnConfig { hidden: vec![5], dropout: 0.0, seed: 4 });
        let targets: Vec<usize> = ds.labels.clone();
        let loss_of = |g: &Gcn| {
            let logits = g.forward_inference(&op, &ds.features);
            softmax_cross_entropy(&logits, &targets, None).0
        };
        let logits = gcn.forward(&op, &ds.features);
        let (_, dl) = softmax_cross_entropy(&logits, &targets, None);
        gcn.zero_grad();
        gcn.backward(&op, &dl);
        let analytic = gcn.layer(0).gw.get(1, 2);
        let eps = 1e-2f32;
        let w0 = gcn.layer(0).w.get(1, 2);
        let base = loss_of(&gcn);
        gcn.layer_mut(0).w.set(1, 2, w0 + eps);
        let bumped = loss_of(&gcn);
        let num = (bumped - base) / eps;
        assert!((num - analytic).abs() < 2e-2, "num {num} vs analytic {analytic}");
    }

    #[test]
    fn same_weights_run_on_different_operators() {
        // The subgraph-training contract: one weight set, many graphs.
        let ds = sbm_dataset(100, 2, 6.0, 0.8, 4, 0.5, 0, 0.5, 0.25, 5);
        let op_full = gcn_operator(&ds.graph);
        let (sub, nodes) = ds.graph.induced_subgraph(&(0..40u32).collect::<Vec<_>>());
        let op_sub = gcn_operator(&sub);
        let gcn = Gcn::new(4, 2, &GcnConfig { hidden: vec![8], dropout: 0.0, seed: 6 });
        let full = gcn.forward_inference(&op_full, &ds.features);
        let rows: Vec<usize> = nodes.iter().map(|&u| u as usize).collect();
        let sub_logits = gcn.forward_inference(&op_sub, &ds.features.gather_rows(&rows));
        assert_eq!(full.shape(), (100, 2));
        assert_eq!(sub_logits.shape(), (40, 2));
    }

    #[test]
    fn quantized_inference_tracks_f32_within_tolerance() {
        // Fixed-seed forward: quantized logits must stay inside the
        // DESIGN.md §9 tolerance and agree with f32 on almost every label.
        let ds = sbm_dataset(300, 3, 8.0, 0.85, 16, 1.0, 0, 0.5, 0.25, 9);
        let op = gcn_operator(&ds.graph);
        let gcn = Gcn::new(16, 3, &GcnConfig { hidden: vec![32], dropout: 0.0, seed: 12 });
        let exact = gcn.forward_inference(&op, &ds.features);
        // F32 mode is the identical code path — bitwise equal.
        let f32_mode = gcn.forward_inference_quant(&op, &ds.features, QuantMode::F32);
        assert_eq!(f32_mode.data(), exact.data());
        let scale = exact.data().iter().fold(0f32, |m, v| m.max(v.abs()));
        for (mode, tol) in [(QuantMode::Int8, 0.05f32), (QuantMode::F16, 0.01f32)] {
            let got = gcn.forward_inference_quant(&op, &ds.features, mode);
            let mut max_err = 0f32;
            for (a, b) in got.data().iter().zip(exact.data()) {
                max_err = max_err.max((a - b).abs());
            }
            assert!(max_err < tol * scale.max(1.0), "{}: max_err {max_err}", mode.label());
            let agree = (0..300)
                .filter(|&r| {
                    sgnn_linalg::vecops::argmax(got.row(r))
                        == sgnn_linalg::vecops::argmax(exact.row(r))
                })
                .count();
            assert!(agree >= 295, "{}: only {agree}/300 labels agree", mode.label());
        }
    }

    #[test]
    fn shapes_and_params() {
        let gcn = Gcn::new(6, 2, &GcnConfig { hidden: vec![8, 4], dropout: 0.2, seed: 6 });
        assert_eq!(gcn.num_layers(), 3);
        assert_eq!(gcn.num_params(), 6 * 8 + 8 + 8 * 4 + 4 + 4 * 2 + 2);
        assert!(gcn.step_bytes(50, 6) > 0);
    }
}
