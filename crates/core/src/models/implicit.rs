//! Implicit GNNs (§3.2.3 "Graph Algebras"): node representations as the
//! equilibrium of `Z = γ·Â·Z + X`.
//!
//! "They acquire node representations by solving the equilibrium, thus
//! capturing full-graph information in a single layer and bypassing the
//! limited receptive field of general graph convolution." The equilibrium
//! is linear in our formulation (γ fixed, the readout MLP carries the
//! nonlinearity), so three solvers are interchangeable and directly
//! comparable — exactly the E8 experiment:
//!
//! - [`ImplicitSolver::FixedPoint`] — Picard iteration (MGNNI's training
//!   loop);
//! - [`ImplicitSolver::ConjugateGradient`] — Krylov solve of
//!   `(I − γÂ)Z = X` (SPD for `γ < 1`);
//! - [`ImplicitSolver::Spectral`] — EIGNN-style closed form through the
//!   top-k eigenpairs: `Z ≈ X + U(diag(1/(1−γλ)) − I)Uᵀ X` (exact in the
//!   captured subspace, identity elsewhere).

use sgnn_data::Dataset;
use sgnn_graph::normalize::{normalized_adjacency, NormKind};
use sgnn_graph::spmm::CsrOpF64;
use sgnn_graph::CsrGraph;
use sgnn_linalg::eigen::{lanczos, MatVecF64, SpectrumEnd};
use sgnn_linalg::DenseMatrix;
use sgnn_nn::Mlp;

/// Equilibrium solver choice.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ImplicitSolver {
    /// Picard iteration `Z ← γÂZ + X`.
    FixedPoint,
    /// Conjugate gradient on `(I − γÂ)Z = X`.
    ConjugateGradient,
    /// Closed form via top-k Lanczos eigenpairs.
    Spectral {
        /// Eigenpairs to resolve.
        k: usize,
    },
}

/// Solver work statistics (E8 comparison table).
#[derive(Debug, Clone, Default)]
pub struct SolveStats {
    /// Iterations (matvecs) per feature column, averaged.
    pub mean_iterations: f64,
    /// Final mean residual.
    pub mean_residual: f64,
}

/// Solves the equilibrium for every feature column over the standard
/// symmetric GCN operator of `g`.
pub fn solve_equilibrium(
    g: &CsrGraph,
    x: &DenseMatrix,
    gamma: f64,
    solver: ImplicitSolver,
    tol: f64,
    seed: u64,
) -> (DenseMatrix, SolveStats) {
    let adj = normalized_adjacency(g, NormKind::Sym, true).expect("valid graph");
    solve_equilibrium_op(&adj, x, gamma, solver, tol, seed)
}

/// Solves the equilibrium over a caller-supplied propagation operator.
///
/// The operator must have spectral radius ≤ 1 so `γ < 1` contracts. The
/// `ConjugateGradient` and `Spectral` solvers additionally require a
/// *symmetric* operator; directed operators (e.g. oriented chains, the
/// EIGNN long-range setup) must use `FixedPoint`.
pub fn solve_equilibrium_op(
    adj: &CsrGraph,
    x: &DenseMatrix,
    gamma: f64,
    solver: ImplicitSolver,
    tol: f64,
    seed: u64,
) -> (DenseMatrix, SolveStats) {
    assert!((0.0..1.0).contains(&gamma), "contraction requires gamma < 1");
    let n = x.rows();
    let d = x.cols();
    let mut z = DenseMatrix::zeros(n, d);
    let mut stats = SolveStats::default();
    match solver {
        ImplicitSolver::FixedPoint | ImplicitSolver::ConjugateGradient => {
            let mut col = vec![0f64; n];
            let mut iters = 0u64;
            let mut res = 0f64;
            for c in 0..d {
                for r in 0..n {
                    col[r] = x.get(r, c) as f64;
                }
                let result = match solver {
                    ImplicitSolver::FixedPoint => {
                        let op = CsrOpF64::new(adj);
                        sgnn_linalg::solve::fixed_point(&op, gamma, &col, tol, 10_000)
                            .expect("contraction converges")
                    }
                    _ => {
                        let op = CsrOpF64::affine(adj, -gamma, 1.0);
                        sgnn_linalg::conjugate_gradient(&op, &col, tol, 10_000)
                            .expect("SPD system converges")
                    }
                };
                iters += result.iterations as u64;
                res += result.residual;
                for r in 0..n {
                    z.set(r, c, result.x[r] as f32);
                }
            }
            stats.mean_iterations = iters as f64 / d as f64;
            stats.mean_residual = res / d as f64;
        }
        ImplicitSolver::Spectral { k } => {
            let op = CsrOpF64::new(adj);
            let pairs = lanczos(&op, k, SpectrumEnd::Largest, seed).expect("lanczos converges");
            // Z = X + U (diag(1/(1−γλ)) − 1) Uᵀ X, columns of U = eigvecs.
            let kk = pairs.values.len();
            let mut col = vec![0f64; n];
            for c in 0..d {
                for r in 0..n {
                    col[r] = x.get(r, c) as f64;
                    z.set(r, c, x.get(r, c));
                }
                for j in 0..kk {
                    let u = pairs.vector(j);
                    let lam = pairs.values[j];
                    let gain = 1.0 / (1.0 - gamma * lam) - 1.0;
                    let proj = sgnn_linalg::vecops::dot64(&u, &col);
                    for r in 0..n {
                        let v = z.get(r, c) as f64 + gain * proj * u[r];
                        z.set(r, c, v as f32);
                    }
                }
            }
            // One Lanczos factorization total; report matvec count as the
            // Krylov depth (independent of d — the EIGNN advantage).
            stats.mean_iterations = (2 * k + 10).max(30).min(n) as f64 / d as f64;
            // Residual of the equilibrium equation.
            let mut total_res = 0f64;
            let opn = CsrOpF64::new(adj);
            let mut zc = vec![0f64; n];
            let mut az = vec![0f64; n];
            for c in 0..d {
                for r in 0..n {
                    zc[r] = z.get(r, c) as f64;
                }
                az.iter_mut().for_each(|v| *v = 0.0);
                opn.matvec(&zc, &mut az);
                let mut res = 0f64;
                for r in 0..n {
                    let e = zc[r] - gamma * az[r] - x.get(r, c) as f64;
                    res += e * e;
                }
                total_res += res.sqrt();
            }
            stats.mean_residual = total_res / d as f64;
        }
    }
    (z, stats)
}

/// An implicit GNN: equilibrium embedding + MLP readout.
pub struct ImplicitModel {
    /// Equilibrium representations.
    pub z: DenseMatrix,
    /// Solver statistics from the embedding solve.
    pub stats: SolveStats,
    /// Readout head.
    pub mlp: Mlp,
}

impl ImplicitModel {
    /// Solves the equilibrium and builds the readout. Multi-scale (MGNNI)
    /// variants concatenate several `gamma` scales.
    pub fn new(
        ds: &Dataset,
        gammas: &[f64],
        solver: ImplicitSolver,
        hidden: &[usize],
        dropout: f32,
        seed: u64,
    ) -> Self {
        assert!(!gammas.is_empty());
        let mut z: Option<DenseMatrix> = None;
        let mut stats = SolveStats::default();
        for &gamma in gammas {
            let (zi, si) = solve_equilibrium(&ds.graph, &ds.features, gamma, solver, 1e-8, seed);
            stats.mean_iterations += si.mean_iterations / gammas.len() as f64;
            stats.mean_residual += si.mean_residual / gammas.len() as f64;
            z = Some(match z {
                None => zi,
                Some(acc) => acc.concat_cols(&zi).expect("row counts equal"),
            });
        }
        let z = z.expect("at least one gamma");
        let mut dims = vec![z.cols()];
        dims.extend_from_slice(hidden);
        dims.push(ds.num_classes);
        ImplicitModel { z, stats, mlp: Mlp::new(&dims, dropout, seed) }
    }

    /// Inference logits for nodes.
    pub fn logits_for(&self, nodes: &[sgnn_graph::NodeId]) -> DenseMatrix {
        let rows: Vec<usize> = nodes.iter().map(|&u| u as usize).collect();
        self.mlp.forward_inference(&self.z.gather_rows(&rows))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sgnn_data::{chain_dataset, sbm_dataset};

    #[test]
    fn fixed_point_and_cg_agree() {
        let ds = sbm_dataset(120, 2, 6.0, 0.8, 4, 0.5, 0, 0.5, 0.25, 1);
        let (zf, sf) =
            solve_equilibrium(&ds.graph, &ds.features, 0.8, ImplicitSolver::FixedPoint, 1e-10, 2);
        let (zc, sc) = solve_equilibrium(
            &ds.graph,
            &ds.features,
            0.8,
            ImplicitSolver::ConjugateGradient,
            1e-10,
            2,
        );
        let rel = zf.sub(&zc).unwrap().frobenius() / zc.frobenius();
        assert!(rel < 1e-4, "solvers disagree: {rel}");
        // CG needs far fewer iterations than Picard at high gamma.
        assert!(
            sc.mean_iterations < sf.mean_iterations / 2.0,
            "cg {} vs fp {}",
            sc.mean_iterations,
            sf.mean_iterations
        );
    }

    #[test]
    fn spectral_solver_tracks_exact_solution() {
        let ds = sbm_dataset(100, 2, 8.0, 0.9, 4, 0.5, 0, 0.5, 0.25, 3);
        let (zc, _) = solve_equilibrium(
            &ds.graph,
            &ds.features,
            0.7,
            ImplicitSolver::ConjugateGradient,
            1e-10,
            4,
        );
        let (zs, _) = solve_equilibrium(
            &ds.graph,
            &ds.features,
            0.7,
            ImplicitSolver::Spectral { k: 40 },
            1e-10,
            4,
        );
        // Top-40 of 100 eigenpairs: dominant smoothing directions captured.
        let cos = sgnn_linalg::vecops::cosine(zc.data(), zs.data());
        assert!(cos > 0.95, "cosine {cos}");
    }

    #[test]
    fn equilibrium_satisfies_equation() {
        let ds = sbm_dataset(80, 2, 6.0, 0.8, 3, 0.5, 0, 0.5, 0.25, 5);
        let (z, stats) = solve_equilibrium(
            &ds.graph,
            &ds.features,
            0.6,
            ImplicitSolver::ConjugateGradient,
            1e-10,
            6,
        );
        assert!(stats.mean_residual < 1e-6, "residual {}", stats.mean_residual);
        // Manually verify Z − γÂZ = X on a column.
        let adj = normalized_adjacency(&ds.graph, NormKind::Sym, true).unwrap();
        let az = sgnn_graph::spmm::spmm(&adj, &z);
        for r in 0..80 {
            let lhs = z.get(r, 0) - 0.6 * az.get(r, 0);
            assert!((lhs - ds.features.get(r, 0)).abs() < 1e-4);
        }
    }

    #[test]
    fn implicit_model_carries_long_range_signal() {
        // On a noise-free chain dataset the head's class signal must reach
        // the far end of its chain: the tail's equilibrium embedding
        // acquires the chain's class dimension even though its raw feature
        // there is zero. Noise-free features make the check deterministic —
        // with noise the tail contrast is dominated by the draw (the
        // propagated signal 11 hops out is ~1e-5 vs noise σ=0.05), so the
        // old formulation was a coin flip over RNG streams.
        let ds = chain_dataset(12, 12, 2, 4, 0.0, 7);
        let m = ImplicitModel::new(&ds, &[0.9], ImplicitSolver::ConjugateGradient, &[], 0.0, 8);
        // Tail node of chain 0 (class 0) vs chain 1 (class 1).
        let z0 = m.z.row(11);
        let z1 = m.z.row(23);
        // Each tail's own class dimension dominates.
        assert!(z0[0] > z0[1], "no long-range signal at tail0: {z0:?}");
        assert!(z1[1] > z1[0], "no long-range signal at tail1: {z1:?}");
        assert!(z0[0] - z0[1] > z1[0] - z1[1], "contrast not class-aligned: {z0:?} vs {z1:?}");
        assert_eq!(m.logits_for(&[0, 1]).rows(), 2);
    }

    #[test]
    fn multiscale_concatenates_gammas() {
        let ds = sbm_dataset(60, 2, 5.0, 0.8, 3, 0.5, 0, 0.5, 0.25, 9);
        let m =
            ImplicitModel::new(&ds, &[0.5, 0.9], ImplicitSolver::ConjugateGradient, &[8], 0.1, 10);
        assert_eq!(m.z.cols(), 6);
    }
}
