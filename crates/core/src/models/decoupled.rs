//! Decoupled models: precompute a graph embedding once, train an MLP on
//! rows (§3.1.2 "Decoupled Graph Propagation").
//!
//! "Messages generated through graph propagation can be disentangled from
//! layer-by-layer updates and instead learned in an aggregated fashion" —
//! operationally: the *entire* graph dependence lives in
//! [`precompute_embedding`], after which training is embarrassingly
//! mini-batchable and touches no edges.

use sgnn_data::Dataset;
use sgnn_graph::normalize::{normalized_adjacency, NormKind};
use sgnn_linalg::DenseMatrix;
use sgnn_nn::Mlp;
use sgnn_spectral::Ld2Config;

/// Which precomputation the decoupled pipeline runs.
#[derive(Debug, Clone)]
pub enum PrecomputeMethod {
    /// SGC: `Â^k X`.
    Sgc {
        /// Propagation depth.
        k: usize,
    },
    /// APPNP/PPR smoothing by power iteration.
    Appnp {
        /// Teleport probability.
        alpha: f32,
        /// Iterations.
        k: usize,
    },
    /// SCARA-style feature-oriented push (sublinear per column).
    Scara {
        /// Teleport probability.
        alpha: f64,
        /// Push threshold.
        eps: f64,
    },
    /// Heat-kernel diffusion.
    Heat {
        /// Diffusion time.
        t: f64,
        /// Taylor terms.
        k: usize,
    },
    /// LD2 multi-channel embedding (low ⊕ high ⊕ PPR).
    Ld2(Ld2Config),
    /// Raw features (MLP baseline — no graph at all).
    None,
}

/// Runs the precomputation, returning the embedding matrix the MLP trains
/// on.
pub fn precompute_embedding(ds: &Dataset, method: &PrecomputeMethod) -> DenseMatrix {
    match method {
        PrecomputeMethod::None => ds.features.clone(),
        PrecomputeMethod::Sgc { k } => {
            let adj = normalized_adjacency(&ds.graph, NormKind::Sym, true).expect("valid graph");
            sgnn_prop::power::power_propagate(&adj, &ds.features, *k)
        }
        PrecomputeMethod::Appnp { alpha, k } => {
            let adj = normalized_adjacency(&ds.graph, NormKind::Sym, true).expect("valid graph");
            sgnn_prop::power::appnp_propagate(&adj, &ds.features, *alpha, *k)
        }
        PrecomputeMethod::Scara { alpha, eps } => {
            sgnn_prop::push::feature_push_matrix(&ds.graph, &ds.features, *alpha, *eps)
        }
        PrecomputeMethod::Heat { t, k } => {
            let adj = normalized_adjacency(&ds.graph, NormKind::Rw, true).expect("valid graph");
            sgnn_prop::heat::heat_propagate(&adj, &ds.features, *t, *k)
        }
        PrecomputeMethod::Ld2(cfg) => {
            sgnn_spectral::ld2_embedding(&ds.graph, &ds.features, cfg).features
        }
    }
}

/// A decoupled model: the precomputed embedding plus an MLP head.
pub struct DecoupledModel {
    /// The graph-free training matrix.
    pub embedding: DenseMatrix,
    /// The trainable head.
    pub mlp: Mlp,
}

impl DecoupledModel {
    /// Precomputes and builds the head. `hidden` are MLP hidden widths.
    pub fn new(
        ds: &Dataset,
        method: &PrecomputeMethod,
        hidden: &[usize],
        dropout: f32,
        seed: u64,
    ) -> Self {
        let embedding = precompute_embedding(ds, method);
        let mut dims = vec![embedding.cols()];
        dims.extend_from_slice(hidden);
        dims.push(ds.num_classes);
        DecoupledModel { embedding, mlp: Mlp::new(&dims, dropout, seed) }
    }

    /// Logits for a node batch (gather rows, run the head).
    pub fn logits_for(&self, nodes: &[sgnn_graph::NodeId]) -> DenseMatrix {
        let rows: Vec<usize> = nodes.iter().map(|&u| u as usize).collect();
        self.mlp.forward_inference(&self.embedding.gather_rows(&rows))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sgnn_data::sbm_dataset;

    #[test]
    fn all_methods_produce_finite_embeddings() {
        let ds = sbm_dataset(200, 2, 6.0, 0.8, 4, 0.5, 0, 0.5, 0.25, 1);
        let methods = [
            PrecomputeMethod::None,
            PrecomputeMethod::Sgc { k: 2 },
            PrecomputeMethod::Appnp { alpha: 0.15, k: 8 },
            PrecomputeMethod::Scara { alpha: 0.15, eps: 1e-6 },
            PrecomputeMethod::Heat { t: 2.0, k: 16 },
            PrecomputeMethod::Ld2(Ld2Config::default()),
        ];
        for m in &methods {
            let e = precompute_embedding(&ds, m);
            assert_eq!(e.rows(), 200, "{m:?}");
            assert!(e.data().iter().all(|v| v.is_finite()), "{m:?}");
        }
    }

    #[test]
    fn scara_matches_exact_ppr_on_the_push_operator() {
        // Feature push distributes mass along the *column*-stochastic
        // direction (each source spreads to its out-neighbors), so the
        // exact reference is the ColRw-normalized polynomial, not APPNP's
        // row-stochastic smoothing.
        let ds = sbm_dataset(150, 2, 8.0, 0.85, 4, 0.5, 0, 0.5, 0.25, 2);
        let adj = normalized_adjacency(&ds.graph, NormKind::ColRw, false).unwrap();
        let coef = sgnn_prop::power::ppr_coefficients(0.15, 120);
        let exact = sgnn_prop::power::polynomial_propagate(&adj, &ds.features, &coef);
        let scara = precompute_embedding(&ds, &PrecomputeMethod::Scara { alpha: 0.15, eps: 1e-8 });
        let rel = exact.sub(&scara).unwrap().frobenius() / exact.frobenius();
        assert!(rel < 1e-3, "relative gap {rel}");
        // And it still correlates strongly with APPNP smoothing — the two
        // PPR directions agree on undirected graphs up to degree skew.
        let rw = normalized_adjacency(&ds.graph, NormKind::Rw, false).unwrap();
        let appnp = sgnn_prop::power::appnp_propagate(&rw, &ds.features, 0.15, 60);
        let cos = sgnn_linalg::vecops::cosine(appnp.data(), scara.data());
        assert!(cos > 0.9, "cosine {cos}");
    }

    #[test]
    fn ld2_embedding_is_wider_than_input() {
        let ds = sbm_dataset(100, 2, 6.0, 0.3, 4, 0.5, 0, 0.5, 0.25, 3);
        let m =
            DecoupledModel::new(&ds, &PrecomputeMethod::Ld2(Ld2Config::default()), &[16], 0.2, 4);
        assert!(m.embedding.cols() > 4);
        let logits = m.logits_for(&[0, 1, 2]);
        assert_eq!(logits.shape(), (3, 2));
    }
}
