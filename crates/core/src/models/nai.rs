//! NAI-style node-adaptive inference (§3.3.1, NAI [10]).
//!
//! NAI "examines applying personalized design to various decoupled
//! architectures. The propagation optimization acts as an external gated
//! model for truncating the node-wise feature propagation": at inference
//! time, a node whose prediction is already confident after `k` hops stops
//! propagating — easy nodes exit early, hard nodes keep aggregating. We
//! implement the gate as softmax-confidence thresholding over the hop
//! embeddings of a trained decoupled model, and report the propagation
//! work saved (the A2 ablation).

use sgnn_data::Dataset;
use sgnn_graph::normalize::{normalized_adjacency, NormKind};
use sgnn_graph::NodeId;
use sgnn_linalg::DenseMatrix;
use sgnn_nn::Mlp;

/// Outcome of an adaptive-inference pass.
#[derive(Debug, Clone)]
pub struct AdaptiveReport {
    /// Per-node exit hop (0 = raw features sufficed).
    pub exit_hop: Vec<u8>,
    /// Mean exit hop.
    pub mean_hop: f64,
    /// Fraction of full propagation work performed (1.0 = no savings).
    pub work_fraction: f64,
    /// Final predictions.
    pub predictions: Vec<usize>,
}

/// A trained decoupled model with per-hop heads, enabling gated inference.
pub struct NaiModel {
    /// One MLP head per hop depth `0..=k` (trained on that hop's
    /// embedding).
    pub heads: Vec<Mlp>,
    /// Hop embeddings (kept for inference; production systems stream
    /// them).
    pub hops: Vec<DenseMatrix>,
}

impl NaiModel {
    /// Trains one head per hop embedding (cheap: heads are tiny MLPs).
    pub fn train(ds: &Dataset, k: usize, hidden: &[usize], epochs: usize, seed: u64) -> Self {
        let adj = normalized_adjacency(&ds.graph, NormKind::Sym, true).expect("valid graph");
        let hops = sgnn_prop::power::hop_embeddings(&adj, &ds.features, k);
        let train_labels = ds.labels_of(&ds.splits.train);
        let train_rows: Vec<usize> = ds.splits.train.iter().map(|&u| u as usize).collect();
        let mut heads = Vec::with_capacity(hops.len());
        for (h, emb) in hops.iter().enumerate() {
            let mut dims = vec![emb.cols()];
            dims.extend_from_slice(hidden);
            dims.push(ds.num_classes);
            let mut mlp = Mlp::new(&dims, 0.1, seed.wrapping_add(h as u64));
            let mut opt = sgnn_nn::Adam::new(0.01);
            let x = emb.gather_rows(&train_rows);
            for _ in 0..epochs {
                let logits = mlp.forward(&x);
                let (_, dl) = sgnn_nn::softmax_cross_entropy(&logits, &train_labels, None);
                mlp.zero_grad();
                mlp.backward(&dl);
                mlp.step(&mut opt);
            }
            heads.push(mlp);
        }
        NaiModel { heads, hops }
    }

    /// Gated inference: each node exits at the first hop whose head is
    /// confident (max softmax probability ≥ `threshold`); nodes never
    /// reaching confidence use the deepest head.
    pub fn infer_adaptive(&self, nodes: &[NodeId], threshold: f32) -> AdaptiveReport {
        let kmax = self.heads.len() - 1;
        let mut exit_hop = vec![kmax as u8; nodes.len()];
        let mut predictions = vec![0usize; nodes.len()];
        let mut undecided: Vec<usize> = (0..nodes.len()).collect();
        for (h, (head, emb)) in self.heads.iter().zip(self.hops.iter()).enumerate() {
            if undecided.is_empty() {
                break;
            }
            let rows: Vec<usize> = undecided.iter().map(|&i| nodes[i] as usize).collect();
            let mut probs = head.forward_inference(&emb.gather_rows(&rows));
            probs.softmax_rows();
            let mut still = Vec::new();
            for (local, &i) in undecided.iter().enumerate() {
                let row = probs.row(local);
                let best = sgnn_linalg::vecops::argmax(row);
                if row[best] >= threshold || h == kmax {
                    exit_hop[i] = h as u8;
                    predictions[i] = best;
                } else {
                    still.push(i);
                }
            }
            undecided = still;
        }
        let mean_hop =
            exit_hop.iter().map(|&h| h as f64).sum::<f64>() / exit_hop.len().max(1) as f64;
        AdaptiveReport {
            mean_hop,
            work_fraction: mean_hop / kmax.max(1) as f64,
            exit_hop,
            predictions,
        }
    }

    /// Non-adaptive reference: every node uses the deepest head.
    pub fn infer_full(&self, nodes: &[NodeId]) -> Vec<usize> {
        let rows: Vec<usize> = nodes.iter().map(|&u| u as usize).collect();
        let emb = self.hops.last().expect("at least hop 0");
        self.heads
            .last()
            .expect("at least one head")
            .forward_inference(&emb.gather_rows(&rows))
            .argmax_rows()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sgnn_data::sbm_dataset;

    fn accuracy(pred: &[usize], ds: &Dataset, nodes: &[NodeId]) -> f64 {
        pred.iter().zip(nodes.iter()).filter(|&(p, &u)| *p == ds.labels[u as usize]).count() as f64
            / nodes.len() as f64
    }

    #[test]
    fn adaptive_inference_saves_work_at_small_cost() {
        let ds = sbm_dataset(1_200, 4, 10.0, 0.9, 8, 0.8, 0, 0.5, 0.25, 1);
        let model = NaiModel::train(&ds, 3, &[16], 60, 2);
        let full_pred = model.infer_full(&ds.splits.test);
        let full_acc = accuracy(&full_pred, &ds, &ds.splits.test);
        let rep = model.infer_adaptive(&ds.splits.test, 0.9);
        let adapt_acc = accuracy(&rep.predictions, &ds, &ds.splits.test);
        assert!(rep.work_fraction < 0.9, "no work saved: {}", rep.work_fraction);
        assert!(adapt_acc > full_acc - 0.05, "adaptive {adapt_acc} vs full {full_acc}");
    }

    #[test]
    fn threshold_one_means_full_depth() {
        let ds = sbm_dataset(300, 2, 6.0, 0.8, 4, 0.5, 0, 0.5, 0.25, 3);
        let model = NaiModel::train(&ds, 2, &[8], 30, 4);
        let rep = model.infer_adaptive(&ds.splits.test, 1.1);
        assert!(rep.exit_hop.iter().all(|&h| h == 2));
        assert!((rep.work_fraction - 1.0).abs() < 1e-9);
        // And agrees with the non-adaptive path.
        assert_eq!(rep.predictions, model.infer_full(&ds.splits.test));
    }

    #[test]
    fn low_threshold_exits_immediately() {
        let ds = sbm_dataset(300, 2, 6.0, 0.8, 4, 0.5, 0, 0.5, 0.25, 5);
        let model = NaiModel::train(&ds, 2, &[8], 30, 6);
        let rep = model.infer_adaptive(&ds.splits.test, 0.0);
        assert!(rep.exit_hop.iter().all(|&h| h == 0));
        assert_eq!(rep.work_fraction, 0.0);
    }

    #[test]
    fn harder_nodes_exit_later() {
        // Heterophilous mix: raw features noisy → later exits than the
        // clean homophilous case at the same threshold.
        let clean = sbm_dataset(800, 2, 8.0, 0.9, 4, 0.3, 0, 0.5, 0.25, 7);
        let noisy = sbm_dataset(800, 2, 8.0, 0.9, 4, 1.2, 0, 0.5, 0.25, 7);
        let m_clean = NaiModel::train(&clean, 3, &[8], 40, 8);
        let m_noisy = NaiModel::train(&noisy, 3, &[8], 40, 8);
        let r_clean = m_clean.infer_adaptive(&clean.splits.test, 0.9);
        let r_noisy = m_noisy.infer_adaptive(&noisy.splits.test, 0.9);
        assert!(
            r_noisy.mean_hop > r_clean.mean_hop,
            "noisy {} !> clean {}",
            r_noisy.mean_hop,
            r_clean.mean_hop
        );
    }
}
