//! The model zoo.
//!
//! One representative implementation per scalable-GNN family from the
//! survey's taxonomy:
//!
//! | family | module | survey anchor |
//! |---|---|---|
//! | full-graph message passing | [`gcn`] | §3.1.1 canonical GNN (the baseline) |
//! | node-wise sampled | [`sage`] | §3.1.2 graph sampling |
//! | decoupled propagation | [`decoupled`] | §3.1.2, APPNP [18], SCARA [26], LD2 [24] |
//! | multi-scale hop attention | [`gamlp`] | §3.3.1, GAMLP [56] |
//! | implicit equilibrium | [`implicit`] | §3.2.3, EIGNN [31] / MGNNI [30] |
//! | node-adaptive inference | [`nai`] | §3.3.1, NAI [10] |
//! | SPD-bias graph transformer | [`gt`] | §3.4.1, DHIL-GT [27] |

pub mod decoupled;
pub mod gamlp;
pub mod gcn;
pub mod gt;
pub mod implicit;
pub mod nai;
pub mod sage;

pub use decoupled::{precompute_embedding, DecoupledModel, PrecomputeMethod};
pub use gamlp::GamlpModel;
pub use gcn::{Gcn, GcnConfig};
pub use gt::{DhilGt, SpdAttention};
pub use implicit::{ImplicitModel, ImplicitSolver};
pub use nai::NaiModel;
pub use sage::Sage;
