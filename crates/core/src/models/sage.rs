//! Sampled GraphSAGE over message-flow blocks (§3.1.2 "Graph Sampling").
//!
//! Layer rule: `h'_u = σ(W_self·h_u + W_neigh·mean_{v∈S(u)} h_v)` where
//! `S(u)` is whatever the block's sampler chose (node-wise, LADIES, or
//! LABOR — the model is sampler-agnostic; it just consumes
//! [`Block`](sgnn_sample::Block) stacks).

use sgnn_linalg::DenseMatrix;
use sgnn_nn::layers::{Linear, ReLU};
use sgnn_nn::optim::Optimizer;
use sgnn_sample::Block;

struct SageLayer {
    lin_self: Linear,
    lin_neigh: Linear,
    relu: ReLU,
    is_last: bool,
}

/// A GraphSAGE model: one [`SageLayer`] per sampled block.
pub struct Sage {
    layers: Vec<SageLayer>,
    // Per-layer caches for backward: (h_src, block dims).
    cache: Vec<CacheEntry>,
}

struct CacheEntry {
    num_dst: usize,
    num_src: usize,
}

impl Sage {
    /// Builds a SAGE model: `dims = [in, hidden…, classes]`, one layer per
    /// consecutive dim pair (must equal the number of blocks fed later).
    pub fn new(dims: &[usize], seed: u64) -> Self {
        assert!(dims.len() >= 2);
        let mut layers = Vec::new();
        for i in 0..dims.len() - 1 {
            layers.push(SageLayer {
                lin_self: Linear::new(dims[i], dims[i + 1], seed.wrapping_add(2 * i as u64)),
                lin_neigh: Linear::new(dims[i], dims[i + 1], seed.wrapping_add(2 * i as u64 + 1)),
                relu: ReLU::new(),
                is_last: i + 2 == dims.len(),
            });
        }
        Sage { layers, cache: Vec::new() }
    }

    /// Number of layers (= blocks consumed per forward).
    pub fn num_layers(&self) -> usize {
        self.layers.len()
    }

    /// Total parameters.
    pub fn num_params(&self) -> usize {
        self.layers.iter().map(|l| l.lin_self.num_params() + l.lin_neigh.num_params()).sum()
    }

    /// Training forward through a block stack (deepest block first).
    /// `x_input` holds features of `blocks[0].src`.
    pub fn forward(&mut self, blocks: &[Block], x_input: &DenseMatrix) -> DenseMatrix {
        assert_eq!(blocks.len(), self.layers.len(), "one block per layer");
        self.cache.clear();
        let mut h = x_input.clone();
        for (layer, block) in self.layers.iter_mut().zip(blocks.iter()) {
            assert_eq!(h.rows(), block.num_src());
            self.cache.push(CacheEntry { num_dst: block.num_dst(), num_src: block.num_src() });
            let h_dst = h.gather_rows(&(0..block.num_dst()).collect::<Vec<_>>());
            let agg = block.aggregate(&h);
            let mut z = layer.lin_self.forward(&h_dst);
            let zn = layer.lin_neigh.forward(&agg);
            z.add_scaled(1.0, &zn).expect("shapes fixed");
            h = if layer.is_last { z } else { layer.relu.forward(&z) };
        }
        h
    }

    /// Inference forward (no caches).
    pub fn forward_inference(&self, blocks: &[Block], x_input: &DenseMatrix) -> DenseMatrix {
        let mut h = x_input.clone();
        for (layer, block) in self.layers.iter().zip(blocks.iter()) {
            let h_dst = h.gather_rows(&(0..block.num_dst()).collect::<Vec<_>>());
            let agg = block.aggregate(&h);
            let mut z = layer.lin_self.forward_inference(&h_dst);
            let zn = layer.lin_neigh.forward_inference(&agg);
            z.add_scaled(1.0, &zn).expect("shapes fixed");
            h = if layer.is_last { z } else { layer.relu.forward_inference(&z) };
        }
        h
    }

    /// Backward through the same block stack.
    pub fn backward(&mut self, blocks: &[Block], dlogits: &DenseMatrix) {
        let mut g = dlogits.clone();
        for (i, (layer, block)) in self.layers.iter_mut().zip(blocks.iter()).enumerate().rev() {
            let entry = &self.cache[i];
            let dz = if layer.is_last { g.clone() } else { layer.relu.backward(&g) };
            let d_hdst = layer.lin_self.backward(&dz);
            let d_agg = layer.lin_neigh.backward(&dz);
            let mut d_h = block.aggregate_backward(&d_agg);
            debug_assert_eq!(d_h.rows(), entry.num_src);
            // dst rows are the prefix of src rows.
            for r in 0..entry.num_dst {
                sgnn_linalg::vecops::axpy(1.0, d_hdst.row(r), d_h.row_mut(r));
            }
            g = d_h;
        }
    }

    /// Zeroes all gradients.
    pub fn zero_grad(&mut self) {
        for l in &mut self.layers {
            l.lin_self.zero_grad();
            l.lin_neigh.zero_grad();
        }
    }

    /// Visits every parameter tensor in the slot order [`step`](Sage::step)
    /// uses — the checkpoint save/restore contract.
    pub fn visit_params_mut(&mut self, f: &mut dyn FnMut(&mut DenseMatrix)) {
        for l in &mut self.layers {
            l.lin_self.visit_params(&mut |p, _| f(p));
            l.lin_neigh.visit_params(&mut |p, _| f(p));
        }
    }

    /// Optimizer step.
    pub fn step(&mut self, opt: &mut dyn Optimizer) {
        let mut slot = 0usize;
        for l in &mut self.layers {
            l.lin_self.visit_params(&mut |p, g| {
                opt.update(slot, p, g);
                slot += 1;
            });
            l.lin_neigh.visit_params(&mut |p, g| {
                opt.update(slot, p, g);
                slot += 1;
            });
        }
        opt.step_done();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sgnn_data::sbm_dataset;
    use sgnn_nn::loss::softmax_cross_entropy;
    use sgnn_nn::optim::Adam;
    use sgnn_sample::node_wise::sample_blocks;

    #[test]
    fn shapes_flow_through_block_stack() {
        let ds = sbm_dataset(300, 3, 8.0, 0.8, 6, 0.5, 0, 0.5, 0.25, 1);
        let targets: Vec<u32> = vec![0, 5, 9, 20];
        let blocks = sample_blocks(&ds.graph, &targets, &[4, 4], 2);
        let mut sage = Sage::new(&[6, 8, 3], 3);
        let src_rows: Vec<usize> = blocks[0].src.iter().map(|&v| v as usize).collect();
        let x_in = ds.features.gather_rows(&src_rows);
        let logits = sage.forward(&blocks, &x_in);
        assert_eq!(logits.shape(), (4, 3));
        let (_, dl) = softmax_cross_entropy(&logits, &[0, 1, 2, 0], None);
        sage.zero_grad();
        sage.backward(&blocks, &dl);
    }

    #[test]
    fn sage_learns_sbm_with_sampling() {
        let ds = sbm_dataset(600, 3, 10.0, 0.9, 6, 0.8, 0, 0.5, 0.25, 4);
        let mut sage = Sage::new(&[6, 16, 3], 5);
        let mut opt = Adam::new(0.01);
        let batch = 64usize;
        for epoch in 0..30u64 {
            for (bi, chunk) in ds.splits.train.chunks(batch).enumerate() {
                let blocks = sample_blocks(&ds.graph, chunk, &[5, 5], epoch * 1000 + bi as u64);
                let src_rows: Vec<usize> = blocks[0].src.iter().map(|&v| v as usize).collect();
                let x_in = ds.features.gather_rows(&src_rows);
                let logits = sage.forward(&blocks, &x_in);
                let (_, dl) = softmax_cross_entropy(&logits, &ds.labels_of(chunk), None);
                sage.zero_grad();
                sage.backward(&blocks, &dl);
                sage.step(&mut opt);
            }
        }
        // Evaluate with large fanout (near-exact aggregation).
        let blocks = sample_blocks(&ds.graph, &ds.splits.test, &[30, 30], 999);
        let src_rows: Vec<usize> = blocks[0].src.iter().map(|&v| v as usize).collect();
        let x_in = ds.features.gather_rows(&src_rows);
        let logits = sage.forward_inference(&blocks, &x_in);
        let acc = sgnn_nn::loss::accuracy(&logits, &ds.labels_of(&ds.splits.test));
        assert!(acc > 0.75, "accuracy {acc}");
    }

    #[test]
    fn gradient_check_through_block() {
        let ds = sbm_dataset(40, 2, 4.0, 0.8, 4, 0.5, 0, 0.5, 0.25, 7);
        let targets: Vec<u32> = vec![0, 3];
        let blocks = sample_blocks(&ds.graph, &targets, &[3], 8);
        let mut sage = Sage::new(&[4, 2], 9);
        let src_rows: Vec<usize> = blocks[0].src.iter().map(|&v| v as usize).collect();
        let x_in = ds.features.gather_rows(&src_rows);
        let labels = [0usize, 1];
        let loss_of = |s: &Sage| {
            let logits = s.forward_inference(&blocks, &x_in);
            softmax_cross_entropy(&logits, &labels, None).0
        };
        let logits = sage.forward(&blocks, &x_in);
        let (_, dl) = softmax_cross_entropy(&logits, &labels, None);
        sage.zero_grad();
        sage.backward(&blocks, &dl);
        let analytic = sage.layers[0].lin_neigh.gw.get(2, 1);
        let base = loss_of(&sage);
        let eps = 1e-2f32;
        let w = sage.layers[0].lin_neigh.w.get(2, 1);
        sage.layers[0].lin_neigh.w.set(2, 1, w + eps);
        let num = (loss_of(&sage) - base) / eps;
        assert!((num - analytic).abs() < 2e-2, "num {num} vs analytic {analytic}");
    }
}
