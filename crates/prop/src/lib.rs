//! # sgnn-prop
//!
//! Decoupled graph propagation — the survey's §3.1.2 "Decoupled Graph
//! Propagation" pillar and the algorithmic heart of APPNP [18], SGC, SCARA
//! [26] and the PPR-based model family.
//!
//! The decoupling insight: the graph-dependent part of a GNN (`Â^K X` or a
//! personalized-PageRank smoothing of `X`) can be computed **once, outside
//! the training loop**, with dedicated graph algorithms, after which the
//! neural network trains on plain feature rows in mini-batches. This crate
//! provides those graph algorithms:
//!
//! - [`power`] — exact K-step power propagation (SGC) and iterative APPNP
//!   smoothing, plus multi-hop embedding stacks for multi-scale models.
//! - [`push`] — Andersen-style forward push for single-source PPR with an
//!   `ε·deg` residual guarantee, and SCARA-style *feature-oriented* push
//!   that propagates feature columns instead of node indicators.
//! - [`mc`] — Monte-Carlo PPR via α-terminated random walks.
//! - [`heat`] — heat-kernel propagation via truncated Taylor series.
//! - [`receptive`] — receptive-field and aggregation-count measurements
//!   quantifying neighborhood explosion (experiment E1).

// Numeric kernels index several parallel flat buffers at once; iterator
// rewrites obscure them. Config-style constructors take their full
// parameter list deliberately (documented, stable).
#![allow(clippy::needless_range_loop, clippy::too_many_arguments)]

pub mod fora;
pub mod heat;
pub mod mc;
pub mod power;
pub mod push;
pub mod receptive;

pub use power::{appnp_propagate, hop_embeddings, power_propagate};
pub use push::{feature_push, forward_push, PushStats};
