//! Neighborhood-explosion measurements (experiment E1).
//!
//! The survey (§1, §3.1.3) identifies *neighborhood explosion* as the
//! persistent scalability bottleneck: representing one node with an
//! L-layer message-passing GNN requires its entire L-hop neighborhood, so
//! per-node inference cost grows like `deg^L` until it saturates at the
//! whole graph. This module quantifies that, and contrasts it with the
//! costs of sampled and decoupled alternatives.

use sgnn_graph::traverse::k_hop_neighborhood;
use sgnn_graph::{CsrGraph, NodeId};

/// Receptive-field size (#nodes an L-layer MP-GNN must touch) per layer
/// count `0..=max_layers`, for one source node.
pub fn receptive_field_sizes(g: &CsrGraph, source: NodeId, max_layers: u32) -> Vec<usize> {
    (0..=max_layers).map(|l| k_hop_neighborhood(g, source, l).len()).collect()
}

/// Mean receptive-field size over a deterministic sample of nodes.
pub fn mean_receptive_field(g: &CsrGraph, layers: u32, sample: usize, seed: u64) -> f64 {
    let n = g.num_nodes();
    if n == 0 {
        return 0.0;
    }
    let ids =
        sgnn_linalg::rng::sample_distinct(&mut sgnn_linalg::rng::seeded(seed), n, sample.min(n));
    let total: usize = ids.iter().map(|&u| k_hop_neighborhood(g, u as NodeId, layers).len()).sum();
    total as f64 / ids.len() as f64
}

/// Exact number of edge aggregations a *full-graph* L-layer MP-GNN performs
/// per epoch: `L · nnz(A)` (every layer propagates over every edge).
pub fn full_batch_aggregations(g: &CsrGraph, layers: u32) -> u64 {
    layers as u64 * g.num_edges() as u64
}

/// Expected aggregations for *node-wise sampled* training (GraphSAGE-style)
/// of one batch: with fanouts `f_1..f_L` (layer 1 = closest to output),
/// each of the `batch` target nodes expands `Π f_i` sampled edges.
///
/// This is the `deg^L → Π fanout` reduction sampling buys — but note it
/// still grows multiplicatively with depth, which is why LABOR/layer
/// sampling exist.
pub fn sampled_aggregations(batch: usize, fanouts: &[usize]) -> u64 {
    let mut total = 0u64;
    let mut frontier = batch as u64;
    for &f in fanouts {
        let edges = frontier * f as u64;
        total += edges;
        frontier = edges; // every sampled edge contributes a new frontier node (worst case, no dedup)
    }
    total
}

/// Aggregations for a decoupled model: `K` propagation passes over the full
/// edge set **once** at precompute time, then zero graph work per epoch.
pub fn decoupled_aggregations(g: &CsrGraph, hops: u32) -> u64 {
    hops as u64 * g.num_edges() as u64
}

/// One row of the E1 table: how the per-node receptive field explodes with
/// depth, versus the bounded frontier of sampling.
#[derive(Debug, Clone)]
pub struct ExplosionRow {
    /// Layer count L.
    pub layers: u32,
    /// Mean |L-hop neighborhood| over sampled sources.
    pub mean_receptive: f64,
    /// Fraction of the whole graph that the receptive field covers.
    pub coverage: f64,
    /// Worst-case sampled frontier (`Π fanout`) with fanout 10.
    pub sampled_frontier: u64,
}

/// Computes the E1 explosion series for `layers = 1..=max_layers`.
pub fn explosion_series(
    g: &CsrGraph,
    max_layers: u32,
    sample: usize,
    seed: u64,
) -> Vec<ExplosionRow> {
    (1..=max_layers)
        .map(|l| {
            let mean = mean_receptive_field(g, l, sample, seed);
            ExplosionRow {
                layers: l,
                mean_receptive: mean,
                coverage: mean / g.num_nodes() as f64,
                sampled_frontier: 10u64.pow(l),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use sgnn_graph::generate;

    #[test]
    fn receptive_field_monotone_and_saturating() {
        let g = generate::barabasi_albert(2_000, 4, 1);
        let sizes = receptive_field_sizes(&g, 0, 6);
        assert_eq!(sizes[0], 1);
        assert!(sizes.windows(2).all(|w| w[0] <= w[1]));
        // BA graphs have tiny diameter: 6 hops ≈ whole graph.
        assert!(*sizes.last().unwrap() as f64 > 0.95 * 2_000.0);
    }

    #[test]
    fn explosion_is_fast_on_power_law_slow_on_grid() {
        let ba = generate::barabasi_albert(2_500, 4, 2);
        let grid = generate::grid2d(50, 50);
        let ba3 = mean_receptive_field(&ba, 3, 50, 3);
        let grid3 = mean_receptive_field(&grid, 3, 50, 3);
        // 3-hop ball in a grid is ≤ 25 nodes; in BA it's hundreds.
        assert!(grid3 <= 25.0, "grid {grid3}");
        assert!(ba3 > 10.0 * grid3, "ba {ba3} vs grid {grid3}");
    }

    #[test]
    fn aggregation_counts() {
        let g = generate::chain(100); // 198 directed edges
        assert_eq!(full_batch_aggregations(&g, 3), 3 * 198);
        assert_eq!(decoupled_aggregations(&g, 3), 3 * 198);
        // batch 2, fanouts [3, 2]: 2*3=6 then 6*2=12 → 18 total.
        assert_eq!(sampled_aggregations(2, &[3, 2]), 18);
        assert_eq!(sampled_aggregations(5, &[]), 0);
    }

    #[test]
    fn explosion_series_shape() {
        let g = generate::barabasi_albert(500, 3, 4);
        let rows = explosion_series(&g, 4, 20, 5);
        assert_eq!(rows.len(), 4);
        assert!(rows[3].coverage > rows[0].coverage);
        assert_eq!(rows[1].sampled_frontier, 100);
        assert!(rows.iter().all(|r| r.coverage <= 1.0));
    }
}
