//! FORA-style hybrid PPR: forward push + Monte-Carlo refinement, and
//! top-k queries.
//!
//! The survey's §3.2.2 theme — "querying node-level information on demand
//! instead of the full-graph manner" — rests on PPR estimators that give
//! *query-time* accuracy guarantees. FORA's recipe: run a cheap forward
//! push to threshold `r_max`, then spend the walk budget only on the
//! *residual* mass, giving an unbiased estimate whose error shrinks with
//! the budget while the push has already localized most of the work.
//! [`topk_ppr`] is the query shape PPRGo-style models consume: the `k`
//! most relevant nodes per seed.

use sgnn_graph::{CsrGraph, NodeId};

/// Hybrid push + Monte-Carlo PPR estimate for one source.
///
/// `eps` is the push threshold (`r(u) < eps·deg(u)` stops pushing);
/// `walks_per_unit` scales how many α-terminated walks each unit of
/// leftover residual receives. `walks_per_unit = 0` reduces to plain push.
pub fn fora_ppr(
    g: &CsrGraph,
    source: NodeId,
    alpha: f64,
    eps: f64,
    walks_per_unit: f64,
    seed: u64,
) -> Vec<f64> {
    let (mut p, res) = crate::push::forward_push_residuals(g, source, alpha, eps);
    if walks_per_unit > 0.0 {
        let mut rng = sgnn_linalg::rng::seeded(seed);
        for (u, &ru) in res.iter().enumerate() {
            if ru <= 0.0 {
                continue;
            }
            let walks = (ru * walks_per_unit).ceil().max(1.0) as usize;
            let share = ru / walks as f64;
            for _ in 0..walks {
                let end = crate::mc::walk_endpoint(g, u as NodeId, alpha, &mut rng);
                p[end as usize] += share;
            }
        }
    }
    p
}

/// Top-`k` PPR query: the `k` highest-PPR nodes for `source`, sorted
/// descending, estimated with [`fora_ppr`].
pub fn topk_ppr(
    g: &CsrGraph,
    source: NodeId,
    k: usize,
    alpha: f64,
    eps: f64,
    seed: u64,
) -> Vec<(NodeId, f64)> {
    let p = fora_ppr(g, source, alpha, eps, 1_000.0, seed);
    let mut pairs: Vec<(NodeId, f64)> =
        p.iter().enumerate().filter(|&(_, &v)| v > 0.0).map(|(u, &v)| (u as NodeId, v)).collect();
    pairs.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap().then(a.0.cmp(&b.0)));
    pairs.truncate(k);
    pairs
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::push::ppr_power;
    use sgnn_graph::generate;

    #[test]
    fn fora_is_more_accurate_than_plain_push_at_same_eps() {
        let g = generate::barabasi_albert(500, 3, 1);
        let exact = ppr_power(&g, 0, 0.2, 1e-12, 3000);
        let coarse_eps = 1e-3;
        let (push_only, _) = crate::push::forward_push(&g, 0, 0.2, coarse_eps);
        let l1 =
            |p: &[f64]| -> f64 { exact.iter().zip(p.iter()).map(|(a, b)| (a - b).abs()).sum() };
        // Average FORA over several seeds (MC component is noisy).
        let fora_err: f64 =
            (0..5).map(|s| l1(&fora_ppr(&g, 0, 0.2, coarse_eps, 2_000.0, s))).sum::<f64>() / 5.0;
        assert!(fora_err < l1(&push_only), "fora {fora_err} !< push {}", l1(&push_only));
    }

    #[test]
    fn fora_mass_is_conserved_with_walk_budget() {
        let g = generate::erdos_renyi(300, 0.04, false, 2);
        let p = fora_ppr(&g, 5, 0.15, 1e-3, 20.0, 3);
        let mass: f64 = p.iter().sum();
        assert!((mass - 1.0).abs() < 1e-9, "mass {mass}");
    }

    #[test]
    fn topk_matches_exact_ranking_mostly() {
        let g = generate::barabasi_albert(400, 3, 4);
        let exact = ppr_power(&g, 7, 0.2, 1e-12, 3000);
        let mut exact_rank: Vec<(u32, f64)> =
            exact.iter().enumerate().map(|(u, &v)| (u as u32, v)).collect();
        exact_rank.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap());
        let exact_top: std::collections::HashSet<u32> =
            exact_rank[..10].iter().map(|&(u, _)| u).collect();
        let est = topk_ppr(&g, 7, 10, 0.2, 1e-5, 5);
        let hits = est.iter().filter(|&&(u, _)| exact_top.contains(&u)).count();
        assert!(hits >= 8, "only {hits}/10 of the true top-10 recovered");
        // Sorted descending.
        assert!(est.windows(2).all(|w| w[0].1 >= w[1].1));
    }

    #[test]
    fn zero_walk_budget_reduces_to_push_estimate() {
        let g = generate::erdos_renyi(200, 0.05, false, 6);
        let p = fora_ppr(&g, 3, 0.2, 1e-4, 0.0, 7);
        let (push, _) = crate::push::forward_push(&g, 3, 0.2, 1e-4);
        for (a, b) in p.iter().zip(push.iter()) {
            assert!((a - b).abs() < 1e-12);
        }
    }
}
