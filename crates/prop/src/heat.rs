//! Heat-kernel propagation.
//!
//! The heat kernel `H_t = e^{-t(I-Â)} = e^{-t} Σ_k (t^k/k!) Â^k` is the
//! classic alternative diffusion to PPR (GDC-style graph diffusion). We
//! evaluate it by truncated Taylor series against the normalized adjacency;
//! the remainder after `K` terms is bounded by the Poisson tail
//! `1 − e^{-t}Σ_{k≤K} t^k/k!` since `‖Â‖ ≤ 1`.

use sgnn_graph::spmm::spmm;
use sgnn_graph::CsrGraph;
use sgnn_linalg::DenseMatrix;

/// Taylor coefficients `e^{-t}·t^k/k!` for `k = 0..=kmax`.
pub fn heat_coefficients(t: f64, kmax: usize) -> Vec<f64> {
    let mut out = Vec::with_capacity(kmax + 1);
    let mut term = (-t).exp();
    out.push(term);
    for k in 1..=kmax {
        term *= t / k as f64;
        out.push(term);
    }
    out
}

/// Number of Taylor terms needed so the Poisson tail falls below `tol`.
pub fn heat_terms_for_tolerance(t: f64, tol: f64) -> usize {
    let mut sum = 0f64;
    let mut term = (-t).exp();
    let mut k = 0usize;
    loop {
        sum += term;
        if 1.0 - sum < tol || k > 10_000 {
            return k;
        }
        k += 1;
        term *= t / k as f64;
    }
}

/// Heat-kernel smoothing `H_t · X` by truncated Taylor series with `kmax`
/// SpMM applications of the (pre-normalized) operator `op`.
pub fn heat_propagate(op: &CsrGraph, x: &DenseMatrix, t: f64, kmax: usize) -> DenseMatrix {
    let coef = heat_coefficients(t, kmax);
    let mut acc = x.clone();
    acc.scale(coef[0] as f32);
    let mut h = x.clone();
    for &c in &coef[1..] {
        h = spmm(op, &h);
        acc.add_scaled(c as f32, &h).expect("shapes fixed by construction");
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use sgnn_graph::generate;
    use sgnn_graph::normalize::{normalized_adjacency, NormKind};

    #[test]
    fn coefficients_sum_to_one_in_limit() {
        let c = heat_coefficients(3.0, 60);
        let s: f64 = c.iter().sum();
        assert!((s - 1.0).abs() < 1e-10, "sum {s}");
    }

    #[test]
    fn terms_for_tolerance_is_monotone_in_t() {
        let a = heat_terms_for_tolerance(1.0, 1e-6);
        let b = heat_terms_for_tolerance(5.0, 1e-6);
        assert!(b > a);
        // And the tail bound actually holds.
        let c = heat_coefficients(5.0, b);
        let s: f64 = c.iter().sum();
        assert!(1.0 - s < 1e-6);
    }

    #[test]
    fn t_zero_is_identity() {
        let g = generate::erdos_renyi(40, 0.1, false, 2);
        let a = normalized_adjacency(&g, NormKind::Rw, true).unwrap();
        let x = DenseMatrix::gaussian(40, 3, 1.0, 3);
        let y = heat_propagate(&a, &x, 0.0, 10);
        let diff = y.sub(&x).unwrap().frobenius();
        assert!(diff < 1e-6);
    }

    #[test]
    fn heat_preserves_mass_under_row_stochastic_operator() {
        // Row-stochastic Â maps 1 to 1, so H_t·1 = 1 (coefficients sum to 1).
        let g = generate::barabasi_albert(100, 3, 4);
        let a = normalized_adjacency(&g, NormKind::Rw, true).unwrap();
        let ones = DenseMatrix::from_vec(100, 1, vec![1.0; 100]);
        let k = heat_terms_for_tolerance(2.0, 1e-7);
        let y = heat_propagate(&a, &ones, 2.0, k);
        for r in 0..100 {
            assert!((y.get(r, 0) - 1.0).abs() < 1e-5);
        }
    }

    #[test]
    fn larger_t_smooths_more() {
        // Smoothing reduces the variance of a random signal on a connected
        // graph; more diffusion time, less variance.
        let g = generate::grid2d(10, 10);
        let a = normalized_adjacency(&g, NormKind::Rw, true).unwrap();
        let x = DenseMatrix::gaussian(100, 1, 1.0, 5);
        let var = |m: &DenseMatrix| sgnn_linalg::vecops::variance(m.data());
        let y1 = heat_propagate(&a, &x, 1.0, 40);
        let y5 = heat_propagate(&a, &x, 5.0, 80);
        assert!(var(&y1) < var(&x));
        assert!(var(&y5) < var(&y1));
    }
}
