//! Monte-Carlo personalized PageRank.
//!
//! The third classic PPR estimator (next to power iteration and local
//! push): simulate `walks` α-terminated random walks from the source and
//! count endpoint frequencies. Unbiased, embarrassingly parallel, and the
//! building block of hybrid push+MC schemes (FORA-style); included both as
//! a baseline for E4/E9 and because sampled decoupled models (NIGCN) use
//! exactly this estimator.

use rand::{Rng, RngExt};
use sgnn_graph::{CsrGraph, NodeId};

/// Estimates the PPR vector of `source` from `walks` random walks.
///
/// Each walk terminates with probability `alpha` per step (geometric
/// length); its endpoint receives `1/walks` mass. Dangling nodes absorb
/// the walk.
pub fn ppr_monte_carlo(
    g: &CsrGraph,
    source: NodeId,
    alpha: f64,
    walks: usize,
    seed: u64,
) -> Vec<f64> {
    let n = g.num_nodes();
    let mut pi = vec![0f64; n];
    let mut rng = sgnn_linalg::rng::seeded(seed);
    let inc = 1.0 / walks as f64;
    for _ in 0..walks {
        let end = walk_endpoint(g, source, alpha, &mut rng);
        pi[end as usize] += inc;
    }
    pi
}

/// Simulates one α-terminated walk and returns its endpoint.
pub fn walk_endpoint<R: Rng + RngExt>(
    g: &CsrGraph,
    source: NodeId,
    alpha: f64,
    rng: &mut R,
) -> NodeId {
    let mut u = source;
    loop {
        if rng.random::<f64>() < alpha {
            return u;
        }
        let neigh = g.neighbors(u);
        if neigh.is_empty() {
            return u; // dangling absorbs
        }
        u = neigh[rng.random_range(0..neigh.len())];
    }
}

/// Estimates PPR for many sources at once (one row per source), sharing
/// the RNG stream deterministically per source.
pub fn ppr_monte_carlo_batch(
    g: &CsrGraph,
    sources: &[NodeId],
    alpha: f64,
    walks: usize,
    seed: u64,
) -> Vec<Vec<f64>> {
    sources
        .iter()
        .enumerate()
        .map(|(i, &s)| ppr_monte_carlo(g, s, alpha, walks, seed.wrapping_add(i as u64)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::push::ppr_power;
    use sgnn_graph::generate;

    #[test]
    fn mc_mass_is_exactly_one() {
        let g = generate::erdos_renyi(100, 0.05, false, 1);
        let pi = ppr_monte_carlo(&g, 3, 0.2, 5_000, 42);
        let mass: f64 = pi.iter().sum();
        assert!((mass - 1.0).abs() < 1e-12);
    }

    #[test]
    fn mc_converges_to_power_iteration() {
        let g = generate::barabasi_albert(120, 3, 5);
        let exact = ppr_power(&g, 0, 0.2, 1e-12, 2000);
        let est = ppr_monte_carlo(&g, 0, 0.2, 200_000, 7);
        let linf = exact.iter().zip(est.iter()).map(|(a, b)| (a - b).abs()).fold(0f64, f64::max);
        assert!(linf < 0.01, "l_inf {linf}");
    }

    #[test]
    fn mc_more_walks_reduce_error() {
        let g = generate::barabasi_albert(150, 2, 9);
        let exact = ppr_power(&g, 1, 0.15, 1e-12, 2000);
        let l1 =
            |est: &[f64]| -> f64 { exact.iter().zip(est.iter()).map(|(a, b)| (a - b).abs()).sum() };
        // Average several seeds so the comparison is about walk count, not
        // one lucky draw.
        let avg_err = |walks: usize| -> f64 {
            (0..5).map(|s| l1(&ppr_monte_carlo(&g, 1, 0.15, walks, s))).sum::<f64>() / 5.0
        };
        assert!(avg_err(20_000) < avg_err(500));
    }

    #[test]
    fn walk_endpoint_on_isolated_node_is_itself() {
        let g = CsrGraph::empty(3);
        let mut rng = sgnn_linalg::rng::seeded(1);
        assert_eq!(walk_endpoint(&g, 2, 0.01, &mut rng), 2);
    }

    #[test]
    fn batch_rows_are_per_source_distributions() {
        let g = generate::erdos_renyi(80, 0.06, false, 3);
        let rows = ppr_monte_carlo_batch(&g, &[0, 5, 9], 0.2, 2_000, 11);
        assert_eq!(rows.len(), 3);
        for r in &rows {
            let mass: f64 = r.iter().sum();
            assert!((mass - 1.0).abs() < 1e-12);
        }
        // Source self-mass should be at least alpha.
        assert!(rows[1][5] >= 0.2 - 0.05);
    }
}
