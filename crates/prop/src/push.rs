//! Local push algorithms for personalized PageRank.
//!
//! [`forward_push`] is the Andersen–Chung–Lang forward local push: it
//! computes an approximate PPR vector touching only the nodes it needs,
//! with the classic per-node guarantee `π(v) − p(v) ∈ [0, ε·deg(v))`. This
//! is the primitive APPNP's scalable descendants (PPRGo, SCARA, NIGCN)
//! build on, and the reason decoupled propagation is *sublinear* for sparse
//! queries — the survey's §3.2.2 "querying node-level information on
//! demand instead of the full-graph manner".
//!
//! [`feature_push`] is the SCARA-style feature-oriented variant: instead of
//! pushing a node-indicator, it pushes an arbitrary (signed) feature column
//! backwards through the same recurrence, so a whole feature matrix can be
//! smoothed column-parallel without per-node queries.

use sgnn_graph::{CsrGraph, NodeId};
use sgnn_linalg::DenseMatrix;

/// Statistics of one push run (work measures for the experiments).
#[derive(Debug, Clone, Default)]
pub struct PushStats {
    /// Number of push operations performed.
    pub pushes: u64,
    /// Total edge traversals (Σ deg of pushed nodes).
    pub edge_touches: u64,
    /// Nonzeros in the returned estimate vector.
    pub nnz: usize,
}

/// Forward local push from `source` on an **unweighted, out-degree
/// normalized** interpretation of `g`.
///
/// Returns `(p, stats)` where `p` is the dense estimate vector. The
/// invariant maintained is `π = p + Σ_u r(u)·π_u` with all residuals below
/// `eps·deg(u)` on exit, giving `0 ≤ π(v) − p(v) ≤ eps·deg(v)` plus the
/// degree-0 corner handled by self-absorption.
/// # Example
///
/// ```
/// use sgnn_graph::generate;
/// use sgnn_prop::forward_push;
///
/// let g = generate::barabasi_albert(10_000, 3, 7);
/// let (ppr, stats) = forward_push(&g, 42, 0.15, 1e-4);
/// // Mass concentrates at/near the source…
/// assert!(ppr[42] >= 0.15);
/// // …and a coarse-tolerance query touches only a fraction of the graph.
/// assert!(stats.nnz < 2_000);
/// ```
pub fn forward_push(g: &CsrGraph, source: NodeId, alpha: f64, eps: f64) -> (Vec<f64>, PushStats) {
    let (p, _, stats) = push_impl(g, source, alpha, eps);
    (p, stats)
}

/// Like [`forward_push`] but also returns the final residual vector —
/// the leftover mass FORA-style hybrids refine with random walks.
pub fn forward_push_residuals(
    g: &CsrGraph,
    source: NodeId,
    alpha: f64,
    eps: f64,
) -> (Vec<f64>, Vec<f64>) {
    let (p, r, _) = push_impl(g, source, alpha, eps);
    (p, r)
}

fn push_impl(
    g: &CsrGraph,
    source: NodeId,
    alpha: f64,
    eps: f64,
) -> (Vec<f64>, Vec<f64>, PushStats) {
    let n = g.num_nodes();
    let mut p = vec![0f64; n];
    let mut r = vec![0f64; n];
    let mut stats = PushStats::default();
    r[source as usize] = 1.0;
    // Work queue of nodes whose residual exceeds threshold. `in_queue`
    // guards duplicates; threshold check re-validated on pop.
    let mut queue = std::collections::VecDeque::new();
    let mut in_queue = vec![false; n];
    queue.push_back(source);
    in_queue[source as usize] = true;
    while let Some(u) = queue.pop_front() {
        in_queue[u as usize] = false;
        let deg = g.degree(u);
        let ru = r[u as usize];
        if deg == 0 {
            // Dangling node: absorb all residual mass into p (walk stays).
            p[u as usize] += ru;
            r[u as usize] = 0.0;
            stats.pushes += 1;
            continue;
        }
        if ru < eps * deg as f64 {
            continue;
        }
        stats.pushes += 1;
        stats.edge_touches += deg as u64;
        p[u as usize] += alpha * ru;
        let share = (1.0 - alpha) * ru / deg as f64;
        r[u as usize] = 0.0;
        for &v in g.neighbors(u) {
            r[v as usize] += share;
            let dv = g.degree(v).max(1);
            if !in_queue[v as usize] && r[v as usize] >= eps * dv as f64 {
                in_queue[v as usize] = true;
                queue.push_back(v);
            }
        }
    }
    stats.nnz = p.iter().filter(|&&x| x > 0.0).count();
    (p, r, stats)
}

/// Exact (to `tol`) PPR by power iteration — the ground-truth baseline the
/// push methods are validated against. Row-stochastic walk on `g` with
/// restart probability `alpha`.
pub fn ppr_power(g: &CsrGraph, source: NodeId, alpha: f64, tol: f64, max_iter: usize) -> Vec<f64> {
    let n = g.num_nodes();
    let mut pi = vec![0f64; n];
    pi[source as usize] = 1.0;
    let mut next = vec![0f64; n];
    for _ in 0..max_iter {
        next.iter_mut().for_each(|v| *v = 0.0);
        next[source as usize] = alpha;
        for u in 0..n {
            let mass = pi[u];
            if mass == 0.0 {
                continue;
            }
            let deg = g.degree(u as NodeId);
            if deg == 0 {
                // Dangling: walk restarts... we keep mass at u (absorbing),
                // matching forward_push's self-absorption convention.
                next[u] += (1.0 - alpha) * mass;
                continue;
            }
            let share = (1.0 - alpha) * mass / deg as f64;
            for &v in g.neighbors(u as NodeId) {
                next[v as usize] += share;
            }
        }
        let delta: f64 = pi.iter().zip(next.iter()).map(|(a, b)| (a - b).abs()).sum();
        std::mem::swap(&mut pi, &mut next);
        if delta < tol {
            break;
        }
    }
    pi
}

/// SCARA-style feature push: propagates one signed feature column through
/// the PPR recurrence, thresholding on `|r(u)| ≥ eps·deg(u)`.
///
/// Equivalent to `Σ_i α(1−α)^i P^i x` with `P = D^{-1}A` row-stochastic,
/// up to the residual tolerance. The signed threshold makes the error bound
/// `|π(v) − p(v)| ≤ eps·Σ_u deg(u)·|contribution|`-style (heuristic rather
/// than exact — see DESIGN.md), which is the trade SCARA exploits for
/// feature-parallel precomputation.
pub fn feature_push(g: &CsrGraph, x: &[f32], alpha: f64, eps: f64) -> (Vec<f64>, PushStats) {
    let n = g.num_nodes();
    assert_eq!(x.len(), n);
    let mut p = vec![0f64; n];
    let mut r: Vec<f64> = x.iter().map(|&v| v as f64).collect();
    let mut stats = PushStats::default();
    let mut queue: std::collections::VecDeque<NodeId> = (0..n as NodeId).collect();
    let mut in_queue = vec![true; n];
    while let Some(u) = queue.pop_front() {
        in_queue[u as usize] = false;
        let deg = g.degree(u);
        let ru = r[u as usize];
        if deg == 0 {
            p[u as usize] += ru;
            r[u as usize] = 0.0;
            continue;
        }
        if ru.abs() < eps * deg as f64 {
            continue;
        }
        stats.pushes += 1;
        stats.edge_touches += deg as u64;
        p[u as usize] += alpha * ru;
        let share = (1.0 - alpha) * ru / deg as f64;
        r[u as usize] = 0.0;
        for &v in g.neighbors(u) {
            r[v as usize] += share;
            let dv = g.degree(v).max(1);
            if !in_queue[v as usize] && r[v as usize].abs() >= eps * dv as f64 {
                in_queue[v as usize] = true;
                queue.push_back(v);
            }
        }
    }
    stats.nnz = p.iter().filter(|&&x| x != 0.0).count();
    (p, stats)
}

/// Smooths every column of `x` with [`feature_push`], returning the
/// decoupled embedding matrix (`n × d`). Columns are independent; this is
/// the "feature-oriented parallel computation" SCARA advertises.
pub fn feature_push_matrix(g: &CsrGraph, x: &DenseMatrix, alpha: f64, eps: f64) -> DenseMatrix {
    let n = x.rows();
    let d = x.cols();
    let mut out = DenseMatrix::zeros(n, d);
    // Extract columns, push, write back. Column extraction is strided but
    // happens once per column against d row-major scans.
    let cols: Vec<Vec<f32>> = (0..d).map(|c| (0..n).map(|r| x.get(r, c)).collect()).collect();
    let results: Vec<Vec<f64>> = {
        use std::sync::Mutex;
        let slots: Vec<Mutex<Vec<f64>>> = (0..d).map(|_| Mutex::new(Vec::new())).collect();
        sgnn_linalg::par::par_chunks(d, 1, |s, e| {
            for c in s..e {
                let (p, _) = feature_push(g, &cols[c], alpha, eps);
                *slots[c].lock().unwrap() = p;
            }
        });
        slots.into_iter().map(|m| m.into_inner().unwrap()).collect()
    };
    for (c, col) in results.iter().enumerate() {
        for r in 0..n {
            out.set(r, c, col[r] as f32);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use sgnn_graph::generate;

    #[test]
    fn push_ppr_is_a_distribution() {
        let g = generate::erdos_renyi(200, 0.04, false, 1);
        let (p, _) = forward_push(&g, 0, 0.15, 1e-7);
        let mass: f64 = p.iter().sum();
        assert!(mass > 0.99 && mass <= 1.0 + 1e-9, "mass {mass}");
        assert!(p.iter().all(|&v| v >= 0.0));
    }

    #[test]
    fn push_matches_power_iteration_within_bound() {
        let g = generate::barabasi_albert(300, 3, 7);
        let alpha = 0.2;
        let eps = 1e-6;
        let exact = ppr_power(&g, 5, alpha, 1e-12, 2000);
        let (approx, _) = forward_push(&g, 5, alpha, eps);
        for v in 0..300usize {
            let err = exact[v] - approx[v];
            assert!(err >= -1e-9, "push overestimates at {v}: {err}");
            let bound = eps * g.degree(v as NodeId).max(1) as f64 + 1e-9;
            assert!(err <= bound, "node {v}: err {err} > bound {bound}");
        }
    }

    #[test]
    fn smaller_eps_means_more_work_and_less_error() {
        let g = generate::barabasi_albert(400, 3, 9);
        let exact = ppr_power(&g, 0, 0.15, 1e-12, 2000);
        let l1 =
            |p: &[f64]| -> f64 { exact.iter().zip(p.iter()).map(|(a, b)| (a - b).abs()).sum() };
        let (p1, s1) = forward_push(&g, 0, 0.15, 1e-4);
        let (p2, s2) = forward_push(&g, 0, 0.15, 1e-6);
        assert!(s2.pushes > s1.pushes);
        assert!(l1(&p2) < l1(&p1));
    }

    #[test]
    fn push_handles_dangling_nodes() {
        // Directed edge into a sink: 0 -> 1, 1 has no out-edges.
        let g = sgnn_graph::GraphBuilder::new(2).edges(&[(0, 1)]).build().unwrap();
        let (p, _) = forward_push(&g, 0, 0.5, 1e-9);
        let mass: f64 = p.iter().sum();
        assert!((mass - 1.0).abs() < 1e-6, "mass {mass}");
        assert!(p[1] > 0.0);
    }

    #[test]
    fn push_locality_touches_few_nodes_on_large_graph() {
        // On a big sparse graph a coarse-eps push must not touch everything.
        let g = generate::barabasi_albert(20_000, 3, 3);
        let (p, stats) = forward_push(&g, 42, 0.2, 1e-4);
        assert!(stats.nnz < 2_000, "push touched {} nodes", stats.nnz);
        assert!(p[42] > 0.1);
    }

    #[test]
    fn feature_push_on_indicator_matches_forward_push() {
        let g = generate::erdos_renyi(150, 0.05, false, 3);
        let mut x = vec![0f32; 150];
        x[7] = 1.0;
        let (fp, _) = feature_push(&g, &x, 0.15, 1e-7);
        let (pp, _) = forward_push(&g, 7, 0.15, 1e-7);
        for v in 0..150 {
            assert!((fp[v] - pp[v]).abs() < 1e-4, "node {v}: {} vs {}", fp[v], pp[v]);
        }
    }

    #[test]
    fn feature_push_is_linear_in_input() {
        let g = generate::erdos_renyi(100, 0.06, false, 5);
        let mut rng = sgnn_linalg::rng::seeded(8);
        let mut a = vec![0f32; 100];
        let mut b = vec![0f32; 100];
        sgnn_linalg::rng::fill_gaussian(&mut rng, &mut a, 0.0, 1.0);
        sgnn_linalg::rng::fill_gaussian(&mut rng, &mut b, 0.0, 1.0);
        let sum: Vec<f32> = a.iter().zip(b.iter()).map(|(x, y)| x + y).collect();
        let eps = 1e-9; // tight so linearity holds to test precision
        let (pa, _) = feature_push(&g, &a, 0.2, eps);
        let (pb, _) = feature_push(&g, &b, 0.2, eps);
        let (ps, _) = feature_push(&g, &sum, 0.2, eps);
        for v in 0..100 {
            assert!((pa[v] + pb[v] - ps[v]).abs() < 1e-4);
        }
    }

    #[test]
    fn feature_push_matrix_matches_columnwise() {
        let g = generate::erdos_renyi(60, 0.08, false, 6);
        let x = DenseMatrix::gaussian(60, 3, 1.0, 7);
        let m = feature_push_matrix(&g, &x, 0.2, 1e-8);
        for c in 0..3 {
            let col: Vec<f32> = (0..60).map(|r| x.get(r, c)).collect();
            let (p, _) = feature_push(&g, &col, 0.2, 1e-8);
            for r in 0..60 {
                assert!((m.get(r, c) - p[r] as f32).abs() < 1e-5);
            }
        }
    }
}
