//! Power-iteration propagation: SGC, APPNP, and multi-hop stacks.
//!
//! All functions take a *pre-normalized* operator (a weighted CSR from
//! [`sgnn_graph::normalize`]) so the normalization choice is explicit at the
//! call site, exactly as the decoupled-model papers present it.

use sgnn_graph::spmm::{spmm, spmm_into};
use sgnn_graph::CsrGraph;
use sgnn_linalg::DenseMatrix;

/// SGC-style propagation: returns `Â^k · X`.
///
/// Cost: `k` SpMMs into one ping-pong buffer — two allocations total
/// regardless of `k`, the "reduce the overhead by precomputation" design
/// of §3.1.2.
pub fn power_propagate(op: &CsrGraph, x: &DenseMatrix, k: usize) -> DenseMatrix {
    let mut h = x.clone();
    if k == 0 {
        return h;
    }
    let mut scratch = DenseMatrix::zeros(x.rows(), x.cols());
    for _ in 0..k {
        spmm_into(op, &h, &mut scratch);
        std::mem::swap(&mut h, &mut scratch);
    }
    h
}

/// APPNP propagation: `Z ← (1−α)·Â·Z + α·X`, iterated `k` times from
/// `Z = X`.
///
/// Converges to the personalized-PageRank smoothing
/// `α (I − (1−α)Â)^{-1} X`; `k = 10, α = 0.1` are the paper defaults.
/// Iterations ping-pong between `Z` and one scratch buffer.
pub fn appnp_propagate(op: &CsrGraph, x: &DenseMatrix, alpha: f32, k: usize) -> DenseMatrix {
    let mut z = x.clone();
    if k == 0 {
        return z;
    }
    let mut az = DenseMatrix::zeros(x.rows(), x.cols());
    for _ in 0..k {
        spmm_into(op, &z, &mut az);
        az.scale(1.0 - alpha);
        az.add_scaled(alpha, x).expect("shapes fixed by construction");
        std::mem::swap(&mut z, &mut az);
    }
    z
}

/// Multi-hop embedding stack `[X, ÂX, Â²X, …, Â^k X]`.
///
/// The raw material of multi-scale decoupled models (GAMLP's attention
/// over hops, LD2's channel concatenation, NAI's gated truncation). Each
/// hop is stored, so the output itself is the only allocation.
pub fn hop_embeddings(op: &CsrGraph, x: &DenseMatrix, k: usize) -> Vec<DenseMatrix> {
    let mut out = Vec::with_capacity(k + 1);
    out.push(x.clone());
    for i in 0..k {
        let next = spmm(op, &out[i]);
        out.push(next);
    }
    out
}

/// Weighted hop combination `Σ_i θ_i · Â^i X` without storing the stack —
/// the generalized polynomial filter (`θ` = e.g. PPR weights
/// `α(1−α)^i`). Hops ping-pong between two reused buffers.
pub fn polynomial_propagate(op: &CsrGraph, x: &DenseMatrix, theta: &[f32]) -> DenseMatrix {
    assert!(!theta.is_empty(), "need at least the 0-hop coefficient");
    let mut acc = x.clone();
    acc.scale(theta[0]);
    if theta.len() == 1 {
        return acc;
    }
    let mut h = x.clone();
    let mut scratch = DenseMatrix::zeros(x.rows(), x.cols());
    for &t in &theta[1..] {
        spmm_into(op, &h, &mut scratch);
        std::mem::swap(&mut h, &mut scratch);
        acc.add_scaled(t, &h).expect("shapes fixed by construction");
    }
    acc
}

/// The truncated-PPR coefficient vector `θ_i = α(1−α)^i`, `i = 0..=k`.
pub fn ppr_coefficients(alpha: f32, k: usize) -> Vec<f32> {
    (0..=k).map(|i| alpha * (1.0 - alpha).powi(i as i32)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use sgnn_graph::generate;
    use sgnn_graph::normalize::{normalized_adjacency, NormKind};

    fn op(n: usize, seed: u64) -> CsrGraph {
        let g = generate::erdos_renyi(n, 8.0 / n as f64, false, seed);
        normalized_adjacency(&g, NormKind::Sym, true).unwrap()
    }

    #[test]
    fn power_zero_steps_is_identity() {
        let a = op(50, 1);
        let x = DenseMatrix::gaussian(50, 4, 1.0, 2);
        let y = power_propagate(&a, &x, 0);
        assert_eq!(y.data(), x.data());
    }

    #[test]
    fn power_k_equals_repeated_spmm() {
        let a = op(40, 2);
        let x = DenseMatrix::gaussian(40, 3, 1.0, 3);
        let y3 = power_propagate(&a, &x, 3);
        let manual = spmm(&a, &spmm(&a, &spmm(&a, &x)));
        for (a, b) in y3.data().iter().zip(manual.data()) {
            assert!((a - b).abs() < 1e-5);
        }
    }

    #[test]
    fn appnp_alpha_one_returns_x() {
        let a = op(30, 3);
        let x = DenseMatrix::gaussian(30, 2, 1.0, 4);
        let z = appnp_propagate(&a, &x, 1.0, 7);
        for (za, xa) in z.data().iter().zip(x.data()) {
            assert!((za - xa).abs() < 1e-6);
        }
    }

    #[test]
    fn appnp_converges_to_fixed_point() {
        let a = op(60, 4);
        let x = DenseMatrix::gaussian(60, 3, 1.0, 5);
        let z_many = appnp_propagate(&a, &x, 0.2, 60);
        // Fixed point satisfies Z = (1-α) Â Z + α X.
        let mut rhs = spmm(&a, &z_many);
        rhs.scale(0.8);
        rhs.add_scaled(0.2, &x).unwrap();
        let diff = z_many.sub(&rhs).unwrap().frobenius();
        assert!(diff < 1e-4, "fixed-point residual {diff}");
    }

    #[test]
    fn hop_embeddings_prefix_property() {
        let a = op(25, 6);
        let x = DenseMatrix::gaussian(25, 2, 1.0, 7);
        let hops = hop_embeddings(&a, &x, 3);
        assert_eq!(hops.len(), 4);
        assert_eq!(hops[0].data(), x.data());
        let two = power_propagate(&a, &x, 2);
        for (a, b) in hops[2].data().iter().zip(two.data()) {
            assert!((a - b).abs() < 1e-5);
        }
    }

    #[test]
    fn polynomial_matches_explicit_stack_combination() {
        let a = op(35, 8);
        let x = DenseMatrix::gaussian(35, 3, 1.0, 9);
        let theta = [0.5f32, 0.3, 0.2];
        let fused = polynomial_propagate(&a, &x, &theta);
        let hops = hop_embeddings(&a, &x, 2);
        let mut manual = DenseMatrix::zeros(35, 3);
        for (i, h) in hops.iter().enumerate() {
            manual.add_scaled(theta[i], h).unwrap();
        }
        let diff = fused.sub(&manual).unwrap().frobenius();
        assert!(diff < 1e-5);
    }

    #[test]
    fn truncated_ppr_coefficients_approach_appnp() {
        // Σ α(1-α)^i Â^i X over many hops ≈ APPNP fixed point.
        let a = op(45, 10);
        let x = DenseMatrix::gaussian(45, 2, 1.0, 11);
        let alpha = 0.25f32;
        let poly = polynomial_propagate(&a, &x, &ppr_coefficients(alpha, 80));
        let appnp = appnp_propagate(&a, &x, alpha, 200);
        let rel = poly.sub(&appnp).unwrap().frobenius() / appnp.frobenius().max(1e-9);
        assert!(rel < 1e-3, "relative gap {rel}");
    }

    #[test]
    fn ppr_coefficients_sum_to_one_in_the_limit() {
        let c = ppr_coefficients(0.15, 400);
        let s: f32 = c.iter().sum();
        assert!((s - 1.0).abs() < 1e-4, "sum {s}");
    }
}
