//! ADGNN-style aggregation-difference-aware sampling (§3.3.2 "Graph
//! Expressiveness").
//!
//! ADGNN [43] "proposes a set of strategies to [reduce] computation and
//! communication cost in distributed scenarios by defining corresponding
//! node importance. Theoretical derivations are given to bound the
//! aggregation difference between sampled and full topology." The
//! operational core: instead of sampling neighbors *randomly*, pick the
//! subset whose aggregate best matches the full aggregation — the
//! *aggregation difference* `‖mean(S) − mean(N(u))‖` is the quantity to
//! minimize, and features are known at sampling time, so the choice can be
//! greedy and deterministic (a herding-style selection).
//!
//! Trade-off vs unbiased samplers (E10's LABOR/uniform): the herded sample
//! has far lower aggregation difference at equal fanout, but is *biased*
//! for any fixed feature matrix — ADGNN's bounds are about that difference,
//! not estimator variance. Both views are measured in tests.

use crate::block::{build_src_index, Block};
use sgnn_graph::{CsrGraph, NodeId};
use sgnn_linalg::DenseMatrix;

/// Greedy herding selection: picks `k` of `candidates` whose running mean
/// best tracks `target` (the full-neighborhood mean) in L2.
fn herd_select(candidates: &[NodeId], x: &DenseMatrix, target: &[f32], k: usize) -> Vec<NodeId> {
    let d = target.len();
    let k = k.min(candidates.len());
    let mut chosen: Vec<NodeId> = Vec::with_capacity(k);
    let mut sum = vec![0f32; d];
    let mut used = vec![false; candidates.len()];
    for step in 0..k {
        let mut best = usize::MAX;
        let mut best_err = f32::INFINITY;
        for (ci, &cand) in candidates.iter().enumerate() {
            if used[ci] {
                continue;
            }
            // Error of the mean if we add this candidate.
            let row = x.row(cand as usize);
            let inv = 1.0 / (step + 1) as f32;
            let mut err = 0f32;
            for i in 0..d {
                let m = (sum[i] + row[i]) * inv;
                let dlt = m - target[i];
                err += dlt * dlt;
            }
            if err < best_err {
                best_err = err;
                best = ci;
            }
        }
        used[best] = true;
        let cand = candidates[best];
        sgnn_linalg::vecops::axpy(1.0, x.row(cand as usize), &mut sum);
        chosen.push(cand);
    }
    chosen
}

/// Builds one ADGNN-style block: each destination keeps the `k` neighbors
/// whose mean feature best approximates its full-neighborhood mean.
///
/// Deterministic (no RNG): the sample is a function of the features, which
/// is what lets ADGNN bound the aggregation difference a priori.
pub fn adgnn_block(g: &CsrGraph, dst: &[NodeId], x: &DenseMatrix, k: usize) -> Block {
    assert!(k > 0);
    let n = g.num_nodes();
    let d = x.cols();
    let mut indptr = Vec::with_capacity(dst.len() + 1);
    indptr.push(0usize);
    let mut kept: Vec<NodeId> = Vec::new();
    let mut target = vec![0f32; d];
    for &u in dst {
        let neigh = g.neighbors(u);
        if neigh.is_empty() {
            indptr.push(kept.len());
            continue;
        }
        // Full-neighborhood mean (the sampling-time oracle ADGNN assumes —
        // features are in the feature store anyway).
        target.iter_mut().for_each(|v| *v = 0.0);
        for &v in neigh {
            sgnn_linalg::vecops::axpy(1.0, x.row(v as usize), &mut target);
        }
        sgnn_linalg::vecops::scale(&mut target, 1.0 / neigh.len() as f32);
        let chosen = herd_select(neigh, x, &target, k);
        kept.extend(chosen);
        indptr.push(kept.len());
    }
    let (src, index_of) = build_src_index(n, dst, kept.iter().copied());
    let mut cols = Vec::with_capacity(kept.len());
    let mut weights = Vec::with_capacity(kept.len());
    for i in 0..dst.len() {
        let cnt = indptr[i + 1] - indptr[i];
        let w = if cnt > 0 { 1.0 / cnt as f32 } else { 0.0 };
        for e in indptr[i]..indptr[i + 1] {
            cols.push(index_of[kept[e] as usize]);
            weights.push(w);
        }
    }
    let block = Block { dst: dst.to_vec(), src, indptr, cols, weights };
    debug_assert!(block.validate().is_ok());
    block
}

/// Mean aggregation difference of a block against the exact neighborhood
/// means — ADGNN's bounded quantity.
pub fn aggregation_difference(g: &CsrGraph, block: &Block, x: &DenseMatrix) -> f64 {
    let exact = crate::variance::exact_aggregation(g, &block.dst, x);
    let xs = x.gather_rows(&block.src.iter().map(|&v| v as usize).collect::<Vec<_>>());
    let approx = block.aggregate(&xs);
    let mut acc = 0f64;
    for i in 0..block.num_dst() {
        let mut d2 = 0f64;
        for (a, b) in approx.row(i).iter().zip(exact.row(i)) {
            let dlt = (a - b) as f64;
            d2 += dlt * dlt;
        }
        acc += d2.sqrt();
    }
    acc / block.num_dst().max(1) as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use sgnn_graph::generate;

    fn setup() -> (CsrGraph, Vec<NodeId>, DenseMatrix) {
        let (g, _) = generate::planted_partition(1_000, 3, 20.0, 0.8, 1);
        let dst: Vec<NodeId> = (0..64).collect();
        let x = DenseMatrix::gaussian(1_000, 6, 1.0, 2);
        (g, dst, x)
    }

    #[test]
    fn herded_block_is_valid_and_bounded() {
        let (g, dst, x) = setup();
        let b = adgnn_block(&g, &dst, &x, 5);
        b.validate().unwrap();
        for i in 0..b.num_dst() {
            let cnt = b.indptr[i + 1] - b.indptr[i];
            assert!(cnt <= 5.min(g.degree(b.dst[i])));
            // Chosen neighbors are distinct and actual neighbors.
            let mut cs: Vec<u32> =
                b.cols[b.indptr[i]..b.indptr[i + 1]].iter().map(|&c| b.src[c as usize]).collect();
            for &v in &cs {
                assert!(g.has_edge(b.dst[i], v));
            }
            cs.sort_unstable();
            cs.dedup();
            assert_eq!(cs.len(), cnt);
        }
    }

    #[test]
    fn herding_beats_uniform_on_aggregation_difference() {
        let (g, dst, x) = setup();
        let herd = adgnn_block(&g, &dst, &x, 4);
        let herd_diff = aggregation_difference(&g, &herd, &x);
        // Average uniform over several seeds.
        let mut uni_diff = 0f64;
        let reps = 10;
        for s in 0..reps {
            let b = crate::node_wise::sample_blocks(&g, &dst, &[4], s).pop().unwrap();
            uni_diff += aggregation_difference(&g, &b, &x);
        }
        uni_diff /= reps as f64;
        assert!(
            herd_diff < 0.5 * uni_diff,
            "herded {herd_diff} should be well below uniform {uni_diff}"
        );
    }

    #[test]
    fn herding_is_deterministic() {
        let (g, dst, x) = setup();
        let a = adgnn_block(&g, &dst, &x, 4);
        let b = adgnn_block(&g, &dst, &x, 4);
        assert_eq!(a.cols, b.cols);
        assert_eq!(a.src, b.src);
    }

    #[test]
    fn full_fanout_is_exact() {
        let (g, dst, x) = setup();
        let b = adgnn_block(&g, &dst, &x, 1_000);
        let diff = aggregation_difference(&g, &b, &x);
        assert!(diff < 1e-5, "difference {diff}");
    }

    #[test]
    fn isolated_destinations_get_empty_rows() {
        let g = CsrGraph::empty(10);
        let x = DenseMatrix::gaussian(10, 3, 1.0, 4);
        let b = adgnn_block(&g, &[1, 2], &x, 3);
        assert_eq!(b.num_edges(), 0);
    }
}
