//! GENTI-style dynamic walk maintenance for streaming graphs.
//!
//! GENTI [55] targets "streaming graph data, alleviating the blockage in
//! GPU training": as edges arrive, walk-based subgraph samples must stay
//! fresh *without* resampling everything. The classic trick (also in
//! Wharf/DynamicPPE): an arriving edge `(u, v)` only invalidates walks
//! that pass through `u` or `v` — everything else is still a valid sample
//! from the updated graph's walk distribution (each step's choice set is
//! unchanged). We keep a per-node inverted index walk-id lists and
//! resample only the affected walks.
//!
//! Also the §3.4.2 "dynamic graphs" future-direction demo.

use rand::RngExt;
use sgnn_graph::{CsrGraph, GraphBuilder, NodeId};

/// A dynamic graph with incrementally-maintained random walks.
pub struct DynamicWalks {
    /// Current adjacency (rebuilt on mutation batches; edge inserts are
    /// buffered).
    graph: CsrGraph,
    pending: Vec<(NodeId, NodeId)>,
    /// Walk seeds.
    seeds: Vec<NodeId>,
    walks_per_seed: usize,
    steps: usize,
    /// Flat walk storage, `(steps+1)`-strided.
    data: Vec<NodeId>,
    /// Inverted index: node → walk ids that visit it.
    index: Vec<Vec<u32>>,
    seed_base: u64,
    version: u64,
    /// Walks resampled since construction (the maintenance-cost metric).
    pub resampled: u64,
}

impl DynamicWalks {
    /// Samples the initial walk set.
    pub fn new(
        graph: CsrGraph,
        seeds: Vec<NodeId>,
        walks_per_seed: usize,
        steps: usize,
        seed: u64,
    ) -> Self {
        let mut s = DynamicWalks {
            index: vec![Vec::new(); graph.num_nodes()],
            data: vec![0; seeds.len() * walks_per_seed * (steps + 1)],
            graph,
            pending: Vec::new(),
            seeds,
            walks_per_seed,
            steps,
            seed_base: seed,
            version: 0,
            resampled: 0,
        };
        for w in 0..s.num_walks() {
            s.sample_walk(w);
        }
        s.resampled = 0; // initial sampling isn't maintenance
        s
    }

    /// Total number of maintained walks.
    pub fn num_walks(&self) -> usize {
        self.seeds.len() * self.walks_per_seed
    }

    /// Walk `w` as a slice.
    pub fn walk(&self, w: usize) -> &[NodeId] {
        let stride = self.steps + 1;
        &self.data[w * stride..(w + 1) * stride]
    }

    /// Current graph view.
    pub fn graph(&self) -> &CsrGraph {
        &self.graph
    }

    fn sample_walk(&mut self, w: usize) {
        let stride = self.steps + 1;
        // De-index the old walk.
        let old: Vec<NodeId> = self.data[w * stride..(w + 1) * stride].to_vec();
        for &node in old.iter() {
            if let Some(pos) = self.index[node as usize].iter().position(|&x| x == w as u32) {
                self.index[node as usize].swap_remove(pos);
            }
        }
        let seed_node = self.seeds[w / self.walks_per_seed];
        let mut rng = sgnn_linalg::rng::seeded(
            self.seed_base ^ (w as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ self.version,
        );
        let mut u = seed_node;
        let mut visited = Vec::with_capacity(stride);
        visited.push(u);
        for _ in 0..self.steps {
            let neigh = self.graph.neighbors(u);
            if !neigh.is_empty() {
                u = neigh[rng.random_range(0..neigh.len())];
            }
            visited.push(u);
        }
        for (i, &node) in visited.iter().enumerate() {
            self.data[w * stride + i] = node;
            // Index each walk id at most once per node.
            if !self.index[node as usize].contains(&(w as u32)) {
                self.index[node as usize].push(w as u32);
            }
        }
        self.resampled += 1;
    }

    /// Inserts an undirected edge and resamples only the affected walks
    /// (those visiting either endpoint). Returns how many walks were
    /// refreshed.
    pub fn insert_edge(&mut self, u: NodeId, v: NodeId) -> usize {
        self.pending.push((u, v));
        // Rebuild adjacency including the pending edge. (A production
        // store would use an adjacency structure with O(1) inserts; the
        // *walk maintenance* is the point here and is shared.)
        let mut b = GraphBuilder::new(self.graph.num_nodes()).symmetric().drop_self_loops();
        for (a, c, _) in self.graph.edges() {
            if a < c {
                b.add_edge(a, c);
            }
        }
        b.add_edge(u, v);
        self.graph = b.build().expect("ids valid");
        self.version += 1;
        let mut affected: Vec<u32> = self.index[u as usize].clone();
        affected.extend_from_slice(&self.index[v as usize]);
        affected.sort_unstable();
        affected.dedup();
        for w in &affected {
            self.sample_walk(*w as usize);
        }
        affected.len()
    }

    /// Validates the invariant: every stored hop is a real edge of the
    /// *current* graph (or a dangling self-repeat).
    pub fn validate(&self) -> Result<(), String> {
        for w in 0..self.num_walks() {
            let walk = self.walk(w);
            for t in 1..walk.len() {
                let (a, b) = (walk[t - 1], walk[t]);
                if a != b && !self.graph.has_edge(a, b) {
                    return Err(format!("walk {w} uses stale edge {a}->{b}"));
                }
                if a == b && self.graph.degree(a) != 0 {
                    return Err(format!("walk {w} self-repeats at non-dangling {a}"));
                }
            }
        }
        // Index consistency.
        for w in 0..self.num_walks() {
            for &node in self.walk(w) {
                if !self.index[node as usize].contains(&(w as u32)) {
                    return Err(format!("walk {w} missing from index of {node}"));
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sgnn_graph::generate;

    fn setup(n: usize, seeds: usize) -> DynamicWalks {
        let g = generate::barabasi_albert(n, 3, 1);
        let s: Vec<NodeId> = (0..seeds as NodeId).collect();
        DynamicWalks::new(g, s, 4, 5, 2)
    }

    #[test]
    fn initial_walks_are_valid() {
        let dw = setup(500, 20);
        dw.validate().unwrap();
        assert_eq!(dw.num_walks(), 80);
        assert_eq!(dw.resampled, 0);
    }

    #[test]
    fn insert_refreshes_only_affected_walks() {
        let mut dw = setup(2_000, 50);
        let total = dw.num_walks() as u64;
        // Insert an edge between two low-traffic nodes.
        let refreshed = dw.insert_edge(1_500, 1_600);
        dw.validate().unwrap();
        assert!(dw.graph().has_edge(1_500, 1_600));
        assert!((refreshed as u64) < total / 2, "refreshed {refreshed} of {total} walks");
        assert_eq!(dw.resampled, refreshed as u64);
    }

    #[test]
    fn walks_remain_valid_over_an_insert_stream() {
        let mut dw = setup(800, 30);
        let mut rng = sgnn_linalg::rng::seeded(9);
        for i in 0..25u32 {
            use rand::RngExt;
            let u = rng.random_range(0..800u32);
            let v = (u + 1 + i) % 800;
            if u != v {
                dw.insert_edge(u, v);
            }
        }
        dw.validate().unwrap();
    }

    #[test]
    fn hub_edge_insert_touches_many_walks() {
        let mut dw = setup(1_000, 100);
        // The highest-degree node appears in many walks.
        let hub = (0..1_000u32).max_by_key(|&u| dw.graph().degree(u)).unwrap();
        let quiet = dw.insert_edge(900, 901);
        let busy = dw.insert_edge(hub, 902);
        assert!(busy >= quiet, "hub insert {busy} !>= quiet insert {quiet}");
    }
}
