//! GraphSAINT subgraph sampling.
//!
//! Subgraph-level sampling trains a full GNN on small induced subgraphs,
//! with aggregation/loss normalization correcting the sampling bias. Three
//! samplers from the paper:
//!
//! - **Node**: sample nodes ∝ degree, induce.
//! - **Edge**: sample edges ∝ `1/d_u + 1/d_v`, take endpoints, induce.
//! - **Random walk**: sample root nodes, run fixed-length walks, induce on
//!   all visited nodes (best connectivity in practice).
//!
//! Normalization coefficients are estimated by pre-sampling (the paper's
//! approach): node norm `λ_v = N·C_v/S` estimates `n·p_v`, loss weights are
//! `1/λ_v`.

use rand::RngExt;
use sgnn_graph::{CsrGraph, NodeId};

/// Which GraphSAINT sampler to use.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SaintSampler {
    /// `budget` nodes sampled with probability ∝ degree.
    Node {
        /// Number of nodes per subgraph.
        budget: usize,
    },
    /// `budget` edges sampled ∝ `1/d_u + 1/d_v`; both endpoints join.
    Edge {
        /// Number of edges per subgraph.
        budget: usize,
    },
    /// `roots` random roots each walking `length` steps.
    RandomWalk {
        /// Number of walk roots.
        roots: usize,
        /// Walk length (steps per root).
        length: usize,
    },
}

/// A sampled training subgraph with bias-correction weights.
#[derive(Debug, Clone)]
pub struct SaintSubgraph {
    /// Induced subgraph (local ids).
    pub graph: CsrGraph,
    /// Local → global node mapping.
    pub nodes: Vec<NodeId>,
    /// Per-local-node loss weights `∝ 1/λ_v` (mean 1 over the subgraph).
    pub loss_weights: Vec<f32>,
}

/// Draws one subgraph.
pub fn sample_subgraph(g: &CsrGraph, sampler: SaintSampler, seed: u64) -> SaintSubgraph {
    let mut rng = sgnn_linalg::rng::seeded(seed);
    let chosen: Vec<NodeId> = match sampler {
        SaintSampler::Node { budget } => {
            let degs: Vec<f64> = (0..g.num_nodes()).map(|u| g.degree(u as NodeId) as f64).collect();
            let mut picked = std::collections::HashSet::with_capacity(budget);
            let mut guard = 0usize;
            while picked.len() < budget.min(g.num_nodes()) && guard < budget * 50 {
                if let Some(i) = sgnn_linalg::rng::sample_weighted(&mut rng, &degs) {
                    picked.insert(i as NodeId);
                }
                guard += 1;
            }
            picked.into_iter().collect()
        }
        SaintSampler::Edge { budget } => {
            // Collect directed edges u<v once with weight 1/du + 1/dv.
            let mut edges: Vec<(NodeId, NodeId)> = Vec::new();
            let mut weights: Vec<f64> = Vec::new();
            for (u, v, _) in g.edges() {
                if u < v {
                    edges.push((u, v));
                    weights.push(1.0 / g.degree(u).max(1) as f64 + 1.0 / g.degree(v).max(1) as f64);
                }
            }
            let mut picked = std::collections::HashSet::new();
            for _ in 0..budget.min(edges.len()) {
                if let Some(i) = sgnn_linalg::rng::sample_weighted(&mut rng, &weights) {
                    picked.insert(edges[i].0);
                    picked.insert(edges[i].1);
                    weights[i] = 0.0;
                }
            }
            picked.into_iter().collect()
        }
        SaintSampler::RandomWalk { roots, length } => {
            let n = g.num_nodes();
            let mut picked = std::collections::HashSet::new();
            for _ in 0..roots {
                let mut u = rng.random_range(0..n) as NodeId;
                picked.insert(u);
                for _ in 0..length {
                    let neigh = g.neighbors(u);
                    if neigh.is_empty() {
                        break;
                    }
                    u = neigh[rng.random_range(0..neigh.len())];
                    picked.insert(u);
                }
            }
            picked.into_iter().collect()
        }
    };
    let (graph, nodes) = g.induced_subgraph(&chosen);
    // Loss weights default to uniform; callers wanting estimated
    // normalization use `estimate_norms` and attach them.
    let loss_weights = vec![1.0; nodes.len()];
    SaintSubgraph { graph, nodes, loss_weights }
}

/// Pre-sampling pass estimating per-node inclusion frequency; returns
/// per-global-node loss weights `S/(N·C_v)` (the GraphSAINT `1/λ_v`),
/// clamped for never-sampled nodes.
pub fn estimate_norms(
    g: &CsrGraph,
    sampler: SaintSampler,
    presample_rounds: usize,
    seed: u64,
) -> Vec<f32> {
    let n = g.num_nodes();
    let mut counts = vec![0u32; n];
    for r in 0..presample_rounds {
        let sub = sample_subgraph(g, sampler, seed.wrapping_add(r as u64));
        for &v in &sub.nodes {
            counts[v as usize] += 1;
        }
    }
    let total: u64 = counts.iter().map(|&c| c as u64).sum();
    let expected = (total as f64 / n as f64).max(1e-9);
    counts
        .iter()
        .map(|&c| {
            let c = c.max(1) as f64; // clamp: unseen nodes get max weight
            (expected / c) as f32
        })
        .collect()
}

/// Attaches estimated global norms to a sampled subgraph's local nodes and
/// rescales them to mean 1 (keeps the loss magnitude comparable).
pub fn apply_norms(sub: &mut SaintSubgraph, global_norms: &[f32]) {
    let mut w: Vec<f32> = sub.nodes.iter().map(|&v| global_norms[v as usize]).collect();
    let mean: f32 = w.iter().sum::<f32>() / w.len().max(1) as f32;
    if mean > 0.0 {
        for x in w.iter_mut() {
            *x /= mean;
        }
    }
    sub.loss_weights = w;
}

#[cfg(test)]
mod tests {
    use super::*;
    use sgnn_graph::generate;

    #[test]
    fn node_sampler_prefers_high_degree() {
        let g = generate::barabasi_albert(1_000, 3, 1);
        let mut freq = vec![0u32; 1_000];
        for s in 0..200 {
            let sub = sample_subgraph(&g, SaintSampler::Node { budget: 50 }, s);
            for &v in &sub.nodes {
                freq[v as usize] += 1;
            }
        }
        // Highest-degree node sampled far more often than a median one.
        let hub = (0..1_000u32).max_by_key(|&u| g.degree(u)).unwrap();
        let leaf = (0..1_000u32).min_by_key(|&u| g.degree(u)).unwrap();
        assert!(freq[hub as usize] > 4 * freq[leaf as usize].max(1));
    }

    #[test]
    fn edge_sampler_produces_connected_pairs() {
        let g = generate::erdos_renyi(300, 0.03, false, 2);
        let sub = sample_subgraph(&g, SaintSampler::Edge { budget: 60 }, 3);
        sub.graph.validate().unwrap();
        assert!(sub.graph.num_edges() > 0);
        // Every edge in the subgraph maps to an edge in the original graph.
        for (u, v, _) in sub.graph.edges() {
            assert!(g.has_edge(sub.nodes[u as usize], sub.nodes[v as usize]));
        }
    }

    #[test]
    fn rw_sampler_yields_few_isolated_nodes() {
        let g = generate::barabasi_albert(2_000, 3, 4);
        let sub = sample_subgraph(&g, SaintSampler::RandomWalk { roots: 20, length: 10 }, 5);
        let isolated =
            (0..sub.graph.num_nodes() as NodeId).filter(|&u| sub.graph.degree(u) == 0).count();
        // Walk-induced subgraphs are mostly connected.
        assert!(
            isolated * 5 < sub.graph.num_nodes(),
            "{isolated}/{} isolated",
            sub.graph.num_nodes()
        );
    }

    #[test]
    fn norms_estimate_downweights_frequent_nodes() {
        let g = generate::barabasi_albert(500, 3, 6);
        let norms = estimate_norms(&g, SaintSampler::Node { budget: 50 }, 100, 7);
        let hub = (0..500u32).max_by_key(|&u| g.degree(u)).unwrap();
        let mean: f32 = norms.iter().sum::<f32>() / 500.0;
        assert!(norms[hub as usize] < mean, "hub weight {} mean {mean}", norms[hub as usize]);
    }

    #[test]
    fn apply_norms_rescales_to_mean_one() {
        let g = generate::erdos_renyi(100, 0.05, false, 8);
        let norms = estimate_norms(&g, SaintSampler::RandomWalk { roots: 5, length: 5 }, 30, 9);
        let mut sub = sample_subgraph(&g, SaintSampler::RandomWalk { roots: 5, length: 5 }, 10);
        apply_norms(&mut sub, &norms);
        let mean: f32 = sub.loss_weights.iter().sum::<f32>() / sub.loss_weights.len() as f32;
        assert!((mean - 1.0).abs() < 1e-4);
    }

    #[test]
    fn budgets_are_respected() {
        let g = generate::erdos_renyi(400, 0.05, false, 11);
        let sub = sample_subgraph(&g, SaintSampler::Node { budget: 30 }, 12);
        assert!(sub.nodes.len() <= 30);
        let sub2 = sample_subgraph(&g, SaintSampler::Edge { budget: 10 }, 13);
        assert!(sub2.nodes.len() <= 20);
    }
}
