//! # sgnn-sample
//!
//! Graph sampling — the survey's classic scalability pillar (§3.1.2
//! "Graph Sampling") and its modern refinements (§3.3.2), plus walk-based
//! subgraph extraction (§3.3.3).
//!
//! Sampling strategies are organized by *scope of sample selection* exactly
//! as the survey (after [32]) categorizes them:
//!
//! - **node-level** — [`node_wise`]: GraphSAGE fanout sampling; each target
//!   draws its own bounded neighbor set, layer by layer.
//! - **layer-level** — [`layer_wise`]: FastGCN/LADIES importance sampling
//!   (one shared node set per layer), and [`labor`]: LABOR [2]-style
//!   correlated Poisson sampling that matches node-wise variance with far
//!   fewer unique sources.
//! - **subgraph-level** — [`saint`]: GraphSAINT node / edge / random-walk
//!   samplers with bias-correcting loss/aggregation normalizations, and
//!   Cluster-GCN-style partition batches (in `sgnn-partition`).
//!
//! Supporting machinery:
//! - [`block`] — bipartite message-flow blocks (the sampled computation
//!   graph fed to models).
//! - [`chunk`] — the fixed target-chunk grid all samplers share; chunks
//!   carry derived seeds, so sampling runs data-parallel on the
//!   `sgnn-linalg` pool with bitwise-identical output at any thread
//!   count (DESIGN.md §6).
//! - [`history`] — HDSGNN-style historical-embedding cache with staleness
//!   tracking.
//! - [`variance`] — estimator-variance measurement harness (experiment
//!   E10).
//! - [`walks`] — SUREL/GENTI [53, 55] walk-based subgraph extraction with
//!   a compact flat walk store and relative positional encodings.

pub mod adgnn;
pub mod block;
pub mod chunk;
pub mod dynamic;
pub mod history;
pub mod labor;
pub mod layer_wise;
pub mod node_wise;
pub mod saint;
pub mod variance;
pub mod walks;

pub use block::Block;
pub use history::HistoryCache;
pub use node_wise::sample_blocks;
pub use saint::{SaintSampler, SaintSubgraph};
pub use walks::WalkStore;

/// Latency distribution of one multi-hop block-sampling call, shared by
/// the node-wise, layer-wise, and LABOR samplers (one histogram family:
/// the per-call cost is what batch-construction budgets care about,
/// whichever strategy produced the blocks).
pub(crate) static SAMPLE_BLOCK_NS: sgnn_obs::Histogram =
    sgnn_obs::Histogram::new("sample.block.ns");
