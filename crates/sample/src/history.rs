//! Historical-embedding cache (HDSGNN [21] / GNNAutoScale lineage).
//!
//! HDSGNN "interpolates graph sampling into an optimization process, where
//! the cached sampling results are included to generate the incremental
//! graph components": out-of-batch neighbors are served from a cache of
//! their embeddings from earlier iterations instead of being recursively
//! expanded. This trades staleness for a *constant-size* computation graph
//! per batch.
//!
//! The cache is thread-safe (`parking_lot::RwLock` per shard) so samplers
//! running on worker threads can read while the trainer writes.

use parking_lot::RwLock;
use sgnn_graph::NodeId;
use sgnn_linalg::DenseMatrix;

/// Fixed-width per-node embedding cache with staleness tracking.
pub struct HistoryCache {
    dim: usize,
    shards: Vec<RwLock<Shard>>,
    shard_bits: u32,
}

struct Shard {
    /// Flat `nodes_in_shard × dim` storage.
    data: Vec<f32>,
    /// Iteration at which each node was last refreshed (`u64::MAX` =
    /// never written).
    version: Vec<u64>,
}

impl HistoryCache {
    /// Creates a cache for `n` nodes with embedding width `dim`, zeroed and
    /// marked never-written.
    pub fn new(n: usize, dim: usize) -> Self {
        let shard_bits = 4u32; // 16 shards: enough to decongest writers
        let shards = 1usize << shard_bits;
        let per = n.div_ceil(shards);
        HistoryCache {
            dim,
            shard_bits,
            shards: (0..shards)
                .map(|_| {
                    RwLock::new(Shard { data: vec![0f32; per * dim], version: vec![u64::MAX; per] })
                })
                .collect(),
        }
    }

    #[inline]
    fn locate(&self, u: NodeId) -> (usize, usize) {
        let shards = self.shards.len();
        ((u as usize) % shards, (u as usize) / shards)
    }

    /// Embedding width.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Writes node `u`'s embedding at iteration `iter`.
    pub fn push(&self, u: NodeId, iter: u64, emb: &[f32]) {
        assert_eq!(emb.len(), self.dim);
        let (s, i) = self.locate(u);
        let mut shard = self.shards[s].write();
        shard.data[i * self.dim..(i + 1) * self.dim].copy_from_slice(emb);
        shard.version[i] = iter;
    }

    /// Bulk write for a batch of nodes from rows of `embs`.
    pub fn push_batch(&self, nodes: &[NodeId], iter: u64, embs: &DenseMatrix) {
        assert_eq!(nodes.len(), embs.rows());
        for (r, &u) in nodes.iter().enumerate() {
            self.push(u, iter, embs.row(r));
        }
    }

    /// Reads node `u`'s cached embedding into `out`; returns the age
    /// (`now − written`) or `None` if never written.
    pub fn fetch(&self, u: NodeId, now: u64, out: &mut [f32]) -> Option<u64> {
        assert_eq!(out.len(), self.dim);
        let (s, i) = self.locate(u);
        let shard = self.shards[s].read();
        let v = shard.version[i];
        if v == u64::MAX {
            return None;
        }
        out.copy_from_slice(&shard.data[i * self.dim..(i + 1) * self.dim]);
        Some(now.saturating_sub(v))
    }

    /// Gathers cached embeddings for `nodes` into a matrix; missing entries
    /// come back zeroed. Returns `(matrix, hit_count, mean_age_of_hits)`.
    pub fn fetch_batch(&self, nodes: &[NodeId], now: u64) -> (DenseMatrix, usize, f64) {
        let mut out = DenseMatrix::zeros(nodes.len(), self.dim);
        let mut hits = 0usize;
        let mut age_sum = 0u64;
        for (r, &u) in nodes.iter().enumerate() {
            let row = out.row_mut(r);
            if let Some(age) = self.fetch(u, now, row) {
                hits += 1;
                age_sum += age;
            }
        }
        let mean_age = if hits > 0 { age_sum as f64 / hits as f64 } else { 0.0 };
        (out, hits, mean_age)
    }

    /// Resident bytes of the cache.
    pub fn nbytes(&self) -> usize {
        self.shards
            .iter()
            .map(|s| {
                let g = s.read();
                g.data.len() * 4 + g.version.len() * 8
            })
            .sum()
    }

    /// Number of shards (for tests).
    pub fn num_shards(&self) -> usize {
        1 << self.shard_bits
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fetch_before_push_is_none() {
        let c = HistoryCache::new(100, 4);
        let mut buf = vec![0f32; 4];
        assert_eq!(c.fetch(5, 10, &mut buf), None);
    }

    #[test]
    fn push_fetch_round_trip_with_age() {
        let c = HistoryCache::new(100, 3);
        c.push(17, 5, &[1.0, 2.0, 3.0]);
        let mut buf = vec![0f32; 3];
        assert_eq!(c.fetch(17, 9, &mut buf), Some(4));
        assert_eq!(buf, vec![1.0, 2.0, 3.0]);
        // Overwrite refreshes version.
        c.push(17, 9, &[4.0, 5.0, 6.0]);
        assert_eq!(c.fetch(17, 9, &mut buf), Some(0));
        assert_eq!(buf, vec![4.0, 5.0, 6.0]);
    }

    #[test]
    fn batch_roundtrip_counts_hits() {
        let c = HistoryCache::new(50, 2);
        let m = DenseMatrix::from_rows(&[&[1.0, 1.0], &[2.0, 2.0]]);
        c.push_batch(&[3, 7], 1, &m);
        let (out, hits, age) = c.fetch_batch(&[3, 7, 9], 3);
        let _ = age;
        assert_eq!(hits, 2);
        assert_eq!(out.row(0), &[1.0, 1.0]);
        assert_eq!(out.row(2), &[0.0, 0.0]); // miss → zeros
    }

    #[test]
    fn shards_cover_all_nodes() {
        let c = HistoryCache::new(1000, 1);
        for u in (0..1000u32).step_by(37) {
            c.push(u, 0, &[u as f32]);
        }
        let mut buf = [0f32];
        for u in (0..1000u32).step_by(37) {
            assert!(c.fetch(u, 0, &mut buf).is_some());
            assert_eq!(buf[0], u as f32);
        }
        assert_eq!(c.num_shards(), 16);
        assert!(c.nbytes() >= 1000 * 4);
    }

    #[test]
    fn concurrent_reads_and_writes_do_not_deadlock() {
        use std::sync::Arc;
        let c = Arc::new(HistoryCache::new(256, 8));
        let mut handles = Vec::new();
        for t in 0..4u32 {
            let c = Arc::clone(&c);
            handles.push(std::thread::spawn(move || {
                let emb = vec![t as f32; 8];
                let mut buf = vec![0f32; 8];
                for i in 0..2_000u32 {
                    let u = (t * 64 + i % 64) % 256;
                    c.push(u, i as u64, &emb);
                    c.fetch((u + 128) % 256, i as u64, &mut buf);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
    }
}
