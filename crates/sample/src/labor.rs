//! LABOR-style layer-neighbor sampling [2].
//!
//! LABOR "takes the advantage of node-dependent neighbor sampling, which
//! restrains variance while requiring less samples". The trick (LABOR-0):
//! draw **one** uniform variate `r_v` per *source* node, shared by all
//! destinations in the layer; destination `t` with degree `d_t` keeps
//! neighbor `v` iff `r_v ≤ k/d_t`. Per destination this is exactly
//! Poisson sampling with inclusion probability `π_tv = min(1, k/d_t)`
//! (so the Horvitz–Thompson estimator matches node-wise variance), but the
//! *shared* randomness makes the kept source sets of different
//! destinations overlap maximally — far fewer unique sources to fetch.

use crate::block::{build_src_index, Block};
use crate::chunk;
use sgnn_graph::{CsrGraph, NodeId};

/// Samples one LABOR-0 block with target fanout `k`.
///
/// Row `t`'s estimator is `(1/d_t) Σ_{v kept} x_v / π_tv`, unbiased for the
/// neighborhood mean.
///
/// The shared per-source variate `r_v` is the stateless hash
/// [`sgnn_linalg::rng::node_variate`]`(seed, v)` — a pure function of
/// `(seed, v)`, so every destination (and every parallel chunk) observes
/// the same value for a node without any cross-chunk RNG state, and the
/// keep/drop decision never depends on visit order or thread count.
pub fn labor_block(g: &CsrGraph, dst: &[NodeId], k: usize, seed: u64) -> Block {
    labor_block_impl(g, dst, k, seed, chunk::auto_parallel())
}

fn labor_block_impl(g: &CsrGraph, dst: &[NodeId], k: usize, seed: u64, parallel: bool) -> Block {
    assert!(k > 0);
    let n = g.num_nodes();
    // Per chunk: (kept per destination, kept neighbors, HT weights). The
    // body is a pure function of the chunk range — shared randomness lives
    // entirely in the node_variate hash.
    let parts: Vec<(Vec<u32>, Vec<NodeId>, Vec<f32>)> =
        chunk::map_chunks(dst.len(), parallel, |_, r| {
            let mut counts = Vec::with_capacity(r.len());
            let mut kept: Vec<NodeId> = Vec::new();
            let mut kept_w: Vec<f32> = Vec::new();
            for &t in &dst[r] {
                let neigh = g.neighbors(t);
                let d = neigh.len();
                if d == 0 {
                    counts.push(0);
                    continue;
                }
                let before = kept.len();
                let pi = (k as f64 / d as f64).min(1.0);
                for &v in neigh {
                    if sgnn_linalg::rng::node_variate(seed, v as u64) <= pi {
                        kept.push(v);
                        // Horvitz–Thompson: (1/d) · (1/π).
                        kept_w.push((1.0 / (d as f64 * pi)) as f32);
                    }
                }
                counts.push((kept.len() - before) as u32);
            }
            (counts, kept, kept_w)
        });
    let mut indptr = Vec::with_capacity(dst.len() + 1);
    indptr.push(0usize);
    let mut kept: Vec<NodeId> = Vec::new();
    let mut kept_w: Vec<f32> = Vec::new();
    for (counts, part_kept, part_w) in &parts {
        for &c in counts {
            indptr.push(indptr.last().unwrap() + c as usize);
        }
        kept.extend_from_slice(part_kept);
        kept_w.extend_from_slice(part_w);
    }
    let (src, index_of) = build_src_index(n, dst, kept.iter().copied());
    let cols: Vec<u32> = kept.iter().map(|&v| index_of[v as usize]).collect();
    let block = Block { dst: dst.to_vec(), src, indptr, cols, weights: kept_w };
    debug_assert!(block.validate().is_ok());
    block
}

/// Samples an `L`-layer LABOR stack (deepest block first).
pub fn labor_blocks(g: &CsrGraph, targets: &[NodeId], fanouts: &[usize], seed: u64) -> Vec<Block> {
    labor_blocks_impl(g, targets, fanouts, seed, chunk::auto_parallel())
}

/// Sequential reference for [`labor_blocks`] — same variate hashes, chunks
/// visited in order on the calling thread.
pub fn labor_blocks_seq(
    g: &CsrGraph,
    targets: &[NodeId],
    fanouts: &[usize],
    seed: u64,
) -> Vec<Block> {
    labor_blocks_impl(g, targets, fanouts, seed, false)
}

fn labor_blocks_impl(
    g: &CsrGraph,
    targets: &[NodeId],
    fanouts: &[usize],
    seed: u64,
    parallel: bool,
) -> Vec<Block> {
    let _sp = sgnn_obs::span!("sample.blocks");
    let _ht = crate::SAMPLE_BLOCK_NS.time();
    sgnn_obs::record_frontier(0, targets.len());
    let mut blocks_rev = Vec::with_capacity(fanouts.len());
    let mut dst: Vec<NodeId> = targets.to_vec();
    for (i, &k) in fanouts.iter().enumerate() {
        let b = labor_block_impl(
            g,
            &dst,
            k,
            seed.wrapping_add(i as u64).wrapping_mul(0x85EB_CA6B),
            parallel,
        );
        sgnn_obs::record_frontier(i + 1, b.num_src());
        dst = b.src.clone();
        blocks_rev.push(b);
    }
    blocks_rev.reverse();
    blocks_rev
}

#[cfg(test)]
mod tests {
    use super::*;
    use sgnn_graph::generate;
    use sgnn_linalg::DenseMatrix;

    #[test]
    fn expected_sample_count_close_to_fanout() {
        let g = generate::barabasi_albert(2_000, 10, 1);
        let dst: Vec<NodeId> = (100..164).collect();
        let mut total_edges = 0usize;
        let reps = 50;
        for s in 0..reps {
            let b = labor_block(&g, &dst, 5, s);
            total_edges += b.num_edges();
        }
        let per_dst = total_edges as f64 / (reps as usize * dst.len()) as f64;
        // E[kept per dst] = d · min(1, k/d) ≤ k with equality when d ≥ k.
        assert!((per_dst - 5.0).abs() < 0.5, "per-dst {per_dst}");
    }

    #[test]
    fn estimator_is_unbiased() {
        let g = generate::erdos_renyi(200, 0.08, false, 2);
        let x = DenseMatrix::gaussian(200, 1, 1.0, 3);
        let target = 11u32;
        let neigh = g.neighbors(target);
        let exact: f32 =
            neigh.iter().map(|&v| x.get(v as usize, 0)).sum::<f32>() / neigh.len() as f32;
        let mut acc = 0f64;
        let reps = 5000;
        for s in 0..reps {
            let b = labor_block(&g, &[target], 4, s);
            let xs = x.gather_rows(&b.src.iter().map(|&v| v as usize).collect::<Vec<_>>());
            acc += b.aggregate(&xs).get(0, 0) as f64;
        }
        let mean = acc / reps as f64;
        assert!((mean - exact as f64).abs() < 0.05, "mean {mean} vs exact {exact}");
    }

    #[test]
    fn labor_touches_fewer_unique_sources_than_node_wise() {
        // The LABOR claim (E10): at matched per-destination fanout, shared
        // randomness yields fewer unique sources on graphs where
        // destinations share neighbors.
        let (g, _) = generate::planted_partition(3_000, 3, 30.0, 0.9, 4);
        let dst: Vec<NodeId> = (0..400).collect();
        let mut labor_srcs = 0usize;
        let mut nw_srcs = 0usize;
        for s in 0..10 {
            labor_srcs += labor_block(&g, &dst, 5, s).num_src();
            nw_srcs += crate::node_wise::sample_blocks(&g, &dst, &[5], s)[0].num_src();
        }
        assert!(
            labor_srcs < nw_srcs,
            "labor {labor_srcs} should touch fewer sources than node-wise {nw_srcs}"
        );
    }

    #[test]
    fn small_degree_nodes_keep_all_neighbors() {
        let g = generate::chain(20); // degrees ≤ 2
        let dst: Vec<NodeId> = (1..19).collect();
        let b = labor_block(&g, &dst, 4, 5);
        // π = 1 for every neighbor → every edge kept with weight 1/d.
        for (i, &t) in dst.iter().enumerate() {
            assert_eq!(b.indptr[i + 1] - b.indptr[i], g.degree(t));
        }
        for i in 0..b.num_dst() {
            let s: f32 = b.weights[b.indptr[i]..b.indptr[i + 1]].iter().sum();
            assert!((s - 1.0).abs() < 1e-6);
        }
    }

    #[test]
    fn parallel_path_matches_sequential_bitwise() {
        let g = generate::barabasi_albert(4_000, 6, 2);
        let t: Vec<NodeId> = (0..800).collect();
        let seq = labor_blocks_seq(&g, &t, &[6, 6], 55);
        let par = labor_blocks_impl(&g, &t, &[6, 6], 55, true);
        assert_eq!(seq.len(), par.len());
        for (a, b) in seq.iter().zip(&par) {
            assert_eq!(a.dst, b.dst);
            assert_eq!(a.src, b.src);
            assert_eq!(a.indptr, b.indptr);
            assert_eq!(a.cols, b.cols);
            let wa: Vec<u32> = a.weights.iter().map(|w| w.to_bits()).collect();
            let wb: Vec<u32> = b.weights.iter().map(|w| w.to_bits()).collect();
            assert_eq!(wa, wb);
        }
    }

    #[test]
    fn stack_chains() {
        let g = generate::barabasi_albert(500, 4, 6);
        let t: Vec<NodeId> = vec![0, 5, 10];
        let blocks = labor_blocks(&g, &t, &[4, 4], 7);
        assert_eq!(blocks[1].dst, t);
        assert_eq!(blocks[0].dst, blocks[1].src);
        for b in &blocks {
            b.validate().unwrap();
        }
    }
}
