//! LABOR-style layer-neighbor sampling [2].
//!
//! LABOR "takes the advantage of node-dependent neighbor sampling, which
//! restrains variance while requiring less samples". The trick (LABOR-0):
//! draw **one** uniform variate `r_v` per *source* node, shared by all
//! destinations in the layer; destination `t` with degree `d_t` keeps
//! neighbor `v` iff `r_v ≤ k/d_t`. Per destination this is exactly
//! Poisson sampling with inclusion probability `π_tv = min(1, k/d_t)`
//! (so the Horvitz–Thompson estimator matches node-wise variance), but the
//! *shared* randomness makes the kept source sets of different
//! destinations overlap maximally — far fewer unique sources to fetch.

use crate::block::{build_src_index, Block};
use rand::RngExt;
use sgnn_graph::{CsrGraph, NodeId};

/// Samples one LABOR-0 block with target fanout `k`.
///
/// Row `t`'s estimator is `(1/d_t) Σ_{v kept} x_v / π_tv`, unbiased for the
/// neighborhood mean.
pub fn labor_block(g: &CsrGraph, dst: &[NodeId], k: usize, seed: u64) -> Block {
    assert!(k > 0);
    let n = g.num_nodes();
    let mut rng = sgnn_linalg::rng::seeded(seed);
    // Lazy per-source variates: generate deterministically on first touch.
    let mut r = vec![f64::NAN; n];
    let mut rand_of = |v: usize, rng: &mut rand::rngs::StdRng| -> f64 {
        if r[v].is_nan() {
            r[v] = rng.random::<f64>();
        }
        r[v]
    };
    let mut indptr = Vec::with_capacity(dst.len() + 1);
    indptr.push(0usize);
    let mut kept: Vec<NodeId> = Vec::new();
    let mut kept_w: Vec<f32> = Vec::new();
    for &t in dst {
        let neigh = g.neighbors(t);
        let d = neigh.len();
        if d == 0 {
            indptr.push(kept.len());
            continue;
        }
        let pi = (k as f64 / d as f64).min(1.0);
        for &v in neigh {
            if rand_of(v as usize, &mut rng) <= pi {
                kept.push(v);
                // Horvitz–Thompson: (1/d) · (1/π).
                kept_w.push((1.0 / (d as f64 * pi)) as f32);
            }
        }
        indptr.push(kept.len());
    }
    let (src, index_of) = build_src_index(n, dst, kept.iter().copied());
    let cols: Vec<u32> = kept.iter().map(|&v| index_of[v as usize]).collect();
    let block = Block { dst: dst.to_vec(), src, indptr, cols, weights: kept_w };
    debug_assert!(block.validate().is_ok());
    block
}

/// Samples an `L`-layer LABOR stack (deepest block first).
pub fn labor_blocks(g: &CsrGraph, targets: &[NodeId], fanouts: &[usize], seed: u64) -> Vec<Block> {
    let _sp = sgnn_obs::span!("sample.blocks");
    let mut blocks_rev = Vec::with_capacity(fanouts.len());
    let mut dst: Vec<NodeId> = targets.to_vec();
    for (i, &k) in fanouts.iter().enumerate() {
        let b = labor_block(g, &dst, k, seed.wrapping_add(i as u64).wrapping_mul(0x85EB_CA6B));
        sgnn_obs::record_frontier(i, b.num_src());
        dst = b.src.clone();
        blocks_rev.push(b);
    }
    blocks_rev.reverse();
    blocks_rev
}

#[cfg(test)]
mod tests {
    use super::*;
    use sgnn_graph::generate;
    use sgnn_linalg::DenseMatrix;

    #[test]
    fn expected_sample_count_close_to_fanout() {
        let g = generate::barabasi_albert(2_000, 10, 1);
        let dst: Vec<NodeId> = (100..164).collect();
        let mut total_edges = 0usize;
        let reps = 50;
        for s in 0..reps {
            let b = labor_block(&g, &dst, 5, s);
            total_edges += b.num_edges();
        }
        let per_dst = total_edges as f64 / (reps as usize * dst.len()) as f64;
        // E[kept per dst] = d · min(1, k/d) ≤ k with equality when d ≥ k.
        assert!((per_dst - 5.0).abs() < 0.5, "per-dst {per_dst}");
    }

    #[test]
    fn estimator_is_unbiased() {
        let g = generate::erdos_renyi(200, 0.08, false, 2);
        let x = DenseMatrix::gaussian(200, 1, 1.0, 3);
        let target = 11u32;
        let neigh = g.neighbors(target);
        let exact: f32 =
            neigh.iter().map(|&v| x.get(v as usize, 0)).sum::<f32>() / neigh.len() as f32;
        let mut acc = 0f64;
        let reps = 5000;
        for s in 0..reps {
            let b = labor_block(&g, &[target], 4, s);
            let xs = x.gather_rows(&b.src.iter().map(|&v| v as usize).collect::<Vec<_>>());
            acc += b.aggregate(&xs).get(0, 0) as f64;
        }
        let mean = acc / reps as f64;
        assert!((mean - exact as f64).abs() < 0.05, "mean {mean} vs exact {exact}");
    }

    #[test]
    fn labor_touches_fewer_unique_sources_than_node_wise() {
        // The LABOR claim (E10): at matched per-destination fanout, shared
        // randomness yields fewer unique sources on graphs where
        // destinations share neighbors.
        let (g, _) = generate::planted_partition(3_000, 3, 30.0, 0.9, 4);
        let dst: Vec<NodeId> = (0..400).collect();
        let mut labor_srcs = 0usize;
        let mut nw_srcs = 0usize;
        for s in 0..10 {
            labor_srcs += labor_block(&g, &dst, 5, s).num_src();
            nw_srcs += crate::node_wise::sample_blocks(&g, &dst, &[5], s)[0].num_src();
        }
        assert!(
            labor_srcs < nw_srcs,
            "labor {labor_srcs} should touch fewer sources than node-wise {nw_srcs}"
        );
    }

    #[test]
    fn small_degree_nodes_keep_all_neighbors() {
        let g = generate::chain(20); // degrees ≤ 2
        let dst: Vec<NodeId> = (1..19).collect();
        let b = labor_block(&g, &dst, 4, 5);
        // π = 1 for every neighbor → every edge kept with weight 1/d.
        for (i, &t) in dst.iter().enumerate() {
            assert_eq!(b.indptr[i + 1] - b.indptr[i], g.degree(t));
        }
        for i in 0..b.num_dst() {
            let s: f32 = b.weights[b.indptr[i]..b.indptr[i + 1]].iter().sum();
            assert!((s - 1.0).abs() < 1e-6);
        }
    }

    #[test]
    fn stack_chains() {
        let g = generate::barabasi_albert(500, 4, 6);
        let t: Vec<NodeId> = vec![0, 5, 10];
        let blocks = labor_blocks(&g, &t, &[4, 4], 7);
        assert_eq!(blocks[1].dst, t);
        assert_eq!(blocks[0].dst, blocks[1].src);
        for b in &blocks {
            b.validate().unwrap();
        }
    }
}
