//! Deterministic target-chunking shared by the data-parallel samplers.
//!
//! Every sampler in this crate processes its destination list in
//! fixed-size chunks of [`CHUNK`] targets. The chunk grid is a property
//! of the *input* (its length), never of the thread count, and each
//! chunk's randomness derives from `(batch seed, hop, chunk index)` via
//! [`sgnn_linalg::rng::chunk_seed`]. Consequences:
//!
//! - the sequential reference path (chunks visited in order on one
//!   thread) and the parallel path (chunks executed concurrently on the
//!   `sgnn-linalg` pool, results merged in chunk order) produce **bitwise
//!   identical** blocks for the same seed;
//! - results are identical at *any* thread count, including the
//!   `set_threads(1)` test/bench baseline.
//!
//! See DESIGN.md §6 for the full determinism contract.

/// Destinations per sampling chunk. Small enough that a large batch
/// yields enough chunks to balance across workers (and for the atomic
/// work-stealing counter to absorb degree skew), large enough that
/// per-chunk overhead (one RNG init, a few `Vec`s) stays invisible.
/// **Changing this value changes sampler output for a given seed** — it
/// is part of the determinism contract.
pub const CHUNK: usize = 256;

/// Number of chunks covering `len` destinations.
pub(crate) fn num_chunks(len: usize) -> usize {
    len.div_ceil(CHUNK)
}

/// Half-open destination range of chunk `ci`.
pub(crate) fn bounds(len: usize, ci: usize) -> std::ops::Range<usize> {
    (ci * CHUNK)..((ci + 1) * CHUNK).min(len)
}

/// True when samplers should run their chunk loop on the worker pool.
pub(crate) fn auto_parallel() -> bool {
    sgnn_linalg::par::num_threads() > 1
}

/// Maps `f` over the chunk grid of `len` destinations and returns the
/// per-chunk results in chunk order — sequentially when `parallel` is
/// false, on the `sgnn-linalg` pool otherwise. `f` receives
/// `(chunk_index, destination_range)` and must be a pure function of
/// them (all sampler chunk bodies are: their RNG state is derived, not
/// shared).
pub(crate) fn map_chunks<T, F>(len: usize, parallel: bool, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize, std::ops::Range<usize>) -> T + Sync,
{
    let nc = num_chunks(len);
    if !parallel || nc <= 1 {
        return (0..nc).map(|ci| f(ci, bounds(len, ci))).collect();
    }
    sgnn_linalg::par::par_map_chunks(nc, |ci| f(ci, bounds(len, ci)))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunk_grid_tiles_the_length_exactly() {
        for len in [0usize, 1, CHUNK - 1, CHUNK, CHUNK + 1, 3 * CHUNK + 17] {
            let nc = num_chunks(len);
            let mut covered = 0usize;
            for ci in 0..nc {
                let r = bounds(len, ci);
                assert_eq!(r.start, covered);
                assert!(!r.is_empty(), "empty chunk {ci} for len {len}");
                covered = r.end;
            }
            assert_eq!(covered, len);
        }
    }

    #[test]
    fn map_chunks_sequential_and_parallel_agree() {
        let len = 5 * CHUNK + 3;
        let seq = map_chunks(len, false, |ci, r| (ci, r.start, r.end));
        let par = map_chunks(len, true, |ci, r| (ci, r.start, r.end));
        assert_eq!(seq, par);
    }
}
