//! Layer-wise importance sampling (FastGCN / LADIES).
//!
//! Instead of every destination drawing its own neighbors (multiplicative
//! blow-up), the whole layer shares one sampled node set. LADIES restricts
//! candidates to the union of the current destinations' neighborhoods and
//! samples them with probability proportional to their (layer-dependent)
//! squared adjacency column norm, then reweights edges by `1/(s·p_v)` so
//! the aggregation stays unbiased.

use crate::block::{build_src_index, Block};
use crate::chunk;
use sgnn_graph::{CsrGraph, NodeId};

/// Samples one LADIES block: `dst` aggregates from `layer_size` shared
/// sources drawn from the union of `dst` neighborhoods.
///
/// Aggregation approximates the row-normalized mean
/// `(1/d_u) Σ_{v∈N(u)} x_v`: the estimator for row `u` is
/// `Σ_{v∈S∩N(u)} x_v / (d_u · s · p_v)`.
///
/// The destination-side passes (candidate-weight accumulation and edge
/// emission) run chunk-parallel when more than one thread is configured;
/// the shared weighted draw itself is a single sequential RNG stream
/// either way, so results are bitwise identical at any thread count.
pub fn ladies_block(g: &CsrGraph, dst: &[NodeId], layer_size: usize, seed: u64) -> Block {
    ladies_block_impl(g, dst, layer_size, seed, chunk::auto_parallel())
}

fn ladies_block_impl(
    g: &CsrGraph,
    dst: &[NodeId],
    layer_size: usize,
    seed: u64,
    parallel: bool,
) -> Block {
    let n = g.num_nodes();
    let mut rng = sgnn_linalg::rng::seeded(seed);
    // Candidate set = union of dst neighborhoods; importance ∝ # dst
    // neighbors (squared column norm of the row-normalized adjacency
    // restricted to dst, with unit weights ≈ count scaled — we use the
    // exact LADIES quantity for the Rw-normalized operator).
    //
    // Accumulated per destination chunk, then merged in chunk order: a
    // candidate's weight is the sum of its per-chunk partials, and both
    // the within-chunk accumulation order (destination order) and the
    // cross-chunk merge order (chunk index) are fixed, so the f64 sums
    // are identical no matter how chunks were scheduled.
    let parts: Vec<std::collections::HashMap<NodeId, f64>> =
        chunk::map_chunks(dst.len(), parallel, |_, r| {
            let mut weight_of: std::collections::HashMap<NodeId, f64> =
                std::collections::HashMap::new();
            for &u in &dst[r] {
                let du = g.degree(u).max(1) as f64;
                for &v in g.neighbors(u) {
                    *weight_of.entry(v).or_insert(0.0) += 1.0 / (du * du);
                }
            }
            weight_of
        });
    let mut weight_of: std::collections::HashMap<NodeId, f64> = std::collections::HashMap::new();
    for part in parts {
        for (v, w) in part {
            *weight_of.entry(v).or_insert(0.0) += w;
        }
    }
    let mut candidates: Vec<(NodeId, f64)> = weight_of.into_iter().collect();
    candidates.sort_unstable_by_key(|&(v, _)| v); // determinism
    let total: f64 = candidates.iter().map(|&(_, w)| w).sum();
    // Sample `layer_size` distinct candidates by repeated weighted draws —
    // one shared stream for the whole layer (that is what layer-wise
    // sampling *is*), deliberately left sequential.
    let s_target = layer_size.min(candidates.len());
    let mut chosen: Vec<(NodeId, f64)> = Vec::with_capacity(s_target);
    if total > 0.0 {
        let mut weights: Vec<f64> = candidates.iter().map(|&(_, w)| w).collect();
        for _ in 0..s_target {
            match sgnn_linalg::rng::sample_weighted(&mut rng, &weights) {
                Some(i) => {
                    chosen.push((candidates[i].0, candidates[i].1 / total));
                    weights[i] = 0.0;
                }
                None => break,
            }
        }
    }
    chosen.sort_unstable_by_key(|&(v, _)| v);
    let s = chosen.len();
    // Probability lookup.
    let mut prob_of = vec![0f64; n];
    for &(v, p) in &chosen {
        prob_of[v as usize] = p;
    }
    let (src, index_of) = build_src_index(n, dst, chosen.iter().map(|&(v, _)| v));
    // Edge emission per destination chunk (pure function of the chosen
    // set), merged in chunk order.
    let edge_parts: Vec<(Vec<u32>, Vec<u32>, Vec<f32>)> =
        chunk::map_chunks(dst.len(), parallel, |_, r| {
            let mut counts = Vec::with_capacity(r.len());
            let mut cols = Vec::new();
            let mut weights = Vec::new();
            for &u in &dst[r] {
                let before = cols.len();
                let du = g.degree(u).max(1) as f64;
                for &v in g.neighbors(u) {
                    let p = prob_of[v as usize];
                    if p > 0.0 {
                        cols.push(index_of[v as usize]);
                        weights.push((1.0 / (du * s as f64 * p)) as f32);
                    }
                }
                counts.push((cols.len() - before) as u32);
            }
            (counts, cols, weights)
        });
    let mut indptr = Vec::with_capacity(dst.len() + 1);
    indptr.push(0usize);
    let mut cols = Vec::new();
    let mut weights = Vec::new();
    for (counts, part_cols, part_weights) in &edge_parts {
        for &c in counts {
            indptr.push(indptr.last().unwrap() + c as usize);
        }
        cols.extend_from_slice(part_cols);
        weights.extend_from_slice(part_weights);
    }
    let block = Block { dst: dst.to_vec(), src, indptr, cols, weights };
    debug_assert!(block.validate().is_ok());
    block
}

/// Samples an `L`-layer LADIES stack (deepest block first, matching
/// [`crate::node_wise::sample_blocks`] ordering).
pub fn ladies_blocks(
    g: &CsrGraph,
    targets: &[NodeId],
    layer_sizes: &[usize],
    seed: u64,
) -> Vec<Block> {
    ladies_blocks_impl(g, targets, layer_sizes, seed, chunk::auto_parallel())
}

/// Sequential reference for [`ladies_blocks`] — same seeds, same chunk
/// grid, chunks visited in order on the calling thread.
pub fn ladies_blocks_seq(
    g: &CsrGraph,
    targets: &[NodeId],
    layer_sizes: &[usize],
    seed: u64,
) -> Vec<Block> {
    ladies_blocks_impl(g, targets, layer_sizes, seed, false)
}

fn ladies_blocks_impl(
    g: &CsrGraph,
    targets: &[NodeId],
    layer_sizes: &[usize],
    seed: u64,
    parallel: bool,
) -> Vec<Block> {
    let _sp = sgnn_obs::span!("sample.blocks");
    let _ht = crate::SAMPLE_BLOCK_NS.time();
    sgnn_obs::record_frontier(0, targets.len());
    let mut blocks_rev = Vec::with_capacity(layer_sizes.len());
    let mut dst: Vec<NodeId> = targets.to_vec();
    for (i, &sz) in layer_sizes.iter().enumerate() {
        let b = ladies_block_impl(
            g,
            &dst,
            sz,
            seed.wrapping_add(i as u64).wrapping_mul(0x9E37_79B9),
            parallel,
        );
        sgnn_obs::record_frontier(i + 1, b.num_src());
        dst = b.src.clone();
        blocks_rev.push(b);
    }
    blocks_rev.reverse();
    blocks_rev
}

#[cfg(test)]
mod tests {
    use super::*;
    use sgnn_graph::generate;
    use sgnn_linalg::DenseMatrix;

    #[test]
    fn block_has_bounded_source_set() {
        let g = generate::barabasi_albert(1_000, 5, 1);
        let dst: Vec<NodeId> = (0..32).collect();
        let b = ladies_block(&g, &dst, 64, 3);
        b.validate().unwrap();
        // src = dst prefix + ≤64 sampled.
        assert!(b.num_src() <= 32 + 64);
    }

    #[test]
    fn estimator_is_unbiased_over_seeds() {
        let g = generate::erdos_renyi(150, 0.08, false, 2);
        let x = DenseMatrix::gaussian(150, 1, 1.0, 3);
        let target = 7u32;
        let neigh = g.neighbors(target);
        assert!(!neigh.is_empty());
        let exact: f32 =
            neigh.iter().map(|&v| x.get(v as usize, 0)).sum::<f32>() / neigh.len() as f32;
        let mut acc = 0f64;
        let reps = 4000;
        for s in 0..reps {
            let b = ladies_block(&g, &[target], 20, s);
            let xs = x.gather_rows(&b.src.iter().map(|&v| v as usize).collect::<Vec<_>>());
            let y = b.aggregate(&xs);
            acc += y.get(0, 0) as f64;
        }
        let mean = acc / reps as f64;
        assert!((mean - exact as f64).abs() < 0.05, "mean {mean} vs exact {exact}");
    }

    #[test]
    fn layer_size_caps_unique_sources_vs_node_wise() {
        // The headline property: with many destinations, layer-wise sampling
        // touches far fewer unique sources than node-wise at similar edge
        // budget.
        let g = generate::barabasi_albert(5_000, 8, 4);
        let dst: Vec<NodeId> = (0..256).collect();
        let lad = ladies_block(&g, &dst, 128, 5);
        let nw = crate::node_wise::sample_blocks(&g, &dst, &[8], 5);
        assert!(
            lad.num_src() < nw[0].num_src() / 2,
            "ladies {} vs node-wise {}",
            lad.num_src(),
            nw[0].num_src()
        );
    }

    #[test]
    fn stack_chains_and_respects_order() {
        let g = generate::barabasi_albert(800, 4, 6);
        let targets: Vec<NodeId> = vec![1, 2, 3, 4];
        let blocks = ladies_blocks(&g, &targets, &[32, 16], 9);
        assert_eq!(blocks.len(), 2);
        assert_eq!(blocks[1].dst, targets);
        assert_eq!(blocks[0].dst, blocks[1].src);
    }

    #[test]
    fn parallel_path_matches_sequential_bitwise() {
        // Force the chunked-parallel path; must be bitwise identical to
        // the sequential reference (multi-chunk: 900 targets > CHUNK).
        let g = generate::barabasi_albert(4_000, 6, 8);
        let t: Vec<NodeId> = (0..900).collect();
        let seq = ladies_blocks_seq(&g, &t, &[512, 256], 123);
        let par = ladies_blocks_impl(&g, &t, &[512, 256], 123, true);
        assert_eq!(seq.len(), par.len());
        for (a, b) in seq.iter().zip(&par) {
            assert_eq!(a.dst, b.dst);
            assert_eq!(a.src, b.src);
            assert_eq!(a.indptr, b.indptr);
            assert_eq!(a.cols, b.cols);
            let wa: Vec<u32> = a.weights.iter().map(|w| w.to_bits()).collect();
            let wb: Vec<u32> = b.weights.iter().map(|w| w.to_bits()).collect();
            assert_eq!(wa, wb);
        }
    }

    #[test]
    fn empty_candidates_yield_empty_block() {
        let g = CsrGraph::empty(10);
        let b = ladies_block(&g, &[1, 2], 8, 1);
        assert_eq!(b.num_edges(), 0);
        assert_eq!(b.src, vec![1, 2]);
    }
}
