//! Walk-based subgraph extraction with compact storage (SUREL [53],
//! SUREL+ [52], GENTI [55]).
//!
//! The SUREL line replaces per-query subgraph *induction* with per-seed
//! *walk sets*: sample `m` walks of length `l` from each seed once, store
//! them in a flat array, and answer subgraph queries (e.g. for a node pair
//! in link prediction) by joining the two walk sets. The storage layout is
//! the point — "storing subgraphs as sparse representation" — so the store
//! here is three flat buffers, no per-seed allocations.
//!
//! Also provided: *relative positional encodings* (RPE) — per (seed,
//! visited node) landing counts at each hop, SUREL's structural feature.

use rand::RngExt;
use sgnn_graph::{CsrGraph, NodeId};

/// # Example
///
/// ```
/// use sgnn_graph::generate;
/// use sgnn_sample::WalkStore;
///
/// let g = generate::barabasi_albert(2_000, 3, 5);
/// let store = WalkStore::sample(&g, &[10, 20], 4, 6, 0);
/// assert_eq!(store.walk(0, 0)[0], 10); // walks start at their seed
/// let (_union, overlap) = store.pair_query(0, 1);
/// assert!(overlap <= 2_000);
/// ```
/// Flat store of `m` walks of length `l` (plus the seed itself) per seed.
#[derive(Debug, Clone)]
pub struct WalkStore {
    /// Seeds, in insertion order.
    pub seeds: Vec<NodeId>,
    /// Walks per seed.
    pub walks_per_seed: usize,
    /// Steps per walk (walk occupies `steps + 1` slots including the seed).
    pub steps: usize,
    /// Flat node buffer: seed-major, then walk-major, then position.
    data: Vec<NodeId>,
}

impl WalkStore {
    /// Samples walks for `seeds` on `g`.
    ///
    /// Walks that hit a dangling node stay there (self-repeat), keeping the
    /// layout rectangular — exactly what a GPU-friendly store does.
    pub fn sample(
        g: &CsrGraph,
        seeds: &[NodeId],
        walks_per_seed: usize,
        steps: usize,
        seed: u64,
    ) -> WalkStore {
        let mut rng = sgnn_linalg::rng::seeded(seed);
        let stride = steps + 1;
        let mut data = Vec::with_capacity(seeds.len() * walks_per_seed * stride);
        for &s in seeds {
            for _ in 0..walks_per_seed {
                let mut u = s;
                data.push(u);
                for _ in 0..steps {
                    let neigh = g.neighbors(u);
                    if !neigh.is_empty() {
                        u = neigh[rng.random_range(0..neigh.len())];
                    }
                    data.push(u);
                }
            }
        }
        WalkStore { seeds: seeds.to_vec(), walks_per_seed, steps, data }
    }

    /// The `w`-th walk of the `i`-th seed as a slice of `steps+1` nodes.
    pub fn walk(&self, seed_idx: usize, w: usize) -> &[NodeId] {
        let stride = self.steps + 1;
        let base = (seed_idx * self.walks_per_seed + w) * stride;
        &self.data[base..base + stride]
    }

    /// All nodes visited from seed `i` (sorted, deduped) — the seed's
    /// "walk-induced subgraph" node set.
    pub fn visited(&self, seed_idx: usize) -> Vec<NodeId> {
        let stride = self.steps + 1;
        let base = seed_idx * self.walks_per_seed * stride;
        let mut v: Vec<NodeId> = self.data[base..base + self.walks_per_seed * stride].to_vec();
        v.sort_unstable();
        v.dedup();
        v
    }

    /// Relative positional encoding of seed `i`: for every visited node,
    /// its landing counts per hop position (`steps+1` wide).
    ///
    /// Returned as `(nodes, counts)` with `counts[j*(steps+1) + h]` = how
    /// often `nodes[j]` was visited at hop `h`.
    pub fn rpe(&self, seed_idx: usize) -> (Vec<NodeId>, Vec<u32>) {
        let nodes = self.visited(seed_idx);
        let stride = self.steps + 1;
        let mut counts = vec![0u32; nodes.len() * stride];
        for w in 0..self.walks_per_seed {
            for (h, &u) in self.walk(seed_idx, w).iter().enumerate() {
                let j = nodes.binary_search(&u).expect("visited node present");
                counts[j * stride + h] += 1;
            }
        }
        (nodes, counts)
    }

    /// Pair query (the link-prediction access pattern): union of the two
    /// seeds' visited sets plus the intersection size (a cheap proximity
    /// signal).
    pub fn pair_query(&self, a_idx: usize, b_idx: usize) -> (Vec<NodeId>, usize) {
        let a = self.visited(a_idx);
        let b = self.visited(b_idx);
        let mut union = Vec::with_capacity(a.len() + b.len());
        let mut inter = 0usize;
        let (mut i, mut j) = (0usize, 0usize);
        while i < a.len() && j < b.len() {
            match a[i].cmp(&b[j]) {
                std::cmp::Ordering::Less => {
                    union.push(a[i]);
                    i += 1;
                }
                std::cmp::Ordering::Greater => {
                    union.push(b[j]);
                    j += 1;
                }
                std::cmp::Ordering::Equal => {
                    union.push(a[i]);
                    inter += 1;
                    i += 1;
                    j += 1;
                }
            }
        }
        union.extend_from_slice(&a[i..]);
        union.extend_from_slice(&b[j..]);
        (union, inter)
    }

    /// Store bytes (the E11 storage metric).
    pub fn nbytes(&self) -> usize {
        self.data.len() * std::mem::size_of::<NodeId>()
            + self.seeds.len() * std::mem::size_of::<NodeId>()
    }

    /// Number of stored walk slots.
    pub fn len_slots(&self) -> usize {
        self.data.len()
    }
}

/// Baseline for E11: extract each seed's `h`-hop induced subgraph
/// explicitly (the cost walk stores avoid).
pub fn induced_baseline(g: &CsrGraph, seeds: &[NodeId], hops: u32) -> Vec<(CsrGraph, Vec<NodeId>)> {
    seeds
        .iter()
        .map(|&s| {
            let nodes = sgnn_graph::traverse::k_hop_neighborhood(g, s, hops);
            g.induced_subgraph(&nodes)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use sgnn_graph::generate;

    #[test]
    fn walks_start_at_seed_and_follow_edges() {
        let g = generate::barabasi_albert(200, 3, 1);
        let ws = WalkStore::sample(&g, &[5, 9], 4, 6, 2);
        for (i, &s) in ws.seeds.iter().enumerate() {
            for w in 0..4 {
                let walk = ws.walk(i, w);
                assert_eq!(walk[0], s);
                for t in 1..walk.len() {
                    assert!(
                        g.has_edge(walk[t - 1], walk[t]) || walk[t - 1] == walk[t],
                        "invalid hop {} -> {}",
                        walk[t - 1],
                        walk[t]
                    );
                }
            }
        }
    }

    #[test]
    fn dangling_walks_self_repeat() {
        let g = sgnn_graph::GraphBuilder::new(3).edges(&[(0, 1)]).build().unwrap();
        let ws = WalkStore::sample(&g, &[0], 2, 4, 3);
        let walk = ws.walk(0, 0);
        assert_eq!(walk.len(), 5);
        assert_eq!(walk[1], 1);
        assert!(walk[2..].iter().all(|&v| v == 1)); // stuck at sink
    }

    #[test]
    fn visited_is_sorted_dedup() {
        let g = generate::grid2d(5, 5);
        let ws = WalkStore::sample(&g, &[12], 8, 5, 4);
        let v = ws.visited(0);
        assert!(v.windows(2).all(|w| w[0] < w[1]));
        assert!(v.contains(&12));
    }

    #[test]
    fn rpe_counts_sum_to_walk_slots() {
        let g = generate::barabasi_albert(100, 3, 5);
        let ws = WalkStore::sample(&g, &[7], 6, 4, 6);
        let (nodes, counts) = ws.rpe(0);
        let total: u32 = counts.iter().sum();
        assert_eq!(total as usize, 6 * 5); // walks × (steps+1)
                                           // Seed lands at hop 0 in every walk.
        let j = nodes.binary_search(&7).unwrap();
        assert_eq!(counts[j * 5], 6);
    }

    #[test]
    fn pair_query_counts_overlap() {
        let g = generate::chain(10);
        let ws = WalkStore::sample(&g, &[0, 1, 9], 10, 3, 7);
        let (union01, inter01) = ws.pair_query(0, 1);
        let (_, inter09) = ws.pair_query(0, 2);
        assert!(inter01 > 0, "adjacent seeds must overlap");
        assert!(inter01 >= inter09, "near pair overlaps at least as much as far pair");
        assert!(union01.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn store_is_rectangular_and_compact() {
        let g = generate::barabasi_albert(500, 3, 8);
        let seeds: Vec<NodeId> = (0..50).collect();
        let ws = WalkStore::sample(&g, &seeds, 4, 6, 9);
        assert_eq!(ws.len_slots(), 50 * 4 * 7);
        assert_eq!(ws.nbytes(), (50 * 4 * 7 + 50) * 4);
    }

    #[test]
    fn induced_baseline_produces_valid_subgraphs() {
        let g = generate::barabasi_albert(300, 3, 10);
        let subs = induced_baseline(&g, &[0, 50], 2);
        assert_eq!(subs.len(), 2);
        for (sub, map) in &subs {
            sub.validate().unwrap();
            assert!(!map.is_empty());
        }
    }
}
