//! Bipartite message-flow blocks.
//!
//! A [`Block`] is the sampled computation graph between two consecutive GNN
//! layers: `dst` nodes (this layer's outputs) aggregate from `src` nodes
//! (previous layer's outputs) through a weighted bipartite CSR. A stack of
//! blocks — innermost layer first — is what a sampled mini-batch *is*; the
//! trainer feeds features of the outermost `src` set in, and gets
//! predictions for the batch targets out.
//!
//! Invariant maintained by every sampler here: `dst` is a prefix of `src`
//! (each destination also appears as source index `i`), so models can read
//! self-features without extra bookkeeping.

use sgnn_graph::NodeId;
use sgnn_linalg::DenseMatrix;

/// One sampled bipartite layer.
#[derive(Debug, Clone)]
pub struct Block {
    /// Global ids of destination (output) nodes; row `i` of the block.
    pub dst: Vec<NodeId>,
    /// Global ids of source (input) nodes; `dst` is always a prefix.
    pub src: Vec<NodeId>,
    /// CSR row offsets over `dst`.
    pub indptr: Vec<usize>,
    /// Column indices into `src`.
    pub cols: Vec<u32>,
    /// Aggregation weights (already bias-corrected by the sampler).
    pub weights: Vec<f32>,
}

impl Block {
    /// Number of destination rows.
    pub fn num_dst(&self) -> usize {
        self.dst.len()
    }

    /// Number of source columns.
    pub fn num_src(&self) -> usize {
        self.src.len()
    }

    /// Number of sampled edges.
    pub fn num_edges(&self) -> usize {
        self.cols.len()
    }

    /// Aggregates source-node features: `Y[i] = Σ_e w_e · X[cols[e]]` for
    /// row `i`. `x_src` must have `num_src()` rows.
    pub fn aggregate(&self, x_src: &DenseMatrix) -> DenseMatrix {
        let mut y = DenseMatrix::zeros(self.dst.len(), x_src.cols());
        self.aggregate_into(x_src, &mut y);
        y
    }

    /// [`aggregate`](Self::aggregate) into a caller-owned `(num_dst, d)`
    /// matrix, overwriting it — mini-batch trainers reuse one scratch
    /// across steps instead of allocating per block.
    pub fn aggregate_into(&self, x_src: &DenseMatrix, y: &mut DenseMatrix) {
        assert_eq!(x_src.rows(), self.src.len(), "src feature rows mismatch");
        assert_eq!(y.shape(), (self.dst.len(), x_src.cols()), "output shape must be (num_dst, d)");
        for i in 0..self.dst.len() {
            let row = y.row_mut(i);
            row.fill(0.0);
            for e in self.indptr[i]..self.indptr[i + 1] {
                let src_row = x_src.row(self.cols[e] as usize);
                // row/src_row borrows disjoint matrices; safe to combine.
                sgnn_linalg::vecops::axpy(self.weights[e], src_row, row);
            }
        }
    }

    /// Backpropagates gradients through [`aggregate`](Self::aggregate):
    /// given `dY` (per-dst), accumulates `dX[cols[e]] += w_e · dY[i]`.
    pub fn aggregate_backward(&self, dy: &DenseMatrix) -> DenseMatrix {
        assert_eq!(dy.rows(), self.dst.len());
        let d = dy.cols();
        let mut dx = DenseMatrix::zeros(self.src.len(), d);
        for i in 0..self.dst.len() {
            let gy = dy.row(i);
            for e in self.indptr[i]..self.indptr[i + 1] {
                let c = self.cols[e] as usize;
                let tgt = dx.row_mut(c);
                sgnn_linalg::vecops::axpy(self.weights[e], gy, tgt);
            }
        }
        dx
    }

    /// Validates the structural invariants (dst-prefix, bounds, shapes).
    pub fn validate(&self) -> Result<(), String> {
        if self.indptr.len() != self.dst.len() + 1 {
            return Err("indptr length".into());
        }
        if *self.indptr.last().unwrap_or(&0) != self.cols.len() {
            return Err("indptr end".into());
        }
        if self.cols.len() != self.weights.len() {
            return Err("weights not parallel".into());
        }
        if self.src.len() < self.dst.len() || self.src[..self.dst.len()] != self.dst[..] {
            return Err("dst is not a prefix of src".into());
        }
        if self.cols.iter().any(|&c| c as usize >= self.src.len()) {
            return Err("column out of range".into());
        }
        Ok(())
    }

    /// Memory footprint of the block structure in bytes.
    pub fn nbytes(&self) -> usize {
        self.dst.len() * 4
            + self.src.len() * 4
            + self.indptr.len() * std::mem::size_of::<usize>()
            + self.cols.len() * 4
            + self.weights.len() * 4
    }
}

/// Builds the unique `src` list for a set of `dst` nodes plus their sampled
/// neighbor lists, preserving the dst-prefix invariant. Returns
/// `(src, index_of)` where `index_of` maps global → local (dense vector
/// scratch, `u32::MAX` = absent).
pub(crate) fn build_src_index(
    n: usize,
    dst: &[NodeId],
    extra: impl Iterator<Item = NodeId>,
) -> (Vec<NodeId>, Vec<u32>) {
    let mut index_of = vec![u32::MAX; n];
    let mut src: Vec<NodeId> = Vec::with_capacity(dst.len() * 2);
    for &u in dst {
        debug_assert_eq!(index_of[u as usize], u32::MAX, "duplicate dst node");
        index_of[u as usize] = src.len() as u32;
        src.push(u);
    }
    for v in extra {
        if index_of[v as usize] == u32::MAX {
            index_of[v as usize] = src.len() as u32;
            src.push(v);
        }
    }
    (src, index_of)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy_block() -> Block {
        // dst = [10, 20]; src = [10, 20, 30].
        Block {
            dst: vec![10, 20],
            src: vec![10, 20, 30],
            indptr: vec![0, 2, 3],
            cols: vec![1, 2, 2],
            weights: vec![0.5, 0.5, 1.0],
        }
    }

    #[test]
    fn aggregate_weighted_mean() {
        let b = toy_block();
        b.validate().unwrap();
        let x = DenseMatrix::from_rows(&[&[1.0], &[2.0], &[4.0]]);
        let y = b.aggregate(&x);
        assert_eq!(y.row(0), &[3.0]); // 0.5·2 + 0.5·4
        assert_eq!(y.row(1), &[4.0]); // 1.0·4
    }

    #[test]
    fn backward_is_transpose_of_forward() {
        let b = toy_block();
        // <A x, y> == <x, A^T y> for random x, y.
        let x = DenseMatrix::gaussian(3, 2, 1.0, 1);
        let gy = DenseMatrix::gaussian(2, 2, 1.0, 2);
        let ax = b.aggregate(&x);
        let aty = b.aggregate_backward(&gy);
        let lhs = sgnn_linalg::vecops::dot(ax.data(), gy.data());
        let rhs = sgnn_linalg::vecops::dot(x.data(), aty.data());
        assert!((lhs - rhs).abs() < 1e-5);
    }

    #[test]
    fn validate_catches_broken_prefix() {
        let mut b = toy_block();
        b.src = vec![20, 10, 30];
        assert!(b.validate().is_err());
    }

    #[test]
    fn validate_catches_out_of_range_col() {
        let mut b = toy_block();
        b.cols[0] = 9;
        assert!(b.validate().is_err());
    }

    #[test]
    fn src_index_builder_dedups_and_prefixes() {
        let (src, idx) = build_src_index(50, &[5, 7], [7u32, 9, 5, 9].into_iter());
        assert_eq!(src, vec![5, 7, 9]);
        assert_eq!(idx[5], 0);
        assert_eq!(idx[7], 1);
        assert_eq!(idx[9], 2);
        assert_eq!(idx[8], u32::MAX);
    }
}
