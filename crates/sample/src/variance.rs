//! Estimator-variance measurement harness (experiment E10).
//!
//! The survey's §3.3.2 "Graph Variance" groups LABOR [2] and HDSGNN [21]
//! around one question: *how much variance does a sampling strategy inject
//! into the aggregation, per unit of sampling budget?* This module measures
//! it empirically: repeat a sampler many times over fixed features, compare
//! each estimate of `(1/d_u)Σ_{v∈N(u)} x_v` to the exact value, and report
//! variance plus the unique-source cost.

use crate::block::Block;
use sgnn_graph::{CsrGraph, NodeId};
use sgnn_linalg::DenseMatrix;

/// Sampling strategy under measurement.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Strategy {
    /// GraphSAGE node-wise sampling with the given fanout.
    NodeWise(usize),
    /// LADIES layer-wise sampling with the given layer size.
    LayerWise(usize),
    /// LABOR-0 Poisson sampling with the given fanout.
    Labor(usize),
}

/// One measurement row.
#[derive(Debug, Clone)]
pub struct VarianceReport {
    /// Strategy measured.
    pub strategy: Strategy,
    /// Mean (over dst nodes and feature dims) estimator variance.
    pub variance: f64,
    /// Mean squared bias of the estimator (should be ≈ 0 for all three).
    pub bias_sq: f64,
    /// Mean unique source nodes touched per round (feature-fetch cost).
    pub mean_unique_sources: f64,
    /// Mean sampled edges per round.
    pub mean_edges: f64,
}

fn one_block(g: &CsrGraph, dst: &[NodeId], strategy: Strategy, seed: u64) -> Block {
    match strategy {
        Strategy::NodeWise(k) => {
            crate::node_wise::sample_blocks(g, dst, &[k], seed).pop().expect("one block")
        }
        Strategy::LayerWise(s) => crate::layer_wise::ladies_block(g, dst, s, seed),
        Strategy::Labor(k) => crate::labor::labor_block(g, dst, k, seed),
    }
}

/// Exact neighborhood means for the destinations.
pub fn exact_aggregation(g: &CsrGraph, dst: &[NodeId], x: &DenseMatrix) -> DenseMatrix {
    let d = x.cols();
    let mut y = DenseMatrix::zeros(dst.len(), d);
    for (i, &u) in dst.iter().enumerate() {
        let neigh = g.neighbors(u);
        if neigh.is_empty() {
            continue;
        }
        let row = y.row_mut(i);
        let mut acc = vec![0f32; d];
        for &v in neigh {
            sgnn_linalg::vecops::axpy(1.0, x.row(v as usize), &mut acc);
        }
        sgnn_linalg::vecops::scale(&mut acc, 1.0 / neigh.len() as f32);
        row.copy_from_slice(&acc);
    }
    y
}

/// Measures a strategy over `rounds` independent samples.
pub fn measure(
    g: &CsrGraph,
    dst: &[NodeId],
    x: &DenseMatrix,
    strategy: Strategy,
    rounds: usize,
    seed: u64,
) -> VarianceReport {
    let exact = exact_aggregation(g, dst, x);
    let d = x.cols();
    let cells = dst.len() * d;
    let mut sum = vec![0f64; cells];
    let mut sum_sq = vec![0f64; cells];
    let mut unique_sources = 0usize;
    let mut edges = 0usize;
    for r in 0..rounds {
        let b = one_block(g, dst, strategy, seed.wrapping_add(r as u64));
        unique_sources += b.num_src();
        edges += b.num_edges();
        let xs = x.gather_rows(&b.src.iter().map(|&v| v as usize).collect::<Vec<_>>());
        let y = b.aggregate(&xs);
        for (i, &v) in y.data().iter().enumerate() {
            sum[i] += v as f64;
            sum_sq[i] += (v as f64) * (v as f64);
        }
    }
    let inv = 1.0 / rounds as f64;
    let mut var_acc = 0f64;
    let mut bias_acc = 0f64;
    for i in 0..cells {
        let mean = sum[i] * inv;
        let var = (sum_sq[i] * inv - mean * mean).max(0.0);
        var_acc += var;
        let b = mean - exact.data()[i] as f64;
        bias_acc += b * b;
    }
    VarianceReport {
        strategy,
        variance: var_acc / cells as f64,
        bias_sq: bias_acc / cells as f64,
        mean_unique_sources: unique_sources as f64 / rounds as f64,
        mean_edges: edges as f64 / rounds as f64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sgnn_graph::generate;

    fn setup() -> (CsrGraph, Vec<NodeId>, DenseMatrix) {
        let (g, _) = generate::planted_partition(1_500, 3, 20.0, 0.8, 1);
        let dst: Vec<NodeId> = (0..128).collect();
        let x = DenseMatrix::gaussian(1_500, 4, 1.0, 2);
        (g, dst, x)
    }

    #[test]
    fn all_strategies_are_nearly_unbiased() {
        let (g, dst, x) = setup();
        for s in [Strategy::NodeWise(5), Strategy::LayerWise(128), Strategy::Labor(5)] {
            let r = measure(&g, &dst, &x, s, 300, 7);
            assert!(r.bias_sq < 0.01, "{s:?} bias² {}", r.bias_sq);
        }
    }

    #[test]
    fn bigger_fanout_means_lower_variance() {
        let (g, dst, x) = setup();
        let v2 = measure(&g, &dst, &x, Strategy::NodeWise(2), 200, 3).variance;
        let v10 = measure(&g, &dst, &x, Strategy::NodeWise(10), 200, 3).variance;
        assert!(v10 < v2, "fanout 10 var {v10} !< fanout 2 var {v2}");
    }

    #[test]
    fn labor_matches_node_wise_variance_with_fewer_sources() {
        // The LABOR headline (E10): comparable variance at the same fanout,
        // strictly fewer unique sources.
        let (g, dst, x) = setup();
        let nw = measure(&g, &dst, &x, Strategy::NodeWise(5), 300, 5);
        let lb = measure(&g, &dst, &x, Strategy::Labor(5), 300, 5);
        assert!(
            lb.variance < 2.0 * nw.variance,
            "labor variance {} vs node-wise {}",
            lb.variance,
            nw.variance
        );
        assert!(
            lb.mean_unique_sources < nw.mean_unique_sources,
            "labor sources {} vs node-wise {}",
            lb.mean_unique_sources,
            nw.mean_unique_sources
        );
    }

    #[test]
    fn exact_aggregation_handles_isolated_nodes() {
        let g = CsrGraph::empty(4);
        let x = DenseMatrix::gaussian(4, 2, 1.0, 1);
        let y = exact_aggregation(&g, &[0, 3], &x);
        assert_eq!(y.data(), &[0.0, 0.0, 0.0, 0.0]);
    }
}
