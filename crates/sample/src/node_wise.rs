//! Node-wise (GraphSAGE-style) neighbor sampling.
//!
//! Each target node independently draws up to `fanout` neighbors without
//! replacement; the sample mean is an unbiased estimator of the neighbor
//! mean. Stacking `L` layers bounds the per-batch computation graph at
//! `batch · Π fanout_i` — the classic answer to neighborhood explosion,
//! at the price of multiplicative growth in depth (experiment E1/E3).

use crate::block::{build_src_index, Block};
use crate::chunk;
use sgnn_graph::{CsrGraph, NodeId};

/// Samples the `L = fanouts.len()` blocks for a batch of `targets`.
///
/// `fanouts[0]` applies to the layer *closest to the output*. Returned
/// blocks are ordered input-side first (`blocks[0]` is the deepest layer),
/// which is the order a forward pass consumes them.
///
/// Each destination with degree `d` samples `min(fanout, d)` distinct
/// neighbors with weight `1/s` (mean aggregation, unbiased for the
/// neighborhood mean).
///
/// Destinations are processed in fixed [`chunk::CHUNK`]-sized chunks,
/// each with an RNG derived from `(seed, hop, chunk)`; when more than one
/// thread is configured the chunks of a hop are sampled concurrently on
/// the `sgnn-linalg` pool. Output is bitwise identical to
/// [`sample_blocks_seq`] for the same seed, at any thread count.
pub fn sample_blocks(g: &CsrGraph, targets: &[NodeId], fanouts: &[usize], seed: u64) -> Vec<Block> {
    sample_blocks_impl(g, targets, fanouts, seed, chunk::auto_parallel())
}

/// The sequential reference: identical chunk grid and per-chunk seeds,
/// chunks visited in order on the calling thread.
pub fn sample_blocks_seq(
    g: &CsrGraph,
    targets: &[NodeId],
    fanouts: &[usize],
    seed: u64,
) -> Vec<Block> {
    sample_blocks_impl(g, targets, fanouts, seed, false)
}

fn sample_blocks_impl(
    g: &CsrGraph,
    targets: &[NodeId],
    fanouts: &[usize],
    seed: u64,
    parallel: bool,
) -> Vec<Block> {
    let _sp = sgnn_obs::span!("sample.blocks");
    let _ht = crate::SAMPLE_BLOCK_NS.time();
    let n = g.num_nodes();
    // Hop 0 = the batch targets themselves; expansions land at hop + 1.
    sgnn_obs::record_frontier(0, targets.len());
    let mut blocks_rev: Vec<Block> = Vec::with_capacity(fanouts.len());
    let mut dst: Vec<NodeId> = targets.to_vec();
    for (hop, &fanout) in fanouts.iter().enumerate() {
        assert!(fanout > 0, "fanout must be positive");
        // Per chunk: (samples per destination, sampled neighbor list).
        let parts: Vec<(Vec<u32>, Vec<NodeId>)> =
            chunk::map_chunks(dst.len(), parallel, |ci, r| {
                let mut rng = sgnn_linalg::rng::seeded(sgnn_linalg::rng::chunk_seed(
                    seed, hop as u64, ci as u64,
                ));
                let mut counts = Vec::with_capacity(r.len());
                let mut sampled: Vec<NodeId> = Vec::new();
                for &u in &dst[r] {
                    let neigh = g.neighbors(u);
                    if neigh.len() <= fanout {
                        sampled.extend_from_slice(neigh);
                        counts.push(neigh.len() as u32);
                    } else {
                        let picks =
                            sgnn_linalg::rng::sample_distinct(&mut rng, neigh.len(), fanout);
                        sampled.extend(picks.into_iter().map(|i| neigh[i]));
                        counts.push(fanout as u32);
                    }
                }
                (counts, sampled)
            });
        // Merge in chunk order: chunk order == destination order, so the
        // concatenation is exactly what one sequential pass would build.
        let total: usize = parts.iter().map(|(_, s)| s.len()).sum();
        let mut indptr = Vec::with_capacity(dst.len() + 1);
        indptr.push(0usize);
        let mut sampled: Vec<NodeId> = Vec::with_capacity(total);
        for (counts, part) in &parts {
            for &c in counts {
                indptr.push(indptr.last().unwrap() + c as usize);
            }
            sampled.extend_from_slice(part);
        }
        let (src, index_of) = build_src_index(n, &dst, sampled.iter().copied());
        let mut cols = Vec::with_capacity(sampled.len());
        let mut weights = Vec::with_capacity(sampled.len());
        for i in 0..dst.len() {
            let cnt = indptr[i + 1] - indptr[i];
            let w = if cnt > 0 { 1.0 / cnt as f32 } else { 0.0 };
            for e in indptr[i]..indptr[i + 1] {
                cols.push(index_of[sampled[e] as usize]);
                weights.push(w);
            }
        }
        let block = Block { dst: dst.clone(), src: src.clone(), indptr, cols, weights };
        debug_assert!(block.validate().is_ok());
        // Frontier after `hop + 1` hops of expansion from the batch — the
        // per-hop growth curve experiment E1 plots. Recorded once on the
        // *merged* frontier, so chunk-parallel sampling neither splits a
        // hop across slots nor multiplies its sample count.
        sgnn_obs::record_frontier(hop + 1, src.len());
        blocks_rev.push(block);
        dst = src; // next (deeper) layer must produce features for all srcs
    }
    blocks_rev.reverse();
    blocks_rev
}

/// Count of *unique* input nodes a block stack touches (its feature-fetch
/// cost — the quantity LABOR optimizes).
pub fn input_nodes(blocks: &[Block]) -> usize {
    blocks.first().map_or(0, |b| b.src.len())
}

#[cfg(test)]
mod tests {
    use super::*;
    use sgnn_graph::generate;
    use sgnn_linalg::DenseMatrix;

    #[test]
    fn block_stack_shapes_chain_correctly() {
        let g = generate::barabasi_albert(500, 4, 1);
        let targets: Vec<NodeId> = vec![3, 77, 120];
        let blocks = sample_blocks(&g, &targets, &[5, 5], 42);
        assert_eq!(blocks.len(), 2);
        // Outer (last) block's dst is the batch.
        assert_eq!(blocks[1].dst, targets);
        // Chaining: deeper block's dst == shallower block's src.
        assert_eq!(blocks[0].dst, blocks[1].src);
        for b in &blocks {
            b.validate().unwrap();
        }
    }

    #[test]
    fn fanout_bounds_sample_count() {
        let g = generate::barabasi_albert(300, 5, 2);
        let blocks = sample_blocks(&g, &[0, 1, 2, 3], &[3], 7);
        let b = &blocks[0];
        for i in 0..b.num_dst() {
            let cnt = b.indptr[i + 1] - b.indptr[i];
            assert!(cnt <= 3.min(g.degree(b.dst[i])));
            // Distinct columns.
            let mut cs: Vec<u32> = b.cols[b.indptr[i]..b.indptr[i + 1]].to_vec();
            cs.sort_unstable();
            cs.dedup();
            assert_eq!(cs.len(), cnt);
        }
    }

    #[test]
    fn weights_form_row_means() {
        let g = generate::erdos_renyi(100, 0.1, false, 3);
        let blocks = sample_blocks(&g, &[5, 9], &[4], 9);
        let b = &blocks[0];
        for i in 0..b.num_dst() {
            let s: f32 = b.weights[b.indptr[i]..b.indptr[i + 1]].iter().sum();
            let cnt = b.indptr[i + 1] - b.indptr[i];
            if cnt > 0 {
                assert!((s - 1.0).abs() < 1e-5);
            }
        }
    }

    #[test]
    fn sampled_mean_is_unbiased() {
        // Average the sampled aggregate over many seeds; it must approach
        // the exact neighborhood mean.
        let g = generate::barabasi_albert(200, 6, 4);
        let x = DenseMatrix::gaussian(200, 1, 1.0, 5);
        let target = 0u32;
        let exact: f32 = {
            let neigh = g.neighbors(target);
            neigh.iter().map(|&v| x.get(v as usize, 0)).sum::<f32>() / neigh.len() as f32
        };
        let mut acc = 0f64;
        let reps = 3000;
        for s in 0..reps {
            let blocks = sample_blocks(&g, &[target], &[3], s);
            let b = &blocks[0];
            let xs = x.gather_rows(&b.src.iter().map(|&v| v as usize).collect::<Vec<_>>());
            let y = b.aggregate(&xs);
            acc += y.get(0, 0) as f64;
        }
        let mean = acc / reps as f64;
        assert!((mean - exact as f64).abs() < 0.05, "mean {mean} vs exact {exact}");
    }

    #[test]
    fn isolated_target_gets_empty_row() {
        let g = CsrGraph::empty(5);
        let blocks = sample_blocks(&g, &[2], &[4], 1);
        let b = &blocks[0];
        assert_eq!(b.num_edges(), 0);
        assert_eq!(b.src, vec![2]);
        let y = b.aggregate(&DenseMatrix::zeros(1, 3));
        assert_eq!(y.shape(), (1, 3));
    }

    #[test]
    fn parallel_path_matches_sequential_bitwise() {
        // Force the chunked-parallel code path regardless of host size;
        // the result must be bitwise identical to the sequential
        // reference (multi-chunk: 1000 targets > CHUNK).
        let g = generate::barabasi_albert(4_000, 6, 3);
        let t: Vec<NodeId> = (0..1000).collect();
        let seq = sample_blocks_seq(&g, &t, &[7, 7], 99);
        let par = sample_blocks_impl(&g, &t, &[7, 7], 99, true);
        assert_eq!(seq.len(), par.len());
        for (a, b) in seq.iter().zip(&par) {
            assert_eq!(a.dst, b.dst);
            assert_eq!(a.src, b.src);
            assert_eq!(a.indptr, b.indptr);
            assert_eq!(a.cols, b.cols);
            let wa: Vec<u32> = a.weights.iter().map(|w| w.to_bits()).collect();
            let wb: Vec<u32> = b.weights.iter().map(|w| w.to_bits()).collect();
            assert_eq!(wa, wb);
        }
    }

    #[test]
    fn deeper_stacks_touch_more_inputs() {
        let g = generate::barabasi_albert(3_000, 5, 6);
        let t: Vec<NodeId> = (0..16).collect();
        let one = input_nodes(&sample_blocks(&g, &t, &[8], 11));
        let three = input_nodes(&sample_blocks(&g, &t, &[8, 8, 8], 11));
        assert!(three > 2 * one, "1-layer {one}, 3-layer {three}");
    }
}
