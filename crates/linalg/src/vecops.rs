//! Flat-slice vector primitives shared by every hot loop in the workspace.
//!
//! All functions are branch-light and allocation-free; the perf-book
//! guidance (reuse buffers, operate on contiguous slices) is enforced here
//! so higher layers inherit it for free.

/// Dot product of two equal-length `f32` slices.
#[inline]
pub fn dot(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    let mut acc = 0f32;
    for i in 0..a.len() {
        acc += a[i] * b[i];
    }
    acc
}

/// Dot product in `f64` (used by eigensolvers and PPR residual math).
#[inline]
pub fn dot64(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    let mut acc = 0f64;
    for i in 0..a.len() {
        acc += a[i] * b[i];
    }
    acc
}

/// `y += alpha * x`. SIMD-accelerated under the `simd` feature
/// (bitwise-identical; see [`crate::simd`]).
#[inline]
pub fn axpy(alpha: f32, x: &[f32], y: &mut [f32]) {
    debug_assert_eq!(x.len(), y.len());
    crate::simd::axpy_f32(alpha, x, y);
}

/// `y += alpha * x` in `f64`.
#[inline]
pub fn axpy64(alpha: f64, x: &[f64], y: &mut [f64]) {
    debug_assert_eq!(x.len(), y.len());
    crate::simd::axpy_f64(alpha, x, y);
}

/// Scales a slice in place.
#[inline]
pub fn scale(x: &mut [f32], alpha: f32) {
    crate::simd::scale_f32(x, alpha);
}

/// Scales an `f64` slice in place.
#[inline]
pub fn scale64(x: &mut [f64], alpha: f64) {
    for v in x.iter_mut() {
        *v *= alpha;
    }
}

/// Euclidean norm.
#[inline]
pub fn norm2(x: &[f32]) -> f32 {
    dot(x, x).sqrt()
}

/// Euclidean norm in `f64`.
#[inline]
pub fn norm2_64(x: &[f64]) -> f64 {
    dot64(x, x).sqrt()
}

/// L1 norm.
#[inline]
pub fn norm1(x: &[f32]) -> f32 {
    x.iter().map(|v| v.abs()).sum()
}

/// Maximum absolute entry (∞-norm).
#[inline]
pub fn norm_inf(x: &[f32]) -> f32 {
    x.iter().fold(0f32, |m, v| m.max(v.abs()))
}

/// Normalizes `x` to unit Euclidean length; returns the original norm.
///
/// Leaves an all-zero vector untouched and returns `0.0`.
pub fn normalize(x: &mut [f32]) -> f32 {
    let n = norm2(x);
    if n > 0.0 {
        scale(x, 1.0 / n);
    }
    n
}

/// `f64` variant of [`normalize`].
pub fn normalize64(x: &mut [f64]) -> f64 {
    let n = norm2_64(x);
    if n > 0.0 {
        scale64(x, 1.0 / n);
    }
    n
}

/// Cosine similarity between two vectors; `0.0` when either is all-zero.
pub fn cosine(a: &[f32], b: &[f32]) -> f32 {
    let na = norm2(a);
    let nb = norm2(b);
    if na == 0.0 || nb == 0.0 {
        return 0.0;
    }
    (dot(a, b) / (na * nb)).clamp(-1.0, 1.0)
}

/// In-place numerically-stable softmax over one row.
pub fn softmax_row(row: &mut [f32]) {
    let max = row.iter().fold(f32::NEG_INFINITY, |m, &v| m.max(v));
    let mut sum = 0f32;
    for v in row.iter_mut() {
        *v = (*v - max).exp();
        sum += *v;
    }
    if sum > 0.0 {
        let inv = 1.0 / sum;
        for v in row.iter_mut() {
            *v *= inv;
        }
    }
}

/// Index of the maximum entry; ties resolve to the first occurrence.
///
/// Returns `0` for an empty slice by convention (callers never pass empty
/// rows in practice; class counts are ≥ 1).
pub fn argmax(row: &[f32]) -> usize {
    let mut best = 0usize;
    let mut best_v = f32::NEG_INFINITY;
    for (i, &v) in row.iter().enumerate() {
        if v > best_v {
            best_v = v;
            best = i;
        }
    }
    best
}

/// Mean of a slice; `0.0` when empty.
pub fn mean(x: &[f32]) -> f32 {
    if x.is_empty() {
        0.0
    } else {
        x.iter().sum::<f32>() / x.len() as f32
    }
}

/// Population variance of a slice; `0.0` when empty.
pub fn variance(x: &[f32]) -> f32 {
    if x.is_empty() {
        return 0.0;
    }
    let m = mean(x);
    x.iter().map(|v| (v - m) * (v - m)).sum::<f32>() / x.len() as f32
}

/// Mean of an `f64` slice; `0.0` when empty.
pub fn mean64(x: &[f64]) -> f64 {
    if x.is_empty() {
        0.0
    } else {
        x.iter().sum::<f64>() / x.len() as f64
    }
}

/// Population variance of an `f64` slice; `0.0` when empty.
pub fn variance64(x: &[f64]) -> f64 {
    if x.is_empty() {
        return 0.0;
    }
    let m = mean64(x);
    x.iter().map(|v| (v - m) * (v - m)).sum::<f64>() / x.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_and_axpy_agree_with_manual() {
        let a = [1.0f32, 2.0, 3.0];
        let mut b = [4.0f32, 5.0, 6.0];
        assert_eq!(dot(&a, &b), 32.0);
        axpy(2.0, &a, &mut b);
        assert_eq!(b, [6.0, 9.0, 12.0]);
    }

    #[test]
    fn softmax_row_sums_to_one_and_is_stable() {
        let mut r = [1000.0f32, 1001.0, 999.0];
        softmax_row(&mut r);
        let s: f32 = r.iter().sum();
        assert!((s - 1.0).abs() < 1e-5);
        assert!(r[1] > r[0] && r[0] > r[2]);
    }

    #[test]
    fn argmax_breaks_ties_toward_first() {
        assert_eq!(argmax(&[1.0, 3.0, 3.0, 0.0]), 1);
        assert_eq!(argmax(&[]), 0);
    }

    #[test]
    fn normalize_zero_vector_is_noop() {
        let mut z = [0.0f32; 4];
        assert_eq!(normalize(&mut z), 0.0);
        assert_eq!(z, [0.0; 4]);
    }

    #[test]
    fn cosine_bounds() {
        let a = [1.0f32, 0.0];
        let b = [0.0f32, 2.0];
        assert_eq!(cosine(&a, &b), 0.0);
        assert!((cosine(&a, &a) - 1.0).abs() < 1e-6);
        let na = [-1.0f32, 0.0];
        assert!((cosine(&a, &na) + 1.0).abs() < 1e-6);
    }

    #[test]
    fn variance_of_constant_is_zero() {
        assert_eq!(variance(&[2.0; 8]), 0.0);
        assert!((variance(&[1.0, 3.0]) - 1.0).abs() < 1e-6);
    }
}
