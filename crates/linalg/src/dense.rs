//! Row-major dense `f32` matrices.
//!
//! [`DenseMatrix`] is the feature/activation container for the entire
//! workspace: node-feature matrices `X ∈ R^{n×d}`, weights `W ∈ R^{d×d'}`,
//! propagated embeddings, and logits all use it. The layout is a single flat
//! `Vec<f32>`, row-major, so row slices are contiguous — the access pattern
//! every graph kernel (SpMM, sampling gather) relies on.

use crate::par;
use crate::rng;
use crate::vecops;
use crate::{LinalgError, Result};
use rand::RngExt;

// Roofline attribution (DESIGN.md §9): each GEMM call site records its
// analytic flop count and compulsory traffic so `benchkernels` can report
// arithmetic intensity per kernel variant.
static MATMUL_FLOPS: sgnn_obs::Counter = sgnn_obs::Counter::new("linalg.matmul.flops");
static MATMUL_BYTES: sgnn_obs::Counter = sgnn_obs::Counter::new("linalg.matmul.bytes_moved");

/// A dense row-major `f32` matrix.
#[derive(Clone, PartialEq)]
pub struct DenseMatrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Default for DenseMatrix {
    /// An empty `0×0` matrix — the natural initial state for scratch
    /// buffers grown on first use via
    /// [`reshape_scratch`](DenseMatrix::reshape_scratch).
    fn default() -> Self {
        DenseMatrix::zeros(0, 0)
    }
}

impl std::fmt::Debug for DenseMatrix {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "DenseMatrix({}x{})", self.rows, self.cols)
    }
}

impl DenseMatrix {
    /// Creates an all-zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        DenseMatrix { rows, cols, data: vec![0.0; rows * cols] }
    }

    /// Creates a matrix from a flat row-major buffer.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(data.len(), rows * cols, "buffer length must equal rows*cols");
        DenseMatrix { rows, cols, data }
    }

    /// Creates a matrix from nested rows (test/ergonomic constructor).
    pub fn from_rows(rows: &[&[f32]]) -> Self {
        let r = rows.len();
        let c = rows.first().map_or(0, |r| r.len());
        let mut data = Vec::with_capacity(r * c);
        for row in rows {
            assert_eq!(row.len(), c, "ragged rows");
            data.extend_from_slice(row);
        }
        DenseMatrix { rows: r, cols: c, data }
    }

    /// Identity matrix of size `n`.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m.data[i * n + i] = 1.0;
        }
        m
    }

    /// Glorot/Xavier-uniform initialization, deterministic under `seed`.
    pub fn glorot(rows: usize, cols: usize, seed: u64) -> Self {
        let mut rng = rng::seeded(seed);
        let limit = (6.0 / (rows + cols) as f64).sqrt() as f32;
        let data = (0..rows * cols).map(|_| rng.random_range(-limit..=limit)).collect();
        DenseMatrix { rows, cols, data }
    }

    /// I.i.d. Gaussian entries `N(0, sigma^2)`, deterministic under `seed`.
    pub fn gaussian(rows: usize, cols: usize, sigma: f32, seed: u64) -> Self {
        let mut rng = rng::seeded(seed);
        let mut m = Self::zeros(rows, cols);
        rng::fill_gaussian(&mut rng, &mut m.data, 0.0, sigma);
        m
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)`.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Borrow of the flat row-major buffer.
    #[inline]
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable borrow of the flat row-major buffer.
    #[inline]
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the matrix, returning its buffer.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Entry accessor.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f32 {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c]
    }

    /// Entry mutator.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f32) {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c] = v;
    }

    /// Contiguous row slice.
    #[inline]
    pub fn row(&self, r: usize) -> &[f32] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Contiguous mutable row slice.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Estimated resident bytes of this matrix (used by the memory
    /// accounting in `sgnn-core`).
    pub fn nbytes(&self) -> usize {
        self.data.len() * std::mem::size_of::<f32>()
    }

    /// Matrix product `self · rhs`, parallelized over row chunks.
    ///
    /// Uses the cache-friendly i-k-j loop order on row-major buffers.
    pub fn matmul(&self, rhs: &DenseMatrix) -> Result<DenseMatrix> {
        if self.cols != rhs.rows {
            return Err(LinalgError::ShapeMismatch {
                context: format!("matmul {}x{} by {}x{}", self.rows, self.cols, rhs.rows, rhs.cols),
            });
        }
        let mut out = DenseMatrix::zeros(self.rows, rhs.cols);
        self.matmul_into(rhs, &mut out)?;
        Ok(out)
    }

    /// Matrix product written into a caller-owned `out`, overwriting it.
    ///
    /// The allocation-free form of [`matmul`](Self::matmul): `out` must be
    /// `(self.rows, rhs.cols)` and may hold arbitrary stale values.
    pub fn matmul_into(&self, rhs: &DenseMatrix, out: &mut DenseMatrix) -> Result<()> {
        if self.cols != rhs.rows || out.shape() != (self.rows, rhs.cols) {
            return Err(LinalgError::ShapeMismatch {
                context: format!(
                    "matmul_into {}x{} by {}x{} into {}x{}",
                    self.rows, self.cols, rhs.rows, rhs.cols, out.rows, out.cols
                ),
            });
        }
        let _sp = sgnn_obs::span!("linalg.matmul");
        MATMUL_FLOPS.add(2 * (self.rows * self.cols * rhs.cols) as u64);
        // Compulsory model: both operands read once, output zeroed and
        // accumulated (two sweeps).
        MATMUL_BYTES.add(
            4 * (self.rows * self.cols + rhs.rows * rhs.cols + 2 * self.rows * rhs.cols) as u64,
        );
        let (k, n) = (self.cols, rhs.cols);
        let lhs = &self.data;
        let rhsd = &rhs.data;
        par::par_rows_mut(&mut out.data, n.max(1), 16, |first_row, chunk| {
            if n == 0 {
                return;
            }
            for (local, out_row) in chunk.chunks_mut(n).enumerate() {
                let i = first_row + local;
                out_row.fill(0.0);
                let a_row = &lhs[i * k..(i + 1) * k];
                for (kk, &a) in a_row.iter().enumerate() {
                    if a == 0.0 {
                        continue;
                    }
                    let b_row = &rhsd[kk * n..(kk + 1) * n];
                    vecops::axpy(a, b_row, out_row);
                }
            }
        });
        Ok(())
    }

    /// Reshapes to `(rows, cols)` reusing the existing allocation when it
    /// is large enough. Entries are **unspecified** afterwards — this is
    /// the scratch-buffer primitive for `*_into` kernels, not a resize in
    /// the image-processing sense.
    pub fn reshape_scratch(&mut self, rows: usize, cols: usize) {
        self.data.resize(rows * cols, 0.0);
        self.rows = rows;
        self.cols = cols;
    }

    /// Transpose (allocates a new matrix).
    pub fn transpose(&self) -> DenseMatrix {
        let mut out = DenseMatrix::zeros(self.cols, self.rows);
        self.transpose_into(&mut out);
        out
    }

    /// Transpose into a caller-owned `(cols, rows)` matrix.
    ///
    /// Walks the matrix in square tiles so both the read and the write
    /// side stay within a cache-line-friendly footprint; the naive loop
    /// strides one side by `rows * 4` bytes per element, which thrashes
    /// once matrices exceed L2.
    pub fn transpose_into(&self, out: &mut DenseMatrix) {
        assert_eq!(out.shape(), (self.cols, self.rows), "transpose output must be (cols, rows)");
        // 32×32 f32 tile = 4 KiB: two tiles (read + write) sit comfortably
        // in L1 alongside the stack.
        const TILE: usize = 32;
        let (r, c) = (self.rows, self.cols);
        for rb in (0..r).step_by(TILE) {
            let rend = (rb + TILE).min(r);
            for cb in (0..c).step_by(TILE) {
                let cend = (cb + TILE).min(c);
                for i in rb..rend {
                    for j in cb..cend {
                        out.data[j * r + i] = self.data[i * c + j];
                    }
                }
            }
        }
    }

    /// Element-wise sum; errors on shape mismatch.
    pub fn add(&self, rhs: &DenseMatrix) -> Result<DenseMatrix> {
        self.check_same_shape(rhs, "add")?;
        let mut out = self.clone();
        vecops::axpy(1.0, &rhs.data, &mut out.data);
        Ok(out)
    }

    /// In-place `self += alpha * rhs`; errors on shape mismatch.
    pub fn add_scaled(&mut self, alpha: f32, rhs: &DenseMatrix) -> Result<()> {
        self.check_same_shape(rhs, "add_scaled")?;
        vecops::axpy(alpha, &rhs.data, &mut self.data);
        Ok(())
    }

    /// Element-wise difference.
    pub fn sub(&self, rhs: &DenseMatrix) -> Result<DenseMatrix> {
        self.check_same_shape(rhs, "sub")?;
        let mut out = self.clone();
        vecops::axpy(-1.0, &rhs.data, &mut out.data);
        Ok(out)
    }

    /// Element-wise (Hadamard) product.
    pub fn hadamard(&self, rhs: &DenseMatrix) -> Result<DenseMatrix> {
        self.check_same_shape(rhs, "hadamard")?;
        let mut out = self.clone();
        for (o, &r) in out.data.iter_mut().zip(rhs.data.iter()) {
            *o *= r;
        }
        Ok(out)
    }

    /// Scales every entry in place.
    pub fn scale(&mut self, alpha: f32) {
        vecops::scale(&mut self.data, alpha);
    }

    /// Applies `f` to every entry in place.
    pub fn map_inplace<F: Fn(f32) -> f32>(&mut self, f: F) {
        for v in self.data.iter_mut() {
            *v = f(*v);
        }
    }

    /// Returns a new matrix with `f` applied to every entry.
    pub fn map<F: Fn(f32) -> f32>(&self, f: F) -> DenseMatrix {
        let mut out = self.clone();
        out.map_inplace(f);
        out
    }

    /// Frobenius norm.
    pub fn frobenius(&self) -> f32 {
        vecops::norm2(&self.data)
    }

    /// Horizontal concatenation `[self | rhs]`.
    pub fn concat_cols(&self, rhs: &DenseMatrix) -> Result<DenseMatrix> {
        if self.rows != rhs.rows {
            return Err(LinalgError::ShapeMismatch {
                context: format!("concat_cols rows {} vs {}", self.rows, rhs.rows),
            });
        }
        let cols = self.cols + rhs.cols;
        let mut out = DenseMatrix::zeros(self.rows, cols);
        for r in 0..self.rows {
            out.data[r * cols..r * cols + self.cols].copy_from_slice(self.row(r));
            out.data[r * cols + self.cols..(r + 1) * cols].copy_from_slice(rhs.row(r));
        }
        Ok(out)
    }

    /// Vertical concatenation `[self ; rhs]`.
    pub fn concat_rows(&self, rhs: &DenseMatrix) -> Result<DenseMatrix> {
        if self.cols != rhs.cols {
            return Err(LinalgError::ShapeMismatch {
                context: format!("concat_rows cols {} vs {}", self.cols, rhs.cols),
            });
        }
        let mut data = Vec::with_capacity((self.rows + rhs.rows) * self.cols);
        data.extend_from_slice(&self.data);
        data.extend_from_slice(&rhs.data);
        Ok(DenseMatrix::from_vec(self.rows + rhs.rows, self.cols, data))
    }

    /// Gathers the given rows into a new (len × cols) matrix.
    ///
    /// This is the mini-batch extraction primitive: sampled node batches are
    /// materialized by gathering their feature rows.
    pub fn gather_rows(&self, indices: &[usize]) -> DenseMatrix {
        let mut out = DenseMatrix::zeros(indices.len(), self.cols);
        for (i, &src) in indices.iter().enumerate() {
            debug_assert!(src < self.rows);
            out.row_mut(i).copy_from_slice(self.row(src));
        }
        out
    }

    /// Gathers the given rows into `out` (shape `len × cols`), reusing
    /// the caller's scratch — the allocation-free variant of
    /// [`gather_rows`](Self::gather_rows) for serving hot paths that
    /// assemble a coalesced batch per request window.
    pub fn gather_rows_into(&self, indices: &[usize], out: &mut DenseMatrix) {
        assert_eq!(out.rows(), indices.len(), "gather_rows_into row mismatch");
        assert_eq!(out.cols(), self.cols, "gather_rows_into col mismatch");
        for (i, &src) in indices.iter().enumerate() {
            debug_assert!(src < self.rows);
            out.row_mut(i).copy_from_slice(self.row(src));
        }
    }

    /// Scatters rows of `src` back into `self` at the given indices
    /// (inverse of [`gather_rows`](Self::gather_rows)).
    pub fn scatter_rows(&mut self, indices: &[usize], src: &DenseMatrix) {
        assert_eq!(indices.len(), src.rows());
        assert_eq!(self.cols, src.cols());
        for (i, &dst) in indices.iter().enumerate() {
            self.row_mut(dst).copy_from_slice(src.row(i));
        }
    }

    /// Per-row argmax (predicted class per node).
    pub fn argmax_rows(&self) -> Vec<usize> {
        (0..self.rows).map(|r| vecops::argmax(self.row(r))).collect()
    }

    /// In-place row-wise softmax.
    pub fn softmax_rows(&mut self) {
        let cols = self.cols;
        par::par_rows_mut(&mut self.data, cols, 64, |_, chunk| {
            for row in chunk.chunks_mut(cols) {
                vecops::softmax_row(row);
            }
        });
    }

    /// Column means as a length-`cols` vector.
    pub fn col_means(&self) -> Vec<f32> {
        let mut out = vec![0f32; self.cols];
        for r in 0..self.rows {
            vecops::axpy(1.0, self.row(r), &mut out);
        }
        if self.rows > 0 {
            vecops::scale(&mut out, 1.0 / self.rows as f32);
        }
        out
    }

    /// Normalizes every row to unit L2 norm (zero rows untouched).
    pub fn normalize_rows(&mut self) {
        let cols = self.cols;
        par::par_rows_mut(&mut self.data, cols, 64, |_, chunk| {
            for row in chunk.chunks_mut(cols) {
                vecops::normalize(row);
            }
        });
    }

    fn check_same_shape(&self, rhs: &DenseMatrix, op: &str) -> Result<()> {
        if self.shape() != rhs.shape() {
            return Err(LinalgError::ShapeMismatch {
                context: format!("{op} {}x{} vs {}x{}", self.rows, self.cols, rhs.rows, rhs.cols),
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gather_rows_into_matches_gather_rows() {
        let a = DenseMatrix::gaussian(9, 4, 1.0, 11);
        let idx = [7usize, 0, 7, 3];
        let want = a.gather_rows(&idx);
        let mut got = DenseMatrix::zeros(idx.len(), 4);
        a.gather_rows_into(&idx, &mut got);
        assert_eq!(got.data(), want.data());
    }

    #[test]
    fn matmul_matches_hand_computation() {
        let a = DenseMatrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = DenseMatrix::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]);
        let c = a.matmul(&b).unwrap();
        assert_eq!(c.data(), &[19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn matmul_identity_is_noop() {
        let a = DenseMatrix::glorot(17, 9, 3);
        let i = DenseMatrix::identity(9);
        let c = a.matmul(&i).unwrap();
        assert_eq!(c.data(), a.data());
    }

    #[test]
    fn matmul_shape_mismatch_errors() {
        let a = DenseMatrix::zeros(2, 3);
        let b = DenseMatrix::zeros(2, 3);
        assert!(matches!(a.matmul(&b), Err(LinalgError::ShapeMismatch { .. })));
    }

    #[test]
    fn transpose_involution() {
        let a = DenseMatrix::glorot(5, 7, 11);
        let t = a.transpose().transpose();
        assert_eq!(t.data(), a.data());
    }

    #[test]
    fn transpose_crosses_tile_boundaries() {
        // 70×45 spans partial tiles on both axes; verify entry-by-entry.
        let a = DenseMatrix::glorot(70, 45, 23);
        let t = a.transpose();
        assert_eq!(t.shape(), (45, 70));
        for i in 0..70 {
            for j in 0..45 {
                assert_eq!(t.get(j, i), a.get(i, j));
            }
        }
    }

    #[test]
    fn matmul_into_overwrites_stale_scratch() {
        let a = DenseMatrix::glorot(9, 6, 1);
        let b = DenseMatrix::glorot(6, 11, 2);
        let fresh = a.matmul(&b).unwrap();
        let mut scratch = DenseMatrix::from_vec(9, 11, vec![f32::NAN; 9 * 11]);
        a.matmul_into(&b, &mut scratch).unwrap();
        assert_eq!(scratch.data(), fresh.data());
    }

    #[test]
    fn reshape_scratch_keeps_allocation() {
        let mut m = DenseMatrix::zeros(100, 8);
        let cap = m.data.capacity();
        let ptr = m.data.as_ptr();
        m.reshape_scratch(50, 8);
        assert_eq!(m.shape(), (50, 8));
        // Shrinking must not reallocate.
        assert_eq!(m.data.capacity(), cap);
        assert_eq!(m.data.as_ptr(), ptr);
        m.reshape_scratch(100, 8);
        assert_eq!(m.data.as_ptr(), ptr);
    }

    #[test]
    fn gather_then_scatter_round_trips() {
        let a = DenseMatrix::glorot(10, 4, 1);
        let idx = [7usize, 2, 9];
        let g = a.gather_rows(&idx);
        assert_eq!(g.shape(), (3, 4));
        let mut b = DenseMatrix::zeros(10, 4);
        b.scatter_rows(&idx, &g);
        for &i in &idx {
            assert_eq!(b.row(i), a.row(i));
        }
    }

    #[test]
    fn concat_cols_layout() {
        let a = DenseMatrix::from_rows(&[&[1.0], &[2.0]]);
        let b = DenseMatrix::from_rows(&[&[3.0, 4.0], &[5.0, 6.0]]);
        let c = a.concat_cols(&b).unwrap();
        assert_eq!(c.shape(), (2, 3));
        assert_eq!(c.row(0), &[1.0, 3.0, 4.0]);
        assert_eq!(c.row(1), &[2.0, 5.0, 6.0]);
    }

    #[test]
    fn softmax_rows_partition_of_unity() {
        let mut m = DenseMatrix::glorot(20, 5, 99);
        m.softmax_rows();
        for r in 0..20 {
            let s: f32 = m.row(r).iter().sum();
            assert!((s - 1.0).abs() < 1e-5);
        }
    }

    #[test]
    fn glorot_entries_within_limit() {
        let m = DenseMatrix::glorot(30, 30, 5);
        let limit = (6.0f32 / 60.0).sqrt() + 1e-6;
        assert!(m.data().iter().all(|v| v.abs() <= limit));
    }

    #[test]
    fn add_sub_hadamard() {
        let a = DenseMatrix::from_rows(&[&[1.0, 2.0]]);
        let b = DenseMatrix::from_rows(&[&[3.0, 5.0]]);
        assert_eq!(a.add(&b).unwrap().data(), &[4.0, 7.0]);
        assert_eq!(b.sub(&a).unwrap().data(), &[2.0, 3.0]);
        assert_eq!(a.hadamard(&b).unwrap().data(), &[3.0, 10.0]);
    }

    #[test]
    fn col_means_and_row_normalize() {
        let mut m = DenseMatrix::from_rows(&[&[3.0, 0.0], &[0.0, 4.0]]);
        let means = m.col_means();
        assert_eq!(means, vec![1.5, 2.0]);
        m.normalize_rows();
        assert!((m.get(0, 0) - 1.0).abs() < 1e-6);
        assert!((m.get(1, 1) - 1.0).abs() < 1e-6);
    }
}
