//! Inference-only quantized matrices (int8 / f16) with f32 accumulation.
//!
//! Training is untouched — every gradient path in the workspace stays
//! f32-bitwise per DESIGN.md §4–§8. Quantization is an *inference-serving*
//! trade: a [`QuantMatrix`] stores each row as int8 (per-row scale =
//! `max|row|/127`) or IEEE binary16 payloads, shrinking the bytes a kernel
//! must gather by 4× / 2×, and every kernel accumulates in f32 so the
//! error stays a per-element rounding term rather than compounding.
//! The resulting error bound is documented in DESIGN.md §9 and pinned by
//! tests: int8 dequantization error is at most `max|row|/254` per element,
//! f16 error at most `2^-11 · |v|` (one half-precision ulp).
//!
//! The default everywhere is [`QuantMode::F32`] — quantization never turns
//! itself on; callers opt in per inference call.

use crate::dense::DenseMatrix;
use crate::{par, simd, LinalgError, Result};

static QMATMUL_FLOPS: sgnn_obs::Counter = sgnn_obs::Counter::new("linalg.qmatmul.flops");
static QMATMUL_BYTES: sgnn_obs::Counter = sgnn_obs::Counter::new("linalg.qmatmul.bytes_moved");
static QUANTIZE_CALLS: sgnn_obs::Counter = sgnn_obs::Counter::new("linalg.quantize.calls");

/// Numeric mode for inference kernels. `F32` (the default) is the exact
/// production path; the other two are opt-in quantized approximations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum QuantMode {
    /// Full precision — bitwise-identical to training-time forward math.
    #[default]
    F32,
    /// IEEE binary16 payloads, f32 accumulate (≤ 1 half ulp per element).
    F16,
    /// Per-row-scaled int8 payloads, f32 accumulate.
    Int8,
}

impl QuantMode {
    /// Parses a CLI spelling (`f32` / `f16` / `int8` | `i8`).
    pub fn parse(s: &str) -> Option<QuantMode> {
        match s.to_ascii_lowercase().as_str() {
            "f32" => Some(QuantMode::F32),
            "f16" => Some(QuantMode::F16),
            "int8" | "i8" => Some(QuantMode::Int8),
            _ => None,
        }
    }

    /// Stable label (used in bench output and reports).
    pub fn label(self) -> &'static str {
        match self {
            QuantMode::F32 => "f32",
            QuantMode::F16 => "f16",
            QuantMode::Int8 => "int8",
        }
    }

    /// True for the lossy modes.
    pub fn is_quantized(self) -> bool {
        self != QuantMode::F32
    }

    /// Payload bytes per element (4 for f32).
    pub fn elem_bytes(self) -> usize {
        match self {
            QuantMode::F32 => 4,
            QuantMode::F16 => 2,
            QuantMode::Int8 => 1,
        }
    }
}

/// Quantized payload storage.
#[derive(Debug, Clone)]
pub enum QuantPayload {
    /// Signed 8-bit values; element `= q · row_scale`.
    I8(Vec<i8>),
    /// IEEE binary16 bit patterns; element `= f16_to_f32(h)` (scales are 1).
    F16(Vec<u16>),
}

/// A row-major quantized matrix with one scale per row.
///
/// int8 rows store `q = round(v / s)` with `s = max|row| / 127` (an
/// all-zero row gets `s = 0`); f16 rows store round-to-nearest-even
/// binary16 bits with a unit scale, kept so both payloads share one
/// kernel shape.
#[derive(Debug, Clone)]
pub struct QuantMatrix {
    rows: usize,
    cols: usize,
    scales: Vec<f32>,
    payload: QuantPayload,
}

impl QuantMatrix {
    /// Quantizes `m` under `mode`; `None` for [`QuantMode::F32`] (callers
    /// keep the dense matrix and the exact kernels).
    pub fn quantize(m: &DenseMatrix, mode: QuantMode) -> Option<QuantMatrix> {
        match mode {
            QuantMode::F32 => None,
            QuantMode::Int8 => Some(Self::quantize_i8(m)),
            QuantMode::F16 => Some(Self::quantize_f16(m)),
        }
    }

    /// Per-row-scaled int8 quantization.
    pub fn quantize_i8(m: &DenseMatrix) -> QuantMatrix {
        QUANTIZE_CALLS.incr();
        let (rows, cols) = m.shape();
        let mut scales = vec![0f32; rows];
        let mut q = vec![0i8; rows * cols];
        for r in 0..rows {
            let row = m.row(r);
            let max_abs = row.iter().fold(0f32, |acc, v| acc.max(v.abs()));
            if max_abs == 0.0 {
                continue;
            }
            let s = max_abs / 127.0;
            scales[r] = s;
            let inv = 1.0 / s;
            for (qv, &v) in q[r * cols..(r + 1) * cols].iter_mut().zip(row) {
                *qv = (v * inv).round().clamp(-127.0, 127.0) as i8;
            }
        }
        QuantMatrix { rows, cols, scales, payload: QuantPayload::I8(q) }
    }

    /// Binary16 quantization (unit scales).
    pub fn quantize_f16(m: &DenseMatrix) -> QuantMatrix {
        QUANTIZE_CALLS.incr();
        let (rows, cols) = m.shape();
        let h: Vec<u16> = m.data().iter().map(|&v| f32_to_f16(v)).collect();
        QuantMatrix { rows, cols, scales: vec![1.0; rows], payload: QuantPayload::F16(h) }
    }

    /// Row count.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Column count.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)`.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// The mode this matrix was quantized under.
    pub fn mode(&self) -> QuantMode {
        match self.payload {
            QuantPayload::I8(_) => QuantMode::Int8,
            QuantPayload::F16(_) => QuantMode::F16,
        }
    }

    /// Per-row scales (unit for f16).
    pub fn scales(&self) -> &[f32] {
        &self.scales
    }

    /// Payload view.
    pub fn payload(&self) -> &QuantPayload {
        &self.payload
    }

    /// Resident payload + scale bytes.
    pub fn nbytes(&self) -> usize {
        let payload = self.rows * self.cols * self.mode().elem_bytes();
        payload + self.scales.len() * 4
    }

    /// Dequantized element.
    pub fn get(&self, r: usize, c: usize) -> f32 {
        let i = r * self.cols + c;
        match &self.payload {
            QuantPayload::I8(q) => self.scales[r] * q[i] as f32,
            QuantPayload::F16(h) => f16_to_f32(h[i]),
        }
    }

    /// Full dequantization (tests, error measurement).
    pub fn dequantize(&self) -> DenseMatrix {
        let mut out = DenseMatrix::zeros(self.rows, self.cols);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.set(r, c, self.get(r, c));
            }
        }
        out
    }
}

/// `out = x · w` with quantized operands and f32 accumulation.
///
/// Mirrors the dense `matmul_into` i-k-j loop: for each output row the
/// inner op is an axpy over `w`'s row `k` with `alpha = x[i][k]·s_w[k]`,
/// so per-row weight scales fold into the scalar for free and the payload
/// stream stays contiguous (and 2–4× smaller than f32). Both operands
/// must share a payload width.
pub fn qmatmul_into(x: &QuantMatrix, w: &QuantMatrix, out: &mut DenseMatrix) -> Result<()> {
    let (m, k) = x.shape();
    let (wk, n) = w.shape();
    if k != wk || out.shape() != (m, n) {
        return Err(LinalgError::ShapeMismatch {
            context: format!("qmatmul {m}x{k} · {wk}x{n} -> {:?}", out.shape()),
        });
    }
    let _span = sgnn_obs::span!("linalg.qmatmul");
    QMATMUL_FLOPS.add(2 * (m * k * n) as u64 + (m * k) as u64);
    QMATMUL_BYTES.add(qmatmul_bytes(x, w) as u64);
    let out_data = out.data_mut();
    par::par_rows_mut(out_data, n.max(1), 16, |first_row, chunk| {
        for (local, out_row) in chunk.chunks_mut(n.max(1)).enumerate() {
            let i = first_row + local;
            out_row.fill(0.0);
            for kk in 0..k {
                let a = x.get(i, kk) * w.scales[kk];
                if a == 0.0 {
                    continue;
                }
                match &w.payload {
                    QuantPayload::I8(q) => {
                        simd::axpy_i8(a, &q[kk * n..(kk + 1) * n], out_row);
                    }
                    QuantPayload::F16(h) => {
                        simd::axpy_f16(a, &h[kk * n..(kk + 1) * n], out_row);
                    }
                }
            }
        }
    });
    Ok(())
}

/// Analytic compulsory traffic for [`qmatmul_into`]: each payload read
/// once, output written once (the roofline denominator).
pub fn qmatmul_bytes(x: &QuantMatrix, w: &QuantMatrix) -> usize {
    x.nbytes() + w.nbytes() + x.rows() * w.cols() * 4
}

// ---------------------------------------------------------------------------
// Error-feedback row compression (communication path)
// ---------------------------------------------------------------------------

/// Wire bytes of one compressed `d`-vector: f32 sends the raw row, f16
/// halves it (unit scale, nothing else to send), int8 quarters the
/// payload plus one f32 per-row scale.
pub fn wire_bytes_per_vector(mode: QuantMode, d: usize) -> u64 {
    match mode {
        QuantMode::F32 => 4 * d as u64,
        QuantMode::F16 => 2 * d as u64,
        QuantMode::Int8 => d as u64 + 4,
    }
}

/// One **error-feedback** compression step over a block of row vectors
/// (the sender side of a compressed halo exchange).
///
/// Compresses `vals + residual` under `mode`, returns the dequantized
/// rows the receivers will see, and leaves the fresh compression error
/// `(vals + residual) − dequantized` in `residual` — so the error a row
/// accumulates is *re-injected* into the next transmission instead of
/// compounding across supersteps (EF-SGD / 1-bit-Adam lineage; Vatter
/// et al. §5.2). The residual is a fixed point of
/// `|r| ≤ q(max|v| + |r|)` with per-element quantization error factor
/// `q` (`1/254` for int8, `2⁻¹¹` for f16), so it stays bounded by
/// `q/(1−q) · max|v|` for any superstep count — pinned by proptest in
/// `tests/comm_regime.rs`.
///
/// [`QuantMode::F32`] is the identity: `vals` is returned bit-for-bit
/// and `residual` is untouched (stays zero) — the degenerate case that
/// makes the compressed trainer path reproduce the exact path bitwise.
pub fn ef_compress_rows(
    vals: &DenseMatrix,
    residual: &mut DenseMatrix,
    mode: QuantMode,
) -> DenseMatrix {
    assert_eq!(vals.shape(), residual.shape(), "residual tracks the transmitted block");
    if mode == QuantMode::F32 {
        return vals.clone();
    }
    let mut carry = vals.clone();
    for (c, &r) in carry.data_mut().iter_mut().zip(residual.data()) {
        *c += r;
    }
    let q = QuantMatrix::quantize(&carry, mode).expect("lossy mode");
    let sent = q.dequantize();
    for ((r, &c), &s) in residual.data_mut().iter_mut().zip(carry.data()).zip(sent.data()) {
        *r = c - s;
    }
    sent
}

// ---------------------------------------------------------------------------
// Exact scalar f16 <-> f32 conversion
// ---------------------------------------------------------------------------

/// IEEE binary16 bits → f32, exact (every f16 value is representable).
/// Matches the F16C `vcvtph2ps` result bit-for-bit, including the
/// quiet-bit behavior on NaNs.
pub fn f16_to_f32(h: u16) -> f32 {
    let sign = ((h & 0x8000) as u32) << 16;
    let exp = ((h >> 10) & 0x1f) as u32;
    let man = (h & 0x3ff) as u32;
    let bits = match (exp, man) {
        (0, 0) => sign,
        (0, m) => {
            // Subnormal: renormalize. MSB of m lands at f32 bit 23.
            let shift = m.leading_zeros() - 8;
            let mant = (m << shift) & 0x007f_ffff;
            sign | ((126 - shift) << 23) | mant
        }
        (0x1f, 0) => sign | 0x7f80_0000,
        (0x1f, m) => sign | 0x7fc0_0000 | (m << 13), // NaN: payload kept, quieted
        (e, m) => sign | ((e + 112) << 23) | (m << 13),
    };
    f32::from_bits(bits)
}

/// f32 → IEEE binary16 bits, round-to-nearest-even (the hardware
/// `vcvtps2ph` rounding); overflow saturates to ±Inf, NaN stays NaN.
pub fn f32_to_f16(x: f32) -> u16 {
    let b = x.to_bits();
    let sign = ((b >> 16) & 0x8000) as u16;
    let exp8 = (b >> 23) & 0xff;
    let man = b & 0x007f_ffff;
    if exp8 == 0xff {
        return if man == 0 { sign | 0x7c00 } else { sign | 0x7e00 | ((man >> 13) as u16 & 0x1ff) };
    }
    let exp = exp8 as i32 - 127 + 15;
    if exp >= 0x1f {
        return sign | 0x7c00;
    }
    let (mant, shift) = if exp <= 0 {
        if exp < -10 {
            return sign; // underflows past the smallest subnormal
        }
        (man | 0x0080_0000, (14 - exp) as u32)
    } else {
        (man, 13)
    };
    let shifted = mant >> shift;
    let rem = mant & ((1u32 << shift) - 1);
    let half = 1u32 << (shift - 1);
    let rounded =
        if rem > half || (rem == half && shifted & 1 == 1) { shifted + 1 } else { shifted };
    let base = if exp <= 0 { 0u32 } else { (exp as u32) << 10 };
    // A mantissa carry from rounding flows into the exponent field, which
    // is exactly the IEEE behavior (can reach the Inf encoding).
    sign | (base + rounded) as u16
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn f16_roundtrip_is_identity_on_all_finite_bit_patterns() {
        // f16 -> f32 is exact, so converting back must reproduce the bits.
        for h in 0..=u16::MAX {
            let exp = (h >> 10) & 0x1f;
            let man = h & 0x3ff;
            if exp == 0x1f && man != 0 {
                continue; // NaNs don't round-trip payloads canonically
            }
            let f = f16_to_f32(h);
            assert_eq!(f32_to_f16(f), h, "h={h:#06x} f={f}");
        }
    }

    #[test]
    fn f16_conversion_hits_known_values() {
        assert_eq!(f16_to_f32(0x3c00), 1.0);
        assert_eq!(f16_to_f32(0xc000), -2.0);
        assert_eq!(f16_to_f32(0x7bff), 65504.0); // largest finite f16
        assert_eq!(f16_to_f32(0x0001), 5.960_464_5e-8); // smallest subnormal
        assert_eq!(f16_to_f32(0x7c00), f32::INFINITY);
        assert!(f16_to_f32(0x7e00).is_nan());
        assert_eq!(f32_to_f16(1.0), 0x3c00);
        assert_eq!(f32_to_f16(65504.0), 0x7bff);
        assert_eq!(f32_to_f16(100_000.0), 0x7c00); // saturates
        assert_eq!(f32_to_f16(-0.0), 0x8000);
        // Ties round to even: 1.0009765625 is exactly between 0x3c00/0x3c01.
        assert_eq!(f32_to_f16(1.000_488_3), 0x3c00);
    }

    #[test]
    fn i8_error_stays_under_half_scale() {
        let m = DenseMatrix::gaussian(17, 33, 1.3, 42);
        let q = QuantMatrix::quantize_i8(&m);
        for r in 0..m.rows() {
            let bound = q.scales()[r] * 0.5 + 1e-7;
            for c in 0..m.cols() {
                let err = (q.get(r, c) - m.get(r, c)).abs();
                assert!(err <= bound, "({r},{c}): err {err} > {bound}");
            }
        }
    }

    #[test]
    fn i8_zero_row_quantizes_cleanly() {
        let mut m = DenseMatrix::zeros(2, 4);
        m.set(1, 2, 3.0);
        let q = QuantMatrix::quantize_i8(&m);
        assert_eq!(q.scales()[0], 0.0);
        assert_eq!(q.get(0, 1), 0.0);
        assert_eq!(q.get(1, 2), 3.0); // row max quantizes exactly
    }

    #[test]
    fn f16_error_is_one_ulp() {
        let m = DenseMatrix::gaussian(9, 21, 1.0, 7);
        let q = QuantMatrix::quantize_f16(&m);
        for r in 0..m.rows() {
            for c in 0..m.cols() {
                let v = m.get(r, c);
                let err = (q.get(r, c) - v).abs();
                assert!(err <= v.abs() * 4.9e-4, "({r},{c}): err {err} vs {v}");
            }
        }
    }

    #[test]
    fn qmatmul_tracks_dense_matmul() {
        let x = DenseMatrix::gaussian(12, 24, 1.0, 1);
        let w = DenseMatrix::gaussian(24, 8, 0.5, 2);
        let exact = x.matmul(&w).unwrap();
        for mode in [QuantMode::Int8, QuantMode::F16] {
            let xq = QuantMatrix::quantize(&x, mode).unwrap();
            let wq = QuantMatrix::quantize(&w, mode).unwrap();
            let mut out = DenseMatrix::zeros(12, 8);
            qmatmul_into(&xq, &wq, &mut out).unwrap();
            let mut max_err = 0f32;
            for (a, b) in out.data().iter().zip(exact.data()) {
                max_err = max_err.max((a - b).abs());
            }
            // k=24 accumulated element errors; generous analytic headroom.
            let tol = if mode == QuantMode::Int8 { 0.15 } else { 0.02 };
            assert!(max_err < tol, "{}: max_err {max_err}", mode.label());
            assert!(max_err > 0.0, "quantization should not be exact here");
        }
    }

    #[test]
    fn qmatmul_rejects_shape_mismatch() {
        let x = QuantMatrix::quantize_i8(&DenseMatrix::zeros(3, 4));
        let w = QuantMatrix::quantize_i8(&DenseMatrix::zeros(5, 2));
        let mut out = DenseMatrix::zeros(3, 2);
        assert!(qmatmul_into(&x, &w, &mut out).is_err());
    }

    #[test]
    fn ef_f32_is_the_bitwise_identity() {
        let m = DenseMatrix::gaussian(6, 9, 1.0, 5);
        let mut resid = DenseMatrix::zeros(6, 9);
        let sent = ef_compress_rows(&m, &mut resid, QuantMode::F32);
        assert!(sent.data().iter().map(|v| v.to_bits()).eq(m.data().iter().map(|v| v.to_bits())));
        assert!(resid.data().iter().all(|&r| r == 0.0));
    }

    #[test]
    fn ef_residual_carries_the_compression_error() {
        let m = DenseMatrix::gaussian(4, 16, 1.0, 11);
        let mut resid = DenseMatrix::zeros(4, 16);
        let sent = ef_compress_rows(&m, &mut resid, QuantMode::Int8);
        // First step: residual is exactly vals − sent.
        for ((&v, &s), &r) in m.data().iter().zip(sent.data()).zip(resid.data()) {
            assert_eq!(r, v - s);
        }
        // Second step re-injects it: sent₂ tracks vals + r, not vals.
        let sent2 = ef_compress_rows(&m, &mut resid, QuantMode::Int8);
        let mut reinjected = false;
        // Cumulative transmitted value over 2 steps ≈ 2·vals within one
        // quantization step (the EF telescoping property).
        for (i, (&v, (&s1, &s2))) in
            m.data().iter().zip(sent.data().iter().zip(sent2.data())).enumerate()
        {
            let row = i / 16;
            let bound = m.row(row).iter().fold(0f32, |a, x| a.max(x.abs())) / 127.0 + 1e-6;
            assert!(
                ((s1 + s2) - 2.0 * v).abs() <= bound + resid.data()[i].abs() + 1e-6,
                "telescoping violated at {i}"
            );
            reinjected |= s1.to_bits() != s2.to_bits();
        }
        assert!(reinjected, "feedback should perturb the second transmission");
    }

    #[test]
    fn ef_residual_stays_bounded_over_many_supersteps() {
        // 80 supersteps of fresh gaussian values: |r|∞ must stay under the
        // fixed-point bound q/(1−q)·max|v| with q = 1/254 (int8), and the
        // analogous one-ulp bound for f16.
        for (mode, q) in [(QuantMode::Int8, 1.0 / 254.0), (QuantMode::F16, 4.9e-4)] {
            let mut resid = DenseMatrix::zeros(5, 24);
            let mut max_abs = 0f32;
            for step in 0..80 {
                let vals = DenseMatrix::gaussian(5, 24, 1.5, 1000 + step);
                max_abs = max_abs.max(vals.data().iter().fold(0f32, |a, v| a.max(v.abs())));
                ef_compress_rows(&vals, &mut resid, mode);
                let bound = q / (1.0 - q) * max_abs + 1e-6;
                let worst = resid.data().iter().fold(0f32, |a, r| a.max(r.abs()));
                assert!(worst <= bound, "{}: step {step}: |r|∞ {worst} > {bound}", mode.label());
            }
        }
    }

    #[test]
    fn wire_bytes_model() {
        assert_eq!(wire_bytes_per_vector(QuantMode::F32, 32), 128);
        assert_eq!(wire_bytes_per_vector(QuantMode::F16, 32), 64);
        assert_eq!(wire_bytes_per_vector(QuantMode::Int8, 32), 36);
    }

    #[test]
    fn mode_parsing_and_sizes() {
        assert_eq!(QuantMode::parse("Int8"), Some(QuantMode::Int8));
        assert_eq!(QuantMode::parse("f16"), Some(QuantMode::F16));
        assert_eq!(QuantMode::parse("f32"), Some(QuantMode::F32));
        assert_eq!(QuantMode::parse("bf16"), None);
        assert_eq!(QuantMode::default(), QuantMode::F32);
        assert!(!QuantMode::F32.is_quantized());
        let m = DenseMatrix::gaussian(10, 10, 1.0, 3);
        let q8 = QuantMatrix::quantize_i8(&m);
        let q16 = QuantMatrix::quantize_f16(&m);
        assert_eq!(q8.nbytes(), 100 + 40);
        assert_eq!(q16.nbytes(), 200 + 40);
        assert!(QuantMatrix::quantize(&m, QuantMode::F32).is_none());
    }
}
