//! Deterministic random-number helpers.
//!
//! The allowed `rand` build ships no normal distribution (that lives in the
//! separate `rand_distr` crate), so Gaussian sampling is implemented here via
//! the Box–Muller transform. Every randomized component in the workspace
//! takes a `u64` seed and builds a [`StdRng`], keeping the entire experiment
//! suite reproducible.

use rand::rngs::StdRng;
use rand::{Rng, RngExt, SeedableRng};

/// Creates a seeded [`StdRng`].
pub fn seeded(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// Draws one standard-normal sample via the Box–Muller transform.
pub fn gaussian<R: Rng + RngExt + ?Sized>(rng: &mut R) -> f64 {
    // u1 in (0, 1] so ln is finite.
    let u1: f64 = 1.0 - rng.random::<f64>();
    let u2: f64 = rng.random::<f64>();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// Fills a slice with `N(mu, sigma^2)` samples.
pub fn fill_gaussian<R: Rng + RngExt + ?Sized>(rng: &mut R, out: &mut [f32], mu: f32, sigma: f32) {
    for v in out.iter_mut() {
        *v = mu + sigma * gaussian(rng) as f32;
    }
}

/// Samples an index from an (unnormalized, non-negative) weight slice.
///
/// Returns `None` when all weights are zero or the slice is empty.
pub fn sample_weighted<R: Rng + RngExt + ?Sized>(rng: &mut R, weights: &[f64]) -> Option<usize> {
    let total: f64 = weights.iter().sum();
    if total <= 0.0 || weights.is_empty() {
        return None;
    }
    let mut t = rng.random::<f64>() * total;
    for (i, &w) in weights.iter().enumerate() {
        t -= w;
        if t <= 0.0 {
            return Some(i);
        }
    }
    Some(weights.len() - 1)
}

/// Floyd's algorithm: `k` distinct indices uniform over `0..n`, sorted.
///
/// Runs in `O(k)` expected time and `O(k)` memory — independent of `n`,
/// which matters when sampling a handful of neighbors from a hub with
/// millions of edges.
pub fn sample_distinct<R: Rng + RngExt + ?Sized>(rng: &mut R, n: usize, k: usize) -> Vec<usize> {
    if k >= n {
        return (0..n).collect();
    }
    let mut chosen = std::collections::HashSet::with_capacity(k);
    for j in (n - k)..n {
        let t = rng.random_range(0..=j);
        if !chosen.insert(t) {
            chosen.insert(j);
        }
    }
    let mut out: Vec<usize> = chosen.into_iter().collect();
    out.sort_unstable();
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gaussian_moments_are_sane() {
        let mut rng = seeded(7);
        let n = 50_000;
        let samples: Vec<f64> = (0..n).map(|_| gaussian(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn seeded_is_deterministic() {
        let a: Vec<f64> = {
            let mut r = seeded(42);
            (0..10).map(|_| gaussian(&mut r)).collect()
        };
        let b: Vec<f64> = {
            let mut r = seeded(42);
            (0..10).map(|_| gaussian(&mut r)).collect()
        };
        assert_eq!(a, b);
    }

    #[test]
    fn sample_weighted_respects_zero_mass() {
        let mut rng = seeded(1);
        assert_eq!(sample_weighted(&mut rng, &[]), None);
        assert_eq!(sample_weighted(&mut rng, &[0.0, 0.0]), None);
        // With one positive weight, it must always be selected.
        for _ in 0..20 {
            assert_eq!(sample_weighted(&mut rng, &[0.0, 5.0, 0.0]), Some(1));
        }
    }

    #[test]
    fn sample_weighted_is_roughly_proportional() {
        let mut rng = seeded(3);
        let w = [1.0, 3.0];
        let mut counts = [0usize; 2];
        for _ in 0..40_000 {
            counts[sample_weighted(&mut rng, &w).unwrap()] += 1;
        }
        let frac = counts[1] as f64 / 40_000.0;
        assert!((frac - 0.75).abs() < 0.02, "frac {frac}");
    }

    #[test]
    fn sample_distinct_gives_k_unique_in_range() {
        let mut rng = seeded(9);
        for _ in 0..50 {
            let s = sample_distinct(&mut rng, 100, 10);
            assert_eq!(s.len(), 10);
            assert!(s.windows(2).all(|w| w[0] < w[1]));
            assert!(s.iter().all(|&i| i < 100));
        }
        // k >= n returns everything.
        assert_eq!(sample_distinct(&mut rng, 5, 9), vec![0, 1, 2, 3, 4]);
    }
}
