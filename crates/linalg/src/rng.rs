//! Deterministic random-number helpers.
//!
//! The allowed `rand` build ships no normal distribution (that lives in the
//! separate `rand_distr` crate), so Gaussian sampling is implemented here via
//! the Box–Muller transform. Every randomized component in the workspace
//! takes a `u64` seed and builds a [`StdRng`], keeping the entire experiment
//! suite reproducible.

use rand::rngs::StdRng;
use rand::{Rng, RngExt, SeedableRng};

/// Creates a seeded [`StdRng`].
pub fn seeded(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// SplitMix64 avalanche round: bijective, every output bit depends on
/// every input bit. The primitive underneath [`chunk_seed`] and
/// [`node_variate`] — the deterministic seed-splitting contract the
/// data-parallel samplers are built on (DESIGN.md §6).
#[inline]
pub fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Derives an independent stream seed for `(stream, chunk)` from a base
/// seed, splitmix-style. Samplers use `stream` for the hop/layer index
/// and `chunk` for the target-chunk index, so every chunk of every hop
/// gets its own decorrelated RNG regardless of execution order or thread
/// count — the foundation of the bitwise seq ≡ parallel guarantee.
#[inline]
pub fn chunk_seed(seed: u64, stream: u64, chunk: u64) -> u64 {
    mix64(
        mix64(seed ^ stream.wrapping_mul(0xA24B_AED4_963E_E407))
            ^ chunk.wrapping_mul(0x9FB2_1C65_1E98_DF25),
    )
}

/// Maps a 64-bit hash to a uniform `f64` in `[0, 1)` (top 53 bits).
#[inline]
pub fn unit_f64(h: u64) -> f64 {
    (h >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Stateless per-node uniform variate in `[0, 1)`: a pure function of
/// `(seed, node)`. LABOR's shared per-source randomness is generated this
/// way so that every destination — and every parallel chunk — observes
/// the *same* variate for a node without any cross-chunk RNG state.
#[inline]
pub fn node_variate(seed: u64, node: u64) -> f64 {
    unit_f64(mix64(seed ^ node.wrapping_mul(0xD6E8_FEB8_6659_FD93)))
}

/// Draws one standard-normal sample via the Box–Muller transform.
pub fn gaussian<R: Rng + RngExt + ?Sized>(rng: &mut R) -> f64 {
    // u1 in (0, 1] so ln is finite.
    let u1: f64 = 1.0 - rng.random::<f64>();
    let u2: f64 = rng.random::<f64>();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// Fills a slice with `N(mu, sigma^2)` samples.
pub fn fill_gaussian<R: Rng + RngExt + ?Sized>(rng: &mut R, out: &mut [f32], mu: f32, sigma: f32) {
    for v in out.iter_mut() {
        *v = mu + sigma * gaussian(rng) as f32;
    }
}

/// Samples an index from an (unnormalized, non-negative) weight slice.
///
/// Returns `None` when all weights are zero or the slice is empty.
pub fn sample_weighted<R: Rng + RngExt + ?Sized>(rng: &mut R, weights: &[f64]) -> Option<usize> {
    let total: f64 = weights.iter().sum();
    if total <= 0.0 || weights.is_empty() {
        return None;
    }
    let mut t = rng.random::<f64>() * total;
    for (i, &w) in weights.iter().enumerate() {
        t -= w;
        if t <= 0.0 {
            return Some(i);
        }
    }
    Some(weights.len() - 1)
}

/// Floyd's algorithm: `k` distinct indices uniform over `0..n`, sorted.
///
/// Runs in `O(k)` expected time and `O(k)` memory — independent of `n`,
/// which matters when sampling a handful of neighbors from a hub with
/// millions of edges.
pub fn sample_distinct<R: Rng + RngExt + ?Sized>(rng: &mut R, n: usize, k: usize) -> Vec<usize> {
    if k >= n {
        return (0..n).collect();
    }
    let mut chosen = std::collections::HashSet::with_capacity(k);
    for j in (n - k)..n {
        let t = rng.random_range(0..=j);
        if !chosen.insert(t) {
            chosen.insert(j);
        }
    }
    let mut out: Vec<usize> = chosen.into_iter().collect();
    out.sort_unstable();
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gaussian_moments_are_sane() {
        let mut rng = seeded(7);
        let n = 50_000;
        let samples: Vec<f64> = (0..n).map(|_| gaussian(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn seeded_is_deterministic() {
        let a: Vec<f64> = {
            let mut r = seeded(42);
            (0..10).map(|_| gaussian(&mut r)).collect()
        };
        let b: Vec<f64> = {
            let mut r = seeded(42);
            (0..10).map(|_| gaussian(&mut r)).collect()
        };
        assert_eq!(a, b);
    }

    #[test]
    fn sample_weighted_respects_zero_mass() {
        let mut rng = seeded(1);
        assert_eq!(sample_weighted(&mut rng, &[]), None);
        assert_eq!(sample_weighted(&mut rng, &[0.0, 0.0]), None);
        // With one positive weight, it must always be selected.
        for _ in 0..20 {
            assert_eq!(sample_weighted(&mut rng, &[0.0, 5.0, 0.0]), Some(1));
        }
    }

    #[test]
    fn sample_weighted_is_roughly_proportional() {
        let mut rng = seeded(3);
        let w = [1.0, 3.0];
        let mut counts = [0usize; 2];
        for _ in 0..40_000 {
            counts[sample_weighted(&mut rng, &w).unwrap()] += 1;
        }
        let frac = counts[1] as f64 / 40_000.0;
        assert!((frac - 0.75).abs() < 0.02, "frac {frac}");
    }

    #[test]
    fn chunk_seeds_are_decorrelated() {
        // Distinct (stream, chunk) pairs must give distinct seeds, and the
        // low bits must not be degenerate (a classic additive-seed bug).
        let mut seen = std::collections::HashSet::new();
        for stream in 0..8u64 {
            for chunk in 0..64u64 {
                assert!(seen.insert(chunk_seed(42, stream, chunk)));
            }
        }
        // Neighboring chunks differ in roughly half their bits.
        let d = (chunk_seed(42, 0, 0) ^ chunk_seed(42, 0, 1)).count_ones();
        assert!((16..=48).contains(&d), "avalanche too weak: {d} bits");
    }

    #[test]
    fn node_variates_are_uniform_and_stable() {
        let n = 50_000u64;
        let mean = (0..n).map(|v| node_variate(7, v)).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
        for v in 0..100 {
            let x = node_variate(9, v);
            assert!((0.0..1.0).contains(&x));
            assert_eq!(x, node_variate(9, v), "must be a pure function");
        }
        // Different seeds give a different variate stream.
        assert_ne!(node_variate(1, 5), node_variate(2, 5));
    }

    #[test]
    fn sample_distinct_gives_k_unique_in_range() {
        let mut rng = seeded(9);
        for _ in 0..50 {
            let s = sample_distinct(&mut rng, 100, 10);
            assert_eq!(s.len(), 10);
            assert!(s.windows(2).all(|w| w[0] < w[1]));
            assert!(s.iter().all(|&i| i < 100));
        }
        // k >= n returns everything.
        assert_eq!(sample_distinct(&mut rng, 5, 9), vec![0, 1, 2, 3, 4]);
    }
}
