//! Symmetric eigensolvers.
//!
//! Two regimes show up in the survey's experiments:
//!
//! - **Small dense** problems (coarse graphs, condensed graphs, tridiagonal
//!   Lanczos projections): the cyclic [`jacobi_eigen`] rotation method —
//!   simple, robust, and exact enough for the spectral-similarity
//!   diagnostics used by the coarsening experiment (E12, GDEM-style
//!   eigenbasis matching).
//! - **Large sparse** operators (normalized adjacency / Laplacian of a big
//!   graph): [`lanczos`] with full reorthogonalization against the operator
//!   exposed through [`MatVecF64`], used by spectral embeddings (E5) and the
//!   closed-form implicit GNN (E8, EIGNN-style eigendecomposition).

use crate::vecops;
use crate::{LinalgError, Result};

/// A symmetric linear operator in `f64`, exposed as matrix–vector product.
///
/// Graph crates implement this for normalized adjacency and Laplacian
/// matrices without ever materializing them densely.
pub trait MatVecF64 {
    /// Operator dimension `n` (acts on `R^n`).
    fn dim(&self) -> usize;
    /// Computes `y = A x`. `y` is pre-zeroed by the caller contract.
    fn matvec(&self, x: &[f64], y: &mut [f64]);
}

/// Dense symmetric operator wrapper (row-major `f64` buffer), mainly for
/// tests and small condensed graphs.
pub struct DenseSymOp<'a> {
    /// Row-major `n×n` buffer.
    pub data: &'a [f64],
    /// Dimension `n`.
    pub n: usize,
}

impl MatVecF64 for DenseSymOp<'_> {
    fn dim(&self) -> usize {
        self.n
    }
    fn matvec(&self, x: &[f64], y: &mut [f64]) {
        for i in 0..self.n {
            let row = &self.data[i * self.n..(i + 1) * self.n];
            y[i] = vecops::dot64(row, x);
        }
    }
}

/// Eigenvalues (ascending) and matching eigenvectors (column `i` of
/// `vectors` corresponds to `values[i]`, stored as row-major `n×k`).
#[derive(Debug, Clone)]
pub struct EigenPairs {
    /// Eigenvalues in ascending order.
    pub values: Vec<f64>,
    /// Row-major `n × k` matrix; column `j` is the eigenvector of
    /// `values[j]`.
    pub vectors: Vec<f64>,
    /// Operator dimension.
    pub n: usize,
}

impl EigenPairs {
    /// The `j`-th eigenvector as an owned vector.
    pub fn vector(&self, j: usize) -> Vec<f64> {
        let k = self.values.len();
        (0..self.n).map(|i| self.vectors[i * k + j]).collect()
    }
}

/// Cyclic Jacobi eigendecomposition of a dense symmetric matrix.
///
/// `a` is a row-major `n×n` buffer (consumed as workspace). Returns all `n`
/// eigenpairs, eigenvalues ascending. Complexity `O(n^3)` per sweep; fine
/// for the `n ≤ ~2000` dense problems in this workspace.
pub fn jacobi_eigen(mut a: Vec<f64>, n: usize) -> Result<EigenPairs> {
    assert_eq!(a.len(), n * n, "matrix buffer must be n*n");
    // v starts as identity; accumulates rotations.
    let mut v = vec![0f64; n * n];
    for i in 0..n {
        v[i * n + i] = 1.0;
    }
    let max_sweeps = 64;
    for sweep in 0..max_sweeps {
        // Off-diagonal Frobenius mass.
        let mut off = 0f64;
        for i in 0..n {
            for j in (i + 1)..n {
                off += a[i * n + j] * a[i * n + j];
            }
        }
        if off.sqrt() < 1e-12 {
            return Ok(collect_pairs(a, v, n));
        }
        let _ = sweep;
        for p in 0..n {
            for q in (p + 1)..n {
                let apq = a[p * n + q];
                if apq.abs() < 1e-15 {
                    continue;
                }
                let app = a[p * n + p];
                let aqq = a[q * n + q];
                let theta = (aqq - app) / (2.0 * apq);
                let t = theta.signum() / (theta.abs() + (theta * theta + 1.0).sqrt());
                let c = 1.0 / (t * t + 1.0).sqrt();
                let s = t * c;
                // Rotate rows/cols p and q of `a`.
                for k in 0..n {
                    let akp = a[k * n + p];
                    let akq = a[k * n + q];
                    a[k * n + p] = c * akp - s * akq;
                    a[k * n + q] = s * akp + c * akq;
                }
                for k in 0..n {
                    let apk = a[p * n + k];
                    let aqk = a[q * n + k];
                    a[p * n + k] = c * apk - s * aqk;
                    a[q * n + k] = s * apk + c * aqk;
                }
                // Accumulate eigenvectors.
                for k in 0..n {
                    let vkp = v[k * n + p];
                    let vkq = v[k * n + q];
                    v[k * n + p] = c * vkp - s * vkq;
                    v[k * n + q] = s * vkp + c * vkq;
                }
            }
        }
    }
    Err(LinalgError::NoConvergence { routine: "jacobi_eigen", iterations: max_sweeps })
}

fn collect_pairs(a: Vec<f64>, v: Vec<f64>, n: usize) -> EigenPairs {
    let mut idx: Vec<usize> = (0..n).collect();
    let diag: Vec<f64> = (0..n).map(|i| a[i * n + i]).collect();
    idx.sort_by(|&i, &j| diag[i].partial_cmp(&diag[j]).unwrap());
    let values: Vec<f64> = idx.iter().map(|&i| diag[i]).collect();
    let mut vectors = vec![0f64; n * n];
    for (newcol, &oldcol) in idx.iter().enumerate() {
        for r in 0..n {
            vectors[r * n + newcol] = v[r * n + oldcol];
        }
    }
    EigenPairs { values, vectors, n }
}

/// Which end of the spectrum Lanczos should resolve first.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpectrumEnd {
    /// Smallest eigenvalues first (e.g. low Laplacian frequencies).
    Smallest,
    /// Largest eigenvalues first (e.g. dominant adjacency directions).
    Largest,
}

/// Lanczos iteration with full reorthogonalization for the top/bottom `k`
/// eigenpairs of a symmetric operator.
///
/// Builds an `m`-step Krylov basis (`m = min(dim, max(2k+10, 30))`),
/// diagonalizes the projected tridiagonal matrix with [`jacobi_eigen`], and
/// lifts the Ritz vectors back. Deterministic under `seed`.
pub fn lanczos<Op: MatVecF64>(
    op: &Op,
    k: usize,
    end: SpectrumEnd,
    seed: u64,
) -> Result<EigenPairs> {
    let n = op.dim();
    if n == 0 || k == 0 {
        return Ok(EigenPairs { values: vec![], vectors: vec![], n });
    }
    let k = k.min(n);
    let m = n.min((2 * k + 10).max(30));
    let mut rng = crate::rng::seeded(seed);
    // Krylov basis, m rows of length n.
    let mut basis: Vec<Vec<f64>> = Vec::with_capacity(m);
    let mut q = vec![0f64; n];
    for v in q.iter_mut() {
        *v = crate::rng::gaussian(&mut rng);
    }
    vecops::normalize64(&mut q);
    let mut alphas = Vec::with_capacity(m);
    let mut betas = Vec::with_capacity(m);
    let mut w = vec![0f64; n];
    for _ in 0..m {
        basis.push(q.clone());
        w.iter_mut().for_each(|v| *v = 0.0);
        op.matvec(&q, &mut w);
        let alpha = vecops::dot64(&w, &q);
        alphas.push(alpha);
        // w -= alpha*q + beta*prev, then full reorthogonalization.
        for (wi, qi) in w.iter_mut().zip(q.iter()) {
            *wi -= alpha * qi;
        }
        for b in &basis {
            let proj = vecops::dot64(&w, b);
            vecops::axpy64(-proj, b, &mut w);
        }
        let beta = vecops::norm2_64(&w);
        if beta < 1e-12 {
            break; // Invariant subspace found; basis is complete.
        }
        betas.push(beta);
        q.clone_from(&w);
        vecops::scale64(&mut q, 1.0 / beta);
    }
    let steps = basis.len();
    // Projected tridiagonal matrix T (steps × steps), dense.
    let mut t = vec![0f64; steps * steps];
    for i in 0..steps {
        t[i * steps + i] = alphas[i];
        if i + 1 < steps {
            t[i * steps + i + 1] = betas[i];
            t[(i + 1) * steps + i] = betas[i];
        }
    }
    let tp = jacobi_eigen(t, steps)?;
    // Select k Ritz pairs from the requested end.
    let order: Vec<usize> = match end {
        SpectrumEnd::Smallest => (0..steps).collect(),
        SpectrumEnd::Largest => (0..steps).rev().collect(),
    };
    let take: Vec<usize> = order.into_iter().take(k).collect();
    let mut values = Vec::with_capacity(take.len());
    let mut vectors = vec![0f64; n * take.len()];
    for (out_j, &tj) in take.iter().enumerate() {
        values.push(tp.values[tj]);
        // Ritz vector = Σ_i basis[i] * T_vec[i, tj]
        for (i, b) in basis.iter().enumerate() {
            let coef = tp.vectors[i * steps + tj];
            for r in 0..n {
                vectors[r * take.len() + out_j] += coef * b[r];
            }
        }
    }
    // Keep ascending order within the returned set for a stable contract.
    let mut idx: Vec<usize> = (0..values.len()).collect();
    idx.sort_by(|&a, &b| values[a].partial_cmp(&values[b]).unwrap());
    let sorted_values: Vec<f64> = idx.iter().map(|&i| values[i]).collect();
    let kk = values.len();
    let mut sorted_vectors = vec![0f64; n * kk];
    for (newj, &oldj) in idx.iter().enumerate() {
        for r in 0..n {
            sorted_vectors[r * kk + newj] = vectors[r * kk + oldj];
        }
    }
    Ok(EigenPairs { values: sorted_values, vectors: sorted_vectors, n })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn residual(op: &impl MatVecF64, lambda: f64, vec: &[f64]) -> f64 {
        let n = op.dim();
        let mut av = vec![0f64; n];
        op.matvec(vec, &mut av);
        let mut r = 0f64;
        for i in 0..n {
            let d = av[i] - lambda * vec[i];
            r += d * d;
        }
        r.sqrt()
    }

    #[test]
    fn jacobi_diagonalizes_known_matrix() {
        // [[2,1],[1,2]] has eigenvalues 1 and 3.
        let pairs = jacobi_eigen(vec![2.0, 1.0, 1.0, 2.0], 2).unwrap();
        assert!((pairs.values[0] - 1.0).abs() < 1e-10);
        assert!((pairs.values[1] - 3.0).abs() < 1e-10);
        // Eigenvector for λ=3 is [1,1]/√2 up to sign.
        let v = pairs.vector(1);
        assert!((v[0].abs() - std::f64::consts::FRAC_1_SQRT_2).abs() < 1e-8);
        assert!((v[0] - v[1]).abs() < 1e-8);
    }

    #[test]
    fn jacobi_eigenvectors_are_orthonormal() {
        // Random symmetric 10x10.
        let mut rng = crate::rng::seeded(4);
        let n = 10;
        let mut a = vec![0f64; n * n];
        for i in 0..n {
            for j in i..n {
                let v = crate::rng::gaussian(&mut rng);
                a[i * n + j] = v;
                a[j * n + i] = v;
            }
        }
        let orig = a.clone();
        let pairs = jacobi_eigen(a, n).unwrap();
        for i in 0..n {
            for j in 0..n {
                let d: f64 =
                    (0..n).map(|r| pairs.vectors[r * n + i] * pairs.vectors[r * n + j]).sum();
                let expect = if i == j { 1.0 } else { 0.0 };
                assert!((d - expect).abs() < 1e-8, "gram[{i}][{j}]={d}");
            }
        }
        // Residual check A v = λ v for each pair.
        let op = DenseSymOp { data: &orig, n };
        for j in 0..n {
            let r = residual(&op, pairs.values[j], &pairs.vector(j));
            assert!(r < 1e-8, "residual {r} for pair {j}");
        }
        // Ascending values.
        assert!(pairs.values.windows(2).all(|w| w[0] <= w[1] + 1e-12));
    }

    #[test]
    fn lanczos_matches_jacobi_on_dense_problem() {
        let mut rng = crate::rng::seeded(11);
        let n = 30;
        let mut a = vec![0f64; n * n];
        for i in 0..n {
            for j in i..n {
                let v = crate::rng::gaussian(&mut rng);
                a[i * n + j] = v;
                a[j * n + i] = v;
            }
        }
        let full = jacobi_eigen(a.clone(), n).unwrap();
        let op = DenseSymOp { data: &a, n };
        let top = lanczos(&op, 3, SpectrumEnd::Largest, 5).unwrap();
        let bottom = lanczos(&op, 3, SpectrumEnd::Smallest, 5).unwrap();
        // Largest three eigenvalues should match Jacobi's tail.
        for (i, v) in top.values.iter().enumerate() {
            let expect = full.values[n - 3 + i];
            assert!((v - expect).abs() < 1e-6, "top {v} vs {expect}");
        }
        for (i, v) in bottom.values.iter().enumerate() {
            assert!((v - full.values[i]).abs() < 1e-6, "bottom {v} vs {}", full.values[i]);
        }
        // Ritz residuals small.
        for j in 0..3 {
            assert!(residual(&op, top.values[j], &top.vector(j)) < 1e-5);
        }
    }

    #[test]
    fn lanczos_handles_k_zero_and_empty() {
        let a = vec![1.0];
        let op = DenseSymOp { data: &a, n: 1 };
        let p = lanczos(&op, 0, SpectrumEnd::Largest, 1).unwrap();
        assert!(p.values.is_empty());
    }
}
