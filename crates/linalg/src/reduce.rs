//! Exact fixed-point reductions for order-independent gradient sums.
//!
//! Floating-point addition is not associative, so a cross-row reduction
//! (`gW = Xᵀ·dY`, `gb = Σ rows`, the scalar loss fold) computed per shard
//! and then combined would in general differ in the last bits from the
//! same reduction computed in one sequential sweep. The shard-parallel
//! trainer (DESIGN.md §7) promises **bitwise** equality with the
//! single-process trainer at any shard count, so every reduction that
//! crosses the row (node) dimension goes through this module instead:
//!
//! 1. Each term is formed exactly: the product of two `f32`s is exact in
//!    `f64`, and multiplying by [`FX_SCALE`] (a power of two) only shifts
//!    the exponent.
//! 2. The scaled term is truncated to `i128` — a pure, deterministic
//!    function of the term's bits (truncating, saturating, NaN → 0).
//! 3. Terms are accumulated with `wrapping_add`, which is exactly
//!    associative and commutative even on overflow.
//!
//! Step 3 makes the fold order-free: per-shard partial sums combined in
//! any fixed order equal the sequential reference fold integer-for-
//! integer, and a single rounding happens at the final `i128 → f32`
//! conversion. The reference kernels (`Linear::backward`, the softmax
//! cross-entropy loss) use the same representation, so "sharded ≡
//! single" reduces to integer arithmetic.
//!
//! `2^60` leaves |values| up to ~2^67 representable before the final
//! conversion would lose integer exactness (f64 has 53 mantissa bits,
//! but the conversion rounds identically in both paths regardless), and
//! keeps ~18 decimal digits below the point — far below f32's 2^-149
//! subnormal floor matters only for terms that are already zero in f32.

use crate::dense::DenseMatrix;
use crate::par::par_rows_mut;

/// Fixed-point scale: `2^60`. A power of two so `t * FX_SCALE` is an
/// exact exponent shift for every finite `t`.
pub const FX_SCALE: f64 = (1u64 << 60) as f64;

/// Converts one `f64` term to fixed point (truncating; saturating at the
/// `i128` range; NaN maps to 0). Pure function of the term's bits.
#[inline]
pub fn fx(t: f64) -> i128 {
    (t * FX_SCALE) as i128
}

/// Fixed point back to `f64` (single rounding).
#[inline]
pub fn fx_to_f64(v: i128) -> f64 {
    v as f64 / FX_SCALE
}

/// Fixed point back to `f32` via `f64` (the conversion both the
/// reference and the sharded path perform exactly once per slot).
#[inline]
pub fn fx_to_f32(v: i128) -> f32 {
    fx_to_f64(v) as f32
}

/// Accumulates `Xᵀ·dY` into `acc` in fixed point: `acc[i*dout + j] +=
/// Σ_k fx(x[k][i] · dy[k][j])`.
///
/// `acc` has `x.cols() × dy.cols()` slots (the weight-gradient shape).
/// Rows `k` are the reduction dimension, so a shard holding a subset of
/// rows produces a partial that combines exactly with any other shard's
/// (`wrapping_add` is associative and commutative). Parallelism is over
/// *output* rows `i` — each worker owns disjoint `acc` rows — which is
/// thread-count-invariant by construction.
///
/// Zero entries of `x` are skipped: `0 · dy` contributes `fx(±0.0) = 0`
/// for finite `dy` and would contribute NaN → 0 for non-finite `dy`, so
/// the skip is exact in every case.
pub fn grad_fx(x: &DenseMatrix, dy: &DenseMatrix, acc: &mut [i128]) {
    let (n, din) = x.shape();
    let dout = dy.cols();
    assert_eq!(dy.rows(), n, "grad_fx: row mismatch {} vs {}", dy.rows(), n);
    assert_eq!(acc.len(), din * dout, "grad_fx: acc shape");
    // Transpose once so the inner loop reads x contiguously per output row.
    let xt = x.transpose();
    let dyd = dy.data();
    par_rows_mut(acc, dout, 4, |first, rows| {
        for (r, out) in rows.chunks_exact_mut(dout).enumerate() {
            let i = first + r;
            let xrow = xt.row(i);
            for k in 0..n {
                let a = xrow[k];
                if a == 0.0 {
                    continue;
                }
                let af = a as f64;
                let dyr = &dyd[k * dout..(k + 1) * dout];
                for (o, &d) in out.iter_mut().zip(dyr) {
                    *o = o.wrapping_add(fx(af * d as f64));
                }
            }
        }
    });
}

/// Accumulates the column sums of `dy` into `acc` in fixed point:
/// `acc[j] += Σ_k fx(dy[k][j])` (the bias-gradient reduction).
pub fn colsum_fx(dy: &DenseMatrix, acc: &mut [i128]) {
    let dout = dy.cols();
    assert_eq!(acc.len(), dout, "colsum_fx: acc shape");
    for k in 0..dy.rows() {
        for (o, &d) in acc.iter_mut().zip(dy.row(k)) {
            *o = o.wrapping_add(fx(d as f64));
        }
    }
}

/// Merges `src` into `dst` slot-wise (`dst[i] += src[i]`, wrapping).
/// The allreduce combiner: exact, so the combine tree's shape is
/// irrelevant to the result — the *fixed order* the shard trainer uses
/// is for auditability, not correctness.
#[inline]
pub fn merge_fx(dst: &mut [i128], src: &[i128]) {
    assert_eq!(dst.len(), src.len(), "merge_fx: length mismatch");
    for (d, s) in dst.iter_mut().zip(src) {
        *d = d.wrapping_add(*s);
    }
}

/// Adds the fixed-point accumulator into an `f32` buffer slot-wise
/// (`dst[i] += fx_to_f32(src[i])`).
///
/// Both the reference kernels and the shard trainer write gradients back
/// through this exact expression — `+=` rather than a store, so a zeroed
/// destination yields `0.0 + v`, which matters for the sign of zero: a
/// direct store of `-0.0` and `0.0 + (-0.0)` differ bitwise.
pub fn accumulate_fx(dst: &mut [f32], src: &[i128]) {
    assert_eq!(dst.len(), src.len(), "accumulate_fx: length mismatch");
    for (d, &s) in dst.iter_mut().zip(src) {
        *d += fx_to_f32(s);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::par::set_threads;

    #[test]
    fn fx_roundtrip_is_close_and_deterministic() {
        for &t in &[0.0f64, 1.0, -1.0, 3.25, -0.1, 1e-6, 123.456] {
            let v = fx(t);
            assert!((fx_to_f64(v) - t).abs() < 1e-12, "t={t}");
            assert_eq!(fx(t), v, "pure function");
        }
        assert_eq!(fx(f64::NAN), 0);
        assert_eq!(fx(f64::INFINITY), i128::MAX);
        assert_eq!(fx(f64::NEG_INFINITY), i128::MIN);
    }

    #[test]
    fn partial_sums_match_sequential_fold_exactly() {
        // The whole point: split the row range any way, combine in any
        // order, get the identical integers.
        let x = DenseMatrix::gaussian(37, 5, 1.0, 1);
        let dy = DenseMatrix::gaussian(37, 3, 1.0, 2);
        let mut whole = vec![0i128; 15];
        grad_fx(&x, &dy, &mut whole);

        for split in [1usize, 9, 18, 30] {
            let xa = x.gather_rows(&(0..split).collect::<Vec<_>>());
            let xb = x.gather_rows(&(split..37).collect::<Vec<_>>());
            let da = dy.gather_rows(&(0..split).collect::<Vec<_>>());
            let db = dy.gather_rows(&(split..37).collect::<Vec<_>>());
            let mut pa = vec![0i128; 15];
            let mut pb = vec![0i128; 15];
            grad_fx(&xa, &da, &mut pa);
            grad_fx(&xb, &db, &mut pb);
            // Combine b-first to prove order irrelevance.
            let mut combined = vec![0i128; 15];
            merge_fx(&mut combined, &pb);
            merge_fx(&mut combined, &pa);
            assert_eq!(combined, whole, "split at {split}");
        }
    }

    #[test]
    fn grad_fx_matches_dense_reference_numerically() {
        let x = DenseMatrix::gaussian(20, 4, 1.0, 3);
        let dy = DenseMatrix::gaussian(20, 6, 1.0, 4);
        let mut acc = vec![0i128; 24];
        grad_fx(&x, &dy, &mut acc);
        let reference = x.transpose().matmul(&dy).unwrap();
        for i in 0..4 {
            for j in 0..6 {
                let got = fx_to_f64(acc[i * 6 + j]);
                let want = reference.get(i, j) as f64;
                assert!((got - want).abs() < 1e-5, "[{i}][{j}] {got} vs {want}");
            }
        }
    }

    #[test]
    fn colsum_fx_matches_manual_sum() {
        let dy = DenseMatrix::gaussian(50, 3, 2.0, 7);
        let mut acc = vec![0i128; 3];
        colsum_fx(&dy, &mut acc);
        for j in 0..3 {
            let manual: i128 = (0..50).map(|k| fx(dy.get(k, j) as f64)).fold(0, i128::wrapping_add);
            assert_eq!(acc[j], manual);
        }
    }

    #[test]
    fn grad_fx_is_thread_count_invariant() {
        let x = DenseMatrix::gaussian(64, 24, 1.0, 5);
        let dy = DenseMatrix::gaussian(64, 16, 1.0, 6);
        set_threads(1);
        let mut seq = vec![0i128; 24 * 16];
        grad_fx(&x, &dy, &mut seq);
        set_threads(4);
        let mut par = vec![0i128; 24 * 16];
        grad_fx(&x, &dy, &mut par);
        set_threads(0);
        assert_eq!(seq, par);
    }
}
