//! # sgnn-linalg
//!
//! Dense linear algebra kernels underpinning the `sgnn` workspace.
//!
//! The scalable-GNN survey this workspace reproduces treats neural-network
//! computation as a commodity substrate: what matters is that feature
//! transformations (`H · W`), activations, and small eigenproblems exist so
//! the *graph-side* techniques can be measured around them. This crate
//! provides exactly that substrate:
//!
//! - [`DenseMatrix`] — row-major `f32` matrices with BLAS-lite operations
//!   (parallel GEMM, transpose, row slicing, concatenation).
//! - [`vecops`] — flat-slice primitives (dot, axpy, softmax, normalization)
//!   reused by every hot loop in the workspace.
//! - [`eigen`] — a Jacobi eigensolver for small dense symmetric matrices and
//!   a Lanczos solver for large sparse operators (via the [`MatVecF64`]
//!   trait), used by the spectral-embedding and implicit-GNN experiments.
//! - [`solve`] — conjugate gradient for symmetric positive-definite
//!   operators (implicit-GNN equilibria).
//! - [`par`] — persistent-pool chunked parallel iteration used by the GEMM
//!   and sparse-matrix kernels.
//! - [`reduce`] — exact fixed-point (`i128`) gradient reductions whose
//!   partial sums combine order-independently, the primitive behind the
//!   shard trainer's bitwise-equality guarantee (DESIGN.md §7).
//! - [`rng`] — deterministic Gaussian sampling (Box–Muller) since the
//!   allowed `rand` build ships no normal distribution.
//! - [`simd`] — explicit AVX2/NEON micro-kernels behind the `simd` feature,
//!   bitwise-identical to their scalar fallbacks (DESIGN.md §9).
//! - [`quant`] — int8/f16 inference-only quantized matrices with f32
//!   accumulation and a documented error tolerance.

// Numeric kernels index several parallel flat buffers at once; iterator
// rewrites obscure them. Config-style constructors take their full
// parameter list deliberately (documented, stable).
#![allow(clippy::needless_range_loop, clippy::too_many_arguments)]

pub mod dense;
pub mod eigen;
pub mod par;
pub mod quant;
pub mod reduce;
pub mod rng;
pub mod simd;
pub mod solve;
pub mod vecops;

pub use dense::DenseMatrix;
pub use eigen::{jacobi_eigen, lanczos, EigenPairs, MatVecF64};
pub use quant::{qmatmul_into, QuantMatrix, QuantMode};
pub use solve::{conjugate_gradient, CgResult};

/// Errors produced by linear-algebra routines.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LinalgError {
    /// Operand shapes are incompatible for the requested operation.
    ShapeMismatch {
        /// Human-readable description of the two shapes involved.
        context: String,
    },
    /// An iterative method failed to converge within its iteration budget.
    NoConvergence {
        /// The routine that failed.
        routine: &'static str,
        /// Iterations performed before giving up.
        iterations: usize,
    },
    /// Index out of bounds.
    OutOfBounds {
        /// Offending index.
        index: usize,
        /// Exclusive bound.
        bound: usize,
    },
}

impl std::fmt::Display for LinalgError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LinalgError::ShapeMismatch { context } => {
                write!(f, "shape mismatch: {context}")
            }
            LinalgError::NoConvergence { routine, iterations } => {
                write!(f, "{routine} failed to converge after {iterations} iterations")
            }
            LinalgError::OutOfBounds { index, bound } => {
                write!(f, "index {index} out of bounds (< {bound})")
            }
        }
    }
}

impl std::error::Error for LinalgError {}

/// Crate-wide `Result` alias.
pub type Result<T> = std::result::Result<T, LinalgError>;
