//! Persistent worker pool for chunked parallel iteration.
//!
//! Every parallel kernel in `sgnn` is a partitioned loop over a flat
//! buffer. The seed implementation spawned fresh OS threads per call via
//! scoped threads; this version keeps a lazily-initialized pool of
//! persistent workers (parked on a condvar when idle) and dispatches jobs
//! to them with **zero allocation per call**: the job descriptor lives on
//! the submitting thread's stack and workers claim chunks through an
//! atomic counter, which doubles as work stealing for skewed workloads.
//!
//! Two partitioning regimes are offered:
//!
//! - *uniform*: `0..len` split into equal chunks ([`par_chunks`],
//!   [`par_rows_mut`]) — right for dense kernels where every row costs the
//!   same;
//! - *balanced*: chunk boundaries placed by binary search on a caller-
//!   provided prefix-sum of per-row weights ([`par_balanced_chunks`],
//!   [`par_balanced_rows_mut`]) — right for CSR kernels on power-law
//!   graphs, where equal row counts put one hub's entire edge list on a
//!   single worker.
//!
//! Threading contract: [`set_threads`]`(1)` makes every kernel run inline
//! on the calling thread (the reproducible-benchmark baseline);
//! [`set_threads`]`(k)` caps a job's participants at `k`. Results are
//! bitwise identical at any thread count because partition boundaries
//! depend only on the input, never on execution order.

use std::any::Any;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;
use std::time::Instant;

use parking_lot::{Condvar, Mutex};

// Observability (all gated on a single relaxed load when disabled; see
// DESIGN.md §5). Counters tell the load-balance story: how many jobs
// engaged the pool, how finely they were chunked, how many chunks pool
// workers stole from the submitter's share, and how long workers sat
// parked versus how long submitters spent inside dispatch.
static POOL_DISPATCHES: sgnn_obs::Counter = sgnn_obs::Counter::new("linalg.pool.dispatches");
static POOL_CHUNKS: sgnn_obs::Counter = sgnn_obs::Counter::new("linalg.pool.chunks");
static POOL_STEALS: sgnn_obs::Counter = sgnn_obs::Counter::new("linalg.pool.steals");
static POOL_IDLE_NS: sgnn_obs::Counter = sgnn_obs::Counter::new("linalg.pool.idle_ns");
static POOL_SUBMIT_NS: sgnn_obs::Counter = sgnn_obs::Counter::new("linalg.pool.submit_ns");

/// Returns the number of worker threads to use for parallel kernels.
///
/// The default is the `SGNN_THREADS` environment variable when set to a
/// positive integer, else the process hardware parallelism
/// (`available_parallelism`); the value is cached after the first read.
/// Override globally with [`set_threads`] (useful for benchmarks that want
/// single-threaded baselines).
pub fn num_threads() -> usize {
    let cached = THREADS.load(Ordering::Relaxed);
    if cached != 0 {
        return cached;
    }
    let n = default_threads();
    THREADS.store(n, Ordering::Relaxed);
    n
}

/// The configured default: `SGNN_THREADS` (CI pins the determinism matrix
/// with it) or the hardware count.
fn default_threads() -> usize {
    match std::env::var("SGNN_THREADS").ok().and_then(|v| v.parse::<usize>().ok()) {
        Some(n) if n > 0 => n,
        _ => hardware_threads(),
    }
}

/// Overrides the worker-thread count used by all parallel kernels.
///
/// Passing `0` resets to the hardware default on next use. Values above
/// the hardware count are honored for chunking but cannot exceed the pool
/// size (workers are created once, at first use).
pub fn set_threads(n: usize) {
    THREADS.store(n, Ordering::Relaxed);
}

static THREADS: AtomicUsize = AtomicUsize::new(0);

fn hardware_threads() -> usize {
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

// ---------------------------------------------------------------------------
// Pool internals
// ---------------------------------------------------------------------------

/// One in-flight job. Lives on the **submitting thread's stack**; workers
/// reach it through a lifetime-erased pointer published in the pool slot.
/// The submitter does not return until every attached worker has detached,
/// which is what makes the erasure sound.
struct Job {
    /// Chunk executor (borrowed from the submitter's frame).
    run: *const (dyn Fn(usize) + Sync),
    /// Next chunk index to claim (the work-stealing counter).
    next: AtomicUsize,
    /// Chunks fully executed.
    done: AtomicUsize,
    /// Total chunks.
    num_chunks: usize,
    /// Worker-participation permits left (`participants - 1`; the
    /// submitter always participates).
    permits: AtomicUsize,
    /// First chunk panic's payload; re-raised by the submitter so callers
    /// see the original message, not a generic pool error.
    panic_payload: Mutex<Option<Box<dyn Any + Send>>>,
}

unsafe impl Send for Job {}
unsafe impl Sync for Job {}

/// The publication slot workers poll: bumping `seq` under the mutex and
/// notifying is the entire dispatch protocol.
struct Slot {
    seq: u64,
    job: Option<*const Job>,
    /// Workers currently holding a reference to `job`.
    attached: usize,
}

unsafe impl Send for Slot {}

struct Pool {
    state: Mutex<Slot>,
    work_ready: Condvar,
    work_done: Condvar,
    /// Serializes submitters so one job owns the slot at a time.
    submit: Mutex<()>,
    workers: usize,
}

thread_local! {
    /// True while this thread is a pool worker or is inside a dispatched
    /// job; nested kernels then run inline instead of re-entering the pool.
    static IN_POOL_CONTEXT: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
}

fn pool() -> &'static Pool {
    static POOL: OnceLock<Pool> = OnceLock::new();
    static SPAWNED: std::sync::Once = std::sync::Once::new();
    let p = POOL.get_or_init(|| Pool {
        state: Mutex::new(Slot { seq: 0, job: None, attached: 0 }),
        work_ready: Condvar::new(),
        work_done: Condvar::new(),
        submit: Mutex::new(()),
        workers: hardware_threads().saturating_sub(1),
    });
    SPAWNED.call_once(|| {
        for i in 0..p.workers {
            let _ = std::thread::Builder::new()
                .name(format!("sgnn-par-{i}"))
                .spawn(move || worker_loop(p, i));
        }
    });
    p
}

fn worker_loop(pool: &'static Pool, worker: usize) {
    IN_POOL_CONTEXT.with(|f| f.set(true));
    let mut seen = 0u64;
    loop {
        // Time parked on the condvar counts as pool idle capacity.
        let idle_from = if sgnn_obs::enabled() { Some(Instant::now()) } else { None };
        // Wait for a job generation we haven't inspected, then try to buy
        // a participation permit while still holding the slot lock.
        let job_ptr = {
            let mut s = pool.state.lock();
            loop {
                if s.seq != seen {
                    seen = s.seq;
                    if let Some(ptr) = s.job {
                        let job = unsafe { &*ptr };
                        let got_permit = job
                            .permits
                            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |p| {
                                p.checked_sub(1)
                            })
                            .is_ok();
                        if got_permit {
                            s.attached += 1;
                            break ptr;
                        }
                    }
                }
                pool.work_ready.wait(&mut s);
            }
        };
        if let Some(t0) = idle_from {
            POOL_IDLE_NS.add(t0.elapsed().as_nanos() as u64);
        }
        let job = unsafe { &*job_ptr };
        let executed = execute_chunks(job);
        if executed > 0 && sgnn_obs::enabled() {
            // Every chunk a pool worker runs was "stolen" from the
            // submitting thread's sequential share.
            POOL_STEALS.add(executed);
            sgnn_obs::record_worker_chunks(worker, executed);
        }
        let mut s = pool.state.lock();
        s.attached -= 1;
        pool.work_done.notify_all();
    }
}

/// Claims and runs chunks until the counter is exhausted, returning how
/// many this thread executed. Chunk panics are captured (the first
/// payload is kept) so the job always drains; the submitter re-raises.
fn execute_chunks(job: &Job) -> u64 {
    let run = unsafe { &*job.run };
    let mut executed = 0u64;
    loop {
        let i = job.next.fetch_add(1, Ordering::Relaxed);
        if i >= job.num_chunks {
            break;
        }
        if let Err(payload) = catch_unwind(AssertUnwindSafe(|| run(i))) {
            let mut slot = job.panic_payload.lock();
            if slot.is_none() {
                *slot = Some(payload);
            }
        }
        job.done.fetch_add(1, Ordering::Release);
        executed += 1;
    }
    executed
}

/// Dispatches `num_chunks` invocations of `run` across the pool with up to
/// `participants` threads (this one included). Blocks until every chunk
/// has executed and all workers have let go of the job.
fn run_job(num_chunks: usize, participants: usize, run: &(dyn Fn(usize) + Sync)) {
    debug_assert!(num_chunks > 0 && participants > 1);
    let submit_from = if sgnn_obs::enabled() {
        POOL_DISPATCHES.incr();
        POOL_CHUNKS.add(num_chunks as u64);
        // Register the worker-side counters too (adding zero), so every
        // report that shows dispatches also shows the steal/idle story —
        // including a truthful zero on hosts where the pool has no
        // workers and the submitter runs every chunk itself.
        POOL_STEALS.add(0);
        POOL_IDLE_NS.add(0);
        Some(Instant::now())
    } else {
        None
    };
    let pool = pool();
    let _submit = pool.submit.lock();
    let job = Job {
        run: unsafe {
            std::mem::transmute::<*const (dyn Fn(usize) + Sync), *const (dyn Fn(usize) + Sync)>(
                run as *const _,
            )
        },
        next: AtomicUsize::new(0),
        done: AtomicUsize::new(0),
        num_chunks,
        permits: AtomicUsize::new(participants.saturating_sub(1).min(pool.workers)),
        panic_payload: Mutex::new(None),
    };
    {
        let mut s = pool.state.lock();
        s.seq += 1;
        s.job = Some(&job as *const Job);
    }
    pool.work_ready.notify_all();

    // The submitter is participant zero; nested kernels inside `run` must
    // not re-enter the pool.
    let was = IN_POOL_CONTEXT.with(|f| f.replace(true));
    execute_chunks(&job);
    IN_POOL_CONTEXT.with(|f| f.set(was));

    {
        let mut s = pool.state.lock();
        // Retract the job so late-waking workers cannot attach; then wait
        // for stragglers still executing claimed chunks.
        s.job = None;
        while s.attached > 0 || job.done.load(Ordering::Acquire) < job.num_chunks {
            pool.work_done.wait(&mut s);
        }
    }
    if let Some(t0) = submit_from {
        POOL_SUBMIT_NS.add(t0.elapsed().as_nanos() as u64);
    }
    let payload = job.panic_payload.lock().take();
    if let Some(payload) = payload {
        resume_unwind(payload);
    }
}

/// Chunks-per-participant oversubscription: enough granularity for the
/// atomic counter to rebalance when chunk costs are skewed, small enough
/// that per-chunk overhead stays invisible.
const OVERSUB: usize = 4;

/// Effective participant count for a job with `max_useful` parallel units.
fn participants_for(max_useful: usize) -> usize {
    if IN_POOL_CONTEXT.with(|f| f.get()) {
        return 1;
    }
    num_threads().min(max_useful).max(1)
}

// ---------------------------------------------------------------------------
// Uniform partitioning
// ---------------------------------------------------------------------------

/// Runs `body(start, end)` over disjoint chunks of `0..len` on the pool.
///
/// The closure receives half-open ranges; chunk boundaries depend only on
/// `len`, so results are identical at any thread count. Falls back to a
/// direct call when `len` is small or one thread is configured, so callers
/// never pay dispatch cost on tiny inputs.
pub fn par_chunks<F>(len: usize, min_chunk: usize, body: F)
where
    F: Fn(usize, usize) + Sync,
{
    let threads = participants_for(len / min_chunk.max(1));
    if threads <= 1 || len == 0 {
        body(0, len);
        return;
    }
    let chunks = (threads * OVERSUB).min(len / min_chunk.max(1)).max(1);
    let chunk = len.div_ceil(chunks);
    run_job(chunks, threads, &|i| {
        let start = i * chunk;
        let end = ((i + 1) * chunk).min(len);
        if start < end {
            body(start, end);
        }
    });
}

/// Splits `data` into disjoint mutable row chunks and runs
/// `body(first_row, rows_slice)` in parallel.
///
/// This is the write-side companion of [`par_chunks`]: output buffers are
/// partitioned by row so each worker owns its slice exclusively.
pub fn par_rows_mut<T, F>(data: &mut [T], row_width: usize, min_rows: usize, body: F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    assert!(row_width > 0, "row_width must be positive");
    assert_eq!(data.len() % row_width, 0, "buffer not a whole number of rows");
    let rows = data.len() / row_width;
    let threads = participants_for(rows / min_rows.max(1));
    if threads <= 1 || rows == 0 {
        body(0, data);
        return;
    }
    let chunks = (threads * OVERSUB).min(rows / min_rows.max(1)).max(1);
    let chunk = rows.div_ceil(chunks);
    let base = SendPtr(data.as_mut_ptr());
    run_job(chunks, threads, &|i| {
        let start = i * chunk;
        let end = ((i + 1) * chunk).min(rows);
        if start < end {
            // Disjoint by construction: chunk i owns rows [start, end).
            let slice = unsafe {
                std::slice::from_raw_parts_mut(
                    base.get().add(start * row_width),
                    (end - start) * row_width,
                )
            };
            body(start, slice);
        }
    });
}

/// Maps `f` over `0..num` task indices on the pool and collects the
/// results **in index order**.
///
/// This is the collect-side companion of [`par_chunks`], built for
/// producers whose per-task output is an owned value (the data-parallel
/// samplers: one sampled sub-frontier per target chunk). Each index is
/// claimed exactly once through the pool's work-stealing counter and
/// writes its own result slot, so the returned vector is independent of
/// execution order and thread count; with one thread configured (or a
/// single task) it degenerates to a plain sequential map with no
/// dispatch cost.
pub fn par_map_chunks<T, F>(num: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let threads = participants_for(num);
    if threads <= 1 || num <= 1 {
        return (0..num).map(f).collect();
    }
    let mut slots: Vec<Option<T>> = Vec::with_capacity(num);
    slots.resize_with(num, || None);
    let base = SendPtr(slots.as_mut_ptr());
    run_job(num, threads, &|i| {
        // Sound: the counter hands out each index once, so slot writes
        // are disjoint, and run_job joins before `slots` is touched again.
        unsafe { *base.get().add(i) = Some(f(i)) };
    });
    slots.into_iter().map(|s| s.expect("pool executed every task")).collect()
}

// ---------------------------------------------------------------------------
// Balanced (prefix-sum) partitioning
// ---------------------------------------------------------------------------

/// Row index where balanced chunk `j` of `chunks` begins, given the
/// prefix-sum `prefix` of per-row weights (`prefix.len() = rows + 1`,
/// `prefix[0] = 0`; a CSR `indptr` is exactly such an array).
///
/// Boundaries are non-decreasing in `j`, `boundary(.., 0) = 0`, and
/// `boundary(.., chunks) = rows`, so chunks tile the row range exactly;
/// individual chunks may be empty when one heavy row spans several ideal
/// splits.
pub fn balanced_boundary(prefix: &[usize], chunks: usize, j: usize) -> usize {
    let rows = prefix.len() - 1;
    if j == 0 {
        return 0;
    }
    if j >= chunks {
        return rows;
    }
    let total = prefix[rows];
    if total == 0 {
        // No weight anywhere: fall back to uniform row split.
        return (rows * j) / chunks;
    }
    let target = ((total as u128 * j as u128) / chunks as u128) as usize;
    prefix.partition_point(|&p| p < target).min(rows)
}

/// Runs `body(start_row, end_row)` over row chunks whose **weight** (per
/// the prefix-sum `prefix`) is as equal as possible — the partitioning for
/// CSR kernels on skewed degree distributions. `min_weight` is the minimum
/// total weight that justifies a second thread.
pub fn par_balanced_chunks<F>(prefix: &[usize], min_weight: usize, body: F)
where
    F: Fn(usize, usize) + Sync,
{
    let rows = prefix.len().saturating_sub(1);
    let total = if rows == 0 { 0 } else { prefix[rows] };
    let threads = participants_for(total / min_weight.max(1));
    if threads <= 1 || rows == 0 {
        body(0, rows);
        return;
    }
    let chunks = (threads * OVERSUB).min(rows).max(1);
    run_job(chunks, threads, &|i| {
        let start = balanced_boundary(prefix, chunks, i);
        let end = balanced_boundary(prefix, chunks, i + 1);
        if start < end {
            body(start, end);
        }
    });
}

/// Write-side companion of [`par_balanced_chunks`]: splits `data` into
/// weight-balanced disjoint row slices and runs `body(first_row, rows)`.
///
/// `prefix` must describe exactly `data.len() / row_width` rows.
pub fn par_balanced_rows_mut<T, F>(
    data: &mut [T],
    row_width: usize,
    prefix: &[usize],
    min_weight: usize,
    body: F,
) where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    assert!(row_width > 0, "row_width must be positive");
    assert_eq!(data.len() % row_width, 0, "buffer not a whole number of rows");
    let rows = data.len() / row_width;
    assert_eq!(prefix.len(), rows + 1, "prefix must cover every row");
    let total = if rows == 0 { 0 } else { prefix[rows] };
    let threads = participants_for(total / min_weight.max(1));
    if threads <= 1 || rows == 0 {
        body(0, data);
        return;
    }
    let chunks = (threads * OVERSUB).min(rows).max(1);
    let base = SendPtr(data.as_mut_ptr());
    run_job(chunks, threads, &|i| {
        let start = balanced_boundary(prefix, chunks, i);
        let end = balanced_boundary(prefix, chunks, i + 1);
        if start < end {
            let slice = unsafe {
                std::slice::from_raw_parts_mut(
                    base.get().add(start * row_width),
                    (end - start) * row_width,
                )
            };
            body(start, slice);
        }
    });
}

/// Raw-pointer wrapper so chunk closures can carve disjoint `&mut` slices
/// out of one buffer. Soundness argument: chunk index ↦ row range is
/// injective and the dispatch joins before the buffer borrow ends.
struct SendPtr<T>(*mut T);

// Manual impls: derive would bound `T: Copy`, but the wrapper is a pointer.
impl<T> Clone for SendPtr<T> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<T> Copy for SendPtr<T> {}

impl<T> SendPtr<T> {
    /// Accessor (rather than field access) so closures capture the whole
    /// wrapper — edition-2021 disjoint capture would otherwise grab the
    /// bare `*mut T`, which is not `Sync`.
    fn get(self) -> *mut T {
        self.0
    }
}

unsafe impl<T: Send> Send for SendPtr<T> {}
unsafe impl<T: Send> Sync for SendPtr<T> {}

#[cfg(test)]
mod tests {
    use super::*;

    /// Tests that toggle or depend on the global thread count must not
    /// interleave (the test harness runs tests concurrently).
    fn threads_guard() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
        LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn par_chunks_covers_every_index_once() {
        use std::sync::Mutex;
        let hits = Mutex::new(vec![0u32; 1000]);
        par_chunks(1000, 1, |s, e| {
            let mut h = hits.lock().unwrap();
            for i in s..e {
                h[i] += 1;
            }
        });
        assert!(hits.lock().unwrap().iter().all(|&c| c == 1));
    }

    #[test]
    fn par_chunks_empty_is_noop() {
        par_chunks(0, 1, |s, e| assert_eq!(s, e));
    }

    #[test]
    fn par_rows_mut_partitions_by_row() {
        let mut buf = vec![0f32; 7 * 3];
        par_rows_mut(&mut buf, 3, 1, |first_row, rows| {
            for (i, r) in rows.chunks_mut(3).enumerate() {
                let row = first_row + i;
                for v in r.iter_mut() {
                    *v = row as f32;
                }
            }
        });
        for (row, chunk) in buf.chunks(3).enumerate() {
            assert!(chunk.iter().all(|&v| v == row as f32));
        }
    }

    #[test]
    fn set_threads_round_trip() {
        let _g = threads_guard();
        set_threads(2);
        assert_eq!(num_threads(), 2);
        set_threads(0);
        assert!(num_threads() >= 1);
    }

    #[test]
    fn balanced_boundaries_tile_rows_exactly() {
        // Skewed prefix: one hub row with weight 1000 among unit rows.
        let mut prefix = vec![0usize];
        for r in 0..50 {
            let w = if r == 7 { 1000 } else { 1 };
            prefix.push(prefix.last().unwrap() + w);
        }
        for chunks in 1..12 {
            let mut covered = [0u32; 50];
            for j in 0..chunks {
                let s = balanced_boundary(&prefix, chunks, j);
                let e = balanced_boundary(&prefix, chunks, j + 1);
                assert!(s <= e);
                for c in covered.iter_mut().take(e).skip(s) {
                    *c += 1;
                }
            }
            assert!(covered.iter().all(|&c| c == 1), "chunks={chunks}");
        }
    }

    #[test]
    fn balanced_zero_weight_falls_back_to_uniform() {
        let prefix = vec![0usize; 11]; // 10 rows, no weight
        let mut covered = [0u32; 10];
        for j in 0..4 {
            let s = balanced_boundary(&prefix, 4, j);
            let e = balanced_boundary(&prefix, 4, j + 1);
            for c in covered.iter_mut().take(e).skip(s) {
                *c += 1;
            }
        }
        assert!(covered.iter().all(|&c| c == 1));
    }

    #[test]
    fn par_balanced_rows_mut_covers_with_hub_rows() {
        // 64 rows, row 3 carries half the total weight.
        let mut prefix = vec![0usize];
        for r in 0..64 {
            let w = if r == 3 { 640 } else { 10 };
            prefix.push(prefix.last().unwrap() + w);
        }
        let mut buf = vec![0u32; 64 * 2];
        par_balanced_rows_mut(&mut buf, 2, &prefix, 1, |first_row, rows| {
            for (i, r) in rows.chunks_mut(2).enumerate() {
                r[0] += 1;
                r[1] = (first_row + i) as u32;
            }
        });
        for (row, chunk) in buf.chunks(2).enumerate() {
            assert_eq!(chunk[0], 1, "row {row} visited once");
            assert_eq!(chunk[1], row as u32);
        }
    }

    #[test]
    fn par_map_chunks_returns_results_in_index_order() {
        let out = par_map_chunks(257, |i| i * i);
        assert_eq!(out.len(), 257);
        for (i, v) in out.iter().enumerate() {
            assert_eq!(*v, i * i);
        }
        // Degenerate sizes.
        assert_eq!(par_map_chunks(0, |i| i), Vec::<usize>::new());
        assert_eq!(par_map_chunks(1, |i| i + 7), vec![7]);
    }

    #[test]
    fn par_map_chunks_is_thread_count_invariant() {
        let _g = threads_guard();
        set_threads(1);
        let single: Vec<u64> = par_map_chunks(100, |i| (i as u64).wrapping_mul(0x9E37));
        set_threads(0);
        let pooled: Vec<u64> = par_map_chunks(100, |i| (i as u64).wrapping_mul(0x9E37));
        assert_eq!(single, pooled);
    }

    #[test]
    fn nested_parallel_calls_run_inline() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let outer = AtomicUsize::new(0);
        par_chunks(64, 1, |s, e| {
            // Nested kernel: must complete inline without deadlocking.
            let inner = AtomicUsize::new(0);
            par_chunks(16, 1, |is, ie| {
                inner.fetch_add(ie - is, Ordering::Relaxed);
            });
            assert_eq!(inner.load(Ordering::Relaxed), 16);
            outer.fetch_add(e - s, Ordering::Relaxed);
        });
        assert_eq!(outer.load(Ordering::Relaxed), 64);
    }

    #[test]
    fn concurrent_submitters_all_complete() {
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for _ in 0..25 {
                        let total = std::sync::atomic::AtomicUsize::new(0);
                        par_chunks(512, 1, |a, b| {
                            total.fetch_add(b - a, Ordering::Relaxed);
                        });
                        assert_eq!(total.load(Ordering::Relaxed), 512);
                    }
                });
            }
        });
    }

    #[test]
    #[should_panic(expected = "chunk zero exploded")]
    fn worker_panic_propagates_to_submitter_with_payload() {
        let _g = threads_guard();
        set_threads(0);
        if num_threads() < 2 {
            // Single-core host: the pool never engages, so the dispatch
            // path under test does not exist here.
            panic!("chunk zero exploded");
        }
        // The submitter must re-raise the *original* payload — recovery
        // layers above (pipeline restart, fault tests) match on it.
        par_chunks(1024, 1, |s, _| {
            if s == 0 {
                panic!("chunk zero exploded");
            }
        });
    }

    #[test]
    fn single_thread_override_runs_inline() {
        let _g = threads_guard();
        set_threads(1);
        let calls = AtomicUsize::new(0);
        // With one thread the body gets the whole range in one call.
        par_chunks(100, 1, |s, e| {
            assert_eq!((s, e), (0, 100));
            calls.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(calls.load(Ordering::Relaxed), 1);
        set_threads(0);
    }
}
