//! Chunked parallel iteration built on `crossbeam::scope`.
//!
//! The workspace deliberately avoids a full task-scheduling runtime: every
//! parallel kernel in `sgnn` is a row-partitioned loop over a flat buffer,
//! which scoped threads express directly and with zero steady-state
//! allocation beyond the thread stacks.

use std::sync::atomic::{AtomicUsize, Ordering};

/// Returns the number of worker threads to use for parallel kernels.
///
/// Reads the process default (`available_parallelism`) once and caches it.
/// Override globally with [`set_threads`] (useful for benchmarks that want
/// single-threaded baselines).
pub fn num_threads() -> usize {
    let cached = THREADS.load(Ordering::Relaxed);
    if cached != 0 {
        return cached;
    }
    let n = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    THREADS.store(n, Ordering::Relaxed);
    n
}

/// Overrides the worker-thread count used by all parallel kernels.
///
/// Passing `0` resets to the hardware default on next use.
pub fn set_threads(n: usize) {
    THREADS.store(n, Ordering::Relaxed);
}

static THREADS: AtomicUsize = AtomicUsize::new(0);

/// Runs `body(start, end)` over disjoint chunks of `0..len` on worker threads.
///
/// The closure receives half-open ranges; chunks are as equal as possible.
/// Falls back to a direct call when `len` is small or one thread is
/// configured, so callers never pay thread-spawn cost on tiny inputs.
pub fn par_chunks<F>(len: usize, min_chunk: usize, body: F)
where
    F: Fn(usize, usize) + Sync,
{
    let threads = num_threads().min(len / min_chunk.max(1)).max(1);
    if threads <= 1 || len == 0 {
        body(0, len);
        return;
    }
    let chunk = len.div_ceil(threads);
    crossbeam::scope(|s| {
        for t in 0..threads {
            let start = t * chunk;
            let end = ((t + 1) * chunk).min(len);
            if start >= end {
                break;
            }
            let body = &body;
            s.spawn(move |_| body(start, end));
        }
    })
    .expect("parallel worker panicked");
}

/// Splits `data` into disjoint mutable chunks of `chunk_rows * row_width`
/// elements and runs `body(chunk_index, first_row, rows_slice)` in parallel.
///
/// This is the write-side companion of [`par_chunks`]: output buffers are
/// partitioned by row so each worker owns its slice exclusively.
pub fn par_rows_mut<T, F>(data: &mut [T], row_width: usize, min_rows: usize, body: F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    assert!(row_width > 0, "row_width must be positive");
    assert_eq!(data.len() % row_width, 0, "buffer not a whole number of rows");
    let rows = data.len() / row_width;
    let threads = num_threads().min(rows / min_rows.max(1)).max(1);
    if threads <= 1 || rows == 0 {
        body(0, data);
        return;
    }
    let chunk_rows = rows.div_ceil(threads);
    crossbeam::scope(|s| {
        let mut rest = data;
        let mut row0 = 0usize;
        while !rest.is_empty() {
            let take = (chunk_rows * row_width).min(rest.len());
            let (head, tail) = rest.split_at_mut(take);
            rest = tail;
            let body = &body;
            let first_row = row0;
            s.spawn(move |_| body(first_row, head));
            row0 += take / row_width;
        }
    })
    .expect("parallel worker panicked");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn par_chunks_covers_every_index_once() {
        use std::sync::Mutex;
        let hits = Mutex::new(vec![0u32; 1000]);
        par_chunks(1000, 1, |s, e| {
            let mut h = hits.lock().unwrap();
            for i in s..e {
                h[i] += 1;
            }
        });
        assert!(hits.lock().unwrap().iter().all(|&c| c == 1));
    }

    #[test]
    fn par_chunks_empty_is_noop() {
        par_chunks(0, 1, |s, e| assert_eq!(s, e));
    }

    #[test]
    fn par_rows_mut_partitions_by_row() {
        let mut buf = vec![0f32; 7 * 3];
        par_rows_mut(&mut buf, 3, 1, |first_row, rows| {
            for (i, r) in rows.chunks_mut(3).enumerate() {
                let row = first_row + i;
                for v in r.iter_mut() {
                    *v = row as f32;
                }
            }
        });
        for (row, chunk) in buf.chunks(3).enumerate() {
            assert!(chunk.iter().all(|&v| v == row as f32));
        }
    }

    #[test]
    fn set_threads_round_trip() {
        set_threads(2);
        assert_eq!(num_threads(), 2);
        set_threads(0);
        assert!(num_threads() >= 1);
    }
}
