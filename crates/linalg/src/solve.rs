//! Iterative solvers for symmetric positive-definite systems.
//!
//! Implicit GNNs (survey §3.2.3) obtain node representations as the solution
//! of an equilibrium `(I - γ A) Z = X`; when `γ < 1/λ_max(A)` the system is
//! SPD and conjugate gradient converges quickly. The solver operates through
//! [`MatVecF64`](crate::eigen::MatVecF64) so large sparse graph operators
//! never materialize.

use crate::eigen::MatVecF64;
use crate::vecops;
use crate::{LinalgError, Result};

/// Outcome of a conjugate-gradient solve.
#[derive(Debug, Clone)]
pub struct CgResult {
    /// Solution vector.
    pub x: Vec<f64>,
    /// Iterations performed.
    pub iterations: usize,
    /// Final residual norm `‖b − A x‖₂`.
    pub residual: f64,
}

/// Solves `A x = b` for SPD `A` by conjugate gradient.
///
/// Starts from `x = 0`. Converges when the residual norm drops below
/// `tol * ‖b‖₂` or errs after `max_iter` iterations.
pub fn conjugate_gradient<Op: MatVecF64>(
    op: &Op,
    b: &[f64],
    tol: f64,
    max_iter: usize,
) -> Result<CgResult> {
    let n = op.dim();
    assert_eq!(b.len(), n, "rhs length must equal operator dim");
    let bnorm = vecops::norm2_64(b);
    if bnorm == 0.0 {
        return Ok(CgResult { x: vec![0.0; n], iterations: 0, residual: 0.0 });
    }
    let threshold = tol * bnorm;
    let mut x = vec![0f64; n];
    let mut r = b.to_vec();
    let mut p = r.clone();
    let mut ap = vec![0f64; n];
    let mut rs_old = vecops::dot64(&r, &r);
    for it in 0..max_iter {
        if rs_old.sqrt() <= threshold {
            return Ok(CgResult { x, iterations: it, residual: rs_old.sqrt() });
        }
        ap.iter_mut().for_each(|v| *v = 0.0);
        op.matvec(&p, &mut ap);
        let denom = vecops::dot64(&p, &ap);
        if denom <= 0.0 {
            // Operator is not SPD along p; bail out with what we have.
            return Err(LinalgError::NoConvergence {
                routine: "conjugate_gradient(non-SPD direction)",
                iterations: it,
            });
        }
        let alpha = rs_old / denom;
        vecops::axpy64(alpha, &p, &mut x);
        vecops::axpy64(-alpha, &ap, &mut r);
        let rs_new = vecops::dot64(&r, &r);
        let beta = rs_new / rs_old;
        for i in 0..n {
            p[i] = r[i] + beta * p[i];
        }
        rs_old = rs_new;
    }
    if rs_old.sqrt() <= threshold {
        Ok(CgResult { x, iterations: max_iter, residual: rs_old.sqrt() })
    } else {
        Err(LinalgError::NoConvergence { routine: "conjugate_gradient", iterations: max_iter })
    }
}

/// Fixed-point (Picard) iteration `z ← γ·A z + x` until `‖Δz‖₂ < tol` or
/// the iteration budget is exhausted.
///
/// This is the reference solver implicit GNNs (MGNNI-style) use at training
/// time; experiment E8 compares its iteration count against closed-form
/// spectral solves.
pub fn fixed_point<Op: MatVecF64>(
    op: &Op,
    gamma: f64,
    x: &[f64],
    tol: f64,
    max_iter: usize,
) -> Result<CgResult> {
    let n = op.dim();
    assert_eq!(x.len(), n);
    let mut z = x.to_vec();
    let mut az = vec![0f64; n];
    for it in 0..max_iter {
        az.iter_mut().for_each(|v| *v = 0.0);
        op.matvec(&z, &mut az);
        let mut delta = 0f64;
        for i in 0..n {
            let znew = gamma * az[i] + x[i];
            let d = znew - z[i];
            delta += d * d;
            z[i] = znew;
        }
        if delta.sqrt() < tol {
            // Residual of the equilibrium equation.
            az.iter_mut().for_each(|v| *v = 0.0);
            op.matvec(&z, &mut az);
            let mut res = 0f64;
            for i in 0..n {
                let d = z[i] - gamma * az[i] - x[i];
                res += d * d;
            }
            return Ok(CgResult { x: z, iterations: it + 1, residual: res.sqrt() });
        }
    }
    Err(LinalgError::NoConvergence { routine: "fixed_point", iterations: max_iter })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eigen::DenseSymOp;

    #[test]
    fn cg_solves_small_spd_system() {
        // A = [[4,1],[1,3]], b = [1,2] → x = [1/11, 7/11].
        let a = vec![4.0, 1.0, 1.0, 3.0];
        let op = DenseSymOp { data: &a, n: 2 };
        let r = conjugate_gradient(&op, &[1.0, 2.0], 1e-12, 100).unwrap();
        assert!((r.x[0] - 1.0 / 11.0).abs() < 1e-9);
        assert!((r.x[1] - 7.0 / 11.0).abs() < 1e-9);
        assert!(r.iterations <= 2 + 1, "CG on 2x2 needs ≤2 iters, got {}", r.iterations);
    }

    #[test]
    fn cg_zero_rhs_returns_zero() {
        let a = vec![2.0, 0.0, 0.0, 2.0];
        let op = DenseSymOp { data: &a, n: 2 };
        let r = conjugate_gradient(&op, &[0.0, 0.0], 1e-10, 10).unwrap();
        assert_eq!(r.x, vec![0.0, 0.0]);
        assert_eq!(r.iterations, 0);
    }

    #[test]
    fn cg_rejects_indefinite_matrix() {
        let a = vec![1.0, 0.0, 0.0, -1.0];
        let op = DenseSymOp { data: &a, n: 2 };
        // With b having mass on the negative eigendirection, CG must detect
        // non-SPD curvature.
        let err = conjugate_gradient(&op, &[0.0, 1.0], 1e-10, 10);
        assert!(err.is_err());
    }

    #[test]
    fn fixed_point_matches_direct_solution() {
        // Solve z = 0.5*A z + x with A = [[0,1],[1,0]]:
        // z0 = 0.5 z1 + x0, z1 = 0.5 z0 + x1 → z = (I - 0.5A)^{-1} x.
        let a = vec![0.0, 1.0, 1.0, 0.0];
        let op = DenseSymOp { data: &a, n: 2 };
        let x = [1.0, 0.0];
        let r = fixed_point(&op, 0.5, &x, 1e-12, 1000).unwrap();
        // (I-0.5A)^{-1} = 1/(1-0.25) [[1,0.5],[0.5,1]] → z = [4/3, 2/3].
        assert!((r.x[0] - 4.0 / 3.0).abs() < 1e-8);
        assert!((r.x[1] - 2.0 / 3.0).abs() < 1e-8);
        assert!(r.residual < 1e-8);
    }

    #[test]
    fn fixed_point_diverges_when_contraction_fails() {
        let a = vec![0.0, 1.0, 1.0, 0.0]; // spectral radius 1
        let op = DenseSymOp { data: &a, n: 2 };
        let err = fixed_point(&op, 1.5, &[1.0, 1.0], 1e-10, 50);
        assert!(err.is_err());
    }
}
