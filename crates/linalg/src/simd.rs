//! Explicit-SIMD micro-kernels behind the `simd` feature flag.
//!
//! Every kernel here is an element-wise (lane-independent) operation or an
//! edge-ordered gather whose per-element operation sequence is *identical*
//! to the scalar reference: multiplies and adds are emitted separately
//! (never fused into FMA, which rounds once instead of twice), lanes never
//! exchange values, and accumulation order over edges is preserved. That
//! makes every f32/f64 kernel in this module **bitwise identical** to its
//! scalar fallback — the DESIGN.md §4–§8 determinism contracts hold with
//! the feature on or off, at any thread count.
//!
//! Dispatch: with the `simd` feature enabled, x86_64 picks AVX2 when the
//! CPU has it (runtime-detected once, cached in an atomic) and aarch64
//! uses NEON (baseline on that architecture); everything else — and every
//! build without the feature — runs the scalar loops below, which are the
//! exact kernels the workspace shipped before this module existed. The
//! quantized kernels ([`axpy_i8`], [`axpy_f16`]) follow the same rule:
//! integer→float conversions are exact in both paths, so quantized
//! inference is also bitwise reproducible across backends (its *error* is
//! relative to f32, not across machines; see `quant`).

/// Name of the backend the f32 kernels will actually run on — used by
/// `benchkernels` to attribute speedups to lanes honestly.
pub fn active_backend() -> &'static str {
    #[cfg(all(feature = "simd", target_arch = "x86_64"))]
    {
        if x86::avx2() {
            return "avx2";
        }
        "scalar(no-avx2)"
    }
    #[cfg(all(feature = "simd", target_arch = "aarch64"))]
    {
        return "neon";
    }
    #[cfg(not(all(feature = "simd", any(target_arch = "x86_64", target_arch = "aarch64"))))]
    {
        "scalar"
    }
}

/// f32 lanes per vector op on the active backend (1 = scalar).
pub fn f32_lanes() -> usize {
    match active_backend() {
        "avx2" => 8,
        "neon" => 4,
        _ => 1,
    }
}

// ---------------------------------------------------------------------------
// Element-wise kernels (used by vecops and the dense GEMM)
// ---------------------------------------------------------------------------

/// `y += alpha * x` (f32). Bitwise identical across backends.
#[inline]
pub fn axpy_f32(alpha: f32, x: &[f32], y: &mut [f32]) {
    debug_assert_eq!(x.len(), y.len());
    #[cfg(all(feature = "simd", target_arch = "x86_64"))]
    if x86::avx2() {
        return unsafe { x86::axpy_f32_avx2(alpha, x, y) };
    }
    #[cfg(all(feature = "simd", target_arch = "aarch64"))]
    return neon::axpy_f32_neon(alpha, x, y);
    #[allow(unreachable_code)]
    scalar_axpy_f32(alpha, x, y)
}

/// `y += x` (f32). Bitwise identical across backends.
#[inline]
pub fn add_f32(x: &[f32], y: &mut [f32]) {
    debug_assert_eq!(x.len(), y.len());
    #[cfg(all(feature = "simd", target_arch = "x86_64"))]
    if x86::avx2() {
        return unsafe { x86::add_f32_avx2(x, y) };
    }
    #[cfg(all(feature = "simd", target_arch = "aarch64"))]
    return neon::add_f32_neon(x, y);
    #[allow(unreachable_code)]
    for (o, s) in y.iter_mut().zip(x) {
        *o += *s;
    }
}

/// `y += alpha * x` (f64). Bitwise identical across backends.
#[inline]
pub fn axpy_f64(alpha: f64, x: &[f64], y: &mut [f64]) {
    debug_assert_eq!(x.len(), y.len());
    #[cfg(all(feature = "simd", target_arch = "x86_64"))]
    if x86::avx2() {
        return unsafe { x86::axpy_f64_avx2(alpha, x, y) };
    }
    #[cfg(all(feature = "simd", target_arch = "aarch64"))]
    return neon::axpy_f64_neon(alpha, x, y);
    #[allow(unreachable_code)]
    scalar_axpy_f64(alpha, x, y)
}

/// `x *= alpha` in place (f32). Bitwise identical across backends.
#[inline]
pub fn scale_f32(x: &mut [f32], alpha: f32) {
    #[cfg(all(feature = "simd", target_arch = "x86_64"))]
    if x86::avx2() {
        return unsafe { x86::scale_f32_avx2(x, alpha) };
    }
    #[cfg(all(feature = "simd", target_arch = "aarch64"))]
    return neon::scale_f32_neon(x, alpha);
    #[allow(unreachable_code)]
    for v in x.iter_mut() {
        *v *= alpha;
    }
}

/// `y += alpha * (x[i] as f32)` for int8 payloads (quantized inference:
/// the i8→f32 conversion is exact, so backends agree bitwise).
#[inline]
pub fn axpy_i8(alpha: f32, x: &[i8], y: &mut [f32]) {
    debug_assert_eq!(x.len(), y.len());
    #[cfg(all(feature = "simd", target_arch = "x86_64"))]
    if x86::avx2() {
        return unsafe { x86::axpy_i8_avx2(alpha, x, y) };
    }
    #[allow(unreachable_code)]
    for (o, &q) in y.iter_mut().zip(x) {
        *o += alpha * q as f32;
    }
}

/// `y += alpha * f16_to_f32(x[i])` for IEEE-754 binary16 payloads stored
/// as `u16` bits (the conversion is exact in both paths).
#[inline]
pub fn axpy_f16(alpha: f32, x: &[u16], y: &mut [f32]) {
    debug_assert_eq!(x.len(), y.len());
    #[cfg(all(feature = "simd", target_arch = "x86_64"))]
    if x86::f16c() {
        return unsafe { x86::axpy_f16_f16c(alpha, x, y) };
    }
    #[allow(unreachable_code)]
    for (o, &h) in y.iter_mut().zip(x) {
        *o += alpha * crate::quant::f16_to_f32(h);
    }
}

#[inline]
fn scalar_axpy_f32(alpha: f32, x: &[f32], y: &mut [f32]) {
    for i in 0..x.len() {
        y[i] += alpha * x[i];
    }
}

#[inline]
fn scalar_axpy_f64(alpha: f64, x: &[f64], y: &mut [f64]) {
    for i in 0..x.len() {
        y[i] += alpha * x[i];
    }
}

// ---------------------------------------------------------------------------
// Row-gather kernels (the SpMM inner loop)
// ---------------------------------------------------------------------------
//
// One call aggregates one destination row's neighbors over one feature
// column window: `out[j] = Σ_e w_e · x[idx_e · d + col_off + j]`, edges in
// CSR order, initialized from the *first* edge (matching the production
// `rows_weighted`/`rows_unweighted` semantics exactly — no zero-init pass,
// so `-0.0` sources reproduce too). The SIMD versions hold the whole
// column window in vector registers across the edge loop, so per edge the
// only memory traffic is the gathered source row; dispatch happens once
// per (row, window), never per edge.

/// Unweighted gather-accumulate into `out` (a `tw`-wide column window).
/// `idx` must be non-empty; callers zero-fill empty rows themselves.
#[inline]
pub fn row_gather_unweighted(out: &mut [f32], xd: &[f32], d: usize, col_off: usize, idx: &[u32]) {
    debug_assert!(!idx.is_empty());
    debug_assert!(col_off + out.len() <= d);
    #[cfg(all(feature = "simd", target_arch = "x86_64"))]
    if x86::avx2() {
        return unsafe { x86::row_gather_avx2(out, xd, d, col_off, idx, None) };
    }
    #[allow(unreachable_code)]
    scalar_row_gather(out, xd, d, col_off, idx, None)
}

/// Weighted gather-accumulate; `ws` is the row's edge-weight slice,
/// parallel to `idx`.
#[inline]
pub fn row_gather_weighted(
    out: &mut [f32],
    xd: &[f32],
    d: usize,
    col_off: usize,
    idx: &[u32],
    ws: &[f32],
) {
    debug_assert!(!idx.is_empty());
    debug_assert_eq!(idx.len(), ws.len());
    debug_assert!(col_off + out.len() <= d);
    #[cfg(all(feature = "simd", target_arch = "x86_64"))]
    if x86::avx2() {
        return unsafe { x86::row_gather_avx2(out, xd, d, col_off, idx, Some(ws)) };
    }
    #[allow(unreachable_code)]
    scalar_row_gather(out, xd, d, col_off, idx, Some(ws))
}

/// Scalar reference for the gather kernels: edge-outer, exactly the
/// production `rows_*` loop restricted to a column window.
fn scalar_row_gather(
    out: &mut [f32],
    xd: &[f32],
    d: usize,
    col_off: usize,
    idx: &[u32],
    ws: Option<&[f32]>,
) {
    let tw = out.len();
    let src0 = &xd[idx[0] as usize * d + col_off..][..tw];
    match ws {
        None => {
            out.copy_from_slice(src0);
            for &v in &idx[1..] {
                let src = &xd[v as usize * d + col_off..][..tw];
                for (o, s) in out.iter_mut().zip(src) {
                    *o += *s;
                }
            }
        }
        Some(ws) => {
            let w0 = ws[0];
            for (o, s) in out.iter_mut().zip(src0) {
                *o = w0 * *s;
            }
            for (e, &v) in idx.iter().enumerate().skip(1) {
                let w = ws[e];
                let src = &xd[v as usize * d + col_off..][..tw];
                for (o, s) in out.iter_mut().zip(src) {
                    *o += w * *s;
                }
            }
        }
    }
}

/// Quantized-feature gather: `out[j] += Σ_e (w_e · scale[v_e]) ·
/// payload(v_e, j)` with f32 accumulation, edges in CSR order, starting
/// from zeroed `out` (quantized aggregation is toleranced, not bitwise
/// against f32 — but it IS bitwise across backends). `payload` is the
/// int8 view; see [`row_gather_q_f16`] for the f16 twin.
#[inline]
pub fn row_gather_q_i8(
    out: &mut [f32],
    xq: &[i8],
    scales: &[f32],
    d: usize,
    col_off: usize,
    idx: &[u32],
    ws: Option<&[f32]>,
) {
    out.fill(0.0);
    let tw = out.len();
    for (e, &v) in idx.iter().enumerate() {
        let a = scales[v as usize] * ws.map_or(1.0, |w| w[e]);
        axpy_i8(a, &xq[v as usize * d + col_off..][..tw], out);
    }
}

/// f16 twin of [`row_gather_q_i8`] (per-node scales are 1.0 for f16, but
/// the row scale slot is kept so both payloads share one call shape).
#[inline]
pub fn row_gather_q_f16(
    out: &mut [f32],
    xh: &[u16],
    scales: &[f32],
    d: usize,
    col_off: usize,
    idx: &[u32],
    ws: Option<&[f32]>,
) {
    out.fill(0.0);
    let tw = out.len();
    for (e, &v) in idx.iter().enumerate() {
        let a = scales[v as usize] * ws.map_or(1.0, |w| w[e]);
        axpy_f16(a, &xh[v as usize * d + col_off..][..tw], out);
    }
}

// ---------------------------------------------------------------------------
// x86_64 AVX2 backend
// ---------------------------------------------------------------------------

#[cfg(all(feature = "simd", target_arch = "x86_64"))]
mod x86 {
    use std::arch::x86_64::*;
    use std::sync::atomic::{AtomicU8, Ordering};

    /// Cached runtime feature probe: 0 = unknown, 1 = absent, 2 = present.
    macro_rules! probe {
        ($fn_name:ident, $feat:tt) => {
            #[inline]
            pub(super) fn $fn_name() -> bool {
                static STATE: AtomicU8 = AtomicU8::new(0);
                match STATE.load(Ordering::Relaxed) {
                    2 => true,
                    1 => false,
                    _ => {
                        let has = std::arch::is_x86_feature_detected!($feat);
                        STATE.store(if has { 2 } else { 1 }, Ordering::Relaxed);
                        has
                    }
                }
            }
        };
    }

    probe!(avx2, "avx2");
    probe!(f16c_raw, "f16c");

    #[inline]
    pub(super) fn f16c() -> bool {
        // The f16 axpy uses AVX2 register math around the F16C convert.
        avx2() && f16c_raw()
    }

    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn axpy_f32_avx2(alpha: f32, x: &[f32], y: &mut [f32]) {
        let n = x.len();
        let a = _mm256_set1_ps(alpha);
        let mut i = 0;
        while i + 8 <= n {
            let xv = _mm256_loadu_ps(x.as_ptr().add(i));
            let yv = _mm256_loadu_ps(y.as_ptr().add(i));
            // mul then add (no FMA): two roundings, same as scalar.
            let r = _mm256_add_ps(yv, _mm256_mul_ps(a, xv));
            _mm256_storeu_ps(y.as_mut_ptr().add(i), r);
            i += 8;
        }
        while i < n {
            *y.get_unchecked_mut(i) += alpha * *x.get_unchecked(i);
            i += 1;
        }
    }

    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn add_f32_avx2(x: &[f32], y: &mut [f32]) {
        let n = x.len();
        let mut i = 0;
        while i + 8 <= n {
            let xv = _mm256_loadu_ps(x.as_ptr().add(i));
            let yv = _mm256_loadu_ps(y.as_ptr().add(i));
            _mm256_storeu_ps(y.as_mut_ptr().add(i), _mm256_add_ps(yv, xv));
            i += 8;
        }
        while i < n {
            *y.get_unchecked_mut(i) += *x.get_unchecked(i);
            i += 1;
        }
    }

    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn axpy_f64_avx2(alpha: f64, x: &[f64], y: &mut [f64]) {
        let n = x.len();
        let a = _mm256_set1_pd(alpha);
        let mut i = 0;
        while i + 4 <= n {
            let xv = _mm256_loadu_pd(x.as_ptr().add(i));
            let yv = _mm256_loadu_pd(y.as_ptr().add(i));
            let r = _mm256_add_pd(yv, _mm256_mul_pd(a, xv));
            _mm256_storeu_pd(y.as_mut_ptr().add(i), r);
            i += 4;
        }
        while i < n {
            *y.get_unchecked_mut(i) += alpha * *x.get_unchecked(i);
            i += 1;
        }
    }

    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn scale_f32_avx2(x: &mut [f32], alpha: f32) {
        let n = x.len();
        let a = _mm256_set1_ps(alpha);
        let mut i = 0;
        while i + 8 <= n {
            let xv = _mm256_loadu_ps(x.as_ptr().add(i));
            _mm256_storeu_ps(x.as_mut_ptr().add(i), _mm256_mul_ps(xv, a));
            i += 8;
        }
        while i < n {
            *x.get_unchecked_mut(i) *= alpha;
            i += 1;
        }
    }

    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn axpy_i8_avx2(alpha: f32, x: &[i8], y: &mut [f32]) {
        let n = x.len();
        let a = _mm256_set1_ps(alpha);
        let mut i = 0;
        while i + 8 <= n {
            // 8 × i8 → sign-extend to i32 → exact convert to f32.
            let q = _mm_loadl_epi64(x.as_ptr().add(i) as *const __m128i);
            let xi = _mm256_cvtepi8_epi32(q);
            let xv = _mm256_cvtepi32_ps(xi);
            let yv = _mm256_loadu_ps(y.as_ptr().add(i));
            let r = _mm256_add_ps(yv, _mm256_mul_ps(a, xv));
            _mm256_storeu_ps(y.as_mut_ptr().add(i), r);
            i += 8;
        }
        while i < n {
            *y.get_unchecked_mut(i) += alpha * *x.get_unchecked(i) as f32;
            i += 1;
        }
    }

    #[target_feature(enable = "avx2,f16c")]
    pub(super) unsafe fn axpy_f16_f16c(alpha: f32, x: &[u16], y: &mut [f32]) {
        let n = x.len();
        let a = _mm256_set1_ps(alpha);
        let mut i = 0;
        while i + 8 <= n {
            let h = _mm_loadu_si128(x.as_ptr().add(i) as *const __m128i);
            let xv = _mm256_cvtph_ps(h); // exact f16 → f32
            let yv = _mm256_loadu_ps(y.as_ptr().add(i));
            let r = _mm256_add_ps(yv, _mm256_mul_ps(a, xv));
            _mm256_storeu_ps(y.as_mut_ptr().add(i), r);
            i += 8;
        }
        while i < n {
            *y.get_unchecked_mut(i) += alpha * crate::quant::f16_to_f32(*x.get_unchecked(i));
            i += 1;
        }
    }

    /// Register-tiled gather: the column window lives in YMM accumulators
    /// across the whole edge loop. Windows wider than 64 are processed in
    /// 64/32/16/8-column register tiles (each tile re-walks the row's
    /// edge slice, which is L1-resident); the sub-8 tail is scalar.
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn row_gather_avx2(
        out: &mut [f32],
        xd: &[f32],
        d: usize,
        col_off: usize,
        idx: &[u32],
        ws: Option<&[f32]>,
    ) {
        let tw = out.len();
        let mut j = 0;
        while tw - j >= 64 {
            gather_tile::<8>(&mut out[j..j + 64], xd, d, col_off + j, idx, ws);
            j += 64;
        }
        while tw - j >= 32 {
            gather_tile::<4>(&mut out[j..j + 32], xd, d, col_off + j, idx, ws);
            j += 32;
        }
        while tw - j >= 16 {
            gather_tile::<2>(&mut out[j..j + 16], xd, d, col_off + j, idx, ws);
            j += 16;
        }
        while tw - j >= 8 {
            gather_tile::<1>(&mut out[j..j + 8], xd, d, col_off + j, idx, ws);
            j += 8;
        }
        if j < tw {
            super::scalar_row_gather(&mut out[j..], xd, d, col_off + j, idx, ws);
        }
    }

    /// One register tile of `N` YMM accumulators (8·N columns).
    #[target_feature(enable = "avx2")]
    unsafe fn gather_tile<const N: usize>(
        out: &mut [f32],
        xd: &[f32],
        d: usize,
        col: usize,
        idx: &[u32],
        ws: Option<&[f32]>,
    ) {
        debug_assert_eq!(out.len(), 8 * N);
        let mut acc = [_mm256_setzero_ps(); N];
        let base0 = xd.as_ptr().add(idx[0] as usize * d + col);
        match ws {
            None => {
                for (k, a) in acc.iter_mut().enumerate() {
                    *a = _mm256_loadu_ps(base0.add(8 * k));
                }
                for &v in &idx[1..] {
                    let base = xd.as_ptr().add(v as usize * d + col);
                    for (k, a) in acc.iter_mut().enumerate() {
                        *a = _mm256_add_ps(*a, _mm256_loadu_ps(base.add(8 * k)));
                    }
                }
            }
            Some(ws) => {
                let w0 = _mm256_set1_ps(ws[0]);
                for (k, a) in acc.iter_mut().enumerate() {
                    *a = _mm256_mul_ps(w0, _mm256_loadu_ps(base0.add(8 * k)));
                }
                for (e, &v) in idx.iter().enumerate().skip(1) {
                    let w = _mm256_set1_ps(*ws.get_unchecked(e));
                    let base = xd.as_ptr().add(v as usize * d + col);
                    for (k, a) in acc.iter_mut().enumerate() {
                        *a = _mm256_add_ps(*a, _mm256_mul_ps(w, _mm256_loadu_ps(base.add(8 * k))));
                    }
                }
            }
        }
        for (k, a) in acc.iter().enumerate() {
            _mm256_storeu_ps(out.as_mut_ptr().add(8 * k), *a);
        }
    }
}

// ---------------------------------------------------------------------------
// aarch64 NEON backend (element-wise kernels only; gathers use scalar)
// ---------------------------------------------------------------------------

#[cfg(all(feature = "simd", target_arch = "aarch64"))]
mod neon {
    use std::arch::aarch64::*;

    #[inline]
    pub(super) fn axpy_f32_neon(alpha: f32, x: &[f32], y: &mut [f32]) {
        let n = x.len();
        unsafe {
            let a = vdupq_n_f32(alpha);
            let mut i = 0;
            while i + 4 <= n {
                let xv = vld1q_f32(x.as_ptr().add(i));
                let yv = vld1q_f32(y.as_ptr().add(i));
                // vmulq + vaddq, NOT vfmaq: two roundings, same as scalar.
                vst1q_f32(y.as_mut_ptr().add(i), vaddq_f32(yv, vmulq_f32(a, xv)));
                i += 4;
            }
            while i < n {
                *y.get_unchecked_mut(i) += alpha * *x.get_unchecked(i);
                i += 1;
            }
        }
    }

    #[inline]
    pub(super) fn add_f32_neon(x: &[f32], y: &mut [f32]) {
        let n = x.len();
        unsafe {
            let mut i = 0;
            while i + 4 <= n {
                let xv = vld1q_f32(x.as_ptr().add(i));
                let yv = vld1q_f32(y.as_ptr().add(i));
                vst1q_f32(y.as_mut_ptr().add(i), vaddq_f32(yv, xv));
                i += 4;
            }
            while i < n {
                *y.get_unchecked_mut(i) += *x.get_unchecked(i);
                i += 1;
            }
        }
    }

    #[inline]
    pub(super) fn axpy_f64_neon(alpha: f64, x: &[f64], y: &mut [f64]) {
        let n = x.len();
        unsafe {
            let a = vdupq_n_f64(alpha);
            let mut i = 0;
            while i + 2 <= n {
                let xv = vld1q_f64(x.as_ptr().add(i));
                let yv = vld1q_f64(y.as_ptr().add(i));
                vst1q_f64(y.as_mut_ptr().add(i), vaddq_f64(yv, vmulq_f64(a, xv)));
                i += 2;
            }
            while i < n {
                *y.get_unchecked_mut(i) += alpha * *x.get_unchecked(i);
                i += 1;
            }
        }
    }

    #[inline]
    pub(super) fn scale_f32_neon(x: &mut [f32], alpha: f32) {
        let n = x.len();
        unsafe {
            let a = vdupq_n_f32(alpha);
            let mut i = 0;
            while i + 4 <= n {
                let xv = vld1q_f32(x.as_ptr().add(i));
                vst1q_f32(x.as_mut_ptr().add(i), vmulq_f32(xv, a));
                i += 4;
            }
            while i < n {
                *x.get_unchecked_mut(i) *= alpha;
                i += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Odd lengths exercise both the vector body and the scalar tail.
    const LENS: [usize; 6] = [1, 7, 8, 9, 31, 130];

    fn gaussian(n: usize, seed: u64) -> Vec<f32> {
        let mut rng = crate::rng::seeded(seed);
        let mut v = vec![0f32; n];
        crate::rng::fill_gaussian(&mut rng, &mut v, 0.0, 1.0);
        v
    }

    #[test]
    fn axpy_f32_bitwise_matches_scalar() {
        for &n in &LENS {
            let x = gaussian(n, 1);
            let mut y = gaussian(n, 2);
            let mut y_ref = y.clone();
            axpy_f32(1.37, &x, &mut y);
            scalar_axpy_f32(1.37, &x, &mut y_ref);
            assert_eq!(
                y.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                y_ref.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                "n={n} backend={}",
                active_backend()
            );
        }
    }

    #[test]
    fn add_and_scale_bitwise_match_scalar() {
        for &n in &LENS {
            let x = gaussian(n, 3);
            let mut y = gaussian(n, 4);
            let mut y_ref = y.clone();
            add_f32(&x, &mut y);
            for (o, s) in y_ref.iter_mut().zip(&x) {
                *o += *s;
            }
            assert_eq!(y, y_ref, "add n={n}");
            scale_f32(&mut y, 0.731);
            for v in y_ref.iter_mut() {
                *v *= 0.731;
            }
            assert_eq!(y, y_ref, "scale n={n}");
        }
    }

    #[test]
    fn axpy_f64_bitwise_matches_scalar() {
        for &n in &LENS {
            let x: Vec<f64> = gaussian(n, 5).iter().map(|&v| v as f64).collect();
            let mut y: Vec<f64> = gaussian(n, 6).iter().map(|&v| v as f64).collect();
            let mut y_ref = y.clone();
            axpy_f64(-0.9137, &x, &mut y);
            scalar_axpy_f64(-0.9137, &x, &mut y_ref);
            assert_eq!(
                y.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                y_ref.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                "n={n}"
            );
        }
    }

    #[test]
    fn axpy_i8_matches_scalar() {
        for &n in &LENS {
            let x: Vec<i8> = (0..n).map(|i| ((i as i64 * 37 - 64) % 127) as i8).collect();
            let mut y = gaussian(n, 7);
            let mut y_ref = y.clone();
            axpy_i8(0.031, &x, &mut y);
            for (o, &q) in y_ref.iter_mut().zip(&x) {
                *o += 0.031 * q as f32;
            }
            assert_eq!(y, y_ref, "n={n}");
        }
    }

    #[test]
    fn axpy_f16_matches_scalar() {
        for &n in &LENS {
            let x: Vec<u16> = gaussian(n, 8).iter().map(|&v| crate::quant::f32_to_f16(v)).collect();
            let mut y = gaussian(n, 9);
            let mut y_ref = y.clone();
            axpy_f16(1.5, &x, &mut y);
            for (o, &h) in y_ref.iter_mut().zip(&x) {
                *o += 1.5 * crate::quant::f16_to_f32(h);
            }
            assert_eq!(y, y_ref, "n={n}");
        }
    }

    #[test]
    fn row_gather_bitwise_matches_scalar_reference() {
        // A fake 10-row feature matrix with d = 70 (covers the 64/32/16/8
        // register tiles plus a scalar tail in one window).
        let d = 70usize;
        let xd = gaussian(10 * d, 10);
        let idx: Vec<u32> = vec![3, 0, 9, 9, 5, 1];
        let ws = gaussian(idx.len(), 11);
        for col_off in [0usize, 3, 64] {
            for tw in [d - col_off, 1.min(d - col_off)] {
                let mut out = vec![0f32; tw];
                let mut out_ref = vec![0f32; tw];
                row_gather_weighted(&mut out, &xd, d, col_off, &idx, &ws);
                scalar_row_gather(&mut out_ref, &xd, d, col_off, &idx, Some(&ws));
                assert_eq!(
                    out.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                    out_ref.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                    "weighted col_off={col_off} tw={tw}"
                );
                row_gather_unweighted(&mut out, &xd, d, col_off, &idx);
                scalar_row_gather(&mut out_ref, &xd, d, col_off, &idx, None);
                assert_eq!(out, out_ref, "unweighted col_off={col_off} tw={tw}");
            }
        }
    }

    #[test]
    fn backend_lane_report_is_consistent() {
        let b = active_backend();
        let l = f32_lanes();
        match b {
            "avx2" => assert_eq!(l, 8),
            "neon" => assert_eq!(l, 4),
            _ => assert_eq!(l, 1),
        }
    }
}
