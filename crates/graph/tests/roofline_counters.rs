//! Cross-checks the roofline counters against the analytic traffic/flop
//! models (ISSUE 6 satellite). Lives alone in its own test binary because
//! observability state is process-global: any other test calling a kernel
//! while obs is enabled would perturb the exact counts asserted here.

use sgnn_graph::blocked::{spmm_blocked_into, spmm_quant_into, BlockSpec};
use sgnn_graph::generate;
use sgnn_graph::normalize::{normalized_adjacency, NormKind};
use sgnn_graph::spmm::{spmm_bytes, spmm_flops, spmm_into};
use sgnn_linalg::quant::{qmatmul_bytes, qmatmul_into, QuantMatrix};
use sgnn_linalg::DenseMatrix;

fn counter(report: &sgnn_obs::ObsReport, name: &str) -> u64 {
    report
        .counters
        .iter()
        .find(|c| c.name == name)
        .unwrap_or_else(|| panic!("missing counter {name}"))
        .value
}

#[test]
fn roofline_counters_match_analytic_models() {
    let g =
        normalized_adjacency(&generate::barabasi_albert(200, 3, 5), NormKind::Sym, true).unwrap();
    let d = 8usize;
    let x = DenseMatrix::gaussian(200, d, 1.0, 1);
    let mut y = DenseMatrix::zeros(200, d);

    sgnn_obs::enable();
    sgnn_obs::reset();
    spmm_into(&g, &x, &mut y);
    spmm_blocked_into(&g, &x, &mut y, BlockSpec::auto(&g, d));
    let xq = QuantMatrix::quantize_i8(&x);
    spmm_quant_into(&g, &xq, &mut y, BlockSpec::auto(&g, d));
    let a = DenseMatrix::gaussian(6, 10, 1.0, 2);
    let b = DenseMatrix::gaussian(10, 4, 1.0, 3);
    let mut ab = DenseMatrix::zeros(6, 4);
    a.matmul_into(&b, &mut ab).unwrap();
    let aq = QuantMatrix::quantize_i8(&a);
    let bq = QuantMatrix::quantize_i8(&b);
    qmatmul_into(&aq, &bq, &mut ab).unwrap();
    let report = sgnn_obs::report();
    sgnn_obs::disable();

    // Exact SpMM: one call of each flavor, counters equal the models.
    assert_eq!(counter(&report, "linalg.spmm.flops"), spmm_flops(&g, d));
    assert_eq!(counter(&report, "linalg.spmm.bytes_moved"), spmm_bytes(&g, d));
    assert_eq!(counter(&report, "linalg.spmm_blocked.flops"), spmm_flops(&g, d));
    assert_eq!(counter(&report, "linalg.spmm_blocked.bytes_moved"), spmm_bytes(&g, d));
    // Quantized SpMM: dequantize-multiply adds one extra flop per element.
    assert_eq!(
        counter(&report, "linalg.spmm_quant.flops"),
        spmm_flops(&g, d) + g.num_edges() as u64 * d as u64
    );
    assert_eq!(
        counter(&report, "linalg.spmm_quant.bytes_moved"),
        sgnn_graph::blocked::spmm_quant_bytes(&g, &xq)
    );
    // Dense GEMM models.
    assert_eq!(counter(&report, "linalg.matmul.flops"), 2 * 6 * 10 * 4);
    assert_eq!(counter(&report, "linalg.matmul.bytes_moved"), 4 * (6 * 10 + 10 * 4 + 2 * 6 * 4));
    assert_eq!(counter(&report, "linalg.qmatmul.flops"), 2 * 6 * 10 * 4 + 6 * 10);
    assert_eq!(counter(&report, "linalg.qmatmul.bytes_moved"), qmatmul_bytes(&aq, &bq) as u64);
}
