//! Edge-list ingestion into validated [`CsrGraph`]s.
//!
//! The builder owns all the messy parts of graph loading — duplicate edges,
//! missing reverse edges, self-loops — so that downstream algorithms can
//! assume clean sorted CSR rows. Duplicate parallel edges are *merged*
//! (weights summed), matching how adjacency matrices treat multi-edges.

use crate::csr::{CsrGraph, NodeId};
use crate::{GraphError, Result};

/// # Example
///
/// ```
/// use sgnn_graph::GraphBuilder;
///
/// let g = GraphBuilder::new(4)
///     .symmetric()
///     .edges(&[(0, 1), (1, 2), (2, 3)])
///     .build()
///     .unwrap();
/// assert_eq!(g.num_edges(), 6); // each undirected edge stored twice
/// assert!(g.has_edge(2, 1));
/// ```
/// Builder accumulating `(src, dst, weight)` triples.
#[derive(Debug, Clone)]
pub struct GraphBuilder {
    n: usize,
    src: Vec<NodeId>,
    dst: Vec<NodeId>,
    w: Vec<f32>,
    symmetric: bool,
    drop_self_loops: bool,
    weighted: bool,
}

impl GraphBuilder {
    /// New builder for a graph on `n` nodes.
    pub fn new(n: usize) -> Self {
        GraphBuilder {
            n,
            src: Vec::new(),
            dst: Vec::new(),
            w: Vec::new(),
            symmetric: false,
            drop_self_loops: false,
            weighted: false,
        }
    }

    /// Mirror every added edge (build an undirected graph).
    pub fn symmetric(mut self) -> Self {
        self.symmetric = true;
        self
    }

    /// Silently discard self-loops at build time.
    pub fn drop_self_loops(mut self) -> Self {
        self.drop_self_loops = true;
        self
    }

    /// Adds one directed edge with unit weight.
    pub fn edge(mut self, u: NodeId, v: NodeId) -> Self {
        self.push(u, v, 1.0);
        self
    }

    /// Adds many unit-weight edges.
    pub fn edges(mut self, list: &[(NodeId, NodeId)]) -> Self {
        self.src.reserve(list.len());
        self.dst.reserve(list.len());
        self.w.reserve(list.len());
        for &(u, v) in list {
            self.push(u, v, 1.0);
        }
        self
    }

    /// Adds many weighted edges; marks the output graph as weighted.
    pub fn weighted_edges(mut self, list: &[(NodeId, NodeId, f32)]) -> Self {
        self.weighted = true;
        for &(u, v, w) in list {
            self.push(u, v, w);
        }
        self
    }

    /// Non-consuming edge insertion for loop-heavy generators.
    pub fn add_edge(&mut self, u: NodeId, v: NodeId) {
        self.push(u, v, 1.0);
    }

    /// Non-consuming weighted insertion.
    pub fn add_weighted_edge(&mut self, u: NodeId, v: NodeId, w: f32) {
        self.weighted = true;
        self.push(u, v, w);
    }

    fn push(&mut self, u: NodeId, v: NodeId, w: f32) {
        self.src.push(u);
        self.dst.push(v);
        self.w.push(w);
    }

    /// Number of staged (directed) edges before symmetrization/merging.
    pub fn staged_edges(&self) -> usize {
        self.src.len()
    }

    /// Builds the CSR graph: bounds-check, (optionally) mirror, sort
    /// per-row, merge duplicates by summing weights.
    pub fn build(self) -> Result<CsrGraph> {
        let n = self.n;
        for (&u, &v) in self.src.iter().zip(self.dst.iter()) {
            if (u as usize) >= n {
                return Err(GraphError::NodeOutOfRange { node: u as u64, n });
            }
            if (v as usize) >= n {
                return Err(GraphError::NodeOutOfRange { node: v as u64, n });
            }
        }
        // Count per-source degrees (with mirroring).
        let mut counts = vec![0usize; n + 1];
        let mut total = 0usize;
        for (&u, &v) in self.src.iter().zip(self.dst.iter()) {
            if self.drop_self_loops && u == v {
                continue;
            }
            counts[u as usize + 1] += 1;
            total += 1;
            if self.symmetric && u != v {
                counts[v as usize + 1] += 1;
                total += 1;
            }
        }
        for i in 0..n {
            counts[i + 1] += counts[i];
        }
        let indptr_raw = counts.clone();
        let mut cursor = counts;
        let mut indices = vec![0 as NodeId; total];
        let mut weights = vec![0f32; total];
        for ((&u, &v), &w) in self.src.iter().zip(self.dst.iter()).zip(self.w.iter()) {
            if self.drop_self_loops && u == v {
                continue;
            }
            let s = cursor[u as usize];
            cursor[u as usize] += 1;
            indices[s] = v;
            weights[s] = w;
            if self.symmetric && u != v {
                let s = cursor[v as usize];
                cursor[v as usize] += 1;
                indices[s] = u;
                weights[s] = w;
            }
        }
        // Sort each row and merge duplicates (sum weights).
        let mut out_indptr = Vec::with_capacity(n + 1);
        out_indptr.push(0usize);
        let mut out_indices: Vec<NodeId> = Vec::with_capacity(total);
        let mut out_weights: Vec<f32> = Vec::with_capacity(total);
        let mut row: Vec<(NodeId, f32)> = Vec::new();
        for u in 0..n {
            row.clear();
            for e in indptr_raw[u]..indptr_raw[u + 1] {
                row.push((indices[e], weights[e]));
            }
            row.sort_unstable_by_key(|&(v, _)| v);
            let mut i = 0;
            while i < row.len() {
                let v = row[i].0;
                let mut w = row[i].1;
                let mut j = i + 1;
                while j < row.len() && row[j].0 == v {
                    w += row[j].1;
                    j += 1;
                }
                out_indices.push(v);
                out_weights.push(w);
                i = j;
            }
            out_indptr.push(out_indices.len());
        }
        let weights = if self.weighted { Some(out_weights) } else { None };
        CsrGraph::from_parts(n, out_indptr, out_indices, weights)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn duplicate_edges_merge_and_sum() {
        let g = GraphBuilder::new(2).weighted_edges(&[(0, 1, 1.0), (0, 1, 2.5)]).build().unwrap();
        assert_eq!(g.num_edges(), 1);
        assert_eq!(g.weights_of(0).unwrap(), &[3.5]);
    }

    #[test]
    fn duplicate_unit_edges_collapse() {
        let g = GraphBuilder::new(2).edges(&[(0, 1), (0, 1), (0, 1)]).build().unwrap();
        assert_eq!(g.num_edges(), 1);
        assert!(!g.is_weighted());
    }

    #[test]
    fn symmetric_mirrors_but_not_self_loops() {
        let g = GraphBuilder::new(3).symmetric().edges(&[(0, 1), (2, 2)]).build().unwrap();
        assert!(g.has_edge(1, 0));
        assert!(g.has_edge(0, 1));
        // Self-loop stored once, not doubled.
        assert_eq!(g.neighbors(2), &[2]);
        assert_eq!(g.num_edges(), 3);
    }

    #[test]
    fn drop_self_loops_works() {
        let g = GraphBuilder::new(2).drop_self_loops().edges(&[(0, 0), (0, 1)]).build().unwrap();
        assert_eq!(g.num_edges(), 1);
        assert!(!g.has_edge(0, 0));
    }

    #[test]
    fn out_of_range_is_reported() {
        let err = GraphBuilder::new(2).edge(0, 9).build();
        assert!(matches!(err, Err(GraphError::NodeOutOfRange { node: 9, .. })));
    }

    #[test]
    fn rows_sorted_after_build() {
        let g = GraphBuilder::new(4).edges(&[(0, 3), (0, 1), (0, 2)]).build().unwrap();
        assert_eq!(g.neighbors(0), &[1, 2, 3]);
        g.validate().unwrap();
    }

    #[test]
    fn empty_builder_builds_empty_graph() {
        let g = GraphBuilder::new(4).build().unwrap();
        assert_eq!(g.num_nodes(), 4);
        assert_eq!(g.num_edges(), 0);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Any edge list over valid ids builds a graph that passes
        /// validation, and symmetric builds are structurally symmetric.
        #[test]
        fn builder_always_produces_valid_csr(
            edges in proptest::collection::vec((0u32..40, 0u32..40), 0..300),
            symmetric in proptest::bool::ANY,
        ) {
            let mut b = GraphBuilder::new(40);
            if symmetric { b = b.symmetric(); }
            let g = b.edges(&edges).build().unwrap();
            g.validate().unwrap();
            if symmetric {
                prop_assert!(g.is_symmetric());
            }
            // Every input edge must be present.
            for (u, v) in edges {
                prop_assert!(g.has_edge(u, v));
            }
        }

        /// Merging duplicates preserves total weight mass.
        #[test]
        fn weight_mass_is_conserved(
            edges in proptest::collection::vec((0u32..20, 0u32..20, 0.1f32..2.0), 1..100)
        ) {
            let total: f64 = edges.iter().map(|&(_, _, w)| w as f64).sum();
            let g = GraphBuilder::new(20).weighted_edges(&edges).build().unwrap();
            prop_assert!((g.total_weight() - total).abs() < 1e-3);
        }
    }
}
