//! # sgnn-graph
//!
//! Graph storage and processing substrate for the `sgnn` workspace.
//!
//! The survey's central thesis is that GNN scalability is a *graph data
//! management* problem: the expensive, irregular part of every scalable GNN
//! is how the graph is stored, traversed, normalized, and multiplied against
//! feature matrices. This crate is that storage/processing layer:
//!
//! - [`CsrGraph`] — compressed sparse row adjacency (optionally weighted),
//!   the canonical format every other crate consumes.
//! - [`GraphBuilder`] — edge-list ingestion with dedup / symmetrization /
//!   self-loop control.
//! - [`generate`] — deterministic synthetic generators (Erdős–Rényi,
//!   Barabási–Albert, R-MAT, stochastic block model with homophily control,
//!   grids, chains) standing in for the paper's industrial datasets.
//! - [`normalize`] — GCN-style symmetric / random-walk normalizations
//!   producing weighted CSR operators.
//! - [`spmm`] — parallel sparse×dense products, plus `f64` operator adapters
//!   ([`CsrOpF64`]) feeding the eigensolvers in `sgnn-linalg`.
//! - [`blocked`] — 2-D cache-blocked / register-tiled SpMM (bitwise equal to
//!   [`spmm`]) and the quantized inference SpMM (DESIGN.md §9).
//! - [`traverse`] — BFS, connected components, k-hop neighborhoods.
//! - [`io`] — text edge-list and binary (`bytes`-based) persistence.

// Numeric kernels index several parallel flat buffers at once; iterator
// rewrites obscure them. Config-style constructors take their full
// parameter list deliberately (documented, stable).
#![allow(clippy::needless_range_loop, clippy::too_many_arguments)]

pub mod blocked;
pub mod builder;
pub mod csr;
pub mod generate;
pub mod io;
pub mod normalize;
pub mod reorder;
pub mod spmm;
pub mod stats;
pub mod traverse;

pub use builder::GraphBuilder;
pub use csr::{CsrGraph, NodeId};
pub use normalize::{normalized_adjacency, NormKind};
pub use spmm::CsrOpF64;

/// Errors produced by graph construction and processing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GraphError {
    /// An endpoint referenced a node id outside `0..n`.
    NodeOutOfRange {
        /// Offending node id.
        node: u64,
        /// Number of nodes in the graph.
        n: usize,
    },
    /// Parse failure while reading an edge list.
    Parse {
        /// 1-based line number.
        line: usize,
        /// Description of the problem.
        message: String,
    },
    /// I/O failure (wraps the `std::io` error text).
    Io(String),
    /// Malformed binary payload.
    Corrupt(String),
}

impl std::fmt::Display for GraphError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GraphError::NodeOutOfRange { node, n } => {
                write!(f, "node id {node} out of range for graph with {n} nodes")
            }
            GraphError::Parse { line, message } => {
                write!(f, "parse error at line {line}: {message}")
            }
            GraphError::Io(e) => write!(f, "io error: {e}"),
            GraphError::Corrupt(m) => write!(f, "corrupt graph payload: {m}"),
        }
    }
}

impl std::error::Error for GraphError {}

impl From<std::io::Error> for GraphError {
    fn from(e: std::io::Error) -> Self {
        GraphError::Io(e.to_string())
    }
}

/// Crate-wide `Result` alias.
pub type Result<T> = std::result::Result<T, GraphError>;
