//! Sparse × dense products — the single hottest kernel of GNN training.
//!
//! `spmm` computes `Y = A · X` for a (weighted) CSR `A` and a row-major
//! dense `X`, parallelized over destination-row chunks so each worker owns
//! its output slice exclusively. `CsrOpF64` adapts a CSR graph to the
//! [`MatVecF64`](sgnn_linalg::eigen::MatVecF64) trait for the eigensolvers
//! and implicit-GNN equilibrium solvers.

use crate::csr::CsrGraph;
use sgnn_linalg::eigen::MatVecF64;
use sgnn_linalg::par;
use sgnn_linalg::DenseMatrix;

/// Computes `Y = A · X` where `A` is `g` interpreted as a sparse matrix.
///
/// Unweighted graphs use unit weights. Panics if `x.rows() != g.num_nodes()`
/// (programmer error — the shapes are fixed by the pipeline).
pub fn spmm(g: &CsrGraph, x: &DenseMatrix) -> DenseMatrix {
    assert_eq!(
        x.rows(),
        g.num_nodes(),
        "feature rows must equal node count"
    );
    let d = x.cols();
    let mut y = DenseMatrix::zeros(g.num_nodes(), d);
    let indptr = g.indptr();
    let indices = g.indices();
    let weights = g.weights();
    let xd = x.data();
    par::par_rows_mut(y.data_mut(), d.max(1), 256, |first_row, chunk| {
        if d == 0 {
            return;
        }
        for (local, out_row) in chunk.chunks_mut(d).enumerate() {
            let u = first_row + local;
            for e in indptr[u]..indptr[u + 1] {
                let v = indices[e] as usize;
                let w = weights.map_or(1.0, |ws| ws[e]);
                let src = &xd[v * d..(v + 1) * d];
                sgnn_linalg::vecops::axpy(w, src, out_row);
            }
        }
    });
    y
}

/// Computes `y = A · x` for a single `f32` vector.
pub fn spmv(g: &CsrGraph, x: &[f32], y: &mut [f32]) {
    assert_eq!(x.len(), g.num_nodes());
    assert_eq!(y.len(), g.num_nodes());
    let indptr = g.indptr();
    let indices = g.indices();
    let weights = g.weights();
    for u in 0..g.num_nodes() {
        let mut acc = 0f32;
        for e in indptr[u]..indptr[u + 1] {
            let w = weights.map_or(1.0, |ws| ws[e]);
            acc += w * x[indices[e] as usize];
        }
        y[u] = acc;
    }
}

/// `f64` operator view of a CSR graph, optionally shifted and scaled:
/// `y = scale · A x + shift · x`.
///
/// The shift/scale form covers every operator the workspace diagonalizes —
/// `Â` itself, `I − Â` (normalized Laplacian given `Â`), and the implicit-
/// GNN system `I − γÂ`.
pub struct CsrOpF64<'a> {
    g: &'a CsrGraph,
    scale: f64,
    shift: f64,
}

impl<'a> CsrOpF64<'a> {
    /// Plain operator `y = A x`.
    pub fn new(g: &'a CsrGraph) -> Self {
        CsrOpF64 { g, scale: 1.0, shift: 0.0 }
    }

    /// Affine operator `y = scale·A x + shift·x`.
    pub fn affine(g: &'a CsrGraph, scale: f64, shift: f64) -> Self {
        CsrOpF64 { g, scale, shift }
    }
}

impl MatVecF64 for CsrOpF64<'_> {
    fn dim(&self) -> usize {
        self.g.num_nodes()
    }

    fn matvec(&self, x: &[f64], y: &mut [f64]) {
        let indptr = self.g.indptr();
        let indices = self.g.indices();
        let weights = self.g.weights();
        for u in 0..self.g.num_nodes() {
            let mut acc = 0f64;
            for e in indptr[u]..indptr[u + 1] {
                let w = weights.map_or(1.0, |ws| ws[e]) as f64;
                acc += w * x[indices[e] as usize];
            }
            y[u] = self.scale * acc + self.shift * x[u];
        }
    }
}

/// Number of scalar multiply-adds one `spmm` performs: `nnz(A) · d`.
///
/// The experiments report this as the device-independent work measure the
/// survey's complexity discussions use.
pub fn spmm_flops(g: &CsrGraph, d: usize) -> u64 {
    g.num_edges() as u64 * d as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate;
    use crate::normalize::{normalized_adjacency, NormKind};
    use crate::GraphBuilder;

    #[test]
    fn spmm_matches_manual_on_triangle() {
        let g = GraphBuilder::new(3)
            .symmetric()
            .edges(&[(0, 1), (1, 2)])
            .build()
            .unwrap();
        let x = DenseMatrix::from_rows(&[&[1.0, 0.0], &[0.0, 1.0], &[2.0, 2.0]]);
        let y = spmm(&g, &x);
        // Node 0 aggregates node 1, node 1 aggregates 0+2, node 2 aggregates 1.
        assert_eq!(y.row(0), &[0.0, 1.0]);
        assert_eq!(y.row(1), &[3.0, 2.0]);
        assert_eq!(y.row(2), &[0.0, 1.0]);
    }

    #[test]
    fn spmm_respects_weights() {
        let g = GraphBuilder::new(2).weighted_edges(&[(0, 1, 0.5)]).build().unwrap();
        let x = DenseMatrix::from_rows(&[&[2.0], &[4.0]]);
        let y = spmm(&g, &x);
        assert_eq!(y.row(0), &[2.0]);
        assert_eq!(y.row(1), &[0.0]);
    }

    #[test]
    fn spmv_agrees_with_spmm_column() {
        let g = generate::erdos_renyi(120, 0.05, false, 8);
        let a = normalized_adjacency(&g, NormKind::Sym, true).unwrap();
        let x = DenseMatrix::gaussian(120, 1, 1.0, 3);
        let dense = spmm(&a, &x);
        let xv: Vec<f32> = x.data().to_vec();
        let mut yv = vec![0f32; 120];
        spmv(&a, &xv, &mut yv);
        for u in 0..120 {
            assert!((yv[u] - dense.get(u, 0)).abs() < 1e-5);
        }
    }

    #[test]
    fn csr_op_affine_shift() {
        // y = -A x + 1·x  on a single edge graph equals x - Ax.
        let g = GraphBuilder::new(2).symmetric().edges(&[(0, 1)]).build().unwrap();
        let op = CsrOpF64::affine(&g, -1.0, 1.0);
        let mut y = vec![0f64; 2];
        op.matvec(&[3.0, 5.0], &mut y);
        assert_eq!(y, vec![3.0 - 5.0, 5.0 - 3.0]);
    }

    #[test]
    fn rw_spmm_preserves_constant_vector() {
        // Row-stochastic propagation maps the all-ones vector to itself.
        let g = generate::barabasi_albert(150, 2, 5);
        let p = normalized_adjacency(&g, NormKind::Rw, true).unwrap();
        let ones = DenseMatrix::from_vec(150, 1, vec![1.0; 150]);
        let y = spmm(&p, &ones);
        for u in 0..150 {
            assert!((y.get(u, 0) - 1.0).abs() < 1e-5);
        }
    }

    #[test]
    fn flops_formula() {
        let g = generate::chain(10);
        assert_eq!(spmm_flops(&g, 16), 18 * 16);
    }

    #[test]
    fn spmm_zero_width_features() {
        let g = generate::chain(4);
        let x = DenseMatrix::zeros(4, 0);
        let y = spmm(&g, &x);
        assert_eq!(y.shape(), (4, 0));
    }
}
