//! Sparse × dense products — the single hottest kernel of GNN training.
//!
//! `spmm` computes `Y = A · X` for a (weighted) CSR `A` and a row-major
//! dense `X`. Work is partitioned across the worker pool by **nnz**, not by
//! row count: chunk boundaries come from a binary search on `indptr`, so a
//! power-law hub and a thousand leaves cost their workers the same. Inner
//! loops are specialized twice — weighted vs unweighted (the weight lookup
//! is hoisted out of the edge loop entirely) and register-accumulated
//! micro-kernels for feature widths ≤ 4.
//!
//! [`spmm_into`] writes into a caller-owned matrix so steady-state training
//! loops can reuse one scratch buffer across epochs; [`spmm`] is the
//! allocating convenience wrapper. `CsrOpF64` adapts a CSR graph to the
//! [`MatVecF64`](sgnn_linalg::eigen::MatVecF64) trait for the eigensolvers
//! and implicit-GNN equilibrium solvers.

use crate::csr::CsrGraph;
use sgnn_linalg::eigen::MatVecF64;
use sgnn_linalg::par;
use sgnn_linalg::DenseMatrix;

/// Minimum scalar multiply-adds that justify engaging the worker pool;
/// below this the kernels run inline on the calling thread.
const MIN_PAR_WORK: usize = 1 << 16;

// Observability: nnz processed is the device-independent work measure the
// experiments report; calls × chunk counters (in `linalg.pool.*`) give the
// balanced-split granularity. Spans use the logical-layer name `linalg.*`
// (DESIGN.md §5) even though the CSR kernels live in sgnn-graph.
static SPMM_CALLS: sgnn_obs::Counter = sgnn_obs::Counter::new("linalg.spmm.calls");
static SPMM_NS: sgnn_obs::Histogram = sgnn_obs::Histogram::new("linalg.spmm.ns");
static SPMM_NNZ: sgnn_obs::Counter = sgnn_obs::Counter::new("linalg.spmm.nnz");
static SPMM_FLOPS: sgnn_obs::Counter = sgnn_obs::Counter::new("linalg.spmm.flops");
static SPMM_BYTES: sgnn_obs::Counter = sgnn_obs::Counter::new("linalg.spmm.bytes_moved");
static SPMV_CALLS: sgnn_obs::Counter = sgnn_obs::Counter::new("linalg.spmv.calls");
static SPMV_NNZ: sgnn_obs::Counter = sgnn_obs::Counter::new("linalg.spmv.nnz");
static SPMV_FLOPS: sgnn_obs::Counter = sgnn_obs::Counter::new("linalg.spmv.flops");
static SPMV_BYTES: sgnn_obs::Counter = sgnn_obs::Counter::new("linalg.spmv.bytes_moved");

/// Computes `Y = A · X` where `A` is `g` interpreted as a sparse matrix.
///
/// Unweighted graphs use unit weights. Panics if `x.rows() != g.num_nodes()`
/// (programmer error — the shapes are fixed by the pipeline).
pub fn spmm(g: &CsrGraph, x: &DenseMatrix) -> DenseMatrix {
    let mut y = DenseMatrix::zeros(g.num_nodes(), x.cols());
    spmm_into(g, x, &mut y);
    y
}

/// Computes `Y = A · X` into a caller-owned `y`, overwriting its contents.
///
/// The allocation-free form of [`spmm`]: training loops keep one scratch
/// matrix of shape `(num_nodes, d)` and pass it here every epoch. `y` may
/// hold arbitrary stale values on entry.
pub fn spmm_into(g: &CsrGraph, x: &DenseMatrix, y: &mut DenseMatrix) {
    assert_eq!(x.rows(), g.num_nodes(), "feature rows must equal node count");
    assert_eq!(
        y.shape(),
        (g.num_nodes(), x.cols()),
        "output shape must be (num_nodes, feature_cols)"
    );
    let d = x.cols();
    if d == 0 {
        return;
    }
    let _sp = sgnn_obs::span!("linalg.spmm");
    let _ht = SPMM_NS.time();
    SPMM_CALLS.incr();
    SPMM_NNZ.add(g.num_edges() as u64);
    SPMM_FLOPS.add(spmm_flops(g, d));
    SPMM_BYTES.add(spmm_bytes(g, d));
    let indptr = g.indptr();
    let indices = g.indices();
    let weights = g.weights();
    let xd = x.data();
    // Balance by edge count: one unit of weight = one row of axpy work.
    let min_weight = (MIN_PAR_WORK / d).max(1);
    par::par_balanced_rows_mut(y.data_mut(), d, indptr, min_weight, |first_row, chunk| {
        // One dispatch per chunk: the weighted/unweighted branch and the
        // feature-width branch never reach the per-edge loop.
        match (weights, d) {
            (None, 1) => rows_unweighted_small::<1>(indptr, indices, xd, first_row, chunk),
            (None, 2) => rows_unweighted_small::<2>(indptr, indices, xd, first_row, chunk),
            (None, 3) => rows_unweighted_small::<3>(indptr, indices, xd, first_row, chunk),
            (None, 4) => rows_unweighted_small::<4>(indptr, indices, xd, first_row, chunk),
            (None, _) => rows_unweighted(indptr, indices, xd, d, first_row, chunk),
            (Some(ws), 1) => rows_weighted_small::<1>(indptr, indices, ws, xd, first_row, chunk),
            (Some(ws), 2) => rows_weighted_small::<2>(indptr, indices, ws, xd, first_row, chunk),
            (Some(ws), 3) => rows_weighted_small::<3>(indptr, indices, ws, xd, first_row, chunk),
            (Some(ws), 4) => rows_weighted_small::<4>(indptr, indices, ws, xd, first_row, chunk),
            (Some(ws), _) => rows_weighted(indptr, indices, ws, xd, d, first_row, chunk),
        }
    });
}

/// Narrow-feature micro-kernel, unit weights: the accumulator lives in
/// registers and the output row is stored once.
#[inline]
fn rows_unweighted_small<const D: usize>(
    indptr: &[usize],
    indices: &[u32],
    xd: &[f32],
    first_row: usize,
    chunk: &mut [f32],
) {
    for (local, out) in chunk.chunks_exact_mut(D).enumerate() {
        let u = first_row + local;
        let mut acc = [0f32; D];
        for e in indptr[u]..indptr[u + 1] {
            let v = indices[e] as usize;
            let src = &xd[v * D..v * D + D];
            for k in 0..D {
                acc[k] += src[k];
            }
        }
        out.copy_from_slice(&acc);
    }
}

/// Narrow-feature micro-kernel with edge weights.
#[inline]
fn rows_weighted_small<const D: usize>(
    indptr: &[usize],
    indices: &[u32],
    ws: &[f32],
    xd: &[f32],
    first_row: usize,
    chunk: &mut [f32],
) {
    for (local, out) in chunk.chunks_exact_mut(D).enumerate() {
        let u = first_row + local;
        let mut acc = [0f32; D];
        for e in indptr[u]..indptr[u + 1] {
            let v = indices[e] as usize;
            let w = ws[e];
            let src = &xd[v * D..v * D + D];
            for k in 0..D {
                acc[k] += w * src[k];
            }
        }
        out.copy_from_slice(&acc);
    }
}

/// How many edges ahead the general-width kernels prefetch their source
/// row. Source rows are gathered at random from a feature matrix much
/// larger than cache, so each edge is a DRAM-latency stall without this.
const PREFETCH_AHEAD: usize = 8;

/// Hints the cache to start loading the source row for edge `e`, if it
/// exists. No-op on non-x86 targets.
#[inline(always)]
fn prefetch_src(indices: &[u32], xd: &[f32], d: usize, e: usize, hi: usize) {
    if e < hi {
        #[cfg(target_arch = "x86_64")]
        unsafe {
            use std::arch::x86_64::{_mm_prefetch, _MM_HINT_T0};
            let p = xd.as_ptr().add(indices[e] as usize * d) as *const i8;
            // Touch every cache line the row spans (64 B = 16 f32 each).
            let lines = d.div_ceil(16);
            for l in 0..lines {
                _mm_prefetch(p.add(l * 64), _MM_HINT_T0);
            }
        }
        #[cfg(not(target_arch = "x86_64"))]
        {
            let _ = (indices, xd, d, e, hi);
        }
    }
}

/// General-width rows, unit weights: plain element-wise adds (no weight
/// multiply in the inner loop).
#[inline]
fn rows_unweighted(
    indptr: &[usize],
    indices: &[u32],
    xd: &[f32],
    d: usize,
    first_row: usize,
    chunk: &mut [f32],
) {
    for (local, out) in chunk.chunks_exact_mut(d).enumerate() {
        let u = first_row + local;
        let (lo, hi) = (indptr[u], indptr[u + 1]);
        // The first neighbor initializes the row (no zeroing pass over the
        // output — it would cost a full extra write sweep at large d).
        if lo == hi {
            out.fill(0.0);
            continue;
        }
        out.copy_from_slice(&xd[indices[lo] as usize * d..][..d]);
        for e in lo + 1..hi {
            prefetch_src(indices, xd, d, e + PREFETCH_AHEAD, hi);
            let v = indices[e] as usize;
            let src = &xd[v * d..(v + 1) * d];
            for (o, s) in out.iter_mut().zip(src) {
                *o += s;
            }
        }
    }
}

/// General-width rows with edge weights: axpy per neighbor.
#[inline]
fn rows_weighted(
    indptr: &[usize],
    indices: &[u32],
    ws: &[f32],
    xd: &[f32],
    d: usize,
    first_row: usize,
    chunk: &mut [f32],
) {
    for (local, out) in chunk.chunks_exact_mut(d).enumerate() {
        let u = first_row + local;
        let (lo, hi) = (indptr[u], indptr[u + 1]);
        // First neighbor initializes the row; see rows_unweighted.
        if lo == hi {
            out.fill(0.0);
            continue;
        }
        let w0 = ws[lo];
        let src0 = &xd[indices[lo] as usize * d..][..d];
        for (o, s) in out.iter_mut().zip(src0) {
            *o = w0 * s;
        }
        for e in lo + 1..hi {
            prefetch_src(indices, xd, d, e + PREFETCH_AHEAD, hi);
            let v = indices[e] as usize;
            let src = &xd[v * d..(v + 1) * d];
            sgnn_linalg::vecops::axpy(ws[e], src, out);
        }
    }
}

/// Computes `y = A · x` for a single `f32` vector, overwriting `y`.
///
/// Parallelized with the same nnz-balanced partition as [`spmm`]; small
/// graphs run inline.
pub fn spmv(g: &CsrGraph, x: &[f32], y: &mut [f32]) {
    assert_eq!(x.len(), g.num_nodes());
    assert_eq!(y.len(), g.num_nodes());
    let _sp = sgnn_obs::span!("linalg.spmv");
    SPMV_CALLS.incr();
    SPMV_NNZ.add(g.num_edges() as u64);
    SPMV_FLOPS.add(spmm_flops(g, 1));
    SPMV_BYTES.add(spmm_bytes(g, 1));
    let indptr = g.indptr();
    let indices = g.indices();
    let weights = g.weights();
    par::par_balanced_rows_mut(y, 1, indptr, MIN_PAR_WORK, |first_row, rows| match weights {
        None => {
            for (local, out) in rows.iter_mut().enumerate() {
                let u = first_row + local;
                let mut acc = 0f32;
                for e in indptr[u]..indptr[u + 1] {
                    acc += x[indices[e] as usize];
                }
                *out = acc;
            }
        }
        Some(ws) => {
            for (local, out) in rows.iter_mut().enumerate() {
                let u = first_row + local;
                let mut acc = 0f32;
                for e in indptr[u]..indptr[u + 1] {
                    acc += ws[e] * x[indices[e] as usize];
                }
                *out = acc;
            }
        }
    });
}

/// `f64` operator view of a CSR graph, optionally shifted and scaled:
/// `y = scale · A x + shift · x`.
///
/// The shift/scale form covers every operator the workspace diagonalizes —
/// `Â` itself, `I − Â` (normalized Laplacian given `Â`), and the implicit-
/// GNN system `I − γÂ`.
pub struct CsrOpF64<'a> {
    g: &'a CsrGraph,
    scale: f64,
    shift: f64,
}

impl<'a> CsrOpF64<'a> {
    /// Plain operator `y = A x`.
    pub fn new(g: &'a CsrGraph) -> Self {
        CsrOpF64 { g, scale: 1.0, shift: 0.0 }
    }

    /// Affine operator `y = scale·A x + shift·x`.
    pub fn affine(g: &'a CsrGraph, scale: f64, shift: f64) -> Self {
        CsrOpF64 { g, scale, shift }
    }
}

impl MatVecF64 for CsrOpF64<'_> {
    fn dim(&self) -> usize {
        self.g.num_nodes()
    }

    fn matvec(&self, x: &[f64], y: &mut [f64]) {
        assert_eq!(x.len(), self.g.num_nodes());
        assert_eq!(y.len(), self.g.num_nodes());
        let _sp = sgnn_obs::span!("linalg.csr_matvec");
        let indptr = self.g.indptr();
        let indices = self.g.indices();
        let weights = self.g.weights();
        let (scale, shift) = (self.scale, self.shift);
        par::par_balanced_rows_mut(y, 1, indptr, MIN_PAR_WORK, |first_row, rows| match weights {
            None => {
                for (local, out) in rows.iter_mut().enumerate() {
                    let u = first_row + local;
                    let mut acc = 0f64;
                    for e in indptr[u]..indptr[u + 1] {
                        acc += x[indices[e] as usize];
                    }
                    *out = scale * acc + shift * x[u];
                }
            }
            Some(ws) => {
                for (local, out) in rows.iter_mut().enumerate() {
                    let u = first_row + local;
                    let mut acc = 0f64;
                    for e in indptr[u]..indptr[u + 1] {
                        acc += ws[e] as f64 * x[indices[e] as usize];
                    }
                    *out = scale * acc + shift * x[u];
                }
            }
        });
    }
}

/// Scalar floating-point operations one `spmm` performs: `2 · nnz(A) · d`
/// for a weighted graph (multiply + add per gathered element) and
/// `nnz(A) · d` for unit weights (the multiply is hoisted away entirely).
///
/// The experiments report this as the device-independent work measure the
/// survey's complexity discussions use; together with [`spmm_bytes`] it is
/// the roofline numerator the `linalg.spmm.flops` counter carries.
pub fn spmm_flops(g: &CsrGraph, d: usize) -> u64 {
    let per_elem = if g.weights().is_some() { 2 } else { 1 };
    per_elem * g.num_edges() as u64 * d as u64
}

/// Analytic compulsory traffic of one `spmm` in bytes — the roofline
/// denominator carried by the `linalg.spmm.bytes_moved` counter.
///
/// Counts what the kernel *requests*, assuming no cache reuse between
/// edges: the `indptr`/`indices`/weight streams, one `d`-wide f32 gather
/// per edge, and one output write per destination row. Cache blocking and
/// reordering lower the DRAM bytes actually moved below this model — that
/// gap is exactly the locality win `benchkernels` attributes.
pub fn spmm_bytes(g: &CsrGraph, d: usize) -> u64 {
    let nnz = g.num_edges() as u64;
    let n = g.num_nodes() as u64;
    let index_stream = 4 * nnz + 8 * (n + 1);
    let weight_stream = if g.weights().is_some() { 4 * nnz } else { 0 };
    index_stream + weight_stream + 4 * d as u64 * nnz + 4 * n * d as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate;
    use crate::normalize::{normalized_adjacency, NormKind};
    use crate::GraphBuilder;

    #[test]
    fn spmm_matches_manual_on_triangle() {
        let g = GraphBuilder::new(3).symmetric().edges(&[(0, 1), (1, 2)]).build().unwrap();
        let x = DenseMatrix::from_rows(&[&[1.0, 0.0], &[0.0, 1.0], &[2.0, 2.0]]);
        let y = spmm(&g, &x);
        // Node 0 aggregates node 1, node 1 aggregates 0+2, node 2 aggregates 1.
        assert_eq!(y.row(0), &[0.0, 1.0]);
        assert_eq!(y.row(1), &[3.0, 2.0]);
        assert_eq!(y.row(2), &[0.0, 1.0]);
    }

    #[test]
    fn spmm_respects_weights() {
        let g = GraphBuilder::new(2).weighted_edges(&[(0, 1, 0.5)]).build().unwrap();
        let x = DenseMatrix::from_rows(&[&[2.0], &[4.0]]);
        let y = spmm(&g, &x);
        assert_eq!(y.row(0), &[2.0]);
        assert_eq!(y.row(1), &[0.0]);
    }

    /// Reference kernel: the straightforward triple loop every specialized
    /// path must agree with exactly.
    fn spmm_reference(g: &CsrGraph, x: &DenseMatrix) -> DenseMatrix {
        let d = x.cols();
        let mut y = DenseMatrix::zeros(g.num_nodes(), d);
        for u in 0..g.num_nodes() {
            for e in g.indptr()[u]..g.indptr()[u + 1] {
                let v = g.indices()[e] as usize;
                let w = g.weights().map_or(1.0, |ws| ws[e]);
                for k in 0..d {
                    y.set(u, k, y.get(u, k) + w * x.get(v, k));
                }
            }
        }
        y
    }

    #[test]
    fn specialized_widths_match_reference() {
        // Exercises every micro-kernel (d = 1..=4) plus the general path
        // (d = 5, 7), weighted and unweighted.
        let raw = generate::barabasi_albert(300, 3, 11);
        let weighted = normalized_adjacency(&raw, NormKind::Sym, true).unwrap();
        for g in [&raw, &weighted] {
            for d in [1usize, 2, 3, 4, 5, 7] {
                let x = DenseMatrix::gaussian(300, d, 1.0, d as u64);
                let got = spmm(g, &x);
                let want = spmm_reference(g, &x);
                for u in 0..300 {
                    for k in 0..d {
                        assert!(
                            (got.get(u, k) - want.get(u, k)).abs() < 1e-4,
                            "d={d} mismatch at ({u},{k})"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn spmm_into_overwrites_stale_scratch() {
        let g = generate::erdos_renyi(80, 0.08, false, 4);
        let x = DenseMatrix::gaussian(80, 6, 1.0, 9);
        let fresh = spmm(&g, &x);
        // Scratch full of garbage must end up identical to a fresh output.
        let mut scratch = DenseMatrix::from_vec(80, 6, vec![f32::NAN; 80 * 6]);
        spmm_into(&g, &x, &mut scratch);
        assert_eq!(scratch.data(), fresh.data());
    }

    #[test]
    fn spmv_agrees_with_spmm_column() {
        let g = generate::erdos_renyi(120, 0.05, false, 8);
        let a = normalized_adjacency(&g, NormKind::Sym, true).unwrap();
        let x = DenseMatrix::gaussian(120, 1, 1.0, 3);
        let dense = spmm(&a, &x);
        let xv: Vec<f32> = x.data().to_vec();
        let mut yv = vec![0f32; 120];
        spmv(&a, &xv, &mut yv);
        for u in 0..120 {
            assert!((yv[u] - dense.get(u, 0)).abs() < 1e-5);
        }
    }

    #[test]
    fn csr_op_affine_shift() {
        // y = -A x + 1·x  on a single edge graph equals x - Ax.
        let g = GraphBuilder::new(2).symmetric().edges(&[(0, 1)]).build().unwrap();
        let op = CsrOpF64::affine(&g, -1.0, 1.0);
        let mut y = vec![0f64; 2];
        op.matvec(&[3.0, 5.0], &mut y);
        assert_eq!(y, vec![3.0 - 5.0, 5.0 - 3.0]);
    }

    #[test]
    fn rw_spmm_preserves_constant_vector() {
        // Row-stochastic propagation maps the all-ones vector to itself.
        let g = generate::barabasi_albert(150, 2, 5);
        let p = normalized_adjacency(&g, NormKind::Rw, true).unwrap();
        let ones = DenseMatrix::from_vec(150, 1, vec![1.0; 150]);
        let y = spmm(&p, &ones);
        for u in 0..150 {
            assert!((y.get(u, 0) - 1.0).abs() < 1e-5);
        }
    }

    #[test]
    fn flops_formula() {
        let g = generate::chain(10); // unweighted: adds only
        assert_eq!(spmm_flops(&g, 16), 18 * 16);
        let w = normalized_adjacency(&g, NormKind::Sym, false).unwrap();
        assert_eq!(w.num_edges(), 18);
        assert_eq!(spmm_flops(&w, 16), 2 * 18 * 16); // weighted: mul + add
    }

    #[test]
    fn bytes_model_counts_every_stream() {
        let g = generate::chain(10);
        let n = 10u64;
        let nnz = 18u64;
        let d = 16u64;
        let expect = 4 * nnz + 8 * (n + 1) + 4 * d * nnz + 4 * n * d;
        assert_eq!(spmm_bytes(&g, 16), expect);
        let w = normalized_adjacency(&g, NormKind::Sym, false).unwrap();
        assert_eq!(spmm_bytes(&w, 16), expect + 4 * nnz);
    }

    // The analytic-model ↔ counter cross-check lives in
    // crates/graph/tests/roofline_counters.rs: obs state is process-global,
    // so it runs alone in its own integration-test process.

    #[test]
    fn spmm_zero_width_features() {
        let g = generate::chain(4);
        let x = DenseMatrix::zeros(4, 0);
        let y = spmm(&g, &x);
        assert_eq!(y.shape(), (4, 0));
    }
}
