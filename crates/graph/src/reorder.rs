//! Graph reordering for memory locality.
//!
//! The survey's evaluation discussion cites Merkel et al. [36], "Can Graph
//! Reordering Speed Up Graph Neural Network Training?" — reordering node
//! ids so that neighbors live close in memory improves the cache behavior
//! of every SpMM-shaped kernel. This module provides the classic
//! orderings and a locality metric, plus the relabeling machinery; the A1
//! ablation experiment measures the actual SpMM effect.

use crate::csr::{CsrGraph, NodeId};
use crate::GraphBuilder;

/// Reordering strategies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Reordering {
    /// Sort by descending degree (hub clustering — simple, often strong).
    DegreeSort,
    /// BFS order from the highest-degree node (locality by distance).
    Bfs,
    /// Reverse Cuthill–McKee: BFS with ascending-degree tie-breaking,
    /// reversed — the classic bandwidth-reduction ordering.
    Rcm,
    /// Random permutation (the adversarial baseline).
    Random {
        /// Shuffle seed.
        seed: u64,
    },
}

/// Computes the permutation `perm[new_id] = old_id` for a strategy.
pub fn compute_order(g: &CsrGraph, strategy: Reordering) -> Vec<NodeId> {
    let n = g.num_nodes();
    match strategy {
        Reordering::DegreeSort => {
            let mut order: Vec<NodeId> = (0..n as NodeId).collect();
            order.sort_by_key(|&u| (std::cmp::Reverse(g.degree(u)), u));
            order
        }
        Reordering::Bfs => bfs_order(g, false),
        Reordering::Rcm => {
            let mut order = bfs_order(g, true);
            order.reverse();
            order
        }
        Reordering::Random { seed } => {
            let mut order: Vec<NodeId> = (0..n as NodeId).collect();
            let mut rng = sgnn_linalg::rng::seeded(seed);
            for i in (1..order.len()).rev() {
                use rand::RngExt;
                let j = rng.random_range(0..=i);
                order.swap(i, j);
            }
            order
        }
    }
}

/// Multi-source BFS covering all components. With `ascending_degree`,
/// neighbors are visited lowest-degree-first (the RCM rule) and component
/// seeds are minimum-degree nodes; otherwise seeds are maximum-degree.
fn bfs_order(g: &CsrGraph, ascending_degree: bool) -> Vec<NodeId> {
    let n = g.num_nodes();
    let mut visited = vec![false; n];
    let mut order = Vec::with_capacity(n);
    let mut by_degree: Vec<NodeId> = (0..n as NodeId).collect();
    if ascending_degree {
        by_degree.sort_by_key(|&u| (g.degree(u), u));
    } else {
        by_degree.sort_by_key(|&u| (std::cmp::Reverse(g.degree(u)), u));
    }
    let mut queue = std::collections::VecDeque::new();
    let mut neigh_buf: Vec<NodeId> = Vec::new();
    for &seed in &by_degree {
        if visited[seed as usize] {
            continue;
        }
        visited[seed as usize] = true;
        queue.push_back(seed);
        while let Some(u) = queue.pop_front() {
            order.push(u);
            neigh_buf.clear();
            neigh_buf.extend(g.neighbors(u).iter().copied().filter(|&v| !visited[v as usize]));
            if ascending_degree {
                neigh_buf.sort_by_key(|&v| (g.degree(v), v));
            } else {
                neigh_buf.sort_by_key(|&v| (std::cmp::Reverse(g.degree(v)), v));
            }
            for &v in &neigh_buf {
                if !visited[v as usize] {
                    visited[v as usize] = true;
                    queue.push_back(v);
                }
            }
        }
    }
    order
}

/// Applies a permutation: returns the relabeled graph plus the
/// `old → new` map (to relabel features/labels alongside).
pub fn relabel(g: &CsrGraph, perm: &[NodeId]) -> (CsrGraph, Vec<NodeId>) {
    let n = g.num_nodes();
    assert_eq!(perm.len(), n, "permutation must cover all nodes");
    let mut new_of_old = vec![u32::MAX; n];
    for (new, &old) in perm.iter().enumerate() {
        debug_assert_eq!(new_of_old[old as usize], u32::MAX, "perm not a bijection");
        new_of_old[old as usize] = new as u32;
    }
    let mut b = GraphBuilder::new(n);
    let weighted = g.is_weighted();
    for (u, v, w) in g.edges() {
        let (nu, nv) = (new_of_old[u as usize], new_of_old[v as usize]);
        if weighted {
            b.add_weighted_edge(nu, nv, w);
        } else {
            b.add_edge(nu, nv);
        }
    }
    (b.build().expect("bijective relabeling"), new_of_old)
}

/// Mean absolute id gap across edges — the locality proxy reordering
/// minimizes (smaller = neighbors closer in memory).
pub fn mean_edge_gap(g: &CsrGraph) -> f64 {
    let mut acc = 0f64;
    let mut m = 0u64;
    for (u, v, _) in g.edges() {
        acc += (u as i64 - v as i64).unsigned_abs() as f64;
        m += 1;
    }
    if m == 0 {
        0.0
    } else {
        acc / m as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate;

    #[test]
    fn orders_are_permutations() {
        let g = generate::barabasi_albert(500, 3, 1);
        for s in [
            Reordering::DegreeSort,
            Reordering::Bfs,
            Reordering::Rcm,
            Reordering::Random { seed: 7 },
        ] {
            let mut o = compute_order(&g, s);
            assert_eq!(o.len(), 500);
            o.sort_unstable();
            o.dedup();
            assert_eq!(o.len(), 500, "{s:?} not a permutation");
        }
    }

    #[test]
    fn degree_sort_puts_hubs_first() {
        let g = generate::star(20);
        let o = compute_order(&g, Reordering::DegreeSort);
        assert_eq!(o[0], 0);
    }

    #[test]
    fn relabel_preserves_structure() {
        let g = generate::erdos_renyi(200, 0.05, false, 2);
        let perm = compute_order(&g, Reordering::Rcm);
        let (rg, new_of_old) = relabel(&g, &perm);
        rg.validate().unwrap();
        assert_eq!(rg.num_edges(), g.num_edges());
        // Every original edge maps to a relabeled edge.
        for (u, v, _) in g.edges() {
            assert!(rg.has_edge(new_of_old[u as usize], new_of_old[v as usize]));
        }
        // Degree distribution is preserved.
        let mut d1 = g.degrees();
        let mut d2 = rg.degrees();
        d1.sort_unstable();
        d2.sort_unstable();
        assert_eq!(d1, d2);
    }

    #[test]
    fn rcm_reduces_bandwidth_on_grid_vs_random() {
        // Grid graphs are the canonical RCM success story.
        let g = generate::grid2d(40, 40);
        let (randomized, _) = relabel(&g, &compute_order(&g, Reordering::Random { seed: 3 }));
        let (rcm, _) = relabel(&randomized, &compute_order(&randomized, Reordering::Rcm));
        let gap_random = mean_edge_gap(&randomized);
        let gap_rcm = mean_edge_gap(&rcm);
        assert!(gap_rcm < gap_random / 4.0, "rcm gap {gap_rcm} vs random {gap_random}");
    }

    #[test]
    fn bfs_order_handles_disconnected_graphs() {
        let mut b = crate::GraphBuilder::new(10).symmetric();
        b.add_edge(0, 1);
        b.add_edge(5, 6);
        let g = b.build().unwrap();
        let o = compute_order(&g, Reordering::Bfs);
        assert_eq!(o.len(), 10);
    }

    #[test]
    fn weighted_graphs_keep_weights_through_relabel() {
        let g = crate::GraphBuilder::new(3)
            .weighted_edges(&[(0, 1, 2.0), (1, 2, 3.0)])
            .build()
            .unwrap();
        let (rg, map) = relabel(&g, &[2, 1, 0]);
        let w =
            rg.edges().find(|&(u, v, _)| u == map[0] && v == map[1]).map(|(_, _, w)| w).unwrap();
        assert_eq!(w, 2.0);
    }
}
