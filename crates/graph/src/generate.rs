//! Deterministic synthetic graph generators.
//!
//! These stand in for the industrial datasets the survey motivates
//! (Papers100M, MAG, WeChat/Amazon/Facebook graphs — see DESIGN.md's
//! substitution table). Each generator exposes the axis an experiment
//! sweeps: size (`erdos_renyi`, `rmat`), degree skew (`barabasi_albert`),
//! community structure and homophily (`sbm`), and long-range structure
//! (`chain`, `grid2d`).
//!
//! All generators are deterministic under their `seed` and produce
//! undirected (symmetric) simple graphs unless stated otherwise.

use crate::builder::GraphBuilder;
use crate::csr::{CsrGraph, NodeId};
use rand::{Rng, RngExt};

/// Erdős–Rényi `G(n, p)`.
///
/// Uses geometric edge-skipping so the cost is `O(m)`, not `O(n²)`:
/// practical up to millions of expected edges. `directed` controls whether
/// the output is symmetrized.
pub fn erdos_renyi(n: usize, p: f64, directed: bool, seed: u64) -> CsrGraph {
    assert!((0.0..=1.0).contains(&p), "p must be a probability");
    let mut b = GraphBuilder::new(n).drop_self_loops();
    if !directed {
        b = b.symmetric();
    }
    if p > 0.0 && n > 1 {
        let mut rng = sgnn_linalg::rng::seeded(seed);
        let log1mp = (1.0 - p).ln();
        // Iterate over the (upper-triangular or full) pair space with
        // geometric jumps.
        let total: u64 =
            if directed { (n as u64) * (n as u64 - 1) } else { (n as u64) * (n as u64 - 1) / 2 };
        if p >= 1.0 {
            for u in 0..n as u64 {
                for v in 0..n as u64 {
                    if u == v {
                        continue;
                    }
                    if directed || u < v {
                        b.add_edge(u as NodeId, v as NodeId);
                    }
                }
            }
        } else {
            let mut idx: i64 = -1;
            loop {
                let r: f64 = rng.random::<f64>().max(f64::MIN_POSITIVE);
                let skip = (r.ln() / log1mp).floor() as i64 + 1;
                idx += skip.max(1);
                if idx as u64 >= total {
                    break;
                }
                let (u, v) = unrank_pair(idx as u64, n as u64, directed);
                b.add_edge(u as NodeId, v as NodeId);
            }
        }
    }
    b.build().expect("generator produced invalid ids")
}

/// Maps a linear index into a node pair: upper-triangular for undirected,
/// row-major-minus-diagonal for directed.
fn unrank_pair(idx: u64, n: u64, directed: bool) -> (u64, u64) {
    if directed {
        let u = idx / (n - 1);
        let mut v = idx % (n - 1);
        if v >= u {
            v += 1;
        }
        (u, v)
    } else {
        // Find row u such that idx falls in the u-th triangle slab.
        // Row u (0-based) has (n-1-u) entries.
        let mut u = 0u64;
        let mut rem = idx;
        loop {
            let row = n - 1 - u;
            if rem < row {
                return (u, u + 1 + rem);
            }
            rem -= row;
            u += 1;
        }
    }
}

/// Barabási–Albert preferential attachment: each new node attaches to `m`
/// existing nodes with probability proportional to degree.
///
/// Produces the heavy-tailed degree distributions that make neighborhood
/// explosion (experiment E1) visible.
pub fn barabasi_albert(n: usize, m: usize, seed: u64) -> CsrGraph {
    assert!(m >= 1, "attachment count must be >= 1");
    assert!(n > m, "need more nodes than attachment edges");
    let mut rng = sgnn_linalg::rng::seeded(seed);
    let mut b = GraphBuilder::new(n).symmetric().drop_self_loops();
    // Repeated-endpoint list: sampling uniformly from it is sampling
    // proportional to degree.
    let mut endpoints: Vec<NodeId> = Vec::with_capacity(2 * n * m);
    // Seed clique over the first m+1 nodes.
    for u in 0..=(m as NodeId) {
        for v in (u + 1)..=(m as NodeId) {
            b.add_edge(u, v);
            endpoints.push(u);
            endpoints.push(v);
        }
    }
    for u in (m + 1)..n {
        let mut chosen = std::collections::HashSet::with_capacity(m);
        while chosen.len() < m {
            let t = endpoints[rng.random_range(0..endpoints.len())];
            chosen.insert(t);
        }
        // Sort so the endpoint list (and thus future draws) is independent
        // of HashSet iteration order — keeps the generator deterministic.
        let mut chosen: Vec<NodeId> = chosen.into_iter().collect();
        chosen.sort_unstable();
        for &v in &chosen {
            b.add_edge(u as NodeId, v);
            endpoints.push(u as NodeId);
            endpoints.push(v);
        }
    }
    b.build().expect("generator produced invalid ids")
}

/// R-MAT power-law generator (Chakrabarti et al.), the Graph500 workhorse.
///
/// Emits `edge_factor * 2^scale` undirected edges over `2^scale` nodes with
/// quadrant probabilities `(a, b, c, d)`; the defaults `(0.57, 0.19, 0.19,
/// 0.05)` match Graph500. Duplicates merge in the builder, so the final
/// edge count is slightly below the nominal one.
pub fn rmat(scale: u32, edge_factor: usize, probs: (f64, f64, f64, f64), seed: u64) -> CsrGraph {
    let (a, b, c, d) = probs;
    assert!((a + b + c + d - 1.0).abs() < 1e-9, "quadrant probabilities must sum to 1");
    let n = 1usize << scale;
    let m = edge_factor * n;
    let mut rng = sgnn_linalg::rng::seeded(seed);
    let mut builder = GraphBuilder::new(n).symmetric().drop_self_loops();
    for _ in 0..m {
        let (mut u, mut v) = (0usize, 0usize);
        for _ in 0..scale {
            let r: f64 = rng.random::<f64>();
            let (du, dv) = if r < a {
                (0, 0)
            } else if r < a + b {
                (0, 1)
            } else if r < a + b + c {
                (1, 0)
            } else {
                (1, 1)
            };
            u = (u << 1) | du;
            v = (v << 1) | dv;
        }
        builder.add_edge(u as NodeId, v as NodeId);
    }
    builder.build().expect("generator produced invalid ids")
}

/// Graph500-default R-MAT.
pub fn rmat_default(scale: u32, edge_factor: usize, seed: u64) -> CsrGraph {
    rmat(scale, edge_factor, (0.57, 0.19, 0.19, 0.05), seed)
}

/// Stochastic block model with explicit homophily control.
///
/// `blocks[i]` is the size of community `i`. A node pair inside a block is
/// connected with probability `p_in`, across blocks with `p_out`. Setting
/// `p_in > p_out` yields homophilous graphs; `p_in < p_out` heterophilous —
/// the axis experiments E5/E6 sweep. Returns the graph and per-node block
/// labels.
pub fn sbm(blocks: &[usize], p_in: f64, p_out: f64, seed: u64) -> (CsrGraph, Vec<usize>) {
    let n: usize = blocks.iter().sum();
    let mut label = vec![0usize; n];
    let mut start = 0usize;
    let mut offsets = Vec::with_capacity(blocks.len());
    for (bi, &sz) in blocks.iter().enumerate() {
        offsets.push(start);
        for u in start..start + sz {
            label[u] = bi;
        }
        start += sz;
    }
    let mut b = GraphBuilder::new(n).symmetric().drop_self_loops();
    let mut rng = sgnn_linalg::rng::seeded(seed);
    // Within-block edges: ER inside each block.
    for (bi, &sz) in blocks.iter().enumerate() {
        let off = offsets[bi] as u64;
        sample_pairs(&mut rng, sz as u64, sz as u64, true, p_in, |u, v| {
            b.add_edge((off + u) as NodeId, (off + v) as NodeId);
        });
    }
    // Cross-block edges: bipartite ER per block pair.
    for bi in 0..blocks.len() {
        for bj in (bi + 1)..blocks.len() {
            let (oi, oj) = (offsets[bi] as u64, offsets[bj] as u64);
            sample_pairs(&mut rng, blocks[bi] as u64, blocks[bj] as u64, false, p_out, |u, v| {
                b.add_edge((oi + u) as NodeId, (oj + v) as NodeId);
            });
        }
    }
    (b.build().expect("generator produced invalid ids"), label)
}

/// Geometric-skip sampling over an `rows × cols` pair grid. When
/// `triangular`, only pairs `u < v` of a square grid are considered.
fn sample_pairs<R: Rng + RngExt>(
    rng: &mut R,
    rows: u64,
    cols: u64,
    triangular: bool,
    p: f64,
    mut emit: impl FnMut(u64, u64),
) {
    if p <= 0.0 || rows == 0 || cols == 0 {
        return;
    }
    let total = if triangular { rows * (rows - 1) / 2 } else { rows * cols };
    if p >= 1.0 {
        for idx in 0..total {
            let (u, v) =
                if triangular { unrank_pair(idx, rows, false) } else { (idx / cols, idx % cols) };
            emit(u, v);
        }
        return;
    }
    let log1mp = (1.0 - p).ln();
    let mut idx: i64 = -1;
    loop {
        let r: f64 = rng.random::<f64>().max(f64::MIN_POSITIVE);
        let skip = (r.ln() / log1mp).floor() as i64 + 1;
        idx += skip.max(1);
        if idx as u64 >= total {
            break;
        }
        let (u, v) = if triangular {
            unrank_pair(idx as u64, rows, false)
        } else {
            ((idx as u64) / cols, (idx as u64) % cols)
        };
        emit(u, v);
    }
}

/// Planted-partition convenience: `k` equal blocks of size `n/k`, with the
/// *homophily ratio* `h ∈ (0,1)` controlling the fraction of a node's edges
/// that stay inside its block at fixed expected degree `deg`.
///
/// `h = (k-1)·p_in / ((k-1)·p_in + (k-1)·p_out_total)` — concretely we set
/// `p_in` and `p_out` such that expected within-degree is `h·deg` and
/// cross-degree `(1-h)·deg` spread over the other `k-1` blocks.
pub fn planted_partition(
    n: usize,
    k: usize,
    deg: f64,
    h: f64,
    seed: u64,
) -> (CsrGraph, Vec<usize>) {
    assert!(k >= 2 && n >= 2 * k, "need at least two blocks of size >= 2");
    assert!((0.0..=1.0).contains(&h), "homophily must be in [0,1]");
    let bs = n / k;
    let blocks = vec![bs; k];
    let nb = bs as f64;
    let p_in = (h * deg / (nb - 1.0)).min(1.0);
    let p_out = (((1.0 - h) * deg) / (nb * (k as f64 - 1.0))).min(1.0);
    sbm(&blocks, p_in, p_out, seed)
}

/// Path graph `0 — 1 — … — n-1` (long-range dependency substrate, E8).
pub fn chain(n: usize) -> CsrGraph {
    let mut b = GraphBuilder::new(n).symmetric();
    for u in 1..n {
        b.add_edge((u - 1) as NodeId, u as NodeId);
    }
    b.build().expect("chain ids valid")
}

/// 2-D grid graph with 4-neighbor connectivity.
pub fn grid2d(rows: usize, cols: usize) -> CsrGraph {
    let n = rows * cols;
    let mut b = GraphBuilder::new(n).symmetric();
    for r in 0..rows {
        for c in 0..cols {
            let u = (r * cols + c) as NodeId;
            if c + 1 < cols {
                b.add_edge(u, u + 1);
            }
            if r + 1 < rows {
                b.add_edge(u, u + cols as NodeId);
            }
        }
    }
    b.build().expect("grid ids valid")
}

/// Star graph: node 0 is the hub connected to all others.
pub fn star(n: usize) -> CsrGraph {
    let mut b = GraphBuilder::new(n).symmetric();
    for u in 1..n {
        b.add_edge(0, u as NodeId);
    }
    b.build().expect("star ids valid")
}

/// Complete graph `K_n` (small-scale tests only).
pub fn complete(n: usize) -> CsrGraph {
    let mut b = GraphBuilder::new(n).symmetric();
    for u in 0..n as NodeId {
        for v in (u + 1)..n as NodeId {
            b.add_edge(u, v);
        }
    }
    b.build().expect("complete ids valid")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn er_density_close_to_p() {
        let n = 500;
        let p = 0.02;
        let g = erdos_renyi(n, p, false, 3);
        let possible = (n * (n - 1) / 2) as f64;
        let observed = g.num_edges() as f64 / 2.0; // undirected stored twice
        let density = observed / possible;
        assert!((density - p).abs() < 0.004, "density {density}");
        assert!(g.is_symmetric());
        g.validate().unwrap();
    }

    #[test]
    fn er_directed_has_asymmetric_edges() {
        let g = erdos_renyi(100, 0.05, true, 5);
        g.validate().unwrap();
        let t = g.transpose();
        assert_ne!(g.indices(), t.indices());
    }

    #[test]
    fn er_extremes() {
        let g0 = erdos_renyi(50, 0.0, false, 1);
        assert_eq!(g0.num_edges(), 0);
        let g1 = erdos_renyi(20, 1.0, false, 1);
        assert_eq!(g1.num_edges(), 20 * 19);
    }

    #[test]
    fn unrank_pair_is_bijective_undirected() {
        let n = 7u64;
        let total = n * (n - 1) / 2;
        let mut seen = std::collections::HashSet::new();
        for idx in 0..total {
            let (u, v) = unrank_pair(idx, n, false);
            assert!(u < v && v < n, "({u},{v})");
            assert!(seen.insert((u, v)));
        }
        assert_eq!(seen.len() as u64, total);
    }

    #[test]
    fn unrank_pair_is_bijective_directed() {
        let n = 6u64;
        let total = n * (n - 1);
        let mut seen = std::collections::HashSet::new();
        for idx in 0..total {
            let (u, v) = unrank_pair(idx, n, true);
            assert!(u != v && u < n && v < n);
            assert!(seen.insert((u, v)));
        }
    }

    #[test]
    fn ba_every_late_node_has_at_least_m_edges() {
        let g = barabasi_albert(300, 3, 9);
        g.validate().unwrap();
        assert!(g.is_symmetric());
        for u in 4..300u32 {
            assert!(g.degree(u) >= 3, "node {u} degree {}", g.degree(u));
        }
        // Preferential attachment produces a hub far above median degree.
        let mut degs = g.degrees();
        degs.sort_unstable();
        assert!(*degs.last().unwrap() > 3 * degs[150]);
    }

    #[test]
    fn rmat_shape_and_skew() {
        let g = rmat_default(10, 8, 2);
        g.validate().unwrap();
        assert_eq!(g.num_nodes(), 1024);
        assert!(g.num_edges() > 1024); // some dupes merge but far above n
        let max = g.max_degree();
        let avg = g.num_edges() as f64 / g.num_nodes() as f64;
        assert!(max as f64 > 6.0 * avg, "rmat should be skewed: max {max}, avg {avg}");
    }

    #[test]
    fn sbm_labels_and_homophily_direction() {
        let (g, labels) = sbm(&[100, 100], 0.10, 0.01, 7);
        g.validate().unwrap();
        assert_eq!(labels.len(), 200);
        let mut within = 0usize;
        let mut across = 0usize;
        for (u, v, _) in g.edges() {
            if labels[u as usize] == labels[v as usize] {
                within += 1;
            } else {
                across += 1;
            }
        }
        assert!(within > 3 * across, "within {within} across {across}");
    }

    #[test]
    fn planted_partition_controls_homophily() {
        let frac = |h: f64| {
            let (g, labels) = planted_partition(1000, 4, 12.0, h, 11);
            let mut within = 0usize;
            let mut total = 0usize;
            for (u, v, _) in g.edges() {
                total += 1;
                if labels[u as usize] == labels[v as usize] {
                    within += 1;
                }
            }
            within as f64 / total as f64
        };
        let high = frac(0.9);
        let low = frac(0.1);
        assert!(high > 0.8, "measured homophily {high}");
        assert!(low < 0.2, "measured heterophily {low}");
    }

    #[test]
    fn chain_grid_star_complete_shapes() {
        let c = chain(5);
        assert_eq!(c.num_edges(), 8);
        assert_eq!(c.degree(0), 1);
        assert_eq!(c.degree(2), 2);
        let g = grid2d(3, 4);
        assert_eq!(g.num_nodes(), 12);
        assert_eq!(g.num_edges(), 2 * (3 * 3 + 2 * 4));
        let s = star(6);
        assert_eq!(s.degree(0), 5);
        assert_eq!(s.degree(3), 1);
        let k = complete(5);
        assert_eq!(k.num_edges(), 20);
    }

    #[test]
    fn generators_are_deterministic() {
        let a = barabasi_albert(200, 2, 42);
        let b = barabasi_albert(200, 2, 42);
        assert_eq!(a.indices(), b.indices());
        let c = rmat_default(8, 4, 42);
        let d = rmat_default(8, 4, 42);
        assert_eq!(c.indices(), d.indices());
    }
}
