//! 2-D cache-blocked SpMM with register-tiled inner kernels.
//!
//! [`spmm_into`](crate::spmm::spmm_into) streams each destination row's
//! full feature width per edge, reloading the output row from memory on
//! every axpy. This module tiles the product two ways:
//!
//! - **Feature columns** are processed in windows of
//!   [`BlockSpec::col_block`] entries so the
//!   [`sgnn_linalg::simd::row_gather_weighted`] kernels can hold the whole
//!   window in vector registers across a row's edge loop — one output
//!   store per (row, window) instead of one load+store per edge.
//! - **Destination rows** are processed in tiles of
//!   [`BlockSpec::row_block`] rows so the set of gathered source sub-rows
//!   stays L2-resident within a tile; composing with an RCM/degree
//!   ordering from [`crate::reorder`] clusters those sources further.
//!
//! Per feature column the accumulation chain (first edge initializes,
//! later edges add, CSR order) is exactly the one `spmm_into` produces, so
//! [`spmm_blocked_into`] is **bitwise identical** to `spmm_into` for every
//! block size and thread count — DESIGN.md §9. Feature widths ≤ 4 delegate
//! to `spmm_into`'s register micro-kernels outright (blocking cannot split
//! them and their accumulate-from-zero order differs on `-0.0`).
//!
//! [`spmm_quant_into`] is the inference-only quantized twin: it gathers
//! int8/f16 payloads (4×/2× fewer bytes per edge) and accumulates in f32;
//! its error tolerance is documented in DESIGN.md §9 and pinned by tests.

use crate::csr::CsrGraph;
use sgnn_linalg::quant::{QuantMatrix, QuantPayload};
use sgnn_linalg::{par, simd, DenseMatrix};

/// Minimum scalar multiply-adds that justify engaging the worker pool
/// (same threshold as `spmm_into`).
const MIN_PAR_WORK: usize = 1 << 16;

static BLOCKED_CALLS: sgnn_obs::Counter = sgnn_obs::Counter::new("linalg.spmm_blocked.calls");
static BLOCKED_FLOPS: sgnn_obs::Counter = sgnn_obs::Counter::new("linalg.spmm_blocked.flops");
static BLOCKED_BYTES: sgnn_obs::Counter = sgnn_obs::Counter::new("linalg.spmm_blocked.bytes_moved");
static QUANT_CALLS: sgnn_obs::Counter = sgnn_obs::Counter::new("linalg.spmm_quant.calls");
static QUANT_FLOPS: sgnn_obs::Counter = sgnn_obs::Counter::new("linalg.spmm_quant.flops");
static QUANT_BYTES: sgnn_obs::Counter = sgnn_obs::Counter::new("linalg.spmm_quant.bytes_moved");

/// Tile geometry for the blocked SpMM.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlockSpec {
    /// Destination rows per tile (L2 residency knob).
    pub row_block: usize,
    /// Feature columns per window (register residency knob).
    pub col_block: usize,
}

impl BlockSpec {
    /// Picks tile sizes for a graph/feature-width pair.
    ///
    /// The column window is the feature width capped at 64 (eight YMM
    /// accumulators — the widest register tile the AVX2 gather kernel
    /// holds). The row tile targets half of a typical 2 MB L2 for the
    /// gathered source sub-rows, sized with the mean degree as the
    /// distinct-source estimate.
    pub fn auto(g: &CsrGraph, d: usize) -> BlockSpec {
        let col_block = d.clamp(1, 64);
        let n = g.num_nodes().max(1);
        let mean_deg = (g.num_edges() as f64 / n as f64).max(1.0);
        let l2_target = 1 << 20; // bytes
        let per_row = mean_deg * col_block as f64 * 4.0 + 1.0;
        let row_block = ((l2_target as f64 / per_row) as usize).clamp(32, 8192);
        BlockSpec { row_block, col_block }
    }
}

/// `Y = A · X`, bitwise identical to [`crate::spmm::spmm_into`] for every
/// `spec`, overwriting `y`.
pub fn spmm_blocked_into(g: &CsrGraph, x: &DenseMatrix, y: &mut DenseMatrix, spec: BlockSpec) {
    assert_eq!(x.rows(), g.num_nodes(), "feature rows must equal node count");
    assert_eq!(
        y.shape(),
        (g.num_nodes(), x.cols()),
        "output shape must be (num_nodes, feature_cols)"
    );
    assert!(spec.row_block > 0 && spec.col_block > 0, "block sizes must be positive");
    let d = x.cols();
    if d == 0 {
        return;
    }
    // The ≤ 4-wide micro-kernels in spmm_into accumulate from zero (their
    // chain differs from init-from-first only on -0.0, but differs); a
    // column window can't split them anyway, so delegate.
    if d <= 4 {
        crate::spmm::spmm_into(g, x, y);
        return;
    }
    let _sp = sgnn_obs::span!("linalg.spmm_blocked");
    BLOCKED_CALLS.incr();
    BLOCKED_FLOPS.add(crate::spmm::spmm_flops(g, d));
    BLOCKED_BYTES.add(crate::spmm::spmm_bytes(g, d));
    let indptr = g.indptr();
    let indices = g.indices();
    let weights = g.weights();
    let xd = x.data();
    let min_weight = (MIN_PAR_WORK / d).max(1);
    par::par_balanced_rows_mut(y.data_mut(), d, indptr, min_weight, |first_row, chunk| {
        let rows = chunk.len() / d;
        let mut r0 = 0;
        while r0 < rows {
            let r1 = (r0 + spec.row_block).min(rows);
            let mut c0 = 0;
            while c0 < d {
                let tw = spec.col_block.min(d - c0);
                for local in r0..r1 {
                    let u = first_row + local;
                    let (lo, hi) = (indptr[u], indptr[u + 1]);
                    let out = &mut chunk[local * d + c0..local * d + c0 + tw];
                    if lo == hi {
                        out.fill(0.0);
                        continue;
                    }
                    match weights {
                        None => simd::row_gather_unweighted(out, xd, d, c0, &indices[lo..hi]),
                        Some(ws) => {
                            simd::row_gather_weighted(out, xd, d, c0, &indices[lo..hi], &ws[lo..hi])
                        }
                    }
                }
                c0 += tw;
            }
            r0 = r1;
        }
    });
}

/// Allocating convenience wrapper around [`spmm_blocked_into`] with
/// [`BlockSpec::auto`] geometry.
pub fn spmm_blocked(g: &CsrGraph, x: &DenseMatrix) -> DenseMatrix {
    let mut y = DenseMatrix::zeros(g.num_nodes(), x.cols());
    spmm_blocked_into(g, x, &mut y, BlockSpec::auto(g, x.cols()));
    y
}

/// `Y = A · Xq` over quantized features — the inference-only serving
/// path. Accumulates in f32 from a zeroed window; per-source scales fold
/// into the per-edge coefficient. Error bound: DESIGN.md §9.
pub fn spmm_quant_into(g: &CsrGraph, xq: &QuantMatrix, y: &mut DenseMatrix, spec: BlockSpec) {
    assert_eq!(xq.rows(), g.num_nodes(), "feature rows must equal node count");
    assert_eq!(
        y.shape(),
        (g.num_nodes(), xq.cols()),
        "output shape must be (num_nodes, feature_cols)"
    );
    assert!(spec.row_block > 0 && spec.col_block > 0, "block sizes must be positive");
    let d = xq.cols();
    if d == 0 {
        return;
    }
    let _sp = sgnn_obs::span!("linalg.spmm_quant");
    QUANT_CALLS.incr();
    QUANT_FLOPS.add(crate::spmm::spmm_flops(g, d) + g.num_edges() as u64 * d as u64);
    QUANT_BYTES.add(spmm_quant_bytes(g, xq));
    let indptr = g.indptr();
    let indices = g.indices();
    let weights = g.weights();
    let scales = xq.scales();
    let min_weight = (MIN_PAR_WORK / d).max(1);
    par::par_balanced_rows_mut(y.data_mut(), d, indptr, min_weight, |first_row, chunk| {
        let rows = chunk.len() / d;
        let mut r0 = 0;
        while r0 < rows {
            let r1 = (r0 + spec.row_block).min(rows);
            let mut c0 = 0;
            while c0 < d {
                let tw = spec.col_block.min(d - c0);
                for local in r0..r1 {
                    let u = first_row + local;
                    let (lo, hi) = (indptr[u], indptr[u + 1]);
                    let out = &mut chunk[local * d + c0..local * d + c0 + tw];
                    if lo == hi {
                        out.fill(0.0);
                        continue;
                    }
                    let idx = &indices[lo..hi];
                    let ws = weights.map(|w| &w[lo..hi]);
                    match xq.payload() {
                        QuantPayload::I8(q) => {
                            simd::row_gather_q_i8(out, q, scales, d, c0, idx, ws)
                        }
                        QuantPayload::F16(h) => {
                            simd::row_gather_q_f16(out, h, scales, d, c0, idx, ws)
                        }
                    }
                }
                c0 += tw;
            }
            r0 = r1;
        }
    });
}

/// Analytic compulsory traffic for [`spmm_quant_into`]: quantized payload
/// gathers plus scale lookups, f32 output (compare with
/// [`crate::spmm::spmm_bytes`] for the f32 gather volume this saves).
pub fn spmm_quant_bytes(g: &CsrGraph, xq: &QuantMatrix) -> u64 {
    let nnz = g.num_edges() as u64;
    let n = g.num_nodes() as u64;
    let d = xq.cols() as u64;
    let elem = xq.mode().elem_bytes() as u64;
    let index_stream = 4 * nnz + 8 * (n + 1);
    let weight_stream = if g.weights().is_some() { 4 * nnz } else { 0 };
    index_stream + weight_stream + 4 * nnz + elem * d * nnz + 4 * n * d
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate;
    use crate::normalize::{normalized_adjacency, NormKind};
    use crate::reorder::{compute_order, relabel, Reordering};
    use crate::spmm::{spmm, spmm_into};
    use sgnn_linalg::QuantMode;

    fn bits(m: &DenseMatrix) -> Vec<u32> {
        m.data().iter().map(|v| v.to_bits()).collect()
    }

    #[test]
    fn blocked_is_bitwise_equal_across_specs() {
        let raw = generate::barabasi_albert(400, 4, 3);
        let weighted = normalized_adjacency(&raw, NormKind::Sym, true).unwrap();
        for g in [&raw, &weighted] {
            for d in [5usize, 8, 64, 70] {
                let x = DenseMatrix::gaussian(g.num_nodes(), d, 1.0, d as u64);
                let want = spmm(g, &x);
                for spec in [
                    BlockSpec { row_block: 1, col_block: 1 },
                    BlockSpec { row_block: 7, col_block: 8 },
                    BlockSpec { row_block: 64, col_block: 33 },
                    BlockSpec::auto(g, d),
                ] {
                    let mut y =
                        DenseMatrix::from_vec(g.num_nodes(), d, vec![f32::NAN; g.num_nodes() * d]);
                    spmm_blocked_into(g, &x, &mut y, spec);
                    assert_eq!(bits(&y), bits(&want), "d={d} spec={spec:?}");
                }
            }
        }
    }

    #[test]
    fn narrow_widths_delegate_and_agree() {
        let g = normalized_adjacency(&generate::barabasi_albert(200, 3, 9), NormKind::Sym, true)
            .unwrap();
        for d in 1..=4usize {
            let x = DenseMatrix::gaussian(200, d, 1.0, d as u64);
            let want = spmm(&g, &x);
            let mut y = DenseMatrix::zeros(200, d);
            spmm_blocked_into(&g, &x, &mut y, BlockSpec { row_block: 16, col_block: 2 });
            assert_eq!(bits(&y), bits(&want), "d={d}");
        }
    }

    #[test]
    fn blocked_matches_after_rcm_relabel() {
        let g = normalized_adjacency(&generate::barabasi_albert(300, 4, 1), NormKind::Sym, true)
            .unwrap();
        let order = compute_order(&g, Reordering::Rcm);
        let (rg, _) = relabel(&g, &order);
        let x = DenseMatrix::gaussian(300, 32, 1.0, 5);
        let mut want = DenseMatrix::zeros(300, 32);
        spmm_into(&rg, &x, &mut want);
        let mut y = DenseMatrix::zeros(300, 32);
        spmm_blocked_into(&rg, &x, &mut y, BlockSpec { row_block: 48, col_block: 16 });
        assert_eq!(bits(&y), bits(&want));
    }

    #[test]
    fn blocked_handles_isolated_nodes() {
        // Node 3 has no edges; its rows must be zeroed in every window.
        let g = crate::GraphBuilder::new(5)
            .symmetric()
            .edges(&[(0, 1), (1, 2), (4, 0)])
            .build()
            .unwrap();
        let x = DenseMatrix::gaussian(5, 9, 1.0, 2);
        let want = spmm(&g, &x);
        let mut y = DenseMatrix::from_vec(5, 9, vec![f32::NAN; 45]);
        spmm_blocked_into(&g, &x, &mut y, BlockSpec { row_block: 2, col_block: 4 });
        assert_eq!(bits(&y), bits(&want));
    }

    #[test]
    fn quant_spmm_stays_inside_documented_tolerance() {
        let g = normalized_adjacency(&generate::barabasi_albert(500, 5, 7), NormKind::Sym, true)
            .unwrap();
        let d = 48;
        let x = DenseMatrix::gaussian(500, d, 1.0, 11);
        let exact = spmm(&g, &x);
        let spec = BlockSpec::auto(&g, d);
        for (mode, tol) in [(QuantMode::Int8, 2e-2f32), (QuantMode::F16, 4e-3f32)] {
            let xq = QuantMatrix::quantize(&x, mode).unwrap();
            let mut y = DenseMatrix::zeros(500, d);
            spmm_quant_into(&g, &xq, &mut y, spec);
            let mut max_err = 0f32;
            for (a, b) in y.data().iter().zip(exact.data()) {
                max_err = max_err.max((a - b).abs());
            }
            // Normalized adjacency keeps row sums ≤ 1, so the aggregate
            // error stays near the per-element quantization step.
            assert!(max_err < tol, "{}: max_err {max_err}", mode.label());
            assert!(max_err > 0.0, "{}: suspiciously exact", mode.label());
        }
    }

    #[test]
    fn quant_bytes_shrink_with_payload_width() {
        let g = normalized_adjacency(&generate::barabasi_albert(100, 4, 2), NormKind::Sym, true)
            .unwrap();
        let x = DenseMatrix::gaussian(100, 64, 1.0, 1);
        let f32_bytes = crate::spmm::spmm_bytes(&g, 64);
        let q8 = spmm_quant_bytes(&g, &QuantMatrix::quantize_i8(&x));
        let q16 = spmm_quant_bytes(&g, &QuantMatrix::quantize_f16(&x));
        assert!(q8 < q16 && q16 < f32_bytes, "{q8} {q16} {f32_bytes}");
    }

    #[test]
    fn auto_spec_is_sane() {
        let g = generate::barabasi_albert(1000, 8, 4);
        let spec = BlockSpec::auto(&g, 64);
        assert_eq!(spec.col_block, 64);
        assert!((32..=8192).contains(&spec.row_block), "{spec:?}");
        assert_eq!(BlockSpec::auto(&g, 7).col_block, 7);
    }
}
