//! Breadth-first traversal utilities.
//!
//! These power the baselines of several experiments: BFS distances are the
//! ground truth the hub-labeling index (E7) is verified against, k-hop
//! neighborhoods measure neighborhood explosion (E1), and connected
//! components sanity-check generators and partitioners.

use crate::csr::{CsrGraph, NodeId};

/// Distance value meaning "unreachable".
pub const UNREACHABLE: u32 = u32::MAX;

/// Single-source BFS distances (hop counts). Unreachable nodes get
/// [`UNREACHABLE`].
pub fn bfs_distances(g: &CsrGraph, source: NodeId) -> Vec<u32> {
    let n = g.num_nodes();
    let mut dist = vec![UNREACHABLE; n];
    let mut queue = std::collections::VecDeque::new();
    dist[source as usize] = 0;
    queue.push_back(source);
    while let Some(u) = queue.pop_front() {
        let du = dist[u as usize];
        for &v in g.neighbors(u) {
            if dist[v as usize] == UNREACHABLE {
                dist[v as usize] = du + 1;
                queue.push_back(v);
            }
        }
    }
    dist
}

/// BFS limited to `max_hops`; returns the visited node set (including the
/// source) — i.e. the receptive field of a `max_hops`-layer GNN at `source`.
pub fn k_hop_neighborhood(g: &CsrGraph, source: NodeId, max_hops: u32) -> Vec<NodeId> {
    let n = g.num_nodes();
    let mut dist = vec![UNREACHABLE; n];
    let mut queue = std::collections::VecDeque::new();
    let mut out = Vec::new();
    dist[source as usize] = 0;
    queue.push_back(source);
    out.push(source);
    while let Some(u) = queue.pop_front() {
        let du = dist[u as usize];
        if du == max_hops {
            continue;
        }
        for &v in g.neighbors(u) {
            if dist[v as usize] == UNREACHABLE {
                dist[v as usize] = du + 1;
                out.push(v);
                queue.push_back(v);
            }
        }
    }
    out
}

/// Connected components (treating edges as undirected is the caller's
/// responsibility — run on a symmetrized graph). Returns `(labels, count)`
/// with labels in `0..count`.
pub fn connected_components(g: &CsrGraph) -> (Vec<u32>, usize) {
    let n = g.num_nodes();
    let mut label = vec![u32::MAX; n];
    let mut next = 0u32;
    let mut queue = std::collections::VecDeque::new();
    for s in 0..n {
        if label[s] != u32::MAX {
            continue;
        }
        label[s] = next;
        queue.push_back(s as NodeId);
        while let Some(u) = queue.pop_front() {
            for &v in g.neighbors(u) {
                if label[v as usize] == u32::MAX {
                    label[v as usize] = next;
                    queue.push_back(v);
                }
            }
        }
        next += 1;
    }
    (label, next as usize)
}

/// Exact single-pair shortest-path distance via bidirectional BFS.
///
/// Much faster than full BFS on large graphs; used as the online baseline
/// in the hub-labeling experiment.
pub fn sp_distance(g: &CsrGraph, s: NodeId, t: NodeId) -> u32 {
    if s == t {
        return 0;
    }
    let n = g.num_nodes();
    let mut dist_s = vec![UNREACHABLE; n];
    let mut dist_t = vec![UNREACHABLE; n];
    dist_s[s as usize] = 0;
    dist_t[t as usize] = 0;
    let mut frontier_s = vec![s];
    let mut frontier_t = vec![t];
    let mut best = UNREACHABLE;
    let mut depth_s = 0u32;
    let mut depth_t = 0u32;
    while !frontier_s.is_empty() && !frontier_t.is_empty() {
        // Expand the smaller frontier.
        let expand_s = frontier_s.len() <= frontier_t.len();
        let (frontier, dist_mine, dist_other, depth) = if expand_s {
            (&mut frontier_s, &mut dist_s, &dist_t, &mut depth_s)
        } else {
            (&mut frontier_t, &mut dist_t, &dist_s, &mut depth_t)
        };
        let mut next_frontier = Vec::new();
        for &u in frontier.iter() {
            for &v in g.neighbors(u) {
                if dist_mine[v as usize] == UNREACHABLE {
                    dist_mine[v as usize] = *depth + 1;
                    if dist_other[v as usize] != UNREACHABLE {
                        best = best.min(*depth + 1 + dist_other[v as usize]);
                    }
                    next_frontier.push(v);
                }
            }
        }
        *depth += 1;
        *frontier = next_frontier;
        if best != UNREACHABLE && depth_s + depth_t >= best {
            return best;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate;

    #[test]
    fn bfs_on_chain_counts_hops() {
        let g = generate::chain(6);
        let d = bfs_distances(&g, 0);
        assert_eq!(d, vec![0, 1, 2, 3, 4, 5]);
    }

    #[test]
    fn bfs_marks_unreachable() {
        let g = crate::GraphBuilder::new(4).symmetric().edges(&[(0, 1)]).build().unwrap();
        let d = bfs_distances(&g, 0);
        assert_eq!(d[1], 1);
        assert_eq!(d[2], UNREACHABLE);
    }

    #[test]
    fn k_hop_grows_monotonically() {
        let g = generate::barabasi_albert(500, 3, 1);
        let mut prev = 0usize;
        for k in 0..4 {
            let hood = k_hop_neighborhood(&g, 0, k);
            assert!(hood.len() >= prev);
            prev = hood.len();
        }
        assert_eq!(k_hop_neighborhood(&g, 7, 0), vec![7]);
    }

    #[test]
    fn components_on_disjoint_chains() {
        let mut b = crate::GraphBuilder::new(6).symmetric();
        b.add_edge(0, 1);
        b.add_edge(1, 2);
        b.add_edge(3, 4);
        let g = b.build().unwrap();
        let (labels, count) = connected_components(&g);
        assert_eq!(count, 3); // {0,1,2}, {3,4}, {5}
        assert_eq!(labels[0], labels[2]);
        assert_ne!(labels[0], labels[3]);
        assert_ne!(labels[3], labels[5]);
    }

    #[test]
    fn bidirectional_matches_full_bfs() {
        let g = generate::erdos_renyi(300, 0.02, false, 13);
        let d0 = bfs_distances(&g, 0);
        for t in [1u32, 17, 99, 250] {
            assert_eq!(sp_distance(&g, 0, t), d0[t as usize], "target {t}");
        }
        assert_eq!(sp_distance(&g, 5, 5), 0);
    }

    #[test]
    fn sp_distance_unreachable() {
        let g = crate::GraphBuilder::new(4).symmetric().edges(&[(0, 1), (2, 3)]).build().unwrap();
        assert_eq!(sp_distance(&g, 0, 3), UNREACHABLE);
    }
}
