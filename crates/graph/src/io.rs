//! Graph persistence: text edge lists and a compact binary format.
//!
//! The binary layout (little-endian, built with `bytes`):
//!
//! ```text
//! magic   u32  = 0x53474E31  ("SGN1")
//! flags   u32  bit0 = weighted
//! n       u64
//! m       u64  (= indices length)
//! indptr  (n+1) × u64
//! indices m × u32
//! weights m × f32          (iff weighted)
//! ```

use crate::csr::{CsrGraph, NodeId};
use crate::{GraphError, Result};
use bytes::{Buf, BufMut, Bytes, BytesMut};
use std::io::{BufRead, Write};

const MAGIC: u32 = 0x5347_4E31;

/// Serializes a graph to the binary format.
pub fn to_bytes(g: &CsrGraph) -> Bytes {
    let weighted = g.is_weighted();
    let mut buf = BytesMut::with_capacity(24 + g.nbytes());
    buf.put_u32_le(MAGIC);
    buf.put_u32_le(u32::from(weighted));
    buf.put_u64_le(g.num_nodes() as u64);
    buf.put_u64_le(g.num_edges() as u64);
    for &p in g.indptr() {
        buf.put_u64_le(p as u64);
    }
    for &v in g.indices() {
        buf.put_u32_le(v);
    }
    if let Some(w) = g.weights() {
        for &x in w {
            buf.put_f32_le(x);
        }
    }
    buf.freeze()
}

/// Deserializes a graph from the binary format, revalidating invariants.
pub fn from_bytes(mut buf: Bytes) -> Result<CsrGraph> {
    let need = |buf: &Bytes, n: usize, what: &str| -> Result<()> {
        if buf.remaining() < n {
            Err(GraphError::Corrupt(format!("truncated while reading {what}")))
        } else {
            Ok(())
        }
    };
    need(&buf, 8, "header")?;
    let magic = buf.get_u32_le();
    if magic != MAGIC {
        return Err(GraphError::Corrupt(format!("bad magic 0x{magic:08x}")));
    }
    let flags = buf.get_u32_le();
    let weighted = flags & 1 == 1;
    need(&buf, 16, "sizes")?;
    let n = buf.get_u64_le() as usize;
    let m = buf.get_u64_le() as usize;
    need(&buf, (n + 1) * 8, "indptr")?;
    let mut indptr = Vec::with_capacity(n + 1);
    for _ in 0..=n {
        indptr.push(buf.get_u64_le() as usize);
    }
    need(&buf, m * 4, "indices")?;
    let mut indices: Vec<NodeId> = Vec::with_capacity(m);
    for _ in 0..m {
        indices.push(buf.get_u32_le());
    }
    let weights = if weighted {
        need(&buf, m * 4, "weights")?;
        let mut w = Vec::with_capacity(m);
        for _ in 0..m {
            w.push(buf.get_f32_le());
        }
        Some(w)
    } else {
        None
    };
    CsrGraph::from_parts(n, indptr, indices, weights)
}

/// Writes a whitespace-separated edge list (`u v [w]` per line).
pub fn write_edge_list<W: Write>(g: &CsrGraph, mut w: W) -> Result<()> {
    writeln!(w, "# sgnn edge list: n={} m={}", g.num_nodes(), g.num_edges())?;
    for (u, v, wt) in g.edges() {
        if g.is_weighted() {
            writeln!(w, "{u} {v} {wt}")?;
        } else {
            writeln!(w, "{u} {v}")?;
        }
    }
    Ok(())
}

/// Reads an edge list. Lines starting with `#` or `%` are comments; each
/// data line is `u v` or `u v w`. Node count is `max id + 1` unless a larger
/// `min_nodes` is given. The result is directed exactly as listed; call
/// sites wanting undirected graphs should symmetrize via the builder.
pub fn read_edge_list<R: BufRead>(r: R, min_nodes: usize) -> Result<CsrGraph> {
    let mut edges: Vec<(NodeId, NodeId, f32)> = Vec::new();
    let mut weighted = false;
    let mut max_id = 0u64;
    for (lineno, line) in r.lines().enumerate() {
        let line = line?;
        let t = line.trim();
        if t.is_empty() || t.starts_with('#') || t.starts_with('%') {
            continue;
        }
        let mut parts = t.split_whitespace();
        let parse_id = |s: Option<&str>| -> Result<u64> {
            s.ok_or_else(|| GraphError::Parse {
                line: lineno + 1,
                message: "expected two node ids".into(),
            })?
            .parse::<u64>()
            .map_err(|e| GraphError::Parse { line: lineno + 1, message: e.to_string() })
        };
        let u = parse_id(parts.next())?;
        let v = parse_id(parts.next())?;
        if u > u32::MAX as u64 || v > u32::MAX as u64 {
            return Err(GraphError::Parse {
                line: lineno + 1,
                message: "node id exceeds u32 range".into(),
            });
        }
        let w = match parts.next() {
            Some(ws) => {
                weighted = true;
                ws.parse::<f32>()
                    .map_err(|e| GraphError::Parse { line: lineno + 1, message: e.to_string() })?
            }
            None => 1.0,
        };
        max_id = max_id.max(u).max(v);
        edges.push((u as NodeId, v as NodeId, w));
    }
    let n = if edges.is_empty() { min_nodes } else { ((max_id + 1) as usize).max(min_nodes) };
    let mut b = crate::GraphBuilder::new(n);
    if weighted {
        b = b.weighted_edges(&edges);
    } else {
        let unit: Vec<(NodeId, NodeId)> = edges.iter().map(|&(u, v, _)| (u, v)).collect();
        b = b.edges(&unit);
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate;

    #[test]
    fn binary_round_trip_unweighted() {
        let g = generate::barabasi_albert(120, 3, 6);
        let b = to_bytes(&g);
        let g2 = from_bytes(b).unwrap();
        assert_eq!(g.indptr(), g2.indptr());
        assert_eq!(g.indices(), g2.indices());
        assert!(!g2.is_weighted());
    }

    #[test]
    fn binary_round_trip_weighted() {
        let g = generate::erdos_renyi(50, 0.1, false, 2);
        let norm = crate::normalize::normalized_adjacency(&g, crate::NormKind::Sym, true).unwrap();
        let g2 = from_bytes(to_bytes(&norm)).unwrap();
        assert_eq!(norm.weights(), g2.weights());
    }

    #[test]
    fn bad_magic_rejected() {
        let mut raw = to_bytes(&generate::chain(3)).to_vec();
        raw[0] ^= 0xFF;
        assert!(matches!(from_bytes(Bytes::from(raw)), Err(GraphError::Corrupt(_))));
    }

    #[test]
    fn truncated_payload_rejected() {
        let raw = to_bytes(&generate::chain(10));
        let cut = raw.slice(0..raw.len() - 5);
        assert!(from_bytes(cut).is_err());
    }

    #[test]
    fn text_round_trip() {
        let g = generate::erdos_renyi(40, 0.1, true, 4);
        let mut buf = Vec::new();
        write_edge_list(&g, &mut buf).unwrap();
        let g2 = read_edge_list(std::io::Cursor::new(buf), 40).unwrap();
        assert_eq!(g.indptr(), g2.indptr());
        assert_eq!(g.indices(), g2.indices());
    }

    #[test]
    fn text_with_comments_weights_and_min_nodes() {
        let text = "# header\n0 1 0.5\n% other comment\n1 2 1.5\n";
        let g = read_edge_list(std::io::Cursor::new(text), 10).unwrap();
        assert_eq!(g.num_nodes(), 10);
        assert!(g.is_weighted());
        assert_eq!(g.weights_of(0).unwrap(), &[0.5]);
    }

    #[test]
    fn text_parse_errors_carry_line_numbers() {
        let text = "0 1\nnot numbers\n";
        let err = read_edge_list(std::io::Cursor::new(text), 0).unwrap_err();
        match err {
            GraphError::Parse { line, .. } => assert_eq!(line, 2),
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn empty_edge_list_uses_min_nodes() {
        let g = read_edge_list(std::io::Cursor::new("# nothing\n"), 7).unwrap();
        assert_eq!(g.num_nodes(), 7);
        assert_eq!(g.num_edges(), 0);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Binary serialization round-trips arbitrary valid graphs exactly.
        #[test]
        fn binary_round_trip_any_graph(
            edges in proptest::collection::vec((0u32..30, 0u32..30), 0..200),
            weighted in proptest::bool::ANY,
        ) {
            let g = if weighted {
                let we: Vec<(u32, u32, f32)> =
                    edges.iter().map(|&(u, v)| (u, v, (u + v) as f32 * 0.25 + 0.1)).collect();
                crate::GraphBuilder::new(30).weighted_edges(&we).build().unwrap()
            } else {
                crate::GraphBuilder::new(30).edges(&edges).build().unwrap()
            };
            let g2 = from_bytes(to_bytes(&g)).unwrap();
            prop_assert_eq!(g.indptr(), g2.indptr());
            prop_assert_eq!(g.indices(), g2.indices());
            prop_assert_eq!(g.weights(), g2.weights());
        }
    }
}
