//! Graph statistics: degree profiles, triangles, clustering.
//!
//! Dataset characterization for the experiment reports — the survey's
//! scalability axes (degree skew, locality, community strength) need
//! numbers to be swept against.

use crate::csr::{CsrGraph, NodeId};

/// Degree-distribution summary.
#[derive(Debug, Clone, PartialEq)]
pub struct DegreeProfile {
    /// Minimum degree.
    pub min: usize,
    /// Median degree.
    pub median: usize,
    /// Mean degree.
    pub mean: f64,
    /// Maximum degree.
    pub max: usize,
    /// Degree skewness proxy: `max / mean` (≫1 for power laws).
    pub hub_ratio: f64,
}

/// Computes the degree profile of a graph.
pub fn degree_profile(g: &CsrGraph) -> DegreeProfile {
    let mut degs = g.degrees();
    if degs.is_empty() {
        return DegreeProfile { min: 0, median: 0, mean: 0.0, max: 0, hub_ratio: 0.0 };
    }
    degs.sort_unstable();
    let mean = degs.iter().sum::<usize>() as f64 / degs.len() as f64;
    let max = *degs.last().unwrap();
    DegreeProfile {
        min: degs[0],
        median: degs[degs.len() / 2],
        mean,
        max,
        hub_ratio: if mean > 0.0 { max as f64 / mean } else { 0.0 },
    }
}

/// Exact triangle count (each triangle counted once).
///
/// Uses the standard forward/ordered algorithm: for each edge `(u, v)`
/// with `u < v`, intersect the higher-id neighbor lists — `O(Σ d(u)·d̄)`
/// worst case, fast in practice on sorted CSR rows.
pub fn triangle_count(g: &CsrGraph) -> u64 {
    let n = g.num_nodes();
    let mut count = 0u64;
    for u in 0..n as NodeId {
        let nu = g.neighbors(u);
        for &v in nu.iter().filter(|&&v| v > u) {
            // Intersect {w ∈ N(u) : w > v} with N(v) via merge.
            let nv = g.neighbors(v);
            let (mut i, mut j) = (0usize, 0usize);
            while i < nu.len() && j < nv.len() {
                let (a, b) = (nu[i], nv[j]);
                if a <= v {
                    i += 1;
                    continue;
                }
                if b <= v {
                    j += 1;
                    continue;
                }
                match a.cmp(&b) {
                    std::cmp::Ordering::Less => i += 1,
                    std::cmp::Ordering::Greater => j += 1,
                    std::cmp::Ordering::Equal => {
                        count += 1;
                        i += 1;
                        j += 1;
                    }
                }
            }
        }
    }
    count
}

/// Global clustering coefficient: `3·triangles / wedges`.
pub fn global_clustering(g: &CsrGraph) -> f64 {
    let tri = triangle_count(g);
    let wedges: u64 =
        g.degrees().iter().map(|&d| (d as u64) * (d as u64).saturating_sub(1) / 2).sum();
    if wedges == 0 {
        0.0
    } else {
        3.0 * tri as f64 / wedges as f64
    }
}

/// Graph density (fraction of possible undirected edges present).
pub fn density(g: &CsrGraph) -> f64 {
    let n = g.num_nodes() as f64;
    if n < 2.0 {
        return 0.0;
    }
    (g.num_edges() as f64 / 2.0) / (n * (n - 1.0) / 2.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate;

    #[test]
    fn triangle_counts_on_known_graphs() {
        assert_eq!(triangle_count(&generate::complete(4)), 4);
        assert_eq!(triangle_count(&generate::complete(5)), 10);
        assert_eq!(triangle_count(&generate::chain(10)), 0);
        assert_eq!(triangle_count(&generate::star(10)), 0);
        // Triangle graph.
        let t = crate::GraphBuilder::new(3)
            .symmetric()
            .edges(&[(0, 1), (1, 2), (0, 2)])
            .build()
            .unwrap();
        assert_eq!(triangle_count(&t), 1);
    }

    #[test]
    fn clustering_coefficient_extremes() {
        assert!((global_clustering(&generate::complete(6)) - 1.0).abs() < 1e-12);
        assert_eq!(global_clustering(&generate::star(20)), 0.0);
        // ER clustering ≈ p.
        let g = generate::erdos_renyi(400, 0.05, false, 1);
        let c = global_clustering(&g);
        assert!((c - 0.05).abs() < 0.02, "clustering {c}");
    }

    #[test]
    fn degree_profile_detects_power_law_skew() {
        let ba = degree_profile(&generate::barabasi_albert(2_000, 3, 2));
        let er = degree_profile(&generate::erdos_renyi(2_000, 3.0 / 1000.0, false, 2));
        assert!(ba.hub_ratio > 3.0 * er.hub_ratio, "ba {} vs er {}", ba.hub_ratio, er.hub_ratio);
        assert!(ba.min >= 3);
    }

    #[test]
    fn density_formula() {
        let g = generate::complete(10);
        assert!((density(&g) - 1.0).abs() < 1e-12);
        assert_eq!(density(&CsrGraph::empty(1)), 0.0);
    }

    #[test]
    fn triangles_match_brute_force_on_random_graph() {
        let g = generate::erdos_renyi(60, 0.15, false, 3);
        let mut brute = 0u64;
        for a in 0..60u32 {
            for b in (a + 1)..60 {
                for c in (b + 1)..60 {
                    if g.has_edge(a, b) && g.has_edge(b, c) && g.has_edge(a, c) {
                        brute += 1;
                    }
                }
            }
        }
        assert_eq!(triangle_count(&g), brute);
    }
}
