//! Compressed sparse row adjacency — the workspace's canonical graph format.
//!
//! Layout follows the perf-book guidance for irregular data: three flat
//! buffers (`indptr`, `indices`, optional `weights`), neighbor lists sorted
//! ascending so membership tests are binary searches and merges are linear.
//! Node ids are `u32` to halve index memory on million-edge graphs.

use crate::{GraphError, Result};

/// Node identifier. `u32` keeps CSR index arrays compact; graphs in this
/// workspace stay below `u32::MAX` nodes by construction.
pub type NodeId = u32;

/// An immutable graph in CSR form.
///
/// Invariants (enforced by [`GraphBuilder`](crate::GraphBuilder) and
/// checked by [`CsrGraph::validate`]):
/// - `indptr.len() == n + 1`, `indptr[0] == 0`, non-decreasing,
///   `indptr[n] == indices.len()`;
/// - every entry of `indices` is `< n`;
/// - each neighbor list `indices[indptr[u]..indptr[u+1]]` is sorted
///   strictly ascending (no duplicate edges);
/// - `weights`, when present, is parallel to `indices`.
#[derive(Clone, PartialEq)]
pub struct CsrGraph {
    n: usize,
    indptr: Vec<usize>,
    indices: Vec<NodeId>,
    weights: Option<Vec<f32>>,
}

impl std::fmt::Debug for CsrGraph {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "CsrGraph(n={}, m={}, weighted={})",
            self.n,
            self.num_edges(),
            self.weights.is_some()
        )
    }
}

impl CsrGraph {
    /// Assembles a CSR graph from raw parts, validating every invariant.
    pub fn from_parts(
        n: usize,
        indptr: Vec<usize>,
        indices: Vec<NodeId>,
        weights: Option<Vec<f32>>,
    ) -> Result<Self> {
        let g = CsrGraph { n, indptr, indices, weights };
        g.validate()?;
        Ok(g)
    }

    /// Empty graph with `n` isolated nodes.
    pub fn empty(n: usize) -> Self {
        CsrGraph { n, indptr: vec![0; n + 1], indices: Vec::new(), weights: None }
    }

    /// Checks all structural invariants; used by `from_parts`, tests, and
    /// after deserialization.
    pub fn validate(&self) -> Result<()> {
        if self.indptr.len() != self.n + 1 {
            return Err(GraphError::Corrupt(format!(
                "indptr len {} != n+1 = {}",
                self.indptr.len(),
                self.n + 1
            )));
        }
        if self.indptr[0] != 0 || *self.indptr.last().unwrap() != self.indices.len() {
            return Err(GraphError::Corrupt("indptr endpoints invalid".into()));
        }
        if let Some(w) = &self.weights {
            if w.len() != self.indices.len() {
                return Err(GraphError::Corrupt("weights not parallel to indices".into()));
            }
        }
        for u in 0..self.n {
            if self.indptr[u] > self.indptr[u + 1] {
                return Err(GraphError::Corrupt(format!("indptr decreasing at {u}")));
            }
            let row = &self.indices[self.indptr[u]..self.indptr[u + 1]];
            for w in row.windows(2) {
                if w[0] >= w[1] {
                    return Err(GraphError::Corrupt(format!("row {u} not strictly ascending")));
                }
            }
            if let Some(&last) = row.last() {
                if last as usize >= self.n {
                    return Err(GraphError::NodeOutOfRange { node: last as u64, n: self.n });
                }
            }
        }
        Ok(())
    }

    /// Number of nodes.
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.n
    }

    /// Number of directed edges (stored adjacency entries).
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.indices.len()
    }

    /// Out-degree of `u`.
    #[inline]
    pub fn degree(&self, u: NodeId) -> usize {
        let u = u as usize;
        self.indptr[u + 1] - self.indptr[u]
    }

    /// Sorted neighbor slice of `u`.
    #[inline]
    pub fn neighbors(&self, u: NodeId) -> &[NodeId] {
        let u = u as usize;
        &self.indices[self.indptr[u]..self.indptr[u + 1]]
    }

    /// Edge weights of `u`'s neighbor slice (`None` for unweighted graphs).
    #[inline]
    pub fn weights_of(&self, u: NodeId) -> Option<&[f32]> {
        let u = u as usize;
        self.weights.as_ref().map(|w| &w[self.indptr[u]..self.indptr[u + 1]])
    }

    /// Raw `indptr` buffer.
    #[inline]
    pub fn indptr(&self) -> &[usize] {
        &self.indptr
    }

    /// Raw `indices` buffer.
    #[inline]
    pub fn indices(&self) -> &[NodeId] {
        &self.indices
    }

    /// Raw weight buffer, if weighted.
    #[inline]
    pub fn weights(&self) -> Option<&[f32]> {
        self.weights.as_deref()
    }

    /// Whether an explicit weight array is stored.
    #[inline]
    pub fn is_weighted(&self) -> bool {
        self.weights.is_some()
    }

    /// Weight of the edge-slot `e` (1.0 for unweighted graphs).
    #[inline]
    pub fn weight_at(&self, e: usize) -> f32 {
        match &self.weights {
            Some(w) => w[e],
            None => 1.0,
        }
    }

    /// Binary-search membership test for edge `(u, v)`.
    #[inline]
    pub fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        self.neighbors(u).binary_search(&v).is_ok()
    }

    /// Iterator over all directed edges `(u, v, w)`.
    pub fn edges(&self) -> impl Iterator<Item = (NodeId, NodeId, f32)> + '_ {
        (0..self.n).flat_map(move |u| {
            let (s, e) = (self.indptr[u], self.indptr[u + 1]);
            (s..e).map(move |i| (u as NodeId, self.indices[i], self.weight_at(i)))
        })
    }

    /// All out-degrees as a vector.
    pub fn degrees(&self) -> Vec<usize> {
        (0..self.n).map(|u| self.indptr[u + 1] - self.indptr[u]).collect()
    }

    /// Maximum out-degree (0 for an empty graph).
    pub fn max_degree(&self) -> usize {
        (0..self.n).map(|u| self.indptr[u + 1] - self.indptr[u]).max().unwrap_or(0)
    }

    /// Approximate resident bytes (for the memory-accounting experiments).
    pub fn nbytes(&self) -> usize {
        self.indptr.len() * std::mem::size_of::<usize>()
            + self.indices.len() * std::mem::size_of::<NodeId>()
            + self.weights.as_ref().map_or(0, |w| w.len() * std::mem::size_of::<f32>())
    }

    /// Transposed (reversed) graph; weights follow their edges.
    pub fn transpose(&self) -> CsrGraph {
        let n = self.n;
        let mut counts = vec![0usize; n + 1];
        for &v in &self.indices {
            counts[v as usize + 1] += 1;
        }
        for i in 0..n {
            counts[i + 1] += counts[i];
        }
        let indptr = counts.clone();
        let mut cursor = counts;
        let mut indices = vec![0 as NodeId; self.indices.len()];
        let mut weights = self.weights.as_ref().map(|_| vec![0f32; self.indices.len()]);
        for u in 0..n {
            for e in self.indptr[u]..self.indptr[u + 1] {
                let v = self.indices[e] as usize;
                let slot = cursor[v];
                cursor[v] += 1;
                indices[slot] = u as NodeId;
                if let (Some(wout), Some(win)) = (&mut weights, &self.weights) {
                    wout[slot] = win[e];
                }
            }
        }
        // Rows come out sorted because we scan sources in ascending order.
        CsrGraph { n, indptr, indices, weights }
    }

    /// Whether the adjacency structure is symmetric (ignores weights).
    pub fn is_symmetric(&self) -> bool {
        if self.indices.len() != self.transpose().indices.len() {
            return false;
        }
        for u in 0..self.n as NodeId {
            for &v in self.neighbors(u) {
                if !self.has_edge(v, u) {
                    return false;
                }
            }
        }
        true
    }

    /// Induced subgraph on `nodes` (need not be sorted; duplicates ignored).
    ///
    /// Returns the subgraph plus the mapping `local → global`. Edge weights
    /// are carried over.
    pub fn induced_subgraph(&self, nodes: &[NodeId]) -> (CsrGraph, Vec<NodeId>) {
        let mut globals: Vec<NodeId> = nodes.to_vec();
        globals.sort_unstable();
        globals.dedup();
        let mut local_of = vec![u32::MAX; self.n];
        for (i, &g) in globals.iter().enumerate() {
            local_of[g as usize] = i as u32;
        }
        let mut indptr = Vec::with_capacity(globals.len() + 1);
        indptr.push(0usize);
        let mut indices = Vec::new();
        let mut weights: Option<Vec<f32>> = self.weights.as_ref().map(|_| Vec::new());
        for &g in &globals {
            let (s, e) = (self.indptr[g as usize], self.indptr[g as usize + 1]);
            for i in s..e {
                let v = self.indices[i];
                let lv = local_of[v as usize];
                if lv != u32::MAX {
                    indices.push(lv);
                    if let Some(w) = &mut weights {
                        w.push(self.weight_at(i));
                    }
                }
            }
            indptr.push(indices.len());
        }
        // Local neighbor lists inherit the global sort order because the
        // relabeling is monotone over sorted `globals`.
        let sub = CsrGraph { n: globals.len(), indptr, indices, weights };
        (sub, globals)
    }

    /// Relabeled row slice for shard-local execution.
    ///
    /// `globals` is a strictly-ascending set of global node ids (a
    /// shard's owned ∪ halo set); `keep_row[i]` says whether local row
    /// `i` (global `globals[i]`) keeps its adjacency (owned rows) or
    /// comes out empty (halo rows — their outputs are never read, so
    /// carrying their edges would only waste compute and skew nnz
    /// accounting). Kept rows must have **every** neighbor inside
    /// `globals`; a missing neighbor is a hole in the halo map and is
    /// reported as an error rather than silently dropped.
    ///
    /// Because `globals` is sorted, the relabeling is monotone: local
    /// neighbor lists preserve the global order (and the strictly-
    /// ascending CSR invariant), and weight bits are copied verbatim —
    /// which is what makes per-row kernels over the slice bitwise equal
    /// to the same rows of the full graph (DESIGN.md §7).
    pub fn relabeled_slice(&self, globals: &[NodeId], keep_row: &[bool]) -> Result<CsrGraph> {
        assert_eq!(globals.len(), keep_row.len(), "one keep flag per local row");
        debug_assert!(globals.windows(2).all(|w| w[0] < w[1]), "globals must be sorted unique");
        let mut local_of = vec![u32::MAX; self.n];
        for (i, &g) in globals.iter().enumerate() {
            local_of[g as usize] = i as u32;
        }
        let mut indptr = Vec::with_capacity(globals.len() + 1);
        indptr.push(0usize);
        let mut indices = Vec::new();
        let mut weights: Option<Vec<f32>> = self.weights.as_ref().map(|_| Vec::new());
        for (i, &g) in globals.iter().enumerate() {
            if keep_row[i] {
                let (s, e) = (self.indptr[g as usize], self.indptr[g as usize + 1]);
                for idx in s..e {
                    let v = self.indices[idx];
                    let lv = local_of[v as usize];
                    if lv == u32::MAX {
                        return Err(GraphError::Corrupt(format!(
                            "kept row {g} has neighbor {v} outside the local set"
                        )));
                    }
                    indices.push(lv);
                    if let Some(w) = &mut weights {
                        w.push(self.weight_at(idx));
                    }
                }
            }
            indptr.push(indices.len());
        }
        CsrGraph::from_parts(globals.len(), indptr, indices, weights)
    }

    /// Returns a copy with unit weights dropped (structure only).
    pub fn without_weights(&self) -> CsrGraph {
        CsrGraph {
            n: self.n,
            indptr: self.indptr.clone(),
            indices: self.indices.clone(),
            weights: None,
        }
    }

    /// Returns a copy carrying the given weight buffer (parallel to
    /// `indices`).
    pub fn with_weights(&self, weights: Vec<f32>) -> Result<CsrGraph> {
        if weights.len() != self.indices.len() {
            return Err(GraphError::Corrupt(format!(
                "weight buffer {} != edges {}",
                weights.len(),
                self.indices.len()
            )));
        }
        Ok(CsrGraph {
            n: self.n,
            indptr: self.indptr.clone(),
            indices: self.indices.clone(),
            weights: Some(weights),
        })
    }

    /// Sum of all edge weights (edge count for unweighted graphs).
    pub fn total_weight(&self) -> f64 {
        match &self.weights {
            Some(w) => w.iter().map(|&x| x as f64).sum(),
            None => self.indices.len() as f64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GraphBuilder;

    fn triangle() -> CsrGraph {
        // 0-1, 1-2, 0-2 undirected.
        GraphBuilder::new(3).symmetric().edges(&[(0, 1), (1, 2), (0, 2)]).build().unwrap()
    }

    #[test]
    fn triangle_structure() {
        let g = triangle();
        assert_eq!(g.num_nodes(), 3);
        assert_eq!(g.num_edges(), 6);
        assert_eq!(g.neighbors(0), &[1, 2]);
        assert_eq!(g.degree(1), 2);
        assert!(g.has_edge(2, 0));
        assert!(!g.has_edge(0, 0));
        assert!(g.is_symmetric());
    }

    #[test]
    fn from_parts_rejects_bad_indptr() {
        let err = CsrGraph::from_parts(2, vec![0, 2], vec![0, 1], None);
        assert!(err.is_err());
        let err = CsrGraph::from_parts(2, vec![0, 1, 1], vec![0, 1], None);
        assert!(err.is_err());
    }

    #[test]
    fn from_parts_rejects_unsorted_rows() {
        let err = CsrGraph::from_parts(2, vec![0, 2, 2], vec![1, 0], None);
        assert!(err.is_err());
    }

    #[test]
    fn from_parts_rejects_out_of_range() {
        let err = CsrGraph::from_parts(2, vec![0, 1, 1], vec![5], None);
        assert!(matches!(err, Err(GraphError::NodeOutOfRange { node: 5, .. })));
    }

    #[test]
    fn transpose_of_directed_edge() {
        let g = GraphBuilder::new(3).edges(&[(0, 1), (0, 2), (1, 2)]).build().unwrap();
        let t = g.transpose();
        assert_eq!(t.neighbors(1), &[0]);
        assert_eq!(t.neighbors(2), &[0, 1]);
        assert_eq!(t.neighbors(0), &[] as &[NodeId]);
        t.validate().unwrap();
    }

    #[test]
    fn transpose_preserves_weights() {
        let g = GraphBuilder::new(2).weighted_edges(&[(0, 1, 2.5), (1, 0, 0.5)]).build().unwrap();
        let t = g.transpose();
        assert_eq!(t.weights_of(1).unwrap(), &[2.5]);
        assert_eq!(t.weights_of(0).unwrap(), &[0.5]);
    }

    #[test]
    fn transpose_involution_on_random_graph() {
        let g = crate::generate::erdos_renyi(200, 0.05, false, 7);
        let tt = g.transpose().transpose();
        assert_eq!(g.indptr(), tt.indptr());
        assert_eq!(g.indices(), tt.indices());
    }

    #[test]
    fn induced_subgraph_keeps_internal_edges_only() {
        let g = triangle();
        let (sub, map) = g.induced_subgraph(&[2, 0]);
        assert_eq!(map, vec![0, 2]);
        assert_eq!(sub.num_nodes(), 2);
        // Only edge 0-2 survives, in both directions.
        assert_eq!(sub.num_edges(), 2);
        assert!(sub.has_edge(0, 1));
        assert!(sub.has_edge(1, 0));
        sub.validate().unwrap();
    }

    #[test]
    fn induced_subgraph_dedups_input() {
        let g = triangle();
        let (sub, map) = g.induced_subgraph(&[1, 1, 1]);
        assert_eq!(map, vec![1]);
        assert_eq!(sub.num_nodes(), 1);
        assert_eq!(sub.num_edges(), 0);
    }

    #[test]
    fn relabeled_slice_preserves_rows_and_weight_bits() {
        // Weighted path 0-1-2-3 plus edge 1-3; slice rows {1,2,3} keeping
        // only row 2's adjacency (as if 2 were owned and 1, 3 its halo).
        let g = GraphBuilder::new(4)
            .symmetric()
            .weighted_edges(&[(0, 1, 0.25), (1, 2, 0.5), (2, 3, 0.125), (1, 3, 2.0)])
            .build()
            .unwrap();
        let sub = g.relabeled_slice(&[1, 2, 3], &[false, true, false]).unwrap();
        assert_eq!(sub.num_nodes(), 3);
        assert_eq!(sub.neighbors(0), &[] as &[NodeId]);
        assert_eq!(sub.neighbors(2), &[] as &[NodeId]);
        // Row 2's global neighbors {1, 3} relabel monotonically to {0, 2}.
        assert_eq!(sub.neighbors(1), &[0, 2]);
        let (sw, gw) = (sub.weights_of(1).unwrap(), g.weights_of(2).unwrap());
        assert_eq!(sw.len(), gw.len());
        for (a, b) in sw.iter().zip(gw) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        sub.validate().unwrap();
    }

    #[test]
    fn relabeled_slice_rejects_uncovered_neighbor() {
        let g = triangle();
        // Row 0 kept but neighbor 2 missing from the local set.
        assert!(g.relabeled_slice(&[0, 1], &[true, false]).is_err());
        // With the full set it succeeds.
        assert!(g.relabeled_slice(&[0, 1, 2], &[true, false, false]).is_ok());
    }

    #[test]
    fn edges_iterator_matches_structure() {
        let g = triangle();
        let edges: Vec<(NodeId, NodeId)> = g.edges().map(|(u, v, _)| (u, v)).collect();
        assert_eq!(edges.len(), 6);
        assert!(edges.contains(&(0, 1)) && edges.contains(&(1, 0)));
    }

    #[test]
    fn nbytes_and_total_weight() {
        let g = triangle();
        assert!(g.nbytes() > 0);
        assert_eq!(g.total_weight(), 6.0);
        let w = g.with_weights(vec![0.5; 6]).unwrap();
        assert_eq!(w.total_weight(), 3.0);
        assert!(w.with_weights(vec![1.0]).is_err());
    }

    #[test]
    fn empty_graph_is_valid() {
        let g = CsrGraph::empty(5);
        g.validate().unwrap();
        assert_eq!(g.num_edges(), 0);
        assert_eq!(g.max_degree(), 0);
    }
}
