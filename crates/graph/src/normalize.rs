//! Adjacency normalizations used by graph convolutions.
//!
//! The canonical GCN operator is `Â = D̃^{-1/2} (A + I) D̃^{-1/2}`; APPNP
//! and most decoupled models use the same operator or its random-walk
//! variant `D̃^{-1} (A + I)`. We materialize normalized operators as
//! *weighted CSR graphs* so every downstream kernel (SpMM, push, sampling)
//! works uniformly on one representation.

use crate::csr::{CsrGraph, NodeId};
use crate::Result;

/// Normalization family.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NormKind {
    /// Symmetric `D^{-1/2} A D^{-1/2}` (GCN).
    Sym,
    /// Random-walk / row-stochastic `D^{-1} A` (PPR, label propagation).
    Rw,
    /// Column-stochastic `A D^{-1}` (reverse-push PPR).
    ColRw,
    /// No scaling; weights pass through.
    None,
}

/// Builds the normalized adjacency as a weighted CSR graph.
///
/// With `add_self_loops`, inserts `A ← A + I` first (the GCN "renormalization
/// trick"). Weighted input graphs use their weighted degrees. Isolated nodes
/// get zero rows (their inverse degree is treated as 0).
pub fn normalized_adjacency(
    g: &CsrGraph,
    kind: NormKind,
    add_self_loops: bool,
) -> Result<CsrGraph> {
    let base = if add_self_loops { with_self_loops(g)? } else { g.clone() };
    let n = base.num_nodes();
    // Weighted degrees.
    let mut deg = vec![0f64; n];
    for u in 0..n as NodeId {
        let mut s = 0f64;
        let (lo, hi) = (base.indptr()[u as usize], base.indptr()[u as usize + 1]);
        for e in lo..hi {
            s += base.weight_at(e) as f64;
        }
        deg[u as usize] = s;
    }
    // In-degrees differ from out-degrees on directed graphs; for ColRw we
    // need the destination's degree, computed on the transpose mass.
    let mut in_deg = vec![0f64; n];
    for u in 0..n {
        for e in base.indptr()[u]..base.indptr()[u + 1] {
            in_deg[base.indices()[e] as usize] += base.weight_at(e) as f64;
        }
    }
    let inv = |d: f64| if d > 0.0 { 1.0 / d } else { 0.0 };
    let mut weights = Vec::with_capacity(base.num_edges());
    for u in 0..n {
        for e in base.indptr()[u]..base.indptr()[u + 1] {
            let v = base.indices()[e] as usize;
            let w = base.weight_at(e) as f64;
            let scaled = match kind {
                NormKind::Sym => w * inv(deg[u]).sqrt() * inv(deg[v]).sqrt(),
                NormKind::Rw => w * inv(deg[u]),
                NormKind::ColRw => w * inv(in_deg[v]),
                NormKind::None => w,
            };
            weights.push(scaled as f32);
        }
    }
    base.with_weights(weights)
}

/// Returns `A + I` (self-loop weight 1.0, merged if a loop already exists).
pub fn with_self_loops(g: &CsrGraph) -> Result<CsrGraph> {
    let n = g.num_nodes();
    let mut indptr = Vec::with_capacity(n + 1);
    indptr.push(0usize);
    let mut indices: Vec<NodeId> = Vec::with_capacity(g.num_edges() + n);
    let mut weights: Vec<f32> = Vec::with_capacity(g.num_edges() + n);
    for u in 0..n {
        let row = g.neighbors(u as NodeId);
        let (lo, _hi) = (g.indptr()[u], g.indptr()[u + 1]);
        let mut inserted = false;
        for (k, &v) in row.iter().enumerate() {
            if !inserted && (v as usize) >= u {
                if (v as usize) == u {
                    indices.push(v);
                    weights.push(g.weight_at(lo + k) + 1.0);
                    inserted = true;
                    continue;
                } else {
                    indices.push(u as NodeId);
                    weights.push(1.0);
                    inserted = true;
                }
            }
            indices.push(v);
            weights.push(g.weight_at(lo + k));
        }
        if !inserted {
            indices.push(u as NodeId);
            weights.push(1.0);
        }
        indptr.push(indices.len());
    }
    CsrGraph::from_parts(n, indptr, indices, Some(weights))
}

/// Laplacian variants, materialized as weighted CSR (diagonal included).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LaplacianKind {
    /// Combinatorial `L = D − A`.
    Combinatorial,
    /// Symmetric normalized `L = I − D^{-1/2} A D^{-1/2}`.
    SymNormalized,
}

/// Builds a Laplacian as a weighted CSR graph (with explicit diagonal).
pub fn laplacian(g: &CsrGraph, kind: LaplacianKind) -> Result<CsrGraph> {
    let n = g.num_nodes();
    let adj = match kind {
        LaplacianKind::Combinatorial => g.clone(),
        LaplacianKind::SymNormalized => normalized_adjacency(g, NormKind::Sym, false)?,
    };
    let mut deg = vec![0f64; n];
    if kind == LaplacianKind::Combinatorial {
        for u in 0..n {
            for e in g.indptr()[u]..g.indptr()[u + 1] {
                deg[u] += g.weight_at(e) as f64;
            }
        }
    } else {
        for d in deg.iter_mut() {
            *d = 1.0;
        }
    }
    let mut indptr = Vec::with_capacity(n + 1);
    indptr.push(0usize);
    let mut indices: Vec<NodeId> = Vec::new();
    let mut weights: Vec<f32> = Vec::new();
    for u in 0..n {
        let row = adj.neighbors(u as NodeId);
        let lo = adj.indptr()[u];
        let mut placed_diag = false;
        for (k, &v) in row.iter().enumerate() {
            let w = -adj.weight_at(lo + k);
            if !placed_diag && (v as usize) >= u {
                if (v as usize) == u {
                    indices.push(v);
                    weights.push(deg[u] as f32 + w);
                    placed_diag = true;
                    continue;
                }
                indices.push(u as NodeId);
                weights.push(deg[u] as f32);
                placed_diag = true;
            }
            indices.push(v);
            weights.push(w);
        }
        if !placed_diag {
            indices.push(u as NodeId);
            weights.push(deg[u] as f32);
        }
        indptr.push(indices.len());
    }
    CsrGraph::from_parts(n, indptr, indices, Some(weights))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate;
    use crate::GraphBuilder;

    #[test]
    fn rw_rows_are_stochastic() {
        let g = generate::erdos_renyi(100, 0.05, false, 1);
        let p = normalized_adjacency(&g, NormKind::Rw, true).unwrap();
        for u in 0..100u32 {
            let s: f32 = p.weights_of(u).unwrap().iter().sum();
            assert!((s - 1.0).abs() < 1e-5, "row {u} sums to {s}");
        }
    }

    #[test]
    fn col_rw_columns_are_stochastic() {
        let g = generate::erdos_renyi(80, 0.06, false, 2);
        let p = normalized_adjacency(&g, NormKind::ColRw, true).unwrap();
        let mut colsum = vec![0f32; 80];
        for (_, v, w) in p.edges() {
            colsum[v as usize] += w;
        }
        for (v, s) in colsum.iter().enumerate() {
            assert!((s - 1.0).abs() < 1e-4, "col {v} sums to {s}");
        }
    }

    #[test]
    fn sym_normalization_matches_formula_on_path() {
        // Path 0-1-2 with self loops: degrees (2,3,2).
        let g = generate::chain(3);
        let a = normalized_adjacency(&g, NormKind::Sym, true).unwrap();
        // Edge (0,1): 1/sqrt(2*3).
        let w01 = a.edges().find(|&(u, v, _)| u == 0 && v == 1).map(|(_, _, w)| w).unwrap();
        assert!((w01 - 1.0 / (6f32).sqrt()).abs() < 1e-6);
        // Diagonal (0,0): 1/2.
        let w00 = a.edges().find(|&(u, v, _)| u == 0 && v == 0).map(|(_, _, w)| w).unwrap();
        assert!((w00 - 0.5).abs() < 1e-6);
    }

    #[test]
    fn self_loops_insert_and_merge() {
        let g = GraphBuilder::new(3)
            .weighted_edges(&[(0, 0, 2.0), (0, 1, 1.0), (2, 1, 1.0)])
            .build()
            .unwrap();
        let sl = with_self_loops(&g).unwrap();
        sl.validate().unwrap();
        // Existing loop gains +1.
        let w00 = sl.edges().find(|&(u, v, _)| u == 0 && v == 0).unwrap().2;
        assert_eq!(w00, 3.0);
        // Node 1 and 2 gain loops.
        assert!(sl.has_edge(1, 1));
        assert!(sl.has_edge(2, 2));
        assert_eq!(sl.num_edges(), g.num_edges() + 2);
    }

    #[test]
    fn isolated_nodes_get_zero_rows_without_loops() {
        let g = GraphBuilder::new(3).symmetric().edges(&[(0, 1)]).build().unwrap();
        let p = normalized_adjacency(&g, NormKind::Rw, false).unwrap();
        assert!(p.weights_of(2).unwrap().is_empty());
    }

    #[test]
    fn combinatorial_laplacian_rows_sum_to_zero() {
        let g = generate::erdos_renyi(60, 0.1, false, 3);
        let l = laplacian(&g, LaplacianKind::Combinatorial).unwrap();
        for u in 0..60u32 {
            let s: f32 = l.weights_of(u).unwrap().iter().sum();
            assert!(s.abs() < 1e-4, "row {u} sums to {s}");
        }
    }

    #[test]
    fn normalized_laplacian_diag_is_one() {
        let g = generate::erdos_renyi(60, 0.1, false, 4);
        let l = laplacian(&g, LaplacianKind::SymNormalized).unwrap();
        for u in 0..60u32 {
            let diag = l.edges().find(|&(a, b, _)| a == u && b == u).map(|(_, _, w)| w).unwrap();
            assert!((diag - 1.0).abs() < 1e-6);
        }
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Random-walk normalization always produces row sums in {0, 1}.
        #[test]
        fn rw_rows_sum_to_one_or_zero(
            edges in proptest::collection::vec((0u32..25, 0u32..25), 0..150)
        ) {
            let g = crate::GraphBuilder::new(25).symmetric().drop_self_loops()
                .edges(&edges).build().unwrap();
            let p = normalized_adjacency(&g, NormKind::Rw, false).unwrap();
            for u in 0..25u32 {
                let s: f32 = p.weights_of(u).unwrap().iter().sum();
                prop_assert!(s.abs() < 1e-5 || (s - 1.0).abs() < 1e-5,
                    "row {} sums to {}", u, s);
            }
        }

        /// Symmetric normalization of an undirected graph stays symmetric in
        /// values: w(u,v) == w(v,u).
        #[test]
        fn sym_norm_is_value_symmetric(
            edges in proptest::collection::vec((0u32..20, 0u32..20), 1..100)
        ) {
            let g = crate::GraphBuilder::new(20).symmetric().drop_self_loops()
                .edges(&edges).build().unwrap();
            let a = normalized_adjacency(&g, NormKind::Sym, true).unwrap();
            let lookup = |u: u32, v: u32| -> f32 {
                let row = a.neighbors(u);
                let k = row.binary_search(&v).unwrap();
                a.weights_of(u).unwrap()[k]
            };
            for (u, v, w) in a.edges() {
                prop_assert!((w - lookup(v, u)).abs() < 1e-6);
            }
        }
    }
}
