//! [`FaultPlan`]: a deterministic, seed-driven fault injector.
//!
//! A plan is built once (test setup or CLI flag), wrapped in an `Arc`,
//! and handed to a trainer through `TrainConfig`. Trainers *poll* the
//! plan at well-defined sites:
//!
//! | site                         | poll                                  |
//! |------------------------------|---------------------------------------|
//! | start of each training epoch | [`FaultPlan::poll_kill_epoch`]        |
//! | each shard BSP superstep     | [`FaultPlan::poll_kill_superstep`]    |
//! | after a halo buffer is built | [`FaultPlan::corrupt_halo`]           |
//! | each pipeline `prepare` call | [`FaultPlan::poll_producer_panic`]    |
//! | `Ledger` budget checks       | [`FaultPlan::mem_budget`]             |
//! | each served request          | [`FaultPlan::poll_request_spike`]     |
//! | each store-row read          | [`FaultPlan::corrupt_store_row`]      |
//! | each load-generator enqueue  | [`FaultPlan::poll_producer_stall`]    |
//!
//! Determinism rules (the "fault-plan seeding rules" of DESIGN.md §8):
//!
//! - **One-shot.** Each armed fault fires exactly once (an `AtomicBool`
//!   latch), so a bounded retry of the faulted operation deterministically
//!   succeeds — which is what lets recovery tests assert convergence
//!   instead of looping forever.
//! - **Positional, not temporal.** Faults trigger on logical indices
//!   (epoch number, superstep number, exchange number, batch number),
//!   never on wall-clock time, so a faulted run is exactly reproducible.
//! - **Seeded corruption.** Which bits [`corrupt_halo`](FaultPlan::corrupt_halo)
//!   flips is derived from the plan seed and the exchange index via
//!   SplitMix64 — two runs with the same plan corrupt the same bits.

use std::sync::atomic::{AtomicBool, Ordering};

/// One injectable fault. All indices are 0-based logical positions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// Abort training at the start of epoch `epoch` (after the previous
    /// epoch's checkpoint was written).
    KillAtEpoch {
        /// Epoch index at which to die.
        epoch: usize,
    },
    /// Abort sharded training at global BSP superstep `superstep`
    /// (supersteps count every compute/exchange barrier across epochs).
    KillAtSuperstep {
        /// Global superstep index at which to die.
        superstep: u64,
    },
    /// Flip `flips` seed-chosen bits in the halo buffer of global
    /// exchange `exchange` — "in transit", after the sender checksummed
    /// it.
    CorruptHalo {
        /// Global halo-exchange index to corrupt.
        exchange: u64,
        /// Number of bits to flip.
        flips: u32,
    },
    /// Panic the `BatchPipeline` producer while preparing batch `batch`.
    PanicProducer {
        /// Global batch index at which the producer panics.
        batch: usize,
    },
    /// Delay serving request `request` by `delay_us` microseconds — a
    /// per-request latency spike. Timing-only: answer bits are
    /// unaffected, but deadline/breaker machinery observes the spike.
    SpikeRequest {
        /// Global served-request index to delay.
        request: u64,
        /// Injected delay, microseconds.
        delay_us: u64,
    },
    /// Flip `flips` seed-chosen bits in the embedding-store row read by
    /// request `request` — "at rest" corruption, after the store
    /// checksummed the row at build time.
    CorruptStoreRow {
        /// Global served-request index whose store read is corrupted.
        request: u64,
        /// Number of bits to flip.
        flips: u32,
    },
    /// Stall the serving load generator for `stall_us` microseconds
    /// before enqueuing request `request` (an upstream producer hiccup:
    /// the queue drains, then a burst follows).
    StallProducer {
        /// Load-generator enqueue index at which to stall.
        request: u64,
        /// Injected stall, microseconds.
        stall_us: u64,
    },
}

#[derive(Debug)]
struct Armed {
    fault: Fault,
    fired: AtomicBool,
}

/// A set of armed faults plus an optional memory budget. Build with the
/// chained `kill_at_*`/`corrupt_halo`/`panic_producer`/`mem_budget`
/// methods, then share via `Arc`.
#[derive(Debug, Default)]
pub struct FaultPlan {
    seed: u64,
    faults: Vec<Armed>,
    mem_budget: Option<u64>,
}

/// SplitMix64: the workspace-standard cheap seed expander (same scheme
/// the samplers use for chunk seeds).
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl FaultPlan {
    /// Empty plan with a corruption seed.
    pub fn new(seed: u64) -> Self {
        FaultPlan { seed, faults: Vec::new(), mem_budget: None }
    }

    fn arm(mut self, fault: Fault) -> Self {
        self.faults.push(Armed { fault, fired: AtomicBool::new(false) });
        self
    }

    /// Arms a [`Fault::KillAtEpoch`].
    pub fn kill_at_epoch(self, epoch: usize) -> Self {
        self.arm(Fault::KillAtEpoch { epoch })
    }

    /// Arms a [`Fault::KillAtSuperstep`].
    pub fn kill_at_superstep(self, superstep: u64) -> Self {
        self.arm(Fault::KillAtSuperstep { superstep })
    }

    /// Arms a [`Fault::CorruptHalo`].
    pub fn corrupt_halo(self, exchange: u64, flips: u32) -> Self {
        self.arm(Fault::CorruptHalo { exchange, flips })
    }

    /// Arms a [`Fault::PanicProducer`].
    pub fn panic_producer(self, batch: usize) -> Self {
        self.arm(Fault::PanicProducer { batch })
    }

    /// Arms a [`Fault::SpikeRequest`].
    pub fn spike_request(self, request: u64, delay_us: u64) -> Self {
        self.arm(Fault::SpikeRequest { request, delay_us })
    }

    /// Arms a [`Fault::CorruptStoreRow`].
    pub fn corrupt_store_row_at(self, request: u64, flips: u32) -> Self {
        self.arm(Fault::CorruptStoreRow { request, flips })
    }

    /// Arms a [`Fault::StallProducer`].
    pub fn stall_producer(self, request: u64, stall_us: u64) -> Self {
        self.arm(Fault::StallProducer { request, stall_us })
    }

    /// Caps the `Ledger` byte budget (simulated memory exhaustion).
    pub fn mem_budget(mut self, bytes: u64) -> Self {
        self.mem_budget = Some(bytes);
        self
    }

    /// The simulated memory budget, if one was set.
    pub fn budget(&self) -> Option<u64> {
        self.mem_budget
    }

    /// Fires the first not-yet-fired fault matching `pred`, if any.
    fn fire(&self, pred: impl Fn(&Fault) -> bool) -> Option<Fault> {
        for armed in &self.faults {
            if pred(&armed.fault) && !armed.fired.swap(true, Ordering::Relaxed) {
                crate::record_injected();
                return Some(armed.fault);
            }
        }
        None
    }

    /// True exactly once for an armed `KillAtEpoch { epoch }`.
    pub fn poll_kill_epoch(&self, epoch: usize) -> bool {
        self.fire(|f| matches!(f, Fault::KillAtEpoch { epoch: e } if *e == epoch)).is_some()
    }

    /// True exactly once for an armed `KillAtSuperstep { superstep }`.
    pub fn poll_kill_superstep(&self, superstep: u64) -> bool {
        self.fire(|f| matches!(f, Fault::KillAtSuperstep { superstep: s } if *s == superstep))
            .is_some()
    }

    /// True exactly once for an armed `PanicProducer { batch }`.
    pub fn poll_producer_panic(&self, batch: usize) -> bool {
        self.fire(|f| matches!(f, Fault::PanicProducer { batch: b } if *b == batch)).is_some()
    }

    /// If a `CorruptHalo` is armed for `exchange`, flips its seed-chosen
    /// bits in `buf` (once) and returns `true`. Bit positions are
    /// `splitmix64(seed, exchange, i)`-derived, so corruption is
    /// reproducible across runs of the same plan.
    pub fn corrupt_halo_buf(&self, exchange: u64, buf: &mut [f32]) -> bool {
        let Some(Fault::CorruptHalo { flips, .. }) =
            self.fire(|f| matches!(f, Fault::CorruptHalo { exchange: x, .. } if *x == exchange))
        else {
            return false;
        };
        if buf.is_empty() {
            return true; // fired, but nothing to corrupt
        }
        let total_bits = buf.len() as u64 * 32;
        for i in 0..flips as u64 {
            let r = splitmix64(self.seed ^ splitmix64(exchange ^ (i << 32)));
            let bit = r % total_bits;
            let word = (bit / 32) as usize;
            buf[word] = f32::from_bits(buf[word].to_bits() ^ (1u32 << (bit % 32)));
        }
        true
    }

    /// If a `SpikeRequest` is armed for served-request index `request`,
    /// fires it (once) and returns the delay the caller should impose.
    /// Timing-only: bits served are unaffected.
    pub fn poll_request_spike(&self, request: u64) -> Option<std::time::Duration> {
        match self.fire(|f| matches!(f, Fault::SpikeRequest { request: r, .. } if *r == request)) {
            Some(Fault::SpikeRequest { delay_us, .. }) => {
                Some(std::time::Duration::from_micros(delay_us))
            }
            _ => None,
        }
    }

    /// If a `StallProducer` is armed for enqueue index `request`, fires
    /// it (once) and returns the stall the load generator should sleep.
    pub fn poll_producer_stall(&self, request: u64) -> Option<std::time::Duration> {
        match self.fire(|f| matches!(f, Fault::StallProducer { request: r, .. } if *r == request)) {
            Some(Fault::StallProducer { stall_us, .. }) => {
                Some(std::time::Duration::from_micros(stall_us))
            }
            _ => None,
        }
    }

    /// If a `CorruptStoreRow` is armed for served-request index
    /// `request`, flips its seed-chosen bits in `row` (once) and returns
    /// `true`. Same SplitMix64 derivation as
    /// [`corrupt_halo_buf`](FaultPlan::corrupt_halo_buf) with a distinct
    /// domain tag, so store and halo corruption of the same index differ
    /// but both replay exactly.
    pub fn corrupt_store_row(&self, request: u64, row: &mut [f32]) -> bool {
        let Some(Fault::CorruptStoreRow { flips, .. }) =
            self.fire(|f| matches!(f, Fault::CorruptStoreRow { request: r, .. } if *r == request))
        else {
            return false;
        };
        if row.is_empty() {
            return true; // fired, but nothing to corrupt
        }
        let total_bits = row.len() as u64 * 32;
        for i in 0..flips as u64 {
            let r = splitmix64(self.seed ^ splitmix64(request ^ (i << 32) ^ 0x5E7E_57A7E)); // "store-state" tag
            let bit = r % total_bits;
            let word = (bit / 32) as usize;
            row[word] = f32::from_bits(row[word].to_bits() ^ (1u32 << (bit % 32)));
        }
        true
    }

    /// Number of armed faults that have fired so far.
    pub fn fired_count(&self) -> usize {
        self.faults.iter().filter(|a| a.fired.load(Ordering::Relaxed)).count()
    }

    /// True when every armed fault has fired (useful for asserting a
    /// sweep actually exercised the plan).
    pub fn exhausted(&self) -> bool {
        self.faults.iter().all(|a| a.fired.load(Ordering::Relaxed))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::crc::crc32_f32s;

    #[test]
    fn faults_are_one_shot() {
        let plan = FaultPlan::new(1).kill_at_epoch(3).panic_producer(2).kill_at_superstep(5);
        assert!(!plan.poll_kill_epoch(0));
        assert!(!plan.poll_kill_epoch(2));
        assert!(plan.poll_kill_epoch(3), "armed epoch fires");
        assert!(!plan.poll_kill_epoch(3), "second poll at same epoch must not re-fire");
        assert!(plan.poll_producer_panic(2));
        assert!(!plan.poll_producer_panic(2));
        assert!(plan.poll_kill_superstep(5));
        assert!(!plan.poll_kill_superstep(5));
        assert!(plan.exhausted());
        assert_eq!(plan.fired_count(), 3);
    }

    #[test]
    fn halo_corruption_is_deterministic_and_detectable() {
        let base: Vec<f32> = (0..64).map(|i| i as f32 * 0.5 - 3.0).collect();
        let clean_crc = crc32_f32s(&base);

        let mut a = base.clone();
        let mut b = base.clone();
        assert!(FaultPlan::new(42).corrupt_halo(7, 3).corrupt_halo_buf(7, &mut a));
        assert!(FaultPlan::new(42).corrupt_halo(7, 3).corrupt_halo_buf(7, &mut b));
        let bits = |v: &[f32]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
        assert_eq!(bits(&a), bits(&b), "same seed ⇒ same corruption");
        assert_ne!(crc32_f32s(&a), clean_crc, "corruption must break the checksum");

        let mut c = base.clone();
        assert!(FaultPlan::new(43).corrupt_halo(7, 3).corrupt_halo_buf(7, &mut c));
        assert_ne!(bits(&a), bits(&c), "different seed ⇒ different corruption");

        // Wrong exchange index: nothing fires, buffer untouched.
        let mut d = base.clone();
        let plan = FaultPlan::new(42).corrupt_halo(7, 3);
        assert!(!plan.corrupt_halo_buf(6, &mut d));
        assert_eq!(bits(&d), bits(&base));
        // The armed exchange still fires afterwards, exactly once.
        assert!(plan.corrupt_halo_buf(7, &mut d));
        assert!(!plan.corrupt_halo_buf(7, &mut d));
    }

    #[test]
    fn serving_faults_fire_once_at_their_indices() {
        let plan = FaultPlan::new(5)
            .spike_request(3, 250)
            .stall_producer(7, 400)
            .corrupt_store_row_at(9, 4);
        assert!(plan.poll_request_spike(2).is_none());
        assert_eq!(plan.poll_request_spike(3), Some(std::time::Duration::from_micros(250)));
        assert!(plan.poll_request_spike(3).is_none(), "one-shot");
        assert_eq!(plan.poll_producer_stall(7), Some(std::time::Duration::from_micros(400)));
        assert!(plan.poll_producer_stall(7).is_none());

        let base: Vec<f32> = (0..16).map(|i| i as f32).collect();
        let mut a = base.clone();
        assert!(!plan.corrupt_store_row(8, &mut a), "wrong index must not fire");
        assert_eq!(a, base);
        assert!(plan.corrupt_store_row(9, &mut a));
        assert_ne!(crc32_f32s(&a), crc32_f32s(&base), "corruption must break the checksum");
        // Same plan seed ⇒ same corruption; distinct from halo corruption
        // of the same index.
        let mut b = base.clone();
        assert!(FaultPlan::new(5).corrupt_store_row_at(9, 4).corrupt_store_row(9, &mut b));
        let bits = |v: &[f32]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
        assert_eq!(bits(&a), bits(&b));
        let mut c = base.clone();
        assert!(FaultPlan::new(5).corrupt_halo(9, 4).corrupt_halo_buf(9, &mut c));
        assert_ne!(bits(&a), bits(&c), "store corruption domain must differ from halo");
        assert!(plan.exhausted());
    }

    #[test]
    fn budget_is_carried() {
        assert_eq!(FaultPlan::new(0).budget(), None);
        assert_eq!(FaultPlan::new(0).mem_budget(1 << 20).budget(), Some(1 << 20));
    }

    #[test]
    fn empty_buffer_fires_without_panicking() {
        let plan = FaultPlan::new(9).corrupt_halo(0, 8);
        let mut empty: Vec<f32> = Vec::new();
        assert!(plan.corrupt_halo_buf(0, &mut empty));
        assert!(plan.exhausted());
    }
}
