//! CRC-checksummed, atomically-written checkpoint container.
//!
//! A checkpoint is a flat sequence of named binary records:
//!
//! ```text
//! "SGNNCKP1"                                    file magic, 8 bytes
//! repeat:
//!   u32  name_len    (LE)
//!   [u8] name        (utf-8)
//!   u64  payload_len (LE)
//!   [u8] payload
//!   u32  crc32(name ++ payload)  (LE, IEEE)
//! ```
//!
//! Design rules, each load-bearing for the recovery determinism contract
//! (DESIGN.md §8):
//!
//! - **Atomic persistence.** [`Ckpt::save`] writes `<path>.tmp`, fsyncs,
//!   then renames onto `path`. A crash mid-save leaves either the old
//!   checkpoint or a stray `.tmp` — never a half-written `path`, so the
//!   "latest valid checkpoint" scan can trust whatever it finds.
//! - **Verify before deserialize.** [`Ckpt::load`] checks the magic and
//!   every record's CRC while parsing; a truncated file or a single
//!   flipped bit is rejected with an error naming the byte offset
//!   ([`CkptError::Truncated`] / [`CkptError::CrcMismatch`]), and no
//!   record from a bad file is ever handed to the caller.
//! - **Bit-exact floats.** `f32`/`f64` values round-trip through their
//!   IEEE-754 bit patterns (`to_le_bytes`), never through text — resume
//!   must reproduce the uninterrupted run's weights to the bit.
//!
//! The counter `ckpt.bytes` accumulates bytes written by `save`.

use crate::crc::{crc32, crc32_update};
use std::fs;
use std::io::Write;
use std::path::Path;

static CKPT_BYTES: sgnn_obs::Counter = sgnn_obs::Counter::new("ckpt.bytes");

const MAGIC: &[u8; 8] = b"SGNNCKP1";

/// Checkpoint load/save errors. Corruption errors carry the byte offset
/// of the offending record so operators can inspect the file directly.
#[derive(Debug)]
pub enum CkptError {
    /// Filesystem error (open, write, rename, …).
    Io(std::io::Error),
    /// The file does not start with the checkpoint magic.
    BadMagic,
    /// The file ends mid-record; `offset` is where the truncated record
    /// starts.
    Truncated {
        /// Byte offset of the record that could not be read completely.
        offset: u64,
    },
    /// A record's stored CRC does not match its contents.
    CrcMismatch {
        /// Name of the corrupt record (empty if the name itself is
        /// unreadable).
        record: String,
        /// Byte offset of the record within the file.
        offset: u64,
        /// CRC stored in the file.
        stored: u32,
        /// CRC computed over the record as read.
        computed: u32,
    },
    /// Structurally invalid record (e.g. non-utf8 name) at `offset`.
    Malformed {
        /// Byte offset of the record.
        offset: u64,
        /// What was wrong.
        what: &'static str,
    },
    /// A required field is absent from an otherwise valid checkpoint.
    Missing {
        /// The field name the caller asked for.
        field: String,
    },
    /// A field exists but has the wrong length/shape for the requested
    /// type.
    WrongShape {
        /// The field name.
        field: String,
        /// Expected byte length (0 = "a multiple of the element size").
        expected: usize,
        /// Actual byte length.
        found: usize,
    },
}

impl std::fmt::Display for CkptError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CkptError::Io(e) => write!(f, "checkpoint io error: {e}"),
            CkptError::BadMagic => write!(f, "not a checkpoint file (bad magic)"),
            CkptError::Truncated { offset } => {
                write!(f, "checkpoint truncated: record at byte offset {offset} is incomplete")
            }
            CkptError::CrcMismatch { record, offset, stored, computed } => write!(
                f,
                "checkpoint CRC mismatch in record `{record}` at byte offset {offset}: \
                 stored {stored:#010x}, computed {computed:#010x}"
            ),
            CkptError::Malformed { offset, what } => {
                write!(f, "malformed checkpoint record at byte offset {offset}: {what}")
            }
            CkptError::Missing { field } => write!(f, "checkpoint field `{field}` missing"),
            CkptError::WrongShape { field, expected, found } => {
                write!(f, "checkpoint field `{field}` has {found} bytes, expected {expected}")
            }
        }
    }
}

impl std::error::Error for CkptError {}

impl From<std::io::Error> for CkptError {
    fn from(e: std::io::Error) -> Self {
        CkptError::Io(e)
    }
}

/// An in-memory checkpoint: ordered named records. Build with the `put_*`
/// methods and [`save`](Ckpt::save); read with [`load`](Ckpt::load) and
/// the typed getters.
#[derive(Debug, Default)]
pub struct Ckpt {
    records: Vec<(String, Vec<u8>)>,
}

impl Ckpt {
    /// Empty checkpoint.
    pub fn new() -> Self {
        Ckpt::default()
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True when no records have been added.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Adds a raw byte record. Later records with the same name shadow
    /// earlier ones on read.
    pub fn put_bytes(&mut self, name: &str, bytes: Vec<u8>) {
        self.records.push((name.to_string(), bytes));
    }

    /// Adds an `f32` array record (little-endian IEEE bits).
    pub fn put_f32s(&mut self, name: &str, values: &[f32]) {
        let mut bytes = Vec::with_capacity(values.len() * 4);
        for v in values {
            bytes.extend_from_slice(&v.to_le_bytes());
        }
        self.put_bytes(name, bytes);
    }

    /// Adds a `u64` scalar record.
    pub fn put_u64(&mut self, name: &str, v: u64) {
        self.put_bytes(name, v.to_le_bytes().to_vec());
    }

    /// Adds a `u64` array record.
    pub fn put_u64s(&mut self, name: &str, values: &[u64]) {
        let mut bytes = Vec::with_capacity(values.len() * 8);
        for v in values {
            bytes.extend_from_slice(&v.to_le_bytes());
        }
        self.put_bytes(name, bytes);
    }

    /// Adds an `f64` scalar record (IEEE bits).
    pub fn put_f64(&mut self, name: &str, v: f64) {
        self.put_bytes(name, v.to_bits().to_le_bytes().to_vec());
    }

    /// Adds a string record.
    pub fn put_str(&mut self, name: &str, v: &str) {
        self.put_bytes(name, v.as_bytes().to_vec());
    }

    fn find(&self, name: &str) -> Result<&[u8], CkptError> {
        self.records
            .iter()
            .rev()
            .find(|(n, _)| n == name)
            .map(|(_, b)| b.as_slice())
            .ok_or_else(|| CkptError::Missing { field: name.to_string() })
    }

    /// Raw bytes of a record.
    pub fn bytes(&self, name: &str) -> Result<&[u8], CkptError> {
        self.find(name)
    }

    /// An `f32` array record.
    pub fn f32s(&self, name: &str) -> Result<Vec<f32>, CkptError> {
        let b = self.find(name)?;
        if b.len() % 4 != 0 {
            return Err(CkptError::WrongShape {
                field: name.to_string(),
                expected: 0,
                found: b.len(),
            });
        }
        Ok(b.chunks_exact(4).map(|c| f32::from_le_bytes([c[0], c[1], c[2], c[3]])).collect())
    }

    /// A `u64` scalar record.
    pub fn u64(&self, name: &str) -> Result<u64, CkptError> {
        let b = self.find(name)?;
        let arr: [u8; 8] = b.try_into().map_err(|_| CkptError::WrongShape {
            field: name.to_string(),
            expected: 8,
            found: b.len(),
        })?;
        Ok(u64::from_le_bytes(arr))
    }

    /// A `u64` array record.
    pub fn u64s(&self, name: &str) -> Result<Vec<u64>, CkptError> {
        let b = self.find(name)?;
        if b.len() % 8 != 0 {
            return Err(CkptError::WrongShape {
                field: name.to_string(),
                expected: 0,
                found: b.len(),
            });
        }
        Ok(b.chunks_exact(8)
            .map(|c| u64::from_le_bytes([c[0], c[1], c[2], c[3], c[4], c[5], c[6], c[7]]))
            .collect())
    }

    /// An `f64` scalar record.
    pub fn f64(&self, name: &str) -> Result<f64, CkptError> {
        Ok(f64::from_bits(self.u64(name)?))
    }

    /// A string record.
    pub fn str_(&self, name: &str) -> Result<&str, CkptError> {
        std::str::from_utf8(self.find(name)?)
            .map_err(|_| CkptError::Malformed { offset: 0, what: "record is not utf-8" })
    }

    /// Serialized byte size (magic + all framed records).
    pub fn nbytes(&self) -> u64 {
        let body: usize = self.records.iter().map(|(n, b)| 4 + n.len() + 8 + b.len() + 4).sum();
        (MAGIC.len() + body) as u64
    }

    /// Serializes to the wire format (no I/O).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.nbytes() as usize);
        out.extend_from_slice(MAGIC);
        for (name, payload) in &self.records {
            out.extend_from_slice(&(name.len() as u32).to_le_bytes());
            out.extend_from_slice(name.as_bytes());
            out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
            out.extend_from_slice(payload);
            let mut state = 0xFFFF_FFFFu32;
            state = crc32_update(state, name.as_bytes());
            state = crc32_update(state, payload);
            out.extend_from_slice(&(state ^ 0xFFFF_FFFF).to_le_bytes());
        }
        out
    }

    /// Writes the checkpoint atomically: serialize to `<path>.tmp`, fsync,
    /// rename onto `path`. Returns the bytes written (also added to the
    /// `ckpt.bytes` counter).
    pub fn save(&self, path: &Path) -> Result<u64, CkptError> {
        let bytes = self.to_bytes();
        let tmp = path.with_extension("tmp");
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                fs::create_dir_all(parent)?;
            }
        }
        {
            let mut f = fs::File::create(&tmp)?;
            f.write_all(&bytes)?;
            f.sync_all()?;
        }
        fs::rename(&tmp, path)?;
        CKPT_BYTES.add(bytes.len() as u64);
        sgnn_obs::trace_counter("ckpt.bytes", "bytes", bytes.len() as u64);
        Ok(bytes.len() as u64)
    }

    /// Parses a checkpoint image, verifying every record CRC. See
    /// [`load`](Ckpt::load) for the file-level wrapper.
    pub fn from_bytes(data: &[u8]) -> Result<Self, CkptError> {
        if data.len() < MAGIC.len() || &data[..MAGIC.len()] != MAGIC {
            return Err(CkptError::BadMagic);
        }
        let mut records = Vec::new();
        let mut pos = MAGIC.len();
        while pos < data.len() {
            let record_offset = pos as u64;
            let take = |pos: &mut usize, n: usize| -> Result<&[u8], CkptError> {
                if *pos + n > data.len() {
                    return Err(CkptError::Truncated { offset: record_offset });
                }
                let s = &data[*pos..*pos + n];
                *pos += n;
                Ok(s)
            };
            let name_len = u32::from_le_bytes(take(&mut pos, 4)?.try_into().unwrap()) as usize;
            let name_bytes = take(&mut pos, name_len)?;
            let name = std::str::from_utf8(name_bytes)
                .map_err(|_| CkptError::Malformed {
                    offset: record_offset,
                    what: "record name is not utf-8",
                })?
                .to_string();
            let payload_len = u64::from_le_bytes(take(&mut pos, 8)?.try_into().unwrap()) as usize;
            let payload = take(&mut pos, payload_len)?.to_vec();
            let stored = u32::from_le_bytes(take(&mut pos, 4)?.try_into().unwrap());
            let mut state = 0xFFFF_FFFFu32;
            state = crc32_update(state, name.as_bytes());
            state = crc32_update(state, &payload);
            let computed = state ^ 0xFFFF_FFFF;
            if computed != stored {
                return Err(CkptError::CrcMismatch {
                    record: name,
                    offset: record_offset,
                    stored,
                    computed,
                });
            }
            records.push((name, payload));
        }
        Ok(Ckpt { records })
    }

    /// Loads and verifies a checkpoint file. Any corruption (bad magic,
    /// truncation, CRC mismatch) is an error; no partially-verified data
    /// escapes.
    pub fn load(path: &Path) -> Result<Self, CkptError> {
        let data = fs::read(path)?;
        let _ = crc32(&[]); // warm the CRC table outside the parse loop
        Self::from_bytes(&data)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_path(tag: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("sgnn_ckpt_{}_{tag}.ckpt", std::process::id()))
    }

    fn sample() -> Ckpt {
        let mut c = Ckpt::new();
        c.put_str("meta.name", "gcn-full");
        c.put_u64("meta.epoch", 7);
        c.put_f32s("param.0", &[1.5, -2.25, f32::MIN_POSITIVE, 0.0]);
        c.put_f64("stopper.best", 0.912345678);
        c.put_u64s("meta.dims", &[6, 16, 3]);
        c
    }

    #[test]
    fn round_trip_is_bit_exact() {
        let path = tmp_path("roundtrip");
        let c = sample();
        let written = c.save(&path).unwrap();
        assert_eq!(written, c.nbytes());
        let back = Ckpt::load(&path).unwrap();
        assert_eq!(back.str_("meta.name").unwrap(), "gcn-full");
        assert_eq!(back.u64("meta.epoch").unwrap(), 7);
        let p: Vec<u32> = back.f32s("param.0").unwrap().iter().map(|v| v.to_bits()).collect();
        let q: Vec<u32> =
            [1.5f32, -2.25, f32::MIN_POSITIVE, 0.0].iter().map(|v| v.to_bits()).collect();
        assert_eq!(p, q);
        assert_eq!(back.f64("stopper.best").unwrap().to_bits(), 0.912345678f64.to_bits());
        assert_eq!(back.u64s("meta.dims").unwrap(), vec![6, 16, 3]);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn truncated_file_is_rejected_with_offset() {
        let bytes = sample().to_bytes();
        // Cut mid-way through the third record's payload.
        for cut in [bytes.len() - 1, bytes.len() - 10, 9] {
            let err = Ckpt::from_bytes(&bytes[..cut]).unwrap_err();
            match err {
                CkptError::Truncated { offset } => {
                    assert!(offset >= 8, "offset {offset} must be past the magic");
                    assert!((offset as usize) < bytes.len());
                }
                other => panic!("expected Truncated, got {other:?}"),
            }
        }
    }

    #[test]
    fn single_bit_flip_is_rejected_with_record_and_offset() {
        let mut bytes = sample().to_bytes();
        // Flip one bit inside the payload of `param.0` (find it by name).
        let name_pos = bytes.windows(7).position(|w| w == b"param.0").unwrap();
        let flip_at = name_pos + 7 + 8 + 5; // into the payload
        bytes[flip_at] ^= 0x10;
        let err = Ckpt::from_bytes(&bytes).unwrap_err();
        match err {
            CkptError::CrcMismatch { record, offset, stored, computed } => {
                assert_eq!(record, "param.0");
                assert!(offset > 0 && (offset as usize) < bytes.len());
                assert_ne!(stored, computed);
            }
            other => panic!("expected CrcMismatch, got {other:?}"),
        }
    }

    #[test]
    fn bad_magic_is_rejected() {
        assert!(matches!(Ckpt::from_bytes(b"NOTACKPT"), Err(CkptError::BadMagic)));
        assert!(matches!(Ckpt::from_bytes(b""), Err(CkptError::BadMagic)));
    }

    #[test]
    fn save_is_atomic_no_tmp_left_behind() {
        let path = tmp_path("atomic");
        sample().save(&path).unwrap();
        assert!(path.exists());
        assert!(!path.with_extension("tmp").exists(), "tmp file must be renamed away");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn missing_and_wrong_shape_fields_error() {
        let c = sample();
        assert!(matches!(c.u64("nope"), Err(CkptError::Missing { .. })));
        assert!(matches!(c.u64("meta.dims"), Err(CkptError::WrongShape { .. })));
    }
}
