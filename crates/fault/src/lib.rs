//! # sgnn-fault
//!
//! The resilience substrate: deterministic fault injection and
//! CRC-checksummed checkpoint files (DESIGN.md §8).
//!
//! A production-scale training system is defined as much by what happens
//! when a worker dies mid-superstep as by its steady-state throughput.
//! Because the whole training stack is bitwise deterministic (stateless
//! dropout hashes, chunk-seeded samplers, fixed-point allreduce —
//! DESIGN.md §6/§7), recovery here is *testable to the bit*: kill a run
//! anywhere, resume from the last checkpoint, and the final weights must
//! equal the uninterrupted run exactly. This crate provides the two
//! halves of that story:
//!
//! - [`plan`] — [`FaultPlan`], a seed-driven injector that trainers poll
//!   at well-defined sites (epoch start, shard superstep, halo exchange,
//!   pipeline producer) and that can impose an artificial memory budget.
//!   Every fault is one-shot and fires deterministically, so a faulted
//!   run is exactly reproducible.
//! - [`ckpt`] — a record-oriented checkpoint container with a CRC-32
//!   per record and atomic write-temp-then-rename persistence. Corrupt
//!   or truncated files are rejected with errors naming the byte offset;
//!   they are never partially deserialized.
//!
//! Counters (DESIGN.md §5 naming): `fault.injected` (every fault that
//! fired), `recovery.retries` (bounded-retry attempts consumed by any
//! recovery policy), `ckpt.bytes` (checkpoint bytes written). With
//! tracing on, each increment also emits a `ph:"C"` trace event.

pub mod ckpt;
pub mod crc;
pub mod plan;

pub use ckpt::{Ckpt, CkptError};
pub use crc::crc32;
pub use plan::{Fault, FaultPlan};

static FAULT_INJECTED: sgnn_obs::Counter = sgnn_obs::Counter::new("fault.injected");
static RECOVERY_RETRIES: sgnn_obs::Counter = sgnn_obs::Counter::new("recovery.retries");
static CKPT_BYTES: sgnn_obs::Counter = sgnn_obs::Counter::new("ckpt.bytes");

/// Records one injected fault (counter `fault.injected`, plus a trace
/// counter event when tracing). [`FaultPlan`] calls this when a fault
/// fires; custom injectors may call it directly.
pub fn record_injected() {
    FAULT_INJECTED.incr();
    sgnn_obs::trace_counter("fault.injected", "count", FAULT_INJECTED.value().max(1));
}

/// Records one recovery retry (counter `recovery.retries`): a halo
/// re-exchange after a checksum mismatch, a pipeline producer restart
/// after a panic, or any other bounded-retry attempt.
pub fn record_recovery_retry() {
    RECOVERY_RETRIES.incr();
    sgnn_obs::trace_counter("recovery.retries", "count", RECOVERY_RETRIES.value().max(1));
}

/// Records checkpoint bytes written (counter `ckpt.bytes`).
pub fn record_ckpt_bytes(bytes: u64) {
    CKPT_BYTES.add(bytes);
    sgnn_obs::trace_counter("ckpt.bytes", "bytes", CKPT_BYTES.value().max(bytes));
}

/// Current `fault.injected` counter value (0 with observability off).
pub fn injected_count() -> u64 {
    FAULT_INJECTED.value()
}

/// Current `recovery.retries` counter value (0 with observability off).
pub fn retry_count() -> u64 {
    RECOVERY_RETRIES.value()
}
