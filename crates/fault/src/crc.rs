//! CRC-32 (IEEE 802.3, polynomial `0xEDB88320`) — the checksum guarding
//! checkpoint records and halo-exchange buffers.
//!
//! Table-driven, one table built at first use. The polynomial choice is
//! deliberate: it is the `crc32` every external tool (zlib, `cksum -o 3`,
//! Python's `binascii`) computes, so checkpoint records can be verified
//! from outside the process.

use std::sync::OnceLock;

fn table() -> &'static [u32; 256] {
    static TABLE: OnceLock<[u32; 256]> = OnceLock::new();
    TABLE.get_or_init(|| {
        let mut t = [0u32; 256];
        for (i, slot) in t.iter_mut().enumerate() {
            let mut c = i as u32;
            for _ in 0..8 {
                c = if c & 1 != 0 { 0xEDB8_8320 ^ (c >> 1) } else { c >> 1 };
            }
            *slot = c;
        }
        t
    })
}

/// CRC-32 of `data` (IEEE reflected, init/final-xor `0xFFFF_FFFF`).
pub fn crc32(data: &[u8]) -> u32 {
    crc32_update(0xFFFF_FFFF, data) ^ 0xFFFF_FFFF
}

/// Streaming form: feed `state = 0xFFFF_FFFF`, fold chunks through this,
/// and finish with `state ^ 0xFFFF_FFFF`.
pub fn crc32_update(mut state: u32, data: &[u8]) -> u32 {
    let t = table();
    for &b in data {
        state = t[((state ^ b as u32) & 0xFF) as usize] ^ (state >> 8);
    }
    state
}

/// CRC-32 over the raw little-endian bytes of an `f32` slice — the halo
/// exchange checksum (sender computes it over the outgoing rows, receiver
/// verifies it over what arrived).
pub fn crc32_f32s(data: &[f32]) -> u32 {
    let mut state = 0xFFFF_FFFFu32;
    for v in data {
        state = crc32_update(state, &v.to_le_bytes());
    }
    state ^ 0xFFFF_FFFF
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // The canonical check value for CRC-32/IEEE.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"The quick brown fox jumps over the lazy dog"), 0x414F_A339);
    }

    #[test]
    fn streaming_matches_one_shot() {
        let data = b"split across several updates";
        let mut state = 0xFFFF_FFFFu32;
        for chunk in data.chunks(5) {
            state = crc32_update(state, chunk);
        }
        assert_eq!(state ^ 0xFFFF_FFFF, crc32(data));
    }

    #[test]
    fn f32_crc_matches_byte_crc() {
        let vals = [1.5f32, -0.25, 3.75e-3, f32::MIN_POSITIVE];
        let bytes: Vec<u8> = vals.iter().flat_map(|v| v.to_le_bytes()).collect();
        assert_eq!(crc32_f32s(&vals), crc32(&bytes));
    }

    #[test]
    fn single_bit_flip_changes_crc() {
        let mut data = vec![0u8; 256];
        let base = crc32(&data);
        for bit in [0usize, 7, 100, 2047] {
            data[bit / 8] ^= 1 << (bit % 8);
            assert_ne!(crc32(&data), base, "bit {bit} undetected");
            data[bit / 8] ^= 1 << (bit % 8);
        }
    }
}
