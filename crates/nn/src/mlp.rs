//! Multi-layer perceptron — the trainable head of every decoupled model.
//!
//! Decoupled scalable GNNs (§3.1.2) reduce training to "MLP on
//! precomputed embeddings"; this module is that MLP: `Linear → ReLU →
//! Dropout` blocks with a final linear layer, explicit backward, and
//! optimizer hookup.

use crate::layers::{Dropout, Linear, ReLU};
use crate::optim::Optimizer;
use sgnn_linalg::DenseMatrix;

/// # Example
///
/// ```
/// use sgnn_linalg::DenseMatrix;
/// use sgnn_nn::{Mlp, Adam, softmax_cross_entropy};
///
/// let mut mlp = Mlp::new(&[4, 8, 2], 0.0, 7);
/// let x = DenseMatrix::gaussian(16, 4, 1.0, 1);
/// let targets = vec![0usize; 16];
/// let mut opt = Adam::new(0.01);
/// for _ in 0..5 {
///     let logits = mlp.forward(&x);
///     let (_, grad) = softmax_cross_entropy(&logits, &targets, None);
///     mlp.zero_grad();
///     mlp.backward(&grad);
///     mlp.step(&mut opt);
/// }
/// assert_eq!(mlp.forward_inference(&x).shape(), (16, 2));
/// ```
/// An MLP with ReLU activations and inverted dropout between layers.
#[derive(Debug, Clone)]
pub struct Mlp {
    linears: Vec<Linear>,
    relus: Vec<ReLU>,
    dropouts: Vec<Dropout>,
}

impl Mlp {
    /// Builds an MLP with the given layer widths, e.g. `[64, 32, 7]` maps
    /// 64-dim inputs to 7 classes through one 32-wide hidden layer.
    pub fn new(dims: &[usize], dropout: f32, seed: u64) -> Self {
        assert!(dims.len() >= 2, "need at least input and output dims");
        let mut linears = Vec::new();
        let mut relus = Vec::new();
        let mut dropouts = Vec::new();
        for i in 0..dims.len() - 1 {
            linears.push(Linear::new(dims[i], dims[i + 1], seed.wrapping_add(i as u64)));
            if i + 2 < dims.len() {
                relus.push(ReLU::new());
                dropouts.push(Dropout::new(dropout, seed.wrapping_add(1000 + i as u64)));
            }
        }
        Mlp { linears, relus, dropouts }
    }

    /// Number of weight layers.
    pub fn num_layers(&self) -> usize {
        self.linears.len()
    }

    /// Total parameter count.
    pub fn num_params(&self) -> usize {
        self.linears.iter().map(|l| l.num_params()).sum()
    }

    /// Resident bytes (params + grads + caches).
    pub fn nbytes(&self) -> usize {
        self.linears.iter().map(|l| l.nbytes()).sum()
    }

    /// Training forward pass (caches activations for backward).
    pub fn forward(&mut self, x: &DenseMatrix) -> DenseMatrix {
        let mut h = x.clone();
        let n = self.linears.len();
        for i in 0..n {
            h = self.linears[i].forward(&h);
            if i + 1 < n {
                h = self.relus[i].forward(&h);
                h = self.dropouts[i].forward(&h);
            }
        }
        h
    }

    /// Inference forward (no caches, dropout off).
    pub fn forward_inference(&self, x: &DenseMatrix) -> DenseMatrix {
        let mut h = x.clone();
        let n = self.linears.len();
        for i in 0..n {
            h = self.linears[i].forward_inference(&h);
            if i + 1 < n {
                h = self.relus[i].forward_inference(&h);
            }
        }
        h
    }

    /// Inference forward with quantized linear layers (DESIGN.md §9).
    /// `QuantMode::F32` routes through [`Self::forward_inference`] and
    /// is bitwise-identical to it; `Int8`/`F16` quantize per layer and
    /// document tolerance instead — the serving engine's quantized head
    /// path.
    pub fn forward_inference_quant(
        &self,
        x: &DenseMatrix,
        mode: sgnn_linalg::QuantMode,
    ) -> DenseMatrix {
        if !mode.is_quantized() {
            return self.forward_inference(x);
        }
        let mut h = x.clone();
        let n = self.linears.len();
        for i in 0..n {
            h = self.linears[i].forward_inference_quant(&h, mode);
            if i + 1 < n {
                h = self.relus[i].forward_inference(&h);
            }
        }
        h
    }

    /// Backward pass from logits gradient; returns the input gradient.
    pub fn backward(&mut self, dlogits: &DenseMatrix) -> DenseMatrix {
        let n = self.linears.len();
        let mut g = dlogits.clone();
        for i in (0..n).rev() {
            if i + 1 < n {
                g = self.dropouts[i].backward(&g);
                g = self.relus[i].backward(&g);
            }
            g = self.linears[i].backward(&g);
        }
        g
    }

    /// Zeroes every gradient buffer.
    pub fn zero_grad(&mut self) {
        for l in &mut self.linears {
            l.zero_grad();
        }
    }

    /// Applies one optimizer step over all parameters.
    pub fn step(&mut self, opt: &mut dyn Optimizer) {
        let mut slot = 0usize;
        for l in &mut self.linears {
            l.visit_params(&mut |p, g| {
                opt.update(slot, p, g);
                slot += 1;
            });
        }
        opt.step_done();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::loss::{accuracy, softmax_cross_entropy};
    use crate::optim::Adam;

    #[test]
    fn shapes_flow_through() {
        let mut mlp = Mlp::new(&[8, 16, 3], 0.2, 1);
        assert_eq!(mlp.num_layers(), 2);
        let x = DenseMatrix::gaussian(5, 8, 1.0, 2);
        let y = mlp.forward(&x);
        assert_eq!(y.shape(), (5, 3));
        let dy = DenseMatrix::gaussian(5, 3, 1.0, 3);
        let dx = mlp.backward(&dy);
        assert_eq!(dx.shape(), (5, 8));
    }

    #[test]
    fn gradient_check_through_two_layers() {
        // No dropout so forward is deterministic.
        let mut mlp = Mlp::new(&[4, 6, 2], 0.0, 4);
        let x = DenseMatrix::gaussian(3, 4, 1.0, 5);
        let targets = [0usize, 1, 0];
        let loss_of = |m: &Mlp| {
            let logits = m.forward_inference(&x);
            softmax_cross_entropy(&logits, &targets, None).0
        };
        let logits = mlp.forward(&x);
        let (_, dlogits) = softmax_cross_entropy(&logits, &targets, None);
        mlp.zero_grad();
        mlp.backward(&dlogits);
        let eps = 1e-2f32;
        // Probe a first-layer weight (checks chaining through ReLU).
        let analytic = mlp.linears[0].gw.get(1, 2);
        let mut probe = mlp.clone();
        let w12 = probe.linears[0].w.get(1, 2);
        probe.linears[0].w.set(1, 2, w12 + eps);
        let num = (loss_of(&probe) - loss_of(&mlp)) / eps;
        assert!((num - analytic).abs() < 2e-2, "num {num} vs analytic {analytic}");
        // And a last-layer bias.
        let analytic_b = mlp.linears[1].gb.get(0, 1);
        let mut probe_b = mlp.clone();
        let b01 = probe_b.linears[1].b.get(0, 1);
        probe_b.linears[1].b.set(0, 1, b01 + eps);
        let num_b = (loss_of(&probe_b) - loss_of(&mlp)) / eps;
        assert!((num_b - analytic_b).abs() < 2e-2);
    }

    #[test]
    fn mlp_learns_xor() {
        // XOR: not linearly separable — requires the hidden layer to work.
        let x = DenseMatrix::from_rows(&[&[0.0, 0.0], &[0.0, 1.0], &[1.0, 0.0], &[1.0, 1.0]]);
        let targets = [0usize, 1, 1, 0];
        let mut mlp = Mlp::new(&[2, 16, 2], 0.0, 7);
        let mut opt = Adam::new(0.05);
        for _ in 0..500 {
            let logits = mlp.forward(&x);
            let (_, dl) = softmax_cross_entropy(&logits, &targets, None);
            mlp.zero_grad();
            mlp.backward(&dl);
            mlp.step(&mut opt);
        }
        let logits = mlp.forward_inference(&x);
        assert_eq!(accuracy(&logits, &targets), 1.0, "logits {:?}", logits.data());
    }

    #[test]
    fn quant_forward_f32_is_bitwise_and_lossy_is_close() {
        let mlp = Mlp::new(&[6, 12, 4], 0.0, 3);
        let x = DenseMatrix::gaussian(20, 6, 1.0, 5);
        let exact = mlp.forward_inference(&x);
        let f32_mode = mlp.forward_inference_quant(&x, sgnn_linalg::QuantMode::F32);
        assert_eq!(f32_mode.data(), exact.data());
        let scale = exact.data().iter().fold(0f32, |m, v| m.max(v.abs()));
        for (mode, tol) in
            [(sgnn_linalg::QuantMode::Int8, 0.05f32), (sgnn_linalg::QuantMode::F16, 0.01f32)]
        {
            let got = mlp.forward_inference_quant(&x, mode);
            let max_err =
                got.data().iter().zip(exact.data()).fold(0f32, |m, (a, b)| m.max((a - b).abs()));
            assert!(max_err < tol * scale.max(1.0), "{}: max_err {max_err}", mode.label());
        }
    }

    #[test]
    fn dropout_only_active_in_training() {
        let mut mlp = Mlp::new(&[4, 8, 2], 0.6, 9);
        let x = DenseMatrix::gaussian(10, 4, 1.0, 10);
        let a = mlp.forward_inference(&x);
        let b = mlp.forward_inference(&x);
        assert_eq!(a.data(), b.data()); // deterministic
        let t1 = mlp.forward(&x);
        let t2 = mlp.forward(&x);
        assert_ne!(t1.data(), t2.data()); // dropout varies
    }
}
