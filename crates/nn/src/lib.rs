//! # sgnn-nn
//!
//! A compact manual-backprop neural-network stack: linear layers, ReLU,
//! dropout, softmax cross-entropy, SGD/Adam, and an [`Mlp`] module.
//!
//! The survey treats neural computation as the *non*-bottleneck of
//! scalable GNNs — "graph propagation and feature transformation entail
//! different computational requirements" (§3.1.2) — so this crate is
//! deliberately small and CPU-oriented: enough to train every model in
//! `sgnn-core`, with explicit forward/backward passes (no autograd tape)
//! so each model's memory footprint is visible to the accounting in
//! `sgnn-core::memory`.
//!
//! Gradient correctness is enforced by finite-difference checks in the
//! test suite.

pub mod layers;
pub mod loss;
pub mod mlp;
pub mod optim;

pub use layers::{Dropout, Linear, ReLU};
pub use loss::softmax_cross_entropy;
pub use mlp::Mlp;
pub use optim::{Adam, Optimizer, Sgd};
