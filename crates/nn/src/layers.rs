//! Layers with explicit forward/backward passes.
//!
//! Every layer caches what its backward pass needs at forward time and
//! accumulates parameter gradients into its own buffers; `zero_grad`
//! clears them. Optimizers visit `(param, grad)` pairs through
//! [`Linear::visit_params`].

use sgnn_linalg::{reduce, DenseMatrix, QuantMatrix, QuantMode};

/// Fully-connected layer `Y = X·W + b`.
#[derive(Debug, Clone)]
pub struct Linear {
    /// Weight matrix (`in × out`).
    pub w: DenseMatrix,
    /// Bias (`1 × out`).
    pub b: DenseMatrix,
    /// Weight gradient.
    pub gw: DenseMatrix,
    /// Bias gradient.
    pub gb: DenseMatrix,
    cache_x: Option<DenseMatrix>,
}

impl Linear {
    /// Glorot-initialized layer.
    pub fn new(in_dim: usize, out_dim: usize, seed: u64) -> Self {
        Linear {
            w: DenseMatrix::glorot(in_dim, out_dim, seed),
            b: DenseMatrix::zeros(1, out_dim),
            gw: DenseMatrix::zeros(in_dim, out_dim),
            gb: DenseMatrix::zeros(1, out_dim),
            cache_x: None,
        }
    }

    /// Input width.
    pub fn in_dim(&self) -> usize {
        self.w.rows()
    }

    /// Output width.
    pub fn out_dim(&self) -> usize {
        self.w.cols()
    }

    /// Forward pass; caches `x` for backward.
    pub fn forward(&mut self, x: &DenseMatrix) -> DenseMatrix {
        let mut y = x.matmul(&self.w).expect("linear shape mismatch");
        for r in 0..y.rows() {
            sgnn_linalg::vecops::axpy(1.0, self.b.row(0), y.row_mut(r));
        }
        self.cache_x = Some(x.clone());
        y
    }

    /// Inference-only forward (no cache).
    pub fn forward_inference(&self, x: &DenseMatrix) -> DenseMatrix {
        let mut y = x.matmul(&self.w).expect("linear shape mismatch");
        for r in 0..y.rows() {
            sgnn_linalg::vecops::axpy(1.0, self.b.row(0), y.row_mut(r));
        }
        y
    }

    /// Inference-only forward under a numeric `mode`. [`QuantMode::F32`]
    /// (the default) is exactly [`forward_inference`](Self::forward_inference);
    /// the quantized modes compress activations and weights per row,
    /// accumulate in f32, and keep the bias addition in f32. Error
    /// tolerance: DESIGN.md §9. Weights are quantized per call — a
    /// serving deployment would cache `QuantMatrix::quantize(&self.w, _)`.
    pub fn forward_inference_quant(&self, x: &DenseMatrix, mode: QuantMode) -> DenseMatrix {
        let Some(wq) = QuantMatrix::quantize(&self.w, mode) else {
            return self.forward_inference(x);
        };
        let xq = QuantMatrix::quantize(x, mode).expect("mode is quantized");
        let mut y = DenseMatrix::zeros(x.rows(), self.out_dim());
        sgnn_linalg::qmatmul_into(&xq, &wq, &mut y).expect("linear shape mismatch");
        for r in 0..y.rows() {
            sgnn_linalg::vecops::axpy(1.0, self.b.row(0), y.row_mut(r));
        }
        y
    }

    /// Backward pass: accumulates `gw += Xᵀ·dY`, `gb += Σ dY`, returns
    /// `dX = dY·Wᵀ`.
    ///
    /// The cross-row reductions go through the exact fixed-point fold in
    /// [`sgnn_linalg::reduce`], so the accumulated gradients are
    /// independent of row order and row partitioning — the shard trainer
    /// computes the same `i128` partials per shard, allreduces them, and
    /// lands on identical bits (DESIGN.md §7). `dX` is per-row and needs
    /// no such treatment.
    pub fn backward(&mut self, dy: &DenseMatrix) -> DenseMatrix {
        let x = self.cache_x.as_ref().expect("backward before forward");
        let mut gw_fx = vec![0i128; self.w.rows() * self.w.cols()];
        let mut gb_fx = vec![0i128; self.b.cols()];
        reduce::grad_fx(x, dy, &mut gw_fx);
        reduce::colsum_fx(dy, &mut gb_fx);
        reduce::accumulate_fx(self.gw.data_mut(), &gw_fx);
        reduce::accumulate_fx(self.gb.data_mut(), &gb_fx);
        dy.matmul(&self.w.transpose()).expect("shapes fixed")
    }

    /// Clears accumulated gradients.
    pub fn zero_grad(&mut self) {
        self.gw.map_inplace(|_| 0.0);
        self.gb.map_inplace(|_| 0.0);
    }

    /// Visits `(param, grad)` pairs for the optimizer.
    pub fn visit_params(&mut self, f: &mut dyn FnMut(&mut DenseMatrix, &DenseMatrix)) {
        f(&mut self.w, &self.gw);
        f(&mut self.b, &self.gb);
    }

    /// Parameter count.
    pub fn num_params(&self) -> usize {
        self.w.rows() * self.w.cols() + self.b.cols()
    }

    /// Resident bytes of parameters + gradients (+ cache when present).
    pub fn nbytes(&self) -> usize {
        self.w.nbytes()
            + self.b.nbytes()
            + self.gw.nbytes()
            + self.gb.nbytes()
            + self.cache_x.as_ref().map_or(0, |c| c.nbytes())
    }
}

/// Rectified linear activation.
#[derive(Debug, Clone, Default)]
pub struct ReLU {
    mask: Vec<bool>,
}

impl ReLU {
    /// New activation layer.
    pub fn new() -> Self {
        ReLU { mask: Vec::new() }
    }

    /// Forward pass; records which entries were positive.
    pub fn forward(&mut self, x: &DenseMatrix) -> DenseMatrix {
        self.mask.clear();
        self.mask.extend(x.data().iter().map(|&v| v > 0.0));
        x.map(|v| v.max(0.0))
    }

    /// Inference-only forward.
    pub fn forward_inference(&self, x: &DenseMatrix) -> DenseMatrix {
        x.map(|v| v.max(0.0))
    }

    /// Backward pass: zero out gradients where the input was ≤ 0.
    pub fn backward(&self, dy: &DenseMatrix) -> DenseMatrix {
        assert_eq!(dy.data().len(), self.mask.len(), "backward before forward");
        let mut dx = dy.clone();
        for (v, &m) in dx.data_mut().iter_mut().zip(self.mask.iter()) {
            if !m {
                *v = 0.0;
            }
        }
        dx
    }
}

/// Inverted dropout.
///
/// The mask is a **stateless** function of `(seed, call number, element
/// index)` — a SplitMix64 hash per element rather than a sequential RNG
/// stream — so any row subset of a forward pass can reproduce exactly
/// its own mask entries. The shard trainer relies on this: each shard
/// regenerates the mask for the global rows it owns via
/// [`Dropout::element_scale`] and lands on the same bits the
/// full-matrix reference forward produced (DESIGN.md §7).
#[derive(Debug, Clone)]
pub struct Dropout {
    /// Drop probability.
    pub p: f32,
    mask: Vec<f32>,
    seed: u64,
    calls: u64,
}

impl Dropout {
    /// New dropout layer with drop probability `p`, deterministic under
    /// `seed`.
    pub fn new(p: f32, seed: u64) -> Self {
        assert!((0.0..1.0).contains(&p));
        Dropout { p, mask: Vec::new(), seed, calls: 0 }
    }

    /// Per-call seed: forward call `call` (1-based) of a layer seeded
    /// with `seed` draws its element hashes from this stream.
    #[inline]
    pub fn call_seed(seed: u64, call: u64) -> u64 {
        seed.wrapping_add(call.wrapping_mul(0x9E37_79B9))
    }

    /// Training-forward calls made so far. Part of the checkpoint
    /// contract: the mask stream position is the only RNG-adjacent state
    /// a model carries, so resume must put it back.
    pub fn calls(&self) -> u64 {
        self.calls
    }

    /// Restores the call counter (checkpoint resume).
    pub fn set_calls(&mut self, calls: u64) {
        self.calls = calls;
    }

    /// Mask scale for one element: `0.0` (dropped) or `1/(1−p)` (kept),
    /// as a pure function of `(call_seed, element index)`. `elem` is the
    /// flat row-major index `row·cols + col` of the *full* forward
    /// matrix, so shards index by global row and agree with the
    /// reference.
    #[inline]
    pub fn element_scale(call_seed: u64, p: f32, elem: u64) -> f32 {
        if sgnn_linalg::rng::node_variate(call_seed, elem) < p as f64 {
            0.0
        } else {
            1.0 / (1.0 - p)
        }
    }

    /// Training forward: scales kept entries by `1/(1−p)`.
    pub fn forward(&mut self, x: &DenseMatrix) -> DenseMatrix {
        self.calls += 1;
        let cs = Self::call_seed(self.seed, self.calls);
        self.mask.clear();
        self.mask.reserve(x.data().len());
        let mut y = x.clone();
        for (i, v) in y.data_mut().iter_mut().enumerate() {
            let m = Self::element_scale(cs, self.p, i as u64);
            self.mask.push(m);
            *v *= m;
        }
        y
    }

    /// Inference forward: identity (inverted dropout needs no rescale).
    pub fn forward_inference(&self, x: &DenseMatrix) -> DenseMatrix {
        x.clone()
    }

    /// Backward pass through the recorded mask.
    pub fn backward(&self, dy: &DenseMatrix) -> DenseMatrix {
        assert_eq!(dy.data().len(), self.mask.len(), "backward before forward");
        let mut dx = dy.clone();
        for (v, &m) in dx.data_mut().iter_mut().zip(self.mask.iter()) {
            *v *= m;
        }
        dx
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_forward_matches_manual() {
        let mut l = Linear::new(2, 2, 1);
        l.w = DenseMatrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        l.b = DenseMatrix::from_rows(&[&[0.5, -0.5]]);
        let x = DenseMatrix::from_rows(&[&[1.0, 1.0]]);
        let y = l.forward(&x);
        assert_eq!(y.row(0), &[4.5, 5.5]);
    }

    #[test]
    fn linear_gradient_check() {
        // Finite differences on a scalar loss L = sum(Y ⊙ R).
        let mut l = Linear::new(3, 2, 2);
        let x = DenseMatrix::gaussian(4, 3, 1.0, 3);
        let r = DenseMatrix::gaussian(4, 2, 1.0, 4);
        let y = l.forward(&x);
        let _ = y;
        let dx = l.backward(&r);
        let eps = 1e-3f32;
        // Check dL/dW[0][1].
        let base = |l: &Linear| -> f32 {
            let y = l.forward_inference(&x);
            sgnn_linalg::vecops::dot(y.data(), r.data())
        };
        let mut lp = l.clone();
        let w01 = lp.w.get(0, 1);
        lp.w.set(0, 1, w01 + eps);
        let num = (base(&lp) - base(&l)) / eps;
        assert!((num - l.gw.get(0, 1)).abs() < 1e-2, "num {num} vs {}", l.gw.get(0, 1));
        // Check dL/db[0].
        let mut lb = l.clone();
        let b00 = lb.b.get(0, 0);
        lb.b.set(0, 0, b00 + eps);
        let numb = (base(&lb) - base(&l)) / eps;
        assert!((numb - l.gb.get(0, 0)).abs() < 1e-2);
        // Check dL/dX[1][2].
        let mut x2 = x.clone();
        let x12 = x2.get(1, 2);
        x2.set(1, 2, x12 + eps);
        let y2 = l.forward_inference(&x2);
        let numx = (sgnn_linalg::vecops::dot(y2.data(), r.data()) - base(&l)) / eps;
        assert!((numx - dx.get(1, 2)).abs() < 1e-2);
    }

    #[test]
    fn linear_gradients_accumulate_until_zeroed() {
        let mut l = Linear::new(2, 2, 5);
        let x = DenseMatrix::gaussian(3, 2, 1.0, 6);
        let dy = DenseMatrix::gaussian(3, 2, 1.0, 7);
        l.forward(&x);
        l.backward(&dy);
        let g1 = l.gw.get(0, 0);
        l.forward(&x);
        l.backward(&dy);
        assert!((l.gw.get(0, 0) - 2.0 * g1).abs() < 1e-5);
        l.zero_grad();
        assert_eq!(l.gw.get(0, 0), 0.0);
    }

    #[test]
    fn relu_masks_forward_and_backward() {
        let mut r = ReLU::new();
        let x = DenseMatrix::from_rows(&[&[-1.0, 2.0, 0.0]]);
        let y = r.forward(&x);
        assert_eq!(y.row(0), &[0.0, 2.0, 0.0]);
        let dy = DenseMatrix::from_rows(&[&[5.0, 5.0, 5.0]]);
        let dx = r.backward(&dy);
        assert_eq!(dx.row(0), &[0.0, 5.0, 0.0]);
    }

    #[test]
    fn dropout_preserves_expectation_and_masks_backward() {
        let mut d = Dropout::new(0.4, 1);
        let x = DenseMatrix::from_vec(1, 10_000, vec![1.0; 10_000]);
        let y = d.forward(&x);
        let mean = sgnn_linalg::vecops::mean(y.data());
        assert!((mean - 1.0).abs() < 0.05, "mean {mean}");
        // Backward uses the same mask.
        let dy = DenseMatrix::from_vec(1, 10_000, vec![1.0; 10_000]);
        let dx = d.backward(&dy);
        for (a, b) in y.data().iter().zip(dx.data()) {
            assert_eq!(a, b); // identical mask scaling on unit inputs
        }
        // Inference passes through.
        let yi = d.forward_inference(&x);
        assert_eq!(yi.data(), x.data());
    }

    #[test]
    fn param_visiting_and_counts() {
        let mut l = Linear::new(4, 3, 9);
        assert_eq!(l.num_params(), 15);
        let mut seen = 0;
        l.visit_params(&mut |_, _| seen += 1);
        assert_eq!(seen, 2);
        assert!(l.nbytes() > 0);
    }
}
