//! Softmax cross-entropy with logits.
//!
//! The scalar loss is a cross-row reduction, so it folds through the
//! exact fixed-point representation in [`sgnn_linalg::reduce`]: the
//! per-row term [`xent_softmaxed_row_fx`] and the final conversion
//! [`loss_from_fx`] are shared with the shard trainer, which sums the
//! same `i128` terms over its owned rows and allreduces — landing on
//! the identical loss bits (DESIGN.md §7). The gradient is per-row
//! (given the global weight total) and needs no such treatment.

use sgnn_linalg::reduce::{fx, fx_to_f64};
use sgnn_linalg::DenseMatrix;

/// Fixed-point loss term of one already-softmaxed probability row:
/// `fx(−w·ln(max(p_target, 1e-12)))`. Pure function of the row bits, so
/// any row partitioning reproduces the same terms.
#[inline]
pub fn xent_softmaxed_row_fx(probs_row: &[f32], target: usize, w: f32) -> i128 {
    let p = probs_row[target].max(1e-12);
    fx(-((w as f64) * (p as f64).ln()))
}

/// Final scalar loss from a fixed-point term total: one rounding, after
/// the order-free integer fold.
#[inline]
pub fn loss_from_fx(total: i128, total_w: f32) -> f32 {
    (fx_to_f64(total) / total_w as f64) as f32
}

/// Rewrites an already-softmaxed probability row into its loss gradient
/// in place: `row ← w·(row − onehot(target))/total_w`. Per-row pure
/// given the global `total_w`.
#[inline]
pub fn xent_grad_row(row: &mut [f32], target: usize, w: f32, total_w: f32) {
    row[target] -= 1.0;
    sgnn_linalg::vecops::scale(row, w / total_w);
}

/// Computes mean softmax cross-entropy and its gradient w.r.t. logits.
///
/// `weights`, when provided, are per-sample loss weights (GraphSAINT's
/// `1/λ_v` normalization); otherwise every sample weighs 1. Returns
/// `(loss, dlogits)` with `dlogits = weight·(softmax − onehot)/Σweights`.
pub fn softmax_cross_entropy(
    logits: &DenseMatrix,
    targets: &[usize],
    weights: Option<&[f32]>,
) -> (f32, DenseMatrix) {
    let n = logits.rows();
    assert_eq!(targets.len(), n, "one target per row");
    if let Some(w) = weights {
        assert_eq!(w.len(), n);
    }
    let total_w: f32 = match weights {
        Some(w) => w.iter().sum(),
        None => n as f32,
    };
    let total_w = total_w.max(1e-12);
    let mut grad = logits.clone();
    grad.softmax_rows();
    let mut loss_fx = 0i128;
    for r in 0..n {
        let w = weights.map_or(1.0, |ws| ws[r]);
        let t = targets[r];
        debug_assert!(t < logits.cols(), "target class out of range");
        loss_fx = loss_fx.wrapping_add(xent_softmaxed_row_fx(grad.row(r), t, w));
        xent_grad_row(grad.row_mut(r), t, w, total_w);
    }
    (loss_from_fx(loss_fx, total_w), grad)
}

/// Classification accuracy of logits against targets.
pub fn accuracy(logits: &DenseMatrix, targets: &[usize]) -> f64 {
    if targets.is_empty() {
        return 0.0;
    }
    let pred = logits.argmax_rows();
    let hits = pred.iter().zip(targets.iter()).filter(|&(p, t)| p == t).count();
    hits as f64 / targets.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_logits_give_log_c_loss() {
        let logits = DenseMatrix::zeros(4, 3);
        let (loss, _) = softmax_cross_entropy(&logits, &[0, 1, 2, 0], None);
        assert!((loss - (3f32).ln()).abs() < 1e-5);
    }

    #[test]
    fn gradient_matches_finite_difference() {
        let logits = DenseMatrix::gaussian(3, 4, 1.0, 1);
        let targets = [2usize, 0, 3];
        let (_, grad) = softmax_cross_entropy(&logits, &targets, None);
        let eps = 1e-3f32;
        for &(r, c) in &[(0usize, 2usize), (1, 1), (2, 3), (0, 0)] {
            let mut lp = logits.clone();
            let v = lp.get(r, c);
            lp.set(r, c, v + eps);
            let (l1, _) = softmax_cross_entropy(&lp, &targets, None);
            let (l0, _) = softmax_cross_entropy(&logits, &targets, None);
            let num = (l1 - l0) / eps;
            assert!(
                (num - grad.get(r, c)).abs() < 1e-2,
                "({r},{c}): num {num} vs analytic {}",
                grad.get(r, c)
            );
        }
    }

    #[test]
    fn perfect_prediction_has_tiny_loss_and_gradient() {
        let mut logits = DenseMatrix::zeros(2, 2);
        logits.set(0, 0, 20.0);
        logits.set(1, 1, 20.0);
        let (loss, grad) = softmax_cross_entropy(&logits, &[0, 1], None);
        assert!(loss < 1e-6);
        assert!(grad.frobenius() < 1e-6);
    }

    #[test]
    fn weights_scale_per_sample_contributions() {
        let logits = DenseMatrix::gaussian(2, 3, 1.0, 2);
        // Zero weight on sample 1 → same loss as sample 0 alone.
        let (lw, gw) = softmax_cross_entropy(&logits, &[1, 2], Some(&[1.0, 0.0]));
        let solo = logits.gather_rows(&[0]);
        let (ls, _) = softmax_cross_entropy(&solo, &[1], None);
        assert!((lw - ls).abs() < 1e-5);
        // Gradient on the zero-weight row vanishes.
        assert!(gw.row(1).iter().all(|&v| v == 0.0));
    }

    #[test]
    fn accuracy_counts_argmax_hits() {
        let logits = DenseMatrix::from_rows(&[&[1.0, 0.0], &[0.0, 1.0], &[1.0, 0.0]]);
        assert!((accuracy(&logits, &[0, 1, 1]) - 2.0 / 3.0).abs() < 1e-9);
        assert_eq!(accuracy(&DenseMatrix::zeros(0, 2), &[]), 0.0);
    }
}
