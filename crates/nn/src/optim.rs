//! Optimizers: SGD (with weight decay) and Adam.
//!
//! Optimizers own their state buffers keyed by *visit order*, which is
//! stable because models visit parameters in a fixed sequence each step.

use sgnn_linalg::DenseMatrix;

/// Common optimizer interface over `(param, grad)` visit pairs.
pub trait Optimizer {
    /// Applies one update to a parameter tensor given its gradient. `slot`
    /// is the parameter's stable position in the model's visit order.
    fn update(&mut self, slot: usize, param: &mut DenseMatrix, grad: &DenseMatrix);

    /// Advances the step counter (call once per optimization step, after
    /// all parameters were updated).
    fn step_done(&mut self) {}
}

/// Plain SGD with optional L2 weight decay.
#[derive(Debug, Clone)]
pub struct Sgd {
    /// Learning rate.
    pub lr: f32,
    /// L2 weight decay coefficient.
    pub weight_decay: f32,
}

impl Sgd {
    /// New SGD optimizer.
    pub fn new(lr: f32, weight_decay: f32) -> Self {
        Sgd { lr, weight_decay }
    }
}

impl Optimizer for Sgd {
    fn update(&mut self, _slot: usize, param: &mut DenseMatrix, grad: &DenseMatrix) {
        let lr = self.lr;
        let wd = self.weight_decay;
        for (p, &g) in param.data_mut().iter_mut().zip(grad.data()) {
            *p -= lr * (g + wd * *p);
        }
    }
}

/// Adam (Kingma & Ba) with bias correction and optional weight decay.
#[derive(Debug, Clone)]
pub struct Adam {
    /// Learning rate.
    pub lr: f32,
    /// First-moment decay.
    pub beta1: f32,
    /// Second-moment decay.
    pub beta2: f32,
    /// Numerical floor.
    pub eps: f32,
    /// L2 weight decay coefficient.
    pub weight_decay: f32,
    t: i32,
    m: Vec<Vec<f32>>,
    v: Vec<Vec<f32>>,
}

impl Adam {
    /// Adam with standard hyperparameters.
    pub fn new(lr: f32) -> Self {
        Adam {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            weight_decay: 0.0,
            t: 0,
            m: Vec::new(),
            v: Vec::new(),
        }
    }

    /// Adds L2 weight decay.
    pub fn with_weight_decay(mut self, wd: f32) -> Self {
        self.weight_decay = wd;
        self
    }

    /// Snapshot of the mutable optimizer state for checkpointing: the
    /// step counter and the per-slot first/second moment buffers, in
    /// slot order. Bit-exact restore via [`restore_state`](Adam::restore_state)
    /// is what makes resumed training reproduce an uninterrupted run.
    pub fn export_state(&self) -> (i32, &[Vec<f32>], &[Vec<f32>]) {
        (self.t, &self.m, &self.v)
    }

    /// Restores state captured by [`export_state`](Adam::export_state).
    /// Slot buffers re-shape lazily on the next `update` if a restored
    /// slot is empty, so restoring into a fresh optimizer is safe.
    pub fn restore_state(&mut self, t: i32, m: Vec<Vec<f32>>, v: Vec<Vec<f32>>) {
        self.t = t;
        self.m = m;
        self.v = v;
    }
}

impl Optimizer for Adam {
    fn update(&mut self, slot: usize, param: &mut DenseMatrix, grad: &DenseMatrix) {
        while self.m.len() <= slot {
            self.m.push(Vec::new());
            self.v.push(Vec::new());
        }
        let n = param.data().len();
        if self.m[slot].len() != n {
            self.m[slot] = vec![0.0; n];
            self.v[slot] = vec![0.0; n];
        }
        let t = self.t + 1;
        let bc1 = 1.0 - self.beta1.powi(t);
        let bc2 = 1.0 - self.beta2.powi(t);
        let (m, v) = (&mut self.m[slot], &mut self.v[slot]);
        for i in 0..n {
            let g = grad.data()[i] + self.weight_decay * param.data()[i];
            m[i] = self.beta1 * m[i] + (1.0 - self.beta1) * g;
            v[i] = self.beta2 * v[i] + (1.0 - self.beta2) * g * g;
            let mhat = m[i] / bc1;
            let vhat = v[i] / bc2;
            param.data_mut()[i] -= self.lr * mhat / (vhat.sqrt() + self.eps);
        }
    }

    fn step_done(&mut self) {
        self.t += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quadratic_descent(opt: &mut dyn Optimizer, steps: usize) -> f32 {
        // Minimize f(p) = ½‖p − 3‖² starting at 0.
        let mut p = DenseMatrix::zeros(1, 4);
        for _ in 0..steps {
            let grad = p.map(|v| v - 3.0);
            opt.update(0, &mut p, &grad);
            opt.step_done();
        }
        p.map(|v| (v - 3.0).abs()).data().iter().fold(0f32, |a, &b| a.max(b))
    }

    #[test]
    fn sgd_converges_on_quadratic() {
        let mut opt = Sgd::new(0.1, 0.0);
        assert!(quadratic_descent(&mut opt, 200) < 1e-4);
    }

    #[test]
    fn adam_converges_on_quadratic() {
        let mut opt = Adam::new(0.05);
        assert!(quadratic_descent(&mut opt, 800) < 1e-3);
    }

    #[test]
    fn weight_decay_shrinks_parameters() {
        let mut p = DenseMatrix::from_rows(&[&[10.0]]);
        let zero_grad = DenseMatrix::zeros(1, 1);
        let mut opt = Sgd::new(0.1, 0.5);
        for _ in 0..50 {
            opt.update(0, &mut p, &zero_grad);
        }
        assert!(p.get(0, 0).abs() < 1.0, "param {}", p.get(0, 0));
    }

    #[test]
    fn adam_state_is_per_slot() {
        let mut opt = Adam::new(0.1);
        let mut p0 = DenseMatrix::zeros(1, 1);
        let mut p1 = DenseMatrix::zeros(1, 2); // different size
        let g0 = DenseMatrix::from_rows(&[&[1.0]]);
        let g1 = DenseMatrix::from_rows(&[&[1.0, -1.0]]);
        opt.update(0, &mut p0, &g0);
        opt.update(1, &mut p1, &g1);
        opt.step_done();
        // No panic on size mismatch between slots, both moved.
        assert!(p0.get(0, 0) < 0.0);
        assert!(p1.get(0, 1) > 0.0);
    }
}
