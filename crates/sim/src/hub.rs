//! Pruned landmark labeling (2-hop hub labels) for shortest-path queries.
//!
//! CFGNN [16] "employs the hub labeling approach to discover underlying
//! hierarchy in the graph topology", and DHIL-GT [27] uses hub labels for
//! "fast shortest path distance (SPD) bias querying in graph Transformer
//! learning". Both need the same primitive: an index answering exact SPD
//! queries in `O(|label|)` instead of a BFS per query.
//!
//! We implement Akiba–Iwata–Yoshida pruned landmark labeling: process
//! nodes in descending-degree order; from each landmark run a BFS that
//! *prunes* any node whose distance is already covered by earlier labels.
//! On small-world graphs labels stay tiny and queries are microseconds —
//! the speedup experiment E7 measures against per-query BFS.

use sgnn_graph::traverse::UNREACHABLE;
use sgnn_graph::{CsrGraph, NodeId};

/// # Example
///
/// ```
/// use sgnn_graph::generate;
/// use sgnn_sim::HubLabels;
///
/// let g = generate::barabasi_albert(500, 3, 1);
/// let index = HubLabels::build(&g);
/// // Exact shortest-path distances in O(label) time:
/// let d = index.query(3, 400);
/// assert_eq!(d, sgnn_graph::traverse::bfs_distances(&g, 3)[400]);
/// ```
/// A 2-hop label index over an (undirected) graph.
#[derive(Debug, Clone)]
pub struct HubLabels {
    /// Per node: sorted list of `(landmark_rank, distance)` pairs.
    labels: Vec<Vec<(u32, u32)>>,
    /// `order[rank]` = node id processed at that rank (descending degree).
    order: Vec<NodeId>,
    /// Inverse: rank of each node.
    rank_of: Vec<u32>,
}

impl HubLabels {
    /// Builds the index. `O(Σ label sizes · deg)` — fast on small-world
    /// graphs, worst-case heavy on long paths (as expected for PLL).
    pub fn build(g: &CsrGraph) -> HubLabels {
        let n = g.num_nodes();
        // Order by descending degree, ties by id (deterministic).
        let mut order: Vec<NodeId> = (0..n as NodeId).collect();
        order.sort_by_key(|&u| (std::cmp::Reverse(g.degree(u)), u));
        let mut rank_of = vec![0u32; n];
        for (r, &u) in order.iter().enumerate() {
            rank_of[u as usize] = r as u32;
        }
        let mut labels: Vec<Vec<(u32, u32)>> = vec![Vec::new(); n];
        let mut dist = vec![UNREACHABLE; n];
        let mut touched: Vec<NodeId> = Vec::new();
        for (rank, &root) in order.iter().enumerate() {
            let rank = rank as u32;
            // Pruned BFS from root.
            let mut queue = std::collections::VecDeque::new();
            dist[root as usize] = 0;
            touched.push(root);
            queue.push_back(root);
            while let Some(u) = queue.pop_front() {
                let du = dist[u as usize];
                // Prune: if an earlier landmark already certifies a path of
                // length ≤ du between root and u, skip labeling/expanding.
                if query_labels(&labels[root as usize], &labels[u as usize]) <= du {
                    continue;
                }
                labels[u as usize].push((rank, du));
                for &v in g.neighbors(u) {
                    if dist[v as usize] == UNREACHABLE {
                        dist[v as usize] = du + 1;
                        touched.push(v);
                        queue.push_back(v);
                    }
                }
            }
            for &t in &touched {
                dist[t as usize] = UNREACHABLE;
            }
            touched.clear();
        }
        // Labels are pushed in increasing rank order already (BFS roots are
        // processed in rank order), so each list is sorted by rank.
        HubLabels { labels, order, rank_of }
    }

    /// Exact shortest-path distance, or [`UNREACHABLE`] when disconnected.
    pub fn query(&self, u: NodeId, v: NodeId) -> u32 {
        if u == v {
            return 0;
        }
        query_labels(&self.labels[u as usize], &self.labels[v as usize])
    }

    /// Total number of label entries (index size).
    pub fn total_entries(&self) -> usize {
        self.labels.iter().map(|l| l.len()).sum()
    }

    /// Mean label entries per node.
    pub fn mean_label_size(&self) -> f64 {
        self.total_entries() as f64 / self.labels.len().max(1) as f64
    }

    /// Approximate index memory in bytes.
    pub fn nbytes(&self) -> usize {
        self.total_entries() * std::mem::size_of::<(u32, u32)>()
            + self.labels.len() * std::mem::size_of::<Vec<(u32, u32)>>()
    }

    /// The landmark order (descending degree).
    pub fn order(&self) -> &[NodeId] {
        &self.order
    }

    /// Rank (hierarchy position) of a node; low rank = hub/core.
    pub fn rank(&self, u: NodeId) -> u32 {
        self.rank_of[u as usize]
    }
}

/// Merge-join of two sorted label lists; min sum over common landmarks.
fn query_labels(a: &[(u32, u32)], b: &[(u32, u32)]) -> u32 {
    let mut best = UNREACHABLE;
    let (mut i, mut j) = (0usize, 0usize);
    while i < a.len() && j < b.len() {
        match a[i].0.cmp(&b[j].0) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                let s = a[i].1.saturating_add(b[j].1);
                best = best.min(s);
                i += 1;
                j += 1;
            }
        }
    }
    best
}

/// CFGNN-style core/fringe split: the top `core_fraction` of nodes in the
/// PLL hierarchy (highest degree / lowest rank) form the *core*; everyone
/// else is *fringe*. CFGNN runs "distinctive convolutions for core nodes".
#[derive(Debug, Clone)]
pub struct CoreFringe {
    /// `true` for core nodes.
    pub is_core: Vec<bool>,
    /// Core node ids.
    pub core: Vec<NodeId>,
    /// Fringe node ids.
    pub fringe: Vec<NodeId>,
}

impl CoreFringe {
    /// Splits using an existing hub-label hierarchy.
    pub fn from_labels(h: &HubLabels, core_fraction: f64) -> CoreFringe {
        let n = h.order.len();
        let k = ((n as f64) * core_fraction).ceil() as usize;
        let mut is_core = vec![false; n];
        let mut core = Vec::with_capacity(k);
        let mut fringe = Vec::with_capacity(n - k);
        for (rank, &u) in h.order.iter().enumerate() {
            if rank < k {
                is_core[u as usize] = true;
                core.push(u);
            } else {
                fringe.push(u);
            }
        }
        CoreFringe { is_core, core, fringe }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sgnn_graph::generate;
    use sgnn_graph::traverse::bfs_distances;

    fn check_all_pairs(g: &CsrGraph) {
        let h = HubLabels::build(g);
        let n = g.num_nodes();
        for s in 0..n as NodeId {
            let d = bfs_distances(g, s);
            for t in 0..n as NodeId {
                assert_eq!(h.query(s, t), d[t as usize], "pair ({s},{t})");
            }
        }
    }

    #[test]
    fn pll_exact_on_small_er() {
        check_all_pairs(&generate::erdos_renyi(80, 0.05, false, 1));
    }

    #[test]
    fn pll_exact_on_grid_and_chain() {
        check_all_pairs(&generate::grid2d(6, 7));
        check_all_pairs(&generate::chain(30));
    }

    #[test]
    fn pll_exact_on_disconnected_graph() {
        let mut b = sgnn_graph::GraphBuilder::new(10).symmetric();
        for u in 0..4u32 {
            b.add_edge(u, u + 1);
        }
        b.add_edge(6, 7);
        let g = b.build().unwrap();
        check_all_pairs(&g);
        let h = HubLabels::build(&g);
        assert_eq!(h.query(0, 9), UNREACHABLE);
    }

    #[test]
    fn pll_exact_on_ba_spot_checked() {
        let g = generate::barabasi_albert(400, 3, 2);
        let h = HubLabels::build(&g);
        for &s in &[0u32, 13, 99, 250, 399] {
            let d = bfs_distances(&g, s);
            for &t in &[1u32, 57, 200, 333] {
                assert_eq!(h.query(s, t), d[t as usize]);
            }
        }
    }

    #[test]
    fn labels_are_small_on_small_world_graphs() {
        let g = generate::barabasi_albert(2_000, 4, 3);
        let h = HubLabels::build(&g);
        // BA graphs have hub-dominated shortest paths: labels stay tiny
        // compared to n.
        assert!(h.mean_label_size() < 40.0, "mean label {}", h.mean_label_size());
        assert!(h.nbytes() > 0);
    }

    #[test]
    fn hierarchy_rank_matches_degree_order() {
        let g = generate::star(10);
        let h = HubLabels::build(&g);
        assert_eq!(h.order()[0], 0); // hub has max degree
        assert_eq!(h.rank(0), 0);
    }

    #[test]
    fn core_fringe_split_sizes_and_hubness() {
        let g = generate::barabasi_albert(500, 3, 4);
        let h = HubLabels::build(&g);
        let cf = CoreFringe::from_labels(&h, 0.1);
        assert_eq!(cf.core.len(), 50);
        assert_eq!(cf.fringe.len(), 450);
        // Core nodes should have above-average degree.
        let avg = g.num_edges() as f64 / 500.0;
        let core_avg: f64 =
            cf.core.iter().map(|&u| g.degree(u) as f64).sum::<f64>() / cf.core.len() as f64;
        assert!(core_avg > 2.0 * avg, "core degree {core_avg} vs avg {avg}");
        assert!(cf.is_core[cf.core[0] as usize]);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;
    use sgnn_graph::traverse::bfs_distances;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        /// PLL distances equal BFS distances on arbitrary graphs.
        #[test]
        fn pll_matches_bfs(
            edges in proptest::collection::vec((0u32..30, 0u32..30), 0..120)
        ) {
            let g = sgnn_graph::GraphBuilder::new(30).symmetric().drop_self_loops()
                .edges(&edges).build().unwrap();
            let h = HubLabels::build(&g);
            for s in 0..30u32 {
                let d = bfs_distances(&g, s);
                for t in 0..30u32 {
                    prop_assert_eq!(h.query(s, t), d[t as usize]);
                }
            }
        }
    }
}
