//! SimRank: "two objects are similar if they are referenced by similar
//! objects".
//!
//! `s(u,v) = (C/(|N(u)||N(v)|)) · Σ_{a∈N(u)} Σ_{b∈N(v)} s(a,b)`, `s(u,u)=1`.
//!
//! Three regimes:
//! - [`simrank_matrix`] — full iterative computation, `O(n²·d̄²)` per
//!   iteration; the exact reference for graphs up to a few thousand nodes.
//! - [`simrank_mc`] — Monte-Carlo estimate of a single pair via meeting
//!   random walks (`s(u,v) = E[C^τ]`, τ = first meeting time of two
//!   coupled reverse walks); scales to arbitrary graphs for on-demand
//!   queries, the access pattern §3.2.2 highlights.
//! - [`topk_similarity_graph`] — SIMGA's precompute: keep each node's top-k
//!   most SimRank-similar peers as a weighted *global aggregation graph*.

use rand::RngExt;
use sgnn_graph::{CsrGraph, GraphBuilder, NodeId};

/// Dense symmetric SimRank scores (row-major `n×n`). Iterates until the
/// max entry change falls below `tol` or `max_iter` sweeps.
///
/// Intended for `n ≤ ~3000`; memory is `n²` f64s.
pub fn simrank_matrix(g: &CsrGraph, c: f64, tol: f64, max_iter: usize) -> Vec<f64> {
    assert!((0.0..1.0).contains(&c), "decay must be in [0,1)");
    let n = g.num_nodes();
    let mut s = vec![0f64; n * n];
    let mut next = vec![0f64; n * n];
    for u in 0..n {
        s[u * n + u] = 1.0;
    }
    for _ in 0..max_iter {
        let mut delta = 0f64;
        // next(u,v) = c/(du dv) Σ_{a∈N(u), b∈N(v)} s(a,b); diag = 1.
        {
            let s_ref = &s;
            let next_cells = &mut next;
            sgnn_linalg::par::par_rows_mut(next_cells, n, 8, |first_row, chunk| {
                for (local, row) in chunk.chunks_mut(n).enumerate() {
                    let u = first_row + local;
                    let nu = g.neighbors(u as NodeId);
                    for (v, cell) in row.iter_mut().enumerate() {
                        if v == u {
                            *cell = 1.0;
                            continue;
                        }
                        let nv = g.neighbors(v as NodeId);
                        if nu.is_empty() || nv.is_empty() {
                            *cell = 0.0;
                            continue;
                        }
                        let mut acc = 0f64;
                        for &a in nu {
                            let arow = &s_ref[(a as usize) * n..(a as usize + 1) * n];
                            for &b in nv {
                                acc += arow[b as usize];
                            }
                        }
                        *cell = c * acc / (nu.len() * nv.len()) as f64;
                    }
                }
            });
        }
        for (a, b) in s.iter().zip(next.iter()) {
            delta = delta.max((a - b).abs());
        }
        std::mem::swap(&mut s, &mut next);
        if delta < tol {
            break;
        }
    }
    s
}

/// Monte-Carlo single-pair SimRank: runs `walks` coupled `steps`-step
/// random walks from `u` and `v`; each pair that first meets at step `t`
/// contributes `C^t`.
pub fn simrank_mc(
    g: &CsrGraph,
    u: NodeId,
    v: NodeId,
    c: f64,
    walks: usize,
    steps: usize,
    seed: u64,
) -> f64 {
    if u == v {
        return 1.0;
    }
    let mut rng = sgnn_linalg::rng::seeded(seed);
    let mut acc = 0f64;
    for _ in 0..walks {
        let mut a = u;
        let mut b = v;
        let mut decay = 1.0f64;
        for _ in 0..steps {
            let na = g.neighbors(a);
            let nb = g.neighbors(b);
            if na.is_empty() || nb.is_empty() {
                break;
            }
            a = na[rng.random_range(0..na.len())];
            b = nb[rng.random_range(0..nb.len())];
            decay *= c;
            if a == b {
                acc += decay;
                break;
            }
        }
    }
    acc / walks as f64
}

/// One node's top-k similarity list: `(peer, score)` sorted by descending
/// score.
pub fn topk_of_row(s: &[f64], n: usize, u: usize, k: usize) -> Vec<(NodeId, f64)> {
    let row = &s[u * n..(u + 1) * n];
    let mut pairs: Vec<(NodeId, f64)> =
        (0..n).filter(|&v| v != u && row[v] > 0.0).map(|v| (v as NodeId, row[v])).collect();
    pairs.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap().then(a.0.cmp(&b.0)));
    pairs.truncate(k);
    pairs
}

/// SIMGA precompute: the *global aggregation graph* whose row `u` holds
/// `u`'s top-`k` SimRank peers, weights = normalized scores (rows sum to 1
/// where nonempty).
///
/// GNNs add one aggregation pass over this graph to inject global,
/// structure-similar context — the heterophily fix of SIMGA [28] — while
/// keeping the pass as cheap as a sparse k-NN product.
pub fn topk_similarity_graph(g: &CsrGraph, c: f64, k: usize, iters: usize) -> CsrGraph {
    let n = g.num_nodes();
    let s = simrank_matrix(g, c, 1e-4, iters);
    let mut b = GraphBuilder::new(n);
    for u in 0..n {
        let top = topk_of_row(&s, n, u, k);
        let mass: f64 = top.iter().map(|&(_, w)| w).sum();
        if mass <= 0.0 {
            continue;
        }
        for (v, w) in top {
            b.add_weighted_edge(u as NodeId, v, (w / mass) as f32);
        }
    }
    b.build().expect("ids in range by construction")
}

#[cfg(test)]
mod tests {
    use super::*;
    use sgnn_graph::generate;

    #[test]
    fn simrank_diag_is_one_and_symmetric() {
        let g = generate::erdos_renyi(60, 0.08, false, 1);
        let n = 60;
        let s = simrank_matrix(&g, 0.6, 1e-8, 30);
        for u in 0..n {
            assert_eq!(s[u * n + u], 1.0);
            for v in 0..n {
                assert!((s[u * n + v] - s[v * n + u]).abs() < 1e-7);
                assert!(s[u * n + v] >= -1e-12 && s[u * n + v] <= 1.0 + 1e-12);
            }
        }
    }

    #[test]
    fn simrank_on_known_tiny_graph() {
        // Star 0-1, 0-2: nodes 1 and 2 have identical neighborhoods {0},
        // so s(1,2) = c · s(0,0) = c.
        let g = generate::star(3);
        let s = simrank_matrix(&g, 0.8, 1e-10, 50);
        assert!((s[3 + 2] - 0.8).abs() < 1e-8, "s(1,2)={}", s[3 + 2]);
    }

    #[test]
    fn simrank_fixed_point_residual_is_small() {
        let g = generate::erdos_renyi(40, 0.1, false, 2);
        let n = 40;
        let c = 0.6;
        let s = simrank_matrix(&g, c, 1e-10, 100);
        // Verify the SimRank equation at a handful of pairs.
        for &(u, v) in &[(0usize, 1usize), (3, 7), (10, 20), (30, 39)] {
            if u == v {
                continue;
            }
            let nu = g.neighbors(u as NodeId);
            let nv = g.neighbors(v as NodeId);
            if nu.is_empty() || nv.is_empty() {
                continue;
            }
            let mut acc = 0f64;
            for &a in nu {
                for &b in nv {
                    acc += s[(a as usize) * n + b as usize];
                }
            }
            let expect = c * acc / (nu.len() * nv.len()) as f64;
            assert!((s[u * n + v] - expect).abs() < 1e-6);
        }
    }

    #[test]
    fn mc_estimate_tracks_exact_value() {
        let g = generate::erdos_renyi(50, 0.12, false, 3);
        let s = simrank_matrix(&g, 0.6, 1e-10, 60);
        // Pick the most similar distinct pair to get signal above noise.
        let mut best = (0usize, 1usize);
        for u in 0..50 {
            for v in (u + 1)..50 {
                if s[u * 50 + v] > s[best.0 * 50 + best.1] {
                    best = (u, v);
                }
            }
        }
        let exact = s[best.0 * 50 + best.1];
        let est = simrank_mc(&g, best.0 as NodeId, best.1 as NodeId, 0.6, 30_000, 30, 7);
        assert!((est - exact).abs() < 0.05, "est {est} vs exact {exact}");
    }

    #[test]
    fn mc_same_node_is_one_and_isolated_zero() {
        let g = generate::star(4);
        assert_eq!(simrank_mc(&g, 2, 2, 0.6, 10, 5, 1), 1.0);
        let iso = CsrGraph::empty(3);
        assert_eq!(simrank_mc(&iso, 0, 1, 0.6, 100, 5, 1), 0.0);
    }

    #[test]
    fn topk_rows_sorted_and_bounded() {
        let g = generate::erdos_renyi(30, 0.2, false, 4);
        let s = simrank_matrix(&g, 0.6, 1e-8, 30);
        let top = topk_of_row(&s, 30, 5, 4);
        assert!(top.len() <= 4);
        assert!(top.windows(2).all(|w| w[0].1 >= w[1].1));
        assert!(top.iter().all(|&(v, _)| v != 5));
    }

    #[test]
    fn similarity_graph_rows_are_normalized() {
        let (g, _) = generate::planted_partition(120, 2, 6.0, 0.2, 5);
        let sg = topk_similarity_graph(&g, 0.6, 5, 20);
        sg.validate().unwrap();
        for u in 0..120u32 {
            let w = sg.weights_of(u).unwrap();
            if !w.is_empty() {
                let sum: f32 = w.iter().sum();
                assert!((sum - 1.0).abs() < 1e-4, "row {u} sums {sum}");
                assert!(w.len() <= 5);
            }
        }
    }

    #[test]
    fn similarity_graph_finds_same_block_peers_under_heterophily() {
        // In a heterophilous SBM, direct neighbors are mostly cross-block,
        // but SimRank top-k peers should be same-block (structurally
        // similar) — exactly SIMGA's premise.
        let (g, labels) = generate::planted_partition(160, 2, 10.0, 0.1, 6);
        let sg = topk_similarity_graph(&g, 0.6, 5, 25);
        let mut same = 0usize;
        let mut total = 0usize;
        for (u, v, _) in sg.edges() {
            total += 1;
            if labels[u as usize] == labels[v as usize] {
                same += 1;
            }
        }
        let frac = same as f64 / total as f64;
        // Direct edges are 90% cross-block; similarity edges must do much
        // better than the 10% baseline.
        assert!(frac > 0.5, "same-block similarity fraction {frac}");
    }
}
