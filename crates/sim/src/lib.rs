//! # sgnn-sim
//!
//! Node-pair similarity analytics — the survey's §3.2.2 leaf.
//!
//! Pairwise similarity metrics "discover underlying relevance in the graph
//! topology, especially long-distance ones", and crucially support
//! *on-demand node-level querying* instead of full-graph processing:
//!
//! - [`simrank`] — SimRank by matrix iteration (ground truth), Monte-Carlo
//!   meeting walks (scalable single-pair queries), and the SIMGA [28]
//!   pattern: a top-k similarity graph used as a second, global aggregation
//!   operator for heterophilous GNNs.
//! - [`rewire`] — DHGR [3]-style graph rewiring: score candidate pairs by
//!   cosine similarity of topology+attribute profiles, add high-similarity
//!   edges, optionally drop dissimilar ones.
//! - [`hub`] — pruned landmark labeling (2-hop hub labels) giving exact
//!   shortest-path-distance queries in microseconds (CFGNN [16] core-fringe
//!   hierarchy, DHIL-GT [27] SPD bias queries).

pub mod hub;
pub mod rewire;
pub mod simrank;

pub use hub::{CoreFringe, HubLabels};
pub use rewire::{rewire, RewireConfig, RewireReport};
pub use simrank::{simrank_matrix, simrank_mc, topk_similarity_graph};
